/**
 * @file
 * Fault-injection framework tests: the retry/backoff policy, the
 * heartbeat failure detector, the FaultPlan interpreter, the
 * per-window channel conditions, graceful-degradation rescheduling,
 * partial query results under dead shards — and the end-to-end
 * acceptance scenario: a seeded crash of node 1 in the 4-node
 * Section 6 seizure-propagation deployment is detected within the
 * heartbeat bound, work is remapped onto the survivors, and the
 * system keeps producing windows. Every fault run is deterministic:
 * the same (plan, seed) pair yields a byte-identical trace, and an
 * empty plan leaves the happy path untouched.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "scalo/app/query_engine.hpp"
#include "scalo/core/system.hpp"
#include "scalo/net/channel.hpp"
#include "scalo/net/failure_detector.hpp"
#include "scalo/net/retry.hpp"
#include "scalo/sched/workloads.hpp"
#include "scalo/sim/faults/fault_injector.hpp"
#include "scalo/sim/faults/fault_plan.hpp"
#include "scalo/sim/runtime/system_sim.hpp"
#include "scalo/util/contracts.hpp"
#include "scalo/util/rng.hpp"

namespace scalo {
namespace {

using namespace units::literals;

// ---------------------------------------------------------------
// RetryPolicy.

TEST(RetryPolicy, AttemptBudget)
{
    net::RetryPolicy policy;
    policy.maxAttempts = 3;
    EXPECT_TRUE(policy.shouldRetry(0));
    EXPECT_TRUE(policy.shouldRetry(1));
    EXPECT_FALSE(policy.shouldRetry(2));
    policy.validate();
}

TEST(RetryPolicy, BackoffGrowsExponentiallyWithinJitterBounds)
{
    net::RetryPolicy policy;
    policy.backoffBase = 50.0_us;
    policy.backoffMultiplier = 2.0;
    policy.jitterFraction = 0.25;
    Rng rng(7);
    for (std::size_t retry = 1; retry <= 3; ++retry) {
        const double nominal =
            50.0 * std::pow(2.0, static_cast<double>(retry - 1));
        for (int draw = 0; draw < 32; ++draw) {
            const units::Micros wait = policy.backoff(retry, rng);
            EXPECT_GE(wait.count(), nominal * 0.75) << retry;
            EXPECT_LE(wait.count(), nominal * 1.25) << retry;
        }
    }
}

TEST(RetryPolicy, BackoffIsDeterministicPerSeed)
{
    const net::RetryPolicy policy;
    Rng a(11), b(11), c(12);
    bool any_differs = false;
    for (std::size_t retry = 1; retry <= 8; ++retry) {
        const double from_a = policy.backoff(retry, a).count();
        const double from_b = policy.backoff(retry, b).count();
        const double from_c = policy.backoff(retry, c).count();
        EXPECT_EQ(from_a, from_b);
        any_differs = any_differs || from_a != from_c;
    }
    EXPECT_TRUE(any_differs); // the jitter actually consumes the seed
}

TEST(RetryPolicy, MaxTotalBackoffBoundsEveryDrawnSequence)
{
    net::RetryPolicy policy;
    policy.maxAttempts = 4;
    const double cap = policy.maxTotalBackoff().count();
    Rng rng(3);
    for (int trial = 0; trial < 16; ++trial) {
        double total = 0.0;
        for (std::size_t retry = 1; retry < policy.maxAttempts;
             ++retry)
            total += policy.backoff(retry, rng).count();
        EXPECT_LE(total, cap + 1e-9);
    }
}

// ---------------------------------------------------------------
// HeartbeatDetector.

TEST(HeartbeatDetector, DeclaresDeadAtThreshold)
{
    net::HeartbeatDetector detector(4, 3);
    EXPECT_FALSE(detector.recordMiss(1));
    EXPECT_FALSE(detector.recordMiss(1));
    EXPECT_FALSE(detector.dead(1));
    EXPECT_TRUE(detector.recordMiss(1)); // third miss: newly dead
    EXPECT_TRUE(detector.dead(1));
    EXPECT_FALSE(detector.recordMiss(1)); // already dead: not "newly"
    EXPECT_EQ(detector.consecutiveMisses(1), 3u); // frozen once dead
}

TEST(HeartbeatDetector, HeardResetsAndRecovers)
{
    net::HeartbeatDetector detector(4, 2);
    detector.recordMiss(2);
    EXPECT_FALSE(detector.recordHeard(2)); // alive: nothing new
    EXPECT_EQ(detector.consecutiveMisses(2), 0u);
    detector.recordMiss(2);
    detector.recordMiss(2);
    EXPECT_TRUE(detector.dead(2));
    EXPECT_TRUE(detector.recordHeard(2)); // newly recovered
    EXPECT_FALSE(detector.dead(2));
    EXPECT_EQ(detector.consecutiveMisses(2), 0u);
}

TEST(HeartbeatDetector, DeadNodesAscendingAndLatencyBound)
{
    net::HeartbeatDetector detector(5, 1);
    detector.recordMiss(3);
    detector.recordMiss(0);
    detector.recordMiss(4);
    EXPECT_EQ(detector.deadNodes(),
              (std::vector<std::size_t>{0, 3, 4}));
    EXPECT_DOUBLE_EQ(detector.detectionLatency(4.0_ms).count(), 8.0);
}

TEST(HeartbeatDetector, DetectionLatencyScalesWithObservationCadence)
{
    // The bound is honest about the observation cadence: a detector
    // fed once per interval needs threshold+1 intervals, one fed k
    // times per interval crosses the same threshold in
    // ceil(threshold/k)+1.
    net::HeartbeatDetector detector(4, 3);
    EXPECT_DOUBLE_EQ(detector.detectionLatency(4.0_ms).count(),
                     16.0);
    EXPECT_DOUBLE_EQ(detector.detectionLatency(4.0_ms, 2).count(),
                     12.0);
    EXPECT_DOUBLE_EQ(detector.detectionLatency(4.0_ms, 3).count(),
                     8.0);
    // More observations than the threshold cannot beat one interval
    // (+1 for the window in flight), and zero is treated as one.
    EXPECT_DOUBLE_EQ(detector.detectionLatency(4.0_ms, 64).count(),
                     8.0);
    EXPECT_DOUBLE_EQ(detector.detectionLatency(4.0_ms, 0).count(),
                     16.0);
}

// ---------------------------------------------------------------
// FaultInjector.

TEST(FaultInjector, DropoutWindowIsHalfOpen)
{
    sim::FaultPlan plan;
    plan.dropouts.push_back({10.0_ms, 20.0_ms});
    sim::FaultInjector injector(plan, 1);
    EXPECT_FALSE(injector.inDropout(units::Micros{9'999.0}));
    EXPECT_TRUE(injector.inDropout(units::Micros{10'000.0}));
    EXPECT_TRUE(injector.inDropout(units::Micros{19'999.0}));
    EXPECT_FALSE(injector.inDropout(units::Micros{20'000.0}));
}

TEST(FaultInjector, LatestStartingBerSpikeWins)
{
    sim::FaultPlan plan;
    plan.berSpikes.push_back({0.0_ms, 100.0_ms, 1e-4});
    plan.berSpikes.push_back({50.0_ms, 80.0_ms, 1e-2});
    sim::FaultInjector injector(plan, 1);
    EXPECT_DOUBLE_EQ(injector.berOverrideAt(units::Micros{40'000.0}),
                     1e-4);
    EXPECT_DOUBLE_EQ(injector.berOverrideAt(units::Micros{60'000.0}),
                     1e-2);
    EXPECT_DOUBLE_EQ(injector.berOverrideAt(units::Micros{90'000.0}),
                     1e-4);
    EXPECT_LT(injector.berOverrideAt(units::Micros{200'000.0}), 0.0);
}

TEST(FaultInjector, OverlappingThrottlesMultiply)
{
    sim::FaultPlan plan;
    plan.throttles.push_back({0, 0.0_ms, 100.0_ms, 2.0});
    plan.throttles.push_back({0, 50.0_ms, 100.0_ms, 3.0});
    plan.throttles.push_back({1, 0.0_ms, 100.0_ms, 5.0});
    sim::FaultInjector injector(plan, 1);
    EXPECT_DOUBLE_EQ(injector.throttleAt(0, units::Micros{10'000.0}),
                     2.0);
    EXPECT_DOUBLE_EQ(injector.throttleAt(0, units::Micros{60'000.0}),
                     6.0);
    EXPECT_DOUBLE_EQ(injector.throttleAt(1, units::Micros{60'000.0}),
                     5.0);
    EXPECT_DOUBLE_EQ(injector.throttleAt(2, units::Micros{60'000.0}),
                     1.0);
}

TEST(FaultInjector, PartitionWindowIsHalfOpenPerCluster)
{
    sim::FaultPlan plan;
    plan.partitions.push_back({1, 10.0_ms, 20.0_ms});
    plan.partitions.push_back({1, 30.0_ms, 40.0_ms});
    sim::FaultInjector injector(plan, 1);
    EXPECT_FALSE(injector.inPartition(1, units::Micros{9'999.0}));
    EXPECT_TRUE(injector.inPartition(1, units::Micros{10'000.0}));
    EXPECT_TRUE(injector.inPartition(1, units::Micros{19'999.0}));
    EXPECT_FALSE(injector.inPartition(1, units::Micros{20'000.0}));
    EXPECT_TRUE(injector.inPartition(1, units::Micros{35'000.0}));
    // Only the named cluster is severed.
    EXPECT_FALSE(injector.inPartition(0, units::Micros{15'000.0}));
    EXPECT_FALSE(injector.inPartition(2, units::Micros{15'000.0}));
}

TEST(FaultInjector, BackboneBerSpikeWinsTiesOverPlanWide)
{
    sim::FaultPlan plan;
    plan.berSpikes.push_back({0.0_ms, 100.0_ms, 1e-4});
    plan.backboneBerSpikes.push_back({0.0_ms, 50.0_ms, 1e-2});
    sim::FaultInjector injector(plan, 1);
    // The intra-cluster view never sees the backbone spike.
    EXPECT_DOUBLE_EQ(injector.berOverrideAt(units::Micros{10'000.0}),
                     1e-4);
    // The backbone view: the backbone-specific spike wins the tie
    // while it covers t, then the plan-wide spike still applies.
    EXPECT_DOUBLE_EQ(
        injector.backboneBerOverrideAt(units::Micros{10'000.0}),
        1e-2);
    EXPECT_DOUBLE_EQ(
        injector.backboneBerOverrideAt(units::Micros{60'000.0}),
        1e-4);
    EXPECT_LT(
        injector.backboneBerOverrideAt(units::Micros{200'000.0}),
        0.0);
}

TEST(FaultInjector, NvmDrawsOnlyForConfiguredNodes)
{
    sim::FaultPlan plan;
    plan.nvmFailures.push_back({1, 0.5});
    // Interleave draws for an unconfigured node into one of two
    // same-seed injectors: the configured node's Bernoulli sequence
    // must be unaffected (unconfigured nodes consume no RNG state).
    sim::FaultInjector clean(plan, 42);
    sim::FaultInjector noisy(plan, 42);
    for (int i = 0; i < 200; ++i) {
        EXPECT_FALSE(noisy.nvmWriteFails(0));
        EXPECT_FALSE(noisy.nvmWriteFails(3));
        EXPECT_EQ(clean.nvmWriteFails(1), noisy.nvmWriteFails(1));
    }
    EXPECT_GT(clean.nvmFailuresDrawn(), 0u);
    EXPECT_LT(clean.nvmFailuresDrawn(), 200u);
    EXPECT_EQ(clean.nvmFailuresDrawn(), noisy.nvmFailuresDrawn());
}

// ---------------------------------------------------------------
// FaultPlan / channel contracts.

struct ContractViolation
{
    std::string kind;
};

void
throwingHandler(const char *kind, const char *, const char *, int)
{
    throw ContractViolation{kind};
}

class ContractGuard
{
  public:
    ContractGuard()
        : previous(util::setContractHandler(&throwingHandler))
    {
    }
    ~ContractGuard() { util::setContractHandler(previous); }

  private:
    util::ContractHandler previous;
};

TEST(FaultPlanContracts, ValidateRejectsMalformedPlans)
{
    // Contracts follow the build type (contracts_macros.hpp): the
    // violation half of this test only exists where the library was
    // compiled with them on — Debug and the sanitizer CI builds.
    const ContractGuard guard;
#if SCALO_CONTRACTS
    {
        sim::FaultPlan plan;
        plan.crashes.push_back({7, 10.0_ms}); // node out of range
        EXPECT_THROW(plan.validate(4), ContractViolation);
    }
    {
        sim::FaultPlan plan;
        plan.dropouts.push_back({20.0_ms, 10.0_ms}); // inverted
        EXPECT_THROW(plan.validate(4), ContractViolation);
    }
    {
        sim::FaultPlan plan;
        plan.nvmFailures.push_back({0, 1.5}); // probability > 1
        EXPECT_THROW(plan.validate(4), ContractViolation);
    }
    {
        sim::FaultPlan plan;
        plan.throttles.push_back({0, 0.0_ms, 10.0_ms, 0.5}); // < 1
        EXPECT_THROW(plan.validate(4), ContractViolation);
    }
#endif
    sim::FaultPlan ok;
    ok.crashes.push_back({3, 10.0_ms, 20.0_ms});
    ok.validate(4); // must not fire
}

TEST(FaultPlanContracts, HierarchicalKindsValidate)
{
    const ContractGuard guard;
#if SCALO_CONTRACTS
    {
        sim::FaultPlan plan; // cluster index out of range
        plan.relayCrashes.push_back({3, 10.0_ms});
        EXPECT_THROW(plan.validate(12, 3), ContractViolation);
    }
    {
        sim::FaultPlan plan; // inverted partition window
        plan.partitions.push_back({0, 20.0_ms, 10.0_ms});
        EXPECT_THROW(plan.validate(12, 3), ContractViolation);
    }
    {
        sim::FaultPlan plan; // BER above 1
        plan.backboneBerSpikes.push_back({0.0_ms, 10.0_ms, 1.5});
        EXPECT_THROW(plan.validate(12, 3), ContractViolation);
    }
    {
        sim::FaultPlan plan; // reboot before the crash
        plan.relayCrashes.push_back({0, 20.0_ms, 10.0_ms});
        EXPECT_THROW(plan.validate(12, 3), ContractViolation);
    }
#endif
    sim::FaultPlan ok;
    ok.relayCrashes.push_back({2, 10.0_ms, 20.0_ms});
    ok.partitions.push_back({1, 5.0_ms, 15.0_ms});
    ok.backboneBerSpikes.push_back({0.0_ms, 10.0_ms, 1e-3});
    ok.validate(12, 3); // must not fire
    // Callers that do not know their cluster plan yet pass 0: the
    // cluster-range half of the check is deferred, the rest holds.
    ok.validate(12);
}

TEST(ChannelFaults, SetBerContractAndRetarget)
{
    net::WirelessChannel channel(net::radioSpec(
                                     net::RadioDesign::LowPower),
                                 1);
    channel.setBer(0.0);
    channel.setBer(1.0);
    channel.setBer(1e-3);
    EXPECT_DOUBLE_EQ(channel.ber(), 1e-3);
#if SCALO_CONTRACTS
    const ContractGuard guard;
    EXPECT_THROW(channel.setBer(-0.1), ContractViolation);
    EXPECT_THROW(channel.setBer(1.5), ContractViolation);
#endif
}

TEST(ChannelFaults, OutageDropsEverythingDeterministically)
{
    net::WirelessChannel channel(net::radioSpec(
                                     net::RadioDesign::LowPower),
                                 1, /*ber_override=*/0.0);
    net::Packet packet;
    packet.source = 0;
    packet.destination = net::kBroadcast;
    packet.payload.assign(16, 0xab);

    channel.setOutage(true);
    for (int i = 0; i < 8; ++i)
        EXPECT_FALSE(channel.transmit(packet).headerOk);
    EXPECT_EQ(channel.stats().sent, 8u);
    EXPECT_EQ(channel.stats().headerDrops, 8u);

    channel.setOutage(false);
    EXPECT_TRUE(channel.transmit(packet).headerOk); // medium is back
}

// ---------------------------------------------------------------
// Graceful-degradation rescheduling.

sched::SystemConfig
fourNodeSystem()
{
    sched::SystemConfig system;
    system.nodes = 4;
    system.maxElectrodesPerNode = constants::kElectrodesPerNode;
    return system;
}

std::vector<sched::FlowSpec>
deploymentFlows()
{
    return {sched::seizureDetectionFlow(),
            sched::hashSimilarityFlow(net::Pattern::AllToAll)};
}

double
nodeElectrodes(const sched::Schedule &schedule, std::size_t node)
{
    double total = 0.0;
    for (const sched::FlowAllocation &flow : schedule.flows)
        total += flow.electrodesPerNode[node];
    return total;
}

TEST(Reschedule, NeverAssignsWorkToDeadNodes)
{
    const sched::Scheduler scheduler(fourNodeSystem());
    const auto flows = deploymentFlows();
    const std::vector<double> priorities{1.0, 3.0};
    const sched::Schedule original =
        scheduler.schedule(flows, priorities);
    ASSERT_TRUE(original.feasible);

    const std::vector<std::vector<std::size_t>> dead_sets{
        {1}, {0, 1}, {1, 2, 3}};
    for (const auto &dead : dead_sets) {
        const sched::RescheduleResult result = scheduler.reschedule(
            flows, priorities, original, dead);
        ASSERT_TRUE(result.schedule.feasible)
            << "dead set size " << dead.size();
        EXPECT_EQ(result.deadNodes, dead);
        for (const std::size_t node : dead) {
            EXPECT_DOUBLE_EQ(nodeElectrodes(result.schedule, node),
                             0.0);
            EXPECT_DOUBLE_EQ(
                result.schedule.nodePower[node].count(), 0.0);
        }
        // Survivors still carry work.
        double survivor_total = 0.0;
        for (std::size_t node = 0; node < 4; ++node)
            if (std::find(dead.begin(), dead.end(), node) ==
                dead.end())
                survivor_total +=
                    nodeElectrodes(result.schedule, node);
        EXPECT_GT(survivor_total, 0.0);
        EXPECT_LE(result.throughputAfter.count(),
                  result.throughputBefore.count() + 1e-9);
    }
}

TEST(Reschedule, GreedyRepairShedsDeadAndRedistributes)
{
    const sched::Scheduler scheduler(fourNodeSystem());
    const auto flows = deploymentFlows();
    const sched::Schedule original =
        scheduler.schedule(flows, {1.0, 3.0});
    ASSERT_TRUE(original.feasible);

    const sched::Schedule repaired =
        scheduler.greedyRepair(flows, original, {1});
    ASSERT_TRUE(repaired.feasible);
    EXPECT_DOUBLE_EQ(nodeElectrodes(repaired, 1), 0.0);
    // Survivors keep at least what they had: repair only adds.
    for (const std::size_t node : {0u, 2u, 3u})
        EXPECT_GE(nodeElectrodes(repaired, node),
                  nodeElectrodes(original, node) - 1e-9);
    // Repair never worsens the peak power. (The absolute cap is the
    // ILP's to enforce; its tangent-cut relaxation of the quadratic
    // term already lets the decoded power sit a hair above it, and
    // the greedy pass clips against that same decoded headroom.)
    double original_peak = 0.0;
    for (const units::Milliwatts p : original.nodePower)
        original_peak = std::max(original_peak, p.count());
    for (std::size_t node = 0; node < 4; ++node)
        EXPECT_LE(repaired.nodePower[node].count(),
                  original_peak + 1e-6);
}

TEST(Reschedule, EmptyDeadSetReproducesTheOriginal)
{
    const sched::Scheduler scheduler(fourNodeSystem());
    const auto flows = deploymentFlows();
    const std::vector<double> priorities{1.0, 3.0};
    const sched::Schedule original =
        scheduler.schedule(flows, priorities);
    const sched::RescheduleResult result =
        scheduler.reschedule(flows, priorities, original, {});
    ASSERT_TRUE(result.schedule.feasible);
    for (std::size_t node = 0; node < 4; ++node)
        EXPECT_DOUBLE_EQ(nodeElectrodes(result.schedule, node),
                         nodeElectrodes(original, node));
    EXPECT_DOUBLE_EQ(result.throughputAfter.count(),
                     result.throughputBefore.count());
}

// ---------------------------------------------------------------
// End-to-end fault runs through the simulation runtime.

sim::SystemSimConfig
deploymentSimConfig(units::Millis duration)
{
    const sched::SystemConfig system = fourNodeSystem();
    const sched::Scheduler scheduler(system);
    sim::SystemSimConfig config;
    config.system = system;
    config.flows = deploymentFlows();
    config.priorities = {1.0, 3.0};
    config.schedule = scheduler.schedule(config.flows, {1.0, 3.0});
    config.duration = duration;
    return config;
}

// The acceptance scenario: node 1 crashes at t=5 s in the 4-node
// seizure-propagation deployment. The heartbeat detector must declare
// it dead within its worst-case bound, the scheduler must remap the
// work onto nodes {0, 2, 3}, and both flows must keep completing
// windows afterwards.
TEST(FaultRuns, CrashDetectedReschedledAndSurvived)
{
    sim::SystemSimConfig config = deploymentSimConfig(6'000.0_ms);
    ASSERT_TRUE(config.schedule.feasible);
    config.recordTrace = true;
    config.faults.crashes.push_back({1, 5'000.0_ms});
    sim::SystemSim sim(config);
    const sim::SystemSimResult result = sim.run();

    // Detection: within missThreshold+1 exchange rounds of the 4 ms
    // hash flow, plus the round-assembly deadline (one window).
    ASSERT_EQ(result.nodesDown.size(), 1u);
    const sim::NodeDownEvent &down = result.nodesDown.front();
    EXPECT_EQ(down.node, 1u);
    EXPECT_DOUBLE_EQ(down.crashedAt.count(), 5'000.0);
    const double bound =
        net::HeartbeatDetector(4, config.heartbeatMissThreshold)
            .detectionLatency(4.0_ms)
            .count() +
        4.0;
    EXPECT_GT(down.detectedAt.count(), down.crashedAt.count());
    EXPECT_LE(down.detectedAt.count() - down.crashedAt.count(),
              bound);

    // Degradation: one reschedule, off node 1, onto the survivors.
    ASSERT_EQ(result.reschedules.size(), 1u);
    const sim::RescheduleEvent &resched = result.reschedules.front();
    EXPECT_EQ(resched.deadNodes, (std::vector<std::size_t>{1}));
    EXPECT_LT(resched.throughputAfter.count(),
              resched.throughputBefore.count());

    // The system keeps producing: the exchange flow completes every
    // round including the post-crash second.
    const sim::FlowSimStats &hash = result.flows[1];
    EXPECT_EQ(hash.windowsCompleted, hash.windowsSubmitted);
    EXPECT_GT(hash.windowsCompleted, 1'400u);
    // The local flow only loses node 1's own windows.
    const sim::FlowSimStats &seizure = result.flows[0];
    EXPECT_GT(seizure.windowsCompleted, 5'500u);
    EXPECT_GT(seizure.windowsDropped, 0u);
    EXPECT_LT(seizure.windowsDropped, seizure.windowsSubmitted / 4);

    // The failure story is visible in the trace.
    const sim::TraceCounters totals = sim.trace().totals();
    EXPECT_EQ(totals[sim::TraceEventKind::FaultInjected], 1u);
    EXPECT_EQ(totals[sim::TraceEventKind::NodeDown], 1u);
    EXPECT_EQ(totals[sim::TraceEventKind::Resched], 1u);
    EXPECT_GT(totals[sim::TraceEventKind::ExchangeTimedOut], 0u);
    EXPECT_EQ(totals[sim::TraceEventKind::NodeRecovered], 0u);
}

TEST(FaultRuns, RebootRejoinsAndRestoresTheSchedule)
{
    sim::SystemSimConfig config = deploymentSimConfig(200.0_ms);
    ASSERT_TRUE(config.schedule.feasible);
    config.recordTrace = true;
    config.faults.crashes.push_back(
        {1, 40.0_ms, /*rebootAt=*/80.0_ms});
    sim::SystemSim sim(config);
    const sim::SystemSimResult result = sim.run();

    ASSERT_EQ(result.nodesDown.size(), 1u);
    ASSERT_GE(result.reschedules.size(), 2u);
    // The final reschedule runs against an empty dead set: the
    // recovered node gets its original allocation back.
    EXPECT_TRUE(result.reschedules.back().deadNodes.empty());
    EXPECT_DOUBLE_EQ(result.reschedules.back().throughputAfter.count(),
                     result.reschedules.front().throughputBefore.count());
    const sim::TraceCounters totals = sim.trace().totals();
    EXPECT_EQ(totals[sim::TraceEventKind::NodeDown], 1u);
    EXPECT_EQ(totals[sim::TraceEventKind::NodeRecovered], 1u);
    EXPECT_EQ(totals[sim::TraceEventKind::FaultInjected], 2u);
}

TEST(FaultRuns, DropoutLosesPacketsButNotTheSystem)
{
    sim::SystemSimConfig config = deploymentSimConfig(120.0_ms);
    ASSERT_TRUE(config.schedule.feasible);
    config.faults.dropouts.push_back({40.0_ms, 60.0_ms});
    sim::SystemSim sim(config);
    const sim::SystemSimResult result = sim.run();
    EXPECT_GT(result.packetsLost, 0u);
    EXPECT_GT(result.flows[1].retransmissions, 0u);
    for (const sim::FlowSimStats &flow : result.flows)
        EXPECT_GT(flow.windowsCompleted, 0u);
}

TEST(FaultRuns, NvmFailuresAreCountedAndBounded)
{
    sim::SystemSimConfig config = deploymentSimConfig(100.0_ms);
    ASSERT_TRUE(config.schedule.feasible);
    config.faults.nvmFailures.push_back({2, 0.5});
    sim::SystemSim sim(config);
    const sim::SystemSimResult result = sim.run();
    EXPECT_GT(result.nvmWriteFailures, 0u);
    // Only node 2's appends can fail; the others persist everything.
    sim::SystemSimConfig clean = deploymentSimConfig(100.0_ms);
    sim::SystemSim clean_sim(clean);
    const sim::SystemSimResult clean_result = clean_sim.run();
    for (const std::size_t node : {0u, 1u, 3u})
        EXPECT_EQ(result.nodes[node].nvmBytesWritten,
                  clean_result.nodes[node].nvmBytesWritten);
    EXPECT_LT(result.nodes[2].nvmBytesWritten,
              clean_result.nodes[2].nvmBytesWritten);
}

TEST(FaultRuns, ThrottleSlowsTheThrottledNodeOnly)
{
    sim::SystemSimConfig clean = deploymentSimConfig(100.0_ms);
    ASSERT_TRUE(clean.schedule.feasible);
    sim::SystemSim clean_sim(clean);
    const sim::SystemSimResult baseline = clean_sim.run();

    sim::SystemSimConfig config = deploymentSimConfig(100.0_ms);
    config.faults.throttles.push_back({0, 20.0_ms, 60.0_ms, 4.0});
    sim::SystemSim sim(config);
    const sim::SystemSimResult result = sim.run();
    // Throttling stretches the slowed node's pipeline: the local
    // flow's worst-case response can only get worse.
    EXPECT_GE(result.flows[0].maxResponse.count(),
              baseline.flows[0].maxResponse.count());
    for (const sim::FlowSimStats &flow : result.flows)
        EXPECT_GT(flow.windowsCompleted, 0u);
}

// ---------------------------------------------------------------
// Determinism properties.

TEST(FaultDeterminism, EmptyPlanLeavesTheHappyPathUntouched)
{
    sim::SystemSimConfig config = deploymentSimConfig(100.0_ms);
    ASSERT_TRUE(config.schedule.feasible);
    config.recordTrace = true;
    sim::SystemSim sim(config);
    const sim::SystemSimResult result = sim.run();

    EXPECT_TRUE(result.nodesDown.empty());
    EXPECT_TRUE(result.reschedules.empty());
    EXPECT_EQ(result.exchangeTimeouts, 0u);
    EXPECT_EQ(result.nvmWriteFailures, 0u);
    EXPECT_EQ(result.packetsLost, 0u);
    const sim::TraceCounters totals = sim.trace().totals();
    EXPECT_EQ(totals[sim::TraceEventKind::FaultInjected], 0u);
    EXPECT_EQ(totals[sim::TraceEventKind::NodeDown], 0u);
    EXPECT_EQ(totals[sim::TraceEventKind::NodeRecovered], 0u);
    EXPECT_EQ(totals[sim::TraceEventKind::ExchangeTimedOut], 0u);
    EXPECT_EQ(totals[sim::TraceEventKind::Resched], 0u);
}

TEST(FaultDeterminism, SameSeedSamePlanSameTraceBytes)
{
    const auto run_once = [] {
        sim::SystemSimConfig config =
            deploymentSimConfig(150.0_ms);
        config.recordTrace = true;
        config.faults.crashes.push_back(
            {1, 50.0_ms, /*rebootAt=*/100.0_ms});
        config.faults.dropouts.push_back({20.0_ms, 30.0_ms});
        config.faults.berSpikes.push_back({60.0_ms, 70.0_ms, 1e-3});
        config.faults.nvmFailures.push_back({2, 0.3});
        config.faults.throttles.push_back(
            {3, 10.0_ms, 90.0_ms, 2.0});
        sim::SystemSim sim(config);
        sim.run();
        return sim.trace().toChromeJson();
    };
    const std::string first = run_once();
    const std::string second = run_once();
    ASSERT_FALSE(first.empty());
    EXPECT_EQ(first, second);
    EXPECT_NE(first.find("node-down"), std::string::npos);
    EXPECT_NE(first.find("resched"), std::string::npos);
}

// ---------------------------------------------------------------
// Partial query results under dead shards and deadlines.

class PartialQueryFixture : public ::testing::Test
{
  protected:
    static constexpr std::size_t kNodes = 4;
    static constexpr std::size_t kSamples = 64;

    void
    SetUp() override
    {
        engine = std::make_unique<app::QueryEngine>(kNodes, kSamples,
                                                    7);
        Rng noise(17);
        // Node index rides in the electrode id so a match's origin
        // shard is recoverable from the result alone. Node 3 stores
        // 4x the data, so its shard is the modeled-latency straggler.
        for (NodeId node = 0; node < kNodes; ++node) {
            const std::uint64_t count = node == 3 ? 200 : 50;
            for (std::uint64_t w = 0; w < count; ++w) {
                std::vector<double> window(kSamples);
                for (double &sample : window)
                    sample = noise.gaussian(0.0, 1.0);
                engine->ingest(node, w * 1'000 + node, node, window,
                               (w % 3) == 0);
            }
        }
    }

    app::Query
    allWindows() const
    {
        app::Query query;
        query.t0Us = 0;
        query.t1Us = 1'000'000;
        return query;
    }

    std::unique_ptr<app::QueryEngine> engine;
};

TEST_F(PartialQueryFixture, DownShardYieldsPrefixConsistentSubset)
{
    const app::QueryExecution full = engine->execute(allWindows());
    EXPECT_TRUE(full.coverage.complete());
    ASSERT_FALSE(full.matches.empty());

    engine->setNodeDown(2);
    EXPECT_TRUE(engine->nodeDown(2));
    const app::QueryExecution partial =
        engine->execute(allWindows());
    EXPECT_EQ(partial.coverage.answeredShards, kNodes - 1);
    EXPECT_EQ(partial.coverage.totalShards, kNodes);
    EXPECT_FALSE(partial.coverage.complete());
    EXPECT_DOUBLE_EQ(partial.coverage.fraction(), 0.75);
    EXPECT_FALSE(partial.perNode[2].answered);

    // Nothing from the dead shard...
    for (const app::StoredWindow *window : partial.matches)
        EXPECT_NE(window->electrode, 2u);
    // ...and what remains is exactly the fault-free answer minus
    // node 2's contributions, in the same order (an ordered subset).
    std::vector<const app::StoredWindow *> expected;
    for (const app::StoredWindow *window : full.matches)
        if (window->electrode != 2u)
            expected.push_back(window);
    EXPECT_EQ(partial.matches, expected);

    engine->setNodeDown(2, false);
    const app::QueryExecution restored =
        engine->execute(allWindows());
    EXPECT_TRUE(restored.coverage.complete());
    EXPECT_EQ(restored.matches, full.matches);
}

TEST_F(PartialQueryFixture, ShardDeadlineDropsTheStraggler)
{
    const app::QueryExecution full = engine->execute(allWindows());
    double fastest = full.perNode[0].modeled.count();
    double slowest = fastest;
    for (const app::QueryStats &stats : full.perNode) {
        fastest = std::min(fastest, stats.modeled.count());
        slowest = std::max(slowest, stats.modeled.count());
    }
    ASSERT_LT(fastest, slowest); // node 3 really is the straggler

    app::Query bounded = allWindows();
    bounded.shardDeadline =
        units::Millis{(fastest + slowest) / 2.0};
    const app::QueryExecution partial = engine->execute(bounded);
    EXPECT_EQ(partial.coverage.answeredShards, kNodes - 1);
    EXPECT_FALSE(partial.perNode[3].answered);
    for (const app::StoredWindow *window : partial.matches)
        EXPECT_NE(window->electrode, 3u);
    // Giving up still costs the deadline.
    EXPECT_GE(partial.latency.count(),
              bounded.shardDeadline.count());
    // The straggler's windows are excluded from the scan accounting.
    EXPECT_LT(partial.scanned, full.scanned);
}

// ---------------------------------------------------------------
// Partition tolerance in the hierarchical fabric: relay failover,
// backbone re-stitching, and degraded-then-healed serving.

/** 12 nodes in 3 balanced TDMA clusters, the Section 6 flow pair. */
sim::SystemSimConfig
hierarchicalSimConfig(units::Millis duration)
{
    sched::SystemConfig system;
    system.nodes = 12;
    system.maxElectrodesPerNode = constants::kElectrodesPerNode;
    system.clusters = net::ClusterPlan::balanced(12, 3);
    const sched::Scheduler scheduler(system);
    sim::SystemSimConfig config;
    config.system = system;
    config.flows = deploymentFlows();
    config.priorities = {1.0, 3.0};
    config.schedule =
        scheduler.schedule(config.flows, config.priorities);
    config.duration = duration;
    return config;
}

// The hierarchical acceptance scenario (the tentpole contract): in a
// 12-node / 3-cluster deployment, cluster 2's relay crashes mid-run
// AND cluster 1 is severed from the backbone for 10 s. The run must
// complete with (a) the relay failover detected and relay duty
// migrated, (b) the backbone re-stitched with the throughput delta
// reported, (c) the partition declared at backbone cadence and healed
// when the window closes, and (d) both flows still completing
// windows throughout.
TEST(FaultRuns, RelayCrashAndClusterPartitionFailOverAndHeal)
{
    sim::SystemSimConfig config =
        hierarchicalSimConfig(12'000.0_ms);
    ASSERT_TRUE(config.schedule.feasible);
    config.recordTrace = true;
    // Cluster 1 severed for 10 s; cluster 2's relay dies at 6 s.
    config.faults.partitions.push_back(
        {1, 1'000.0_ms, 11'000.0_ms});
    config.faults.relayCrashes.push_back({2, 6'000.0_ms});
    sim::SystemSim sim(config);
    const sim::SystemSimResult result = sim.run();
    EXPECT_EQ(result.clusters, 3u);

    // (c) Partition declared within the backbone-cadence detection
    // bound — the detector observes once per backbone round of the
    // single networked flow (4 ms windows), plus one round-assembly
    // deadline of slack — and healed after the window closes.
    ASSERT_GE(result.partitions.size(), 2u);
    const sim::PartitionEvent &severed = result.partitions.front();
    EXPECT_EQ(severed.cluster, 1u);
    EXPECT_FALSE(severed.healed);
    const double bound =
        net::HeartbeatDetector(3, config.heartbeatMissThreshold)
            .detectionLatency(4.0_ms, 1)
            .count() +
        4.0;
    EXPECT_GT(severed.at.count(), 1'000.0);
    EXPECT_LE(severed.at.count() - 1'000.0, bound);
    bool healed = false;
    for (const sim::PartitionEvent &event : result.partitions)
        if (event.cluster == 1 && event.healed) {
            healed = true;
            EXPECT_GT(event.at.count(), 11'000.0);
            EXPECT_LE(event.at.count() - 11'000.0, bound);
        }
    EXPECT_TRUE(healed);
    EXPECT_GT(result.relayForwardsDropped, 0u);

    // (a) The relay crash: whoever held cluster 2's duty (node 8,
    // its first member) is declared dead within the intra-cluster
    // heartbeat bound, and the failover is traced.
    bool relay_dead = false;
    for (const sim::NodeDownEvent &down : result.nodesDown)
        if (down.node == 8) {
            relay_dead = true;
            EXPECT_DOUBLE_EQ(down.crashedAt.count(), 6'000.0);
            EXPECT_LE(down.detectedAt.count() - 6'000.0, bound);
        }
    EXPECT_TRUE(relay_dead);
    const sim::TraceCounters totals = sim.trace().totals();
    EXPECT_GE(totals[sim::TraceEventKind::RelayFailover], 1u);
    EXPECT_GE(totals[sim::TraceEventKind::PartitionStart], 1u);
    EXPECT_GE(totals[sim::TraceEventKind::PartitionHealed], 1u);

    // (b) The backbone re-stitched — at least once around the
    // unreachable cluster and once around the dead relay — with the
    // degradation delta reported.
    ASSERT_GE(result.restitches.size(), 2u);
    EXPECT_GE(totals[sim::TraceEventKind::BackboneRestitch], 2u);
    bool saw_unreachable = false;
    bool saw_dead_relay = false;
    for (const sim::RestitchEvent &restitch : result.restitches) {
        EXPECT_GT(restitch.throughputBefore.count(), 0.0);
        EXPECT_GT(restitch.throughputAfter.count(), 0.0);
        EXPECT_LE(restitch.throughputAfter.count(),
                  restitch.throughputBefore.count() + 1e-9);
        saw_unreachable =
            saw_unreachable ||
            std::find(restitch.unreachableClusters.begin(),
                      restitch.unreachableClusters.end(),
                      std::size_t{1}) !=
                restitch.unreachableClusters.end();
        saw_dead_relay =
            saw_dead_relay ||
            std::find(restitch.deadNodes.begin(),
                      restitch.deadNodes.end(), std::size_t{8}) !=
                restitch.deadNodes.end();
    }
    EXPECT_TRUE(saw_unreachable);
    EXPECT_TRUE(saw_dead_relay);

    // (d) The system kept producing throughout.
    for (const sim::FlowSimStats &flow : result.flows)
        EXPECT_GT(flow.windowsCompleted,
                  flow.windowsSubmitted / 2);
}

// Same-seed fault traces are byte-identical serial vs parallel at
// every thread count — the determinism contract extended to the new
// fault kinds (relay crash, partition, backbone BER spike).
TEST(FaultDeterminism, HierarchicalFaultTraceBytesAcrossThreadCounts)
{
    const auto run_once = [](bool parallel, std::size_t threads) {
        sim::SystemSimConfig config =
            hierarchicalSimConfig(2'400.0_ms);
        config.recordTrace = true;
        config.parallel = parallel;
        config.threads = threads;
        config.faults.partitions.push_back(
            {1, 800.0_ms, 1'600.0_ms});
        config.faults.relayCrashes.push_back({2, 1'200.0_ms});
        config.faults.backboneBerSpikes.push_back(
            {400.0_ms, 600.0_ms, 1e-3});
        sim::SystemSim sim(config);
        const sim::SystemSimResult result = sim.run();
        EXPECT_EQ(result.ranParallel, parallel);
        return sim.trace().toChromeJson();
    };
    const std::string serial = run_once(false, 0);
    ASSERT_FALSE(serial.empty());
    EXPECT_NE(serial.find("relay-failover"), std::string::npos);
    EXPECT_NE(serial.find("partition-start"), std::string::npos);
    EXPECT_NE(serial.find("partition-healed"), std::string::npos);
    EXPECT_NE(serial.find("backbone-restitch"), std::string::npos);
    for (const std::size_t threads : {2u, 4u, 8u})
        EXPECT_EQ(serial, run_once(true, threads))
            << "threads=" << threads;
}

// The empty-plan regression (satellite of the determinism contract):
// a fault-free run of the parallel engine must draw zero RNG from
// every fault stream — shared and per-node alike — so the happy path
// stays byte-identical as fault kinds accumulate.
TEST(FaultDeterminism, EmptyPlanDrawsNoFaultRngOnAnyStream)
{
    // Injector-level: exercising every query surface of an empty
    // plan consumes nothing.
    sim::FaultInjector injector(sim::FaultPlan{}, 42);
    injector.partitionNvmStreams(12);
    for (std::uint32_t node = 0; node < 12; ++node) {
        EXPECT_FALSE(injector.nvmWriteFails(node));
        injector.throttleAt(node, units::Micros{1'000.0});
    }
    injector.inDropout(units::Micros{1'000.0});
    injector.inPartition(0, units::Micros{1'000.0});
    injector.berOverrideAt(units::Micros{1'000.0});
    injector.backboneBerOverrideAt(units::Micros{1'000.0});
    for (const std::uint64_t draws : injector.rngDrawsPerStream())
        EXPECT_EQ(draws, 0u);

    // Engine-level: a full parallel multi-cluster run with an empty
    // plan leaves every stream untouched.
    sim::SystemSimConfig config = hierarchicalSimConfig(400.0_ms);
    ASSERT_TRUE(config.schedule.feasible);
    config.parallel = true;
    config.threads = 4;
    sim::SystemSim sim(config);
    const sim::SystemSimResult result = sim.run();
    EXPECT_TRUE(result.ranParallel);
    const std::vector<std::uint64_t> draws = sim.faultRngDraws();
    ASSERT_EQ(draws.size(), 13u); // shared + one per node
    for (const std::uint64_t count : draws)
        EXPECT_EQ(count, 0u);
    EXPECT_TRUE(result.partitions.empty());
    EXPECT_TRUE(result.restitches.empty());
    EXPECT_EQ(result.relayForwardsDropped, 0u);
}

// Cluster-granular degraded serving: with the fabric's cluster plan
// installed, a partitioned cluster's shards drop out of the fan-out
// as one failure domain, coverage names the cluster, the answer is a
// prefix-consistent subset, and the heal restores everything.
TEST(PartialQueryCoverage, PartitionedClusterDegradesAndRejoins)
{
    constexpr std::size_t kNodes = 12;
    constexpr std::size_t kSamples = 32;
    app::QueryEngine engine(kNodes, kSamples, 7);
    engine.setClusterPlan(net::ClusterPlan::balanced(kNodes, 3));
    Rng noise(23);
    for (NodeId node = 0; node < kNodes; ++node)
        for (std::uint64_t w = 0; w < 20; ++w) {
            std::vector<double> window(kSamples);
            for (double &sample : window)
                sample = noise.gaussian(0.0, 1.0);
            // Node id rides in the electrode so a match's origin
            // shard is recoverable from the result alone.
            engine.ingest(node, w * 1'000 + node, node, window,
                          false);
        }

    app::Query query;
    query.t0Us = 0;
    query.t1Us = 1'000'000;
    const app::QueryExecution full = engine.execute(query);
    EXPECT_TRUE(full.coverage.complete());
    ASSERT_EQ(full.coverage.clusters.size(), 3u);
    for (const app::ClusterCoverage &slice : full.coverage.clusters)
        EXPECT_TRUE(slice.complete());

    engine.setClusterDown(1);
    EXPECT_TRUE(engine.clusterDown(1));
    const app::QueryExecution partial = engine.execute(query);
    EXPECT_FALSE(partial.coverage.complete());
    EXPECT_EQ(partial.coverage.answeredShards, 8u);
    EXPECT_EQ(partial.coverage.totalShards, kNodes);
    ASSERT_EQ(partial.coverage.clusters.size(), 3u);
    EXPECT_TRUE(partial.coverage.clusters[0].complete());
    EXPECT_EQ(partial.coverage.clusters[1].answeredShards, 0u);
    EXPECT_EQ(partial.coverage.clusters[1].totalShards, 4u);
    EXPECT_TRUE(partial.coverage.clusters[2].complete());

    // Prefix-consistent: exactly the full answer minus cluster 1's
    // members (nodes 4-7), in the same order.
    std::vector<const app::StoredWindow *> expected;
    for (const app::StoredWindow *window : full.matches)
        if (window->electrode < 4 || window->electrode > 7)
            expected.push_back(window);
    EXPECT_EQ(partial.matches, expected);

    engine.setClusterDown(1, false);
    const app::QueryExecution restored = engine.execute(query);
    EXPECT_TRUE(restored.coverage.complete());
    EXPECT_EQ(restored.matches, full.matches);
}

} // namespace
} // namespace scalo
