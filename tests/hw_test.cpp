/**
 * @file
 * Unit tests for scalo::hw: the Table 1 PE catalog, the GALS fabric
 * power/latency model, the NVM/storage-controller model and the
 * thermal/placement model.
 */

#include <gtest/gtest.h>

#include "scalo/hw/fabric.hpp"
#include "scalo/hw/nvm.hpp"
#include "scalo/hw/pe.hpp"
#include "scalo/hw/thermal.hpp"

namespace scalo::hw {
namespace {

using namespace units::literals;

TEST(PeCatalog, HasAllThirtyOnePes)
{
    EXPECT_EQ(peCatalog().size(),
              static_cast<std::size_t>(kPeKindCount));
}

TEST(PeCatalog, Table1SpotChecks)
{
    const PeSpec &dtw = peSpec(PeKind::DTW);
    EXPECT_DOUBLE_EQ(dtw.maxFreq.count(), 50.0);
    EXPECT_DOUBLE_EQ(dtw.leakage.count(), 167.93);
    EXPECT_DOUBLE_EQ(dtw.sramLeakage.count(), 48.50);
    EXPECT_DOUBLE_EQ(dtw.dynPerElectrode.count(), 26.94);
    EXPECT_DOUBLE_EQ(dtw.latency->count(), 0.003);
    EXPECT_DOUBLE_EQ(dtw.areaKge, 72.0);

    const PeSpec &xcor = peSpec(PeKind::XCOR);
    EXPECT_DOUBLE_EQ(xcor.dynPerElectrode.count(), 44.11);
    EXPECT_DOUBLE_EQ(xcor.areaKge, 81.0);

    const PeSpec &sc = peSpec(PeKind::SC);
    EXPECT_DOUBLE_EQ(sc.latency->count(), 0.03);
    ASSERT_TRUE(sc.latencyMax.has_value());
    EXPECT_DOUBLE_EQ(sc.latencyMax->count(), 4.0);
}

TEST(PeCatalog, DataDependentLatenciesAreEmpty)
{
    for (auto kind : {PeKind::AES, PeKind::LIC, PeKind::LZ, PeKind::MA,
                      PeKind::RC}) {
        EXPECT_FALSE(peSpec(kind).latency.has_value())
            << peName(kind);
    }
}

TEST(PeCatalog, PowerModelIsLinearInElectrodes)
{
    const PeSpec &fft = peSpec(PeKind::FFT);
    const units::Microwatts base = fft.power(0.0);
    EXPECT_DOUBLE_EQ(base.count(), 141.97 + 85.58);
    EXPECT_DOUBLE_EQ((fft.power(96.0) - base).count(), 9.02 * 96.0);
}

TEST(PeCatalog, LookupByName)
{
    const PeSpec *svm = findPe("SVM");
    ASSERT_NE(svm, nullptr);
    EXPECT_EQ(svm->kind, PeKind::SVM);
    EXPECT_EQ(findPe("NOPE"), nullptr);
}

TEST(Fabric, SeizureDetectionPipelinePowerFitsBudget)
{
    // FFT + BBF + XCOR + SVM on all 96 electrodes must fit the 15 mW
    // cap with room for the ADC, NVM and radio (Figure 5's pipeline).
    Pipeline pipeline("seizure-detect",
                      {{PeKind::FFT, 96.0, 1},
                       {PeKind::BBF, 96.0, 1},
                       {PeKind::XCOR, 96.0, 1},
                       {PeKind::SVM, 96.0, 1},
                       {PeKind::THR, 96.0, 1}});
    EXPECT_LT(pipeline.power(), 8.0_mW);
    EXPECT_GT(pipeline.power(), 1.0_mW);
}

TEST(Fabric, LatencySumsStages)
{
    Pipeline pipeline("hash",
                      {{PeKind::HCONV, 96.0, 1},
                       {PeKind::NGRAM, 96.0, 1}});
    EXPECT_DOUBLE_EQ(pipeline.latency().count(), 1.5 + 1.5);
}

TEST(Fabric, WorstCaseUsesScBusyLatency)
{
    Pipeline pipeline("store", {{PeKind::SC, 96.0, 1}});
    EXPECT_DOUBLE_EQ(pipeline.latency(false).count(), 0.03);
    EXPECT_DOUBLE_EQ(pipeline.latency(true).count(), 4.0);
}

TEST(Fabric, ReplicasSplitWorkButPayLeakage)
{
    Pipeline one("x1", {{PeKind::BMUL, 96.0, 1}});
    Pipeline ten("x10", {{PeKind::BMUL, 96.0, 10}});
    const PeSpec &bmul = peSpec(PeKind::BMUL);
    // Same dynamic power total, 10x the leakage.
    EXPECT_NEAR((ten.power() - one.power()).count(),
                9.0 * bmul.idlePower().count(), 1e-9);
}

TEST(Fabric, ScaleElectrodesScalesDynOnly)
{
    Pipeline pipeline("p", {{PeKind::DTW, 96.0, 1}});
    const units::Microwatts full = pipeline.power();
    pipeline.scaleElectrodes(0.5);
    const units::Microwatts half = pipeline.power();
    const PeSpec &dtw = peSpec(PeKind::DTW);
    EXPECT_NEAR((full - half).count(),
                dtw.dynPerElectrode.count() * 48.0, 1e-9);
}

TEST(Fabric, InventoryValidation)
{
    NodeFabric fabric;
    EXPECT_EQ(fabric.available(PeKind::BMUL), 10);
    EXPECT_EQ(fabric.available(PeKind::FFT), 1);

    Pipeline ok("ok", {{PeKind::BMUL, 96.0, 10}});
    EXPECT_TRUE(fabric.validate({ok}).empty());

    Pipeline too_many("bad", {{PeKind::FFT, 96.0, 2}});
    EXPECT_FALSE(fabric.validate({too_many}).empty());
}

TEST(Fabric, IdlePowerIsSmall)
{
    // Total leakage of a full node inventory must leave room under
    // 15 mW; the GALS design powers unused PEs down to leakage only.
    NodeFabric fabric;
    EXPECT_LT(fabric.idlePower(), 6.0_mW);
    EXPECT_GT(fabric.areaKge(), 1'000.0);
}

TEST(Nvm, PaperParameters)
{
    const NvmSpec &nvm = nvmSpec();
    EXPECT_DOUBLE_EQ(nvm.leakage.count(), 0.26);
    EXPECT_DOUBLE_EQ(nvm.readEnergyPerPage.count(), 918.809);
    EXPECT_DOUBLE_EQ(nvm.writeEnergyPerPage.count(), 1'374.0);
    EXPECT_DOUBLE_EQ(nvm.erase.count(), 1.5);
    EXPECT_DOUBLE_EQ(nvm.program.count(), 350.0);
    EXPECT_EQ(nvm.pageBytes, 4'096u);
}

TEST(Nvm, WriteBandwidthFromProgramTime)
{
    // 4 KB / 350 us = 11.7 MB/s.
    EXPECT_NEAR(nvmSpec().writeBandwidth().count(), 11.7, 0.1);
}

TEST(Nvm, EnergiesScaleWithPages)
{
    const NvmSpec &nvm = nvmSpec();
    EXPECT_NEAR(nvm.readEnergy(units::Bytes{4'096.0 * 10}).count(),
                918.809e-6 * 10, 1e-9);
    EXPECT_NEAR(nvm.writeEnergy(units::Bytes{4'096.0}).count(),
                1'374e-6, 1e-9);
}

TEST(StorageController, ReorganisedLayoutTradeoff)
{
    StorageController reorganised(true);
    StorageController raw(false);
    // Writes 5x slower, reads 10x faster (Section 3.3).
    EXPECT_DOUBLE_EQ(reorganised.chunkWrite().count(), 1.75);
    EXPECT_DOUBLE_EQ(raw.chunkWrite().count(), 0.35);
    EXPECT_DOUBLE_EQ(reorganised.chunkRead().count(), 0.035);
    EXPECT_DOUBLE_EQ(raw.chunkRead().count(), 0.35);
}

TEST(StorageController, AppendBuffersUntilPage)
{
    StorageController sc;
    EXPECT_EQ(sc.append(Partition::Signals, 1'000), 0u);
    EXPECT_EQ(sc.buffered(Partition::Signals), 1'000u);
    EXPECT_EQ(sc.append(Partition::Signals, 4'000), 1u);
    EXPECT_EQ(sc.buffered(Partition::Signals), 904u);
    EXPECT_EQ(sc.persisted(Partition::Signals), 4'096u);
}

TEST(StorageController, PartitionsAreIndependent)
{
    StorageController sc;
    sc.append(Partition::Signals, 5'000);
    EXPECT_EQ(sc.buffered(Partition::Hashes), 0u);
    EXPECT_EQ(sc.persisted(Partition::Hashes), 0u);
}

TEST(Thermal, FalloffMatchesAnchors)
{
    ThermalModel model;
    EXPECT_NEAR(model.falloffFraction(10.0_mm), 0.05, 0.002);
    EXPECT_NEAR(model.falloffFraction(20.0_mm), 0.02, 0.002);
    EXPECT_LE(model.falloffFraction(0.5_mm), 1.0);
}

TEST(Thermal, CouplingNegligibleAtDefaultSpacing)
{
    ThermalModel model;
    EXPECT_TRUE(model.safe(11, constants::kImplantSpacing,
                           constants::kPowerCap));
    EXPECT_TRUE(model.safe(60, constants::kImplantSpacing,
                           constants::kPowerCap));
}

TEST(Thermal, TightSpacingUnsafe)
{
    ThermalModel model;
    EXPECT_FALSE(model.safe(11, 5.0_mm, constants::kPowerCap));
}

TEST(Thermal, SixtyImplantsAtTwentyMm)
{
    EXPECT_EQ(ThermalModel::maxImplants(20.0_mm), 60u);
    EXPECT_GT(ThermalModel::maxImplants(10.0_mm), 60u);
    EXPECT_LT(ThermalModel::maxImplants(40.0_mm), 60u);
}

TEST(Thermal, DeltaScalesWithPower)
{
    ThermalModel model;
    EXPECT_NEAR(model.deltaAt(10.0_mm, 7.5_mW).count(),
                0.5 * model.deltaAt(10.0_mm, 15.0_mW).count(),
                1e-12);
}

TEST(Mc, SpecSanity)
{
    const McSpec &mc = mcSpec();
    EXPECT_DOUBLE_EQ(mc.freq.count(), 20.0);
    EXPECT_DOUBLE_EQ(mc.sram.count(), 8.0);
    EXPECT_GE(mc.softwareSlowdown, 10.0);
}

} // namespace
} // namespace scalo::hw
