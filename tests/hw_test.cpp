/**
 * @file
 * Unit tests for scalo::hw: the Table 1 PE catalog, the GALS fabric
 * power/latency model, the NVM/storage-controller model and the
 * thermal/placement model.
 */

#include <gtest/gtest.h>

#include "scalo/hw/fabric.hpp"
#include "scalo/hw/nvm.hpp"
#include "scalo/hw/pe.hpp"
#include "scalo/hw/thermal.hpp"

namespace scalo::hw {
namespace {

TEST(PeCatalog, HasAllThirtyOnePes)
{
    EXPECT_EQ(peCatalog().size(),
              static_cast<std::size_t>(kPeKindCount));
}

TEST(PeCatalog, Table1SpotChecks)
{
    const PeSpec &dtw = peSpec(PeKind::DTW);
    EXPECT_DOUBLE_EQ(dtw.maxFreqMhz, 50.0);
    EXPECT_DOUBLE_EQ(dtw.leakageUw, 167.93);
    EXPECT_DOUBLE_EQ(dtw.sramLeakageUw, 48.50);
    EXPECT_DOUBLE_EQ(dtw.dynPerElectrodeUw, 26.94);
    EXPECT_DOUBLE_EQ(*dtw.latencyMs, 0.003);
    EXPECT_DOUBLE_EQ(dtw.areaKge, 72.0);

    const PeSpec &xcor = peSpec(PeKind::XCOR);
    EXPECT_DOUBLE_EQ(xcor.dynPerElectrodeUw, 44.11);
    EXPECT_DOUBLE_EQ(xcor.areaKge, 81.0);

    const PeSpec &sc = peSpec(PeKind::SC);
    EXPECT_DOUBLE_EQ(*sc.latencyMs, 0.03);
    ASSERT_TRUE(sc.latencyMaxMs.has_value());
    EXPECT_DOUBLE_EQ(*sc.latencyMaxMs, 4.0);
}

TEST(PeCatalog, DataDependentLatenciesAreEmpty)
{
    for (auto kind : {PeKind::AES, PeKind::LIC, PeKind::LZ, PeKind::MA,
                      PeKind::RC}) {
        EXPECT_FALSE(peSpec(kind).latencyMs.has_value())
            << peName(kind);
    }
}

TEST(PeCatalog, PowerModelIsLinearInElectrodes)
{
    const PeSpec &fft = peSpec(PeKind::FFT);
    const double base = fft.powerUw(0.0);
    EXPECT_DOUBLE_EQ(base, 141.97 + 85.58);
    EXPECT_DOUBLE_EQ(fft.powerUw(96.0) - base, 9.02 * 96.0);
}

TEST(PeCatalog, LookupByName)
{
    const PeSpec *svm = findPe("SVM");
    ASSERT_NE(svm, nullptr);
    EXPECT_EQ(svm->kind, PeKind::SVM);
    EXPECT_EQ(findPe("NOPE"), nullptr);
}

TEST(Fabric, SeizureDetectionPipelinePowerFitsBudget)
{
    // FFT + BBF + XCOR + SVM on all 96 electrodes must fit the 15 mW
    // cap with room for the ADC, NVM and radio (Figure 5's pipeline).
    Pipeline pipeline("seizure-detect",
                      {{PeKind::FFT, 96.0, 1},
                       {PeKind::BBF, 96.0, 1},
                       {PeKind::XCOR, 96.0, 1},
                       {PeKind::SVM, 96.0, 1},
                       {PeKind::THR, 96.0, 1}});
    EXPECT_LT(pipeline.powerMw(), 8.0);
    EXPECT_GT(pipeline.powerMw(), 1.0);
}

TEST(Fabric, LatencySumsStages)
{
    Pipeline pipeline("hash",
                      {{PeKind::HCONV, 96.0, 1},
                       {PeKind::NGRAM, 96.0, 1}});
    EXPECT_DOUBLE_EQ(pipeline.latencyMs(), 1.5 + 1.5);
}

TEST(Fabric, WorstCaseUsesScBusyLatency)
{
    Pipeline pipeline("store", {{PeKind::SC, 96.0, 1}});
    EXPECT_DOUBLE_EQ(pipeline.latencyMs(false), 0.03);
    EXPECT_DOUBLE_EQ(pipeline.latencyMs(true), 4.0);
}

TEST(Fabric, ReplicasSplitWorkButPayLeakage)
{
    Pipeline one("x1", {{PeKind::BMUL, 96.0, 1}});
    Pipeline ten("x10", {{PeKind::BMUL, 96.0, 10}});
    const PeSpec &bmul = peSpec(PeKind::BMUL);
    // Same dynamic power total, 10x the leakage.
    EXPECT_NEAR(ten.powerUw() - one.powerUw(),
                9.0 * bmul.idlePowerUw(), 1e-9);
}

TEST(Fabric, ScaleElectrodesScalesDynOnly)
{
    Pipeline pipeline("p", {{PeKind::DTW, 96.0, 1}});
    const double full = pipeline.powerUw();
    pipeline.scaleElectrodes(0.5);
    const double half = pipeline.powerUw();
    const PeSpec &dtw = peSpec(PeKind::DTW);
    EXPECT_NEAR(full - half, dtw.dynPerElectrodeUw * 48.0, 1e-9);
}

TEST(Fabric, InventoryValidation)
{
    NodeFabric fabric;
    EXPECT_EQ(fabric.available(PeKind::BMUL), 10);
    EXPECT_EQ(fabric.available(PeKind::FFT), 1);

    Pipeline ok("ok", {{PeKind::BMUL, 96.0, 10}});
    EXPECT_TRUE(fabric.validate({ok}).empty());

    Pipeline too_many("bad", {{PeKind::FFT, 96.0, 2}});
    EXPECT_FALSE(fabric.validate({too_many}).empty());
}

TEST(Fabric, IdlePowerIsSmall)
{
    // Total leakage of a full node inventory must leave room under
    // 15 mW; the GALS design powers unused PEs down to leakage only.
    NodeFabric fabric;
    EXPECT_LT(fabric.idlePowerUw() / 1'000.0, 6.0);
    EXPECT_GT(fabric.areaKge(), 1'000.0);
}

TEST(Nvm, PaperParameters)
{
    const NvmSpec &nvm = nvmSpec();
    EXPECT_DOUBLE_EQ(nvm.leakageMw, 0.26);
    EXPECT_DOUBLE_EQ(nvm.readEnergyNjPerPage, 918.809);
    EXPECT_DOUBLE_EQ(nvm.writeEnergyNjPerPage, 1'374.0);
    EXPECT_DOUBLE_EQ(nvm.eraseMs, 1.5);
    EXPECT_DOUBLE_EQ(nvm.programUs, 350.0);
    EXPECT_EQ(nvm.pageBytes, 4'096u);
}

TEST(Nvm, WriteBandwidthFromProgramTime)
{
    // 4 KB / 350 us = 11.7 MB/s.
    EXPECT_NEAR(nvmSpec().writeBandwidthMBps(), 11.7, 0.1);
}

TEST(Nvm, EnergiesScaleWithPages)
{
    const NvmSpec &nvm = nvmSpec();
    EXPECT_NEAR(nvm.readEnergyMj(4'096.0 * 10), 918.809e-6 * 10,
                1e-9);
    EXPECT_NEAR(nvm.writeEnergyMj(4'096.0), 1'374e-6, 1e-9);
}

TEST(StorageController, ReorganisedLayoutTradeoff)
{
    StorageController reorganised(true);
    StorageController raw(false);
    // Writes 5x slower, reads 10x faster (Section 3.3).
    EXPECT_DOUBLE_EQ(reorganised.chunkWriteMs(), 1.75);
    EXPECT_DOUBLE_EQ(raw.chunkWriteMs(), 0.35);
    EXPECT_DOUBLE_EQ(reorganised.chunkReadMs(), 0.035);
    EXPECT_DOUBLE_EQ(raw.chunkReadMs(), 0.35);
}

TEST(StorageController, AppendBuffersUntilPage)
{
    StorageController sc;
    EXPECT_EQ(sc.append(Partition::Signals, 1'000), 0u);
    EXPECT_EQ(sc.buffered(Partition::Signals), 1'000u);
    EXPECT_EQ(sc.append(Partition::Signals, 4'000), 1u);
    EXPECT_EQ(sc.buffered(Partition::Signals), 904u);
    EXPECT_EQ(sc.persisted(Partition::Signals), 4'096u);
}

TEST(StorageController, PartitionsAreIndependent)
{
    StorageController sc;
    sc.append(Partition::Signals, 5'000);
    EXPECT_EQ(sc.buffered(Partition::Hashes), 0u);
    EXPECT_EQ(sc.persisted(Partition::Hashes), 0u);
}

TEST(Thermal, FalloffMatchesAnchors)
{
    ThermalModel model;
    EXPECT_NEAR(model.falloffFraction(10.0), 0.05, 0.002);
    EXPECT_NEAR(model.falloffFraction(20.0), 0.02, 0.002);
    EXPECT_LE(model.falloffFraction(0.5), 1.0);
}

TEST(Thermal, CouplingNegligibleAtDefaultSpacing)
{
    ThermalModel model;
    EXPECT_TRUE(model.safe(11, constants::kImplantSpacingMm,
                           constants::kPowerCapMw));
    EXPECT_TRUE(model.safe(60, constants::kImplantSpacingMm,
                           constants::kPowerCapMw));
}

TEST(Thermal, TightSpacingUnsafe)
{
    ThermalModel model;
    EXPECT_FALSE(model.safe(11, 5.0, constants::kPowerCapMw));
}

TEST(Thermal, SixtyImplantsAtTwentyMm)
{
    EXPECT_EQ(ThermalModel::maxImplants(20.0), 60u);
    EXPECT_GT(ThermalModel::maxImplants(10.0), 60u);
    EXPECT_LT(ThermalModel::maxImplants(40.0), 60u);
}

TEST(Thermal, DeltaScalesWithPower)
{
    ThermalModel model;
    EXPECT_NEAR(model.deltaAtC(10.0, 7.5),
                0.5 * model.deltaAtC(10.0, 15.0), 1e-12);
}

TEST(Mc, SpecSanity)
{
    const McSpec &mc = mcSpec();
    EXPECT_DOUBLE_EQ(mc.freqMhz, 20.0);
    EXPECT_DOUBLE_EQ(mc.sramKb, 8.0);
    EXPECT_GE(mc.softwareSlowdown, 10.0);
}

} // namespace
} // namespace scalo::hw
