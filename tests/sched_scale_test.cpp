/**
 * @file
 * Scale-out tests of the decomposed scheduler: per-cluster sub-ILPs
 * plus greedy backbone stitching behind the flat Scheduler interface.
 * Covers feasibility at 64 nodes, bit-identity with the monolithic
 * solve below the decomposition threshold, the bounded optimality gap
 * of the decomposition, incremental rescheduling at 256 nodes, and
 * the greedy repair path.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "scalo/sched/scheduler.hpp"
#include "scalo/sched/workloads.hpp"

namespace scalo::sched {
namespace {

using namespace units::literals;

std::vector<FlowSpec>
mixedFlows()
{
    return {seizureDetectionFlow(),
            hashSimilarityFlow(net::Pattern::AllToAll),
            spikeSortingFlow()};
}

const std::vector<double> kPriorities{1.0, 3.0, 1.0};

SystemConfig
clusteredConfig(std::size_t nodes, std::size_t clusters)
{
    SystemConfig config;
    config.nodes = nodes;
    config.maxElectrodesPerNode = constants::kElectrodesPerNode;
    if (clusters > 1)
        config.clusters = net::ClusterPlan::balanced(nodes, clusters);
    return config;
}

/** Max nodePower entry, 0 when empty. */
double
maxPowerMw(const Schedule &schedule)
{
    double max = 0.0;
    for (const units::Milliwatts p : schedule.nodePower)
        max = std::max(max, p.count());
    return max;
}

TEST(SchedScale, Decomposed64Feasible)
{
    const Scheduler scheduler(clusteredConfig(64, 8));
    ASSERT_TRUE(scheduler.decomposed());
    const Schedule schedule =
        scheduler.schedule(mixedFlows(), kPriorities);
    ASSERT_TRUE(schedule.feasible) << schedule.reason;

    ASSERT_EQ(schedule.flows.size(), 3u);
    for (const FlowAllocation &alloc : schedule.flows) {
        ASSERT_EQ(alloc.electrodesPerNode.size(), 64u);
        EXPECT_GT(alloc.totalElectrodes, 0.0) << alloc.flow;
        for (const double e : alloc.electrodesPerNode) {
            EXPECT_GE(e, 0.0);
            EXPECT_LE(e, constants::kElectrodesPerNode + 1e-6);
        }
    }
    // The per-node power cap binds cluster-locally too.
    ASSERT_EQ(schedule.nodePower.size(), 64u);
    EXPECT_LE(maxPowerMw(schedule),
              constants::kPowerCap.count() + 1e-6);
    EXPECT_GT(schedule.totalThroughput.count(), 0.0);
}

TEST(SchedScale, MonolithicBelowThresholdIsBitIdenticalToFlat)
{
    // 16 nodes in 4 clusters sits below the monolithic threshold
    // (48), so the clustered scheduler must keep the dense solve and
    // reproduce the flat allocation bit for bit.
    const Scheduler clustered(clusteredConfig(16, 4));
    const Scheduler flat(clusteredConfig(16, 1));
    ASSERT_FALSE(clustered.decomposed());
    ASSERT_EQ(clustered.plan().clusterCount(), 4u);

    const Schedule a = clustered.schedule(mixedFlows(), kPriorities);
    const Schedule b = flat.schedule(mixedFlows(), kPriorities);
    ASSERT_TRUE(a.feasible);
    ASSERT_TRUE(b.feasible);
    ASSERT_EQ(a.flows.size(), b.flows.size());
    for (std::size_t f = 0; f < a.flows.size(); ++f) {
        EXPECT_EQ(a.flows[f].electrodesPerNode,
                  b.flows[f].electrodesPerNode);
        EXPECT_EQ(a.flows[f].totalElectrodes,
                  b.flows[f].totalElectrodes);
    }
    EXPECT_EQ(a.totalThroughput.count(), b.totalThroughput.count());
}

TEST(SchedScale, DecompositionGapIsBounded)
{
    // The decomposed solve trades optimality for cluster-sized
    // sub-problems; the stitched schedule must stay within a modest
    // factor of the monolithic optimum (and never beat it, since the
    // monolithic solve sees the whole feasible region).
    const Scheduler scheduler(clusteredConfig(64, 8));
    ASSERT_TRUE(scheduler.decomposed());
    const std::vector<FlowSpec> flows = mixedFlows();
    const Schedule decomposed =
        scheduler.scheduleDecomposed(flows, kPriorities);
    const Schedule monolithic =
        scheduler.scheduleMonolithic(flows, kPriorities);
    ASSERT_TRUE(decomposed.feasible) << decomposed.reason;
    ASSERT_TRUE(monolithic.feasible) << monolithic.reason;

    const double dec = decomposed.weightedThroughput.count();
    const double mono = monolithic.weightedThroughput.count();
    ASSERT_GT(mono, 0.0);
    EXPECT_LE(dec, mono * (1.0 + 1e-6));
    EXPECT_GE(dec, 0.60 * mono)
        << "decomposition gap above 40%: " << dec << " vs " << mono;
}

TEST(SchedScale, Reschedule256TouchesOnlyAffectedClusters)
{
    // 256 nodes in 16 clusters of 16; kill two nodes of cluster 3
    // (nodes 48..63). The incremental path must re-solve only that
    // cluster and keep every other column bit-identical.
    const Scheduler scheduler(clusteredConfig(256, 16));
    ASSERT_TRUE(scheduler.decomposed());
    const std::vector<FlowSpec> flows = mixedFlows();
    const Schedule original =
        scheduler.schedule(flows, kPriorities);
    ASSERT_TRUE(original.feasible) << original.reason;

    const std::vector<std::size_t> dead{49, 55};
    const RescheduleResult result =
        scheduler.reschedule(flows, kPriorities, original, dead);
    ASSERT_TRUE(result.schedule.feasible);
    EXPECT_EQ(result.resolvedClusters,
              (std::vector<std::size_t>{3}));
    EXPECT_EQ(result.deadNodes, dead);

    for (const FlowAllocation &alloc : result.schedule.flows)
        for (const std::size_t n : dead)
            EXPECT_EQ(alloc.electrodesPerNode[n], 0.0);

    // Columns outside cluster 3 are untouched.
    for (std::size_t f = 0; f < flows.size(); ++f)
        for (std::size_t n = 0; n < 256; ++n) {
            if (n >= 48 && n < 64)
                continue;
            EXPECT_EQ(result.schedule.flows[f].electrodesPerNode[n],
                      original.flows[f].electrodesPerNode[n])
                << "flow " << f << " node " << n;
        }
    EXPECT_LE(maxPowerMw(result.schedule),
              constants::kPowerCap.count() + 1e-6);
    EXPECT_LE(result.throughputAfter.count(),
              result.throughputBefore.count() + 1e-9);
}

TEST(SchedScale, RescheduleClusterMatchesFullReschedule)
{
    // rescheduleCluster (the simulator's concurrent entry point)
    // must agree with reschedule() on the repaired columns of the
    // affected cluster.
    const Scheduler scheduler(clusteredConfig(64, 8));
    const std::vector<FlowSpec> flows = mixedFlows();
    const Schedule original =
        scheduler.schedule(flows, kPriorities);
    ASSERT_TRUE(original.feasible);

    const std::vector<std::size_t> dead{18};
    const std::size_t cluster = scheduler.plan().clusterOf(18);
    const RescheduleResult via_cluster =
        scheduler.rescheduleCluster(flows, kPriorities, original,
                                    dead, cluster);
    ASSERT_TRUE(via_cluster.schedule.feasible);
    EXPECT_EQ(via_cluster.resolvedClusters,
              (std::vector<std::size_t>{cluster}));
    for (const FlowAllocation &alloc : via_cluster.schedule.flows)
        EXPECT_EQ(alloc.electrodesPerNode[18], 0.0);
    for (std::size_t f = 0; f < flows.size(); ++f)
        for (std::size_t n = 0; n < 64; ++n) {
            if (scheduler.plan().clusterOf(n) == cluster)
                continue;
            EXPECT_EQ(
                via_cluster.schedule.flows[f].electrodesPerNode[n],
                original.flows[f].electrodesPerNode[n]);
        }
}

TEST(SchedScale, GreedyRepairShedsDeadWorkAt64)
{
    const Scheduler scheduler(clusteredConfig(64, 8));
    const std::vector<FlowSpec> flows = mixedFlows();
    const Schedule original =
        scheduler.schedule(flows, kPriorities);
    ASSERT_TRUE(original.feasible);

    const std::vector<std::size_t> dead{3, 12, 40};
    const Schedule repaired =
        scheduler.greedyRepair(flows, original, dead);
    ASSERT_TRUE(repaired.feasible);
    for (const FlowAllocation &alloc : repaired.flows) {
        for (const std::size_t n : dead)
            EXPECT_EQ(alloc.electrodesPerNode[n], 0.0);
        for (const double e : alloc.electrodesPerNode)
            EXPECT_GE(e, 0.0);
    }
    EXPECT_LE(maxPowerMw(repaired),
              constants::kPowerCap.count() + 1e-6);
}

} // namespace
} // namespace scalo::sched
