/**
 * @file
 * Unit tests for scalo::compress: Elias-gamma coding, run-length
 * coding, the HFREQ/HCOMP/DCOMP hash-compression pipeline, and the LZ
 * baseline — including the paper's claim that HCOMP's ratio is close
 * to LZ on hash traffic.
 */

#include <gtest/gtest.h>

#include "scalo/compress/elias.hpp"
#include "scalo/compress/hcomp.hpp"
#include "scalo/compress/lz.hpp"
#include "scalo/util/rng.hpp"

namespace scalo::compress {
namespace {

TEST(EliasGamma, KnownCodes)
{
    // gamma(1) = "1", gamma(2) = "010", gamma(5) = "00101".
    BitWriter writer;
    eliasGammaEncode(writer, 1);
    EXPECT_EQ(writer.bitCount(), 1u);
    eliasGammaEncode(writer, 2);
    EXPECT_EQ(writer.bitCount(), 4u);
    eliasGammaEncode(writer, 5);
    EXPECT_EQ(writer.bitCount(), 9u);
}

TEST(EliasGamma, RoundTripRange)
{
    std::vector<std::uint64_t> values;
    for (std::uint64_t v = 1; v < 1'000; v += 7)
        values.push_back(v);
    values.push_back(1ULL << 40);
    const auto bytes = eliasGammaEncodeAll(values);
    EXPECT_EQ(eliasGammaDecodeAll(bytes, values.size()), values);
}

TEST(EliasGamma, ZeroPanics)
{
    BitWriter writer;
    EXPECT_THROW(eliasGammaEncode(writer, 0), std::logic_error);
}

TEST(EliasGamma, SmallValuesCodeShort)
{
    // Run lengths are mostly small; gamma must beat fixed 8-bit there.
    std::vector<std::uint64_t> ones(100, 1);
    EXPECT_LE(eliasGammaEncodeAll(ones).size(), 13u);
}

TEST(RunLength, EncodeDecodeRoundTrip)
{
    const std::vector<std::uint8_t> data{1, 1, 1, 2, 3, 3, 1};
    const auto runs = runLengthEncode(data);
    ASSERT_EQ(runs.size(), 4u);
    EXPECT_EQ(runs[0], (compress::Run{1, 3}));
    EXPECT_EQ(runLengthDecode(runs), data);
}

TEST(RunLength, EmptyInput)
{
    EXPECT_TRUE(runLengthEncode({}).empty());
    EXPECT_TRUE(runLengthDecode({}).empty());
}

TEST(Hfreq, OrdersByFrequency)
{
    // 5 appears 3x, 9 appears 2x, 1 appears once.
    const std::vector<HashValue> hashes{5, 9, 5, 1, 9, 5};
    const auto dict = frequencyDictionary(hashes);
    ASSERT_EQ(dict.size(), 3u);
    EXPECT_EQ(dict[0], 5);
    EXPECT_EQ(dict[1], 9);
    EXPECT_EQ(dict[2], 1);
}

TEST(Hfreq, TieBrokenByValue)
{
    const std::vector<HashValue> hashes{7, 3};
    const auto dict = frequencyDictionary(hashes);
    EXPECT_EQ(dict[0], 3);
    EXPECT_EQ(dict[1], 7);
}

TEST(Hcomp, RoundTripSkewedHashes)
{
    // Temporally correlated brain signals yield skewed, runny hash
    // streams - HCOMP's target distribution.
    Rng rng(3);
    std::vector<HashValue> hashes;
    HashValue current = 42;
    for (int i = 0; i < 2'000; ++i) {
        if (rng.chance(0.1))
            current = static_cast<HashValue>(rng.below(16));
        hashes.push_back(current);
    }
    const auto block = compressHashes(hashes);
    EXPECT_EQ(decompressHashes(block), hashes);
    EXPECT_GT(block.compressionRatio(), 3.0)
        << "skewed hash streams must compress well";
}

TEST(Hcomp, RoundTripUniformHashes)
{
    Rng rng(9);
    std::vector<HashValue> hashes;
    for (int i = 0; i < 1'000; ++i)
        hashes.push_back(static_cast<HashValue>(rng.below(256)));
    const auto block = compressHashes(hashes);
    EXPECT_EQ(decompressHashes(block), hashes);
}

TEST(Hcomp, EmptyInput)
{
    const auto block = compressHashes({});
    EXPECT_EQ(block.originalCount, 0u);
    EXPECT_TRUE(decompressHashes(block).empty());
}

TEST(Hcomp, SingleValueCompressesHard)
{
    const std::vector<HashValue> hashes(960, 7);
    const auto block = compressHashes(hashes);
    EXPECT_EQ(decompressHashes(block), hashes);
    EXPECT_GT(block.compressionRatio(), 50.0);
}

TEST(Hcomp, RatioWithinTenPercentOfLzOnHashTraffic)
{
    // Section 3.2: HCOMP's ratio is only ~10% below LZ4/LZMA on hash
    // traffic (while using 7x less power). Verify the ratio claim on a
    // representative correlated stream.
    Rng rng(17);
    std::vector<HashValue> hashes;
    HashValue current = 3;
    for (int i = 0; i < 4'096; ++i) {
        if (rng.chance(0.15))
            current = static_cast<HashValue>(rng.below(32));
        hashes.push_back(current);
    }
    const auto block = compressHashes(hashes);
    const std::vector<std::uint8_t> raw(hashes.begin(), hashes.end());
    const auto lz = lzCompress(raw);

    const double hcomp_ratio = block.compressionRatio();
    const double lz_ratio =
        static_cast<double>(raw.size()) /
        static_cast<double>(lz.size());
    EXPECT_GT(hcomp_ratio, 0.75 * lz_ratio)
        << "HCOMP=" << hcomp_ratio << " LZ=" << lz_ratio;
}

TEST(Lz, RoundTripText)
{
    const std::string text =
        "abracadabra abracadabra neural signals neural signals";
    const std::vector<std::uint8_t> raw(text.begin(), text.end());
    const auto compressed = lzCompress(raw);
    EXPECT_EQ(lzDecompress(compressed, raw.size()), raw);
}

TEST(Lz, RoundTripIncompressible)
{
    Rng rng(23);
    std::vector<std::uint8_t> raw(4'096);
    for (auto &b : raw)
        b = static_cast<std::uint8_t>(rng.below(256));
    const auto compressed = lzCompress(raw);
    EXPECT_EQ(lzDecompress(compressed, raw.size()), raw);
}

TEST(Lz, CompressesRepetition)
{
    const std::vector<std::uint8_t> raw(8'192, 0x5a);
    const auto compressed = lzCompress(raw);
    EXPECT_LT(compressed.size(), raw.size() / 10);
}

} // namespace
} // namespace scalo::compress
