/**
 * @file
 * Unit tests for scalo::query: the TrillDSP-flavoured mini-language
 * (lexer/parser), compilation to PE pipelines, validation, and the
 * paper's Listing 1 example.
 */

#include <gtest/gtest.h>

#include "scalo/query/language.hpp"

namespace scalo::query {
namespace {

TEST(Parser, Listing1MovementIntent)
{
    // Listing 1 (simplified): Kalman-filter movement decoding.
    const auto program = parse(
        "var movements = stream.window(wsize=50ms).sbp()"
        ".kf(kf_params).call_runtime()");
    ASSERT_EQ(program.ops.size(), 4u);
    EXPECT_EQ(program.ops[0].name, "window");
    EXPECT_DOUBLE_EQ(program.ops[0].args.at("wsize"), 50.0);
    EXPECT_EQ(program.ops[1].name, "sbp");
    EXPECT_EQ(program.ops[2].name, "kf");
    EXPECT_EQ(program.ops[3].name, "call_runtime");
}

TEST(Parser, DurationUnits)
{
    const auto ms = parse("stream.window(wsize=4ms)");
    EXPECT_DOUBLE_EQ(ms.ops[0].args.at("wsize"), 4.0);
    const auto seconds = parse("stream.window(wsize=5s)");
    EXPECT_DOUBLE_EQ(seconds.ops[0].args.at("wsize"), 5'000.0);
    const auto micro = parse("stream.window(wsize=500us)");
    EXPECT_DOUBLE_EQ(micro.ops[0].args.at("wsize"), 0.5);
}

TEST(Parser, MultipleArguments)
{
    const auto program =
        parse("stream.window(wsize=4ms).bbf(low=3, high=80)");
    EXPECT_DOUBLE_EQ(program.ops[1].args.at("low"), 3.0);
    EXPECT_DOUBLE_EQ(program.ops[1].args.at("high"), 80.0);
}

TEST(Parser, SyntaxErrors)
{
    EXPECT_THROW(parse("window(wsize=4ms)"), std::runtime_error);
    EXPECT_THROW(parse("stream.window(wsize=)"), std::runtime_error);
    EXPECT_THROW(parse("stream.window wsize"), std::runtime_error);
    EXPECT_THROW(parse("stream"), std::runtime_error);
}

TEST(Compiler, MapsOperatorsToPes)
{
    const auto pipeline = compileSource(
        "stream.window(wsize=4ms).seizure_detect()");
    ASSERT_EQ(pipeline.stages.size(), 2u);
    EXPECT_DOUBLE_EQ(pipeline.windowMs, 4.0);
    const auto chain = pipeline.peChain();
    // seizure_detect expands to FFT/BBF/XCOR/SVM/THR after the GATE.
    EXPECT_EQ(chain.size(), 6u);
    EXPECT_EQ(chain[1], hw::PeKind::FFT);
    EXPECT_EQ(chain[4], hw::PeKind::SVM);
}

TEST(Compiler, RejectsUnknownOperator)
{
    EXPECT_THROW(compileSource("stream.frobnicate()"),
                 std::runtime_error);
}

TEST(Compiler, EnforcesRequiredArguments)
{
    EXPECT_THROW(compileSource("stream.window()"),
                 std::runtime_error);
    EXPECT_THROW(compileSource("stream.window(wsize=4ms).bbf(low=3)"),
                 std::runtime_error);
}

TEST(Compiler, RuntimeHandOffDetected)
{
    EXPECT_TRUE(compileSource(
                    "stream.window(wsize=50ms).sbp().call_runtime()")
                    .callsRuntime);
    EXPECT_FALSE(compileSource("stream.window(wsize=50ms).sbp()")
                     .callsRuntime);
}

TEST(Compiler, PipelineCostsAreConsistent)
{
    const auto cheap =
        compileSource("stream.window(wsize=4ms).sbp()");
    const auto heavy = compileSource(
        "stream.window(wsize=4ms).seizure_detect().propagate()");
    EXPECT_GT(heavy.latency(), cheap.latency());
    EXPECT_GT(heavy.power(96.0), cheap.power(96.0));
}

TEST(Compiler, QueryOpLowersToDescriptor)
{
    const auto pipeline = compileSource(
        "stream.query(t0=400ms, t1=600ms, seizure, dtw=15)");
    const auto lowered = pipeline.interactiveQuery();
    ASSERT_TRUE(lowered.has_value());
    EXPECT_EQ(lowered->t0Us, 400'000u);
    EXPECT_EQ(lowered->t1Us, 600'000u);
    EXPECT_TRUE(lowered->seizureOnly);
    EXPECT_DOUBLE_EQ(lowered->dtwThreshold, 15.0);
    EXPECT_TRUE(lowered->hashPrefilter);
    EXPECT_TRUE(lowered->useIndex);
    EXPECT_TRUE(lowered->probe.empty()) << "probes are data";
}

TEST(Compiler, QueryOpDefaultsAndModes)
{
    // Defaults: whole retained history, no filters, indexed.
    const auto all = compileSource("stream.query()")
                         .interactiveQuery();
    ASSERT_TRUE(all.has_value());
    EXPECT_EQ(all->t0Us, 0u);
    EXPECT_EQ(all->t1Us, UINT64_MAX);
    EXPECT_FALSE(all->seizureOnly);
    EXPECT_LT(all->dtwThreshold, 0.0);

    const auto exact = compileSource(
                           "stream.query(t1=100ms, exact, dtw=9)")
                           .interactiveQuery();
    ASSERT_TRUE(exact.has_value());
    EXPECT_FALSE(exact->hashPrefilter);

    const auto linear = compileSource("stream.query(noindex)")
                            .interactiveQuery();
    ASSERT_TRUE(linear.has_value());
    EXPECT_FALSE(linear->useIndex);

    // Non-retrieval programs lower to nothing.
    EXPECT_FALSE(compileSource("stream.window(wsize=4ms).sbp()")
                     .interactiveQuery()
                     .has_value());
}

TEST(Compiler, QueryOpRejectsInvertedRange)
{
    const auto pipeline =
        compileSource("stream.query(t0=600ms, t1=400ms)");
    EXPECT_THROW(pipeline.interactiveQuery(), std::runtime_error);
}

TEST(Compiler, SupportedOpsListedAndCompilable)
{
    for (const std::string &op : supportedOps()) {
        if (op == "window" || op == "bbf")
            continue; // need arguments
        const auto pipeline = compileSource(
            "stream.window(wsize=4ms)." + op + "()");
        EXPECT_EQ(pipeline.stages.back().op, op);
    }
}

} // namespace
} // namespace scalo::query
