// Contracts must fire when compiled in and vanish (condition
// unevaluated) when compiled out. Both behaviours are observable from
// one binary by forcing the macro both ways across two inclusion
// contexts: SCALO_EXPECTS/SCALO_ENSURES are macros, so each state is
// fixed per preprocessing context, not per build.

#include <stdexcept>

#include <gtest/gtest.h>

// Force-enable first.
#define SCALO_CONTRACTS 1
#include "scalo/util/contracts.hpp"

namespace {

struct Violation
{
    std::string kind;
    std::string condition;
};

void
throwingHandler(const char *kind, const char *condition, const char *,
                int)
{
    throw Violation{kind, condition};
}

int
enabledProbe(int &evaluations)
{
    SCALO_EXPECTS(++evaluations > 0);
    return evaluations;
}

TEST(Contracts, ExpectsFiresWhenEnabled)
{
    auto *previous = scalo::util::setContractHandler(&throwingHandler);
    try {
        SCALO_EXPECTS(1 + 1 == 3);
        FAIL() << "violation did not reach the handler";
    } catch (const Violation &v) {
        EXPECT_EQ(v.kind, "precondition");
        EXPECT_EQ(v.condition, "1 + 1 == 3");
    }
    try {
        SCALO_ENSURES(false);
        FAIL() << "violation did not reach the handler";
    } catch (const Violation &v) {
        EXPECT_EQ(v.kind, "postcondition");
    }
    scalo::util::setContractHandler(previous);
}

TEST(Contracts, PassingContractIsSilentAndEvaluatedOnce)
{
    auto *previous = scalo::util::setContractHandler(&throwingHandler);
    int evaluations = 0;
    EXPECT_NO_THROW({ (void)enabledProbe(evaluations); });
    EXPECT_EQ(evaluations, 1);
    scalo::util::setContractHandler(previous);
}

} // namespace

// Now force-disable and verify the condition is not even evaluated
// (the Release-mode guarantee: contracts cost nothing when off).
#undef SCALO_CONTRACTS
#define SCALO_CONTRACTS 0
#include "scalo/util/contracts_macros.hpp"

namespace {

TEST(Contracts, DisabledContractsVanish)
{
    auto *previous = scalo::util::setContractHandler(&throwingHandler);
    int evaluations = 0;
    SCALO_EXPECTS(++evaluations > 0); // must not evaluate
    SCALO_ENSURES(false);             // must not fire
    EXPECT_EQ(evaluations, 0);
    scalo::util::setContractHandler(previous);
}

} // namespace
