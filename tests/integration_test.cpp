/**
 * @file
 * Cross-module integration tests: the full stack driven end to end -
 * synthetic data through detection, deployment, distributed
 * propagation, storage + interactive queries, the programming
 * toolchain down to the MC runtime, clock synchronisation and the
 * daily charging plan.
 */

#include <gtest/gtest.h>

#include "scalo/app/query_engine.hpp"
#include "scalo/signal/window.hpp"
#include "scalo/core/system.hpp"
#include "scalo/hw/charging.hpp"
#include "scalo/query/codegen.hpp"
#include "scalo/sim/propagation_timing.hpp"
#include "scalo/sim/sntp.hpp"

namespace scalo {
namespace {

using namespace units::literals;

TEST(Integration, DetectStoreQueryPipeline)
{
    // Generate an annotated 3-site recording, run the detector over
    // it, ingest every window (with the detector's own flags) into
    // the query engine, and verify a clinician's Q1 retrieves the
    // seizure segment.
    data::IeegConfig config;
    config.nodes = 3;
    config.electrodesPerNode = 4;
    config.durationSec = 4.0;
    config.seizuresPerMinute = 30.0;
    config.seizureDurationSec = 0.8;
    const auto dataset = data::generateIeeg(config);
    const auto detector = app::SeizureDetector::train(dataset, 3'000);

    app::QueryEngine engine(config.nodes, 3'000, 7);
    const double fs = config.sampleRateHz;
    const std::size_t window = 3'000;
    for (NodeId node = 0; node < config.nodes; ++node) {
        const auto &traces = dataset.traces()[node];
        for (std::size_t start = 0;
             start + window <= traces[0].size(); start += window) {
            std::vector<Window> windows;
            for (const auto &trace : traces)
                windows.emplace_back(
                    trace.begin() + static_cast<long>(start),
                    trace.begin() +
                        static_cast<long>(start + window));
            const bool flagged = detector.detect(windows, fs);
            engine.ingest(node,
                          static_cast<std::uint64_t>(
                              static_cast<double>(start) / fs * 1e6),
                          0, signal::toReal(windows[0]), flagged);
        }
    }

    const auto q1 = engine.execute(app::Query::q1(0, 4'000'000));
    EXPECT_GT(q1.matches.size(), 5u)
        << "the seizure segments must be retrievable";
    EXPECT_LT(q1.matchedFraction(), 0.5)
        << "most windows are background";
    // Every returned window overlaps a ground-truth episode.
    std::size_t in_truth = 0;
    for (const app::StoredWindow *stored : q1.matches) {
        const double mid_sec =
            static_cast<double>(stored->timestampUs) / 1e6 +
            window / fs / 2.0;
        for (NodeId node = 0; node < config.nodes; ++node)
            if (dataset.inSeizure(node, mid_sec)) {
                ++in_truth;
                break;
            }
    }
    EXPECT_GE(in_truth, q1.matches.size() * 8 / 10);
}

TEST(Integration, DeployProgramAndLoadRuntime)
{
    // A deployment plus the full Section 3.7 toolchain: language ->
    // DAG -> MC program -> runtime, validated against the fabric.
    core::ScaloConfig config;
    config.nodes = 4;
    core::ScaloSystem system(config);
    ASSERT_TRUE(system.thermallySafe());

    const auto schedule = system.deploy(
        {sched::seizureDetectionFlow(),
         sched::hashSimilarityFlow(net::Pattern::AllToAll)},
        {3.0, 1.0});
    ASSERT_TRUE(schedule.feasible) << schedule.reason;

    const auto pipeline = system.program(
        "stream.window(wsize=4ms).seizure_detect().propagate()"
        ".store()");
    const auto electrodes =
        schedule.flows[0].electrodesPerNode.front();
    const auto program =
        query::generateProgram(pipeline, electrodes);

    query::Runtime runtime(system.fabric());
    const auto error = runtime.load(program);
    EXPECT_TRUE(error.empty()) << error;
    EXPECT_TRUE(runtime.running());
    const auto chain = runtime.switches().traceFromAdc();
    EXPECT_GE(chain.size(), 10u)
        << "detection + propagation spans many PEs";
}

TEST(Integration, MaintenanceBudgetsHold)
{
    // The daily maintenance story: clocks synchronise to a few us
    // within a fraction of a second of network time, and a full
    // 15 mW day closes with ~2 h of charging.
    Rng rng(9);
    std::vector<sim::NodeClock> clocks;
    clocks.emplace_back();
    for (int i = 0; i < 10; ++i)
        clocks.emplace_back(
            units::Micros{rng.uniform(-20'000.0, 20'000.0)},
            rng.uniform(-1.0, 1.0));
    const auto sync = sim::synchronizeClocks(clocks);
    EXPECT_TRUE(sync.converged);
    EXPECT_LT(sync.networkBusy, 500.0_ms)
        << "synchronisation must not monopolise the network";

    const auto plan = hw::planDailyCycle(constants::kPowerCap);
    EXPECT_TRUE(plan.sustainsFullDay);
    EXPECT_NEAR(plan.chargingHours.count(), 2.0, 0.7)
        << "the paper's ~2 h charging point";
    EXPECT_GT(plan.availability, 0.85);
}

TEST(Integration, ResponsePathHoldsUnderDeployment)
{
    // The timed propagation path at the deployed node count and the
    // default radio stays inside the 10 ms clinical budget.
    sim::PropagationTimingConfig config;
    config.nodes = 11;
    config.episodes = 400;
    const auto timing = sim::simulatePropagationTiming(config);
    EXPECT_LE(timing.maxTotal, 10.0_ms);
}

TEST(Integration, ChargingPlansScaleWithLoad)
{
    const auto light = hw::planDailyCycle(6.0_mW);
    const auto heavy = hw::planDailyCycle(15.0_mW);
    EXPECT_GE(light.availability, heavy.availability);
    EXPECT_TRUE(light.sustainsFullDay);
    // Capacity sizing helper is consistent with the plan.
    EXPECT_NEAR(hw::requiredCapacity(15.0_mW, 21.0_h).count(),
                15.0 * 21.0 / 0.9, 1e-9);
}

} // namespace
} // namespace scalo
