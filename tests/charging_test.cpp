/**
 * @file
 * Unit tests for the battery / wireless-charging planner (Section
 * 3.6): the 24 h duty-cycle arithmetic, sensitivity to load and
 * battery parameters, and the paper's "24-hour operation with 2
 * hours of charging" anchor.
 */

#include <gtest/gtest.h>

#include "scalo/hw/charging.hpp"

namespace scalo::hw {
namespace {

TEST(Charging, PaperAnchorAtFullLoad)
{
    // 15 mW with the default cell: ~22 h operation + ~2 h charging.
    const auto plan = planDailyCycle(constants::kPowerCapMw);
    EXPECT_TRUE(plan.sustainsFullDay);
    EXPECT_NEAR(plan.operatingHours + plan.chargingHours, 24.0,
                1e-9);
    EXPECT_NEAR(plan.chargingHours, 2.2, 0.5);
    EXPECT_GT(plan.availability, 0.88);
}

TEST(Charging, LighterLoadsRunLonger)
{
    const auto heavy = planDailyCycle(15.0);
    const auto medium = planDailyCycle(9.0);
    const auto light = planDailyCycle(6.0);
    EXPECT_GT(medium.availability, heavy.availability);
    EXPECT_GT(light.availability, medium.availability);
    EXPECT_LT(light.chargingHours, heavy.chargingHours);
}

TEST(Charging, BiggerBatteryNeedsSameChargeShare)
{
    // Doubling capacity doubles run and refill hours alike, so the
    // duty cycle (availability) is capacity-invariant.
    BatterySpec small;
    BatterySpec big = small;
    big.capacityMwh *= 2.0;
    const auto small_plan = planDailyCycle(15.0, small);
    const auto big_plan = planDailyCycle(15.0, big);
    EXPECT_NEAR(small_plan.availability, big_plan.availability,
                1e-9);
}

TEST(Charging, FasterChargerRaisesAvailability)
{
    BatterySpec slow;
    slow.chargeRateMw = 90.0;
    BatterySpec fast;
    fast.chargeRateMw = 360.0;
    EXPECT_GT(planDailyCycle(15.0, fast).availability,
              planDailyCycle(15.0, slow).availability);
}

TEST(Charging, UnsustainableWhenChargingDominates)
{
    // A trickle charger against a heavy load: less than half the day
    // is operational, so the plan flags itself.
    BatterySpec trickle;
    trickle.chargeRateMw = 10.0;
    const auto plan = planDailyCycle(15.0, trickle);
    EXPECT_FALSE(plan.sustainsFullDay);
    EXPECT_LT(plan.availability, 0.5);
    // The day is still fully accounted for.
    EXPECT_NEAR(plan.operatingHours + plan.chargingHours, 24.0,
                1e-9);
}

TEST(Charging, RequiredCapacityScalesLinearly)
{
    EXPECT_NEAR(requiredCapacityMwh(10.0, 10.0),
                2.0 * requiredCapacityMwh(5.0, 10.0), 1e-9);
    EXPECT_NEAR(requiredCapacityMwh(10.0, 10.0),
                2.0 * requiredCapacityMwh(10.0, 5.0), 1e-9);
    // Efficiency inflates the requirement.
    BatterySpec lossy;
    lossy.efficiency = 0.5;
    EXPECT_NEAR(requiredCapacityMwh(10.0, 10.0, lossy),
                10.0 * 10.0 / 0.5, 1e-9);
}

TEST(Charging, RejectsNonsense)
{
    EXPECT_THROW(planDailyCycle(0.0), std::logic_error);
    EXPECT_THROW(planDailyCycle(-1.0), std::logic_error);
    EXPECT_THROW(requiredCapacityMwh(-1.0, 1.0), std::logic_error);
}

} // namespace
} // namespace scalo::hw
