/**
 * @file
 * Unit tests for the battery / wireless-charging planner (Section
 * 3.6): the 24 h duty-cycle arithmetic, sensitivity to load and
 * battery parameters, and the paper's "24-hour operation with 2
 * hours of charging" anchor.
 */

#include <gtest/gtest.h>

#include "scalo/hw/charging.hpp"

namespace scalo::hw {
namespace {

using namespace units::literals;

TEST(Charging, PaperAnchorAtFullLoad)
{
    // 15 mW with the default cell: ~22 h operation + ~2 h charging.
    const auto plan = planDailyCycle(constants::kPowerCap);
    EXPECT_TRUE(plan.sustainsFullDay);
    EXPECT_NEAR((plan.operatingHours + plan.chargingHours).count(),
                24.0, 1e-9);
    EXPECT_NEAR(plan.chargingHours.count(), 2.2, 0.5);
    EXPECT_GT(plan.availability, 0.88);
}

TEST(Charging, LighterLoadsRunLonger)
{
    const auto heavy = planDailyCycle(15.0_mW);
    const auto medium = planDailyCycle(9.0_mW);
    const auto light = planDailyCycle(6.0_mW);
    EXPECT_GT(medium.availability, heavy.availability);
    EXPECT_GT(light.availability, medium.availability);
    EXPECT_LT(light.chargingHours, heavy.chargingHours);
}

TEST(Charging, BiggerBatteryNeedsSameChargeShare)
{
    // Doubling capacity doubles run and refill hours alike, so the
    // duty cycle (availability) is capacity-invariant.
    BatterySpec small;
    BatterySpec big = small;
    big.capacity *= 2.0;
    const auto small_plan = planDailyCycle(15.0_mW, small);
    const auto big_plan = planDailyCycle(15.0_mW, big);
    EXPECT_NEAR(small_plan.availability, big_plan.availability,
                1e-9);
}

TEST(Charging, FasterChargerRaisesAvailability)
{
    BatterySpec slow;
    slow.chargeRate = 90.0_mW;
    BatterySpec fast;
    fast.chargeRate = 360.0_mW;
    EXPECT_GT(planDailyCycle(15.0_mW, fast).availability,
              planDailyCycle(15.0_mW, slow).availability);
}

TEST(Charging, UnsustainableWhenChargingDominates)
{
    // A trickle charger against a heavy load: less than half the day
    // is operational, so the plan flags itself.
    BatterySpec trickle;
    trickle.chargeRate = 10.0_mW;
    const auto plan = planDailyCycle(15.0_mW, trickle);
    EXPECT_FALSE(plan.sustainsFullDay);
    EXPECT_LT(plan.availability, 0.5);
    // The day is still fully accounted for.
    EXPECT_NEAR((plan.operatingHours + plan.chargingHours).count(),
                24.0, 1e-9);
}

TEST(Charging, RequiredCapacityScalesLinearly)
{
    EXPECT_NEAR(requiredCapacity(10.0_mW, 10.0_h).count(),
                2.0 * requiredCapacity(5.0_mW, 10.0_h).count(),
                1e-9);
    EXPECT_NEAR(requiredCapacity(10.0_mW, 10.0_h).count(),
                2.0 * requiredCapacity(10.0_mW, 5.0_h).count(),
                1e-9);
    // Efficiency inflates the requirement.
    BatterySpec lossy;
    lossy.efficiency = 0.5;
    EXPECT_NEAR(requiredCapacity(10.0_mW, 10.0_h, lossy).count(),
                10.0 * 10.0 / 0.5, 1e-9);
}

TEST(Charging, RejectsNonsense)
{
    EXPECT_THROW(planDailyCycle(0.0_mW), std::logic_error);
    EXPECT_THROW(planDailyCycle(-1.0_mW), std::logic_error);
    EXPECT_THROW(requiredCapacity(-1.0_mW, 1.0_h),
                 std::logic_error);
}

} // namespace
} // namespace scalo::hw
