/**
 * @file
 * Unit tests for the stimulation back end: charge balance, safety
 * validation, waveform synthesis, power model, and the preset
 * therapy/feedback patterns; plus the GALS pipeline queueing
 * simulator and the TDMA network plan emitted by the scheduler.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "scalo/app/stimulation.hpp"
#include "scalo/sched/netplan.hpp"
#include "scalo/sim/pipeline_sim.hpp"

namespace scalo::app {
namespace {

TEST(Stimulation, ChargeArithmetic)
{
    StimPattern pattern;
    pattern.amplitudeUa = 100.0;
    pattern.phaseUs = 200.0;
    EXPECT_DOUBLE_EQ(pattern.chargePerPhaseNc(), 20.0);
    pattern.frequencyHz = 100.0; // 10 ms period, 400 us driving
    EXPECT_NEAR(pattern.dutyCycle(), 0.04, 1e-12);
}

TEST(Stimulation, ValidatesSafetyLimits)
{
    StimulationController controller;
    EXPECT_TRUE(controller.validate(StimPattern{}).empty());

    StimPattern hot;
    hot.amplitudeUa = 500.0;
    hot.phaseUs = 400.0; // 200 nC per phase
    EXPECT_NE(controller.validate(hot).find("charge per phase"),
              std::string::npos);

    StimPattern fast;
    fast.frequencyHz = 1'000.0;
    EXPECT_NE(controller.validate(fast).find("frequency"),
              std::string::npos);

    StimPattern crowded;
    crowded.electrodes.assign(64, 0);
    EXPECT_NE(controller.validate(crowded).find("electrodes"),
              std::string::npos);

    StimPattern overlong;
    overlong.amplitudeUa = 20.0;      // keep charge within limits
    overlong.frequencyHz = 400.0;     // 2.5 ms period
    overlong.phaseUs = 1'000.0;       // 2 x 1 ms + gap > period
    overlong.gapUs = 800.0;
    EXPECT_NE(controller.validate(overlong).find("period"),
              std::string::npos);
}

TEST(Stimulation, WaveformIsChargeBalanced)
{
    StimulationController controller;
    StimPattern pattern;
    const auto waveform =
        controller.pulseWaveform(pattern, 1'000'000.0); // 1 MHz
    const double net = std::accumulate(waveform.begin(),
                                       waveform.end(), 0.0);
    // Cathodic and anodic phases cancel to well under one sample's
    // worth of charge.
    EXPECT_LT(std::abs(net), pattern.amplitudeUa * 2.0);
    // The cathodic phase leads.
    EXPECT_LT(waveform.front(), 0.0);
    // Peak amplitudes are symmetric.
    EXPECT_DOUBLE_EQ(
        *std::min_element(waveform.begin(), waveform.end()),
        -pattern.amplitudeUa);
    EXPECT_DOUBLE_EQ(
        *std::max_element(waveform.begin(), waveform.end()),
        pattern.amplitudeUa);
}

TEST(Stimulation, PowerNearPaperDacFigure)
{
    // Section 5: the DAC consumes ~0.6 mW. A typical arrest pattern
    // lands in that neighbourhood.
    StimulationController controller;
    const auto pattern = seizureArrestPattern({0, 1, 2, 3});
    EXPECT_TRUE(controller.validate(pattern).empty());
    const units::Milliwatts power = controller.power(pattern);
    EXPECT_GT(power.count(), 0.5);
    EXPECT_LT(power.count(), 1.2);
}

TEST(Stimulation, IssueCountsOnlyValidPatterns)
{
    StimulationController controller;
    EXPECT_TRUE(controller.issue(StimPattern{}));
    StimPattern bad;
    bad.amplitudeUa = 1e6;
    EXPECT_FALSE(controller.issue(bad));
    EXPECT_EQ(controller.issuedCount(), 1u);
}

TEST(Stimulation, PresetPatternsAreSafe)
{
    StimulationController controller;
    EXPECT_TRUE(
        controller.validate(seizureArrestPattern({0, 1})).empty());
    for (double intensity : {0.0, 0.5, 1.0}) {
        EXPECT_TRUE(controller
                        .validate(sensoryFeedbackPattern(
                            {2}, intensity))
                        .empty());
    }
    // Feedback intensity modulates amplitude monotonically.
    EXPECT_LT(sensoryFeedbackPattern({0}, 0.1).amplitudeUa,
              sensoryFeedbackPattern({0}, 0.9).amplitudeUa);
}

} // namespace
} // namespace scalo::app

namespace scalo::sim {
namespace {

using namespace units::literals;

TEST(PipelineSim, SustainablePipelineHasFixedLatency)
{
    // FFT(4) + SVM(1.67) + THR(0.06) at a 4 ms cadence: every stage
    // keeps up, so end-to-end latency equals the stage sum.
    hw::Pipeline pipeline("detect",
                          {{hw::PeKind::FFT, 96.0, 1},
                           {hw::PeKind::SVM, 96.0, 1},
                           {hw::PeKind::THR, 96.0, 1}});
    const auto result = simulatePipeline(pipeline, 200, 4.0_ms);
    EXPECT_TRUE(result.sustainable);
    EXPECT_EQ(result.windowsOut, 200u);
    EXPECT_NEAR(result.lastLatency.count(), 4.0 + 1.67 + 0.06,
                1e-9);
    // The FFT stage is fully busy at this cadence.
    EXPECT_NEAR(result.stageUtilization[0], 1.0, 0.02);
    EXPECT_LT(result.stageUtilization[2], 0.05);
    EXPECT_GT(result.energy.count(), 0.0);
}

TEST(PipelineSim, OversubscribedStageBacklogsForever)
{
    // The same pipeline at a 2 ms cadence: the 4 ms FFT stage cannot
    // keep up and the latency of later windows grows without bound.
    hw::Pipeline pipeline("detect", {{hw::PeKind::FFT, 96.0, 1},
                                     {hw::PeKind::SVM, 96.0, 1}});
    const auto result = simulatePipeline(pipeline, 300, 2.0_ms);
    EXPECT_FALSE(result.sustainable);
    EXPECT_GT(result.lastLatency, 100.0_ms);
    EXPECT_GT(result.lastLatency, result.meanLatency);
}

TEST(PipelineSim, FasterCadenceRaisesUtilizationAndEnergyRate)
{
    hw::Pipeline pipeline("hash", {{hw::PeKind::HCONV, 96.0, 1}});
    const auto slow = simulatePipeline(pipeline, 100, 8.0_ms);
    const auto fast = simulatePipeline(pipeline, 100, 2.0_ms);
    EXPECT_GT(fast.stageUtilization[0], slow.stageUtilization[0]);
    // Same work -> same busy energy, independent of cadence.
    EXPECT_NEAR(fast.energy.count(), slow.energy.count(), 1e-9);
}

} // namespace
} // namespace scalo::sim

namespace scalo::sched {
namespace {

TEST(NetworkPlan, SlotsAreOrderedAndSized)
{
    SystemConfig config;
    config.nodes = 4;
    const Scheduler scheduler(config);
    const std::vector<FlowSpec> flows{
        seizureDetectionFlow(),
        hashSimilarityFlow(net::Pattern::AllToAll)};
    const auto schedule = scheduler.schedule(flows, {1.0, 1.0});
    ASSERT_TRUE(schedule.feasible);

    const auto plan = buildNetworkPlan(flows, schedule);
    // Local flows get no slots; the hash flow gets one per node.
    EXPECT_EQ(plan.slots.size(), 4u);
    EXPECT_TRUE(plan.collisionFree());
    for (const auto &slot : plan.slots) {
        EXPECT_EQ(slot.flow, "hash-similarity");
        EXPECT_GT(slot.payloadBytes, 0u);
        EXPECT_GT(slot.end, slot.start);
    }
    // The round respects the flow's exchange budget.
    EXPECT_LE(plan.round, flows[1].network->roundBudget +
                              units::Millis{1e-6});
    // The rendering mentions every sender.
    const auto text = renderPlan(plan);
    EXPECT_NE(text.find("node 0"), std::string::npos);
    EXPECT_NE(text.find("node 3"), std::string::npos);
}

TEST(NetworkPlan, AllToOneSkipsAggregator)
{
    SystemConfig config;
    config.nodes = 5;
    const Scheduler scheduler(config);
    const std::vector<FlowSpec> flows{miSvmFlow()};
    const auto schedule = scheduler.schedule(flows, {1.0});
    ASSERT_TRUE(schedule.feasible);
    const auto plan = buildNetworkPlan(flows, schedule);
    EXPECT_EQ(plan.slots.size(), 4u); // node 0 aggregates
    for (const auto &slot : plan.slots)
        EXPECT_NE(slot.sender, 0u);
}

} // namespace
} // namespace scalo::sched
