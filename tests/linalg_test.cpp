/**
 * @file
 * Unit tests for scalo::linalg: matrix algebra, the LIN ALG PE
 * operations (MAD/ADD/SUB/MUL/INV) and the fused ReLU/normalisation
 * output stages.
 */

#include <gtest/gtest.h>

#include "scalo/linalg/matrix.hpp"
#include "scalo/util/rng.hpp"

namespace scalo::linalg {
namespace {

Matrix
randomMatrix(std::size_t rows, std::size_t cols, Rng &rng)
{
    Matrix m(rows, cols);
    for (std::size_t r = 0; r < rows; ++r)
        for (std::size_t c = 0; c < cols; ++c)
            m.at(r, c) = rng.uniform(-2.0, 2.0);
    return m;
}

TEST(Matrix, InitializerListShape)
{
    Matrix m{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 3u);
    EXPECT_DOUBLE_EQ(m(1, 2), 6.0);
}

TEST(Matrix, RaggedInitializerPanics)
{
    auto make = [] { Matrix m{{1.0, 2.0}, {3.0}}; };
    EXPECT_THROW(make(), std::logic_error);
}

TEST(Matrix, TransposeInvolution)
{
    Rng rng(2);
    const Matrix m = randomMatrix(3, 5, rng);
    EXPECT_EQ(Matrix::maxAbsDiff(m.transposed().transposed(), m), 0.0);
}

TEST(Matrix, OutOfRangeAccessPanics)
{
    Matrix m(2, 2);
    EXPECT_THROW(m.at(2, 0), std::logic_error);
}

TEST(LinAlgPe, AddSubRoundTrip)
{
    Rng rng(4);
    const Matrix a = randomMatrix(4, 4, rng);
    const Matrix b = randomMatrix(4, 4, rng);
    const Matrix sum = add(a, b);
    EXPECT_LT(Matrix::maxAbsDiff(sub(sum, b), a), 1e-12);
}

TEST(LinAlgPe, MulAgainstHandComputation)
{
    Matrix a{{1.0, 2.0}, {3.0, 4.0}};
    Matrix b{{5.0, 6.0}, {7.0, 8.0}};
    Matrix expected{{19.0, 22.0}, {43.0, 50.0}};
    EXPECT_LT(Matrix::maxAbsDiff(mul(a, b), expected), 1e-12);
}

TEST(LinAlgPe, MulShapeMismatchPanics)
{
    Matrix a(2, 3), b(2, 3);
    EXPECT_THROW(mul(a, b), std::logic_error);
}

TEST(LinAlgPe, MadIsMulPlusConstant)
{
    Rng rng(6);
    const Matrix a = randomMatrix(3, 4, rng);
    const Matrix b = randomMatrix(4, 2, rng);
    const Matrix c = randomMatrix(3, 2, rng);
    const Matrix expected = add(mul(a, b), c);
    EXPECT_LT(Matrix::maxAbsDiff(mad(a, b, c), expected), 1e-12);
}

TEST(LinAlgPe, ReluStageSuppressesNegatives)
{
    Matrix a{{-1.0, 2.0}};
    Matrix zero(1, 2);
    OutputStage stage;
    stage.relu = true;
    const Matrix out = add(a, zero, stage);
    EXPECT_DOUBLE_EQ(out(0, 0), 0.0);
    EXPECT_DOUBLE_EQ(out(0, 1), 2.0);
}

TEST(LinAlgPe, NormalizeStageStandardises)
{
    Matrix a{{10.0, 20.0}};
    Matrix zero(1, 2);
    OutputStage stage;
    stage.normalize = true;
    stage.mean = 15.0;
    stage.stddev = 5.0;
    const Matrix out = add(a, zero, stage);
    EXPECT_DOUBLE_EQ(out(0, 0), -1.0);
    EXPECT_DOUBLE_EQ(out(0, 1), 1.0);
}

TEST(LinAlgPe, NormalizeThenRelu)
{
    // The PE applies normalisation before ReLU, so standardised
    // negatives are clipped.
    Matrix a{{10.0, 20.0}};
    Matrix zero(1, 2);
    OutputStage stage;
    stage.normalize = true;
    stage.relu = true;
    stage.mean = 15.0;
    stage.stddev = 5.0;
    const Matrix out = add(a, zero, stage);
    EXPECT_DOUBLE_EQ(out(0, 0), 0.0);
    EXPECT_DOUBLE_EQ(out(0, 1), 1.0);
}

TEST(LinAlgPe, InverseOfIdentityIsIdentity)
{
    const Matrix eye = Matrix::identity(5);
    EXPECT_LT(Matrix::maxAbsDiff(inverse(eye), eye), 1e-12);
}

TEST(LinAlgPe, InverseTimesOriginalIsIdentity)
{
    Rng rng(8);
    for (int trial = 0; trial < 10; ++trial) {
        Matrix m = randomMatrix(6, 6, rng);
        // Diagonal dominance guarantees invertibility.
        for (std::size_t i = 0; i < 6; ++i)
            m.at(i, i) += 10.0;
        const Matrix product = mul(m, inverse(m));
        EXPECT_LT(Matrix::maxAbsDiff(product, Matrix::identity(6)),
                  1e-9);
    }
}

TEST(LinAlgPe, SingularMatrixIsFatal)
{
    Matrix singular{{1.0, 2.0}, {2.0, 4.0}};
    EXPECT_THROW(inverse(singular), std::runtime_error);
}

TEST(LinAlgPe, InverseNeedsPivoting)
{
    // Zero on the diagonal forces a row swap.
    Matrix m{{0.0, 1.0}, {1.0, 0.0}};
    EXPECT_LT(Matrix::maxAbsDiff(inverse(m), m), 1e-12);
}

TEST(Matrix, ColumnVectorAndFlatten)
{
    const Matrix v = Matrix::columnVector({1.0, 2.0, 3.0});
    EXPECT_EQ(v.rows(), 3u);
    EXPECT_EQ(v.cols(), 1u);
    EXPECT_EQ(v.flatten(), (std::vector<double>{1.0, 2.0, 3.0}));
}

} // namespace
} // namespace scalo::linalg
