/**
 * @file
 * Cross-validation and determinism tests for the node-level
 * simulation runtime (sim::SystemSim): the event-driven execution of
 * an ILP schedule must agree with the scheduler's analytic power,
 * response-time, and sustainability predictions within 5% for every
 * Section 6 flow, and a fixed-seed run must be byte-reproducible.
 */

#include <gtest/gtest.h>

#include <vector>

#include "scalo/core/system.hpp"
#include "scalo/sched/workloads.hpp"
#include "scalo/sim/runtime/system_sim.hpp"

namespace scalo::sim {
namespace {

using namespace units::literals;

/** The Section 6 flow library, one entry per application task. */
std::vector<sched::FlowSpec>
sectionSixFlows()
{
    return {
        sched::seizureDetectionFlow(),
        sched::hashSimilarityFlow(net::Pattern::AllToAll),
        sched::dtwSimilarityFlow(net::Pattern::OneToAll),
        sched::miSvmFlow(),
        sched::miKfFlow(),
        sched::miNnFlow(),
        sched::spikeSortingFlow(),
    };
}

SystemSimConfig
configFor(const sched::FlowSpec &flow, std::size_t nodes = 4)
{
    sched::SystemConfig system;
    system.nodes = nodes;
    system.maxElectrodesPerNode = constants::kElectrodesPerNode;
    const sched::Scheduler scheduler(system);

    SystemSimConfig config;
    config.system = system;
    config.flows = {flow};
    config.schedule = scheduler.schedule({flow}, {1.0});
    return config;
}

double
relativeError(double measured, double analytic)
{
    if (analytic == 0.0)
        return measured == 0.0 ? 0.0 : 1.0;
    return std::abs(measured - analytic) / std::abs(analytic);
}

// The tentpole claim: for every Section 6 flow scheduled alone, the
// event-driven execution agrees with the ILP's static predictions
// within 5% on per-node power and end-to-end response time, and both
// sides agree the schedule is sustainable.
TEST(SystemSimCrossValidation, SectionSixFlowsWithinFivePercent)
{
    for (const sched::FlowSpec &flow : sectionSixFlows()) {
        SystemSimConfig config = configFor(flow);
        ASSERT_TRUE(config.schedule.feasible) << flow.name;

        SystemSim sim(config);
        const SystemSimResult result = sim.run();

        ASSERT_EQ(result.flows.size(), 1u) << flow.name;
        const FlowSimStats &stats = result.flows[0];
        EXPECT_GT(stats.windowsCompleted, 0u) << flow.name;
        EXPECT_EQ(stats.windowsDropped, 0u) << flow.name;
        EXPECT_TRUE(stats.sustainable) << flow.name;
        EXPECT_TRUE(stats.analyticallySustainable) << flow.name;
        EXPECT_LE(relativeError(stats.meanResponse.count(),
                                stats.analyticResponse.count()),
                  0.05)
            << flow.name << ": simulated "
            << stats.meanResponse.count() << " ms vs analytic "
            << stats.analyticResponse.count() << " ms";

        ASSERT_EQ(result.nodes.size(),
                  config.schedule.nodePower.size())
            << flow.name;
        for (const NodeSimStats &node : result.nodes)
            EXPECT_LE(relativeError(node.measuredPower.count(),
                                    node.analyticPower.count()),
                      0.05)
                << flow.name << " node " << node.node
                << ": simulated " << node.measuredPower.count()
                << " mW vs analytic "
                << node.analyticPower.count() << " mW";
    }
}

// A multi-flow deployment through the ScaloSystem facade also
// cross-validates: deploy() then simulate() on the same flow set.
TEST(SystemSimCrossValidation, FacadeDeployThenSimulate)
{
    core::ScaloConfig config;
    config.nodes = 4;
    const core::ScaloSystem system(config);

    const std::vector<sched::FlowSpec> flows = {
        sched::seizureDetectionFlow(),
        sched::spikeSortingFlow(),
    };
    const sched::Schedule schedule = system.deploy(flows, {1.0, 1.0});
    ASSERT_TRUE(schedule.feasible);

    const SystemSimResult result = system.simulate(flows, schedule);
    ASSERT_EQ(result.flows.size(), flows.size());
    for (const FlowSimStats &stats : result.flows) {
        EXPECT_TRUE(stats.sustainable) << stats.flow;
        EXPECT_EQ(stats.windowsDropped, 0u) << stats.flow;
    }
    for (const NodeSimStats &node : result.nodes)
        EXPECT_LE(relativeError(node.measuredPower.count(),
                                node.analyticPower.count()),
                  0.05)
            << "node " << node.node;
}

// Networked flows exercise the BER channel: packets flow, and the
// hash flow's corrupted packets are retransmitted in extra slots.
TEST(SystemSim, NetworkedFlowMovesPackets)
{
    SystemSimConfig config =
        configFor(sched::hashSimilarityFlow(net::Pattern::AllToAll));
    ASSERT_TRUE(config.schedule.feasible);
    SystemSim sim(config);
    const SystemSimResult result = sim.run();
    const FlowSimStats &stats = result.flows[0];
    EXPECT_GT(stats.packetsSent, 0u);
    // Tx and retransmit events land on the sender nodes; the shared
    // medium records corruptions and accepted receptions.
    std::uint64_t node_retransmits = 0;
    for (const NodeSimStats &node : result.nodes)
        node_retransmits +=
            node.counters[TraceEventKind::PacketRetransmit];
    EXPECT_EQ(stats.retransmissions, node_retransmits);
    EXPECT_EQ(stats.packetsCorrupted,
              result.network[TraceEventKind::PacketCorrupt]);
    EXPECT_GT(stats.meanRound.count(), 0.0);
    EXPECT_GT(result.network[TraceEventKind::ExchangeFinish], 0u);
}

// NVM write traffic streams through each node's storage controller.
TEST(SystemSim, NvmTrafficReachesStorage)
{
    SystemSimConfig config =
        configFor(sched::seizureDetectionFlow());
    ASSERT_TRUE(config.schedule.feasible);
    SystemSim sim(config);
    const SystemSimResult result = sim.run();
    for (const NodeSimStats &node : result.nodes) {
        EXPECT_GT(node.nvmBytesWritten, 0u) << node.node;
        EXPECT_GT(node.nvmPagesProgrammed, 0u) << node.node;
        EXPECT_GT(node.nvmUtilization, 0.0) << node.node;
        EXPECT_LT(node.nvmUtilization, 1.0) << node.node;
    }
}

// Two runs with the same seed must produce byte-identical traces (and
// therefore byte-identical Chrome JSON exports).
TEST(SystemSimDeterminism, SameSeedSameTraceBytes)
{
    const auto run_once = [] {
        SystemSimConfig config = configFor(
            sched::hashSimilarityFlow(net::Pattern::AllToAll));
        config.recordTrace = true;
        config.duration = 100.0_ms;
        SystemSim sim(config);
        sim.run();
        return sim.trace().toChromeJson();
    };
    const std::string first = run_once();
    const std::string second = run_once();
    ASSERT_FALSE(first.empty());
    EXPECT_EQ(first, second);
}

// A different seed perturbs the channel, so the trace differs (guards
// against the determinism test passing because the seed is ignored).
TEST(SystemSimDeterminism, DifferentSeedDifferentTrace)
{
    const auto run_once = [](std::uint64_t seed) {
        SystemSimConfig config = configFor(
            sched::hashSimilarityFlow(net::Pattern::AllToAll));
        config.recordTrace = true;
        config.duration = 100.0_ms;
        config.seed = seed;
        SystemSim sim(config);
        sim.run();
        return sim.trace().toChromeJson();
    };
    EXPECT_NE(run_once(1), run_once(2));
}

// Property: simultaneous events on the shared engine run in
// scheduling (FIFO) order regardless of how many tie at one instant.
TEST(SystemSimDeterminism, FifoTieBreakProperty)
{
    for (std::size_t ties = 1; ties <= 64; ties *= 2) {
        Simulator simulator;
        std::vector<std::size_t> order;
        for (std::size_t i = 0; i < ties; ++i)
            simulator.at(10.0_us,
                         [&order, i] { order.push_back(i); });
        simulator.run();
        ASSERT_EQ(order.size(), ties);
        for (std::size_t i = 0; i < ties; ++i)
            EXPECT_EQ(order[i], i) << "ties=" << ties;
    }
}

// The exported trace is structurally sound: no counters without
// events, balanced duration pairs, and monotone timestamps after the
// stable sort the exporter applies.
TEST(SystemSimTrace, ExportIsWellFormed)
{
    SystemSimConfig config = configFor(
        sched::dtwSimilarityFlow(net::Pattern::OneToAll));
    config.recordTrace = true;
    config.duration = 100.0_ms;
    SystemSim sim(config);
    const SystemSimResult result = sim.run();

    const Trace &trace = sim.trace();
    ASSERT_FALSE(trace.empty());
    EXPECT_EQ(trace.totals().total(), trace.size());

    // Counters surfaced per node must match a direct scan.
    for (const NodeSimStats &node : result.nodes)
        EXPECT_EQ(node.counters.total(),
                  trace.counters(node.node).total());

    const std::string json = trace.toChromeJson();
    EXPECT_EQ(json.front(), '{');
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
    EXPECT_NE(json.find("process_name"), std::string::npos);
}

} // namespace
} // namespace scalo::sim
