/**
 * Parity and property tests for the optimised kernel layer against the
 * retained naive references (scalo/signal/reference.hpp,
 * scalo/linalg/reference.hpp): planned FFT/rfft including the
 * non-power-of-two padding path, blocked/transposed matmul, batched
 * Euclidean distances, banded DTW with early abandoning, SSH shingle
 * counting, and ThreadPool::parallelFor determinism.
 */

#include <algorithm>
#include <cmath>
#include <complex>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "scalo/linalg/kernels.hpp"
#include "scalo/linalg/matrix.hpp"
#include "scalo/linalg/reference.hpp"
#include "scalo/lsh/ssh.hpp"
#include "scalo/signal/distance.hpp"
#include "scalo/signal/fft.hpp"
#include "scalo/signal/fft_plan.hpp"
#include "scalo/signal/reference.hpp"
#include "scalo/util/rng.hpp"
#include "scalo/util/thread_pool.hpp"

namespace {

using scalo::Rng;

/** Max |a - b| over two complex spectra, relative to the peak. */
double
relSpectrumError(const std::vector<std::complex<double>> &got,
                 const std::vector<std::complex<double>> &want)
{
    EXPECT_EQ(got.size(), want.size());
    double peak = 1.0;
    for (const auto &v : want)
        peak = std::max(peak, std::abs(v));
    double worst = 0.0;
    for (std::size_t i = 0; i < got.size(); ++i)
        worst = std::max(worst, std::abs(got[i] - want[i]) / peak);
    return worst;
}

std::vector<double>
randomSignal(Rng &rng, std::size_t n)
{
    std::vector<double> out(n);
    for (double &v : out)
        v = rng.gaussian(0.0, 1.0);
    return out;
}

TEST(FftPlanParity, MatchesNaiveDftAcrossSizes)
{
    Rng rng(101);
    for (std::size_t n = 1; n <= 256; n *= 2) {
        std::vector<std::complex<double>> data(n);
        for (auto &v : data)
            v = {rng.gaussian(0.0, 1.0), rng.gaussian(0.0, 1.0)};
        const auto want = scalo::signal::reference::naiveDft(data);
        auto got = data;
        scalo::signal::FftPlan::forSize(n)->forward(got);
        EXPECT_LT(relSpectrumError(got, want), 1e-9) << "n=" << n;
    }
}

TEST(FftPlanParity, InverseRoundTripsForward)
{
    Rng rng(102);
    for (std::size_t n = 1; n <= 512; n *= 2) {
        std::vector<std::complex<double>> data(n);
        for (auto &v : data)
            v = {rng.gaussian(0.0, 1.0), rng.gaussian(0.0, 1.0)};
        auto work = data;
        const auto plan = scalo::signal::FftPlan::forSize(n);
        plan->forward(work);
        plan->inverse(work);
        EXPECT_LT(relSpectrumError(work, data), 1e-9) << "n=" << n;
    }
}

TEST(FftPlanParity, RfftMatchesComplexTransform)
{
    Rng rng(103);
    std::vector<std::complex<double>> scratch;
    for (std::size_t n = 1; n <= 256; n *= 2) {
        const auto real = randomSignal(rng, n);
        std::vector<std::complex<double>> full(real.begin(), real.end());
        const auto want = scalo::signal::reference::naiveDft(full);

        std::vector<std::complex<double>> spectrum(n / 2 + 1);
        scalo::signal::FftPlan::forSize(n)->rfft(real.data(),
                                                 spectrum.data(),
                                                 scratch);
        const std::vector<std::complex<double>> want_head(
            want.begin(),
            want.begin() + static_cast<long>(n / 2 + 1));
        EXPECT_LT(relSpectrumError(spectrum, want_head), 1e-9)
            << "n=" << n;
    }
}

TEST(FftPlanParity, MagnitudeSpectrumPadsNonPowerOfTwo)
{
    Rng rng(104);
    // Sizes straddling powers of two exercise the zero-padding path.
    for (std::size_t n : {1u, 3u, 5u, 17u, 63u, 65u, 100u, 129u}) {
        const auto real = randomSignal(rng, n);
        const std::size_t padded = scalo::signal::nextPowerOfTwo(n);
        std::vector<std::complex<double>> full(padded);
        for (std::size_t i = 0; i < n; ++i)
            full[i] = real[i];
        const auto want = scalo::signal::reference::naiveDft(full);

        const auto mags = scalo::signal::magnitudeSpectrum(real);
        ASSERT_EQ(mags.size(), padded / 2 + 1) << "n=" << n;
        for (std::size_t k = 0; k < mags.size(); ++k)
            EXPECT_NEAR(mags[k], std::abs(want[k]),
                        1e-9 * (1.0 + std::abs(want[k])))
                << "n=" << n << " k=" << k;
    }
}

TEST(FftPlanParity, ScratchOverloadMatchesAllocating)
{
    Rng rng(105);
    scalo::signal::SpectrumScratch scratch;
    std::vector<double> out;
    // Reuse one scratch across different sizes to exercise regrowth.
    for (std::size_t n : {96u, 31u, 256u, 96u}) {
        const auto real = randomSignal(rng, n);
        const auto want = scalo::signal::magnitudeSpectrum(real);
        scalo::signal::magnitudeSpectrum(real, scratch, out);
        ASSERT_EQ(out.size(), want.size());
        for (std::size_t k = 0; k < out.size(); ++k)
            EXPECT_DOUBLE_EQ(out[k], want[k]);

        const std::vector<scalo::signal::Band> bands{
            {1.0, 4.0}, {4.0, 8.0}, {8.0, 13.0}};
        const auto want_power =
            scalo::signal::bandPower(real, 250.0, bands);
        std::vector<double> powers;
        scalo::signal::bandPower(real, 250.0, bands, scratch, powers);
        ASSERT_EQ(powers.size(), want_power.size());
        for (std::size_t b = 0; b < powers.size(); ++b)
            EXPECT_DOUBLE_EQ(powers[b], want_power[b]);
    }
}

TEST(MatmulParity, MulIntoMatchesNaiveOnRandomShapes)
{
    Rng rng(201);
    for (int trial = 0; trial < 50; ++trial) {
        const std::size_t r = 1 + rng.below(17);
        const std::size_t k = 1 + rng.below(17);
        const std::size_t c = 1 + rng.below(17);
        scalo::linalg::Matrix a(r, k), b(k, c);
        for (std::size_t i = 0; i < r; ++i)
            for (std::size_t j = 0; j < k; ++j)
                a.at(i, j) = rng.gaussian(0.0, 1.0);
        for (std::size_t i = 0; i < k; ++i)
            for (std::size_t j = 0; j < c; ++j)
                b.at(i, j) = rng.gaussian(0.0, 1.0);

        const auto want = scalo::linalg::reference::naiveMul(a, b);
        scalo::linalg::Matrix got;
        scalo::linalg::mulInto(a, b, got);
        EXPECT_EQ(scalo::linalg::Matrix::maxAbsDiff(got, want), 0.0)
            << r << "x" << k << "x" << c;

        scalo::linalg::Matrix bt(c, k);
        for (std::size_t i = 0; i < c; ++i)
            for (std::size_t j = 0; j < k; ++j)
                bt.at(i, j) = rng.gaussian(0.0, 1.0);
        const auto want_t =
            scalo::linalg::reference::naiveMulTransposed(a, bt);
        scalo::linalg::Matrix got_t;
        scalo::linalg::mulTransposedInto(a, bt, got_t);
        EXPECT_LT(scalo::linalg::Matrix::maxAbsDiff(got_t, want_t),
                  1e-12)
            << r << "x" << k << "x" << c;
    }
}

TEST(MatmulParity, InverseIntoRoundTripsRandomSpd)
{
    Rng rng(202);
    for (std::size_t n : {1u, 2u, 4u, 8u, 16u}) {
        // A A^T + n I is symmetric positive definite, so invertible.
        scalo::linalg::Matrix a(n, n);
        for (std::size_t i = 0; i < n; ++i)
            for (std::size_t j = 0; j < n; ++j)
                a.at(i, j) = rng.gaussian(0.0, 1.0);
        scalo::linalg::Matrix spd;
        scalo::linalg::mulTransposedInto(a, a, spd);
        for (std::size_t i = 0; i < n; ++i)
            spd.at(i, i) += static_cast<double>(n);

        scalo::linalg::Matrix aug, inv, prod;
        scalo::linalg::inverseInto(spd, aug, inv);
        scalo::linalg::mulInto(spd, inv, prod);
        const auto eye = scalo::linalg::Matrix::identity(n);
        EXPECT_LT(scalo::linalg::Matrix::maxAbsDiff(prod, eye), 1e-9)
            << "n=" << n;
    }
}

TEST(BatchedDistance, MatchesPerPairNaive)
{
    Rng rng(301);
    const auto query = randomSignal(rng, 96);
    std::vector<std::vector<double>> windows;
    for (int i = 0; i < 20; ++i)
        windows.push_back(randomSignal(rng, 96));
    std::vector<const std::vector<double> *> candidates;
    for (const auto &w : windows)
        candidates.push_back(&w);

    const auto got =
        scalo::signal::euclideanDistanceMany(query, candidates);
    ASSERT_EQ(got.size(), windows.size());
    for (std::size_t i = 0; i < windows.size(); ++i) {
        const double want =
            scalo::signal::reference::naiveEuclidean(query, windows[i]);
        EXPECT_NEAR(got[i], want, 1e-9 * (1.0 + want)) << "i=" << i;
    }
}

TEST(BatchedDistance, HandlesEmptyAndDegenerateInputs)
{
    // No candidates: the output shrinks to empty.
    std::vector<double> out{1.0, 2.0};
    const std::vector<const std::vector<double> *> no_candidates;
    scalo::signal::euclideanDistanceMany({1.0, 2.0}, no_candidates,
                                         out);
    EXPECT_TRUE(out.empty());

    // Zero-length query against zero-length candidates: all zeros.
    const std::vector<double> empty;
    const std::vector<const std::vector<double> *> empties{&empty,
                                                           &empty};
    const auto zeros =
        scalo::signal::euclideanDistanceMany(empty, empties);
    ASSERT_EQ(zeros.size(), 2u);
    EXPECT_EQ(zeros[0], 0.0);
    EXPECT_EQ(zeros[1], 0.0);

    // Identical signals are at distance zero.
    const std::vector<double> sig{1.0, -2.0, 3.0};
    const std::vector<const std::vector<double> *> same{&sig};
    EXPECT_EQ(scalo::signal::euclideanDistanceMany(sig, same)[0], 0.0);
}

TEST(DtwKernel, ScratchOverloadMatchesNaiveAcrossBands)
{
    Rng rng(401);
    scalo::signal::DtwScratch scratch;
    for (int trial = 0; trial < 40; ++trial) {
        const std::size_t n = 1 + rng.below(64);
        const std::size_t m = 1 + rng.below(64);
        const auto a = randomSignal(rng, n);
        const auto b = randomSignal(rng, m);
        // Band edges: diagonal-only, tiny, typical, and full-matrix.
        for (std::size_t band :
             {std::size_t{1}, std::size_t{2}, n / 10 + 1,
              std::max(n, m) + 1}) {
            const double want =
                scalo::signal::reference::naiveDtw(a, b, band);
            EXPECT_DOUBLE_EQ(
                scalo::signal::dtwDistance(a, b, band), want);
            EXPECT_DOUBLE_EQ(
                scalo::signal::dtwDistance(a, b, band, scratch), want);
        }
    }
}

TEST(DtwKernel, DegenerateInputs)
{
    const std::vector<double> empty;
    const std::vector<double> one{1.0};
    EXPECT_EQ(scalo::signal::dtwDistance(empty, empty, 1), 0.0);
    EXPECT_TRUE(std::isinf(scalo::signal::dtwDistance(empty, one, 1)));
    EXPECT_TRUE(std::isinf(scalo::signal::dtwDistance(one, empty, 1)));
    EXPECT_EQ(scalo::signal::dtwDistance(one, one, 1), 0.0);
}

TEST(DtwKernel, EarlyAbandonPreservesThresholdDecisions)
{
    Rng rng(402);
    scalo::signal::DtwScratch scratch;
    for (int trial = 0; trial < 60; ++trial) {
        const std::size_t n = 8 + rng.below(56);
        const auto a = randomSignal(rng, n);
        const auto b = randomSignal(rng, n);
        const std::size_t band = std::max<std::size_t>(1, n / 10);
        const double exact = scalo::signal::dtwDistance(a, b, band);
        // Cutoffs straddling the exact distance, plus extremes.
        for (const double cutoff :
             {0.0, exact * 0.5, exact, exact * 1.5, 1e12}) {
            const double got = scalo::signal::dtwDistanceEarlyAbandon(
                a, b, band, cutoff, scratch);
            if (exact <= cutoff) {
                // No row can abandon: the result is exact.
                EXPECT_DOUBLE_EQ(got, exact) << "cutoff=" << cutoff;
            } else {
                // Abandoned (or finished): a lower bound > cutoff.
                EXPECT_GT(got, cutoff);
                EXPECT_LE(got, exact + 1e-9 * exact);
            }
        }
    }
}

TEST(SshShingles, CountingTableMatchesMapRecount)
{
    Rng rng(501);
    scalo::lsh::SshParams params;
    for (const unsigned ngram : {1u, 3u, 5u, 12u}) {
        params.ngramSize = ngram;
        const scalo::lsh::SshHasher hasher(params);
        const auto signal = randomSignal(rng, 480);
        const auto bits = hasher.sketch(signal);
        const auto got = hasher.shingles(bits);

        std::map<std::uint32_t, std::uint32_t> want;
        if (bits.size() >= ngram) {
            for (std::size_t i = 0; i + ngram <= bits.size(); ++i) {
                std::uint32_t pattern = 0;
                for (unsigned j = 0; j < ngram; ++j)
                    pattern = (pattern << 1) | (bits[i + j] & 1);
                ++want[pattern];
            }
        }
        ASSERT_EQ(got.size(), want.size()) << "ngram=" << ngram;
        auto it = want.begin();
        for (std::size_t i = 0; i < got.size(); ++i, ++it) {
            // Output must be sorted by pattern (the old sort+count
            // contract) with counts capped at maxShingleCount.
            EXPECT_EQ(got[i].first, it->first);
            EXPECT_EQ(got[i].second,
                      std::min<std::uint32_t>(it->second,
                                              params.maxShingleCount));
            if (i != 0) {
                EXPECT_LT(got[i - 1].first, got[i].first);
            }
        }
    }
}

TEST(ThreadPoolKernel, ParallelForIsDeterministicAcrossWidths)
{
    constexpr std::size_t kCount = 997;
    std::vector<double> expected(kCount);
    for (std::size_t i = 0; i < kCount; ++i)
        expected[i] = std::sqrt(static_cast<double>(i)) * 3.25;

    for (const std::size_t threads : {1u, 2u, 5u, 16u}) {
        scalo::util::ThreadPool pool(threads);
        for (int repeat = 0; repeat < 3; ++repeat) {
            std::vector<double> got(kCount, -1.0);
            pool.parallelFor(kCount, [&](std::size_t i) {
                got[i] = std::sqrt(static_cast<double>(i)) * 3.25;
            });
            // Every index runs exactly once and lands in its own
            // slot, so the result is bitwise identical regardless of
            // pool width or scheduling order.
            EXPECT_EQ(got, expected) << "threads=" << threads;
        }
    }
}

} // namespace
