/**
 * @file
 * Concurrency and index-correctness tests for the sharded query
 * runtime: the thread pool itself, the invariant that execute() is
 * bit-identical at every parallelism (the merge is deterministic),
 * and the property that the bucket index never loses a hash match
 * under random ingest with ring-buffer overwrite churn. This binary
 * is the one to run under -DSCALO_SANITIZE=thread.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numbers>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "scalo/app/query_engine.hpp"
#include "scalo/lsh/hasher.hpp"
#include "scalo/util/rng.hpp"
#include "scalo/util/thread_pool.hpp"

namespace scalo {
namespace {

// ---------------------------------------------------------------
// ThreadPool unit tests.

TEST(ThreadPool, RunsEveryIndexExactlyOnce)
{
    util::ThreadPool pool(8);
    constexpr std::size_t kCount = 10'000;
    std::vector<std::atomic<int>> hits(kCount);
    pool.parallelFor(kCount, [&](std::size_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < kCount; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, InlineWhenSmall)
{
    util::ThreadPool pool(1);
    EXPECT_EQ(pool.size(), 0u); // degenerates to the caller thread
    std::size_t sum = 0;
    pool.parallelFor(100, [&](std::size_t i) { sum += i; });
    EXPECT_EQ(sum, 4'950u);
}

TEST(ThreadPool, ReusableAcrossLoops)
{
    util::ThreadPool pool(4);
    for (int round = 0; round < 50; ++round) {
        std::atomic<std::size_t> count{0};
        pool.parallelFor(64, [&](std::size_t) {
            count.fetch_add(1, std::memory_order_relaxed);
        });
        ASSERT_EQ(count.load(), 64u);
    }
}

TEST(ThreadPool, PropagatesFirstException)
{
    util::ThreadPool pool(4);
    EXPECT_THROW(pool.parallelFor(32,
                                  [&](std::size_t i) {
                                      if (i == 7)
                                          throw std::runtime_error(
                                              "boom");
                                  }),
                 std::runtime_error);
    // The pool survives a throwing loop.
    std::atomic<std::size_t> count{0};
    pool.parallelFor(8, [&](std::size_t) { ++count; });
    EXPECT_EQ(count.load(), 8u);
}

// ---------------------------------------------------------------
// Parallel execution is bit-identical to the sequential path.

std::vector<double>
shapedWindow(double freq, std::size_t n, double phase, Rng &noise,
             double noise_sd)
{
    std::vector<double> out(n);
    for (std::size_t i = 0; i < n; ++i)
        out[i] = std::sin(2.0 * std::numbers::pi * freq *
                              static_cast<double>(i) /
                              static_cast<double>(n) +
                          phase) +
                 noise.gaussian(0.0, noise_sd);
    return out;
}

class ShardedQueryFixture : public ::testing::Test
{
  protected:
    static constexpr std::size_t kNodes = 8;
    static constexpr std::size_t kSamples = 96;

    void
    SetUp() override
    {
        engine =
            std::make_unique<app::QueryEngine>(kNodes, kSamples, 7);
        Rng noise(41);
        // Electrode-major ingest per node so insertion order and
        // timestamp order diverge; every 7th window is a noisy copy
        // of the probe shape, every 11th is seizure-flagged.
        for (NodeId node = 0; node < kNodes; ++node) {
            for (ElectrodeId e = 0; e < 2; ++e) {
                for (std::uint64_t w = 0; w < 60; ++w) {
                    const std::uint64_t t = w * 4'000 + e * 1'700;
                    const bool probe_like = (w + e) % 7 == 0;
                    const bool seizure = (w + e) % 11 == 0;
                    auto window =
                        probe_like
                            ? shapedWindow(6.0, kSamples, 0.3,
                                           noise, 0.05)
                            : shapedWindow(noise.uniform(2.0, 20.0),
                                           kSamples,
                                           noise.uniform(0.0, 6.0),
                                           noise, 0.5);
                    engine->ingest(node, t, e, window, seizure);
                }
            }
        }
        Rng probe_noise(43);
        probe = shapedWindow(6.0, kSamples, 0.3, probe_noise, 0.05);
    }

    /** The query shapes the identity must hold for. */
    std::vector<app::Query>
    testQueries() const
    {
        std::vector<app::Query> queries;
        queries.push_back(app::Query::q1(0, 300'000));
        queries.push_back(app::Query::q2(0, 300'000, probe));
        queries.push_back(app::Query::q3(10'000, 150'000));
        auto no_index = app::Query::q2(0, 300'000, probe);
        no_index.useIndex = false;
        queries.push_back(no_index);
        auto legacy_dtw = app::Query::q2(0, 300'000, probe, 12.0);
        queries.push_back(legacy_dtw);
        auto confirmed = app::Query::q2(0, 300'000, probe);
        confirmed.dtwThreshold = 12.0;
        confirmed.seizureOnly = true;
        queries.push_back(confirmed);
        return queries;
    }

    static void
    expectIdentical(const app::QueryExecution &a,
                    const app::QueryExecution &b)
    {
        EXPECT_EQ(a.matches, b.matches); // same pointers, same order
        EXPECT_EQ(a.scanned, b.scanned);
        EXPECT_EQ(a.transferBytes, b.transferBytes);
        EXPECT_EQ(a.latency.count(), b.latency.count()); // modeled, exact
        ASSERT_EQ(a.perNode.size(), b.perNode.size());
        for (std::size_t n = 0; n < a.perNode.size(); ++n) {
            EXPECT_EQ(a.perNode[n].scanned, b.perNode[n].scanned);
            EXPECT_EQ(a.perNode[n].bucketHits,
                      b.perNode[n].bucketHits);
            EXPECT_EQ(a.perNode[n].dtwComparisons,
                      b.perNode[n].dtwComparisons);
            EXPECT_EQ(a.perNode[n].matched, b.perNode[n].matched);
            EXPECT_EQ(a.perNode[n].modeled.count(),
                      b.perNode[n].modeled.count());
        }
    }

    std::unique_ptr<app::QueryEngine> engine;
    std::vector<double> probe;
};

TEST_F(ShardedQueryFixture, ParallelResultsMatchSequential)
{
    for (const app::Query &query : testQueries()) {
        engine->setParallelism(1);
        const auto sequential = engine->execute(query);
        EXPECT_FALSE(sequential.matches.empty());
        for (std::size_t threads : {2u, 8u}) {
            engine->setParallelism(threads);
            expectIdentical(sequential, engine->execute(query));
        }
    }
}

TEST_F(ShardedQueryFixture, RepeatedParallelRunsAreStable)
{
    engine->setParallelism(8);
    const auto query = app::Query::q2(0, 300'000, probe);
    const auto first = engine->execute(query);
    for (int run = 0; run < 10; ++run)
        expectIdentical(first, engine->execute(query));
}

// ---------------------------------------------------------------
// Property: the bucket index never loses an exact hash match,
// under random ingest + overwrite churn.

TEST(BucketIndexProperty, CandidatesCoverHashMatches)
{
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        Rng rng(seed);
        const std::size_t samples = 64;
        lsh::WindowHasher hasher(signal::Measure::Dtw, samples,
                                 seed);
        app::SignalStore store(96); // small ring: heavy churn
        for (std::uint64_t i = 0; i < 500; ++i) {
            app::StoredWindow window;
            // Timestamps jitter out of insertion order.
            window.timestampUs =
                i * 1'000 +
                static_cast<std::uint64_t>(rng.below(2'000));
            window.electrode =
                static_cast<ElectrodeId>(rng.below(4));
            window.samples.resize(samples);
            for (double &v : window.samples)
                v = rng.gaussian();
            window.hash = hasher.hash(window.samples);
            store.append(std::move(window));
        }
        ASSERT_GT(store.overwritten(), 0u);
        ASSERT_EQ(store.indexedWindows(), store.size());

        for (int p = 0; p < 20; ++p) {
            std::vector<double> probe(samples);
            for (double &v : probe)
                v = rng.gaussian();
            const lsh::Signature probe_hash = hasher.hash(probe);
            const std::uint64_t t0 = rng.below(300'000);
            const std::uint64_t t1 = t0 + rng.below(300'000);

            const auto candidates =
                store.candidates(probe_hash, t0, t1);
            // Exhaustive scan: every exact hash match in range must
            // be among the candidates.
            for (const app::StoredWindow *window :
                 store.range(t0, t1)) {
                if (!probe_hash.matches(window->hash))
                    continue;
                EXPECT_NE(std::find(candidates.begin(),
                                    candidates.end(), window),
                          candidates.end())
                    << "seed " << seed << " probe " << p
                    << " lost a hash match";
            }
            // And candidates never stray outside the time range.
            for (const app::StoredWindow *window : candidates) {
                EXPECT_GE(window->timestampUs, t0);
                EXPECT_LE(window->timestampUs, t1);
            }
        }
    }
}

} // namespace
} // namespace scalo
