/**
 * @file
 * Unit tests for the external-offload compression suite: LIC linear
 * integer coding, the MA/RC adaptive range coder, the TOK tokenizer,
 * the composed neural-stream codec, and the AES PE.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "scalo/compress/lic.hpp"
#include "scalo/compress/range_coder.hpp"
#include "scalo/util/aes.hpp"
#include "scalo/util/rng.hpp"

namespace scalo::compress {
namespace {

std::vector<Sample>
neuralTrace(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<Sample> out;
    out.reserve(n);
    double phase = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        phase += 0.013;
        const double v = 2'500.0 * std::sin(phase) +
                         rng.gaussian(0.0, 40.0);
        out.push_back(static_cast<Sample>(v));
    }
    return out;
}

TEST(Zigzag, RoundTripAndOrdering)
{
    for (std::int64_t v : {0LL, 1LL, -1LL, 2LL, -2LL, 32'767LL,
                           -32'768LL}) {
        EXPECT_EQ(zigzagDecode(zigzagEncode(v)), v);
    }
    // Small magnitudes map to small codes.
    EXPECT_LT(zigzagEncode(-1), zigzagEncode(100));
}

TEST(Lic, RoundTripNeuralTrace)
{
    const auto samples = neuralTrace(10'000, 1);
    const auto compressed = licCompress(samples);
    EXPECT_EQ(licDecompress(compressed, samples.size()), samples);
}

TEST(Lic, CompressesSmoothSignals)
{
    // Slow, nearly-noiseless sine: second-order residuals are tiny.
    Rng rng(2);
    std::vector<Sample> samples;
    double phase = 0.0;
    for (int i = 0; i < 10'000; ++i) {
        phase += 0.013;
        samples.push_back(static_cast<Sample>(
            2'500.0 * std::sin(phase) + rng.gaussian(0.0, 2.0)));
    }
    const auto compressed = licCompress(samples);
    EXPECT_LT(compressed.size(), samples.size() * 2 / 2)
        << "at least 2x on smooth neural data";
}

TEST(Lic, HandlesEdgeCases)
{
    EXPECT_TRUE(licDecompress(licCompress({}), 0).empty());
    const std::vector<Sample> extremes{32'767, -32'768, 0, 32'767,
                                       -32'768};
    EXPECT_EQ(licDecompress(licCompress(extremes), extremes.size()),
              extremes);
}

TEST(Tokenizer, RoundTripAllWidths)
{
    for (std::uint64_t v = 0; v < 300; ++v) {
        const auto t = tokenize(v);
        EXPECT_EQ(detokenize(t.token, t.extra), v) << v;
    }
    const auto wide = tokenize(131'071); // 17 bits
    EXPECT_EQ(wide.token, 17u);
    EXPECT_EQ(detokenize(wide.token, wide.extra), 131'071u);
}

TEST(MarkovModel, FrequenciesAdaptAndRescale)
{
    MarkovModel model(4, /*order1=*/false);
    const auto before = model.frequency(2);
    for (int i = 0; i < 100; ++i)
        model.update(2);
    EXPECT_GT(model.frequency(2), before);
    // Drive past the rescale threshold.
    for (int i = 0; i < 5'000; ++i)
        model.update(2);
    EXPECT_LT(model.total(), 1u << 16);
    EXPECT_GE(model.frequency(0), 1u);
}

TEST(MarkovModel, FindInvertsCumulative)
{
    MarkovModel model(8, true);
    for (int i = 0; i < 200; ++i)
        model.update(static_cast<unsigned>(i % 3));
    for (unsigned s = 0; s < 8; ++s) {
        const auto cum = model.cumulative(s);
        EXPECT_EQ(model.find(cum), s);
    }
}

TEST(RangeCoder, RoundTripSkewedStream)
{
    Rng rng(3);
    std::vector<unsigned> symbols;
    unsigned current = 2;
    for (int i = 0; i < 30'000; ++i) {
        if (rng.chance(0.2))
            current = static_cast<unsigned>(rng.below(20));
        symbols.push_back(current);
    }
    MarkovModel encode_model(20), decode_model(20);
    RangeEncoder encoder;
    for (unsigned s : symbols)
        encoder.encode(encode_model, s);
    const auto bytes = encoder.finish();

    RangeDecoder decoder(bytes);
    for (std::size_t i = 0; i < symbols.size(); ++i)
        ASSERT_EQ(decoder.decode(decode_model), symbols[i])
            << "at " << i;

    // Entropy coding: a sticky stream codes well below 8 bits/symbol.
    EXPECT_LT(bytes.size() * 8, symbols.size() * 3);
}

TEST(RangeCoder, RoundTripUniformStream)
{
    Rng rng(7);
    std::vector<unsigned> symbols;
    for (int i = 0; i < 5'000; ++i)
        symbols.push_back(static_cast<unsigned>(rng.below(20)));
    MarkovModel em(20), dm(20);
    RangeEncoder encoder;
    for (unsigned s : symbols)
        encoder.encode(em, s);
    const auto bytes = encoder.finish();
    RangeDecoder decoder(bytes);
    for (std::size_t i = 0; i < symbols.size(); ++i)
        ASSERT_EQ(decoder.decode(dm), symbols[i]);
}

TEST(NeuralStream, LosslessRoundTrip)
{
    const auto samples = neuralTrace(30'000, 11);
    const auto packed = neuralStreamCompress(samples);
    EXPECT_EQ(neuralStreamDecompress(packed, samples.size()),
              samples);
    // Compression on 16-bit neural data.
    EXPECT_LT(packed.size(), samples.size() * 2 * 3 / 4);
}

TEST(NeuralStream, BeatsPlainLicOnStructuredData)
{
    const auto samples = neuralTrace(20'000, 13);
    const auto stream = neuralStreamCompress(samples);
    const auto lic = licCompress(samples);
    // The MA+RC entropy stage should not lose to gamma coding.
    EXPECT_LE(stream.size(), lic.size() + lic.size() / 10);
}

} // namespace
} // namespace scalo::compress

namespace scalo {
namespace {

TEST(Aes, Fips197KnownAnswer)
{
    // FIPS-197 Appendix B.
    const Aes128::Key key{0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2,
                          0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
                          0x4f, 0x3c};
    const Aes128::Block plaintext{0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a,
                                  0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2,
                                  0xe0, 0x37, 0x07, 0x34};
    const Aes128::Block expected{0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc,
                                 0x09, 0xfb, 0xdc, 0x11, 0x85, 0x97,
                                 0x19, 0x6a, 0x0b, 0x32};
    Aes128 aes(key);
    EXPECT_EQ(aes.encryptBlock(plaintext), expected);
}

TEST(Aes, CtrIsItsOwnInverse)
{
    const Aes128::Key key{1, 2, 3, 4, 5, 6, 7, 8,
                          9, 10, 11, 12, 13, 14, 15, 16};
    Aes128 aes(key);
    Rng rng(5);
    std::vector<std::uint8_t> data(1'000);
    for (auto &b : data)
        b = static_cast<std::uint8_t>(rng.below(256));
    const Aes128::Block nonce{0xde, 0xad, 0xbe, 0xef};
    const auto encrypted = aes.ctrCrypt(data, nonce);
    EXPECT_NE(encrypted, data);
    EXPECT_EQ(aes.ctrCrypt(encrypted, nonce), data);
}

TEST(Aes, DistinctNoncesDistinctStreams)
{
    const Aes128::Key key{};
    Aes128 aes(key);
    const std::vector<std::uint8_t> zeros(64, 0);
    const auto a = aes.ctrCrypt(zeros, {0});
    const auto b = aes.ctrCrypt(zeros, {1});
    EXPECT_NE(a, b);
}

} // namespace
} // namespace scalo
