/**
 * @file
 * Unit tests for scalo::core: the ScaloSystem facade - construction,
 * thermal checks, deployment, programming interface and query paths.
 */

#include <gtest/gtest.h>

#include "scalo/core/system.hpp"

namespace scalo::core {
namespace {

using namespace units::literals;

TEST(ScaloSystem, DefaultConfigurationIsSafe)
{
    ScaloSystem system({});
    EXPECT_TRUE(system.thermallySafe());
    EXPECT_EQ(system.maxPlaceableImplants(), 60u);
    EXPECT_NE(system.describe().find("safe"), std::string::npos);
}

TEST(ScaloSystem, RejectsUnsafePower)
{
    ScaloConfig config;
    config.powerCap = 30.0_mW;
    EXPECT_THROW(ScaloSystem{config}, std::runtime_error);
}

TEST(ScaloSystem, TightSpacingDetectedAsUnsafe)
{
    ScaloConfig config;
    config.nodes = 11;
    config.spacing = 5.0_mm;
    ScaloSystem system(config);
    EXPECT_FALSE(system.thermallySafe());
}

TEST(ScaloSystem, DeploysSeizurePropagation)
{
    ScaloConfig config;
    config.nodes = 6;
    ScaloSystem system(config);
    const auto schedule = system.deploy(
        {sched::seizureDetectionFlow(),
         sched::hashSimilarityFlow(net::Pattern::AllToAll)},
        {3.0, 1.0});
    ASSERT_TRUE(schedule.feasible) << schedule.reason;
    EXPECT_EQ(schedule.flows.size(), 2u);
    for (units::Milliwatts mw : schedule.nodePower)
        EXPECT_LE(mw, config.powerCap * 1.005);
    // Deployment mode caps electrodes at the physical array size.
    for (const auto &flow : schedule.flows)
        for (double e : flow.electrodesPerNode)
            EXPECT_LE(e, 96.0 + 1e-6);
}

TEST(ScaloSystem, ThroughputGrowsWithNodes)
{
    ScaloConfig small_config;
    small_config.nodes = 2;
    ScaloConfig large_config;
    large_config.nodes = 8;
    const units::MegabitsPerSecond small =
        ScaloSystem(small_config)
            .maxThroughput(sched::spikeSortingFlow());
    const units::MegabitsPerSecond large =
        ScaloSystem(large_config)
            .maxThroughput(sched::spikeSortingFlow());
    EXPECT_NEAR(large / small, 4.0, 0.1);
}

TEST(ScaloSystem, RadioSelectionTakesEffect)
{
    ScaloConfig config;
    config.radio = net::RadioDesign::HighPerf;
    ScaloSystem system(config);
    EXPECT_DOUBLE_EQ(system.radio().dataRate.count(), 14.0);
}

TEST(ScaloSystem, CompilesAndValidatesPrograms)
{
    ScaloSystem system({});
    const auto pipeline = system.program(
        "stream.window(wsize=50ms).sbp().kf().call_runtime()");
    EXPECT_TRUE(pipeline.callsRuntime);
    EXPECT_DOUBLE_EQ(pipeline.windowMs, 50.0);
    EXPECT_THROW(system.program("stream.nonsense()"),
                 std::runtime_error);
}

TEST(ScaloSystem, InteractiveQueryMatchesAppModel)
{
    ScaloConfig config;
    config.nodes = 11;
    ScaloSystem system(config);
    const auto cost = system.interactiveQuery(
        app::QueryKind::Q1SeizureWindows, units::Megabytes{7.0},
        0.05);
    EXPECT_NEAR(cost.queriesPerSecond.count(), 9.0, 1.5);
}

} // namespace
} // namespace scalo::core
