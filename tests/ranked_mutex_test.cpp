// The ranked-mutex deadlock discipline: acquisitions must ascend in
// rank, checked at runtime against a thread-local held-rank stack,
// with violations routed through the contracts handler. These tests
// force checking on (it defaults to the contracts build setting) and
// install a throwing handler, so the discipline is exercised in every
// build type — including the tier-1 RelWithDebInfo tree where
// contracts themselves are compiled out.

#include <stdexcept>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "scalo/util/contracts.hpp"
#include "scalo/util/ranked_mutex.hpp"

namespace {

using scalo::util::ConditionVariable;
using scalo::util::MutexLock;
using scalo::util::OrderedLockPair;
using scalo::util::RankedMutex;

struct RankViolation
{
    std::string kind;
    std::string condition;
};

void
throwingHandler(const char *kind, const char *condition, const char *,
                int)
{
    throw RankViolation{kind, condition};
}

class RankedMutexTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        previousChecking = scalo::util::setLockRankChecking(true);
        previousHandler =
            scalo::util::setContractHandler(&throwingHandler);
        ASSERT_EQ(scalo::util::heldLockCount(), 0u);
    }

    void
    TearDown() override
    {
        EXPECT_EQ(scalo::util::heldLockCount(), 0u)
            << "a test leaked a held rank";
        scalo::util::setContractHandler(previousHandler);
        scalo::util::setLockRankChecking(previousChecking);
    }

    bool previousChecking = false;
    scalo::util::ContractHandler previousHandler = nullptr;
};

TEST_F(RankedMutexTest, AscendingAcquisitionPasses)
{
    RankedMutex<10> low;
    RankedMutex<20> mid;
    RankedMutex<30> high;

    MutexLock first(low);
    EXPECT_EQ(scalo::util::topHeldRank(), 10);
    {
        MutexLock second(mid);
        MutexLock third(high);
        EXPECT_EQ(scalo::util::heldLockCount(), 3u);
        EXPECT_EQ(scalo::util::topHeldRank(), 30);
    }
    EXPECT_EQ(scalo::util::heldLockCount(), 1u);
}

TEST_F(RankedMutexTest, InvertedAcquisitionReportsViolation)
{
    RankedMutex<10> low;
    RankedMutex<20> high;

    MutexLock outer(high);
    try {
        MutexLock inner(low);
        FAIL() << "rank inversion did not reach the handler";
    } catch (const RankViolation &v) {
        EXPECT_EQ(v.kind, "lock-rank");
        EXPECT_NE(v.condition.find("acquiring rank 10"),
                  std::string::npos);
        EXPECT_NE(v.condition.find("holding rank 20"),
                  std::string::npos);
    }

    // The refused acquisition left `low` untouched: it is still
    // free, and the held stack still only records `high`.
    EXPECT_EQ(scalo::util::heldLockCount(), 1u);
    EXPECT_EQ(scalo::util::topHeldRank(), 20);
    EXPECT_TRUE(low.try_lock());
    low.unlock();
}

TEST_F(RankedMutexTest, EqualRankReacquisitionReportsViolation)
{
    // Two locks of the same rank are unordered relative to each
    // other, so nesting them is an (ABBA-able) violation too.
    RankedMutex<10> a;
    RankedMutex<10> b;

    MutexLock outer(a);
    EXPECT_THROW({ MutexLock inner(b); }, RankViolation);
}

TEST_F(RankedMutexTest, RankStackUnwindsAcrossExceptions)
{
    RankedMutex<10> low;
    RankedMutex<20> high;

    try {
        MutexLock first(low);
        MutexLock second(high);
        EXPECT_EQ(scalo::util::heldLockCount(), 2u);
        throw std::runtime_error("boom");
    } catch (const std::runtime_error &) {
    }
    EXPECT_EQ(scalo::util::heldLockCount(), 0u);

    // Both locks are free and reusable after the unwind.
    MutexLock again_low(low);
    MutexLock again_high(high);
    EXPECT_EQ(scalo::util::heldLockCount(), 2u);
}

TEST_F(RankedMutexTest, TryLockRecordsWithoutOrderCheck)
{
    RankedMutex<10> low;
    RankedMutex<20> high;

    // try_lock cannot block, so taking a *lower* rank via try_lock
    // while holding a higher one is deadlock-free and allowed...
    MutexLock outer(high);
    ASSERT_TRUE(low.try_lock());
    EXPECT_EQ(scalo::util::heldLockCount(), 2u);

    // ...but it is recorded: ordered acquisitions still check
    // against it.
    RankedMutex<15> mid;
    EXPECT_THROW({ MutexLock inner(mid); }, RankViolation);

    low.unlock();
    EXPECT_EQ(scalo::util::heldLockCount(), 1u);
}

TEST_F(RankedMutexTest, OrderedLockPairAcquiresBothInOrder)
{
    RankedMutex<10> low;
    RankedMutex<20> high;
    {
        OrderedLockPair pair(low, high);
        EXPECT_EQ(scalo::util::heldLockCount(), 2u);
        EXPECT_EQ(scalo::util::topHeldRank(), 20);
    }
    EXPECT_EQ(scalo::util::heldLockCount(), 0u);
}

TEST_F(RankedMutexTest, RelockCycleMaintainsStack)
{
    // The dispatcher idiom: drop the lock around a batch, retake it.
    RankedMutex<10> mtx;
    MutexLock lock(mtx);
    EXPECT_EQ(scalo::util::heldLockCount(), 1u);
    lock.unlock();
    EXPECT_EQ(scalo::util::heldLockCount(), 0u);
    lock.lock();
    EXPECT_EQ(scalo::util::heldLockCount(), 1u);
}

TEST_F(RankedMutexTest, HeldStackIsPerThread)
{
    RankedMutex<10> mtx;
    MutexLock lock(mtx);

    std::size_t observed = 99;
    std::thread probe([&] {
        // Checking is process-wide but the stack is thread-local:
        // this thread holds nothing.
        observed = scalo::util::heldLockCount();
    });
    probe.join();
    EXPECT_EQ(observed, 0u);
    EXPECT_EQ(scalo::util::heldLockCount(), 1u);
}

TEST_F(RankedMutexTest, DisabledCheckingSkipsViolations)
{
    scalo::util::setLockRankChecking(false);
    EXPECT_FALSE(scalo::util::lockRankCheckingEnabled());

    RankedMutex<10> low;
    RankedMutex<20> high;
    {
        MutexLock outer(high);
        MutexLock inner(low); // inverted, but unchecked: no throw
        EXPECT_EQ(scalo::util::heldLockCount(), 0u);
    }
    scalo::util::setLockRankChecking(true);
}

TEST_F(RankedMutexTest, ConditionVariableRoundTrip)
{
    // Smoke the ConditionVariable wrapper end to end: a worker flips
    // a guarded flag, the waiter loops on it (the TSA-friendly
    // predicate-free idiom used across the runtime).
    RankedMutex<10> mtx;
    ConditionVariable cv;
    bool ready = false; // guarded by mtx (a local: not annotatable)

    std::thread worker([&] {
        MutexLock lock(mtx);
        ready = true;
        cv.notifyAll();
    });

    {
        MutexLock lock(mtx);
        while (!ready)
            cv.wait(lock);
        EXPECT_EQ(scalo::util::heldLockCount(), 1u);
    }
    worker.join();
}

} // namespace
