/**
 * @file
 * Unit tests for scalo::lsh: signature band matching, SSH pipeline
 * stages, EMD hashing, the LSH property (similar signals collide far
 * more often than dissimilar ones), and the CCHECK collision checker.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "scalo/lsh/collision.hpp"
#include "scalo/lsh/emd_hash.hpp"
#include "scalo/lsh/hasher.hpp"
#include "scalo/lsh/signature.hpp"
#include "scalo/lsh/ssh.hpp"
#include "scalo/util/rng.hpp"

namespace scalo::lsh {
namespace {

std::vector<double>
sine(double freq, std::size_t n, double phase = 0.0)
{
    std::vector<double> out(n);
    for (std::size_t i = 0; i < n; ++i)
        out[i] = std::sin(2.0 * std::numbers::pi * freq *
                              static_cast<double>(i) / 1000.0 +
                          phase);
    return out;
}

std::vector<double>
noisyCopy(const std::vector<double> &x, double sigma, Rng &rng)
{
    auto y = x;
    for (auto &v : y)
        v += rng.gaussian(0.0, sigma);
    return y;
}

TEST(Signature, ExactEqualityMatches)
{
    Signature a(0x1234, 2, 8);
    Signature b(0x1234, 2, 8);
    EXPECT_TRUE(a.matches(b));
}

TEST(Signature, AnyBandMatchSuffices)
{
    // Band 0 differs, band 1 (0x12) agrees.
    Signature a(0x1234, 2, 8);
    Signature b(0x1299, 2, 8);
    EXPECT_TRUE(a.matches(b));
    EXPECT_TRUE(b.matches(a));
}

TEST(Signature, NoBandMatchFails)
{
    Signature a(0x1234, 2, 8);
    Signature b(0x5678, 2, 8);
    EXPECT_FALSE(a.matches(b));
}

TEST(Signature, ShapeMismatchNeverMatches)
{
    Signature a(0x12, 1, 8);
    Signature b(0x12, 2, 4);
    EXPECT_FALSE(a.matches(b));
}

TEST(Signature, BandExtraction)
{
    Signature s(0xab12, 2, 8);
    EXPECT_EQ(s.band(0), 0x12u);
    EXPECT_EQ(s.band(1), 0xabu);
    const auto bytes = s.bandBytes();
    ASSERT_EQ(bytes.size(), 2u);
    EXPECT_EQ(bytes[0], 0x12);
    EXPECT_EQ(bytes[1], 0xab);
    EXPECT_EQ(s.sizeBytes(), 2u);
}

TEST(Signature, TooWidePanics)
{
    EXPECT_THROW(Signature(0, 9, 8), std::logic_error);
}

TEST(Ssh, SketchIsDeterministic)
{
    SshHasher hasher({});
    const auto x = sine(25.0, 120);
    EXPECT_EQ(hasher.sketch(x), hasher.sketch(x));
}

TEST(Ssh, SketchLengthMatchesStride)
{
    SshParams params;
    params.windowSize = 16;
    params.stride = 4;
    SshHasher hasher(params);
    const auto bits = hasher.sketch(sine(25.0, 120));
    EXPECT_EQ(bits.size(), (120u - 16u) / 4u + 1u);
}

TEST(Ssh, ShinglesCountPatterns)
{
    SshParams params;
    params.ngramSize = 2;
    SshHasher hasher(params);
    // Sketch bits 1,0,1,0 -> 2-grams: 10, 01, 10.
    const std::vector<std::uint8_t> bits{1, 0, 1, 0};
    const auto shingles = hasher.shingles(bits);
    ASSERT_EQ(shingles.size(), 2u);
    EXPECT_EQ(shingles[0].first, 0b01u);
    EXPECT_EQ(shingles[0].second, 1u);
    EXPECT_EQ(shingles[1].first, 0b10u);
    EXPECT_EQ(shingles[1].second, 2u);
}

TEST(Ssh, ShingleCountsAreCapped)
{
    SshParams params;
    params.ngramSize = 1;
    params.maxShingleCount = 3;
    SshHasher hasher(params);
    const std::vector<std::uint8_t> bits(32, 1);
    const auto shingles = hasher.shingles(bits);
    ASSERT_EQ(shingles.size(), 1u);
    EXPECT_EQ(shingles[0].second, 3u);
}

TEST(Ssh, LshPropertyHolds)
{
    // Similar signals must collide far more often than dissimilar ones.
    Rng rng(77);
    int similar_hits = 0, dissimilar_hits = 0;
    const int trials = 200;
    SshParams params;
    SshHasher hasher(params);
    for (int t = 0; t < trials; ++t) {
        const auto base = noisyCopy(sine(25.0, 120), 0.3, rng);
        const auto similar = noisyCopy(base, 0.05, rng);
        std::vector<double> random(120);
        for (auto &v : random)
            v = rng.gaussian();
        const auto h = hasher.signature(base);
        similar_hits += h.matches(hasher.signature(similar));
        dissimilar_hits += h.matches(hasher.signature(random));
    }
    EXPECT_GT(similar_hits, trials * 3 / 4);
    EXPECT_LT(dissimilar_hits, trials / 4);
}

TEST(Ssh, InvalidParamsPanic)
{
    SshParams params;
    params.stride = 0;
    EXPECT_THROW(SshHasher{params}, std::logic_error);

    SshParams bad_rows;
    bad_rows.bandBits = 8;
    bad_rows.rowsPerBand = 3;
    EXPECT_THROW(SshHasher{bad_rows}, std::logic_error);
}

TEST(EmdHash, DeterministicAndShaped)
{
    EmdHashParams params;
    EmdHasher hasher(params, 120);
    const auto x = sine(10.0, 120);
    const auto a = hasher.signature(x);
    const auto b = hasher.signature(x);
    EXPECT_TRUE(a == b);
    EXPECT_EQ(a.bandCount(), params.bands);
}

TEST(EmdHash, SimilarMassCollides)
{
    Rng rng(5);
    EmdHashParams params;
    params.bucketWidth = 8.0;
    EmdHasher hasher(params, 120);
    int similar_hits = 0, dissimilar_hits = 0;
    const int trials = 200;
    for (int t = 0; t < trials; ++t) {
        const auto base = noisyCopy(sine(12.0, 120), 0.2, rng);
        const auto similar = noisyCopy(base, 0.02, rng);
        auto scaled = base;
        for (auto &v : scaled)
            v = v * 6.0 + 3.0;
        similar_hits += hasher.signature(base).matches(
            hasher.signature(similar));
        dissimilar_hits += hasher.signature(base).matches(
            hasher.signature(scaled));
    }
    EXPECT_GT(similar_hits, trials * 3 / 4);
    EXPECT_LT(dissimilar_hits, trials / 2);
}

TEST(WindowHasher, MeasureDefaultsDiffer)
{
    const auto euclid = WindowHasher::defaultSshParams(
        signal::Measure::Euclidean, 120, 1);
    const auto xcor =
        WindowHasher::defaultSshParams(signal::Measure::Xcor, 120, 1);
    EXPECT_LT(euclid.windowSize, xcor.windowSize);
}

TEST(WindowHasher, AllMeasuresProduceSignatures)
{
    const auto x = sine(20.0, 120);
    for (auto m : {signal::Measure::Euclidean, signal::Measure::Dtw,
                   signal::Measure::Xcor, signal::Measure::Emd}) {
        WindowHasher hasher(m, 120);
        const auto sig = hasher.hash(x);
        EXPECT_GE(sig.bandCount(), 1u) << signal::measureName(m);
        EXPECT_LE(hasher.signatureBytes(), 2u) << signal::measureName(m);
    }
}

TEST(CollisionChecker, FindsStoredMatch)
{
    CollisionChecker checker(100'000);
    Signature sig(0xbeef, 2, 8);
    checker.store({50'000, 3, sig});
    const auto matches = checker.check({sig}, 60'000);
    ASSERT_EQ(matches.size(), 1u);
    EXPECT_EQ(matches[0].receivedIndex, 0u);
    EXPECT_EQ(matches[0].local.electrode, 3u);
}

TEST(CollisionChecker, RespectsLookbackHorizon)
{
    CollisionChecker checker(100'000);
    Signature sig(0xbeef, 2, 8);
    checker.store({10'000, 1, sig});
    // now=200ms: the record at 10ms is older than the 100ms horizon.
    EXPECT_TRUE(checker.check({sig}, 200'000).empty());
    // now=100ms: still inside.
    EXPECT_EQ(checker.check({sig}, 100'000).size(), 1u);
}

TEST(CollisionChecker, ExpireDropsOldRecords)
{
    CollisionChecker checker(1'000);
    checker.store({0, 0, Signature(0x1, 1, 8)});
    checker.store({5'000, 0, Signature(0x2, 1, 8)});
    // Horizon at 5500 - 1000 = 4500: the record at t=0 ages out, the
    // one at t=5000 survives.
    checker.expire(5'500);
    EXPECT_EQ(checker.size(), 1u);
    checker.expire(10'000);
    EXPECT_EQ(checker.size(), 0u);
}

TEST(CollisionChecker, MatchesOnlySharedBands)
{
    CollisionChecker checker(100'000);
    checker.store({1'000, 0, Signature(0x1234, 2, 8)});
    // Shares band 1 (0x12) only.
    const auto matches =
        checker.check({Signature(0x12ff, 2, 8)}, 2'000);
    EXPECT_EQ(matches.size(), 1u);
    // Shares nothing.
    EXPECT_TRUE(checker.check({Signature(0x5678, 2, 8)}, 2'000).empty());
}

TEST(CollisionChecker, MultipleReceivedBatch)
{
    CollisionChecker checker(100'000);
    checker.store({1'000, 7, Signature(0xaaaa, 2, 8)});
    checker.store({1'500, 9, Signature(0xbbbb, 2, 8)});
    const std::vector<Signature> batch{Signature(0xbbbb, 2, 8),
                                       Signature(0xaaaa, 2, 8),
                                       Signature(0xcccc, 2, 8)};
    const auto matches = checker.check(batch, 2'000);
    ASSERT_EQ(matches.size(), 2u);
}

} // namespace
} // namespace scalo::lsh
