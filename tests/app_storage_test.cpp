/**
 * @file
 * Unit tests for the storage substrate and the executable query
 * engine: ring-buffer semantics, layout-dependent read costs, the
 * LSH bucket index, and Query descriptors executed over data
 * actually stored on the nodes.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "scalo/app/query_engine.hpp"
#include "scalo/app/store.hpp"
#include "scalo/util/rng.hpp"

namespace scalo::app {
namespace {

std::vector<double>
windowOf(double freq, std::size_t n, double phase, Rng *noise)
{
    std::vector<double> out(n);
    for (std::size_t i = 0; i < n; ++i) {
        out[i] = std::sin(2.0 * std::numbers::pi * freq *
                              static_cast<double>(i) /
                              static_cast<double>(n) +
                          phase);
        if (noise)
            out[i] += noise->gaussian(0.0, 0.05);
    }
    return out;
}

StoredWindow
makeWindow(std::uint64_t t, bool seizure)
{
    StoredWindow w;
    w.timestampUs = t;
    w.samples.assign(120, 0.5);
    w.seizureFlagged = seizure;
    return w;
}

TEST(SignalStore, AppendAndRange)
{
    SignalStore store(100);
    for (std::uint64_t t = 0; t < 10; ++t)
        store.append(makeWindow(t * 4'000, t == 5));
    EXPECT_EQ(store.size(), 10u);
    const auto slice = store.range(8'000, 20'000);
    ASSERT_EQ(slice.size(), 4u);
    EXPECT_EQ(slice.front()->timestampUs, 8'000u);
    EXPECT_EQ(slice.back()->timestampUs, 20'000u);
}

TEST(SignalStore, RingOverwritesOldest)
{
    SignalStore store(4);
    for (std::uint64_t t = 0; t < 10; ++t)
        store.append(makeWindow(t * 1'000, false));
    EXPECT_EQ(store.size(), 4u);
    EXPECT_EQ(store.overwritten(), 6u);
    EXPECT_TRUE(store.range(0, 5'000).empty());
    EXPECT_EQ(store.range(6'000, 9'000).size(), 4u);
}

TEST(SignalStore, RangeIsTimestampSortedAcrossElectrodes)
{
    // Electrode-major ingest: all of electrode 0's windows land
    // before electrode 1's, so insertion order diverges from
    // timestamp order — range() must still come back sorted, ties
    // in ingest order. A small capacity forces wraparound too.
    SignalStore store(12);
    for (ElectrodeId e = 0; e < 2; ++e) {
        for (std::uint64_t w = 0; w < 8; ++w) {
            StoredWindow window = makeWindow(w * 1'000 + e * 250,
                                             false);
            window.electrode = e;
            store.append(std::move(window));
        }
    }
    EXPECT_GT(store.overwritten(), 0u);
    const auto all = store.range(0, 100'000);
    ASSERT_EQ(all.size(), 12u);
    for (std::size_t i = 1; i < all.size(); ++i)
        EXPECT_LE(all[i - 1]->timestampUs, all[i]->timestampUs);
}

TEST(SignalStore, LayoutDrivesReadCost)
{
    SignalStore reorganised(100, true);
    SignalStore raw(100, false);
    // 10x faster reads with the electrode-major layout (Section 3.3).
    EXPECT_NEAR(raw.readCost(160) / reorganised.readCost(160),
                10.0, 1e-9);
    // Writes cost 5x more with reorganisation.
    for (int i = 0; i < 32; ++i) {
        reorganised.append(makeWindow(i, false));
        raw.append(makeWindow(i, false));
    }
    EXPECT_NEAR(reorganised.totalWriteCost() /
                    raw.totalWriteCost(),
                5.0, 1e-9);
}

TEST(SignalStore, TracksBytes)
{
    SignalStore store(100);
    store.append(makeWindow(0, false));
    EXPECT_GE(store.bytesStored(), 240u);
}

TEST(SignalStore, UnhashedWindowsAreNotIndexed)
{
    SignalStore store(100);
    for (std::uint64_t t = 0; t < 5; ++t)
        store.append(makeWindow(t, false)); // default (empty) hash
    EXPECT_EQ(store.indexedWindows(), 0u);
    EXPECT_TRUE(
        store.candidates(lsh::Signature(0, 2, 8), 0, 100).empty());
}

TEST(SignalStore, BucketIndexFollowsRingOverwrites)
{
    SignalStore store(4);
    for (std::uint64_t t = 0; t < 10; ++t) {
        StoredWindow window = makeWindow(t * 1'000, false);
        window.hash =
            lsh::Signature((t % 3) | ((t % 3) << 8), 2, 8);
        store.append(std::move(window));
    }
    EXPECT_EQ(store.indexedWindows(), 4u);
    // Probing each signature returns only retained windows, and the
    // union over probes covers exactly the ring contents.
    std::size_t total = 0;
    for (std::uint64_t v = 0; v < 3; ++v) {
        for (const StoredWindow *window :
             store.candidates(lsh::Signature(v | (v << 8), 2, 8), 0,
                              1'000'000)) {
            EXPECT_GE(window->timestampUs, 6'000u);
            ++total;
        }
    }
    EXPECT_EQ(total, 4u);
}

class QueryEngineFixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        engine = std::make_unique<QueryEngine>(3, 120, 7);
        Rng noise(3);
        // 3 nodes x 50 windows at 4 ms cadence; windows 20-24 are a
        // propagating seizure burst (same 6 Hz shape on every node).
        for (NodeId node = 0; node < 3; ++node) {
            for (std::uint64_t w = 0; w < 50; ++w) {
                const bool seizure = w >= 20 && w < 25;
                std::vector<double> window;
                if (seizure) {
                    window = windowOf(6.0, 120, 0.3, &noise);
                } else {
                    window.assign(120, 0.0);
                    for (auto &v : window)
                        v = noise.gaussian();
                }
                engine->ingest(node, w * 4'000,
                               static_cast<ElectrodeId>(node),
                               window, seizure);
            }
        }
    }

    std::unique_ptr<QueryEngine> engine;
};

TEST_F(QueryEngineFixture, Q1ReturnsExactlyFlaggedWindows)
{
    const auto result = engine->execute(Query::q1(0, 200'000));
    EXPECT_EQ(result.scanned, 150u);
    EXPECT_EQ(result.matches.size(), 15u); // 5 windows x 3 nodes
    for (const StoredWindow *window : result.matches)
        EXPECT_TRUE(window->seizureFlagged);
    EXPECT_GT(result.latency.count(), 0.0);
}

TEST_F(QueryEngineFixture, Q1TimeRangeRestricts)
{
    // Only the first half of the burst.
    const auto result = engine->execute(Query::q1(80'000, 88'000));
    EXPECT_EQ(result.matches.size(), 9u); // windows 20,21,22 x 3
}

TEST_F(QueryEngineFixture, Q2HashFindsSeizureShape)
{
    Rng noise(11);
    const auto probe = windowOf(6.0, 120, 0.3, &noise);
    const auto result =
        engine->execute(Query::q2(0, 200'000, probe));
    // Most seizure windows collide with the probe's hash; background
    // windows rarely do.
    std::size_t seizure_hits = 0, background_hits = 0;
    for (const StoredWindow *window : result.matches) {
        if (window->seizureFlagged)
            ++seizure_hits;
        else
            ++background_hits;
    }
    EXPECT_GE(seizure_hits, 8u);
    EXPECT_LT(background_hits, 30u);
}

TEST_F(QueryEngineFixture, Q2IndexTouchesFewerWindowsSameMatches)
{
    Rng noise(11);
    const auto probe = windowOf(6.0, 120, 0.3, &noise);
    auto indexed = Query::q2(0, 200'000, probe);
    auto scan = indexed;
    scan.useIndex = false;
    const auto via_index = engine->execute(indexed);
    const auto via_scan = engine->execute(scan);
    // Identical match set, but the index only reads candidate
    // buckets — so the modeled NVM cost charges fewer windows.
    ASSERT_EQ(via_index.matches.size(), via_scan.matches.size());
    for (std::size_t i = 0; i < via_index.matches.size(); ++i)
        EXPECT_EQ(via_index.matches[i], via_scan.matches[i]);
    EXPECT_LT(via_index.scanned, via_scan.scanned);
    EXPECT_LE(via_index.latency.count(), via_scan.latency.count());
    for (const QueryStats &stats : via_index.perNode)
        EXPECT_EQ(stats.bucketHits, stats.scanned);
}

TEST_F(QueryEngineFixture, Q2ExactConfirmationTightensMatches)
{
    Rng noise(13);
    const auto probe = windowOf(6.0, 120, 0.3, &noise);
    const auto hash_only =
        engine->execute(Query::q2(0, 200'000, probe));
    const auto exact =
        engine->execute(Query::q2(0, 200'000, probe, 15.0));
    EXPECT_LE(exact.matches.size(), hash_only.matches.size());
    for (const StoredWindow *window : exact.matches)
        EXPECT_TRUE(window->seizureFlagged);
    // Exact scanning costs more time.
    EXPECT_GT(exact.latency.count(), 0.0);
}

TEST_F(QueryEngineFixture, EuclideanConfirmMatchesBruteForce)
{
    // The batched-Euclidean confirm path must produce exactly the
    // match set of filtering candidates by per-pair distance.
    Rng noise(17);
    const auto probe = windowOf(6.0, 120, 0.3, &noise);
    const double threshold = 8.0;
    const auto hash_only =
        engine->execute(Query::q2(0, 200'000, probe));
    const auto confirmed = engine->execute(Query::q2(
        0, 200'000, probe, threshold, signal::Measure::Euclidean));

    std::vector<const StoredWindow *> expected;
    for (const StoredWindow *window : hash_only.matches)
        if (signal::euclideanDistance(probe, window->samples) <=
            threshold)
            expected.push_back(window);
    ASSERT_EQ(confirmed.matches.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i)
        EXPECT_EQ(confirmed.matches[i], expected[i]);

    // Confirmation comparisons are counted like DTW's (the DTW PE
    // with band = 1 is the Euclidean unit).
    std::size_t compared = 0;
    for (const QueryStats &stats : confirmed.perNode)
        compared += stats.dtwComparisons;
    EXPECT_GE(compared, hash_only.matches.size());
}

TEST_F(QueryEngineFixture, HashPrefilteredDtwComposesFilters)
{
    // The descriptor expresses what used to need a new method: DTW
    // confirmation over bucket candidates only, optionally composed
    // with the seizure flag.
    Rng noise(13);
    const auto probe = windowOf(6.0, 120, 0.3, &noise);
    auto query = Query::q2(0, 200'000, probe);
    query.dtwThreshold = 15.0;
    const auto confirmed = engine->execute(query);
    std::size_t dtw_total = 0, bucket_total = 0;
    for (const QueryStats &stats : confirmed.perNode) {
        dtw_total += stats.dtwComparisons;
        bucket_total += stats.bucketHits;
    }
    EXPECT_GT(dtw_total, 0u);
    EXPECT_LE(dtw_total, bucket_total)
        << "DTW runs only on hash-confirmed candidates";
    for (const StoredWindow *window : confirmed.matches)
        EXPECT_TRUE(window->seizureFlagged);

    query.seizureOnly = true;
    const auto composed = engine->execute(query);
    EXPECT_LE(composed.matches.size(), confirmed.matches.size());
    for (const StoredWindow *window : composed.matches)
        EXPECT_TRUE(window->seizureFlagged);
}

TEST_F(QueryEngineFixture, Q3ReturnsEverything)
{
    const auto result = engine->execute(Query::q3(0, 200'000));
    EXPECT_EQ(result.matches.size(), 150u);
    EXPECT_EQ(result.transferBytes, 150u * 240u);
    // Q3 ships everything: slowest of the three.
    const auto q1 = engine->execute(Query::q1(0, 200'000));
    EXPECT_GT(result.latency.count(), q1.latency.count());
}

TEST_F(QueryEngineFixture, MatchedFractionComputed)
{
    const auto result = engine->execute(Query::q1(0, 200'000));
    EXPECT_NEAR(result.matchedFraction(), 15.0 / 150.0, 1e-12);
}

TEST_F(QueryEngineFixture, PerNodeStatsAddUp)
{
    const auto result = engine->execute(Query::q1(0, 200'000));
    ASSERT_EQ(result.perNode.size(), 3u);
    std::size_t scanned = 0, matched = 0;
    for (const QueryStats &stats : result.perNode) {
        scanned += stats.scanned;
        matched += stats.matched;
        EXPECT_GE(stats.modeled.count(), 0.0);
        EXPECT_GE(stats.wall.count(), 0.0);
    }
    EXPECT_EQ(scanned, result.scanned);
    EXPECT_EQ(matched, result.matches.size());
    EXPECT_EQ(result.perNode[0].node, 0u);
    EXPECT_EQ(result.perNode[2].node, 2u);
}

TEST_F(QueryEngineFixture, MergeIsTimestampOrdered)
{
    const auto result = engine->execute(Query::q3(0, 200'000));
    for (std::size_t i = 1; i < result.matches.size(); ++i)
        EXPECT_LE(result.matches[i - 1]->timestampUs,
                  result.matches[i]->timestampUs);
}

} // namespace
} // namespace scalo::app
