/**
 * @file
 * Unit tests for the storage substrate and the executable query
 * engine: ring-buffer semantics, layout-dependent read costs, and
 * Q1/Q2/Q3 executed over data actually stored on the nodes.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "scalo/app/query_engine.hpp"
#include "scalo/app/store.hpp"
#include "scalo/util/rng.hpp"

namespace scalo::app {
namespace {

std::vector<double>
windowOf(double freq, std::size_t n, double phase, Rng *noise)
{
    std::vector<double> out(n);
    for (std::size_t i = 0; i < n; ++i) {
        out[i] = std::sin(2.0 * M_PI * freq *
                              static_cast<double>(i) /
                              static_cast<double>(n) +
                          phase);
        if (noise)
            out[i] += noise->gaussian(0.0, 0.05);
    }
    return out;
}

StoredWindow
makeWindow(std::uint64_t t, bool seizure)
{
    StoredWindow w;
    w.timestampUs = t;
    w.samples.assign(120, 0.5);
    w.seizureFlagged = seizure;
    return w;
}

TEST(SignalStore, AppendAndRange)
{
    SignalStore store(100);
    for (std::uint64_t t = 0; t < 10; ++t)
        store.append(makeWindow(t * 4'000, t == 5));
    EXPECT_EQ(store.size(), 10u);
    const auto slice = store.range(8'000, 20'000);
    ASSERT_EQ(slice.size(), 4u);
    EXPECT_EQ(slice.front()->timestampUs, 8'000u);
    EXPECT_EQ(slice.back()->timestampUs, 20'000u);
}

TEST(SignalStore, RingOverwritesOldest)
{
    SignalStore store(4);
    for (std::uint64_t t = 0; t < 10; ++t)
        store.append(makeWindow(t * 1'000, false));
    EXPECT_EQ(store.size(), 4u);
    EXPECT_EQ(store.overwritten(), 6u);
    EXPECT_TRUE(store.range(0, 5'000).empty());
    EXPECT_EQ(store.range(6'000, 9'000).size(), 4u);
}

TEST(SignalStore, LayoutDrivesReadCost)
{
    SignalStore reorganised(100, true);
    SignalStore raw(100, false);
    // 10x faster reads with the electrode-major layout (Section 3.3).
    EXPECT_NEAR(raw.readCostMs(160) / reorganised.readCostMs(160),
                10.0, 1e-9);
    // Writes cost 5x more with reorganisation.
    for (int i = 0; i < 32; ++i) {
        reorganised.append(makeWindow(i, false));
        raw.append(makeWindow(i, false));
    }
    EXPECT_NEAR(reorganised.totalWriteCostMs() /
                    raw.totalWriteCostMs(),
                5.0, 1e-9);
}

TEST(SignalStore, TracksBytes)
{
    SignalStore store(100);
    store.append(makeWindow(0, false));
    EXPECT_GE(store.bytesStored(), 240u);
}

class QueryEngineFixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        engine = std::make_unique<QueryEngine>(3, 120, 7);
        Rng noise(3);
        // 3 nodes x 50 windows at 4 ms cadence; windows 20-24 are a
        // propagating seizure burst (same 6 Hz shape on every node).
        for (NodeId node = 0; node < 3; ++node) {
            for (std::uint64_t w = 0; w < 50; ++w) {
                const bool seizure = w >= 20 && w < 25;
                std::vector<double> window;
                if (seizure) {
                    window = windowOf(6.0, 120, 0.3, &noise);
                } else {
                    window.assign(120, 0.0);
                    for (auto &v : window)
                        v = noise.gaussian();
                }
                engine->ingest(node, w * 4'000,
                               static_cast<ElectrodeId>(node),
                               window, seizure);
            }
        }
    }

    std::unique_ptr<QueryEngine> engine;
};

TEST_F(QueryEngineFixture, Q1ReturnsExactlyFlaggedWindows)
{
    const auto result = engine->q1SeizureWindows(0, 200'000);
    EXPECT_EQ(result.scanned, 150u);
    EXPECT_EQ(result.matches.size(), 15u); // 5 windows x 3 nodes
    for (const StoredWindow *window : result.matches)
        EXPECT_TRUE(window->seizureFlagged);
    EXPECT_GT(result.latencyMs, 0.0);
}

TEST_F(QueryEngineFixture, Q1TimeRangeRestricts)
{
    // Only the first half of the burst.
    const auto result = engine->q1SeizureWindows(80'000, 88'000);
    EXPECT_EQ(result.matches.size(), 9u); // windows 20,21,22 x 3
}

TEST_F(QueryEngineFixture, Q2HashFindsSeizureShape)
{
    Rng noise(11);
    const auto probe = windowOf(6.0, 120, 0.3, &noise);
    const auto result =
        engine->q2TemplateMatch(0, 200'000, probe);
    // Most seizure windows collide with the probe's hash; background
    // windows rarely do.
    std::size_t seizure_hits = 0, background_hits = 0;
    for (const StoredWindow *window : result.matches) {
        if (window->seizureFlagged)
            ++seizure_hits;
        else
            ++background_hits;
    }
    EXPECT_GE(seizure_hits, 8u);
    EXPECT_LT(background_hits, 30u);
}

TEST_F(QueryEngineFixture, Q2ExactConfirmationTightensMatches)
{
    Rng noise(13);
    const auto probe = windowOf(6.0, 120, 0.3, &noise);
    const auto hash_only =
        engine->q2TemplateMatch(0, 200'000, probe);
    const auto exact =
        engine->q2TemplateMatch(0, 200'000, probe, 15.0);
    EXPECT_LE(exact.matches.size(), hash_only.matches.size());
    for (const StoredWindow *window : exact.matches)
        EXPECT_TRUE(window->seizureFlagged);
    // Exact scanning costs more time.
    EXPECT_GT(exact.latencyMs, 0.0);
}

TEST_F(QueryEngineFixture, Q3ReturnsEverything)
{
    const auto result = engine->q3TimeRange(0, 200'000);
    EXPECT_EQ(result.matches.size(), 150u);
    EXPECT_EQ(result.transferBytes, 150u * 240u);
    // Q3 ships everything: slowest of the three.
    const auto q1 = engine->q1SeizureWindows(0, 200'000);
    EXPECT_GT(result.latencyMs, q1.latencyMs);
}

TEST_F(QueryEngineFixture, MatchedFractionComputed)
{
    const auto result = engine->q1SeizureWindows(0, 200'000);
    EXPECT_NEAR(result.matchedFraction(), 15.0 / 150.0, 1e-12);
}

} // namespace
} // namespace scalo::app
