/**
 * @file
 * Unit tests for scalo::signal: FFT correctness, Butterworth passband
 * behaviour, DTW/Euclidean/XCOR/EMD distance properties, and feature
 * kernels (SBP/NEO/THR/DWT).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "scalo/signal/butterworth.hpp"
#include "scalo/signal/distance.hpp"
#include "scalo/signal/features.hpp"
#include "scalo/signal/fft.hpp"
#include "scalo/signal/window.hpp"
#include "scalo/util/rng.hpp"

namespace scalo::signal {
namespace {

std::vector<double>
sine(double freq_hz, double sample_rate, std::size_t n,
     double amplitude = 1.0, double phase = 0.0)
{
    std::vector<double> out(n);
    for (std::size_t i = 0; i < n; ++i)
        out[i] = amplitude * std::sin(2.0 * std::numbers::pi *
                                          freq_hz *
                                          static_cast<double>(i) /
                                          sample_rate +
                                      phase);
    return out;
}

TEST(Fft, ImpulseHasFlatSpectrum)
{
    std::vector<std::complex<double>> data(8, 0.0);
    data[0] = 1.0;
    FftPlan::forSize(8)->forward(data);
    for (const auto &bin : data)
        EXPECT_NEAR(std::abs(bin), 1.0, 1e-12);
}

TEST(Fft, InverseRecoversInput)
{
    Rng rng(9);
    std::vector<std::complex<double>> data(64);
    for (auto &x : data)
        x = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
    const auto original = data;
    const auto plan = FftPlan::forSize(data.size());
    plan->forward(data);
    plan->inverse(data);
    for (std::size_t i = 0; i < data.size(); ++i) {
        EXPECT_NEAR(data[i].real(), original[i].real(), 1e-10);
        EXPECT_NEAR(data[i].imag(), original[i].imag(), 1e-10);
    }
}

TEST(Fft, SinePeaksAtItsBin)
{
    const double fs = 1024.0;
    const std::size_t n = 1024;
    // Bin-aligned frequency: 64 cycles in n samples.
    const auto x = sine(64.0, fs, n);
    const auto mags = magnitudeSpectrum(x);
    std::size_t peak = 0;
    for (std::size_t i = 1; i < mags.size(); ++i)
        if (mags[i] > mags[peak])
            peak = i;
    EXPECT_EQ(peak, 64u);
}

TEST(Fft, ParsevalHolds)
{
    Rng rng(5);
    std::vector<std::complex<double>> data(128);
    double time_energy = 0.0;
    for (auto &x : data) {
        x = {rng.gaussian(), 0.0};
        time_energy += std::norm(x);
    }
    FftPlan::forSize(data.size())->forward(data);
    double freq_energy = 0.0;
    for (const auto &bin : data)
        freq_energy += std::norm(bin);
    EXPECT_NEAR(freq_energy / 128.0, time_energy, 1e-8);
}

TEST(Fft, BandPowerSeparatesBands)
{
    const double fs = 30'000.0;
    auto x = sine(100.0, fs, 4096, 1.0);
    const auto y = sine(5'000.0, fs, 4096, 0.1);
    for (std::size_t i = 0; i < x.size(); ++i)
        x[i] += y[i];
    const auto powers =
        bandPower(x, fs, {{50.0, 200.0}, {4'000.0, 6'000.0}});
    EXPECT_GT(powers[0], powers[1] * 10.0);
}

TEST(Fft, NextPowerOfTwo)
{
    EXPECT_EQ(nextPowerOfTwo(0), 1u);
    EXPECT_EQ(nextPowerOfTwo(1), 1u);
    EXPECT_EQ(nextPowerOfTwo(120), 128u);
    EXPECT_EQ(nextPowerOfTwo(128), 128u);
}

TEST(Butterworth, PassbandPassesStopbandBlocks)
{
    const double fs = 1'000.0;
    ButterworthBandpass filter(2, 10.0, 50.0, fs);

    auto gain_at = [&](double f) {
        filter.reset();
        const auto out = filter.apply(sine(f, fs, 4'000));
        double peak = 0.0;
        for (std::size_t i = 2'000; i < out.size(); ++i)
            peak = std::max(peak, std::abs(out[i]));
        return peak;
    };

    const double mid = gain_at(22.0);
    const double below = gain_at(1.0);
    const double above = gain_at(300.0);
    EXPECT_GT(mid, 0.7);
    EXPECT_LT(below, 0.2 * mid);
    EXPECT_LT(above, 0.2 * mid);
}

TEST(Butterworth, OddOrderIsStable)
{
    const double fs = 1'000.0;
    ButterworthBandpass filter(3, 10.0, 40.0, fs);
    Rng rng(1);
    double peak = 0.0;
    for (int i = 0; i < 20'000; ++i)
        peak = std::max(peak, std::abs(filter.step(rng.gaussian())));
    EXPECT_LT(peak, 100.0) << "filter must not blow up on noise";
}

TEST(Butterworth, SectionCountMatchesOrder)
{
    ButterworthBandpass f2(2, 5.0, 20.0, 1'000.0);
    // order sections + 1 gain section
    EXPECT_EQ(f2.sectionCount(), 3u);
    ButterworthBandpass f4(4, 5.0, 20.0, 1'000.0);
    EXPECT_EQ(f4.sectionCount(), 5u);
}

TEST(Dtw, IdenticalSignalsHaveZeroDistance)
{
    const auto x = sine(10.0, 1'000.0, 100);
    EXPECT_DOUBLE_EQ(dtwDistance(x, x, 5), 0.0);
}

TEST(Dtw, WarpingBeatsEuclideanOnShift)
{
    // A shifted copy: DTW with a band should absorb the shift almost
    // completely, while the diagonal path (band=1) cannot.
    const auto x = sine(10.0, 1'000.0, 200);
    const auto y = sine(10.0, 1'000.0, 200, 1.0, 0.3);
    const double banded = dtwDistance(x, y, 20);
    const double diagonal = dtwDistance(x, y, 1);
    EXPECT_LT(banded, 0.5 * diagonal);
}

TEST(Dtw, SymmetricInItsArguments)
{
    Rng rng(3);
    std::vector<double> a(64), b(64);
    for (std::size_t i = 0; i < 64; ++i) {
        a[i] = rng.gaussian();
        b[i] = rng.gaussian();
    }
    EXPECT_NEAR(dtwDistance(a, b, 8), dtwDistance(b, a, 8), 1e-9);
}

TEST(Dtw, HandlesUnequalLengths)
{
    const auto x = sine(10.0, 1'000.0, 100);
    const auto y = sine(10.0, 1'000.0, 80);
    const double d = dtwDistance(x, y, 4);
    EXPECT_TRUE(std::isfinite(d));
}

TEST(Euclidean, MatchesHandComputation)
{
    std::vector<double> a{0.0, 3.0};
    std::vector<double> b{4.0, 0.0};
    EXPECT_DOUBLE_EQ(euclideanDistance(a, b), 5.0);
}

TEST(Xcor, PerfectCorrelationIsOne)
{
    const auto x = sine(10.0, 1'000.0, 100);
    EXPECT_NEAR(crossCorrelation(x, x, 10), 1.0, 1e-9);
}

TEST(Xcor, FindsLaggedCorrelation)
{
    const std::size_t n = 200;
    const auto base = sine(10.0, 1'000.0, n + 20);
    std::vector<double> a(base.begin(), base.begin() + n);
    std::vector<double> b(base.begin() + 15, base.begin() + 15 + n);
    // At lag 0 correlation is imperfect; searching lags recovers it.
    EXPECT_GT(crossCorrelation(a, b, 20), 0.999);
}

TEST(Xcor, UncorrelatedNoiseIsSmall)
{
    Rng rng(17);
    std::vector<double> a(500), b(500);
    for (std::size_t i = 0; i < a.size(); ++i) {
        a[i] = rng.gaussian();
        b[i] = rng.gaussian();
    }
    EXPECT_LT(crossCorrelation(a, b, 0), 0.2);
}

TEST(Emd, IdenticalHistogramsZero)
{
    std::vector<double> h{1.0, 2.0, 3.0, 2.0};
    EXPECT_DOUBLE_EQ(emdDistance(h, h), 0.0);
}

TEST(Emd, ShiftedMassCostsDistance)
{
    // Unit mass moved by k bins costs k (CDF L1).
    std::vector<double> a{1.0, 0.0, 0.0, 0.0};
    std::vector<double> b{0.0, 0.0, 0.0, 1.0};
    EXPECT_DOUBLE_EQ(emdDistance(a, b), 3.0);
}

TEST(Emd, ScaleInvariantAfterNormalisation)
{
    std::vector<double> a{1.0, 2.0, 1.0};
    std::vector<double> b{2.0, 4.0, 2.0};
    EXPECT_DOUBLE_EQ(emdDistance(a, b), 0.0);
}

TEST(Emd, TriangleLikeMonotonicity)
{
    std::vector<double> a{1.0, 0.0, 0.0};
    std::vector<double> near{0.0, 1.0, 0.0};
    std::vector<double> far{0.0, 0.0, 1.0};
    EXPECT_LT(emdDistance(a, near), emdDistance(a, far));
}

TEST(Dissimilarity, SmallerMeansMoreSimilarAcrossMeasures)
{
    Rng rng(23);
    const auto x = sine(25.0, 1'000.0, 120);
    auto noisy = x;
    for (auto &v : noisy)
        v += rng.gaussian(0.0, 0.05);
    std::vector<double> random(120);
    for (auto &v : random)
        v = rng.gaussian();

    for (auto m : {Measure::Euclidean, Measure::Dtw, Measure::Xcor,
                   Measure::Emd}) {
        EXPECT_LT(dissimilarity(m, x, noisy), dissimilarity(m, x, random))
            << measureName(m);
    }
}

TEST(Features, SpikeBandPowerIsMeanAbs)
{
    std::vector<double> w{1.0, -1.0, 3.0, -3.0};
    EXPECT_DOUBLE_EQ(spikeBandPower(w), 2.0);
    EXPECT_DOUBLE_EQ(windowMean(w), 0.0);
}

TEST(Features, NeoSpikesOnTransients)
{
    // NEO amplifies instantaneous frequency/amplitude changes.
    std::vector<double> flat(64, 1.0);
    const auto quiet = neo(flat);
    for (double v : quiet)
        EXPECT_NEAR(v, 0.0, 1e-12);

    auto spiky = flat;
    spiky[32] = 10.0;
    const auto loud = neo(spiky);
    EXPECT_GT(loud[32], 50.0);
}

TEST(Features, ThresholdDetectRespectsRefractory)
{
    std::vector<double> x(100, 0.0);
    x[10] = x[12] = x[50] = 5.0;
    const auto hits = thresholdDetect(x, 4.0, 20);
    ASSERT_EQ(hits.size(), 2u);
    EXPECT_EQ(hits[0], 10u);
    EXPECT_EQ(hits[1], 50u);
}

TEST(Features, AdaptiveThresholdScalesWithNoise)
{
    Rng rng(31);
    std::vector<double> quiet(1'000), loud(1'000);
    for (std::size_t i = 0; i < quiet.size(); ++i) {
        quiet[i] = rng.gaussian(0.0, 1.0);
        loud[i] = rng.gaussian(0.0, 10.0);
    }
    const double t_quiet = adaptiveThreshold(quiet, 4.0);
    const double t_loud = adaptiveThreshold(loud, 4.0);
    EXPECT_NEAR(t_loud / t_quiet, 10.0, 2.0);
}

TEST(Features, HaarDwtPreservesEnergy)
{
    Rng rng(13);
    std::vector<double> x(128);
    double energy = 0.0;
    for (auto &v : x) {
        v = rng.gaussian();
        energy += v * v;
    }
    const auto level = haarDwt(x);
    double transformed = 0.0;
    for (double v : level.approx)
        transformed += v * v;
    for (double v : level.detail)
        transformed += v * v;
    EXPECT_NEAR(transformed, energy, 1e-9);
}

TEST(Features, DwtPyramidDepth)
{
    std::vector<double> x(64, 1.0);
    const auto pyramid = haarDwtLevels(x, 3);
    EXPECT_EQ(pyramid.details.size(), 3u);
    EXPECT_EQ(pyramid.details[0].size(), 32u);
    EXPECT_EQ(pyramid.details[2].size(), 8u);
    EXPECT_EQ(pyramid.approx.size(), 8u);
}

TEST(Window, SliceProducesExpectedCount)
{
    std::vector<Sample> trace(1'000);
    const auto windows = slice(trace, 120, 120);
    EXPECT_EQ(windows.size(), 8u);
    const auto overlapping = slice(trace, 120, 60);
    EXPECT_EQ(overlapping.size(), 15u);
}

TEST(Window, ToSamplesSaturates)
{
    const auto samples = toSamples({1e9, -1e9, 12.4});
    EXPECT_EQ(samples[0], 32767);
    EXPECT_EQ(samples[1], -32768);
    EXPECT_EQ(samples[2], 12);
}

TEST(Window, RemoveMeanCentres)
{
    std::vector<double> v{1.0, 2.0, 3.0};
    removeMean(v);
    EXPECT_NEAR(v[0] + v[1] + v[2], 0.0, 1e-12);
}

} // namespace
} // namespace scalo::signal
