/**
 * @file
 * Unit tests for scalo::sched: flow power models against the paper's
 * published operating points, the ILP scheduler's resource handling
 * (power, network, NVM, central caps, priorities), and the
 * architecture comparison of Section 6.1.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "scalo/sched/architectures.hpp"
#include "scalo/sched/scheduler.hpp"
#include "scalo/sched/workloads.hpp"

namespace scalo::sched {
namespace {

using namespace units::literals;

Scheduler
makeScheduler(std::size_t nodes,
              units::Milliwatts power_cap = 15.0_mW)
{
    SystemConfig config;
    config.nodes = nodes;
    config.powerCap = power_cap;
    return Scheduler(config);
}

TEST(Workloads, SeizureDetectionMatchesPaperOperatingPoints)
{
    // Section 6.2: 79 Mbps at 15 mW falling quadratically to 46 Mbps
    // at 6 mW. Allow ~15% modelling slack.
    const FlowSpec flow = seizureDetectionFlow();
    const double at15 =
        electrodesToRate(flow.electrodesAtPower(15.0_mW)).count();
    const double at6 =
        electrodesToRate(flow.electrodesAtPower(6.0_mW)).count();
    EXPECT_NEAR(at15, 79.0, 12.0);
    EXPECT_NEAR(at6, 46.0, 8.0);
    // Quadratic shape: halving power costs less than half throughput.
    EXPECT_GT(at6 / at15, 6.0 / 15.0);
}

TEST(Workloads, SpikeSortingMatchesPaperOperatingPoints)
{
    // Section 6.2: 118 Mbps at 15 mW, linear down to 38.4 at 6 mW.
    const FlowSpec flow = spikeSortingFlow();
    const double at15 =
        electrodesToRate(flow.electrodesAtPower(15.0_mW)).count();
    const double at6 =
        electrodesToRate(flow.electrodesAtPower(6.0_mW)).count();
    EXPECT_NEAR(at15, 118.0, 15.0);
    EXPECT_NEAR(at6, 38.4, 10.0);
}

TEST(Workloads, HashFlowSupportsRoughly190Electrodes)
{
    // Section 6.2: Hash All-All peaks with 190 electrode signals per
    // node at 15 mW.
    const FlowSpec flow = hashSimilarityFlow(net::Pattern::AllToAll);
    EXPECT_NEAR(flow.electrodesAtPower(15.0_mW), 190.0, 25.0);
}

TEST(Workloads, MiSvmBeatsHashByThreePercent)
{
    const units::Milliwatts hash_lin =
        hashSimilarityFlow(net::Pattern::AllToOne).linPerElectrode;
    const units::Milliwatts svm_lin = miSvmFlow().linPerElectrode;
    EXPECT_NEAR(hash_lin / svm_lin, 1.03, 1e-9);
}

TEST(Workloads, ElectrodesAtPowerInvertsPowerModel)
{
    for (const FlowSpec &flow :
         {seizureDetectionFlow(), miKfFlow(), spikeSortingFlow()}) {
        const double e = flow.electrodesAtPower(12.0_mW);
        EXPECT_NEAR(flow.power(e).count(), 12.0, 1e-6) << flow.name;
    }
}

TEST(Scheduler, LocalFlowScalesLinearlyWithNodes)
{
    const FlowSpec flow = seizureDetectionFlow();
    const double one =
        makeScheduler(1).maxAggregateThroughput(flow).count();
    const double eight =
        makeScheduler(8).maxAggregateThroughput(flow).count();
    EXPECT_NEAR(eight / one, 8.0, 1e-6);
}

TEST(Scheduler, HashAllToAllPeaksNearSixNodes)
{
    // Figure 8b: Hash All-All rises to ~547 Mbps around 6 nodes, then
    // declines as TDMA serialisation dominates.
    const FlowSpec flow = hashSimilarityFlow(net::Pattern::AllToAll);
    const double at6 = makeScheduler(6).maxAggregateThroughput(flow).count();
    const double at11 =
        makeScheduler(11).maxAggregateThroughput(flow).count();
    const double at32 =
        makeScheduler(32).maxAggregateThroughput(flow).count();
    EXPECT_NEAR(at6, 547.0, 80.0);
    EXPECT_LT(at11, at6);
    EXPECT_LT(at32, at11);
}

TEST(Scheduler, HashOneToAllScalesLinearly)
{
    const FlowSpec flow = hashSimilarityFlow(net::Pattern::OneToAll);
    const double at8 = makeScheduler(8).maxAggregateThroughput(flow).count();
    const double at32 =
        makeScheduler(32).maxAggregateThroughput(flow).count();
    EXPECT_NEAR(at32 / at8, 4.0, 0.2);
}

TEST(Scheduler, DtwAllToAllIsCommunicationLimited)
{
    // Only ~16 electrode windows fit the radio per 4 ms (Section 6.2),
    // and more nodes make it worse.
    const FlowSpec flow = dtwSimilarityFlow(net::Pattern::AllToAll);
    const double at2 = makeScheduler(2).maxAggregateThroughput(flow).count();
    const double at16 =
        makeScheduler(16).maxAggregateThroughput(flow).count();
    EXPECT_NEAR(rateToElectrodes(units::MegabitsPerSecond{at2}),
                16.0, 3.0);
    EXPECT_LT(at16, at2);
    // Power-insensitive down to 6 mW.
    const double low_power =
        makeScheduler(2, 6.0_mW).maxAggregateThroughput(flow).count();
    EXPECT_NEAR(low_power, at2, 0.5);
}

TEST(Scheduler, MiKfSaturatesAt384Electrodes)
{
    // Section 6.2/6.3: the centralised inversion's NVM bandwidth caps
    // MI KF at 384 electrodes (188 Mbps); more nodes do not help.
    const FlowSpec flow = miKfFlow();
    const double at4 = makeScheduler(4).maxAggregateThroughput(flow).count();
    const double at11 =
        makeScheduler(11).maxAggregateThroughput(flow).count();
    EXPECT_NEAR(at4, 184.0, 10.0);
    EXPECT_NEAR(at11, at4, 1.0);
}

TEST(Scheduler, MiKfPowerKneeAtEightAndAHalfMw)
{
    // Above 8.5 mW per node MI KF is NVM-bound (4 nodes x 96
    // electrodes hits the 384 cap exactly); below, quadratic decline.
    const FlowSpec flow = miKfFlow();
    const double at15 =
        makeScheduler(4, 15.0_mW).maxAggregateThroughput(flow).count();
    const double at9 =
        makeScheduler(4, 9.0_mW).maxAggregateThroughput(flow).count();
    const double at6 =
        makeScheduler(4, 6.0_mW).maxAggregateThroughput(flow).count();
    EXPECT_NEAR(at15, at9, 6.0);
    EXPECT_LT(at6, 0.85 * at15);
}

TEST(Scheduler, PowerScalingDirection)
{
    // Every flow loses throughput when the cap tightens to 6 mW.
    for (const FlowSpec &flow :
         {seizureDetectionFlow(),
          hashSimilarityFlow(net::Pattern::AllToAll), miSvmFlow(),
          miNnFlow(), spikeSortingFlow()}) {
        const double high =
            makeScheduler(4, 15.0_mW).maxAggregateThroughput(flow).count();
        const double low =
            makeScheduler(4, 6.0_mW).maxAggregateThroughput(flow).count();
        EXPECT_LT(low, high) << flow.name;
        EXPECT_GT(low, 0.0) << flow.name;
    }
}

TEST(Scheduler, PrioritiesSteerSharedResources)
{
    // Two identical local flows competing for the same per-node power
    // budget: the higher-priority one gets (all of) it.
    const FlowSpec a = spikeSortingFlow();
    FlowSpec b = a;
    b.name = "spike-b";
    Scheduler scheduler = makeScheduler(16);

    const Schedule favour_a = scheduler.schedule({a, b}, {3.0, 1.0});
    ASSERT_TRUE(favour_a.feasible);
    EXPECT_GT(favour_a.flows[0].totalElectrodes,
              favour_a.flows[1].totalElectrodes);

    const Schedule favour_b = scheduler.schedule({a, b}, {1.0, 3.0});
    ASSERT_TRUE(favour_b.feasible);
    EXPECT_LT(favour_b.flows[0].totalElectrodes,
              favour_b.flows[1].totalElectrodes);
}

TEST(Scheduler, NodePowerStaysWithinCap)
{
    Scheduler scheduler = makeScheduler(6, 12.0_mW);
    const Schedule schedule = scheduler.schedule(
        {seizureDetectionFlow(),
         hashSimilarityFlow(net::Pattern::AllToAll)},
        {1.0, 1.0});
    ASSERT_TRUE(schedule.feasible);
    // The quadratic term is an outer tangent approximation, so allow
    // its documented sub-percent slack.
    for (units::Milliwatts mw : schedule.nodePower)
        EXPECT_LE(mw, 12.0_mW * 1.005);
}

TEST(Scheduler, ElectrodeCapHonoured)
{
    SystemConfig config;
    config.nodes = 4;
    config.maxElectrodesPerNode = 96.0;
    Scheduler scheduler(config);
    const Schedule schedule =
        scheduler.schedule({spikeSortingFlow()}, {1.0});
    ASSERT_TRUE(schedule.feasible);
    for (double e : schedule.flows[0].electrodesPerNode)
        EXPECT_LE(e, 96.0 + 1e-6);
}

TEST(Scheduler, InfeasibleWhenLeakageExceedsCap)
{
    Scheduler scheduler = makeScheduler(2, 0.5_mW);
    const Schedule schedule =
        scheduler.schedule({seizureDetectionFlow()}, {1.0});
    EXPECT_FALSE(schedule.feasible);
    EXPECT_FALSE(schedule.reason.empty());
}

TEST(Scheduler, IntegerModeGivesIntegralElectrodes)
{
    SystemConfig config;
    config.nodes = 2;
    config.integerElectrodes = true;
    config.maxElectrodesPerNode = 96.0;
    Scheduler scheduler(config);
    const Schedule schedule =
        scheduler.schedule({spikeSortingFlow()}, {1.0});
    ASSERT_TRUE(schedule.feasible);
    for (double e : schedule.flows[0].electrodesPerNode)
        EXPECT_NEAR(e, std::round(e), 1e-6);
}

TEST(Architectures, ScaloDominatesFigure8a)
{
    // SCALO has the highest throughput for every task at 11 sites.
    for (Task task : allTasks()) {
        const double scalo = maxAggregateThroughput(Architecture::Scalo, task, 11).count();
        for (Architecture arch :
             {Architecture::ScaloNoHash, Architecture::Central,
              Architecture::CentralNoHash, Architecture::HaloNvm}) {
            EXPECT_GE(scalo + 1e-9,
                      maxAggregateThroughput(arch, task, 11)
                          .count())
                << taskName(task) << " on " << architectureName(arch);
        }
    }
}

TEST(Architectures, CentralRoughlyTenTimesBelowScalo)
{
    // Section 6.1: the single processor costs ~10x at 11 sites.
    for (Task task : {Task::SeizureDetection, Task::MiSvm,
                      Task::SpikeSorting}) {
        const double ratio =
            maxAggregateThroughput(Architecture::Scalo, task, 11).count() /
            maxAggregateThroughput(Architecture::Central, task, 11).count();
        EXPECT_NEAR(ratio, 11.0, 2.0) << taskName(task);
    }
}

TEST(Architectures, NoHashPenaltiesMatchSection61)
{
    // Central No-Hash: 250x below Central for signal similarity,
    // 24.5x for spike sorting.
    const double sim_ratio =
        maxAggregateThroughput(Architecture::Central, Task::SignalSimilarity, 11).count() /
        maxAggregateThroughput(Architecture::CentralNoHash, Task::SignalSimilarity, 11).count();
    EXPECT_NEAR(sim_ratio, 250.0, 60.0);

    const double spike_ratio =
        maxAggregateThroughput(Architecture::Central, Task::SpikeSorting, 11).count() /
        maxAggregateThroughput(Architecture::CentralNoHash, Task::SpikeSorting, 11).count();
    EXPECT_NEAR(spike_ratio, 24.5, 1.0);
}

TEST(Architectures, HaloNvmMatchesCentralWhereItsPesSuffice)
{
    for (Task task : {Task::SeizureDetection, Task::MiSvm}) {
        EXPECT_DOUBLE_EQ(
            maxAggregateThroughput(Architecture::HaloNvm, task, 11).count(),
            maxAggregateThroughput(Architecture::Central, task, 11).count())
            << taskName(task);
    }
}

TEST(Architectures, HaloNvmSpikeSortingBelowCentralNoHash)
{
    // Hash matching on the MC is 40% below exact matching on a PE.
    const double halo =
        maxAggregateThroughput(Architecture::HaloNvm,
                               Task::SpikeSorting, 11)
            .count();
    const double central_nohash =
        maxAggregateThroughput(Architecture::CentralNoHash,
                               Task::SpikeSorting, 11)
            .count();
    EXPECT_NEAR(halo / central_nohash, 0.6, 1e-9);
}

TEST(Architectures, ScaloUpTo385xOverHaloNvm)
{
    // Headline: up to 385x higher processing rates vs HALO+NVM.
    double best = 0.0;
    for (Task task : allTasks()) {
        const double halo = maxAggregateThroughput(Architecture::HaloNvm, task, 11).count();
        if (halo <= 0.0)
            continue;
        best = std::max(
            best, maxAggregateThroughput(Architecture::Scalo, task,
                                         11)
                          .count() /
                      halo);
    }
    EXPECT_GT(best, 100.0);
    EXPECT_LT(best, 1'000.0);
}

} // namespace
} // namespace scalo::sched
