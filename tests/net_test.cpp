/**
 * @file
 * Unit tests for scalo::net: the Table 3 radio catalog and path-loss
 * scaling, packet serialisation + CRC policy, bit-error injection, the
 * TDMA exchange-time model, and the lossy channel.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "scalo/net/channel.hpp"
#include "scalo/net/packet.hpp"
#include "scalo/net/radio.hpp"
#include "scalo/net/tdma.hpp"

namespace scalo::net {
namespace {

using namespace units::literals;

TEST(Radio, Table3Catalog)
{
    const RadioSpec &low_power = radioSpec(RadioDesign::LowPower);
    EXPECT_DOUBLE_EQ(low_power.dataRate.count(), 7.0);
    EXPECT_DOUBLE_EQ(low_power.power.count(), 1.71);
    EXPECT_DOUBLE_EQ(low_power.ber, 1e-5);

    const RadioSpec &high_perf = radioSpec(RadioDesign::HighPerf);
    EXPECT_DOUBLE_EQ(high_perf.dataRate.count(), 14.0);
    EXPECT_DOUBLE_EQ(high_perf.power.count(), 6.85);

    EXPECT_DOUBLE_EQ(radioSpec(RadioDesign::LowBer).power.count(),
                     3.4);
    EXPECT_DOUBLE_EQ(
        radioSpec(RadioDesign::LowDataRate).dataRate.count(), 3.5);
    EXPECT_EQ(&defaultRadio(), &radioSpec(RadioDesign::LowPower));
}

TEST(Radio, ExternalRadioFromHalo)
{
    const RadioSpec &ext = externalRadio();
    EXPECT_DOUBLE_EQ(ext.dataRate.count(), 46.0);
    EXPECT_DOUBLE_EQ(ext.power.count(), 9.2);
}

TEST(Radio, TransferTimeAndEnergy)
{
    const RadioSpec &radio = defaultRadio();
    // 256 B at 7 Mbps = 0.2926 ms.
    const units::Millis wire = radio.transferTime(256.0_B);
    EXPECT_NEAR(wire.count(), 256.0 * 8.0 / 7e6 * 1e3, 1e-12);
    EXPECT_NEAR(radio.transferEnergy(256.0_B).count(),
                1.71 * wire.count() * 1e-3, 1e-12);
}

TEST(Radio, PathLossExponent)
{
    const RadioSpec &radio = defaultRadio();
    // Doubling distance costs 2^3.5 = 11.3x power.
    EXPECT_NEAR(powerAtDistance(radio, 40.0_cm) / radio.power,
                std::pow(2.0, 3.5), 1e-9);
    EXPECT_NEAR(powerAtDistance(radio, 20.0_cm).count(),
                radio.power.count(), 1e-12);
}

TEST(Packet, RoundTripCleanChannel)
{
    Packet packet;
    packet.source = 3;
    packet.destination = kBroadcast;
    packet.type = PacketType::Signal;
    packet.sequence = 777;
    packet.timestampUs = 123'456;
    packet.payload = {1, 2, 3, 4, 5};

    const auto wire = serialize(packet);
    EXPECT_EQ(wire.size(), packet.wireBytes());
    const auto result = deserialize(wire);
    EXPECT_TRUE(result.headerOk);
    EXPECT_TRUE(result.payloadOk);
    EXPECT_TRUE(result.accepted());
    EXPECT_EQ(result.packet.source, 3);
    EXPECT_EQ(result.packet.destination, kBroadcast);
    EXPECT_EQ(result.packet.type, PacketType::Signal);
    EXPECT_EQ(result.packet.sequence, 777);
    EXPECT_EQ(result.packet.timestampUs, 123'456u);
    EXPECT_EQ(result.packet.payload, packet.payload);
}

TEST(Packet, HeaderIs84BitsPlusChecksums)
{
    EXPECT_EQ(kHeaderBytes, 11u); // 84 bits rounded to bytes
    EXPECT_EQ(kPacketOverheadBytes, 19u);
    Packet p;
    p.payload.assign(10, 0);
    EXPECT_EQ(p.wireBytes(), 29u);
}

TEST(Packet, OversizedPayloadPanics)
{
    Packet p;
    p.payload.assign(kMaxPayloadBytes + 1, 0);
    EXPECT_THROW(serialize(p), std::logic_error);
}

TEST(Packet, HeaderCorruptionDropsEverything)
{
    Packet p;
    p.type = PacketType::Signal;
    p.payload = {9, 9, 9};
    auto wire = serialize(p);
    wire[2] ^= 0x10; // flip a header bit
    const auto result = deserialize(wire);
    EXPECT_FALSE(result.headerOk);
    EXPECT_FALSE(result.accepted());
}

TEST(Packet, PayloadPolicyHashVsSignal)
{
    for (auto type : {PacketType::Hash, PacketType::Signal}) {
        Packet p;
        p.type = type;
        p.payload.assign(64, 0xaa);
        auto wire = serialize(p);
        wire[kPacketOverheadBytes + 5] ^= 0x01; // flip a payload bit
        const auto result = deserialize(wire);
        EXPECT_TRUE(result.headerOk);
        EXPECT_FALSE(result.payloadOk);
        // Section 3.4: signal packets flow, hash packets drop.
        EXPECT_EQ(result.accepted(), type == PacketType::Signal);
    }
}

TEST(Packet, FragmentationCoversPayload)
{
    Packet big;
    big.payload.assign(700, 0x42);
    const auto fragments = fragment(big);
    ASSERT_EQ(fragments.size(), 3u);
    EXPECT_EQ(fragments[0].payload.size(), 256u);
    EXPECT_EQ(fragments[2].payload.size(), 700u - 512u);
    EXPECT_EQ(wireBytesFor(700), 3u * 19u + 700u);
}

TEST(Packet, BitErrorInjectionRate)
{
    Rng rng(31);
    std::vector<std::uint8_t> wire(100'000, 0);
    const double ber = 1e-3;
    const auto flipped = injectBitErrors(wire, ber, rng);
    const double expected = 100'000.0 * 8.0 * ber;
    EXPECT_NEAR(static_cast<double>(flipped), expected,
                4.0 * std::sqrt(expected));
}

TEST(Tdma, BroadcastIsNodeCountInvariant)
{
    TdmaSchedule small(defaultRadio(), 2);
    TdmaSchedule large(defaultRadio(), 32);
    EXPECT_DOUBLE_EQ(small.exchangeTime(Pattern::OneToAll, 240)
                         .count(),
                     large.exchangeTime(Pattern::OneToAll, 240)
                         .count());
}

TEST(Tdma, AllToAllScalesWithNodes)
{
    TdmaSchedule four(defaultRadio(), 4);
    TdmaSchedule eight(defaultRadio(), 8);
    EXPECT_NEAR(eight.exchangeTime(Pattern::AllToAll, 240) /
                    four.exchangeTime(Pattern::AllToAll, 240),
                2.0, 1e-9);
}

TEST(Tdma, AllToOneExcludesAggregator)
{
    TdmaSchedule schedule(defaultRadio(), 5);
    EXPECT_NEAR(schedule.exchangeTime(Pattern::AllToOne, 100)
                    .count(),
                4.0 * schedule.slotTime(100).count(), 1e-12);
}

TEST(Tdma, SlotIncludesOverheadAndGuard)
{
    TdmaSchedule schedule(defaultRadio(), 2, 20.0_us);
    const units::Millis payload_only =
        defaultRadio().transferTime(240.0_B);
    EXPECT_GT(schedule.slotTime(240), payload_only);
}

TEST(Tdma, BudgetBytesInvertsSlot)
{
    TdmaSchedule schedule(defaultRadio(), 4);
    const auto bytes = schedule.budgetBytes(10.0_ms, 4);
    EXPECT_GT(bytes, 0u);
    EXPECT_LE(schedule.slotTime(bytes).count(), 10.0 / 4.0 + 1e-9);
    EXPECT_GT(schedule.slotTime(bytes + 300).count(), 10.0 / 4.0);
}

TEST(Tdma, FasterRadioMovesMoreBytes)
{
    TdmaSchedule low(defaultRadio(), 4);
    TdmaSchedule high(radioSpec(RadioDesign::HighPerf), 4);
    EXPECT_GT(high.budgetBytes(10.0_ms, 4),
              low.budgetBytes(10.0_ms, 4));
}

TEST(Channel, CleanAtZeroBer)
{
    WirelessChannel channel(defaultRadio(), 1, 0.0);
    Packet p;
    p.payload.assign(200, 0x11);
    for (int i = 0; i < 100; ++i)
        EXPECT_TRUE(channel.transmit(p).accepted());
    EXPECT_EQ(channel.stats().headerDrops, 0u);
    EXPECT_EQ(channel.stats().payloadErrors, 0u);
}

TEST(Channel, ErrorsAppearAtHighBer)
{
    WirelessChannel channel(defaultRadio(), 2, 1e-3);
    Packet p;
    p.type = PacketType::Hash;
    p.payload.assign(200, 0x11);
    for (int i = 0; i < 500; ++i)
        channel.transmit(p);
    EXPECT_GT(channel.stats().errorFraction(), 0.5)
        << "200 B packets at BER 1e-3 should mostly err";
    EXPECT_LT(channel.stats().accepted, 500u);
}

TEST(Channel, SignalPacketsSurviveBetterThanHash)
{
    // Same BER: signal packets accepted despite payload errors.
    Packet hash_packet;
    hash_packet.type = PacketType::Hash;
    hash_packet.payload.assign(240, 0x3c);
    Packet signal_packet = hash_packet;
    signal_packet.type = PacketType::Signal;

    WirelessChannel hash_channel(defaultRadio(), 3, 5e-4);
    WirelessChannel signal_channel(defaultRadio(), 3, 5e-4);
    for (int i = 0; i < 400; ++i) {
        hash_channel.transmit(hash_packet);
        signal_channel.transmit(signal_packet);
    }
    EXPECT_GT(signal_channel.stats().accepted,
              hash_channel.stats().accepted);
}

} // namespace
} // namespace scalo::net
