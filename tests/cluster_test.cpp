/**
 * @file
 * Unit tests of the hierarchical fabric partition (net::ClusterPlan):
 * balanced construction, O(1) membership, relay election under an
 * alive mask, and the flat degenerate case.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "scalo/net/cluster.hpp"
#include "scalo/util/contracts.hpp"

namespace scalo::net {
namespace {

struct ContractViolation
{
    std::string kind;
};

void
throwingHandler(const char *kind, const char *, const char *, int)
{
    throw ContractViolation{kind};
}

class ContractGuard
{
  public:
    ContractGuard()
        : previous(util::setContractHandler(&throwingHandler))
    {
    }
    ~ContractGuard() { util::setContractHandler(previous); }

  private:
    util::ContractHandler previous;
};

TEST(ClusterPlan, FlatIsOneClusterOverEveryNode)
{
    const ClusterPlan plan = ClusterPlan::flat(11);
    EXPECT_FALSE(plan.empty());
    EXPECT_EQ(plan.clusterCount(), 1u);
    EXPECT_EQ(plan.nodeCount(), 11u);
    EXPECT_EQ(plan.firstOf(0), 0u);
    EXPECT_EQ(plan.sizeOf(0), 11u);
    for (std::size_t n = 0; n < 11; ++n)
        EXPECT_EQ(plan.clusterOf(n), 0u);
    EXPECT_EQ(plan.relay(0), 0u);
    plan.validate();
}

TEST(ClusterPlan, FlatEqualsBalancedWithOneCluster)
{
    EXPECT_EQ(ClusterPlan::flat(7), ClusterPlan::balanced(7, 1));
}

TEST(ClusterPlan, BalancedSplitsContiguouslyLargerFirst)
{
    // 10 nodes over 3 clusters: sizes 4, 3, 3.
    const ClusterPlan plan = ClusterPlan::balanced(10, 3);
    plan.validate();
    EXPECT_EQ(plan.clusterCount(), 3u);
    EXPECT_EQ(plan.nodeCount(), 10u);
    EXPECT_EQ(plan.sizeOf(0), 4u);
    EXPECT_EQ(plan.sizeOf(1), 3u);
    EXPECT_EQ(plan.sizeOf(2), 3u);
    EXPECT_EQ(plan.firstOf(0), 0u);
    EXPECT_EQ(plan.firstOf(1), 4u);
    EXPECT_EQ(plan.firstOf(2), 7u);

    // Membership is the contiguous range, and clusterOf inverts it.
    const std::vector<std::size_t> middle = plan.members(1);
    ASSERT_EQ(middle.size(), 3u);
    EXPECT_EQ(middle.front(), 4u);
    EXPECT_EQ(middle.back(), 6u);
    for (std::size_t c = 0; c < plan.clusterCount(); ++c)
        for (std::size_t n : plan.members(c))
            EXPECT_EQ(plan.clusterOf(n), c);
}

TEST(ClusterPlan, BalancedEvenSplit)
{
    const ClusterPlan plan = ClusterPlan::balanced(64, 8);
    plan.validate();
    EXPECT_EQ(plan.clusterCount(), 8u);
    for (std::size_t c = 0; c < 8; ++c) {
        EXPECT_EQ(plan.sizeOf(c), 8u);
        EXPECT_EQ(plan.firstOf(c), c * 8);
    }
}

TEST(ClusterPlan, RelayIsFirstAliveMember)
{
    const ClusterPlan plan = ClusterPlan::balanced(12, 3);
    // Cluster 1 owns nodes 4..7.
    EXPECT_EQ(plan.relay(1), 4u);

    std::vector<bool> up(12, true);
    up[4] = false;
    EXPECT_EQ(plan.relay(1, [&](std::size_t n) { return up[n]; }),
              5u);
    up[5] = false;
    EXPECT_EQ(plan.relay(1, [&](std::size_t n) { return up[n]; }),
              6u);

    // Every member down: there is no alive relay, and the plan says
    // so explicitly instead of handing back a corpse.
    for (std::size_t n : plan.members(1))
        up[n] = false;
    EXPECT_EQ(plan.relay(1, [&](std::size_t n) { return up[n]; }),
              ClusterPlan::kNoRelay);
    // Other clusters are unaffected by the mask.
    EXPECT_EQ(plan.relay(2, [&](std::size_t n) { return up[n]; }),
              8u);
}

TEST(ClusterPlan, RelayElectionForFullyDeadClusterIsExplicit)
{
    const ClusterPlan plan = ClusterPlan::balanced(9, 3);
    std::vector<bool> up(9, false);
    for (std::size_t c = 0; c < plan.clusterCount(); ++c)
        EXPECT_EQ(plan.relay(c, [&](std::size_t n) { return up[n]; }),
                  ClusterPlan::kNoRelay);
    // kNoRelay can never collide with a real node id.
    EXPECT_GE(ClusterPlan::kNoRelay, plan.nodeCount());
}

TEST(ClusterPlan, RelayChurnsUnderAliveMaskFlips)
{
    const ClusterPlan plan = ClusterPlan::balanced(8, 2);
    // Cluster 0 owns nodes 0..3.
    std::vector<bool> up(8, true);
    const auto alive = [&](std::size_t n) { return up[n]; };

    EXPECT_EQ(plan.relay(0, alive), 0u);
    up[0] = false; // duty migrates forward...
    EXPECT_EQ(plan.relay(0, alive), 1u);
    up[1] = false;
    EXPECT_EQ(plan.relay(0, alive), 2u);
    up[0] = true; // ...and back when an earlier member recovers.
    EXPECT_EQ(plan.relay(0, alive), 0u);
    up[0] = false;
    up[1] = true;
    EXPECT_EQ(plan.relay(0, alive), 1u);
    // Flapping a member of another cluster never affects election.
    up[4] = false;
    EXPECT_EQ(plan.relay(0, alive), 1u);
}

TEST(ClusterPlanContracts, ValidateRejectsMalformedPlans)
{
    // Contracts follow the build type: the violation half of this
    // test only exists where the library compiled with them on.
    ClusterPlan plan = ClusterPlan::balanced(8, 2);
    plan.backboneShare = 0.25;
    plan.validate();

    const ContractGuard guard;
#if SCALO_CONTRACTS
    {
        ClusterPlan bad = ClusterPlan::balanced(8, 2);
        bad.backboneShare = 0.0; // share must be in (0, 1)
        EXPECT_THROW(bad.validate(), ContractViolation);
    }
    {
        ClusterPlan bad = ClusterPlan::balanced(8, 2);
        bad.backboneShare = 1.0;
        EXPECT_THROW(bad.validate(), ContractViolation);
    }
    // More clusters than nodes would make empty clusters.
    EXPECT_THROW(ClusterPlan::balanced(3, 8), ContractViolation);
    // An empty plan carries no partition to validate.
    EXPECT_THROW(ClusterPlan{}.validate(), ContractViolation);
#endif
}

} // namespace
} // namespace scalo::net
