#include "scalo/units/units.hpp"

#include <type_traits>

#include <gtest/gtest.h>

namespace {

using namespace scalo::units;
using namespace scalo::units::literals;

// ---------------------------------------------------------------------
// Compile-time suite: the misuse classes the library must reject, and
// the conversions it must allow, checked with static_assert so a
// regression fails the *build*, not a test at runtime.
// ---------------------------------------------------------------------

// A bare double is not a quantity: f(4.0) where f takes Millis must
// not compile (the deliberate "ms-for-s" raw-number misuse).
static_assert(!std::is_convertible_v<double, Millis>);
static_assert(!std::is_convertible_v<double, Seconds>);
static_assert(!std::is_convertible_v<double, Milliwatts>);
static_assert(!std::is_convertible_v<double, Bytes>);
static_assert(!std::is_convertible_v<int, Millis>);

// Cross-dimension conversions never compile.
static_assert(!std::is_convertible_v<Megahertz, Millis>);
static_assert(!std::is_convertible_v<Milliwatts, Millijoules>);
static_assert(!std::is_convertible_v<Bytes, Millis>);
static_assert(!std::is_convertible_v<MegabitsPerSecond, Megahertz>);
static_assert(!std::is_convertible_v<Celsius, Milliwatts>);
static_assert(!std::is_constructible_v<Seconds, Megahertz>);

// Same-dimension rescale is implicit (the fix for ms-vs-s: passing
// seconds where milliseconds are expected converts, never truncates).
static_assert(std::is_convertible_v<Seconds, Millis>);
static_assert(std::is_convertible_v<Millis, Seconds>);
static_assert(std::is_convertible_v<Bytes, Bits>);
static_assert(std::is_convertible_v<Gigabytes, Mebibytes>);

// Dimensional arithmetic has the right result types.
static_assert(
    std::is_same_v<decltype(1.0_mW * 1.0_ms)::dimension, DimEnergy>);
static_assert(
    std::is_same_v<decltype(1.0_B / 1.0_Mbps)::dimension, DimTime>);
static_assert(
    std::is_same_v<decltype(1.0_mJ / 1.0_ms)::dimension, DimPower>);
static_assert(
    std::is_same_v<decltype(1.0 / 1.0_MHz)::dimension, DimTime>);
static_assert(
    std::is_same_v<decltype(1.0_Hz * 1.0_s), double>);
static_assert(std::is_same_v<decltype(4.0_ms / 2.0_ms), double>);

// Exact compile-time values.
static_assert((4.0_ms).count() == 4.0);
static_assert(Millis(4.0_s).count() == 4000.0);
static_assert(Seconds(250.0_ms).count() == 0.25);
static_assert(Bits(2.0_B).count() == 16.0);
static_assert((1.0_MiB).in<Bytes>() == 1024.0 * 1024.0);
static_assert((1.0_mWh).in<Joules>() == 3.6);
static_assert((15.0_mW) == (0.015_W));
static_assert((2.0_ms) < (1.0_s));
static_assert((1.0_s) + (500.0_ms) == (1.5_s));

TEST(Units, LiteralsAndConversions)
{
    const Millis window = 4.0_ms;
    EXPECT_DOUBLE_EQ(window.count(), 4.0);
    EXPECT_DOUBLE_EQ(window.in<Seconds>(), 0.004);
    EXPECT_DOUBLE_EQ(window.in<Micros>(), 4'000.0);

    const Seconds s = window; // implicit rescale
    EXPECT_DOUBLE_EQ(s.count(), 0.004);

    EXPECT_DOUBLE_EQ(Bytes(46.08_Mbps * 1.0_s).count(), 5'760'000.0);
    EXPECT_DOUBLE_EQ((1.0_GB).in<Megabytes>(), 1'000.0);
    EXPECT_DOUBLE_EQ((1.0_KiB).in<Bytes>(), 1'024.0);
}

TEST(Units, PowerTimesTimeIsEnergy)
{
    // 15 mW for 2 hours = 30 mWh = 108 J.
    const auto energy = 15.0_mW * 2.0_h;
    EXPECT_DOUBLE_EQ(Joules(energy).count(), 108.0);
    EXPECT_DOUBLE_EQ(energy.in<MilliwattHours>(), 30.0);

    // 1.71 mW over 0.25 ms = 427.5 nJ.
    EXPECT_NEAR(Nanojoules(1.71_mW * 0.25_ms).count(), 427.5, 1e-9);
}

TEST(Units, DataOverRateIsTime)
{
    // 256 B over 7 Mbps: 2048 bits / 7e6 bps = 292.57 us.
    const Millis t = 256.0_B / 7.0_Mbps;
    EXPECT_NEAR(t.in<Micros>(), 2'048.0 / 7.0, 1e-9);

    // Inverse: bits / time -> rate.
    const MegabitsPerSecond rate = 5'760'000.0_B / 1.0_s;
    EXPECT_DOUBLE_EQ(rate.count(), 46.08);
}

TEST(Units, FrequencyPeriod)
{
    const Micros period = 1.0 / 20.0_MHz;
    EXPECT_DOUBLE_EQ(period.count(), 0.05);
    EXPECT_DOUBLE_EQ(30.0_kHz * 1.0_s, 30'000.0);
}

TEST(Units, SameDimensionQuotientIsPlainDouble)
{
    EXPECT_DOUBLE_EQ(8.0_ms / 2.0_ms, 4.0);
    // Residual scale is applied: 1 Mbps / 1 bps = 1e6.
    EXPECT_DOUBLE_EQ(1.0_Mbps / 1.0_bps, 1e6);
    EXPECT_DOUBLE_EQ(1.0_s / 250.0_ms, 4.0);
}

TEST(Units, ArithmeticAndComparisons)
{
    Millis t = 1.0_ms;
    t += 500.0_us;
    EXPECT_DOUBLE_EQ(t.count(), 1.5);
    t -= 0.5_ms;
    EXPECT_DOUBLE_EQ(t.count(), 1.0);
    t *= 3.0;
    EXPECT_DOUBLE_EQ(t.count(), 3.0);
    t /= 2.0;
    EXPECT_DOUBLE_EQ(t.count(), 1.5);

    EXPECT_TRUE(999.0_us < 1.0_ms);
    EXPECT_TRUE(1.0_s > 999.0_ms);
    EXPECT_TRUE(1.0_ms <= 1'000.0_us);
    EXPECT_TRUE(1.0_ms >= 1'000.0_us);
    EXPECT_TRUE(1.0_ms != 1.0_s);

    EXPECT_DOUBLE_EQ(scalo::units::abs(-3.0_ms).count(), 3.0);
    EXPECT_DOUBLE_EQ(scalo::units::min(2.0_ms, 1.0_s).count(), 2.0);
    EXPECT_DOUBLE_EQ(scalo::units::max(2.0_ms, 1.0_s).count(),
                     1'000.0);
}

TEST(Units, UnitCast)
{
    EXPECT_DOUBLE_EQ(unit_cast<Micros>(4.0_ms).count(), 4'000.0);
    EXPECT_DOUBLE_EQ(unit_cast<Milliwatts>(500.0_uW).count(), 0.5);
}

#ifdef SCALO_NEGATIVE_COMPILE_TEST
// Each of these is a deliberate unit bug; enabling the macro must
// break the build. (Exercised by ci/check.sh as a negative test.)
void
negativeCompile()
{
    Millis bad_raw = 4.0;             // raw double into a time
    Seconds bad_dim = 4.0_MHz;        // frequency into a time
    Milliwatts bad_energy = 1.0_mJ;   // energy into a power
    double bad_out = 4.0_ms;          // quantity into a raw double
    (void)bad_raw, (void)bad_dim, (void)bad_energy, (void)bad_out;
}
#endif

} // namespace
