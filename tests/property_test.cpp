/**
 * @file
 * Parameterized property tests: invariants swept across sizes, data
 * classes and seeds with TEST_P / INSTANTIATE_TEST_SUITE_P.
 *
 *  - every codec round-trips losslessly on every data class;
 *  - the LP solver matches brute-force enumeration on random ILPs;
 *  - distance measures obey metric-like properties at every length;
 *  - packets survive serialize/deserialize at every payload size and
 *    are never silently accepted when corrupted;
 *  - LSH signatures are reflexive and symmetric for every family
 *    configuration.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "scalo/compress/hcomp.hpp"
#include "scalo/compress/lic.hpp"
#include "scalo/compress/lz.hpp"
#include "scalo/compress/range_coder.hpp"
#include "scalo/ilp/solver.hpp"
#include "scalo/lsh/hasher.hpp"
#include "scalo/net/packet.hpp"
#include "scalo/signal/distance.hpp"
#include "scalo/signal/fft.hpp"
#include "scalo/util/rng.hpp"

namespace scalo {
namespace {

// ---------------------------------------------------------------
// Codec round-trip properties over (data class x size).

enum class DataClass
{
    Zeros,
    Constant,
    SmoothSine,
    NoisySine,
    WhiteNoise,
    Extremes,
};

std::vector<Sample>
makeSamples(DataClass cls, std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<Sample> out(n, 0);
    switch (cls) {
      case DataClass::Zeros:
        break;
      case DataClass::Constant:
        std::fill(out.begin(), out.end(), Sample{1'234});
        break;
      case DataClass::SmoothSine:
        for (std::size_t i = 0; i < n; ++i)
            out[i] = static_cast<Sample>(
                3'000.0 * std::sin(0.01 * static_cast<double>(i)));
        break;
      case DataClass::NoisySine:
        for (std::size_t i = 0; i < n; ++i)
            out[i] = static_cast<Sample>(
                2'000.0 * std::sin(0.02 * static_cast<double>(i)) +
                rng.gaussian(0.0, 300.0));
        break;
      case DataClass::WhiteNoise:
        for (auto &v : out)
            v = static_cast<Sample>(rng.below(65'536) - 32'768);
        break;
      case DataClass::Extremes:
        for (std::size_t i = 0; i < n; ++i)
            out[i] = (i % 2) ? Sample{32'767} : Sample{-32'768};
        break;
    }
    return out;
}

using CodecParam = std::tuple<DataClass, std::size_t>;

class CodecRoundTrip : public ::testing::TestWithParam<CodecParam>
{
};

TEST_P(CodecRoundTrip, LicIsLossless)
{
    const auto [cls, n] = GetParam();
    const auto samples = makeSamples(cls, n, 1);
    EXPECT_EQ(compress::licDecompress(compress::licCompress(samples),
                                      samples.size()),
              samples);
}

TEST_P(CodecRoundTrip, NeuralStreamIsLossless)
{
    const auto [cls, n] = GetParam();
    const auto samples = makeSamples(cls, n, 2);
    const auto packed = compress::neuralStreamCompress(samples);
    EXPECT_EQ(compress::neuralStreamDecompress(packed,
                                               samples.size()),
              samples);
}

TEST_P(CodecRoundTrip, LzIsLossless)
{
    const auto [cls, n] = GetParam();
    const auto samples = makeSamples(cls, n, 3);
    std::vector<std::uint8_t> raw(samples.size() * 2);
    for (std::size_t i = 0; i < samples.size(); ++i) {
        raw[2 * i] = static_cast<std::uint8_t>(samples[i] & 0xff);
        raw[2 * i + 1] =
            static_cast<std::uint8_t>((samples[i] >> 8) & 0xff);
    }
    EXPECT_EQ(compress::lzDecompress(compress::lzCompress(raw),
                                     raw.size()),
              raw);
}

TEST_P(CodecRoundTrip, HcompIsLossless)
{
    const auto [cls, n] = GetParam();
    const auto samples = makeSamples(cls, n, 4);
    std::vector<HashValue> hashes;
    for (Sample s : samples)
        hashes.push_back(static_cast<HashValue>(s & 0xff));
    const auto block = compress::compressHashes(hashes);
    EXPECT_EQ(compress::decompressHashes(block), hashes);
}

INSTANTIATE_TEST_SUITE_P(
    AllClassesAndSizes, CodecRoundTrip,
    ::testing::Combine(
        ::testing::Values(DataClass::Zeros, DataClass::Constant,
                          DataClass::SmoothSine, DataClass::NoisySine,
                          DataClass::WhiteNoise, DataClass::Extremes),
        ::testing::Values<std::size_t>(0, 1, 2, 120, 1'000)));

// ---------------------------------------------------------------
// LP solver vs brute force on random bounded integer programs.

class IlpAgainstBruteForce : public ::testing::TestWithParam<int>
{
};

TEST_P(IlpAgainstBruteForce, MatchesEnumeration)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 7'919 + 3);
    // 3 integer variables in [0, 6], 3 random <= constraints.
    ilp::Model model;
    const int bound = 6;
    std::vector<int> vars;
    for (int v = 0; v < 3; ++v)
        vars.push_back(model.addVariable("x" + std::to_string(v),
                                         0.0, bound, true));
    std::vector<std::array<double, 4>> rows;
    for (int c = 0; c < 3; ++c) {
        std::array<double, 4> row{};
        ilp::Expr expr;
        for (int v = 0; v < 3; ++v) {
            row[static_cast<std::size_t>(v)] =
                rng.uniform(0.0, 3.0);
            expr.push_back({vars[static_cast<std::size_t>(v)],
                            row[static_cast<std::size_t>(v)]});
        }
        row[3] = rng.uniform(4.0, 18.0);
        model.addConstraint(std::move(expr), ilp::Relation::LessEq,
                            row[3]);
        rows.push_back(row);
    }
    std::array<double, 3> objective{};
    ilp::Expr objective_expr;
    for (int v = 0; v < 3; ++v) {
        objective[static_cast<std::size_t>(v)] =
            rng.uniform(0.1, 5.0);
        objective_expr.push_back(
            {vars[static_cast<std::size_t>(v)],
             objective[static_cast<std::size_t>(v)]});
    }
    model.setObjective(std::move(objective_expr));

    // Brute force over the 7^3 lattice.
    double best = -1.0;
    for (int a = 0; a <= bound; ++a) {
        for (int b = 0; b <= bound; ++b) {
            for (int c = 0; c <= bound; ++c) {
                bool feasible = true;
                for (const auto &row : rows) {
                    if (row[0] * a + row[1] * b + row[2] * c >
                        row[3] + 1e-12) {
                        feasible = false;
                        break;
                    }
                }
                if (feasible) {
                    best = std::max(best, objective[0] * a +
                                              objective[1] * b +
                                              objective[2] * c);
                }
            }
        }
    }

    const auto solution = ilp::solveIlp(model);
    ASSERT_TRUE(solution.ok());
    EXPECT_NEAR(solution.objective, best, 1e-6);
    EXPECT_TRUE(model.feasible(solution.values));
}

INSTANTIATE_TEST_SUITE_P(RandomPrograms, IlpAgainstBruteForce,
                         ::testing::Range(0, 20));

// ---------------------------------------------------------------
// Distance-measure properties across window lengths.

class DistanceProperties
    : public ::testing::TestWithParam<std::size_t>
{
  protected:
    std::vector<double>
    randomWindow(Rng &rng) const
    {
        std::vector<double> out(GetParam());
        for (auto &v : out)
            v = rng.gaussian();
        return out;
    }
};

TEST_P(DistanceProperties, IdentityAndSymmetry)
{
    Rng rng(GetParam() * 13 + 1);
    const auto a = randomWindow(rng);
    const auto b = randomWindow(rng);
    for (auto m :
         {signal::Measure::Euclidean, signal::Measure::Dtw,
          signal::Measure::Emd}) {
        EXPECT_NEAR(signal::dissimilarity(m, a, a), 0.0, 1e-9)
            << signal::measureName(m);
        EXPECT_NEAR(signal::dissimilarity(m, a, b),
                    signal::dissimilarity(m, b, a), 1e-9)
            << signal::measureName(m);
        EXPECT_GE(signal::dissimilarity(m, a, b), 0.0);
    }
}

TEST_P(DistanceProperties, DtwLowerBoundedByBandedEuclidean)
{
    // DTW's optimal path can only lower the cost versus the diagonal.
    Rng rng(GetParam() * 17 + 5);
    const auto a = randomWindow(rng);
    const auto b = randomWindow(rng);
    EXPECT_LE(signal::dtwDistance(a, b, GetParam() / 4 + 2),
              signal::dtwDistance(a, b, 1) + 1e-9);
}

TEST_P(DistanceProperties, FftRoundTripAtEveryLength)
{
    Rng rng(GetParam() * 19 + 7);
    const std::size_t n = signal::nextPowerOfTwo(GetParam());
    std::vector<std::complex<double>> data(n);
    for (auto &x : data)
        x = {rng.gaussian(), rng.gaussian()};
    auto copy = data;
    const auto plan = signal::FftPlan::forSize(n);
    plan->forward(copy);
    plan->inverse(copy);
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_NEAR(std::abs(copy[i] - data[i]), 0.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(WindowLengths, DistanceProperties,
                         ::testing::Values<std::size_t>(4, 16, 60,
                                                        120, 240));

// ---------------------------------------------------------------
// Packet integrity across payload sizes and corruption.

class PacketProperties : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(PacketProperties, CleanRoundTrip)
{
    Rng rng(GetParam() + 41);
    net::Packet packet;
    packet.source = 5;
    packet.type = net::PacketType::Feature;
    packet.payload.resize(GetParam());
    for (auto &b : packet.payload)
        b = static_cast<std::uint8_t>(rng.below(256));
    const auto result = net::deserialize(net::serialize(packet));
    ASSERT_TRUE(result.headerOk);
    ASSERT_TRUE(result.payloadOk);
    EXPECT_EQ(result.packet.payload, packet.payload);
}

TEST_P(PacketProperties, EveryPayloadBitFlipIsDetected)
{
    net::Packet packet;
    packet.type = net::PacketType::Hash;
    packet.payload.assign(std::max<std::size_t>(1, GetParam()),
                          0x5a);
    const auto wire = net::serialize(packet);
    // Flip a sample of payload bits; the CRC must catch each.
    for (std::size_t bit = 0;
         bit < packet.payload.size() * 8; bit += 13) {
        auto corrupted = wire;
        const std::size_t index =
            net::kPacketOverheadBytes - 4 + bit / 8;
        corrupted[index] ^= static_cast<std::uint8_t>(1u
                                                      << (bit % 8));
        const auto result = net::deserialize(corrupted);
        EXPECT_FALSE(result.headerOk && result.payloadOk)
            << "undetected flip at payload bit " << bit;
    }
}

INSTANTIATE_TEST_SUITE_P(PayloadSizes, PacketProperties,
                         ::testing::Values<std::size_t>(0, 1, 13, 96,
                                                        240, 256));

// ---------------------------------------------------------------
// Signature/hasher invariants across family configurations.

using HasherParam = std::tuple<signal::Measure, std::size_t>;

class HasherProperties
    : public ::testing::TestWithParam<HasherParam>
{
};

TEST_P(HasherProperties, ReflexiveDeterministicSymmetric)
{
    const auto [measure, n] = GetParam();
    const lsh::WindowHasher hasher(measure, n, 11);
    Rng rng(static_cast<std::uint64_t>(n) * 31 + 7);
    for (int trial = 0; trial < 20; ++trial) {
        std::vector<double> a(n), b(n);
        for (std::size_t i = 0; i < n; ++i) {
            a[i] = rng.gaussian();
            b[i] = rng.gaussian();
        }
        const auto ha = hasher.hash(a);
        // Reflexive: identical input always matches itself.
        EXPECT_TRUE(ha.matches(hasher.hash(a)));
        // Deterministic.
        EXPECT_TRUE(ha == hasher.hash(a));
        // Symmetric match relation.
        const auto hb = hasher.hash(b);
        EXPECT_EQ(ha.matches(hb), hb.matches(ha));
    }
}

INSTANTIATE_TEST_SUITE_P(
    FamiliesAndLengths, HasherProperties,
    ::testing::Combine(
        ::testing::Values(signal::Measure::Euclidean,
                          signal::Measure::Dtw, signal::Measure::Xcor,
                          signal::Measure::Emd),
        ::testing::Values<std::size_t>(60, 120, 240)));

} // namespace
} // namespace scalo
