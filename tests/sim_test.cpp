/**
 * @file
 * Unit tests for scalo::sim: the discrete-event engine and the
 * error-injection experiments of Figures 12 and 15.
 */

#include <gtest/gtest.h>

#include "scalo/sim/error_experiments.hpp"
#include "scalo/sim/event_queue.hpp"

namespace scalo::sim {
namespace {

using namespace units::literals;

TEST(Simulator, ExecutesInTimeOrder)
{
    Simulator simulator;
    std::vector<int> order;
    simulator.after(30.0_us, [&] { order.push_back(3); });
    simulator.after(10.0_us, [&] { order.push_back(1); });
    simulator.after(20.0_us, [&] { order.push_back(2); });
    EXPECT_EQ(simulator.run(), 3u);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_DOUBLE_EQ(simulator.now().count(), 30.0);
}

TEST(Simulator, TiesBreakInSchedulingOrder)
{
    Simulator simulator;
    std::vector<int> order;
    simulator.after(5.0_us, [&] { order.push_back(1); });
    simulator.after(5.0_us, [&] { order.push_back(2); });
    simulator.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Simulator, NestedSchedulingAdvancesTime)
{
    Simulator simulator;
    units::Micros inner_time{0.0};
    simulator.after(10.0_us, [&] {
        simulator.after(15.0_us,
                        [&] { inner_time = simulator.now(); });
    });
    simulator.run();
    EXPECT_DOUBLE_EQ(inner_time.count(), 25.0);
}

TEST(Simulator, RunUntilStopsEarly)
{
    Simulator simulator;
    int fired = 0;
    simulator.after(10.0_us, [&] { ++fired; });
    simulator.after(100.0_us, [&] { ++fired; });
    EXPECT_EQ(simulator.run(50.0_us), 1u);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(simulator.pending(), 1u);
}

// Regression: run(until) used to leave now() at the last *executed*
// event when later events stayed pending, so a subsequent after() was
// scheduled relative to a stale clock. The horizon must always be
// reached.
TEST(Simulator, RunUntilAdvancesToHorizonWithPendingEvents)
{
    Simulator simulator;
    int fired = 0;
    simulator.after(10.0_us, [&] { ++fired; });
    simulator.after(100.0_us, [&] { ++fired; });
    simulator.run(50.0_us);
    EXPECT_DOUBLE_EQ(simulator.now().count(), 50.0);

    // after() must now be relative to the 50 us horizon, not the
    // 10 us last-event time.
    units::Micros when{0.0};
    simulator.after(5.0_us, [&] { when = simulator.now(); });
    simulator.run(60.0_us);
    EXPECT_DOUBLE_EQ(when.count(), 55.0);
    EXPECT_DOUBLE_EQ(simulator.now().count(), 60.0);
    EXPECT_EQ(fired, 1); // the 100 us event still pending...
    simulator.run();
    EXPECT_EQ(fired, 2); // ...and runs on the next drain
}

// An empty run(until) also lands exactly on the horizon.
TEST(Simulator, RunUntilAdvancesEmptyQueue)
{
    Simulator simulator;
    EXPECT_EQ(simulator.run(25.0_us), 0u);
    EXPECT_DOUBLE_EQ(simulator.now().count(), 25.0);
}

TEST(Simulator, SchedulingIntoThePastPanics)
{
    Simulator simulator;
    simulator.after(10.0_us, [&] {
        EXPECT_THROW(simulator.at(5.0_us, [] {}),
                     std::logic_error);
    });
    simulator.run();
}

// Regression: removing an actor mid-run (a crashed node's pipeline)
// must retire its queued continuations without executing them —
// before owner cancellation, a halted node's stale events kept firing
// into freed per-node state.
TEST(Simulator, CancelOwnedRetiresWithoutExecuting)
{
    Simulator simulator;
    int owned_fired = 0, other_fired = 0, unowned_fired = 0;
    simulator.afterOwned(10.0_us, 1, [&] { ++owned_fired; });
    simulator.afterOwned(20.0_us, 1, [&] { ++owned_fired; });
    simulator.afterOwned(15.0_us, 2, [&] { ++other_fired; });
    simulator.after(25.0_us, [&] { ++unowned_fired; });
    EXPECT_EQ(simulator.pending(), 4u);

    EXPECT_EQ(simulator.cancelOwned(1), 2u);
    EXPECT_EQ(simulator.pending(), 2u); // lazy deletion is invisible

    simulator.run();
    EXPECT_EQ(owned_fired, 0); // cancelled events never execute
    EXPECT_EQ(other_fired, 1); // other owners are untouched
    EXPECT_EQ(unowned_fired, 1);
}

// Cancellation from inside an executing event — how SystemSim halts a
// node at its crash instant — and re-scheduling under the same owner
// afterwards (the reboot path) must both work: cancellation retires
// generations, not the owner id.
TEST(Simulator, CancelOwnedMidRunThenReschedule)
{
    Simulator simulator;
    std::vector<int> fired;
    simulator.afterOwned(20.0_us, 7, [&] { fired.push_back(20); });
    simulator.afterOwned(30.0_us, 7, [&] { fired.push_back(30); });
    simulator.after(10.0_us, [&] {
        simulator.cancelOwned(7); // the crash
        // The reboot: new work under the same owner id.
        simulator.afterOwned(15.0_us, 7,
                             [&] { fired.push_back(25); });
    });
    simulator.run();
    EXPECT_EQ(fired, (std::vector<int>{25}));
    EXPECT_EQ(simulator.pending(), 0u);
}

TEST(NetworkErrors, CleanChannelHasNoErrors)
{
    const auto point = measureNetworkErrors(0.0, 200);
    EXPECT_EQ(point.hashPacketErrorFraction, 0.0);
    EXPECT_EQ(point.signalPacketErrorFraction, 0.0);
    EXPECT_EQ(point.dtwDecisionFailureFraction, 0.0);
}

TEST(NetworkErrors, Figure12Shape)
{
    // At BER 1e-4 most 240 B signal packets err while ~2-3% of 96 B
    // hash packets do; the DTW outcome almost never flips.
    const auto high = measureNetworkErrors(1e-4, 2'000, 3);
    EXPECT_GT(high.signalPacketErrorFraction,
              high.hashPacketErrorFraction);
    EXPECT_GT(high.signalPacketErrorFraction, 0.10);
    EXPECT_LT(high.dtwDecisionFailureFraction, 0.05);

    const auto low = measureNetworkErrors(1e-6, 2'000, 3);
    EXPECT_LT(low.hashPacketErrorFraction,
              high.hashPacketErrorFraction);
    // The paper's design point: at BER 1e-5 under 1% of hash packets
    // err and DTW never fails.
    const auto design = measureNetworkErrors(1e-5, 2'000, 3);
    EXPECT_LT(design.hashPacketErrorFraction, 0.03);
    EXPECT_EQ(design.dtwDecisionFailureFraction, 0.0);
}

TEST(HashEncodingDelay, NoErrorsNoDelay)
{
    const auto dist = simulateHashEncodingErrors(0.0);
    EXPECT_DOUBLE_EQ(dist.max.count(), 0.0);
}

TEST(HashEncodingDelay, Figure15aShape)
{
    // Negligible delay until ~50% error rate, then a steep rise
    // (Section 6.7: multiple electrodes capture the seizure, so all
    // hashes must fail at once to slip a window).
    PropagationErrorConfig config;
    config.repetitions = 500;
    const auto at_half = simulateHashEncodingErrors(0.5, config);
    EXPECT_LT(at_half.max, 4.5_ms);

    const auto at_90 = simulateHashEncodingErrors(0.9, config);
    EXPECT_GT(at_90.max, at_half.max);
    EXPECT_GT(at_90.max, 3.9_ms);
    EXPECT_LT(at_90.max, 40.0_ms);
}

TEST(HashEncodingDelay, MeanBelowMax)
{
    PropagationErrorConfig config;
    config.repetitions = 300;
    const auto dist = simulateHashEncodingErrors(0.85, config);
    EXPECT_LE(dist.min, dist.mean);
    EXPECT_LE(dist.mean, dist.max);
}

TEST(NetworkBerDelay, Figure15bShape)
{
    // Worst delay ~0.5 ms at BER 1e-4 (one-two slot retransmissions);
    // essentially zero at 1e-6.
    PropagationErrorConfig config;
    config.repetitions = 1'000;
    const auto high = simulateNetworkBerDelay(1e-4, config);
    EXPECT_GT(high.max, 0.2_ms);
    EXPECT_LE(high.max, 1.0_ms);

    const auto low = simulateNetworkBerDelay(1e-6, config);
    EXPECT_LE(low.max, 0.3_ms);
    EXPECT_LE(low.mean, high.mean);
}

TEST(NetworkBerDelay, NetworkErrorsHurtMoreButRarer)
{
    // Section 6.7: a network loss drops a whole node's hashes (worse
    // per event) but the per-event probability is far lower than the
    // high encoding-error regimes - reflected in the max delays.
    PropagationErrorConfig config;
    config.repetitions = 400;
    const auto network = simulateNetworkBerDelay(1e-4, config);
    const auto encoding = simulateHashEncodingErrors(0.9, config);
    EXPECT_LT(network.max, encoding.max);
}

} // namespace
} // namespace scalo::sim
