/**
 * @file
 * Unit tests for scalo::ml: SVM training/inference and its exact
 * hierarchical decomposition, shallow NN forward/backward and its
 * input-split decomposition, and the Kalman filter (tracking quality
 * plus the centralised-inversion path).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "scalo/ml/kalman.hpp"
#include "scalo/ml/nn.hpp"
#include "scalo/ml/svm.hpp"
#include "scalo/util/rng.hpp"

namespace scalo::ml {
namespace {

TEST(Svm, DecisionMatchesHandComputation)
{
    LinearSvm svm({1.0, -2.0}, 0.5);
    EXPECT_DOUBLE_EQ(svm.decision({3.0, 1.0}), 1.5);
    EXPECT_EQ(svm.predict({3.0, 1.0}), 1);
    EXPECT_EQ(svm.predict({0.0, 1.0}), -1);
}

TEST(Svm, TrainsSeparableProblem)
{
    // Two gaussian blobs, linearly separable.
    Rng rng(5);
    std::vector<std::vector<double>> xs;
    std::vector<int> ys;
    for (int i = 0; i < 200; ++i) {
        const int label = (i % 2) ? 1 : -1;
        const double cx = label * 2.0;
        xs.push_back({rng.gaussian(cx, 0.5), rng.gaussian(-cx, 0.5)});
        ys.push_back(label);
    }
    const LinearSvm svm = LinearSvm::train(xs, ys, 1e-4, 60);
    int correct = 0;
    for (std::size_t i = 0; i < xs.size(); ++i)
        correct += (svm.predict(xs[i]) == ys[i]);
    EXPECT_GT(correct, 190);
}

TEST(DistributedSvm, ExactlyMatchesCentralized)
{
    Rng rng(7);
    std::vector<double> w(12);
    for (auto &v : w)
        v = rng.gaussian();
    LinearSvm svm(w, 0.3);
    DistributedSvm dist(svm, {4, 4, 4});

    std::vector<double> x(12);
    for (auto &v : x)
        v = rng.gaussian();

    std::vector<double> partials;
    for (std::size_t node = 0; node < 3; ++node) {
        std::vector<double> slice(x.begin() + 4 * node,
                                  x.begin() + 4 * (node + 1));
        partials.push_back(dist.partial(node, slice));
    }
    EXPECT_NEAR(dist.aggregate(partials), svm.decision(x), 1e-12);
}

TEST(DistributedSvm, UnevenSplits)
{
    LinearSvm svm({1.0, 2.0, 3.0, 4.0, 5.0}, 0.0);
    DistributedSvm dist(svm, {2, 3});
    EXPECT_EQ(dist.nodeCount(), 2u);
    EXPECT_EQ(dist.sliceSize(0), 2u);
    EXPECT_EQ(dist.sliceSize(1), 3u);
    const double p0 = dist.partial(0, {1.0, 1.0});
    const double p1 = dist.partial(1, {1.0, 1.0, 1.0});
    EXPECT_DOUBLE_EQ(dist.aggregate({p0, p1}), 15.0);
}

TEST(DistributedSvm, BadSplitsPanic)
{
    LinearSvm svm({1.0, 2.0}, 0.0);
    EXPECT_THROW(DistributedSvm(svm, {1, 2}), std::logic_error);
}

TEST(ShallowNet, ForwardShape)
{
    const auto net = ShallowNet::randomInit({96, 64, 2}, 1);
    EXPECT_EQ(net.inputDim(), 96u);
    EXPECT_EQ(net.firstLayerDim(), 64u);
    EXPECT_EQ(net.outputDim(), 2u);
    std::vector<double> x(96, 0.1);
    EXPECT_EQ(net.forward(x).size(), 2u);
}

TEST(ShallowNet, ReluSuppressesHiddenNegatives)
{
    // One layer net: y = relu(Wx + b) with known weights.
    DenseLayer layer;
    layer.weights = linalg::Matrix{{1.0}, {-1.0}};
    layer.bias = linalg::Matrix{{0.0}, {0.0}};
    layer.relu = true;
    ShallowNet net({layer});
    const auto y = net.forward({2.0});
    EXPECT_DOUBLE_EQ(y[0], 2.0);
    EXPECT_DOUBLE_EQ(y[1], 0.0);
}

TEST(ShallowNet, SgdLearnsLinearMap)
{
    Rng rng(11);
    auto net = ShallowNet::randomInit({2, 8, 1}, 3);
    for (int step = 0; step < 4'000; ++step) {
        const double a = rng.uniform(-1, 1);
        const double b = rng.uniform(-1, 1);
        net.sgdStep({a, b}, {0.5 * a - 0.25 * b}, 0.01);
    }
    double worst = 0.0;
    for (int i = 0; i < 50; ++i) {
        const double a = rng.uniform(-1, 1);
        const double b = rng.uniform(-1, 1);
        const double y = net.forward({a, b})[0];
        worst = std::max(worst, std::abs(y - (0.5 * a - 0.25 * b)));
    }
    EXPECT_LT(worst, 0.1);
}

TEST(DistributedNn, ExactlyMatchesCentralized)
{
    Rng rng(13);
    const auto net = ShallowNet::randomInit({12, 16, 3}, 17);
    DistributedNn dist(net, {4, 4, 4});

    std::vector<double> x(12);
    for (auto &v : x)
        v = rng.gaussian();

    std::vector<std::vector<double>> partials;
    for (std::size_t node = 0; node < 3; ++node) {
        std::vector<double> slice(x.begin() + 4 * node,
                                  x.begin() + 4 * (node + 1));
        partials.push_back(dist.partial(node, slice));
    }
    const auto distributed = dist.aggregate(partials);
    const auto centralized = net.forward(x);
    ASSERT_EQ(distributed.size(), centralized.size());
    for (std::size_t i = 0; i < distributed.size(); ++i)
        EXPECT_NEAR(distributed[i], centralized[i], 1e-9);
}

TEST(DistributedNn, PartialBytesMatchPaper)
{
    // 256 hidden units x 4 B = 1024 B per node (Section 6.2, MI NN).
    const auto net = ShallowNet::randomInit({96, 256, 2}, 5);
    DistributedNn dist(net, {96});
    EXPECT_EQ(dist.partialBytes(), 1'024u);
}

TEST(Kalman, ConvergesOnStaticTarget)
{
    // Observing a constant through noise: the estimate approaches it.
    KalmanParams p;
    p.a = linalg::Matrix::identity(1);
    p.w = linalg::Matrix{{1e-6}};
    p.h = linalg::Matrix{{1.0}};
    p.q = linalg::Matrix{{0.5}};
    KalmanFilter filter(p);

    Rng rng(19);
    double estimate = 0.0;
    for (int i = 0; i < 500; ++i)
        estimate = filter.step({3.0 + rng.gaussian(0.0, 0.7)})[0];
    EXPECT_NEAR(estimate, 3.0, 0.1);
}

TEST(Kalman, CovarianceContracts)
{
    KalmanParams p;
    p.a = linalg::Matrix::identity(1);
    p.w = linalg::Matrix{{1e-6}};
    p.h = linalg::Matrix{{1.0}};
    p.q = linalg::Matrix{{0.5}};
    KalmanFilter filter(p);
    const double before = filter.covariance()(0, 0);
    for (int i = 0; i < 20; ++i)
        filter.step({1.0});
    EXPECT_LT(filter.covariance()(0, 0), before);
}

TEST(Kalman, CursorDecoderTracksVelocity)
{
    // Synthesize observations from the decoder's own model and check
    // the filter recovers the underlying velocity.
    const std::size_t features = 32;
    auto filter = KalmanFilter::cursorDecoder(features, 0.05, 21);
    const auto &h = filter.parameters().h;

    Rng rng(23);
    const double vx = 0.8, vy = -0.5;
    std::vector<double> state_estimate;
    for (int t = 0; t < 200; ++t) {
        std::vector<double> obs(features);
        for (std::size_t r = 0; r < features; ++r) {
            obs[r] = h.at(r, 2) * vx + h.at(r, 3) * vy +
                     rng.gaussian(0.0, 0.3);
        }
        state_estimate = filter.step(obs);
    }
    EXPECT_NEAR(state_estimate[2], vx, 0.1);
    EXPECT_NEAR(state_estimate[3], vy, 0.1);
}

TEST(Kalman, RejectsBadShapes)
{
    KalmanParams p;
    p.a = linalg::Matrix::identity(2);
    p.w = linalg::Matrix::identity(3); // wrong
    p.h = linalg::Matrix(1, 2);
    p.q = linalg::Matrix::identity(1);
    EXPECT_THROW(KalmanFilter{std::move(p)}, std::logic_error);
}

TEST(Kalman, ObservationSizeChecked)
{
    auto filter = KalmanFilter::cursorDecoder(8, 0.05, 1);
    EXPECT_THROW(filter.step({1.0, 2.0}), std::logic_error);
}

} // namespace
} // namespace scalo::ml
