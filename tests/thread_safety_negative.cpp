// The thread-safety negative-compile suite (same idiom as the units
// negative test): each SCALO_TS_NEGATIVE_CASE value enables one
// deliberate concurrency bug that must FAIL to build. Exercised by
// ci/check.sh negative, which compiles this file once per case:
//
//   case 1  read of SCALO_GUARDED_BY state without the lock  (Clang)
//   case 2  write of SCALO_GUARDED_BY state without the lock (Clang)
//   case 3  lock acquired but never released                 (Clang)
//   case 4  two-lock acquisition inverting the rank order    (any CXX)
//   case 5  SCALO_REQUIRES function called unlocked          (Clang)
//
// Cases 1/2/3/5 are diagnosed by Clang's -Wthread-safety (-Werror);
// case 4 is a static_assert in OrderedLockPair and fails on every
// compiler. With no case selected the file must compile cleanly
// under -Wthread-safety -Werror — the positive sanity half of the
// gate, proving the annotations themselves are well-formed.
//
// Never linked into a test binary: compile with -fsyntax-only.

#include "scalo/util/ranked_mutex.hpp"

#ifndef SCALO_TS_NEGATIVE_CASE
#  define SCALO_TS_NEGATIVE_CASE 0
#endif

namespace {

using scalo::util::MutexLock;
using scalo::util::OrderedLockPair;
using scalo::util::RankedMutex;

/** A minimal guarded aggregate in the codebase's annotation idiom. */
class GuardedCounter
{
  public:
    void
    increment()
    {
        MutexLock lock(mtx);
        ++value;
    }

    long
    read() const
    {
        MutexLock lock(mtx);
        return value;
    }

    /** The *Locked-helper idiom: caller must hold the mutex. */
    void incrementLocked() SCALO_REQUIRES(mtx) { ++value; }

    void
    incrementTwice()
    {
        MutexLock lock(mtx);
        incrementLocked();
        incrementLocked();
    }

#if SCALO_TS_NEGATIVE_CASE == 1
    /** BUG: reads guarded state without holding mtx. */
    long
    unguardedRead() const
    {
        return value;
    }
#elif SCALO_TS_NEGATIVE_CASE == 2
    /** BUG: writes guarded state without holding mtx. */
    void
    unguardedWrite()
    {
        value = 7;
    }
#elif SCALO_TS_NEGATIVE_CASE == 3
    /** BUG: acquires mtx and returns with it still held. */
    void
    missingRelease()
    {
        mtx.lock();
        ++value;
    }
#elif SCALO_TS_NEGATIVE_CASE == 5
    /** BUG: calls a SCALO_REQUIRES helper without the lock. */
    void
    requiresViolation()
    {
        incrementLocked();
    }
#endif

  private:
    mutable RankedMutex<10> mtx;
    long value SCALO_GUARDED_BY(mtx) = 0;
};

#if SCALO_TS_NEGATIVE_CASE == 4
/**
 * BUG: pairs the locks against their declared ranks. The
 * OrderedLockPair static_assert rejects this on any compiler —
 * a rank inversion cannot even build.
 */
void
rankInversion(RankedMutex<10> &low, RankedMutex<20> &high)
{
    OrderedLockPair pair(high, low);
    (void)pair;
}
#endif

/** Positive sanity: the well-annotated paths must stay warning-free. */
long
exerciseCounter()
{
    GuardedCounter counter;
    counter.increment();
    counter.incrementTwice();
    return counter.read();
}

} // namespace

int
main()
{
    return exerciseCounter() == 3 ? 0 : 1;
}
