/**
 * @file
 * Unit tests for the switch fabric (circuit-switched inter-PE
 * network) and the Section 3.7 compiler backend: program generation
 * from compiled pipelines and the MC runtime's loader.
 */

#include <gtest/gtest.h>

#include "scalo/hw/switches.hpp"
#include "scalo/query/codegen.hpp"

namespace scalo {
namespace {

using hw::Endpoint;
using hw::NodeFabric;
using hw::PeKind;
using hw::SwitchFabric;

TEST(SwitchFabric, ConnectsAndTraces)
{
    NodeFabric fabric;
    SwitchFabric switches(fabric);
    EXPECT_TRUE(switches.connect(Endpoint::adc(),
                                 Endpoint::of(PeKind::FFT))
                    .empty());
    EXPECT_TRUE(switches.connect(Endpoint::of(PeKind::FFT),
                                 Endpoint::of(PeKind::SVM))
                    .empty());
    EXPECT_TRUE(switches.connect(Endpoint::of(PeKind::SVM),
                                 Endpoint::nvm())
                    .empty());

    const auto chain = switches.traceFromAdc();
    ASSERT_EQ(chain.size(), 4u);
    EXPECT_EQ(chain[1], Endpoint::of(PeKind::FFT));
    EXPECT_EQ(chain[3], Endpoint::nvm());
}

TEST(SwitchFabric, RejectsDoubleDrivenInput)
{
    NodeFabric fabric;
    SwitchFabric switches(fabric);
    ASSERT_TRUE(switches.connect(Endpoint::adc(),
                                 Endpoint::of(PeKind::FFT))
                    .empty());
    const auto error = switches.connect(
        Endpoint::of(PeKind::BBF), Endpoint::of(PeKind::FFT));
    EXPECT_NE(error.find("already driven"), std::string::npos);
}

TEST(SwitchFabric, RejectsMissingInstance)
{
    NodeFabric fabric;
    SwitchFabric switches(fabric);
    // Only one FFT per node; instance 1 does not exist.
    const auto error = switches.connect(
        Endpoint::adc(), Endpoint::of(PeKind::FFT, 1));
    EXPECT_FALSE(error.empty());
    // The LIN ALG cluster has 10 BMULs; instance 9 exists.
    EXPECT_TRUE(switches.connect(Endpoint::adc(),
                                 Endpoint::of(PeKind::BMUL, 9))
                    .empty());
}

TEST(SwitchFabric, DirectionalityEnforced)
{
    NodeFabric fabric;
    SwitchFabric switches(fabric);
    EXPECT_FALSE(switches.connect(Endpoint::dac(),
                                  Endpoint::of(PeKind::FFT))
                     .empty());
    EXPECT_FALSE(switches.connect(Endpoint::of(PeKind::FFT),
                                  Endpoint::adc())
                     .empty());
}

TEST(SwitchFabric, FanOutAllowed)
{
    NodeFabric fabric;
    SwitchFabric switches(fabric);
    EXPECT_TRUE(switches.connect(Endpoint::adc(),
                                 Endpoint::of(PeKind::FFT))
                    .empty());
    EXPECT_TRUE(switches.connect(Endpoint::adc(),
                                 Endpoint::of(PeKind::BBF))
                    .empty());
}

TEST(Codegen, GeneratesCompletePipelineProgram)
{
    const auto pipeline = query::compileSource(
        "stream.window(wsize=50ms).sbp().kf().call_runtime()");
    const auto program = query::generateProgram(pipeline);

    // Dividers + configs + connects + start.
    ASSERT_FALSE(program.instructions.empty());
    EXPECT_EQ(program.instructions.back().opcode,
              query::McOpcode::Start);

    // The window parameter must be configured on the GATE.
    bool configured_window = false;
    for (const auto &instruction : program.instructions) {
        if (instruction.opcode == query::McOpcode::Configure &&
            instruction.parameter == "wsize") {
            EXPECT_DOUBLE_EQ(instruction.value, 50.0);
            configured_window = true;
        }
    }
    EXPECT_TRUE(configured_window);

    // call_runtime routes the sink to the external radio.
    bool radio_sink = false;
    for (const auto &instruction : program.instructions) {
        if (instruction.opcode == query::McOpcode::Connect &&
            instruction.b.type == Endpoint::Type::Radio) {
            radio_sink = true;
        }
    }
    EXPECT_TRUE(radio_sink);

    // The listing renders one line per instruction.
    const auto listing = program.render();
    EXPECT_NE(listing.find("conn   ADC -> GATE#0"),
              std::string::npos);
    EXPECT_NE(listing.find("start"), std::string::npos);
}

TEST(Codegen, StorePipelineSinksToNvm)
{
    const auto pipeline = query::compileSource(
        "stream.window(wsize=4ms).seizure_detect().store()");
    const auto program = query::generateProgram(pipeline);
    bool nvm_sink = false;
    for (const auto &instruction : program.instructions) {
        if (instruction.opcode == query::McOpcode::Connect &&
            instruction.b.type == Endpoint::Type::Nvm) {
            nvm_sink = true;
        }
    }
    EXPECT_TRUE(nvm_sink);
}

TEST(Codegen, DividerScalesWithElectrodes)
{
    const auto pipeline =
        query::compileSource("stream.window(wsize=4ms).sbp()");
    // Half the electrodes -> divider 2 (half the clock, Section 3.2).
    const auto program = query::generateProgram(pipeline, 48.0);
    for (const auto &instruction : program.instructions) {
        if (instruction.opcode == query::McOpcode::SetDivider) {
            EXPECT_DOUBLE_EQ(instruction.value, 2.0);
        }
    }
}

TEST(Runtime, LoadsGeneratedPrograms)
{
    NodeFabric fabric;
    query::Runtime runtime(fabric);
    const auto pipeline = query::compileSource(
        "stream.window(wsize=4ms).seizure_detect().store()");
    const auto error =
        runtime.load(query::generateProgram(pipeline));
    EXPECT_TRUE(error.empty()) << error;
    EXPECT_TRUE(runtime.running());

    // The loaded circuits trace ADC -> ... -> NVM.
    const auto chain = runtime.switches().traceFromAdc();
    ASSERT_GE(chain.size(), 3u);
    EXPECT_EQ(chain.back().type, Endpoint::Type::Nvm);
}

TEST(Runtime, RejectsConflictingPrograms)
{
    NodeFabric fabric;
    query::Runtime runtime(fabric);
    query::McProgram bad;
    bad.instructions.push_back({query::McOpcode::Connect,
                                Endpoint::adc(),
                                Endpoint::of(PeKind::FFT),
                                {},
                                0.0});
    bad.instructions.push_back({query::McOpcode::Connect,
                                Endpoint::of(PeKind::BBF),
                                Endpoint::of(PeKind::FFT),
                                {},
                                0.0});
    EXPECT_FALSE(runtime.load(bad).empty());
}

TEST(Runtime, StartRequiresCircuits)
{
    NodeFabric fabric;
    query::Runtime runtime(fabric);
    query::McProgram program;
    program.instructions.push_back(
        {query::McOpcode::Start, {}, {}, {}, 0.0});
    EXPECT_FALSE(runtime.load(program).empty());
    EXPECT_FALSE(runtime.running());
}

TEST(Runtime, TracksDividers)
{
    NodeFabric fabric;
    query::Runtime runtime(fabric);
    const auto pipeline =
        query::compileSource("stream.window(wsize=4ms).sbp()");
    ASSERT_TRUE(
        runtime.load(query::generateProgram(pipeline, 24.0)).empty());
    EXPECT_EQ(runtime.dividerOf(PeKind::SBP), 4);
    EXPECT_EQ(runtime.dividerOf(PeKind::FFT), 1); // untouched
}

} // namespace
} // namespace scalo
