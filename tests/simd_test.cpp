/**
 * Parity and property tests for the SIMD kernel layer (util/simd.hpp
 * and the wide kernels built on it). These run identically in the
 * wide (SCALO_SIMD=AUTO/WIDE) and forced-scalar (SCALO_SIMD=SCALAR)
 * builds — the pack abstraction guarantees bit-identical results
 * across modes, so every exact EXPECT here doubles as a cross-build
 * parity check. Coverage: pack semantics (including NaN ordering and
 * signed zero), kernels vs. the naive references across odd lengths
 * and remainder lanes (N % W != 0), empty inputs, NaN/denormal
 * payloads, batched-equals-per-pair bitwise guarantees, WindowBatch
 * layout, DtwScratch reallocation churn, batched hashing, and the
 * QueryEngine batch path vs. serial execution.
 */

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "scalo/app/query.hpp"
#include "scalo/app/query_engine.hpp"
#include "scalo/app/store.hpp"
#include "scalo/linalg/kernels.hpp"
#include "scalo/lsh/hasher.hpp"
#include "scalo/lsh/ssh.hpp"
#include "scalo/signal/distance.hpp"
#include "scalo/signal/reference.hpp"
#include "scalo/signal/window_batch.hpp"
#include "scalo/util/aligned.hpp"
#include "scalo/util/rng.hpp"
#include "scalo/util/simd.hpp"

namespace {

using scalo::Rng;
using scalo::simd::dpack;
using scalo::simd::kLanes;

constexpr double kQuietNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kDenormal = std::numeric_limits<double>::denorm_min();
constexpr double kInf = std::numeric_limits<double>::infinity();

std::vector<double>
randomSignal(Rng &rng, std::size_t n)
{
    std::vector<double> out(n);
    for (double &v : out)
        v = rng.gaussian(0.0, 1.0);
    return out;
}

/** Lengths exercising empty input, every remainder lane, and more. */
const std::vector<std::size_t> kAwkwardLengths = [] {
    std::vector<std::size_t> lengths{0, 1, 2, 3};
    for (std::size_t delta = 0; delta < kLanes; ++delta) {
        lengths.push_back(kLanes + delta);
        lengths.push_back(3 * kLanes + delta);
    }
    lengths.push_back(97);
    lengths.push_back(128);
    return lengths;
}();

TEST(SimdPack, RoundTripsLoadsAndStores)
{
    alignas(64) double in[kLanes];
    alignas(64) double out[kLanes];
    for (std::size_t i = 0; i < kLanes; ++i)
        in[i] = static_cast<double>(i) - 2.5;
    dpack::load(in).store(out);
    for (std::size_t i = 0; i < kLanes; ++i)
        EXPECT_EQ(out[i], in[i]);

    // Unaligned forms accept any double-aligned pointer.
    std::vector<double> buf(kLanes + 1);
    for (std::size_t i = 0; i < kLanes; ++i)
        buf[i + 1] = in[i];
    dpack::loadu(buf.data() + 1).store(out);
    for (std::size_t i = 0; i < kLanes; ++i)
        EXPECT_EQ(out[i], in[i]);

    const dpack v = dpack::broadcast(3.25);
    for (std::size_t i = 0; i < kLanes; ++i)
        EXPECT_EQ(v[i], 3.25);
}

TEST(SimdPack, ArithmeticMatchesScalarPerLane)
{
    alignas(64) double xs[kLanes];
    alignas(64) double ys[kLanes];
    for (std::size_t i = 0; i < kLanes; ++i) {
        xs[i] = 0.5 * static_cast<double>(i) - 1.0;
        ys[i] = 2.0 - static_cast<double>(i);
    }
    const dpack x = dpack::load(xs);
    const dpack y = dpack::load(ys);
    for (std::size_t i = 0; i < kLanes; ++i) {
        EXPECT_EQ((x + y)[i], xs[i] + ys[i]);
        EXPECT_EQ((x - y)[i], xs[i] - ys[i]);
        EXPECT_EQ((x * y)[i], xs[i] * ys[i]);
        EXPECT_EQ((-x)[i], -xs[i]);
        EXPECT_EQ(min(x, y)[i], std::min(xs[i], ys[i]));
        EXPECT_EQ(max(x, y)[i], std::max(xs[i], ys[i]));
        EXPECT_EQ(abs(x)[i], std::abs(xs[i]));
    }
}

TEST(SimdPack, MinMaxFollowStdSemanticsOnNans)
{
    // std::min(a, b) is (b < a) ? b : a: a NaN second argument loses
    // (comparison false keeps the first argument).
    const dpack a = dpack::broadcast(1.0);
    const dpack n = dpack::broadcast(kQuietNan);
    EXPECT_EQ(min(a, n)[0], 1.0);
    EXPECT_EQ(max(a, n)[0], 1.0);
    EXPECT_TRUE(std::isnan(min(n, a)[0]));
    EXPECT_TRUE(std::isnan(max(n, a)[0]));
}

TEST(SimdPack, AbsClearsSignOfZeroAndHandlesSpecials)
{
    alignas(64) double vals[kLanes];
    vals[0] = -0.0;
    vals[1] = -kDenormal;
    for (std::size_t i = 2; i < kLanes; ++i)
        vals[i] = (i % 2) ? -kInf : -3.5;
    const dpack r = abs(dpack::load(vals));
    EXPECT_FALSE(std::signbit(r[0]));
    EXPECT_EQ(r[1], kDenormal);
    for (std::size_t i = 2; i < kLanes; ++i)
        EXPECT_EQ(r[i], std::abs(vals[i]));
    EXPECT_TRUE(std::isnan(abs(dpack::broadcast(kQuietNan))[0]));
}

TEST(SimdPack, ReducesLeftToRight)
{
    alignas(64) double vals[kLanes];
    for (std::size_t i = 0; i < kLanes; ++i)
        vals[i] = static_cast<double>(i + 1) * 0.1;
    const dpack v = dpack::load(vals);
    double sum = vals[0];
    double lo = vals[0];
    for (std::size_t i = 1; i < kLanes; ++i) {
        sum += vals[i];
        lo = std::min(lo, vals[i]);
    }
    EXPECT_EQ(v.sum(), sum);
    EXPECT_EQ(v.lanesMin(), lo);
    EXPECT_EQ(dpack::zero().sum(), 0.0);
}

TEST(AlignedBuffer, GrowsOnlyAndStaysAligned)
{
    scalo::util::AlignedBuffer<double> buf;
    EXPECT_EQ(buf.capacity(), 0u);
    double *p1 = buf.ensure(10);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p1) % 64, 0u);
    EXPECT_GE(buf.capacity(), 10u);
    // Shrinking requests never reallocate (pointer-stable).
    EXPECT_EQ(buf.ensure(4), p1);
    const std::size_t cap = buf.capacity();
    EXPECT_EQ(buf.ensure(cap), p1);
    // Growth reallocates, still aligned.
    double *p2 = buf.ensure(cap + 1);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p2) % 64, 0u);
    EXPECT_GE(buf.capacity(), cap + 1);
}

TEST(EuclideanParity, MatchesNaiveReferenceAcrossLengths)
{
    Rng rng(9001);
    for (const std::size_t n : kAwkwardLengths) {
        const auto a = randomSignal(rng, n);
        const auto b = randomSignal(rng, n);
        const double got = scalo::signal::euclideanDistance(a, b);
        const double want = scalo::signal::reference::naiveEuclidean(a, b);
        EXPECT_NEAR(got, want, 1e-9 * (1.0 + want)) << "n=" << n;
    }
}

TEST(EuclideanParity, ManyIsBitwiseEqualToPerPair)
{
    Rng rng(9002);
    for (const std::size_t n : kAwkwardLengths) {
        const auto query = randomSignal(rng, n);
        // 11 candidates: exercises the 4-wide blocks and the 3-wide
        // remainder of the batched kernel.
        std::vector<std::vector<double>> storage;
        for (int i = 0; i < 11; ++i)
            storage.push_back(randomSignal(rng, n));
        std::vector<const std::vector<double> *> candidates;
        for (const auto &c : storage)
            candidates.push_back(&c);

        const auto many =
            scalo::signal::euclideanDistanceMany(query, candidates);
        ASSERT_EQ(many.size(), candidates.size());
        for (std::size_t i = 0; i < candidates.size(); ++i) {
            const double per_pair = std::sqrt(
                scalo::signal::euclideanDistanceSquared(
                    query.data(), candidates[i]->data(), n));
            EXPECT_EQ(many[i], per_pair) << "n=" << n << " i=" << i;
        }
    }
}

TEST(EuclideanParity, PropagatesNansAndSurvivesDenormals)
{
    // NaN payload: the distance to a NaN-bearing candidate is NaN,
    // and does not leak into neighbouring outputs of the same block.
    const std::vector<double> query{1.0, 2.0, 3.0, 4.0, 5.0};
    std::vector<std::vector<double>> storage(5, query);
    storage[2][3] = kQuietNan;
    std::vector<const std::vector<double> *> candidates;
    for (const auto &c : storage)
        candidates.push_back(&c);
    const auto dists =
        scalo::signal::euclideanDistanceMany(query, candidates);
    for (std::size_t i = 0; i < dists.size(); ++i) {
        if (i == 2)
            EXPECT_TRUE(std::isnan(dists[i]));
        else
            EXPECT_EQ(dists[i], 0.0) << "i=" << i;
    }

    // Denormal payloads go through the kernels without trapping.
    std::vector<double> tiny(19, kDenormal);
    std::vector<double> zeros(19, 0.0);
    const double d = scalo::signal::euclideanDistance(tiny, zeros);
    EXPECT_GE(d, 0.0);
    EXPECT_TRUE(std::isfinite(d));
}

TEST(WindowBatchLayout, RowsAreAlignedPaddedAndZeroFilled)
{
    using scalo::signal::WindowBatch;
    Rng rng(9003);
    for (const std::size_t n : kAwkwardLengths) {
        WindowBatch batch;
        batch.reserve(3, n);
        EXPECT_EQ(batch.stride(), WindowBatch::strideFor(n));
        EXPECT_GE(batch.stride(), n);
        EXPECT_EQ(batch.stride() % kLanes, 0u) << "n=" << n;
        EXPECT_EQ(batch.stride() * sizeof(double) % 64, 0u);

        std::vector<std::vector<double>> rows;
        for (int i = 0; i < 3; ++i) {
            rows.push_back(randomSignal(rng, n));
            batch.append(rows.back());
        }
        ASSERT_EQ(batch.size(), 3u);
        for (std::size_t r = 0; r < 3; ++r) {
            const double *row = batch.row(r);
            EXPECT_EQ(reinterpret_cast<std::uintptr_t>(row) % 64, 0u);
            for (std::size_t j = 0; j < n; ++j)
                EXPECT_EQ(row[j], rows[r][j]);
            for (std::size_t j = n; j < batch.stride(); ++j) {
                EXPECT_EQ(row[j], 0.0);
                EXPECT_FALSE(std::signbit(row[j]));
            }
        }
    }
}

TEST(WindowBatchLayout, ReuseAcrossSweepsIsAllocationFree)
{
    using scalo::signal::WindowBatch;
    Rng rng(9004);
    WindowBatch batch;
    // Largest extent first: every following reshape fits in place.
    batch.reserve(16, 96);
    const std::size_t peak = batch.capacityBytes();
    for (const std::size_t n : {64u, 96u, 16u, 96u}) {
        batch.reserve(8, n);
        for (int i = 0; i < 8; ++i)
            batch.append(randomSignal(rng, n));
        EXPECT_EQ(batch.capacityBytes(), peak) << "n=" << n;
    }
}

TEST(WindowBatchDistance, BatchOverloadsMatchPointerOverloadBitwise)
{
    using scalo::signal::WindowBatch;
    Rng rng(9005);
    for (const std::size_t n : kAwkwardLengths) {
        const auto query = randomSignal(rng, n);
        std::vector<std::vector<double>> storage;
        for (int i = 0; i < 9; ++i)
            storage.push_back(randomSignal(rng, n));
        std::vector<const std::vector<double> *> candidates;
        for (const auto &c : storage)
            candidates.push_back(&c);

        WindowBatch batch;
        batch.reserve(storage.size(), n);
        for (const auto &c : storage)
            batch.append(c);

        const auto want =
            scalo::signal::euclideanDistanceMany(query, candidates);

        std::vector<double> got;
        scalo::signal::euclideanDistanceMany(query, batch, got);
        ASSERT_EQ(got.size(), want.size());
        for (std::size_t i = 0; i < want.size(); ++i)
            EXPECT_EQ(got[i], want[i]) << "n=" << n << " i=" << i;

        // Row-subset overload, with repeats and shuffled order.
        const std::vector<std::uint32_t> rows{7, 0, 7, 3, 8, 1, 1};
        std::vector<double> subset;
        scalo::signal::euclideanDistanceMany(query, batch, rows,
                                             subset);
        ASSERT_EQ(subset.size(), rows.size());
        for (std::size_t i = 0; i < rows.size(); ++i)
            EXPECT_EQ(subset[i], want[rows[i]])
                << "n=" << n << " i=" << i;
    }
}

TEST(WindowBatchDistance, BatchJobsMatchPerJobCalls)
{
    using scalo::signal::BatchDistanceJob;
    using scalo::signal::WindowBatch;
    Rng rng(9006);
    const std::size_t n = 37;
    const auto probe_a = randomSignal(rng, n);
    const auto probe_b = randomSignal(rng, n);
    WindowBatch batch;
    batch.reserve(6, n);
    std::vector<std::vector<double>> storage;
    for (int i = 0; i < 6; ++i) {
        storage.push_back(randomSignal(rng, n));
        batch.append(storage.back());
    }

    // Three jobs, two sharing probe_a (coalesced into one sweep).
    std::vector<BatchDistanceJob> jobs(3);
    jobs[0].query = &probe_a;
    jobs[0].rows = {0, 2, 4};
    jobs[1].query = &probe_b;
    jobs[1].rows = {1, 1, 5};
    jobs[2].query = &probe_a;
    jobs[2].rows = {3, 0};
    scalo::signal::euclideanDistanceBatch(batch, jobs);

    for (const BatchDistanceJob &job : jobs) {
        ASSERT_EQ(job.distances.size(), job.rows.size());
        std::vector<double> want;
        scalo::signal::euclideanDistanceMany(*job.query, batch,
                                             job.rows, want);
        for (std::size_t i = 0; i < want.size(); ++i)
            EXPECT_EQ(job.distances[i], want[i]);
    }
}

TEST(DtwParity, VectorizedBandMatchesNaiveAcrossShapes)
{
    Rng rng(9007);
    scalo::signal::DtwScratch scratch;
    for (const std::size_t n : {1u, 2u, 7u, 16u, 33u, 96u}) {
        for (const std::size_t m : {1u, 5u, 16u, 41u, 96u}) {
            const auto a = randomSignal(rng, n);
            const auto b = randomSignal(rng, m);
            for (const std::size_t band : {1u, 3u, 10u, 200u}) {
                const double want =
                    scalo::signal::reference::naiveDtw(a, b, band);
                const double got =
                    scalo::signal::dtwDistance(a, b, band, scratch);
                EXPECT_DOUBLE_EQ(got, want)
                    << "n=" << n << " m=" << m << " band=" << band;
            }
        }
    }
}

TEST(DtwParity, ScratchSurvivesShrinkingAndGrowingSweeps)
{
    Rng rng(9008);
    scalo::signal::DtwScratch scratch;
    EXPECT_EQ(scratch.reallocations(), 0u);

    // Largest candidate first: the rest of the sweep must reuse the
    // allocation whatever its size (the no-churn property the query
    // path relies on across mixed-size candidate sweeps).
    const std::vector<std::size_t> sweep{128, 64, 96, 16, 128, 1, 80};
    const auto probe = randomSignal(rng, 128);
    for (const std::size_t m : sweep) {
        const auto cand = randomSignal(rng, m);
        const double got =
            scalo::signal::dtwDistance(probe, cand, 10, scratch);
        const double want =
            scalo::signal::reference::naiveDtw(probe, cand, 10);
        EXPECT_DOUBLE_EQ(got, want) << "m=" << m;
    }
    EXPECT_EQ(scratch.reallocations(), 1u);
    const std::size_t settled = scratch.capacityBytes();

    // Growing past the high-water mark reallocates exactly once more.
    const auto big = randomSignal(rng, 300);
    scalo::signal::dtwDistance(probe, big, 10, scratch);
    EXPECT_EQ(scratch.reallocations(), 2u);
    EXPECT_GT(scratch.capacityBytes(), settled);
}

TEST(DtwParity, EarlyAbandonDecisionStaysExact)
{
    Rng rng(9009);
    scalo::signal::DtwScratch scratch;
    for (int trial = 0; trial < 30; ++trial) {
        const auto a = randomSignal(rng, 48);
        const auto b = randomSignal(rng, 48);
        const double exact = scalo::signal::dtwDistance(a, b, 5);
        for (const double cutoff :
             {0.5 * exact, exact, 1.5 * exact}) {
            const double got = scalo::signal::dtwDistanceEarlyAbandon(
                a, b, 5, cutoff, scratch);
            // Abandoned rows return a lower bound above the cutoff;
            // the threshold decision must match the exact kernel.
            EXPECT_EQ(got <= cutoff, exact <= cutoff)
                << "cutoff=" << cutoff << " exact=" << exact;
            if (exact <= cutoff) {
                EXPECT_DOUBLE_EQ(got, exact);
            }
        }
    }
}

TEST(LinalgParity, DotMatchesNaiveAcrossLengths)
{
    Rng rng(9010);
    for (const std::size_t n : kAwkwardLengths) {
        const auto a = randomSignal(rng, n);
        const auto b = randomSignal(rng, n);
        const double got = scalo::linalg::dot(a.data(), b.data(), n);
        double want = 0.0;
        for (std::size_t i = 0; i < n; ++i)
            want += a[i] * b[i];
        EXPECT_NEAR(got, want, 1e-9 * (1.0 + std::abs(want)))
            << "n=" << n;
    }
}

TEST(LinalgParity, AxpyAndAddSubAreElementwiseExact)
{
    Rng rng(9011);
    for (const std::size_t n : kAwkwardLengths) {
        const auto x = randomSignal(rng, n);
        auto y = randomSignal(rng, n);
        auto want = y;
        const double alpha = rng.gaussian(0.0, 2.0);
        for (std::size_t i = 0; i < n; ++i)
            want[i] += alpha * x[i];
        scalo::linalg::axpy(alpha, x.data(), y.data(), n);
        for (std::size_t i = 0; i < n; ++i)
            EXPECT_EQ(y[i], want[i]) << "n=" << n << " i=" << i;

        if (n == 0)
            continue;
        scalo::linalg::Matrix ma(1, n), mb(1, n);
        for (std::size_t i = 0; i < n; ++i) {
            ma.at(0, i) = x[i];
            mb.at(0, i) = want[i];
        }
        scalo::linalg::Matrix sum, diff;
        scalo::linalg::addInto(ma, mb, sum);
        scalo::linalg::subInto(ma, mb, diff);
        for (std::size_t i = 0; i < n; ++i) {
            EXPECT_EQ(sum.at(0, i), x[i] + want[i]);
            EXPECT_EQ(diff.at(0, i), x[i] - want[i]);
        }
    }
}

TEST(BatchedHashing, HashManyMatchesPerWindowHash)
{
    Rng rng(9012);
    const std::size_t window_samples = 96;
    for (const auto measure :
         {scalo::signal::Measure::Euclidean,
          scalo::signal::Measure::Dtw, scalo::signal::Measure::Xcor,
          scalo::signal::Measure::Emd}) {
        const scalo::lsh::WindowHasher hasher(measure, window_samples,
                                              0xfeedULL);
        std::vector<std::vector<double>> storage;
        for (int i = 0; i < 12; ++i)
            storage.push_back(randomSignal(rng, window_samples));
        std::vector<const std::vector<double> *> windows;
        for (const auto &w : storage)
            windows.push_back(&w);

        scalo::lsh::SshScratch scratch;
        std::vector<scalo::lsh::Signature> batched;
        hasher.hashMany(windows, scratch, batched);
        ASSERT_EQ(batched.size(), windows.size());
        for (std::size_t i = 0; i < windows.size(); ++i) {
            const auto single = hasher.hash(*windows[i]);
            EXPECT_TRUE(batched[i].matches(single))
                << "measure="
                << scalo::signal::measureName(measure) << " i=" << i;
            EXPECT_EQ(batched[i].packed(), single.packed())
                << "measure="
                << scalo::signal::measureName(measure) << " i=" << i;
        }
    }
}

TEST(BatchedHashing, SshScratchTableStaysZeroBetweenCalls)
{
    scalo::lsh::SshParams params;
    params.seed = 77;
    const scalo::lsh::SshHasher hasher(params);
    Rng rng(9013);
    scalo::lsh::SshScratch scratch;
    for (int call = 0; call < 5; ++call) {
        const auto window = randomSignal(rng, 96);
        (void)hasher.signature(window, scratch);
        for (const std::uint32_t v : scratch.table)
            ASSERT_EQ(v, 0u) << "call " << call;
    }
}

TEST(QueryBatchPath, IngestBatchMatchesSerialIngest)
{
    Rng rng(9014);
    const std::size_t window_samples = 96;
    scalo::app::QueryEngine serial(1, window_samples, 42);
    scalo::app::QueryEngine batched(1, window_samples, 42);

    std::vector<scalo::app::QueryEngine::IngestWindow> windows;
    for (std::uint64_t i = 0; i < 24; ++i) {
        scalo::app::QueryEngine::IngestWindow w;
        w.timestampUs = 1'000 * i;
        w.electrode = static_cast<scalo::ElectrodeId>(i % 4);
        w.samples = randomSignal(rng, window_samples);
        w.seizureFlagged = (i % 5) == 0;
        windows.push_back(w);
        serial.ingest(0, w.timestampUs, w.electrode, w.samples,
                      w.seizureFlagged);
    }
    batched.ingestBatch(0, windows);

    const auto &ss = serial.store(0);
    const auto &bs = batched.store(0);
    ASSERT_EQ(ss.size(), bs.size());
    const auto sw = ss.range(0, ~0ULL);
    const auto bw = bs.range(0, ~0ULL);
    ASSERT_EQ(sw.size(), bw.size());
    for (std::size_t i = 0; i < sw.size(); ++i) {
        EXPECT_EQ(sw[i]->timestampUs, bw[i]->timestampUs);
        EXPECT_EQ(sw[i]->samples, bw[i]->samples);
        EXPECT_EQ(sw[i]->hash.packed(), bw[i]->hash.packed());
        EXPECT_EQ(sw[i]->seizureFlagged, bw[i]->seizureFlagged);
    }
}

TEST(QueryBatchPath, ExecuteBatchMatchesSerialExecution)
{
    Rng rng(9015);
    const std::size_t window_samples = 96;
    scalo::app::QueryEngine engine(3, window_samples, 7);
    std::vector<std::vector<double>> probes;
    for (int p = 0; p < 3; ++p)
        probes.push_back(randomSignal(rng, window_samples));

    for (std::uint64_t i = 0; i < 120; ++i) {
        // Noisy copies of the probes so confirmations actually fire.
        auto samples = probes[i % probes.size()];
        for (double &v : samples)
            v += rng.gaussian(0.0, 0.2);
        engine.ingest(static_cast<scalo::NodeId>(i % 3), 1'000 * i,
                      static_cast<scalo::ElectrodeId>(i % 4), samples,
                      false);
    }

    // Euclidean-confirm queries drive the WindowBatch verification
    // path; overlapping time ranges give the per-node batches shared
    // candidates to deduplicate.
    std::vector<scalo::app::Query> queries;
    for (int p = 0; p < 3; ++p) {
        scalo::app::Query query;
        query.t0Us = 0;
        query.t1Us = 200'000;
        query.probe = probes[static_cast<std::size_t>(p)];
        query.confirmMeasure = scalo::signal::Measure::Euclidean;
        query.dtwThreshold = 6.0;
        query.hashPrefilter = false;
        queries.push_back(query);
    }

    const auto batch = engine.executeBatch(queries);
    ASSERT_EQ(batch.size(), queries.size());
    for (std::size_t i = 0; i < queries.size(); ++i) {
        const auto alone = engine.execute(queries[i]);
        EXPECT_EQ(batch[i].matches, alone.matches) << "query " << i;
        EXPECT_EQ(batch[i].scanned, alone.scanned) << "query " << i;
    }
}

} // namespace
