/**
 * @file
 * Unit tests for the timed propagation pipeline (the 10 ms budget of
 * Section 2.2) and SNTP clock synchronisation (Section 3.6).
 */

#include <gtest/gtest.h>

#include "scalo/sim/propagation_timing.hpp"
#include "scalo/sim/sntp.hpp"
#include "scalo/util/rng.hpp"

namespace scalo::sim {
namespace {

using namespace units::literals;

TEST(PropagationTiming, MeetsTenMillisecondBudget)
{
    PropagationTimingConfig config;
    config.episodes = 500;
    const auto result = simulatePropagationTiming(config);
    EXPECT_LE(result.maxTotal, 10.0_ms)
        << "every episode must finish within the clinical budget";
    EXPECT_DOUBLE_EQ(result.withinDeadlineFraction, 1.0);
    EXPECT_GT(result.meanTotal, 1.0_ms) << "physically plausible";
}

TEST(PropagationTiming, StageDecompositionSums)
{
    PropagationTimingConfig config;
    config.episodes = 300;
    const auto result = simulatePropagationTiming(config);
    const units::Millis stage_sum =
        result.slotWait + result.hashBroadcast +
        result.collisionCheck + result.response +
        result.signalBroadcast + result.exactCompare +
        result.stimulate;
    EXPECT_NEAR(stage_sum.count(), result.meanTotal.count(),
                0.05 * result.meanTotal.count());
}

TEST(PropagationTiming, HighBerAddsRetransmissions)
{
    PropagationTimingConfig clean;
    clean.berOverride = 0.0;
    clean.episodes = 300;
    PropagationTimingConfig noisy;
    noisy.berOverride = 1e-4;
    noisy.episodes = 300;
    const auto clean_result = simulatePropagationTiming(clean);
    const auto noisy_result = simulatePropagationTiming(noisy);
    EXPECT_GE(noisy_result.meanTotal, clean_result.meanTotal);
    // Even then the budget holds at the design point.
    EXPECT_LE(noisy_result.maxTotal, 10.0_ms);
}

TEST(PropagationTiming, SlowRadioStretchesThePath)
{
    PropagationTimingConfig slow;
    slow.radio = &net::radioSpec(net::RadioDesign::LowDataRate);
    slow.episodes = 300;
    PropagationTimingConfig fast;
    fast.radio = &net::radioSpec(net::RadioDesign::HighPerf);
    fast.episodes = 300;
    EXPECT_GT(simulatePropagationTiming(slow).meanTotal,
              simulatePropagationTiming(fast).meanTotal);
}

TEST(Sntp, ClockModelBasics)
{
    // 100 us ahead, 50 ppm fast.
    NodeClock clock(100.0_us, 50.0);
    EXPECT_NEAR(clock.read(0.0_us).count(), 100.0, 1e-9);
    EXPECT_NEAR(clock.read(units::Micros{1e6}).count(),
                1e6 + 50.0 + 100.0, 1e-6);
    clock.adjust(-100.0_us);
    EXPECT_NEAR(clock.read(0.0_us).count(), 0.0, 1e-9);
}

TEST(Sntp, ConvergesScatteredClocks)
{
    Rng rng(5);
    std::vector<NodeClock> clocks;
    clocks.emplace_back(0.0_us, 0.0); // server
    for (int i = 0; i < 10; ++i)
        clocks.emplace_back(
            units::Micros{rng.uniform(-50'000.0, 50'000.0)},
            rng.uniform(-2.0, 2.0));
    const auto result = synchronizeClocks(clocks);
    EXPECT_TRUE(result.converged);
    EXPECT_LE(result.maxResidual, 5.0_us);
    EXPECT_GE(result.rounds, 1u);
    EXPECT_GT(result.networkBusy, 0.0_ms);
}

TEST(Sntp, JitterBoundsThePrecision)
{
    std::vector<NodeClock> clocks{NodeClock(),
                                  NodeClock(10'000.0_us, 0.0)};
    SntpConfig config;
    config.jitter = 40.0_us;
    // Unreachable under this jitter.
    config.targetPrecision = 0.01_us;
    config.maxRounds = 3;
    const auto result = synchronizeClocks(clocks, config);
    EXPECT_FALSE(result.converged);
    // Still vastly better than the initial 10 ms offset.
    EXPECT_LT(result.maxResidual, 100.0_us);
}

TEST(Sntp, ZeroJitterIsNearExact)
{
    std::vector<NodeClock> clocks{NodeClock(),
                                  NodeClock(-123'456.0_us, 0.0)};
    SntpConfig config;
    config.jitter = 0.0_us;
    const auto result = synchronizeClocks(clocks, config);
    EXPECT_TRUE(result.converged);
    EXPECT_LT(result.maxResidual, 0.5_us);
}

} // namespace
} // namespace scalo::sim
