/**
 * @file
 * Unit tests for the timed propagation pipeline (the 10 ms budget of
 * Section 2.2) and SNTP clock synchronisation (Section 3.6).
 */

#include <gtest/gtest.h>

#include "scalo/sim/propagation_timing.hpp"
#include "scalo/sim/sntp.hpp"
#include "scalo/util/rng.hpp"

namespace scalo::sim {
namespace {

TEST(PropagationTiming, MeetsTenMillisecondBudget)
{
    PropagationTimingConfig config;
    config.episodes = 500;
    const auto result = simulatePropagationTiming(config);
    EXPECT_LE(result.maxTotalMs, 10.0)
        << "every episode must finish within the clinical budget";
    EXPECT_DOUBLE_EQ(result.withinDeadlineFraction, 1.0);
    EXPECT_GT(result.meanTotalMs, 1.0) << "physically plausible";
}

TEST(PropagationTiming, StageDecompositionSums)
{
    PropagationTimingConfig config;
    config.episodes = 300;
    const auto result = simulatePropagationTiming(config);
    const double stage_sum =
        result.slotWaitMs + result.hashBroadcastMs +
        result.collisionCheckMs + result.responseMs +
        result.signalBroadcastMs + result.exactCompareMs +
        result.stimulateMs;
    EXPECT_NEAR(stage_sum, result.meanTotalMs,
                0.05 * result.meanTotalMs);
}

TEST(PropagationTiming, HighBerAddsRetransmissions)
{
    PropagationTimingConfig clean;
    clean.berOverride = 0.0;
    clean.episodes = 300;
    PropagationTimingConfig noisy;
    noisy.berOverride = 1e-4;
    noisy.episodes = 300;
    const auto clean_result = simulatePropagationTiming(clean);
    const auto noisy_result = simulatePropagationTiming(noisy);
    EXPECT_GE(noisy_result.meanTotalMs, clean_result.meanTotalMs);
    // Even then the budget holds at the design point.
    EXPECT_LE(noisy_result.maxTotalMs, 10.0);
}

TEST(PropagationTiming, SlowRadioStretchesThePath)
{
    PropagationTimingConfig slow;
    slow.radio = &net::radioSpec(net::RadioDesign::LowDataRate);
    slow.episodes = 300;
    PropagationTimingConfig fast;
    fast.radio = &net::radioSpec(net::RadioDesign::HighPerf);
    fast.episodes = 300;
    EXPECT_GT(simulatePropagationTiming(slow).meanTotalMs,
              simulatePropagationTiming(fast).meanTotalMs);
}

TEST(Sntp, ClockModelBasics)
{
    NodeClock clock(100.0, 50.0); // 100 us ahead, 50 ppm fast
    EXPECT_NEAR(clock.read(0.0), 100.0, 1e-9);
    EXPECT_NEAR(clock.read(1e6), 1e6 + 50.0 + 100.0, 1e-6);
    clock.adjust(-100.0);
    EXPECT_NEAR(clock.read(0.0), 0.0, 1e-9);
}

TEST(Sntp, ConvergesScatteredClocks)
{
    Rng rng(5);
    std::vector<NodeClock> clocks;
    clocks.emplace_back(0.0, 0.0); // server
    for (int i = 0; i < 10; ++i)
        clocks.emplace_back(rng.uniform(-50'000.0, 50'000.0),
                            rng.uniform(-2.0, 2.0));
    const auto result = synchronizeClocks(clocks);
    EXPECT_TRUE(result.converged);
    EXPECT_LE(result.maxResidualUs, 5.0);
    EXPECT_GE(result.rounds, 1u);
    EXPECT_GT(result.networkBusyMs, 0.0);
}

TEST(Sntp, JitterBoundsThePrecision)
{
    std::vector<NodeClock> clocks{NodeClock(),
                                  NodeClock(10'000.0, 0.0)};
    SntpConfig config;
    config.jitterUs = 40.0;
    config.targetPrecisionUs = 0.01; // unreachable under this jitter
    config.maxRounds = 3;
    const auto result = synchronizeClocks(clocks, config);
    EXPECT_FALSE(result.converged);
    // Still vastly better than the initial 10 ms offset.
    EXPECT_LT(result.maxResidualUs, 100.0);
}

TEST(Sntp, ZeroJitterIsNearExact)
{
    std::vector<NodeClock> clocks{NodeClock(),
                                  NodeClock(-123'456.0, 0.0)};
    SntpConfig config;
    config.jitterUs = 0.0;
    const auto result = synchronizeClocks(clocks, config);
    EXPECT_TRUE(result.converged);
    EXPECT_LT(result.maxResidualUs, 0.5);
}

} // namespace
} // namespace scalo::sim
