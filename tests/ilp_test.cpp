/**
 * @file
 * Unit tests for scalo::ilp: the model builder, the two-phase simplex
 * on LPs with known optima, degenerate/infeasible/unbounded cases, and
 * branch-and-bound on integer programs.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "scalo/ilp/model.hpp"
#include "scalo/ilp/solver.hpp"

namespace scalo::ilp {
namespace {

TEST(Lp, TextbookTwoVariable)
{
    // max 3x + 5y  s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  -> 36 at (2,6).
    Model m;
    const int x = m.addVariable("x");
    const int y = m.addVariable("y");
    m.addConstraint({{x, 1.0}}, Relation::LessEq, 4.0);
    m.addConstraint({{y, 2.0}}, Relation::LessEq, 12.0);
    m.addConstraint({{x, 3.0}, {y, 2.0}}, Relation::LessEq, 18.0);
    m.setObjective({{x, 3.0}, {y, 5.0}});

    const Solution s = solveLp(m);
    ASSERT_TRUE(s.ok());
    EXPECT_NEAR(s.objective, 36.0, 1e-7);
    EXPECT_NEAR(s.values[x], 2.0, 1e-7);
    EXPECT_NEAR(s.values[y], 6.0, 1e-7);
    EXPECT_TRUE(m.feasible(s.values));
}

TEST(Lp, MinimizationViaGreaterEq)
{
    // min 2x + 3y  s.t. x + y >= 10, x >= 2  -> 21 at (10 - y...):
    // optimum puts everything on the cheaper x: x=10, y=0 -> 20? But
    // x >= 2 is slack there; optimum is x=10,y=0 with cost 20.
    Model m;
    const int x = m.addVariable("x", 2.0);
    const int y = m.addVariable("y");
    m.addConstraint({{x, 1.0}, {y, 1.0}}, Relation::GreaterEq, 10.0);
    m.setObjective({{x, 2.0}, {y, 3.0}}, /*maximize=*/false);

    const Solution s = solveLp(m);
    ASSERT_TRUE(s.ok());
    EXPECT_NEAR(s.objective, 20.0, 1e-7);
    EXPECT_NEAR(s.values[x], 10.0, 1e-7);
}

TEST(Lp, EqualityConstraints)
{
    // max x + y  s.t. x + y = 5, x - y = 1  ->  x=3, y=2.
    Model m;
    const int x = m.addVariable("x");
    const int y = m.addVariable("y");
    m.addConstraint({{x, 1.0}, {y, 1.0}}, Relation::Equal, 5.0);
    m.addConstraint({{x, 1.0}, {y, -1.0}}, Relation::Equal, 1.0);
    m.setObjective({{x, 1.0}, {y, 1.0}});

    const Solution s = solveLp(m);
    ASSERT_TRUE(s.ok());
    EXPECT_NEAR(s.values[x], 3.0, 1e-7);
    EXPECT_NEAR(s.values[y], 2.0, 1e-7);
}

TEST(Lp, DetectsInfeasible)
{
    Model m;
    const int x = m.addVariable("x", 0.0, 1.0);
    m.addConstraint({{x, 1.0}}, Relation::GreaterEq, 2.0);
    m.setObjective({{x, 1.0}});
    EXPECT_EQ(solveLp(m).status, Status::Infeasible);
}

TEST(Lp, DetectsUnbounded)
{
    Model m;
    const int x = m.addVariable("x");
    m.setObjective({{x, 1.0}});
    EXPECT_EQ(solveLp(m).status, Status::Unbounded);
}

TEST(Lp, VariableUpperBoundsRespected)
{
    Model m;
    const int x = m.addVariable("x", 0.0, 3.5);
    m.setObjective({{x, 2.0}});
    const Solution s = solveLp(m);
    ASSERT_TRUE(s.ok());
    EXPECT_NEAR(s.values[x], 3.5, 1e-7);
    EXPECT_NEAR(s.objective, 7.0, 1e-7);
}

TEST(Lp, ShiftedLowerBounds)
{
    // Variables with nonzero lower bounds must be handled by shifting.
    Model m;
    const int x = m.addVariable("x", 5.0, 10.0);
    const int y = m.addVariable("y", 1.0);
    m.addConstraint({{x, 1.0}, {y, 1.0}}, Relation::LessEq, 12.0);
    m.setObjective({{x, 1.0}, {y, 2.0}});
    const Solution s = solveLp(m);
    ASSERT_TRUE(s.ok());
    // Push y as high as possible: y = 12 - x, x at its lower bound 5.
    EXPECT_NEAR(s.values[x], 5.0, 1e-7);
    EXPECT_NEAR(s.values[y], 7.0, 1e-7);
}

TEST(Lp, FreeVariables)
{
    // min x^+ structure: free variable can go negative.
    Model m;
    const int x = m.addVariable("x", -kInf, kInf);
    m.addConstraint({{x, 1.0}}, Relation::GreaterEq, -3.0);
    m.setObjective({{x, 1.0}}, /*maximize=*/false);
    const Solution s = solveLp(m);
    ASSERT_TRUE(s.ok());
    EXPECT_NEAR(s.values[x], -3.0, 1e-7);
}

TEST(Lp, DegenerateDoesNotCycle)
{
    // A classic degenerate LP; Bland's rule must terminate.
    Model m;
    const int x1 = m.addVariable("x1");
    const int x2 = m.addVariable("x2");
    const int x3 = m.addVariable("x3");
    m.addConstraint({{x1, 0.5}, {x2, -5.5}, {x3, -2.5}},
                    Relation::LessEq, 0.0);
    m.addConstraint({{x1, 0.5}, {x2, -1.5}, {x3, -0.5}},
                    Relation::LessEq, 0.0);
    m.addConstraint({{x1, 1.0}}, Relation::LessEq, 1.0);
    m.setObjective({{x1, 10.0}, {x2, -57.0}, {x3, -9.0}});
    const Solution s = solveLp(m);
    ASSERT_TRUE(s.ok());
    EXPECT_NEAR(s.objective, 1.0, 1e-6);
}

TEST(Ilp, KnapsackExact)
{
    // Classic 0/1 knapsack: values {60,100,120}, weights {10,20,30},
    // capacity 50 -> take items 2+3 = 220.
    Model m;
    std::vector<int> items;
    const double values[] = {60, 100, 120};
    const double weights[] = {10, 20, 30};
    Expr weight_expr, value_expr;
    for (int i = 0; i < 3; ++i) {
        const int v = m.addVariable("item" + std::to_string(i), 0.0,
                                    1.0, /*integer=*/true);
        items.push_back(v);
        weight_expr.push_back({v, weights[i]});
        value_expr.push_back({v, values[i]});
    }
    m.addConstraint(weight_expr, Relation::LessEq, 50.0);
    m.setObjective(value_expr);

    const Solution s = solveIlp(m);
    ASSERT_TRUE(s.ok());
    EXPECT_NEAR(s.objective, 220.0, 1e-7);
    EXPECT_NEAR(s.values[items[0]], 0.0, 1e-7);
    EXPECT_NEAR(s.values[items[1]], 1.0, 1e-7);
    EXPECT_NEAR(s.values[items[2]], 1.0, 1e-7);
}

TEST(Ilp, IntegralityChangesOptimum)
{
    // max x  s.t. 2x <= 7: LP gives 3.5, ILP gives 3.
    Model m;
    const int x = m.addVariable("x", 0.0, kInf, true);
    m.addConstraint({{x, 2.0}}, Relation::LessEq, 7.0);
    m.setObjective({{x, 1.0}});

    EXPECT_NEAR(solveLp(m).objective, 3.5, 1e-7);
    const Solution s = solveIlp(m);
    ASSERT_TRUE(s.ok());
    EXPECT_NEAR(s.objective, 3.0, 1e-7);
}

TEST(Ilp, MixedIntegerProgram)
{
    // max 3x + 2y, x integer, y continuous;
    // x + y <= 4.5, x <= 2.7 -> x=2, y=2.5, obj=11.
    Model m;
    const int x = m.addVariable("x", 0.0, 2.7, true);
    const int y = m.addVariable("y");
    m.addConstraint({{x, 1.0}, {y, 1.0}}, Relation::LessEq, 4.5);
    m.setObjective({{x, 3.0}, {y, 2.0}});
    const Solution s = solveIlp(m);
    ASSERT_TRUE(s.ok());
    EXPECT_NEAR(s.values[x], 2.0, 1e-7);
    EXPECT_NEAR(s.values[y], 2.5, 1e-7);
    EXPECT_NEAR(s.objective, 11.0, 1e-7);
}

TEST(Ilp, InfeasibleIntegerProgram)
{
    // 0.4 <= x <= 0.6 with x integer has no solution.
    Model m;
    const int x = m.addVariable("x", 0.4, 0.6, true);
    m.setObjective({{x, 1.0}});
    EXPECT_EQ(solveIlp(m).status, Status::Infeasible);
}

TEST(Ilp, SchedulerShapedProblem)
{
    // A miniature SCALO allocation: electrodes per flow on 3 nodes,
    // maximize weighted electrodes under per-node power and a shared
    // network budget. Mirrors the Section 3.5 formulation.
    Model m;
    std::vector<int> detect, compare;
    Expr objective, network;
    for (int node = 0; node < 3; ++node) {
        const int d = m.addVariable("detect" + std::to_string(node),
                                    0.0, 96.0, true);
        const int c = m.addVariable("compare" + std::to_string(node),
                                    0.0, 96.0, true);
        detect.push_back(d);
        compare.push_back(c);
        // Power: 0.1 mW per detect electrode, 0.15 per compare, cap 12.
        m.addConstraint({{d, 0.1}, {c, 0.15}}, Relation::LessEq, 12.0);
        // Priorities 3:1.
        objective.push_back({d, 3.0});
        objective.push_back({c, 1.0});
        // Network: each compared electrode costs 0.05 ms of a 10 ms
        // shared TDMA budget.
        network.push_back({c, 0.05});
    }
    m.addConstraint(network, Relation::LessEq, 10.0);
    m.setObjective(objective);

    const Solution s = solveIlp(m);
    ASSERT_TRUE(s.ok());
    // Detection saturates everywhere (highest priority, no shared
    // resource): 96 each.
    for (int node = 0; node < 3; ++node)
        EXPECT_NEAR(s.values[detect[static_cast<std::size_t>(node)]],
                    96.0, 1e-7);
    // Compare shares the network: total 10/0.05 = 200 electrodes, but
    // per-node power allows (12 - 9.6) / 0.15 = 16 each -> 48 total.
    double total_compare = 0.0;
    for (int node = 0; node < 3; ++node)
        total_compare +=
            s.values[compare[static_cast<std::size_t>(node)]];
    EXPECT_NEAR(total_compare, 48.0, 1e-6);
}

TEST(Model, FeasibilityChecker)
{
    Model m;
    const int x = m.addVariable("x", 0.0, 5.0, true);
    m.addConstraint({{x, 1.0}}, Relation::LessEq, 4.0);
    EXPECT_TRUE(m.feasible({3.0}));
    EXPECT_FALSE(m.feasible({4.5})); // violates constraint
    EXPECT_FALSE(m.feasible({2.5})); // violates integrality
}

} // namespace
} // namespace scalo::ilp
