/**
 * @file
 * Tests for the serving runtime: the fixed-bucket latency histogram
 * and composable Metrics, the Query normalization/cacheKey contract,
 * the compiled-plan cache, cross-query batch execution parity (batch
 * results must be bit-identical to serial execution), and the
 * QueryServer's admission/quota/cancel/degradation semantics driven
 * deterministically through the paused manual-stepping mode.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numbers>
#include <vector>

#include "scalo/serve/chaos.hpp"
#include "scalo/serve/metrics.hpp"
#include "scalo/serve/plan_cache.hpp"
#include "scalo/serve/query_server.hpp"
#include "scalo/util/histogram.hpp"
#include "scalo/util/rng.hpp"

namespace scalo {
namespace {

// ---------------------------------------------------------------
// LatencyHistogram.

TEST(LatencyHistogram, EmptyIsZero)
{
    util::LatencyHistogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.p50(), 0.0);
    EXPECT_EQ(h.p99(), 0.0);
    EXPECT_EQ(h.mean(), 0.0);
}

TEST(LatencyHistogram, SingleValueQuantilesAreExact)
{
    util::LatencyHistogram h;
    h.add(42.0);
    // One sample: every quantile is clamped to [min, max] = {42}.
    EXPECT_DOUBLE_EQ(h.p50(), 42.0);
    EXPECT_DOUBLE_EQ(h.p99(), 42.0);
    EXPECT_DOUBLE_EQ(h.min(), 42.0);
    EXPECT_DOUBLE_EQ(h.max(), 42.0);
    EXPECT_DOUBLE_EQ(h.mean(), 42.0);
}

TEST(LatencyHistogram, UniformQuantilesWithinBucketError)
{
    util::LatencyHistogram h;
    for (int i = 1; i <= 10'000; ++i)
        h.add(static_cast<double>(i) * 0.01); // 0.01 .. 100 ms
    EXPECT_EQ(h.count(), 10'000u);
    // Log-spaced buckets with growth 1.35: a quantile estimate is
    // off by at most one bucket (35% relative).
    EXPECT_NEAR(h.p50(), 50.0, 50.0 * 0.35);
    EXPECT_NEAR(h.p95(), 95.0, 95.0 * 0.35);
    EXPECT_NEAR(h.p99(), 99.0, 99.0 * 0.35);
    EXPECT_GE(h.p95(), h.p50());
    EXPECT_GE(h.p99(), h.p95());
}

TEST(LatencyHistogram, MergeIsExactBucketwise)
{
    util::LatencyHistogram a, b, all;
    Rng rng(7);
    for (int i = 0; i < 2'000; ++i) {
        const double v = std::exp(rng.uniform(-5.0, 5.0));
        (i % 2 ? a : b).add(v);
        all.add(v);
    }
    a += b;
    EXPECT_EQ(a.count(), all.count());
    EXPECT_DOUBLE_EQ(a.sum(), all.sum());
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
    for (std::size_t bucket = 0;
         bucket < util::LatencyHistogram::kBuckets; ++bucket)
        EXPECT_EQ(a.bucketCount(bucket), all.bucketCount(bucket));
    EXPECT_DOUBLE_EQ(a.p95(), all.p95());
}

TEST(LatencyHistogram, OutOfRangeValuesClampToEdgeBuckets)
{
    util::LatencyHistogram h;
    h.add(0.0);      // below the first bound
    h.add(1e9);      // way past the last finite bound
    EXPECT_EQ(h.count(), 2u);
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(util::LatencyHistogram::kBuckets - 1),
              1u);
}

// ---------------------------------------------------------------
// Metrics.

TEST(ServeMetrics, MergeSumsEverything)
{
    serve::Metrics a, b;
    a.submitted = 10;
    a.completed = 8;
    a.rejectedOverload = 2;
    a.scanned = 100;
    a.shardsAsked = 16;
    a.shardsAnswered = 12;
    a.serveLatency.add(1.0);
    b.submitted = 5;
    b.completed = 5;
    b.rejectedQuota = 1;
    b.scanned = 50;
    b.shardsAsked = 8;
    b.shardsAnswered = 8;
    b.serveLatency.add(3.0);

    a += b;
    EXPECT_EQ(a.submitted, 15u);
    EXPECT_EQ(a.completed, 13u);
    EXPECT_EQ(a.rejected(), 3u);
    EXPECT_EQ(a.scanned, 150u);
    EXPECT_EQ(a.serveLatency.count(), 2u);
    EXPECT_NEAR(a.coverageFraction(), 20.0 / 24.0, 1e-12);
}

TEST(ServeMetrics, ClassifyFollowsNormalization)
{
    EXPECT_EQ(serve::classify(app::Query::q1(0, 100)),
              serve::QueryClass::Q1Seizure);
    EXPECT_EQ(serve::classify(app::Query::q3(0, 100)),
              serve::QueryClass::Q3Range);
    const std::vector<double> probe(32, 1.0);
    EXPECT_EQ(serve::classify(app::Query::q2(0, 100, probe)),
              serve::QueryClass::Q2Hash);
    EXPECT_EQ(serve::classify(app::Query::q2(0, 100, probe, 5.0)),
              serve::QueryClass::Q2Exact);
    // Probe + seizure filter is still the probe class (the costly
    // axis), and any negative threshold means hashes-only.
    auto q = app::Query::q2(0, 100, probe, -3.0);
    q.seizureOnly = true;
    EXPECT_EQ(serve::classify(q), serve::QueryClass::Q2Hash);
}

// ---------------------------------------------------------------
// Query normalization / cacheKey contract.

TEST(QueryNormalize, NoProbeResetsProbeKnobs)
{
    app::Query q = app::Query::q3(0, 100);
    q.dtwThreshold = 9.0;
    q.confirmMeasure = signal::Measure::Euclidean;
    q.hashPrefilter = false;
    q.useIndex = false;
    const app::Query canon = q.normalized();
    EXPECT_EQ(canon.dtwThreshold, -1.0);
    EXPECT_EQ(canon.confirmMeasure, signal::Measure::Dtw);
    EXPECT_TRUE(canon.hashPrefilter);
    EXPECT_TRUE(canon.useIndex);
    EXPECT_EQ(q.cacheKey(), app::Query::q3(0, 100).cacheKey());
}

TEST(QueryNormalize, NegativeThresholdsCollapse)
{
    const std::vector<double> probe(16, 0.5);
    auto a = app::Query::q2(0, 100, probe, -1.0);
    auto b = app::Query::q2(0, 100, probe, -123.0);
    b.confirmMeasure = signal::Measure::Euclidean;
    EXPECT_EQ(a.cacheKey(), b.cacheKey());
}

TEST(QueryNormalize, PrefilterOffForcesScan)
{
    const std::vector<double> probe(16, 0.5);
    auto q = app::Query::q2(0, 100, probe, 4.0);
    q.hashPrefilter = false;
    q.useIndex = true;
    EXPECT_FALSE(q.normalized().useIndex);
}

TEST(QueryNormalize, DeadlineClampsToZero)
{
    app::Query q = app::Query::q3(0, 100);
    q.shardDeadline = units::Millis{-5.0};
    EXPECT_EQ(q.normalized().shardDeadline.count(), 0.0);
}

TEST(QueryNormalize, DistinctQueriesKeepDistinctKeys)
{
    const std::vector<double> probe(16, 0.5);
    std::vector<std::string> keys{
        app::Query::q3(0, 100).cacheKey(),
        app::Query::q3(0, 101).cacheKey(),
        app::Query::q1(0, 100).cacheKey(),
        app::Query::q2(0, 100, probe).cacheKey(),
        app::Query::q2(0, 100, probe, 4.0).cacheKey(),
    };
    std::sort(keys.begin(), keys.end());
    EXPECT_EQ(std::unique(keys.begin(), keys.end()), keys.end());
}

// ---------------------------------------------------------------
// Engine fixture shared by plan-cache / batching / server tests.

std::vector<double>
shapedWindow(double freq, std::size_t n, double phase, Rng &noise,
             double noise_sd)
{
    std::vector<double> out(n);
    for (std::size_t i = 0; i < n; ++i)
        out[i] = std::sin(2.0 * std::numbers::pi * freq *
                              static_cast<double>(i) /
                              static_cast<double>(n) +
                          phase) +
                 noise.gaussian(0.0, noise_sd);
    return out;
}

class ServeFixture : public ::testing::Test
{
  protected:
    static constexpr std::size_t kNodes = 6;
    static constexpr std::size_t kSamples = 96;

    void
    SetUp() override
    {
        engine =
            std::make_unique<app::QueryEngine>(kNodes, kSamples, 7);
        Rng noise(41);
        for (NodeId node = 0; node < kNodes; ++node) {
            for (std::uint64_t w = 0; w < 80; ++w) {
                const bool probe_like = w % 7 == 0;
                const bool seizure = w % 11 == 0;
                auto window =
                    probe_like
                        ? shapedWindow(6.0, kSamples, 0.3, noise,
                                       0.05)
                        : shapedWindow(noise.uniform(2.0, 20.0),
                                       kSamples,
                                       noise.uniform(0.0, 6.0),
                                       noise, 0.5);
                engine->ingest(node, w * 4'000,
                               static_cast<ElectrodeId>(node % 4),
                               window, seizure);
            }
        }
        Rng probe_noise(43);
        probe = shapedWindow(6.0, kSamples, 0.3, probe_noise, 0.05);
    }

    /** A mixed batch hitting every execution path. */
    std::vector<app::Query>
    mixedQueries() const
    {
        std::vector<app::Query> queries;
        queries.push_back(app::Query::q1(0, 320'000));
        queries.push_back(app::Query::q2(0, 320'000, probe));
        auto euclid = app::Query::q2(0, 320'000, probe, 8.0,
                                     signal::Measure::Euclidean);
        euclid.hashPrefilter = true;
        queries.push_back(euclid);
        queries.push_back(app::Query::q2(0, 320'000, probe, 12.0));
        queries.push_back(app::Query::q3(40'000, 200'000));
        return queries;
    }

    static void
    expectIdentical(const app::QueryExecution &a,
                    const app::QueryExecution &b)
    {
        EXPECT_EQ(a.matches, b.matches); // same pointers, same order
        EXPECT_EQ(a.scanned, b.scanned);
        EXPECT_EQ(a.transferBytes, b.transferBytes);
        EXPECT_EQ(a.latency.count(), b.latency.count());
        EXPECT_EQ(a.coverage.answeredShards,
                  b.coverage.answeredShards);
        ASSERT_EQ(a.perNode.size(), b.perNode.size());
        for (std::size_t n = 0; n < a.perNode.size(); ++n) {
            EXPECT_EQ(a.perNode[n].scanned, b.perNode[n].scanned);
            EXPECT_EQ(a.perNode[n].dtwComparisons,
                      b.perNode[n].dtwComparisons);
            EXPECT_EQ(a.perNode[n].matched, b.perNode[n].matched);
            EXPECT_EQ(a.perNode[n].modeled.count(),
                      b.perNode[n].modeled.count());
        }
    }

    std::unique_ptr<app::QueryEngine> engine;
    std::vector<double> probe;
};

// ---------------------------------------------------------------
// Plan cache.

TEST_F(ServeFixture, PlanCacheHitSkipsCompileAndMatchesResults)
{
    serve::PlanCache cache(8);
    const auto query = app::Query::q2(0, 320'000, probe, 8.0,
                                      signal::Measure::Euclidean);
    bool hit = true;
    const auto first = cache.getOrCompile(*engine, query, &hit);
    EXPECT_FALSE(hit);
    const auto second = cache.getOrCompile(*engine, query, &hit);
    EXPECT_TRUE(hit);
    EXPECT_EQ(first.get(), second.get()); // one shared plan object

    // Equivalent-but-not-equal descriptor: same key, same plan.
    auto equivalent = query;
    equivalent.shardDeadline = units::Millis{-1.0};
    const auto third = cache.getOrCompile(*engine, equivalent, &hit);
    EXPECT_TRUE(hit);
    EXPECT_EQ(first.get(), third.get());

    expectIdentical(engine->execute(query),
                    engine->execute(*first));
    const auto stats = cache.stats();
    EXPECT_EQ(stats.hits, 2u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.size, 1u);
}

TEST_F(ServeFixture, PlanCacheEvictsLeastRecentlyUsed)
{
    serve::PlanCache cache(2);
    const auto qa = app::Query::q3(0, 100);
    const auto qb = app::Query::q3(0, 200);
    const auto qc = app::Query::q3(0, 300);
    cache.getOrCompile(*engine, qa);
    cache.getOrCompile(*engine, qb);
    cache.getOrCompile(*engine, qa); // refresh a
    cache.getOrCompile(*engine, qc); // evicts b
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_NE(cache.lookup(qa.cacheKey()), nullptr);
    EXPECT_EQ(cache.lookup(qb.cacheKey()), nullptr);
    EXPECT_NE(cache.lookup(qc.cacheKey()), nullptr);
}

TEST_F(ServeFixture, PlanCacheInsertKeepsIncumbentOnRace)
{
    serve::PlanCache cache(4);
    const auto query = app::Query::q3(0, 100);
    const std::string key = query.cacheKey();
    auto first = std::make_shared<
        const app::QueryEngine::CompiledQuery>(
        engine->compile(query));
    auto second = std::make_shared<
        const app::QueryEngine::CompiledQuery>(
        engine->compile(query));
    const auto kept1 = cache.insert(key, first);
    const auto kept2 = cache.insert(key, second);
    // The loser of the race is handed the incumbent object.
    EXPECT_EQ(kept1.get(), first.get());
    EXPECT_EQ(kept2.get(), first.get());
    EXPECT_EQ(cache.stats().size, 1u);
}

// ---------------------------------------------------------------
// Cross-query batch execution parity.

TEST_F(ServeFixture, BatchedExecutionIsByteIdenticalToSerial)
{
    const auto queries = mixedQueries();
    std::vector<app::QueryExecution> serial;
    for (const auto &query : queries)
        serial.push_back(engine->execute(query));

    for (std::size_t threads : {1u, 4u}) {
        engine->setParallelism(threads);
        const auto batched = engine->executeBatch(queries);
        ASSERT_EQ(batched.size(), queries.size());
        for (std::size_t i = 0; i < queries.size(); ++i)
            expectIdentical(serial[i], batched[i]);
    }
}

TEST_F(ServeFixture, BatchDeduplicatesRepeatedPlans)
{
    const auto compiled = engine->compile(
        app::Query::q2(0, 320'000, probe, 8.0,
                       signal::Measure::Euclidean));
    const auto single = engine->execute(compiled);
    // The same plan submitted five times: one execution, replicated.
    const std::vector<const app::QueryEngine::CompiledQuery *> batch(
        5, &compiled);
    const auto results = engine->executeBatch(batch);
    ASSERT_EQ(results.size(), 5u);
    for (const auto &result : results)
        expectIdentical(single, result);
}

TEST_F(ServeFixture, BatchWithDownNodeMatchesSerialPartial)
{
    engine->setNodeDown(2);
    const auto queries = mixedQueries();
    std::vector<app::QueryExecution> serials;
    for (const auto &query : queries)
        serials.push_back(engine->execute(query));
    EXPECT_EQ(serials.front().coverage.answeredShards, kNodes - 1);
    EXPECT_FALSE(serials.front().coverage.complete());
    const auto batched = engine->executeBatch(queries);
    for (std::size_t i = 0; i < queries.size(); ++i)
        expectIdentical(serials[i], batched[i]);
}

// ---------------------------------------------------------------
// QueryServer semantics (deterministic, paused manual stepping).

serve::ServeConfig
manualConfig(std::size_t queue_capacity = 64,
             std::size_t tenant_quota = 64)
{
    serve::ServeConfig config;
    config.dispatchers = 0; // manual runOnce stepping only
    config.startPaused = true;
    config.queueCapacity = queue_capacity;
    config.tenantQuota = tenant_quota;
    config.maxBatch = 8;
    return config;
}

TEST_F(ServeFixture, SubmitPollRoundTrip)
{
    serve::QueryServer server(*engine, manualConfig());
    const auto submit =
        server.submit("alice", app::Query::q1(0, 320'000));
    ASSERT_TRUE(submit.accepted());
    EXPECT_EQ(server.poll(submit.id).state,
              serve::TicketState::Queued);
    EXPECT_EQ(server.runOnce(), 1u);

    const auto response = server.poll(submit.id);
    EXPECT_EQ(response.state, serve::TicketState::Done);
    EXPECT_EQ(response.tenant, "alice");
    EXPECT_EQ(response.queryClass, serve::QueryClass::Q1Seizure);
    EXPECT_FALSE(response.execution.matches.empty());
    expectIdentical(engine->execute(app::Query::q1(0, 320'000)),
                    response.execution);

    // Exactly-once handout: the ticket is gone after the poll.
    EXPECT_EQ(server.poll(submit.id).state,
              serve::TicketState::Unknown);
    EXPECT_EQ(server.totals().completed, 1u);
}

TEST_F(ServeFixture, OverloadedAtQueueCapacity)
{
    serve::QueryServer server(*engine,
                              manualConfig(/*queue_capacity=*/4,
                                           /*tenant_quota=*/64));
    for (int i = 0; i < 4; ++i)
        ASSERT_TRUE(
            server.submit("t", app::Query::q3(0, 1'000 + i))
                .accepted());
    const auto rejected =
        server.submit("t", app::Query::q3(0, 9'999));
    EXPECT_EQ(rejected.status, serve::SubmitStatus::Overloaded);
    EXPECT_EQ(rejected.id, serve::kInvalidTicket);
    EXPECT_EQ(server.totals().rejectedOverload, 1u);
    // Draining the queue frees capacity again.
    while (server.runOnce() > 0) {
    }
    EXPECT_TRUE(
        server.submit("t", app::Query::q3(0, 9'999)).accepted());
}

TEST_F(ServeFixture, QuotaExceededPerTenant)
{
    serve::QueryServer server(*engine,
                              manualConfig(/*queue_capacity=*/64,
                                           /*tenant_quota=*/2));
    ASSERT_TRUE(server.submit("a", app::Query::q3(0, 1)).accepted());
    ASSERT_TRUE(server.submit("a", app::Query::q3(0, 2)).accepted());
    const auto rejected = server.submit("a", app::Query::q3(0, 3));
    EXPECT_EQ(rejected.status, serve::SubmitStatus::QuotaExceeded);
    // Another tenant is unaffected.
    EXPECT_TRUE(server.submit("b", app::Query::q3(0, 3)).accepted());
    EXPECT_EQ(server.tenantMetrics("a").rejectedQuota, 1u);
    EXPECT_EQ(server.tenantMetrics("b").rejectedQuota, 0u);
}

TEST_F(ServeFixture, InvalidQueriesAreTypedRejections)
{
    serve::QueryServer server(*engine, manualConfig());
    // Inverted range.
    EXPECT_EQ(server.submit("t", app::Query::q3(100, 0)).status,
              serve::SubmitStatus::Invalid);
    // Wrong probe length.
    const std::vector<double> short_probe(kSamples / 2, 1.0);
    EXPECT_EQ(
        server.submit("t", app::Query::q2(0, 100, short_probe))
            .status,
        serve::SubmitStatus::Invalid);
    EXPECT_EQ(server.totals().rejectedInvalid, 2u);
    EXPECT_EQ(server.inFlight(), 0u);
}

TEST_F(ServeFixture, CancelQueuedTicketNeverExecutes)
{
    serve::QueryServer server(*engine, manualConfig());
    const auto a = server.submit("t", app::Query::q3(0, 1'000));
    const auto b = server.submit("t", app::Query::q3(0, 2'000));
    ASSERT_TRUE(a.accepted() && b.accepted());
    EXPECT_TRUE(server.cancel(a.id));
    EXPECT_FALSE(server.cancel(a.id)); // already terminal

    server.runOnce();
    EXPECT_EQ(server.poll(a.id).state,
              serve::TicketState::Cancelled);
    EXPECT_EQ(server.poll(b.id).state, serve::TicketState::Done);
    EXPECT_EQ(server.totals().cancelled, 1u);
    EXPECT_EQ(server.totals().completed, 1u);
}

TEST_F(ServeFixture, CancelUnknownTicketIsFalse)
{
    serve::QueryServer server(*engine, manualConfig());
    EXPECT_FALSE(server.cancel(12'345));
}

TEST_F(ServeFixture, PlanCacheSharedAcrossSubmissions)
{
    serve::QueryServer server(*engine, manualConfig());
    const auto query = app::Query::q2(0, 320'000, probe, 8.0,
                                      signal::Measure::Euclidean);
    const auto a = server.submit("t", query);
    const auto b = server.submit("t", query);
    ASSERT_TRUE(a.accepted() && b.accepted());
    while (server.runOnce() > 0) {
    }
    const auto ra = server.poll(a.id);
    const auto rb = server.poll(b.id);
    EXPECT_FALSE(ra.planCacheHit);
    EXPECT_TRUE(rb.planCacheHit);
    expectIdentical(ra.execution, rb.execution);
    EXPECT_EQ(server.planCacheStats().hits, 1u);
}

TEST_F(ServeFixture, DegradesToPartialCoverageWhenNodesDown)
{
    serve::QueryServer server(*engine, manualConfig());
    server.setNodeDown(1);
    server.setNodeDown(4);
    const auto submit =
        server.submit("t", app::Query::q3(0, 320'000));
    ASSERT_TRUE(submit.accepted());
    server.runOnce();
    const auto response = server.poll(submit.id);
    ASSERT_EQ(response.state, serve::TicketState::Done);
    EXPECT_EQ(response.execution.coverage.totalShards, kNodes);
    EXPECT_EQ(response.execution.coverage.answeredShards,
              kNodes - 2);
    EXPECT_FALSE(response.execution.perNode[1].answered);
    EXPECT_FALSE(response.execution.perNode[4].answered);
    const auto totals = server.totals();
    EXPECT_EQ(totals.partial, 1u);
    EXPECT_NEAR(totals.coverageFraction(),
                static_cast<double>(kNodes - 2) / kNodes, 1e-12);
}

TEST_F(ServeFixture, StopRejectsNewWorkAndCancelsQueued)
{
    serve::QueryServer server(*engine, manualConfig());
    const auto queued = server.submit("t", app::Query::q3(0, 100));
    ASSERT_TRUE(queued.accepted());
    server.stop();
    EXPECT_EQ(server.submit("t", app::Query::q3(0, 100)).status,
              serve::SubmitStatus::ShuttingDown);
    EXPECT_EQ(server.poll(queued.id).state,
              serve::TicketState::Cancelled);
    EXPECT_EQ(server.inFlight(), 0u);
}

TEST_F(ServeFixture, MetricsAggregateAcrossAxes)
{
    serve::QueryServer server(*engine, manualConfig());
    std::vector<serve::TicketId> ids;
    for (const auto &query : mixedQueries()) {
        const auto submit = server.submit(
            ids.size() % 2 ? "even" : "odd", query);
        ASSERT_TRUE(submit.accepted());
        ids.push_back(submit.id);
    }
    while (server.runOnce() > 0) {
    }
    for (const auto id : ids)
        EXPECT_EQ(server.poll(id).state, serve::TicketState::Done);

    const auto totals = server.totals();
    EXPECT_EQ(totals.submitted, 5u);
    EXPECT_EQ(totals.completed, 5u);
    EXPECT_EQ(totals.serveLatency.count(), 5u);
    // Tenant metrics partition the totals.
    serve::Metrics merged = server.tenantMetrics("even");
    merged += server.tenantMetrics("odd");
    EXPECT_EQ(merged.completed, totals.completed);
    EXPECT_EQ(merged.scanned, totals.scanned);
    // Class metrics partition them too.
    serve::Metrics byClass;
    for (std::size_t c = 0; c < serve::kQueryClasses; ++c)
        byClass += server.classMetrics(
            static_cast<serve::QueryClass>(c));
    EXPECT_EQ(byClass.completed, totals.completed);
    // Node metrics carry the per-shard re-export.
    std::uint64_t nodeScanned = 0;
    for (NodeId node = 0; node < kNodes; ++node)
        nodeScanned += server.nodeMetrics(node).scanned;
    EXPECT_EQ(nodeScanned, totals.scanned);
    EXPECT_EQ(server.tenants(),
              (std::vector<std::string>{"even", "odd"}));
}

// ---------------------------------------------------------------
// ChaosDriver.

TEST_F(ServeFixture, ChaosDriverRepliesCrashTimeline)
{
    serve::QueryServer server(*engine, manualConfig());
    sim::FaultPlan plan;
    plan.crashes.push_back(
        {/*node=*/1, units::Millis{0.0}, units::Millis{5.0}});
    plan.crashes.push_back({/*node=*/3, units::Millis{2.0}});
    plan.dropouts.push_back({units::Millis{0.0},
                             units::Millis{10.0}}); // no serve path
    serve::ChaosDriver chaos(server, plan, /*time_scale=*/1.0);
    EXPECT_EQ(chaos.scheduled(), 3u); // down, up, down
    EXPECT_EQ(chaos.skipped(), 1u);
    chaos.start();
    EXPECT_TRUE(chaos.waitDone(5'000.0));
    EXPECT_EQ(chaos.applied(), 3u);
    EXPECT_FALSE(engine->nodeDown(1)); // rebooted
    EXPECT_TRUE(engine->nodeDown(3));  // stays down
    chaos.stop();
}

} // namespace
} // namespace scalo
