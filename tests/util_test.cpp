/**
 * @file
 * Unit tests for scalo::util: RNG determinism and distribution sanity,
 * CRC32 known-answer vectors, bit streams, statistics, tables.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <set>

#include "scalo/util/bitstream.hpp"
#include "scalo/util/crc32.hpp"
#include "scalo/util/logging.hpp"
#include "scalo/util/rng.hpp"
#include "scalo/util/stats.hpp"
#include "scalo/util/table.hpp"
#include "scalo/util/types.hpp"

namespace scalo {
namespace {

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        equal += (a.next() == b.next());
    EXPECT_LT(equal, 3);
}

TEST(Rng, UniformRange)
{
    Rng rng(7);
    for (int i = 0; i < 10'000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng rng(7);
    double total = 0.0;
    const int n = 100'000;
    for (int i = 0; i < n; ++i)
        total += rng.uniform();
    EXPECT_NEAR(total / n, 0.5, 0.01);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(3);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1'000; ++i) {
        const auto v = rng.below(10);
        EXPECT_LT(v, 10u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 10u) << "all residues should appear";
}

TEST(Rng, GaussianMoments)
{
    Rng rng(11);
    const int n = 200'000;
    double sum = 0.0, sum_sq = 0.0;
    for (int i = 0; i < n; ++i) {
        const double g = rng.gaussian();
        sum += g;
        sum_sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sum_sq / n, 1.0, 0.02);
}

TEST(Rng, ChanceEdgeCases)
{
    Rng rng(5);
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
    int hits = 0;
    for (int i = 0; i < 10'000; ++i)
        hits += rng.chance(0.25);
    EXPECT_NEAR(hits / 10'000.0, 0.25, 0.02);
}

TEST(Mix64, InjectiveOnSmallRange)
{
    std::set<std::uint64_t> outputs;
    for (std::uint64_t i = 0; i < 10'000; ++i)
        outputs.insert(mix64(i));
    EXPECT_EQ(outputs.size(), 10'000u);
}

TEST(Crc32, KnownAnswer)
{
    // CRC32("123456789") == 0xCBF43926 (IEEE reflected).
    const char *msg = "123456789";
    const auto crc = crc32(reinterpret_cast<const std::uint8_t *>(msg),
                           std::strlen(msg));
    EXPECT_EQ(crc, 0xcbf43926u);
}

TEST(Crc32, EmptyIsZero)
{
    EXPECT_EQ(crc32(nullptr, 0), 0u);
}

TEST(Crc32, DetectsSingleBitFlip)
{
    std::vector<std::uint8_t> data(64, 0xa5);
    const auto original = crc32(data);
    for (std::size_t bit = 0; bit < data.size() * 8; bit += 37) {
        auto corrupted = data;
        corrupted[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
        EXPECT_NE(crc32(corrupted), original) << "bit " << bit;
    }
}

TEST(BitStream, RoundTripBits)
{
    BitWriter writer;
    writer.putBits(0b1011, 4);
    writer.putBit(1);
    writer.putBits(0xdeadbeef, 32);
    const auto bytes = writer.bytes();

    BitReader reader(bytes);
    EXPECT_EQ(reader.getBits(4), 0b1011u);
    EXPECT_EQ(reader.getBit(), 1u);
    EXPECT_EQ(reader.getBits(32), 0xdeadbeefu);
}

TEST(BitStream, BitCountTracksWrites)
{
    BitWriter writer;
    writer.putBits(0, 7);
    EXPECT_EQ(writer.bitCount(), 7u);
    writer.putBit(1);
    EXPECT_EQ(writer.bitCount(), 8u);
    EXPECT_EQ(writer.bytes().size(), 1u);
}

TEST(BitStream, ExhaustionPanics)
{
    std::vector<std::uint8_t> one_byte{0xff};
    BitReader reader(one_byte);
    reader.getBits(8);
    EXPECT_TRUE(reader.exhausted());
    EXPECT_THROW(reader.getBit(), std::logic_error);
}

TEST(Stats, MeanAndStddev)
{
    std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
    EXPECT_DOUBLE_EQ(mean(v), 5.0);
    EXPECT_DOUBLE_EQ(stddev(v), 2.0);
}

TEST(Stats, PercentileInterpolates)
{
    std::vector<double> v{1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(v, 100), 4.0);
    EXPECT_DOUBLE_EQ(percentile(v, 50), 2.5);
}

TEST(Stats, EmptyInputsAreZero)
{
    std::vector<double> empty;
    EXPECT_EQ(mean(empty), 0.0);
    EXPECT_EQ(stddev(empty), 0.0);
    EXPECT_EQ(percentile(empty, 50), 0.0);
}

TEST(Stats, RunningStatsTracksRange)
{
    RunningStats rs;
    for (double v : {3.0, -1.0, 7.0, 2.0})
        rs.add(v);
    EXPECT_EQ(rs.count(), 4u);
    EXPECT_DOUBLE_EQ(rs.min(), -1.0);
    EXPECT_DOUBLE_EQ(rs.max(), 7.0);
    EXPECT_DOUBLE_EQ(rs.mean(), 2.75);
}

TEST(Table, RendersAlignedColumns)
{
    TextTable table({"name", "value"});
    table.addRow({"alpha", "1"});
    table.addRow({"b", "22"});
    const std::string out = table.render();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, RejectsRaggedRow)
{
    TextTable table({"a", "b"});
    EXPECT_THROW(table.addRow({"only-one"}), std::logic_error);
}

TEST(Types, AdcRateMatchesPaper)
{
    // 96 electrodes x 30 kHz x 16 bit = 46.08 Mbps ("46 Mbps").
    EXPECT_NEAR(constants::kNodeAdcMbps, 46.08, 1e-9);
    EXPECT_NEAR(electrodesToMbps(96), 46.08, 1e-9);
    EXPECT_NEAR(mbpsToElectrodes(46.08), 96.0, 1e-9);
}

} // namespace
} // namespace scalo
