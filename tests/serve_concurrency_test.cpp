/**
 * @file
 * Concurrency tests for the QueryServer: many client threads
 * submitting, polling, and cancelling against live dispatcher
 * threads while a chaos thread flips nodes down and up. All suite
 * names start with "QueryServer" so ci/check.sh's TSan gate picks
 * this binary up — the point of these tests is to run them under
 * -DSCALO_SANITIZE=thread, where any lock-ordering or data-race bug
 * in the serving runtime becomes a hard failure.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numbers>
#include <thread>
#include <vector>

#include "scalo/serve/chaos.hpp"
#include "scalo/serve/query_server.hpp"
#include "scalo/util/rng.hpp"

namespace scalo {
namespace {

constexpr std::size_t kNodes = 4;
constexpr std::size_t kSamples = 64;

std::vector<double>
probeShape(std::size_t n, double phase)
{
    std::vector<double> out(n);
    for (std::size_t i = 0; i < n; ++i)
        out[i] = std::sin(2.0 * std::numbers::pi * 6.0 *
                              static_cast<double>(i) /
                              static_cast<double>(n) +
                          phase);
    return out;
}

std::unique_ptr<app::QueryEngine>
makeEngine()
{
    auto engine =
        std::make_unique<app::QueryEngine>(kNodes, kSamples, 7);
    Rng rng(11);
    for (NodeId node = 0; node < kNodes; ++node) {
        for (std::uint64_t w = 0; w < 64; ++w) {
            std::vector<double> window(kSamples);
            if (w % 5 == 0)
                window = probeShape(kSamples, 0.3);
            else
                for (double &v : window)
                    v = rng.gaussian();
            engine->ingest(node, w * 4'000,
                           static_cast<ElectrodeId>(node % 4),
                           window, w % 9 == 0);
        }
    }
    return engine;
}

app::Query
mixedQuery(std::size_t i)
{
    switch (i % 4) {
      case 0:
        return app::Query::q1(0, 300'000);
      case 1:
        return app::Query::q2(0, 300'000,
                              probeShape(kSamples, 0.3));
      case 2:
        return app::Query::q2(0, 300'000,
                              probeShape(kSamples, 0.3), 6.0,
                              signal::Measure::Euclidean);
      default:
        return app::Query::q3(10'000, 200'000);
    }
}

TEST(QueryServerConcurrency, ConcurrentSubmitWaitFromManyTenants)
{
    auto engine = makeEngine();
    serve::ServeConfig config;
    config.dispatchers = 3;
    config.queueCapacity = 256;
    config.tenantQuota = 128;
    serve::QueryServer server(*engine, config);

    constexpr std::size_t kClients = 6;
    constexpr std::size_t kPerClient = 40;
    std::atomic<std::size_t> completed{0};
    std::atomic<std::size_t> failures{0};
    std::vector<std::thread> clients;
    for (std::size_t c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
            const std::string tenant =
                "tenant-" + std::to_string(c % 3);
            for (std::size_t i = 0; i < kPerClient; ++i) {
                const auto submit =
                    server.submit(tenant, mixedQuery(c + i));
                if (!submit.accepted())
                    continue; // typed back-pressure is fine
                const auto response =
                    server.wait(submit.id, /*timeout_ms=*/30'000);
                if (!response ||
                    response->state != serve::TicketState::Done) {
                    ++failures;
                    continue;
                }
                if (response->execution.coverage.totalShards !=
                    kNodes)
                    ++failures;
                ++completed;
            }
        });
    }
    for (auto &client : clients)
        client.join();
    EXPECT_EQ(failures.load(), 0u);
    EXPECT_GT(completed.load(), 0u);
    EXPECT_EQ(server.totals().completed, completed.load());
    EXPECT_TRUE(server.drain(1'000.0));
}

TEST(QueryServerConcurrency, SubmitPollCancelRaces)
{
    auto engine = makeEngine();
    serve::ServeConfig config;
    config.dispatchers = 2;
    config.queueCapacity = 128;
    config.tenantQuota = 128;
    config.maxBatch = 4;
    serve::QueryServer server(*engine, config);

    constexpr std::size_t kClients = 4;
    constexpr std::size_t kPerClient = 50;
    std::atomic<std::size_t> anomalies{0};
    std::vector<std::thread> clients;
    for (std::size_t c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
            for (std::size_t i = 0; i < kPerClient; ++i) {
                const auto submit = server.submit(
                    "t" + std::to_string(c), mixedQuery(i));
                if (!submit.accepted())
                    continue;
                if (i % 3 == 0)
                    server.cancel(submit.id); // race vs dispatch
                // Poll until terminal; the result is handed out
                // exactly once, so Unknown after a terminal poll is
                // the contract, not an anomaly.
                for (;;) {
                    const auto response = server.poll(submit.id);
                    if (response.state ==
                            serve::TicketState::Done ||
                        response.state ==
                            serve::TicketState::Cancelled)
                        break;
                    if (response.state ==
                        serve::TicketState::Unknown) {
                        ++anomalies; // lost without a terminal poll
                        break;
                    }
                    std::this_thread::yield();
                }
            }
        });
    }
    for (auto &client : clients)
        client.join();
    EXPECT_EQ(anomalies.load(), 0u);
    const auto totals = server.totals();
    EXPECT_EQ(totals.completed + totals.cancelled,
              totals.submitted);
}

TEST(QueryServerConcurrency, ServingWhileChaosFlipsNodes)
{
    auto engine = makeEngine();
    serve::ServeConfig config;
    config.dispatchers = 2;
    config.queueCapacity = 256;
    config.tenantQuota = 256;
    serve::QueryServer server(*engine, config);

    // A tight crash/reboot cycle so flips land mid-execution.
    sim::FaultPlan plan;
    for (int round = 0; round < 10; ++round) {
        const double at = 1.0 + round * 4.0;
        plan.crashes.push_back({/*node=*/1, units::Millis{at},
                                units::Millis{at + 2.0}});
    }
    serve::ChaosDriver chaos(server, plan, /*time_scale=*/1.0);
    chaos.start();

    std::atomic<std::size_t> badCoverage{0};
    std::vector<std::thread> clients;
    for (std::size_t c = 0; c < 3; ++c) {
        clients.emplace_back([&, c] {
            for (std::size_t i = 0; i < 60; ++i) {
                const auto submit = server.submit(
                    "t" + std::to_string(c), mixedQuery(i));
                if (!submit.accepted())
                    continue;
                const auto response =
                    server.wait(submit.id, 30'000.0);
                if (!response ||
                    response->state != serve::TicketState::Done)
                    continue;
                const auto &coverage =
                    response->execution.coverage;
                if (coverage.totalShards != kNodes ||
                    coverage.answeredShards > coverage.totalShards)
                    ++badCoverage;
            }
        });
    }
    for (auto &client : clients)
        client.join();
    chaos.stop();
    EXPECT_EQ(badCoverage.load(), 0u);
    EXPECT_GT(server.totals().completed, 0u);
}

TEST(QueryServerConcurrency, StopWhileClientsSubmit)
{
    auto engine = makeEngine();
    serve::ServeConfig config;
    config.dispatchers = 2;
    serve::QueryServer server(*engine, config);

    std::atomic<bool> go{true};
    std::vector<std::thread> clients;
    for (std::size_t c = 0; c < 3; ++c) {
        clients.emplace_back([&] {
            std::size_t i = 0;
            while (go.load(std::memory_order_relaxed)) {
                const auto submit =
                    server.submit("t", mixedQuery(i++));
                if (submit.status ==
                    serve::SubmitStatus::ShuttingDown)
                    break;
                if (submit.accepted())
                    server.poll(submit.id);
            }
        });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    server.stop();
    go.store(false);
    for (auto &client : clients)
        client.join();
    EXPECT_EQ(server.submit("t", mixedQuery(0)).status,
              serve::SubmitStatus::ShuttingDown);
    // Accounting closed: nothing is left mid-flight.
    EXPECT_EQ(server.inFlight(), 0u);
}

} // namespace
} // namespace scalo
