/**
 * @file
 * Unit tests for scalo::data: the synthetic iEEG generator (statistical
 * structure the experiments rely on: annotated, propagating,
 * cross-site-correlated seizures over uncorrelated background) and the
 * MEArec-style spike generator.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "scalo/data/ieeg_synth.hpp"
#include "scalo/data/spike_synth.hpp"
#include "scalo/signal/distance.hpp"
#include "scalo/signal/window.hpp"

namespace scalo::data {
namespace {

IeegConfig
smallIeeg()
{
    IeegConfig config;
    config.nodes = 3;
    config.electrodesPerNode = 4;
    config.durationSec = 4.0;
    config.seizuresPerMinute = 30.0; // two seizures in 4 s
    config.seizureDurationSec = 0.8;
    return config;
}

TEST(IeegSynth, ShapeMatchesConfig)
{
    const auto dataset = generateIeeg(smallIeeg());
    EXPECT_EQ(dataset.traces().size(), 3u);
    EXPECT_EQ(dataset.traces()[0].size(), 4u);
    EXPECT_EQ(dataset.sampleCount(),
              static_cast<std::size_t>(4.0 * 30'000.0));
    EXPECT_EQ(dataset.seizures().size(), 2u);
}

TEST(IeegSynth, DeterministicPerSeed)
{
    const auto a = generateIeeg(smallIeeg());
    const auto b = generateIeeg(smallIeeg());
    EXPECT_EQ(a.traces()[1][2], b.traces()[1][2]);
}

TEST(IeegSynth, SeizureWindowsHaveHigherAmplitude)
{
    const auto dataset = generateIeeg(smallIeeg());
    const auto &event = dataset.seizures().front();
    const auto node = event.originNode;
    const double fs = dataset.config().sampleRateHz;

    auto rms_at = [&](double t_sec) {
        const auto start = static_cast<std::size_t>(t_sec * fs);
        const auto &trace = dataset.traces()[node][0];
        std::vector<double> window(
            trace.begin() + static_cast<long>(start),
            trace.begin() + static_cast<long>(start + 1'200));
        return signal::rms(window);
    };

    const double during = rms_at(event.onsetSec + 0.3);
    const double before = rms_at(event.onsetSec - 0.3);
    EXPECT_GT(during, 3.0 * before);
}

TEST(IeegSynth, GroundTruthAccountsForLag)
{
    const auto dataset = generateIeeg(smallIeeg());
    const auto &event = dataset.seizures().front();
    const NodeId origin = event.originNode;
    const NodeId other = (origin + 1) % 3;
    const double probe = event.onsetSec + 0.01;
    EXPECT_TRUE(dataset.inSeizure(origin, probe));
    // The next site's onset lags by the propagation delay.
    EXPECT_FALSE(dataset.inSeizure(other, probe));
    EXPECT_TRUE(dataset.inSeizure(
        other, probe + dataset.config().propagationLagSec));
}

TEST(IeegSynth, CrossSiteCorrelationOnlyDuringSeizure)
{
    auto config = smallIeeg();
    config.propagationLagSec = 0.0; // align sites for this check
    const auto dataset = generateIeeg(config);
    const auto &event = dataset.seizures().front();
    const double fs = config.sampleRateHz;

    auto window_of = [&](NodeId node, double t_sec) {
        const auto start = static_cast<std::size_t>(t_sec * fs);
        const auto &trace = dataset.traces()[node][0];
        std::vector<double> window(
            trace.begin() + static_cast<long>(start),
            trace.begin() + static_cast<long>(start + 3'000));
        signal::removeMean(window);
        return window;
    };

    const double corr_seizure = signal::pearson(
        window_of(0, event.onsetSec + 0.3),
        window_of(1, event.onsetSec + 0.3));
    const double corr_background = signal::pearson(
        window_of(0, event.onsetSec - 0.35),
        window_of(1, event.onsetSec - 0.35));
    EXPECT_GT(std::abs(corr_seizure), 0.6);
    EXPECT_LT(std::abs(corr_background), 0.3);
}

TEST(SpikeSynth, GroundTruthSortedAndInRange)
{
    SpikeConfig config;
    config.durationSec = 2.0;
    const auto dataset = generateSpikes(config);
    EXPECT_FALSE(dataset.events.empty());
    for (std::size_t i = 1; i < dataset.events.size(); ++i)
        EXPECT_LE(dataset.events[i - 1].sampleIndex,
                  dataset.events[i].sampleIndex);
    for (const auto &event : dataset.events) {
        EXPECT_LT(event.sampleIndex, dataset.trace.size());
        EXPECT_GE(event.neuron, 0);
        EXPECT_LT(event.neuron, config.neurons);
    }
}

TEST(SpikeSynth, FiringRateApproximatelyPoisson)
{
    SpikeConfig config;
    config.durationSec = 10.0;
    config.neurons = 5;
    config.firingRateHz = 15.0;
    const auto dataset = generateSpikes(config);
    const double expected =
        config.neurons * config.firingRateHz * config.durationSec;
    EXPECT_NEAR(static_cast<double>(dataset.events.size()), expected,
                0.2 * expected);
}

TEST(SpikeSynth, TemplatesAreDistinct)
{
    SpikeConfig config;
    const auto dataset = generateSpikes(config);
    ASSERT_EQ(dataset.templates.size(),
              static_cast<std::size_t>(config.neurons));
    // Every pair of templates differs substantially in L2.
    for (std::size_t a = 0; a < dataset.templates.size(); ++a) {
        for (std::size_t b = a + 1; b < dataset.templates.size();
             ++b) {
            EXPECT_GT(signal::euclideanDistance(dataset.templates[a],
                                                dataset.templates[b]),
                      0.15)
                << a << " vs " << b;
        }
    }
}

TEST(SpikeSynth, TemplateIsBiphasic)
{
    const auto tmpl = makeTemplate(0, 48, 1);
    const double trough = *std::min_element(tmpl.begin(), tmpl.end());
    const double hump = *std::max_element(tmpl.begin(), tmpl.end());
    EXPECT_LT(trough, -0.8);
    EXPECT_GT(hump, 0.1);
}

TEST(SpikeSynth, WaveformAtRecoversTemplateShape)
{
    SpikeConfig config;
    config.noiseStd = 0.01;
    config.durationSec = 2.0;
    config.firingRateHz = 4.0; // sparse: minimal overlap
    const auto dataset = generateSpikes(config);
    ASSERT_FALSE(dataset.events.empty());

    // Find an isolated event and compare with its template.
    for (const auto &event : dataset.events) {
        bool isolated = true;
        for (const auto &other : dataset.events) {
            if (&other == &event)
                continue;
            const long gap =
                std::abs(static_cast<long>(other.sampleIndex) -
                         static_cast<long>(event.sampleIndex));
            if (gap < 2 * static_cast<long>(config.waveformSamples))
                isolated = false;
        }
        if (!isolated)
            continue;
        const auto waveform = dataset.waveformAt(event);
        const auto &tmpl =
            dataset.templates[static_cast<std::size_t>(event.neuron)];
        EXPECT_GT(signal::pearson(waveform, tmpl), 0.9);
        return;
    }
    GTEST_SKIP() << "no isolated spike found";
}

TEST(SpikeSynth, DriftReducesLateAmplitudes)
{
    SpikeConfig config;
    config.durationSec = 10.0;
    config.drift = 0.4;
    config.noiseStd = 0.01;
    config.amplitudeJitter = 0.0;
    const auto dataset = generateSpikes(config);

    auto peak_of = [&](const SpikeEvent &event) {
        const auto w = dataset.waveformAt(event);
        double peak = 0.0;
        for (double v : w)
            peak = std::max(peak, std::abs(v));
        return peak;
    };

    double early = 0.0, late = 0.0;
    std::size_t early_n = 0, late_n = 0;
    const std::size_t half = dataset.trace.size() / 2;
    for (const auto &event : dataset.events) {
        if (event.sampleIndex < half / 4) {
            early += peak_of(event);
            ++early_n;
        } else if (event.sampleIndex > dataset.trace.size() -
                                            half / 4) {
            late += peak_of(event);
            ++late_n;
        }
    }
    ASSERT_GT(early_n, 0u);
    ASSERT_GT(late_n, 0u);
    EXPECT_GT(early / static_cast<double>(early_n),
              1.15 * late / static_cast<double>(late_n));
}

} // namespace
} // namespace scalo::data
