/**
 * @file
 * Parity tests for the parallel conservative discrete-event engine:
 * the clustered SystemSim advanced on worker threads must produce the
 * byte-identical trace and identical results as the serial engine at
 * every thread count, including under fault injection (a crash that
 * kills a cluster's relay mid-run). This is the property that makes
 * the parallel engine a pure wall-clock optimisation.
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdlib>
#include <string>
#include <vector>

#include "scalo/sched/scheduler.hpp"
#include "scalo/sched/workloads.hpp"
#include "scalo/sim/runtime/system_sim.hpp"

namespace scalo::sim {
namespace {

using namespace units::literals;

std::vector<sched::FlowSpec>
mixedFlows()
{
    return {sched::seizureDetectionFlow(),
            sched::hashSimilarityFlow(net::Pattern::AllToAll),
            sched::spikeSortingFlow()};
}

const std::vector<double> kPriorities{1.0, 3.0, 1.0};

/**
 * A 24-node fabric in 4 clusters of 6 (cluster 1 = nodes 6..11,
 * relay node 6), scheduled and configured for tracing.
 */
SystemSimConfig
clusteredSimConfig(units::Millis duration,
                   std::size_t nodes = 24,
                   std::size_t clusters = 4)
{
    sched::SystemConfig system;
    system.nodes = nodes;
    system.maxElectrodesPerNode = constants::kElectrodesPerNode;
    if (clusters > 1)
        system.clusters =
            net::ClusterPlan::balanced(nodes, clusters);
    const sched::Scheduler scheduler(system);

    SystemSimConfig config;
    config.system = system;
    config.flows = mixedFlows();
    config.priorities = kPriorities;
    config.schedule = scheduler.schedule(mixedFlows(), kPriorities);
    config.duration = duration;
    config.recordTrace = true;
    return config;
}

struct RunOutput
{
    std::string traceJson;
    SystemSimResult result;
};

RunOutput
runWith(SystemSimConfig config, bool parallel, std::size_t threads)
{
    config.parallel = parallel;
    config.threads = threads;
    SystemSim sim(std::move(config));
    RunOutput out;
    out.result = sim.run();
    out.traceJson = sim.trace().toChromeJson();
    return out;
}

/** Every relay-forward trace entry's pid (the forwarding node). */
std::vector<std::uint32_t>
relayForwardPids(const std::string &json)
{
    std::vector<std::uint32_t> pids;
    std::size_t pos = 0;
    const std::string cat = "\"cat\":\"relay-forward\"";
    while ((pos = json.find(cat, pos)) != std::string::npos) {
        const std::size_t pid_at = json.find("\"pid\":", pos);
        if (pid_at == std::string::npos)
            break;
        pids.push_back(static_cast<std::uint32_t>(
            std::strtoul(json.c_str() + pid_at + 6, nullptr, 10)));
        pos = pid_at;
    }
    return pids;
}

TEST(ParallelSim, TraceBytesMatchSerialAtEveryThreadCount)
{
    const SystemSimConfig config = clusteredSimConfig(100.0_ms);
    ASSERT_TRUE(config.schedule.feasible) << config.schedule.reason;

    const RunOutput serial = runWith(config, false, 0);
    const RunOutput two = runWith(config, true, 2);
    const RunOutput four = runWith(config, true, 4);

    EXPECT_FALSE(serial.result.ranParallel);
    EXPECT_TRUE(two.result.ranParallel);
    EXPECT_TRUE(four.result.ranParallel);
    EXPECT_EQ(serial.result.clusters, 4u);

    ASSERT_FALSE(serial.traceJson.empty());
    EXPECT_EQ(serial.traceJson, two.traceJson);
    EXPECT_EQ(serial.traceJson, four.traceJson);

    // The aggregated results agree field-for-field too.
    for (const RunOutput *run : {&two, &four}) {
        EXPECT_EQ(serial.result.eventsExecuted,
                  run->result.eventsExecuted);
        ASSERT_EQ(serial.result.flows.size(),
                  run->result.flows.size());
        for (std::size_t f = 0; f < serial.result.flows.size();
             ++f) {
            const FlowSimStats &a = serial.result.flows[f];
            const FlowSimStats &b = run->result.flows[f];
            EXPECT_EQ(a.windowsCompleted, b.windowsCompleted);
            EXPECT_EQ(a.relayForwards, b.relayForwards);
            EXPECT_EQ(a.meanResponse.count(),
                      b.meanResponse.count());
            EXPECT_EQ(a.meanRound.count(), b.meanRound.count());
            EXPECT_EQ(a.retransmissions, b.retransmissions);
        }
        ASSERT_EQ(serial.result.nodes.size(),
                  run->result.nodes.size());
        for (std::size_t n = 0; n < serial.result.nodes.size(); ++n)
            EXPECT_EQ(serial.result.nodes[n].measuredPower.count(),
                      run->result.nodes[n].measuredPower.count());
    }
}

TEST(ParallelSim, ExplicitFlatPlanMatchesEmptyPlan)
{
    // A ClusterPlan::flat(N) plan is the degenerate one-cluster case
    // and must reproduce the legacy flat engine byte for byte.
    SystemSimConfig with_plan = clusteredSimConfig(100.0_ms, 8, 1);
    with_plan.system.clusters = net::ClusterPlan::flat(8);
    const SystemSimConfig without = clusteredSimConfig(100.0_ms, 8, 1);
    ASSERT_TRUE(with_plan.schedule.feasible);

    const RunOutput a = runWith(with_plan, false, 0);
    const RunOutput b = runWith(without, false, 0);
    EXPECT_EQ(a.result.clusters, 1u);
    ASSERT_FALSE(a.traceJson.empty());
    EXPECT_EQ(a.traceJson, b.traceJson);
}

TEST(ParallelSim, RepeatedParallelRunsAreDeterministic)
{
    const SystemSimConfig config = clusteredSimConfig(100.0_ms);
    const RunOutput first = runWith(config, true, 4);
    const RunOutput second = runWith(config, true, 4);
    ASSERT_FALSE(first.traceJson.empty());
    EXPECT_EQ(first.traceJson, second.traceJson);
}

TEST(ParallelSim, RelayCrashParityAndMigration)
{
    // Kill node 6 - cluster 1's relay - at 20 ms with no reboot. The
    // serial and parallel engines must detect it, reschedule only
    // cluster 1, and migrate relay duty to node 7, with identical
    // NodeDown/Resched sequences and trace bytes.
    SystemSimConfig config = clusteredSimConfig(150.0_ms);
    ASSERT_TRUE(config.schedule.feasible);
    config.faults.crashes.push_back({6, 20.0_ms});

    const RunOutput serial = runWith(config, false, 0);
    const RunOutput parallel = runWith(config, true, 4);

    ASSERT_FALSE(serial.traceJson.empty());
    EXPECT_EQ(serial.traceJson, parallel.traceJson);

    for (const RunOutput *run : {&serial, &parallel}) {
        ASSERT_EQ(run->result.nodesDown.size(), 1u);
        EXPECT_EQ(run->result.nodesDown[0].node, 6u);
        EXPECT_EQ(run->result.nodesDown[0].crashedAt.count(), 20.0);
        ASSERT_GE(run->result.reschedules.size(), 1u);
        EXPECT_EQ(run->result.reschedules[0].deadNodes,
                  (std::vector<std::size_t>{6}));
        EXPECT_EQ(run->result.reschedules[0].resolvedClusters,
                  (std::vector<std::size_t>{1}));
    }

    // Relay duty migrated: cluster 1's forwards come from node 6
    // before the death is detected and node 7 afterwards. Node ids
    // 6 and 7 belong to cluster 1 only, so filtering pids to {6, 7}
    // isolates that cluster's relay history.
    const std::vector<std::uint32_t> pids =
        relayForwardPids(serial.traceJson);
    ASSERT_FALSE(pids.empty());
    bool saw_old_relay = false;
    bool saw_new_relay = false;
    bool migrated_back = false;
    for (const std::uint32_t pid : pids) {
        if (pid == 6)
            saw_old_relay = true;
        if (pid == 7) {
            saw_new_relay = true;
        } else if (pid == 6 && saw_new_relay) {
            migrated_back = true;
        }
    }
    EXPECT_TRUE(saw_old_relay);
    EXPECT_TRUE(saw_new_relay);
    EXPECT_FALSE(migrated_back)
        << "relay fell back to the dead node";
}

TEST(ParallelSim, CountersOnlyModeMatchesTracedCounters)
{
    // Without recordTrace the clustered engine keeps only counters;
    // they must equal the fully-traced run's totals.
    SystemSimConfig traced = clusteredSimConfig(100.0_ms);
    SystemSimConfig counters = clusteredSimConfig(100.0_ms);
    counters.recordTrace = false;

    const RunOutput a = runWith(traced, true, 4);
    const RunOutput b = runWith(counters, true, 4);
    EXPECT_EQ(a.result.network.total(), b.result.network.total());
    ASSERT_EQ(a.result.flows.size(), b.result.flows.size());
    for (std::size_t f = 0; f < a.result.flows.size(); ++f) {
        EXPECT_EQ(a.result.flows[f].windowsCompleted,
                  b.result.flows[f].windowsCompleted);
        EXPECT_EQ(a.result.flows[f].relayForwards,
                  b.result.flows[f].relayForwards);
    }
}

} // namespace
} // namespace scalo::sim
