/**
 * @file
 * Unit tests for scalo::app: the seizure detector and propagation
 * analyzer on synthetic iEEG, spike sorting accuracy (hash vs exact),
 * movement decoding quality for the three pipelines, interactive
 * query costs (Figure 10 anchors), intents/second (Figure 9b), and
 * the weighted seizure throughput model (Figure 9a).
 */

#include <gtest/gtest.h>

#include "scalo/app/movement.hpp"
#include "scalo/app/query.hpp"
#include "scalo/app/seizure.hpp"
#include "scalo/app/spikesort.hpp"

namespace scalo::app {
namespace {

data::IeegDataset
seizureDataset()
{
    data::IeegConfig config;
    config.nodes = 3;
    config.electrodesPerNode = 4;
    config.durationSec = 4.0;
    config.seizuresPerMinute = 30.0;
    config.seizureDurationSec = 0.8;
    return data::generateIeeg(config);
}

TEST(SeizureDetector, LearnsToSeparateSeizures)
{
    // Detection features need windows long enough to resolve the
    // seizure band: 100 ms (3,000 samples).
    const auto dataset = seizureDataset();
    const auto detector = SeizureDetector::train(dataset, 3'000);
    const auto quality = detector.evaluate(dataset, 0, 3'000);
    EXPECT_GT(quality.truePositiveRate, 0.8);
    EXPECT_LT(quality.falsePositiveRate, 0.1);
    EXPECT_GT(quality.positives, 10u);
    EXPECT_GT(quality.negatives, 10u);
}

TEST(SeizureFeatures, SeparateSeizureFromBackground)
{
    const auto dataset = seizureDataset();
    const auto &event = dataset.seizures().front();
    const double fs = dataset.config().sampleRateHz;
    const NodeId node = event.originNode;

    auto windows_at = [&](double t_sec) {
        const auto start = static_cast<std::size_t>(t_sec * fs);
        std::vector<Window> windows;
        for (const auto &trace : dataset.traces()[node]) {
            windows.emplace_back(
                trace.begin() + static_cast<long>(start),
                trace.begin() + static_cast<long>(start + 3'000));
        }
        return windows;
    };

    const auto seizure =
        seizureFeatures(windows_at(event.onsetSec + 0.3), fs);
    const auto background =
        seizureFeatures(windows_at(event.onsetSec - 0.35), fs);
    // The low-band power feature dominates during the episode.
    EXPECT_GT(seizure[0], background[0]);
}

TEST(PropagationAnalyzer, ConfirmsCorrelatedSeizure)
{
    // Build aligned windows: during a propagated seizure the sites
    // share the oscillation, so hash + DTW confirm.
    data::IeegConfig config;
    config.nodes = 3;
    config.electrodesPerNode = 1;
    config.durationSec = 2.0;
    config.seizuresPerMinute = 30.0;
    config.seizureDurationSec = 0.8;
    config.propagationLagSec = 0.0;
    const auto dataset = data::generateIeeg(config);
    const auto &event = dataset.seizures().front();
    const double fs = config.sampleRateHz;

    PropagationAnalyzer analyzer(3, 120, 40.0);
    // Observe several timesteps inside the seizure.
    std::uint64_t t_us = 1'000;
    const auto base = static_cast<std::size_t>(
        (event.onsetSec + 0.2) * fs);
    for (int step = 0; step < 5; ++step) {
        std::vector<std::vector<double>> windows;
        for (NodeId node = 0; node < 3; ++node) {
            const auto &trace = dataset.traces()[node][0];
            const std::size_t start = base + step * 120;
            windows.emplace_back(
                trace.begin() + static_cast<long>(start),
                trace.begin() + static_cast<long>(start + 120));
        }
        analyzer.observe(windows, t_us);
        t_us += 4'000;
    }

    const auto result = analyzer.analyze(event.originNode, t_us);
    EXPECT_FALSE(result.hashMatches.empty());
    EXPECT_FALSE(result.confirmed.empty());
}

TEST(PropagationAnalyzer, BackgroundDoesNotConfirm)
{
    // Independent background noise across sites: DTW confirmation of
    // z-scored random windows should reject (hash may produce rare
    // false positives; those are exactly what DTW resolves).
    data::IeegConfig config;
    config.nodes = 3;
    config.electrodesPerNode = 1;
    config.durationSec = 1.0;
    config.seizuresPerMinute = 0.0;
    const auto dataset = data::generateIeeg(config);

    PropagationAnalyzer analyzer(3, 120, 8.0);
    std::uint64_t t_us = 1'000;
    for (int step = 0; step < 10; ++step) {
        std::vector<std::vector<double>> windows;
        for (NodeId node = 0; node < 3; ++node) {
            const auto &trace = dataset.traces()[node][0];
            const std::size_t start = 1'000 + step * 120;
            windows.emplace_back(
                trace.begin() + static_cast<long>(start),
                trace.begin() + static_cast<long>(start + 120));
        }
        analyzer.observe(windows, t_us);
        t_us += 4'000;
    }
    const auto result = analyzer.analyze(0, t_us);
    EXPECT_TRUE(result.confirmed.empty());
}

TEST(SpikeSorter, HashAccuracyWithinFivePercentOfExact)
{
    // Section 6.3's claim, on the synthetic stand-in dataset.
    data::SpikeConfig config;
    config.durationSec = 4.0;
    config.neurons = 8;
    const auto dataset = data::generateSpikes(config);

    const SpikeSorter exact(dataset.templates, /*use_hashes=*/false);
    const SpikeSorter hashed(dataset.templates, /*use_hashes=*/true);
    const auto exact_report = exact.evaluate(dataset);
    const auto hash_report = hashed.evaluate(dataset);

    EXPECT_GT(exact_report.accuracy, 0.7);
    EXPECT_GT(hash_report.accuracy, exact_report.accuracy - 0.05);
    EXPECT_GT(hash_report.detectionRate, 0.6);
}

TEST(SpikeSorter, DetectsMostGroundTruthSpikes)
{
    data::SpikeConfig config;
    config.durationSec = 3.0;
    config.neurons = 5;
    config.firingRateHz = 8.0;
    const auto dataset = data::generateSpikes(config);
    const SpikeSorter sorter(dataset.templates, true);
    const auto report = sorter.evaluate(dataset);
    EXPECT_GT(report.detectionRate, 0.75);
}

TEST(Movement, GestureClassifierBeatsChance)
{
    const auto dataset = generateMovement(32, 1'200, 4, 3);
    const auto classifier = GestureClassifier::train(dataset, 900);
    const double accuracy = classifier.accuracy(dataset, 900);
    EXPECT_GT(accuracy, 0.45) << "4-class chance is 0.25";
}

TEST(Movement, DistributedGestureMatchesCentralized)
{
    const auto dataset = generateMovement(24, 600, 4, 5);
    const auto classifier = GestureClassifier::train(dataset, 450);
    for (std::size_t t = 450; t < 470; ++t) {
        EXPECT_EQ(classifier.classify(dataset.features[t]),
                  classifier.classifyDistributed(dataset.features[t],
                                                 {8, 8, 8}));
    }
}

TEST(Movement, KalmanDecodesVelocity)
{
    const auto dataset = generateMovement(48, 1'500, 4, 7);
    const auto quality = decodeWithKalman(dataset, 700, 1);
    EXPECT_GT(quality.vxCorrelation, 0.7);
    EXPECT_GT(quality.vyCorrelation, 0.7);
}

TEST(Movement, NnDecodesVelocity)
{
    const auto dataset = generateMovement(32, 1'500, 4, 9);
    const auto quality = decodeWithNn(dataset, 1'000, 2);
    EXPECT_GT(quality.vxCorrelation, 0.6);
    EXPECT_GT(quality.vyCorrelation, 0.6);
}

TEST(Intents, ScaloBeatsConventionalForSvmAndNn)
{
    // Figure 9b: SCALO exceeds the 20/s conventional rate for SVM/NN.
    const units::Hertz svm =
        intentsPerSecond(sched::miSvmFlow(), 11);
    const units::Hertz nn = intentsPerSecond(sched::miNnFlow(), 11);
    EXPECT_GT(svm.count(), kConventionalIntentsPerSecond);
    EXPECT_GT(nn.count(), kConventionalIntentsPerSecond);
    EXPECT_GT(svm.count(), nn.count()) << "SVM partials are cheaper than NN's";
}

TEST(Intents, KalmanStaysNearTwentyPerSecond)
{
    const units::Hertz kf = intentsPerSecond(sched::miKfFlow(), 4);
    EXPECT_NEAR(kf.count(), 20.0, 8.0);
}

TEST(Query, PaperAnchors)
{
    // Figure 10 anchors: Q1 at 7 MB / 5% ~ 9 QPS; Q3 at 7 MB ~ 1.2 s.
    QueryConfig config;
    const auto q1 = estimateQuery(QueryKind::Q1SeizureWindows, config);
    EXPECT_NEAR(q1.queriesPerSecond.count(), 9.0, 1.5);

    const auto q3 = estimateQuery(QueryKind::Q3TimeRange, config);
    EXPECT_NEAR(q3.latency.count(), 1'210.0, 150.0);
    EXPECT_NEAR(q3.queriesPerSecond.count(), 0.8, 0.15);
}

TEST(Query, DtwMatchingCostsPowerNotMuchLatency)
{
    QueryConfig hash_config;
    QueryConfig dtw_config;
    dtw_config.exactMatch = true;
    const auto hash_cost =
        estimateQuery(QueryKind::Q2TemplateMatch, hash_config);
    const auto dtw_cost =
        estimateQuery(QueryKind::Q2TemplateMatch, dtw_config);
    // Section 6.4: 8 QPS vs 9 QPS, but 15 mW vs 3.57 mW.
    EXPECT_LT(dtw_cost.queriesPerSecond.count(), hash_cost.queriesPerSecond.count());
    EXPECT_GT(dtw_cost.queriesPerSecond.count(),
              0.8 * hash_cost.queriesPerSecond.count());
    EXPECT_DOUBLE_EQ(dtw_cost.power.count(), 15.0);
    EXPECT_DOUBLE_EQ(hash_cost.power.count(), 3.57);
}

TEST(Query, LatencyScalesWithDataSize)
{
    QueryConfig small, large;
    small.data = units::Megabytes{7.0};
    large.data = units::Megabytes{60.0};
    const auto q_small =
        estimateQuery(QueryKind::Q1SeizureWindows, small);
    const auto q_large =
        estimateQuery(QueryKind::Q1SeizureWindows, large);
    EXPECT_GT(q_large.latency.count(), 4.0 * q_small.latency.count());
    // Still usable in real time at 1 s of data (Section 6.4).
    EXPECT_GT(q_large.queriesPerSecond.count(), 1.0);
}

TEST(Query, TimeRangeMapping)
{
    // 7 MB over 11 nodes ~ the last 110 ms (Figure 10 pairing).
    EXPECT_NEAR(timeRangeFor(units::Megabytes{7.0}, 11).count(),
                110.0, 15.0);
    EXPECT_NEAR(timeRangeFor(units::Megabytes{60.0}, 11).count(),
                1'000.0, 120.0);
}

TEST(WeightedSeizure, EqualWeightsPeakNear506At11Nodes)
{
    const auto result =
        seizurePropagationWeighted({1.0, 1.0, 1.0}, 11);
    EXPECT_NEAR(result.weighted.count(), 506.0, 40.0);
}

TEST(WeightedSeizure, LinearThenSublinear)
{
    const auto at4 = seizurePropagationWeighted({1.0, 1.0, 1.0}, 4);
    const auto at11 = seizurePropagationWeighted({1.0, 1.0, 1.0}, 11);
    const auto at32 = seizurePropagationWeighted({1.0, 1.0, 1.0}, 32);
    // Linear from 4 to 11...
    EXPECT_NEAR(at11.weighted.count() / at4.weighted.count(), 11.0 / 4.0,
                0.15);
    // ...then sublinear growth.
    EXPECT_LT(at32.weighted.count() / at11.weighted.count(),
              0.85 * 32.0 / 11.0);
    EXPECT_GT(at32.weighted.count(), at11.weighted.count());
}

TEST(WeightedSeizure, DetectionHeavyWeightsWinBeyondTheKnee)
{
    // Past the network knee, hash-heavy weights suffer most.
    const auto detection_heavy =
        seizurePropagationWeighted({11.0, 1.0, 1.0}, 48);
    const auto hash_heavy =
        seizurePropagationWeighted({1.0, 3.0, 1.0}, 48);
    EXPECT_GT(detection_heavy.weighted.count(), hash_heavy.weighted.count());
}

} // namespace
} // namespace scalo::app
