# Empty dependencies file for query_concurrency_test.
# This may be replaced when dependencies are built.
