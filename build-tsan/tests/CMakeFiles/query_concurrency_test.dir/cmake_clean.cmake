file(REMOVE_RECURSE
  "CMakeFiles/query_concurrency_test.dir/query_concurrency_test.cpp.o"
  "CMakeFiles/query_concurrency_test.dir/query_concurrency_test.cpp.o.d"
  "query_concurrency_test"
  "query_concurrency_test.pdb"
  "query_concurrency_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_concurrency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
