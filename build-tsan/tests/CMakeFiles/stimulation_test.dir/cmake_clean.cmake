file(REMOVE_RECURSE
  "CMakeFiles/stimulation_test.dir/stimulation_test.cpp.o"
  "CMakeFiles/stimulation_test.dir/stimulation_test.cpp.o.d"
  "stimulation_test"
  "stimulation_test.pdb"
  "stimulation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stimulation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
