# Empty compiler generated dependencies file for stimulation_test.
# This may be replaced when dependencies are built.
