# Empty dependencies file for sim2_test.
# This may be replaced when dependencies are built.
