file(REMOVE_RECURSE
  "CMakeFiles/sim2_test.dir/sim2_test.cpp.o"
  "CMakeFiles/sim2_test.dir/sim2_test.cpp.o.d"
  "sim2_test"
  "sim2_test.pdb"
  "sim2_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
