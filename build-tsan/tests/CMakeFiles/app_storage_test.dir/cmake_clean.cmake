file(REMOVE_RECURSE
  "CMakeFiles/app_storage_test.dir/app_storage_test.cpp.o"
  "CMakeFiles/app_storage_test.dir/app_storage_test.cpp.o.d"
  "app_storage_test"
  "app_storage_test.pdb"
  "app_storage_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/app_storage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
