# Empty compiler generated dependencies file for app_storage_test.
# This may be replaced when dependencies are built.
