# Empty compiler generated dependencies file for charging_test.
# This may be replaced when dependencies are built.
