file(REMOVE_RECURSE
  "CMakeFiles/charging_test.dir/charging_test.cpp.o"
  "CMakeFiles/charging_test.dir/charging_test.cpp.o.d"
  "charging_test"
  "charging_test.pdb"
  "charging_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/charging_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
