# Empty dependencies file for compress2_test.
# This may be replaced when dependencies are built.
