file(REMOVE_RECURSE
  "CMakeFiles/compress2_test.dir/compress2_test.cpp.o"
  "CMakeFiles/compress2_test.dir/compress2_test.cpp.o.d"
  "compress2_test"
  "compress2_test.pdb"
  "compress2_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compress2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
