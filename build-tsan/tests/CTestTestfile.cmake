# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-tsan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-tsan/tests/app_storage_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/app_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/charging_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/codegen_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/compress2_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/compress_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/core_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/data_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/hw_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/ilp_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/integration_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/linalg_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/lsh_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/ml_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/net_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/property_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/query_concurrency_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/query_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/sched_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/signal_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/sim2_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/sim_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/stimulation_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/util_test[1]_include.cmake")
