# Empty compiler generated dependencies file for bench_fig8c_mi_scaling.
# This may be replaced when dependencies are built.
