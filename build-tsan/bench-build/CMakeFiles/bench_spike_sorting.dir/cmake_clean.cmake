file(REMOVE_RECURSE
  "../bench/bench_spike_sorting"
  "../bench/bench_spike_sorting.pdb"
  "CMakeFiles/bench_spike_sorting.dir/bench_spike_sorting.cpp.o"
  "CMakeFiles/bench_spike_sorting.dir/bench_spike_sorting.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_spike_sorting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
