# Empty compiler generated dependencies file for bench_spike_sorting.
# This may be replaced when dependencies are built.
