file(REMOVE_RECURSE
  "../bench/bench_fig14_hash_params"
  "../bench/bench_fig14_hash_params.pdb"
  "CMakeFiles/bench_fig14_hash_params.dir/bench_fig14_hash_params.cpp.o"
  "CMakeFiles/bench_fig14_hash_params.dir/bench_fig14_hash_params.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_hash_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
