# Empty compiler generated dependencies file for bench_fig14_hash_params.
# This may be replaced when dependencies are built.
