file(REMOVE_RECURSE
  "../bench/bench_table3_radios"
  "../bench/bench_table3_radios.pdb"
  "CMakeFiles/bench_table3_radios.dir/bench_table3_radios.cpp.o"
  "CMakeFiles/bench_table3_radios.dir/bench_table3_radios.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_radios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
