file(REMOVE_RECURSE
  "../bench/bench_fig15_error_delay"
  "../bench/bench_fig15_error_delay.pdb"
  "CMakeFiles/bench_fig15_error_delay.dir/bench_fig15_error_delay.cpp.o"
  "CMakeFiles/bench_fig15_error_delay.dir/bench_fig15_error_delay.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_error_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
