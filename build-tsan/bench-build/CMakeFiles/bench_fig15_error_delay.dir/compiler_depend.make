# Empty compiler generated dependencies file for bench_fig15_error_delay.
# This may be replaced when dependencies are built.
