# Empty dependencies file for bench_propagation_timing.
# This may be replaced when dependencies are built.
