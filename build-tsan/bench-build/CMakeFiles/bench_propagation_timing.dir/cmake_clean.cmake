file(REMOVE_RECURSE
  "../bench/bench_propagation_timing"
  "../bench/bench_propagation_timing.pdb"
  "CMakeFiles/bench_propagation_timing.dir/bench_propagation_timing.cpp.o"
  "CMakeFiles/bench_propagation_timing.dir/bench_propagation_timing.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_propagation_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
