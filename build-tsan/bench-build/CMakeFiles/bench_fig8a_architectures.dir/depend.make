# Empty dependencies file for bench_fig8a_architectures.
# This may be replaced when dependencies are built.
