file(REMOVE_RECURSE
  "../bench/bench_fig8a_architectures"
  "../bench/bench_fig8a_architectures.pdb"
  "CMakeFiles/bench_fig8a_architectures.dir/bench_fig8a_architectures.cpp.o"
  "CMakeFiles/bench_fig8a_architectures.dir/bench_fig8a_architectures.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8a_architectures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
