file(REMOVE_RECURSE
  "../bench/bench_fig9a_seizure_weighted"
  "../bench/bench_fig9a_seizure_weighted.pdb"
  "CMakeFiles/bench_fig9a_seizure_weighted.dir/bench_fig9a_seizure_weighted.cpp.o"
  "CMakeFiles/bench_fig9a_seizure_weighted.dir/bench_fig9a_seizure_weighted.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9a_seizure_weighted.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
