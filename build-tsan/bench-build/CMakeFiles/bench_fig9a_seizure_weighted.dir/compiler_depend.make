# Empty compiler generated dependencies file for bench_fig9a_seizure_weighted.
# This may be replaced when dependencies are built.
