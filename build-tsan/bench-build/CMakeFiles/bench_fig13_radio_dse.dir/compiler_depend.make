# Empty compiler generated dependencies file for bench_fig13_radio_dse.
# This may be replaced when dependencies are built.
