file(REMOVE_RECURSE
  "../bench/bench_fig13_radio_dse"
  "../bench/bench_fig13_radio_dse.pdb"
  "CMakeFiles/bench_fig13_radio_dse.dir/bench_fig13_radio_dse.cpp.o"
  "CMakeFiles/bench_fig13_radio_dse.dir/bench_fig13_radio_dse.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_radio_dse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
