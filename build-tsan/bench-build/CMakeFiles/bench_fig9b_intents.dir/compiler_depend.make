# Empty compiler generated dependencies file for bench_fig9b_intents.
# This may be replaced when dependencies are built.
