file(REMOVE_RECURSE
  "../bench/bench_fig9b_intents"
  "../bench/bench_fig9b_intents.pdb"
  "CMakeFiles/bench_fig9b_intents.dir/bench_fig9b_intents.cpp.o"
  "CMakeFiles/bench_fig9b_intents.dir/bench_fig9b_intents.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9b_intents.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
