file(REMOVE_RECURSE
  "../bench/bench_fig12_network_errors"
  "../bench/bench_fig12_network_errors.pdb"
  "CMakeFiles/bench_fig12_network_errors.dir/bench_fig12_network_errors.cpp.o"
  "CMakeFiles/bench_fig12_network_errors.dir/bench_fig12_network_errors.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_network_errors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
