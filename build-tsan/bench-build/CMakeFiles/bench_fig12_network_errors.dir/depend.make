# Empty dependencies file for bench_fig12_network_errors.
# This may be replaced when dependencies are built.
