file(REMOVE_RECURSE
  "../bench/bench_ablation_compression"
  "../bench/bench_ablation_compression.pdb"
  "CMakeFiles/bench_ablation_compression.dir/bench_ablation_compression.cpp.o"
  "CMakeFiles/bench_ablation_compression.dir/bench_ablation_compression.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
