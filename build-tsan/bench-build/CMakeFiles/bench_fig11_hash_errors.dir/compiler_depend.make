# Empty compiler generated dependencies file for bench_fig11_hash_errors.
# This may be replaced when dependencies are built.
