file(REMOVE_RECURSE
  "../bench/bench_fig11_hash_errors"
  "../bench/bench_fig11_hash_errors.pdb"
  "CMakeFiles/bench_fig11_hash_errors.dir/bench_fig11_hash_errors.cpp.o"
  "CMakeFiles/bench_fig11_hash_errors.dir/bench_fig11_hash_errors.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_hash_errors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
