file(REMOVE_RECURSE
  "../bench/bench_ablation_decomposition"
  "../bench/bench_ablation_decomposition.pdb"
  "CMakeFiles/bench_ablation_decomposition.dir/bench_ablation_decomposition.cpp.o"
  "CMakeFiles/bench_ablation_decomposition.dir/bench_ablation_decomposition.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_decomposition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
