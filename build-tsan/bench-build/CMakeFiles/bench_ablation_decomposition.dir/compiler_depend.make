# Empty compiler generated dependencies file for bench_ablation_decomposition.
# This may be replaced when dependencies are built.
