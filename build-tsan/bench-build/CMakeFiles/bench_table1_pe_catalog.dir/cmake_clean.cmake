file(REMOVE_RECURSE
  "../bench/bench_table1_pe_catalog"
  "../bench/bench_table1_pe_catalog.pdb"
  "CMakeFiles/bench_table1_pe_catalog.dir/bench_table1_pe_catalog.cpp.o"
  "CMakeFiles/bench_table1_pe_catalog.dir/bench_table1_pe_catalog.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_pe_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
