# Empty dependencies file for bench_fig10_queries.
# This may be replaced when dependencies are built.
