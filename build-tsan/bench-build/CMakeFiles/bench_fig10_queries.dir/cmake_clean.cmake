file(REMOVE_RECURSE
  "../bench/bench_fig10_queries"
  "../bench/bench_fig10_queries.pdb"
  "CMakeFiles/bench_fig10_queries.dir/bench_fig10_queries.cpp.o"
  "CMakeFiles/bench_fig10_queries.dir/bench_fig10_queries.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
