# Empty compiler generated dependencies file for bench_fig8b_similarity_scaling.
# This may be replaced when dependencies are built.
