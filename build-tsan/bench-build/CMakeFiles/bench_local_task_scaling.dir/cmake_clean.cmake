file(REMOVE_RECURSE
  "../bench/bench_local_task_scaling"
  "../bench/bench_local_task_scaling.pdb"
  "CMakeFiles/bench_local_task_scaling.dir/bench_local_task_scaling.cpp.o"
  "CMakeFiles/bench_local_task_scaling.dir/bench_local_task_scaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_local_task_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
