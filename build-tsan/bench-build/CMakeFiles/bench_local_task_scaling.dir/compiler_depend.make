# Empty compiler generated dependencies file for bench_local_task_scaling.
# This may be replaced when dependencies are built.
