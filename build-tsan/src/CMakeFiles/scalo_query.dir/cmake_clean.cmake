file(REMOVE_RECURSE
  "CMakeFiles/scalo_query.dir/scalo/query/codegen.cpp.o"
  "CMakeFiles/scalo_query.dir/scalo/query/codegen.cpp.o.d"
  "CMakeFiles/scalo_query.dir/scalo/query/language.cpp.o"
  "CMakeFiles/scalo_query.dir/scalo/query/language.cpp.o.d"
  "libscalo_query.a"
  "libscalo_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalo_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
