file(REMOVE_RECURSE
  "libscalo_query.a"
)
