# Empty dependencies file for scalo_query.
# This may be replaced when dependencies are built.
