file(REMOVE_RECURSE
  "libscalo_ml.a"
)
