# Empty dependencies file for scalo_ml.
# This may be replaced when dependencies are built.
