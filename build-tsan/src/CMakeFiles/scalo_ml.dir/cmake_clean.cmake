file(REMOVE_RECURSE
  "CMakeFiles/scalo_ml.dir/scalo/ml/kalman.cpp.o"
  "CMakeFiles/scalo_ml.dir/scalo/ml/kalman.cpp.o.d"
  "CMakeFiles/scalo_ml.dir/scalo/ml/nn.cpp.o"
  "CMakeFiles/scalo_ml.dir/scalo/ml/nn.cpp.o.d"
  "CMakeFiles/scalo_ml.dir/scalo/ml/svm.cpp.o"
  "CMakeFiles/scalo_ml.dir/scalo/ml/svm.cpp.o.d"
  "libscalo_ml.a"
  "libscalo_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalo_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
