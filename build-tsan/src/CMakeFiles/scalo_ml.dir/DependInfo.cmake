
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/scalo/ml/kalman.cpp" "src/CMakeFiles/scalo_ml.dir/scalo/ml/kalman.cpp.o" "gcc" "src/CMakeFiles/scalo_ml.dir/scalo/ml/kalman.cpp.o.d"
  "/root/repo/src/scalo/ml/nn.cpp" "src/CMakeFiles/scalo_ml.dir/scalo/ml/nn.cpp.o" "gcc" "src/CMakeFiles/scalo_ml.dir/scalo/ml/nn.cpp.o.d"
  "/root/repo/src/scalo/ml/svm.cpp" "src/CMakeFiles/scalo_ml.dir/scalo/ml/svm.cpp.o" "gcc" "src/CMakeFiles/scalo_ml.dir/scalo/ml/svm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/scalo_util.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/scalo_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
