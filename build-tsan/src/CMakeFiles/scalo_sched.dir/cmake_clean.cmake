file(REMOVE_RECURSE
  "CMakeFiles/scalo_sched.dir/scalo/sched/architectures.cpp.o"
  "CMakeFiles/scalo_sched.dir/scalo/sched/architectures.cpp.o.d"
  "CMakeFiles/scalo_sched.dir/scalo/sched/netplan.cpp.o"
  "CMakeFiles/scalo_sched.dir/scalo/sched/netplan.cpp.o.d"
  "CMakeFiles/scalo_sched.dir/scalo/sched/scheduler.cpp.o"
  "CMakeFiles/scalo_sched.dir/scalo/sched/scheduler.cpp.o.d"
  "CMakeFiles/scalo_sched.dir/scalo/sched/workloads.cpp.o"
  "CMakeFiles/scalo_sched.dir/scalo/sched/workloads.cpp.o.d"
  "libscalo_sched.a"
  "libscalo_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalo_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
