# Empty dependencies file for scalo_sched.
# This may be replaced when dependencies are built.
