file(REMOVE_RECURSE
  "libscalo_sched.a"
)
