
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/scalo/sched/architectures.cpp" "src/CMakeFiles/scalo_sched.dir/scalo/sched/architectures.cpp.o" "gcc" "src/CMakeFiles/scalo_sched.dir/scalo/sched/architectures.cpp.o.d"
  "/root/repo/src/scalo/sched/netplan.cpp" "src/CMakeFiles/scalo_sched.dir/scalo/sched/netplan.cpp.o" "gcc" "src/CMakeFiles/scalo_sched.dir/scalo/sched/netplan.cpp.o.d"
  "/root/repo/src/scalo/sched/scheduler.cpp" "src/CMakeFiles/scalo_sched.dir/scalo/sched/scheduler.cpp.o" "gcc" "src/CMakeFiles/scalo_sched.dir/scalo/sched/scheduler.cpp.o.d"
  "/root/repo/src/scalo/sched/workloads.cpp" "src/CMakeFiles/scalo_sched.dir/scalo/sched/workloads.cpp.o" "gcc" "src/CMakeFiles/scalo_sched.dir/scalo/sched/workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/scalo_util.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/scalo_hw.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/scalo_net.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/scalo_ilp.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/scalo_compress.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
