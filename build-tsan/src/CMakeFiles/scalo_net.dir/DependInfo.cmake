
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/scalo/net/channel.cpp" "src/CMakeFiles/scalo_net.dir/scalo/net/channel.cpp.o" "gcc" "src/CMakeFiles/scalo_net.dir/scalo/net/channel.cpp.o.d"
  "/root/repo/src/scalo/net/packet.cpp" "src/CMakeFiles/scalo_net.dir/scalo/net/packet.cpp.o" "gcc" "src/CMakeFiles/scalo_net.dir/scalo/net/packet.cpp.o.d"
  "/root/repo/src/scalo/net/radio.cpp" "src/CMakeFiles/scalo_net.dir/scalo/net/radio.cpp.o" "gcc" "src/CMakeFiles/scalo_net.dir/scalo/net/radio.cpp.o.d"
  "/root/repo/src/scalo/net/tdma.cpp" "src/CMakeFiles/scalo_net.dir/scalo/net/tdma.cpp.o" "gcc" "src/CMakeFiles/scalo_net.dir/scalo/net/tdma.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/scalo_util.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/scalo_compress.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
