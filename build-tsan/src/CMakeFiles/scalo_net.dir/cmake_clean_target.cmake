file(REMOVE_RECURSE
  "libscalo_net.a"
)
