# Empty dependencies file for scalo_net.
# This may be replaced when dependencies are built.
