file(REMOVE_RECURSE
  "CMakeFiles/scalo_net.dir/scalo/net/channel.cpp.o"
  "CMakeFiles/scalo_net.dir/scalo/net/channel.cpp.o.d"
  "CMakeFiles/scalo_net.dir/scalo/net/packet.cpp.o"
  "CMakeFiles/scalo_net.dir/scalo/net/packet.cpp.o.d"
  "CMakeFiles/scalo_net.dir/scalo/net/radio.cpp.o"
  "CMakeFiles/scalo_net.dir/scalo/net/radio.cpp.o.d"
  "CMakeFiles/scalo_net.dir/scalo/net/tdma.cpp.o"
  "CMakeFiles/scalo_net.dir/scalo/net/tdma.cpp.o.d"
  "libscalo_net.a"
  "libscalo_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalo_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
