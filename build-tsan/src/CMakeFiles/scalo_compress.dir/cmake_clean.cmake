file(REMOVE_RECURSE
  "CMakeFiles/scalo_compress.dir/scalo/compress/elias.cpp.o"
  "CMakeFiles/scalo_compress.dir/scalo/compress/elias.cpp.o.d"
  "CMakeFiles/scalo_compress.dir/scalo/compress/hcomp.cpp.o"
  "CMakeFiles/scalo_compress.dir/scalo/compress/hcomp.cpp.o.d"
  "CMakeFiles/scalo_compress.dir/scalo/compress/lic.cpp.o"
  "CMakeFiles/scalo_compress.dir/scalo/compress/lic.cpp.o.d"
  "CMakeFiles/scalo_compress.dir/scalo/compress/lz.cpp.o"
  "CMakeFiles/scalo_compress.dir/scalo/compress/lz.cpp.o.d"
  "CMakeFiles/scalo_compress.dir/scalo/compress/range_coder.cpp.o"
  "CMakeFiles/scalo_compress.dir/scalo/compress/range_coder.cpp.o.d"
  "libscalo_compress.a"
  "libscalo_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalo_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
