file(REMOVE_RECURSE
  "libscalo_compress.a"
)
