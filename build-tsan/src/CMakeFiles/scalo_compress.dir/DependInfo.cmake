
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/scalo/compress/elias.cpp" "src/CMakeFiles/scalo_compress.dir/scalo/compress/elias.cpp.o" "gcc" "src/CMakeFiles/scalo_compress.dir/scalo/compress/elias.cpp.o.d"
  "/root/repo/src/scalo/compress/hcomp.cpp" "src/CMakeFiles/scalo_compress.dir/scalo/compress/hcomp.cpp.o" "gcc" "src/CMakeFiles/scalo_compress.dir/scalo/compress/hcomp.cpp.o.d"
  "/root/repo/src/scalo/compress/lic.cpp" "src/CMakeFiles/scalo_compress.dir/scalo/compress/lic.cpp.o" "gcc" "src/CMakeFiles/scalo_compress.dir/scalo/compress/lic.cpp.o.d"
  "/root/repo/src/scalo/compress/lz.cpp" "src/CMakeFiles/scalo_compress.dir/scalo/compress/lz.cpp.o" "gcc" "src/CMakeFiles/scalo_compress.dir/scalo/compress/lz.cpp.o.d"
  "/root/repo/src/scalo/compress/range_coder.cpp" "src/CMakeFiles/scalo_compress.dir/scalo/compress/range_coder.cpp.o" "gcc" "src/CMakeFiles/scalo_compress.dir/scalo/compress/range_coder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/scalo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
