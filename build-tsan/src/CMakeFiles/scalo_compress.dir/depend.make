# Empty dependencies file for scalo_compress.
# This may be replaced when dependencies are built.
