
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/scalo/data/ieeg_synth.cpp" "src/CMakeFiles/scalo_data.dir/scalo/data/ieeg_synth.cpp.o" "gcc" "src/CMakeFiles/scalo_data.dir/scalo/data/ieeg_synth.cpp.o.d"
  "/root/repo/src/scalo/data/spike_synth.cpp" "src/CMakeFiles/scalo_data.dir/scalo/data/spike_synth.cpp.o" "gcc" "src/CMakeFiles/scalo_data.dir/scalo/data/spike_synth.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/scalo_util.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/scalo_signal.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
