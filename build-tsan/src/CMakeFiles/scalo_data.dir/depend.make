# Empty dependencies file for scalo_data.
# This may be replaced when dependencies are built.
