file(REMOVE_RECURSE
  "libscalo_data.a"
)
