file(REMOVE_RECURSE
  "CMakeFiles/scalo_data.dir/scalo/data/ieeg_synth.cpp.o"
  "CMakeFiles/scalo_data.dir/scalo/data/ieeg_synth.cpp.o.d"
  "CMakeFiles/scalo_data.dir/scalo/data/spike_synth.cpp.o"
  "CMakeFiles/scalo_data.dir/scalo/data/spike_synth.cpp.o.d"
  "libscalo_data.a"
  "libscalo_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalo_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
