file(REMOVE_RECURSE
  "libscalo_sim.a"
)
