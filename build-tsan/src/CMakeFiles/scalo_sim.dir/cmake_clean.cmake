file(REMOVE_RECURSE
  "CMakeFiles/scalo_sim.dir/scalo/sim/error_experiments.cpp.o"
  "CMakeFiles/scalo_sim.dir/scalo/sim/error_experiments.cpp.o.d"
  "CMakeFiles/scalo_sim.dir/scalo/sim/event_queue.cpp.o"
  "CMakeFiles/scalo_sim.dir/scalo/sim/event_queue.cpp.o.d"
  "CMakeFiles/scalo_sim.dir/scalo/sim/pipeline_sim.cpp.o"
  "CMakeFiles/scalo_sim.dir/scalo/sim/pipeline_sim.cpp.o.d"
  "CMakeFiles/scalo_sim.dir/scalo/sim/propagation_timing.cpp.o"
  "CMakeFiles/scalo_sim.dir/scalo/sim/propagation_timing.cpp.o.d"
  "CMakeFiles/scalo_sim.dir/scalo/sim/sntp.cpp.o"
  "CMakeFiles/scalo_sim.dir/scalo/sim/sntp.cpp.o.d"
  "libscalo_sim.a"
  "libscalo_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalo_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
