# Empty dependencies file for scalo_sim.
# This may be replaced when dependencies are built.
