
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/scalo/sim/error_experiments.cpp" "src/CMakeFiles/scalo_sim.dir/scalo/sim/error_experiments.cpp.o" "gcc" "src/CMakeFiles/scalo_sim.dir/scalo/sim/error_experiments.cpp.o.d"
  "/root/repo/src/scalo/sim/event_queue.cpp" "src/CMakeFiles/scalo_sim.dir/scalo/sim/event_queue.cpp.o" "gcc" "src/CMakeFiles/scalo_sim.dir/scalo/sim/event_queue.cpp.o.d"
  "/root/repo/src/scalo/sim/pipeline_sim.cpp" "src/CMakeFiles/scalo_sim.dir/scalo/sim/pipeline_sim.cpp.o" "gcc" "src/CMakeFiles/scalo_sim.dir/scalo/sim/pipeline_sim.cpp.o.d"
  "/root/repo/src/scalo/sim/propagation_timing.cpp" "src/CMakeFiles/scalo_sim.dir/scalo/sim/propagation_timing.cpp.o" "gcc" "src/CMakeFiles/scalo_sim.dir/scalo/sim/propagation_timing.cpp.o.d"
  "/root/repo/src/scalo/sim/sntp.cpp" "src/CMakeFiles/scalo_sim.dir/scalo/sim/sntp.cpp.o" "gcc" "src/CMakeFiles/scalo_sim.dir/scalo/sim/sntp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/scalo_util.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/scalo_hw.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/scalo_net.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/scalo_app.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/scalo_lsh.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/scalo_ml.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/scalo_linalg.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/scalo_data.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/scalo_signal.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/scalo_sched.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/scalo_compress.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/scalo_ilp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
