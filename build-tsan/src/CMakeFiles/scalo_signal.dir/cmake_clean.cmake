file(REMOVE_RECURSE
  "CMakeFiles/scalo_signal.dir/scalo/signal/butterworth.cpp.o"
  "CMakeFiles/scalo_signal.dir/scalo/signal/butterworth.cpp.o.d"
  "CMakeFiles/scalo_signal.dir/scalo/signal/distance.cpp.o"
  "CMakeFiles/scalo_signal.dir/scalo/signal/distance.cpp.o.d"
  "CMakeFiles/scalo_signal.dir/scalo/signal/features.cpp.o"
  "CMakeFiles/scalo_signal.dir/scalo/signal/features.cpp.o.d"
  "CMakeFiles/scalo_signal.dir/scalo/signal/fft.cpp.o"
  "CMakeFiles/scalo_signal.dir/scalo/signal/fft.cpp.o.d"
  "CMakeFiles/scalo_signal.dir/scalo/signal/window.cpp.o"
  "CMakeFiles/scalo_signal.dir/scalo/signal/window.cpp.o.d"
  "libscalo_signal.a"
  "libscalo_signal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalo_signal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
