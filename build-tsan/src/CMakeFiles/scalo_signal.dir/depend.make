# Empty dependencies file for scalo_signal.
# This may be replaced when dependencies are built.
