
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/scalo/signal/butterworth.cpp" "src/CMakeFiles/scalo_signal.dir/scalo/signal/butterworth.cpp.o" "gcc" "src/CMakeFiles/scalo_signal.dir/scalo/signal/butterworth.cpp.o.d"
  "/root/repo/src/scalo/signal/distance.cpp" "src/CMakeFiles/scalo_signal.dir/scalo/signal/distance.cpp.o" "gcc" "src/CMakeFiles/scalo_signal.dir/scalo/signal/distance.cpp.o.d"
  "/root/repo/src/scalo/signal/features.cpp" "src/CMakeFiles/scalo_signal.dir/scalo/signal/features.cpp.o" "gcc" "src/CMakeFiles/scalo_signal.dir/scalo/signal/features.cpp.o.d"
  "/root/repo/src/scalo/signal/fft.cpp" "src/CMakeFiles/scalo_signal.dir/scalo/signal/fft.cpp.o" "gcc" "src/CMakeFiles/scalo_signal.dir/scalo/signal/fft.cpp.o.d"
  "/root/repo/src/scalo/signal/window.cpp" "src/CMakeFiles/scalo_signal.dir/scalo/signal/window.cpp.o" "gcc" "src/CMakeFiles/scalo_signal.dir/scalo/signal/window.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/scalo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
