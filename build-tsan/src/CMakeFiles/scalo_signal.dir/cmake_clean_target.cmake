file(REMOVE_RECURSE
  "libscalo_signal.a"
)
