file(REMOVE_RECURSE
  "libscalo_util.a"
)
