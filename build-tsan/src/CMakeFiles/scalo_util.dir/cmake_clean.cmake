file(REMOVE_RECURSE
  "CMakeFiles/scalo_util.dir/scalo/util/aes.cpp.o"
  "CMakeFiles/scalo_util.dir/scalo/util/aes.cpp.o.d"
  "CMakeFiles/scalo_util.dir/scalo/util/bitstream.cpp.o"
  "CMakeFiles/scalo_util.dir/scalo/util/bitstream.cpp.o.d"
  "CMakeFiles/scalo_util.dir/scalo/util/crc32.cpp.o"
  "CMakeFiles/scalo_util.dir/scalo/util/crc32.cpp.o.d"
  "CMakeFiles/scalo_util.dir/scalo/util/logging.cpp.o"
  "CMakeFiles/scalo_util.dir/scalo/util/logging.cpp.o.d"
  "CMakeFiles/scalo_util.dir/scalo/util/rng.cpp.o"
  "CMakeFiles/scalo_util.dir/scalo/util/rng.cpp.o.d"
  "CMakeFiles/scalo_util.dir/scalo/util/stats.cpp.o"
  "CMakeFiles/scalo_util.dir/scalo/util/stats.cpp.o.d"
  "CMakeFiles/scalo_util.dir/scalo/util/table.cpp.o"
  "CMakeFiles/scalo_util.dir/scalo/util/table.cpp.o.d"
  "CMakeFiles/scalo_util.dir/scalo/util/thread_pool.cpp.o"
  "CMakeFiles/scalo_util.dir/scalo/util/thread_pool.cpp.o.d"
  "libscalo_util.a"
  "libscalo_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalo_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
