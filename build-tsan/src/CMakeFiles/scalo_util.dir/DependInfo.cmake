
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/scalo/util/aes.cpp" "src/CMakeFiles/scalo_util.dir/scalo/util/aes.cpp.o" "gcc" "src/CMakeFiles/scalo_util.dir/scalo/util/aes.cpp.o.d"
  "/root/repo/src/scalo/util/bitstream.cpp" "src/CMakeFiles/scalo_util.dir/scalo/util/bitstream.cpp.o" "gcc" "src/CMakeFiles/scalo_util.dir/scalo/util/bitstream.cpp.o.d"
  "/root/repo/src/scalo/util/crc32.cpp" "src/CMakeFiles/scalo_util.dir/scalo/util/crc32.cpp.o" "gcc" "src/CMakeFiles/scalo_util.dir/scalo/util/crc32.cpp.o.d"
  "/root/repo/src/scalo/util/logging.cpp" "src/CMakeFiles/scalo_util.dir/scalo/util/logging.cpp.o" "gcc" "src/CMakeFiles/scalo_util.dir/scalo/util/logging.cpp.o.d"
  "/root/repo/src/scalo/util/rng.cpp" "src/CMakeFiles/scalo_util.dir/scalo/util/rng.cpp.o" "gcc" "src/CMakeFiles/scalo_util.dir/scalo/util/rng.cpp.o.d"
  "/root/repo/src/scalo/util/stats.cpp" "src/CMakeFiles/scalo_util.dir/scalo/util/stats.cpp.o" "gcc" "src/CMakeFiles/scalo_util.dir/scalo/util/stats.cpp.o.d"
  "/root/repo/src/scalo/util/table.cpp" "src/CMakeFiles/scalo_util.dir/scalo/util/table.cpp.o" "gcc" "src/CMakeFiles/scalo_util.dir/scalo/util/table.cpp.o.d"
  "/root/repo/src/scalo/util/thread_pool.cpp" "src/CMakeFiles/scalo_util.dir/scalo/util/thread_pool.cpp.o" "gcc" "src/CMakeFiles/scalo_util.dir/scalo/util/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
