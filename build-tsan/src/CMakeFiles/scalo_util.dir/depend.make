# Empty dependencies file for scalo_util.
# This may be replaced when dependencies are built.
