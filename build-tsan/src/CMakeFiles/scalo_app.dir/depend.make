# Empty dependencies file for scalo_app.
# This may be replaced when dependencies are built.
