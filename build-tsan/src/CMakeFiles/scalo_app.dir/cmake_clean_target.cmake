file(REMOVE_RECURSE
  "libscalo_app.a"
)
