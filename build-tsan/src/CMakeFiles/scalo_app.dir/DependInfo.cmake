
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/scalo/app/movement.cpp" "src/CMakeFiles/scalo_app.dir/scalo/app/movement.cpp.o" "gcc" "src/CMakeFiles/scalo_app.dir/scalo/app/movement.cpp.o.d"
  "/root/repo/src/scalo/app/query.cpp" "src/CMakeFiles/scalo_app.dir/scalo/app/query.cpp.o" "gcc" "src/CMakeFiles/scalo_app.dir/scalo/app/query.cpp.o.d"
  "/root/repo/src/scalo/app/query_engine.cpp" "src/CMakeFiles/scalo_app.dir/scalo/app/query_engine.cpp.o" "gcc" "src/CMakeFiles/scalo_app.dir/scalo/app/query_engine.cpp.o.d"
  "/root/repo/src/scalo/app/seizure.cpp" "src/CMakeFiles/scalo_app.dir/scalo/app/seizure.cpp.o" "gcc" "src/CMakeFiles/scalo_app.dir/scalo/app/seizure.cpp.o.d"
  "/root/repo/src/scalo/app/spikesort.cpp" "src/CMakeFiles/scalo_app.dir/scalo/app/spikesort.cpp.o" "gcc" "src/CMakeFiles/scalo_app.dir/scalo/app/spikesort.cpp.o.d"
  "/root/repo/src/scalo/app/stimulation.cpp" "src/CMakeFiles/scalo_app.dir/scalo/app/stimulation.cpp.o" "gcc" "src/CMakeFiles/scalo_app.dir/scalo/app/stimulation.cpp.o.d"
  "/root/repo/src/scalo/app/store.cpp" "src/CMakeFiles/scalo_app.dir/scalo/app/store.cpp.o" "gcc" "src/CMakeFiles/scalo_app.dir/scalo/app/store.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/scalo_util.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/scalo_signal.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/scalo_lsh.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/scalo_ml.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/scalo_hw.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/scalo_net.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/scalo_data.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/scalo_sched.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/scalo_linalg.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/scalo_compress.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/scalo_ilp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
