file(REMOVE_RECURSE
  "CMakeFiles/scalo_app.dir/scalo/app/movement.cpp.o"
  "CMakeFiles/scalo_app.dir/scalo/app/movement.cpp.o.d"
  "CMakeFiles/scalo_app.dir/scalo/app/query.cpp.o"
  "CMakeFiles/scalo_app.dir/scalo/app/query.cpp.o.d"
  "CMakeFiles/scalo_app.dir/scalo/app/query_engine.cpp.o"
  "CMakeFiles/scalo_app.dir/scalo/app/query_engine.cpp.o.d"
  "CMakeFiles/scalo_app.dir/scalo/app/seizure.cpp.o"
  "CMakeFiles/scalo_app.dir/scalo/app/seizure.cpp.o.d"
  "CMakeFiles/scalo_app.dir/scalo/app/spikesort.cpp.o"
  "CMakeFiles/scalo_app.dir/scalo/app/spikesort.cpp.o.d"
  "CMakeFiles/scalo_app.dir/scalo/app/stimulation.cpp.o"
  "CMakeFiles/scalo_app.dir/scalo/app/stimulation.cpp.o.d"
  "CMakeFiles/scalo_app.dir/scalo/app/store.cpp.o"
  "CMakeFiles/scalo_app.dir/scalo/app/store.cpp.o.d"
  "libscalo_app.a"
  "libscalo_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalo_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
