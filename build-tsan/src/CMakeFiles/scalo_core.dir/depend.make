# Empty dependencies file for scalo_core.
# This may be replaced when dependencies are built.
