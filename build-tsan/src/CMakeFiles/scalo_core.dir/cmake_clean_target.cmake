file(REMOVE_RECURSE
  "libscalo_core.a"
)
