file(REMOVE_RECURSE
  "CMakeFiles/scalo_core.dir/scalo/core/system.cpp.o"
  "CMakeFiles/scalo_core.dir/scalo/core/system.cpp.o.d"
  "libscalo_core.a"
  "libscalo_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalo_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
