# Empty dependencies file for scalo_linalg.
# This may be replaced when dependencies are built.
