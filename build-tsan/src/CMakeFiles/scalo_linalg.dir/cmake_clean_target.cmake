file(REMOVE_RECURSE
  "libscalo_linalg.a"
)
