file(REMOVE_RECURSE
  "CMakeFiles/scalo_linalg.dir/scalo/linalg/matrix.cpp.o"
  "CMakeFiles/scalo_linalg.dir/scalo/linalg/matrix.cpp.o.d"
  "libscalo_linalg.a"
  "libscalo_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalo_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
