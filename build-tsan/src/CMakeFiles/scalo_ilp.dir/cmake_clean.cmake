file(REMOVE_RECURSE
  "CMakeFiles/scalo_ilp.dir/scalo/ilp/model.cpp.o"
  "CMakeFiles/scalo_ilp.dir/scalo/ilp/model.cpp.o.d"
  "CMakeFiles/scalo_ilp.dir/scalo/ilp/solver.cpp.o"
  "CMakeFiles/scalo_ilp.dir/scalo/ilp/solver.cpp.o.d"
  "libscalo_ilp.a"
  "libscalo_ilp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalo_ilp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
