file(REMOVE_RECURSE
  "libscalo_ilp.a"
)
