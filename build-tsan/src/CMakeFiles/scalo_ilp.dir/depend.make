# Empty dependencies file for scalo_ilp.
# This may be replaced when dependencies are built.
