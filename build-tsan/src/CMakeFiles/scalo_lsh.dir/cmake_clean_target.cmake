file(REMOVE_RECURSE
  "libscalo_lsh.a"
)
