file(REMOVE_RECURSE
  "CMakeFiles/scalo_lsh.dir/scalo/lsh/collision.cpp.o"
  "CMakeFiles/scalo_lsh.dir/scalo/lsh/collision.cpp.o.d"
  "CMakeFiles/scalo_lsh.dir/scalo/lsh/emd_hash.cpp.o"
  "CMakeFiles/scalo_lsh.dir/scalo/lsh/emd_hash.cpp.o.d"
  "CMakeFiles/scalo_lsh.dir/scalo/lsh/hasher.cpp.o"
  "CMakeFiles/scalo_lsh.dir/scalo/lsh/hasher.cpp.o.d"
  "CMakeFiles/scalo_lsh.dir/scalo/lsh/signature.cpp.o"
  "CMakeFiles/scalo_lsh.dir/scalo/lsh/signature.cpp.o.d"
  "CMakeFiles/scalo_lsh.dir/scalo/lsh/ssh.cpp.o"
  "CMakeFiles/scalo_lsh.dir/scalo/lsh/ssh.cpp.o.d"
  "libscalo_lsh.a"
  "libscalo_lsh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalo_lsh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
