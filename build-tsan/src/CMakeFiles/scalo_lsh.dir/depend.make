# Empty dependencies file for scalo_lsh.
# This may be replaced when dependencies are built.
