
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/scalo/lsh/collision.cpp" "src/CMakeFiles/scalo_lsh.dir/scalo/lsh/collision.cpp.o" "gcc" "src/CMakeFiles/scalo_lsh.dir/scalo/lsh/collision.cpp.o.d"
  "/root/repo/src/scalo/lsh/emd_hash.cpp" "src/CMakeFiles/scalo_lsh.dir/scalo/lsh/emd_hash.cpp.o" "gcc" "src/CMakeFiles/scalo_lsh.dir/scalo/lsh/emd_hash.cpp.o.d"
  "/root/repo/src/scalo/lsh/hasher.cpp" "src/CMakeFiles/scalo_lsh.dir/scalo/lsh/hasher.cpp.o" "gcc" "src/CMakeFiles/scalo_lsh.dir/scalo/lsh/hasher.cpp.o.d"
  "/root/repo/src/scalo/lsh/signature.cpp" "src/CMakeFiles/scalo_lsh.dir/scalo/lsh/signature.cpp.o" "gcc" "src/CMakeFiles/scalo_lsh.dir/scalo/lsh/signature.cpp.o.d"
  "/root/repo/src/scalo/lsh/ssh.cpp" "src/CMakeFiles/scalo_lsh.dir/scalo/lsh/ssh.cpp.o" "gcc" "src/CMakeFiles/scalo_lsh.dir/scalo/lsh/ssh.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/scalo_util.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/scalo_signal.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
