
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/scalo/hw/charging.cpp" "src/CMakeFiles/scalo_hw.dir/scalo/hw/charging.cpp.o" "gcc" "src/CMakeFiles/scalo_hw.dir/scalo/hw/charging.cpp.o.d"
  "/root/repo/src/scalo/hw/fabric.cpp" "src/CMakeFiles/scalo_hw.dir/scalo/hw/fabric.cpp.o" "gcc" "src/CMakeFiles/scalo_hw.dir/scalo/hw/fabric.cpp.o.d"
  "/root/repo/src/scalo/hw/nvm.cpp" "src/CMakeFiles/scalo_hw.dir/scalo/hw/nvm.cpp.o" "gcc" "src/CMakeFiles/scalo_hw.dir/scalo/hw/nvm.cpp.o.d"
  "/root/repo/src/scalo/hw/pe.cpp" "src/CMakeFiles/scalo_hw.dir/scalo/hw/pe.cpp.o" "gcc" "src/CMakeFiles/scalo_hw.dir/scalo/hw/pe.cpp.o.d"
  "/root/repo/src/scalo/hw/switches.cpp" "src/CMakeFiles/scalo_hw.dir/scalo/hw/switches.cpp.o" "gcc" "src/CMakeFiles/scalo_hw.dir/scalo/hw/switches.cpp.o.d"
  "/root/repo/src/scalo/hw/thermal.cpp" "src/CMakeFiles/scalo_hw.dir/scalo/hw/thermal.cpp.o" "gcc" "src/CMakeFiles/scalo_hw.dir/scalo/hw/thermal.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/scalo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
