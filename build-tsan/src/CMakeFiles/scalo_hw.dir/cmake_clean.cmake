file(REMOVE_RECURSE
  "CMakeFiles/scalo_hw.dir/scalo/hw/charging.cpp.o"
  "CMakeFiles/scalo_hw.dir/scalo/hw/charging.cpp.o.d"
  "CMakeFiles/scalo_hw.dir/scalo/hw/fabric.cpp.o"
  "CMakeFiles/scalo_hw.dir/scalo/hw/fabric.cpp.o.d"
  "CMakeFiles/scalo_hw.dir/scalo/hw/nvm.cpp.o"
  "CMakeFiles/scalo_hw.dir/scalo/hw/nvm.cpp.o.d"
  "CMakeFiles/scalo_hw.dir/scalo/hw/pe.cpp.o"
  "CMakeFiles/scalo_hw.dir/scalo/hw/pe.cpp.o.d"
  "CMakeFiles/scalo_hw.dir/scalo/hw/switches.cpp.o"
  "CMakeFiles/scalo_hw.dir/scalo/hw/switches.cpp.o.d"
  "CMakeFiles/scalo_hw.dir/scalo/hw/thermal.cpp.o"
  "CMakeFiles/scalo_hw.dir/scalo/hw/thermal.cpp.o.d"
  "libscalo_hw.a"
  "libscalo_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalo_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
