file(REMOVE_RECURSE
  "libscalo_hw.a"
)
