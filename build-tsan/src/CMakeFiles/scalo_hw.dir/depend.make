# Empty dependencies file for scalo_hw.
# This may be replaced when dependencies are built.
