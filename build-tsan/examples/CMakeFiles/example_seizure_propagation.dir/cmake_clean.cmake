file(REMOVE_RECURSE
  "CMakeFiles/example_seizure_propagation.dir/seizure_propagation.cpp.o"
  "CMakeFiles/example_seizure_propagation.dir/seizure_propagation.cpp.o.d"
  "example_seizure_propagation"
  "example_seizure_propagation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_seizure_propagation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
