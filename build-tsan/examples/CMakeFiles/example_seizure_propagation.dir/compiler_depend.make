# Empty compiler generated dependencies file for example_seizure_propagation.
# This may be replaced when dependencies are built.
