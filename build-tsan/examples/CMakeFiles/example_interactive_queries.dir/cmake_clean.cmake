file(REMOVE_RECURSE
  "CMakeFiles/example_interactive_queries.dir/interactive_queries.cpp.o"
  "CMakeFiles/example_interactive_queries.dir/interactive_queries.cpp.o.d"
  "example_interactive_queries"
  "example_interactive_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_interactive_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
