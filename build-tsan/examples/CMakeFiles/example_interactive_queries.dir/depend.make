# Empty dependencies file for example_interactive_queries.
# This may be replaced when dependencies are built.
