# Empty dependencies file for example_external_offload.
# This may be replaced when dependencies are built.
