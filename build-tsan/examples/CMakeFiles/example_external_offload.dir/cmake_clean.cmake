file(REMOVE_RECURSE
  "CMakeFiles/example_external_offload.dir/external_offload.cpp.o"
  "CMakeFiles/example_external_offload.dir/external_offload.cpp.o.d"
  "example_external_offload"
  "example_external_offload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_external_offload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
