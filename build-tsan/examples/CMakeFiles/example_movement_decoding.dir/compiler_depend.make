# Empty compiler generated dependencies file for example_movement_decoding.
# This may be replaced when dependencies are built.
