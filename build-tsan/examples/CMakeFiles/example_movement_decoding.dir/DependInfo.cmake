
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/movement_decoding.cpp" "examples/CMakeFiles/example_movement_decoding.dir/movement_decoding.cpp.o" "gcc" "examples/CMakeFiles/example_movement_decoding.dir/movement_decoding.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/scalo_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/scalo_sim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/scalo_query.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/scalo_app.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/scalo_lsh.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/scalo_ml.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/scalo_linalg.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/scalo_data.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/scalo_signal.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/scalo_sched.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/scalo_hw.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/scalo_net.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/scalo_compress.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/scalo_ilp.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/scalo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
