file(REMOVE_RECURSE
  "CMakeFiles/example_movement_decoding.dir/movement_decoding.cpp.o"
  "CMakeFiles/example_movement_decoding.dir/movement_decoding.cpp.o.d"
  "example_movement_decoding"
  "example_movement_decoding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_movement_decoding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
