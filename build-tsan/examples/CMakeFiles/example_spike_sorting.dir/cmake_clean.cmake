file(REMOVE_RECURSE
  "CMakeFiles/example_spike_sorting.dir/spike_sorting.cpp.o"
  "CMakeFiles/example_spike_sorting.dir/spike_sorting.cpp.o.d"
  "example_spike_sorting"
  "example_spike_sorting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_spike_sorting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
