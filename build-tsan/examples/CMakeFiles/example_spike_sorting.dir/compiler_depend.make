# Empty compiler generated dependencies file for example_spike_sorting.
# This may be replaced when dependencies are built.
