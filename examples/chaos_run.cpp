/**
 * @file
 * Fault-injection demo: run the 4-node Section 6 deployment
 * (seizure detection + hash-similarity propagation tracking) while a
 * FaultPlan breaks things, and print the failure / detection /
 * reschedule / QoS timeline the runtime produces.
 *
 * Scenarios (--scenario):
 *   crash       node 1 crashes at 5/6 of the run and stays down
 *   dropout     the shared radio is gone for 150 ms mid-run
 *   nvm         node 2's NVM fails 30% of its appends
 *   throttle    node 0 runs 3x slower over the middle third
 *   combined    all of the above
 *   partition   (hierarchical, 12 nodes / 3 clusters) cluster 1 is
 *               severed from the backbone over the middle third;
 *               its TDMA keeps running, forwards are dropped, the
 *               backbone re-stitches around it, queries degrade to
 *               cluster-granular partial coverage, and the heal
 *               restores everything
 *   relay-crash (hierarchical) cluster 1's relay dies mid-run;
 *               relay duty migrates, the failover is detected at
 *               backbone cadence, and the backbone re-stitches
 *
 * Pass `--trace out.json` to export a Chrome trace-event JSON and
 * watch the FaultInjected / NodeDown / Resched (plus, on the
 * hierarchical scenarios, RelayFailover / PartitionStart /
 * PartitionHealed / BackboneRestitch) markers next to the pipeline
 * lanes in Perfetto (ui.perfetto.dev). `--parallel` runs the
 * multi-cluster engine on worker threads (trace stays identical).
 *
 * Exits 0 only when the scenario's degradation contract held (e.g.
 * the crash was detected, work was rescheduled, and windows kept
 * completing afterwards).
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "scalo/core/system.hpp"
#include "scalo/sched/workloads.hpp"
#include "scalo/util/table.hpp"

namespace {

struct Args
{
    std::string scenario = "crash";
    std::string tracePath;
    double durationMs = 6000.0;
    bool parallel = false;
};

bool
parseArgs(int argc, char **argv, Args &args)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--scenario") == 0 && i + 1 < argc) {
            args.scenario = argv[++i];
        } else if (std::strcmp(argv[i], "--trace") == 0 &&
                   i + 1 < argc) {
            args.tracePath = argv[++i];
        } else if (std::strcmp(argv[i], "--duration") == 0 &&
                   i + 1 < argc) {
            args.durationMs = std::atof(argv[++i]);
        } else if (std::strcmp(argv[i], "--parallel") == 0) {
            args.parallel = true;
        } else {
            return false;
        }
    }
    return args.durationMs > 0.0;
}

/**
 * The partition scenario's query-side demo: ingest one window per
 * node, run the same full-range query with cluster 1 unreachable and
 * again after the heal, and print the cluster-granular coverage the
 * engine reports for each. Returns true when the degraded execution
 * answered exactly the two reachable clusters and the healed one
 * answered everything.
 */
bool
queryCoverageDemo(const scalo::core::ScaloSystem &system,
                  std::size_t partitioned_cluster)
{
    using namespace scalo;
    constexpr std::size_t kWindowSamples = 32;
    app::QueryEngine engine =
        system.makeQueryEngine(kWindowSamples);
    const std::vector<double> window(kWindowSamples, 0.25);
    for (std::size_t node = 0; node < engine.nodeCount(); ++node)
        engine.ingest(static_cast<NodeId>(node),
                      /*timestamp_us=*/1000 * (node + 1),
                      /*electrode=*/0, window,
                      /*seizure_flagged=*/false);

    const auto print_coverage = [](const char *label,
                                   const app::QueryExecution &ex) {
        std::printf("  %s: %zu/%zu shards", label,
                    ex.coverage.answeredShards,
                    ex.coverage.totalShards);
        for (const app::ClusterCoverage &slice :
             ex.coverage.clusters)
            std::printf("  cluster %zu: %zu/%zu", slice.cluster,
                        slice.answeredShards, slice.totalShards);
        std::printf("%s\n", ex.coverage.complete()
                                ? "  (complete)"
                                : "  (partial)");
    };

    engine.setClusterDown(partitioned_cluster);
    const app::QueryExecution degraded =
        engine.execute(app::Query{});
    print_coverage("partitioned", degraded);

    engine.setClusterDown(partitioned_cluster, /*down=*/false);
    const app::QueryExecution healed = engine.execute(app::Query{});
    print_coverage("healed     ", healed);

    bool ok = !degraded.coverage.complete() &&
              healed.coverage.complete();
    for (const app::ClusterCoverage &slice :
         degraded.coverage.clusters)
        ok = ok && (slice.cluster == partitioned_cluster
                        ? slice.answeredShards == 0
                        : slice.complete());
    return ok;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace scalo;
    using namespace scalo::units::literals;

    Args args;
    if (!parseArgs(argc, argv, args)) {
        std::printf("usage: %s [--scenario "
                    "crash|dropout|nvm|throttle|combined|partition|"
                    "relay-crash] "
                    "[--duration ms] [--trace out.json] "
                    "[--parallel]\n",
                    argv[0]);
        return 2;
    }

    // The hierarchical scenarios exercise the clustered fabric: 12
    // nodes in 3 TDMA clusters bridged by the relay backbone. The
    // flat scenarios keep the original 4-node deployment.
    const bool wantPartition = args.scenario == "partition";
    const bool wantRelayCrash = args.scenario == "relay-crash";
    const bool hierarchical = wantPartition || wantRelayCrash;

    core::ScaloConfig config;
    config.nodes = hierarchical ? 12 : 4;
    config.clusters = hierarchical ? 3 : 1;
    core::ScaloSystem system(config);
    std::printf("%s\n", system.describe().c_str());

    // The Section 6 seizure-propagation deployment: local detection
    // on every implant plus the all-to-all hash exchange that tracks
    // propagation, exchange prioritised.
    const std::vector<sched::FlowSpec> flows{
        sched::seizureDetectionFlow(),
        sched::hashSimilarityFlow(net::Pattern::AllToAll)};
    const std::vector<double> priorities{1.0, 3.0};
    const sched::Schedule schedule = system.deploy(flows, priorities);
    if (!schedule.feasible) {
        std::printf("deployment failed: %s\n",
                    schedule.reason.c_str());
        return 1;
    }

    // Assemble the scenario's fault plan against the run length.
    const units::Millis duration{args.durationMs};
    const bool wantCrash =
        args.scenario == "crash" || args.scenario == "combined";
    const bool wantDropout =
        args.scenario == "dropout" || args.scenario == "combined";
    const bool wantNvm =
        args.scenario == "nvm" || args.scenario == "combined";
    const bool wantThrottle =
        args.scenario == "throttle" || args.scenario == "combined";
    if (!wantCrash && !wantDropout && !wantNvm && !wantThrottle &&
        !hierarchical) {
        std::printf("unknown scenario '%s'\n",
                    args.scenario.c_str());
        return 2;
    }

    // The cluster the hierarchical scenarios break (balanced(12, 3)
    // puts nodes 4-7 here, relay duty starting on node 4).
    constexpr std::uint32_t kVictimCluster = 1;

    sim::FaultPlan plan;
    const units::Millis crash_at = duration * (5.0 / 6.0);
    if (wantCrash)
        plan.crashes.push_back({/*node=*/1, crash_at});
    if (wantDropout)
        plan.dropouts.push_back(
            {duration * 0.5, duration * 0.5 + 150.0_ms});
    if (wantNvm)
        plan.nvmFailures.push_back({/*node=*/2, /*probability=*/0.3});
    if (wantThrottle)
        plan.throttles.push_back({/*node=*/0, duration * (1.0 / 3.0),
                                  duration * (2.0 / 3.0),
                                  /*slowdown=*/3.0});
    const units::Millis partition_from = duration * (1.0 / 3.0);
    const units::Millis partition_to = duration * (2.0 / 3.0);
    if (wantPartition)
        plan.partitions.push_back(
            {kVictimCluster, partition_from, partition_to});
    if (wantRelayCrash)
        plan.relayCrashes.push_back(
            {kVictimCluster, duration * (1.0 / 3.0)});

    std::printf("\nscenario '%s': %zu fault(s) over %.0f ms\n",
                args.scenario.c_str(), plan.size(),
                duration.count());
    if (wantCrash)
        std::printf("  t=%7.1f ms  node 1 crashes (stays down)\n",
                    crash_at.count());
    if (wantDropout)
        std::printf("  t=%7.1f ms  radio dropout for 150 ms\n",
                    (duration * 0.5).count());
    if (wantNvm)
        std::printf("  (whole run)  node 2 NVM fails 30%% of "
                    "appends\n");
    if (wantThrottle)
        std::printf("  t=%7.1f ms  node 0 throttled 3x until "
                    "t=%.1f ms\n",
                    (duration * (1.0 / 3.0)).count(),
                    (duration * (2.0 / 3.0)).count());
    if (wantPartition)
        std::printf("  t=%7.1f ms  cluster %u severed from the "
                    "backbone until t=%.1f ms\n",
                    partition_from.count(), kVictimCluster,
                    partition_to.count());
    if (wantRelayCrash)
        std::printf("  t=%7.1f ms  cluster %u's relay crashes "
                    "(stays down; duty migrates)\n",
                    (duration * (1.0 / 3.0)).count(),
                    kVictimCluster);

    core::SimulateOptions options;
    options.duration = duration;
    options.tracePath = args.tracePath;
    options.faults = plan;
    options.priorities = priorities;
    options.parallel = args.parallel;
    const sim::SystemSimResult result =
        system.simulate(flows, schedule, options);

    // Failure / detection / reschedule timeline.
    std::printf("\ntimeline:\n");
    for (const sim::NodeDownEvent &down : result.nodesDown) {
        if (down.crashedAt.count() >= 0.0)
            std::printf("  t=%7.1f ms  node %u declared dead "
                        "(crashed t=%.1f ms, detection latency "
                        "%.1f ms)\n",
                        down.detectedAt.count(), down.node,
                        down.crashedAt.count(),
                        (down.detectedAt - down.crashedAt).count());
        else
            std::printf("  t=%7.1f ms  node %u declared dead "
                        "(no crash injected: false positive)\n",
                        down.detectedAt.count(), down.node);
    }
    for (const sim::RescheduleEvent &resched : result.reschedules) {
        std::string dead;
        for (const std::size_t n : resched.deadNodes)
            dead += (dead.empty() ? "" : ",") + std::to_string(n);
        std::printf("  t=%7.1f ms  reschedule via %s around {%s}: "
                    "throughput %.2f -> %.2f Mbps, peak power "
                    "%.2f -> %.2f mW\n",
                    resched.at.count(),
                    resched.viaIlp ? "ILP" : "greedy repair",
                    dead.c_str(), resched.throughputBefore.count(),
                    resched.throughputAfter.count(),
                    resched.maxNodePowerBefore.count(),
                    resched.maxNodePowerAfter.count());
    }
    for (const sim::PartitionEvent &partition : result.partitions)
        std::printf("  t=%7.1f ms  cluster %zu %s\n",
                    partition.at.count(), partition.cluster,
                    partition.healed
                        ? "rejoined the backbone (partition healed)"
                        : "declared partitioned (backbone silence)");
    for (const sim::RestitchEvent &restitch : result.restitches) {
        std::string unreachable;
        for (const std::size_t c : restitch.unreachableClusters)
            unreachable +=
                (unreachable.empty() ? "" : ",") + std::to_string(c);
        std::printf("  t=%7.1f ms  backbone re-stitched via %s "
                    "(unreachable clusters {%s}): throughput "
                    "%.2f -> %.2f Mbps\n",
                    restitch.at.count(),
                    restitch.viaIlp ? "ILP" : "greedy repair",
                    unreachable.c_str(),
                    restitch.throughputBefore.count(),
                    restitch.throughputAfter.count());
    }
    if (result.nodesDown.empty() && result.reschedules.empty() &&
        result.partitions.empty() && result.restitches.empty())
        std::printf("  (no nodes declared dead)\n");
    std::printf("  exchange timeouts: %llu, packets lost after "
                "retries: %llu, NVM write failures: %llu, relay "
                "forwards dropped: %llu\n",
                static_cast<unsigned long long>(
                    result.exchangeTimeouts),
                static_cast<unsigned long long>(result.packetsLost),
                static_cast<unsigned long long>(
                    result.nvmWriteFailures),
                static_cast<unsigned long long>(
                    result.relayForwardsDropped));

    // The query path's view of the partition: cluster-granular
    // coverage while the cluster is unreachable, full coverage after
    // the heal.
    bool coverage_ok = true;
    if (wantPartition) {
        std::printf("\nquery coverage under the partition:\n");
        coverage_ok = queryCoverageDemo(system, kVictimCluster);
    }

    // Degraded QoS summary.
    std::printf("\n");
    TextTable table({"flow", "submitted", "completed", "dropped",
                     "mean resp (ms)", "max resp (ms)", "retx",
                     "sustainable"});
    for (const sim::FlowSimStats &flow : result.flows) {
        table.addRow({flow.flow,
                      std::to_string(flow.windowsSubmitted),
                      std::to_string(flow.windowsCompleted),
                      std::to_string(flow.windowsDropped),
                      TextTable::num(flow.meanResponse.count(), 3),
                      TextTable::num(flow.maxResponse.count(), 3),
                      std::to_string(flow.retransmissions),
                      flow.sustainable ? "yes" : "degraded"});
    }
    table.print();
    if (!args.tracePath.empty())
        std::printf("\ntrace written to %s (open in Perfetto; look "
                    "for fault-injected / node-down / resched "
                    "instants)\n",
                    args.tracePath.c_str());

    // Scenario contracts: the run only "passes" when the degradation
    // machinery actually engaged and the system kept producing.
    bool ok = true;
    for (const sim::FlowSimStats &flow : result.flows)
        ok = ok && flow.windowsCompleted > 0;
    if (wantCrash) {
        bool node1_detected = false;
        for (const sim::NodeDownEvent &down : result.nodesDown)
            node1_detected = node1_detected || down.node == 1;
        ok = ok && node1_detected && !result.reschedules.empty();
    }
    if (wantDropout)
        ok = ok && result.packetsLost > 0;
    if (wantNvm)
        ok = ok && result.nvmWriteFailures > 0;
    if (wantPartition) {
        // The degradation contract of a backbone partition: forwards
        // were dropped at the severed link, the silence was declared
        // and later healed, the backbone re-stitched, and queries
        // degraded to (then recovered from) partial coverage.
        bool declared = false;
        bool healed = false;
        for (const sim::PartitionEvent &partition :
             result.partitions) {
            if (partition.cluster != kVictimCluster)
                continue;
            declared = declared || !partition.healed;
            healed = healed || partition.healed;
        }
        ok = ok && result.relayForwardsDropped > 0 && declared &&
             healed && !result.restitches.empty() && coverage_ok;
    }
    if (wantRelayCrash) {
        // Relay failover contract: the old relay was declared dead,
        // duty migrated (the run kept completing windows), and the
        // backbone re-stitched around the death.
        bool relay_dead = false;
        for (const sim::NodeDownEvent &down : result.nodesDown)
            relay_dead = relay_dead || down.node == 4;
        ok = ok && relay_dead && !result.restitches.empty();
    }
    std::printf("\n%s\n", ok ? "scenario contract held"
                             : "SCENARIO CONTRACT VIOLATED");
    return ok ? 0 : 1;
}
