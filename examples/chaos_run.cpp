/**
 * @file
 * Fault-injection demo: run the 4-node Section 6 deployment
 * (seizure detection + hash-similarity propagation tracking) while a
 * FaultPlan breaks things, and print the failure / detection /
 * reschedule / QoS timeline the runtime produces.
 *
 * Scenarios (--scenario):
 *   crash     node 1 crashes at 5/6 of the run and stays down
 *   dropout   the shared radio is gone for 150 ms mid-run
 *   nvm       node 2's NVM fails 30% of its appends
 *   throttle  node 0 runs 3x slower over the middle third
 *   combined  all of the above
 *
 * Pass `--trace out.json` to export a Chrome trace-event JSON and
 * watch the FaultInjected / NodeDown / Resched markers next to the
 * pipeline lanes in Perfetto (ui.perfetto.dev).
 *
 * Exits 0 only when the scenario's degradation contract held (e.g.
 * the crash was detected, work was rescheduled, and windows kept
 * completing afterwards).
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "scalo/core/system.hpp"
#include "scalo/sched/workloads.hpp"
#include "scalo/util/table.hpp"

namespace {

struct Args
{
    std::string scenario = "crash";
    std::string tracePath;
    double durationMs = 6000.0;
};

bool
parseArgs(int argc, char **argv, Args &args)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--scenario") == 0 && i + 1 < argc) {
            args.scenario = argv[++i];
        } else if (std::strcmp(argv[i], "--trace") == 0 &&
                   i + 1 < argc) {
            args.tracePath = argv[++i];
        } else if (std::strcmp(argv[i], "--duration") == 0 &&
                   i + 1 < argc) {
            args.durationMs = std::atof(argv[++i]);
        } else {
            return false;
        }
    }
    return args.durationMs > 0.0;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace scalo;
    using namespace scalo::units::literals;

    Args args;
    if (!parseArgs(argc, argv, args)) {
        std::printf("usage: %s [--scenario "
                    "crash|dropout|nvm|throttle|combined] "
                    "[--duration ms] [--trace out.json]\n",
                    argv[0]);
        return 2;
    }

    core::ScaloConfig config;
    config.nodes = 4;
    core::ScaloSystem system(config);
    std::printf("%s\n", system.describe().c_str());

    // The Section 6 seizure-propagation deployment: local detection
    // on every implant plus the all-to-all hash exchange that tracks
    // propagation, exchange prioritised.
    const std::vector<sched::FlowSpec> flows{
        sched::seizureDetectionFlow(),
        sched::hashSimilarityFlow(net::Pattern::AllToAll)};
    const std::vector<double> priorities{1.0, 3.0};
    const sched::Schedule schedule = system.deploy(flows, priorities);
    if (!schedule.feasible) {
        std::printf("deployment failed: %s\n",
                    schedule.reason.c_str());
        return 1;
    }

    // Assemble the scenario's fault plan against the run length.
    const units::Millis duration{args.durationMs};
    const bool wantCrash =
        args.scenario == "crash" || args.scenario == "combined";
    const bool wantDropout =
        args.scenario == "dropout" || args.scenario == "combined";
    const bool wantNvm =
        args.scenario == "nvm" || args.scenario == "combined";
    const bool wantThrottle =
        args.scenario == "throttle" || args.scenario == "combined";
    if (!wantCrash && !wantDropout && !wantNvm && !wantThrottle) {
        std::printf("unknown scenario '%s'\n",
                    args.scenario.c_str());
        return 2;
    }

    sim::FaultPlan plan;
    const units::Millis crash_at = duration * (5.0 / 6.0);
    if (wantCrash)
        plan.crashes.push_back({/*node=*/1, crash_at});
    if (wantDropout)
        plan.dropouts.push_back(
            {duration * 0.5, duration * 0.5 + 150.0_ms});
    if (wantNvm)
        plan.nvmFailures.push_back({/*node=*/2, /*probability=*/0.3});
    if (wantThrottle)
        plan.throttles.push_back({/*node=*/0, duration * (1.0 / 3.0),
                                  duration * (2.0 / 3.0),
                                  /*slowdown=*/3.0});

    std::printf("\nscenario '%s': %zu fault(s) over %.0f ms\n",
                args.scenario.c_str(), plan.size(),
                duration.count());
    if (wantCrash)
        std::printf("  t=%7.1f ms  node 1 crashes (stays down)\n",
                    crash_at.count());
    if (wantDropout)
        std::printf("  t=%7.1f ms  radio dropout for 150 ms\n",
                    (duration * 0.5).count());
    if (wantNvm)
        std::printf("  (whole run)  node 2 NVM fails 30%% of "
                    "appends\n");
    if (wantThrottle)
        std::printf("  t=%7.1f ms  node 0 throttled 3x until "
                    "t=%.1f ms\n",
                    (duration * (1.0 / 3.0)).count(),
                    (duration * (2.0 / 3.0)).count());

    core::SimulateOptions options;
    options.duration = duration;
    options.tracePath = args.tracePath;
    options.faults = plan;
    options.priorities = priorities;
    const sim::SystemSimResult result =
        system.simulate(flows, schedule, options);

    // Failure / detection / reschedule timeline.
    std::printf("\ntimeline:\n");
    for (const sim::NodeDownEvent &down : result.nodesDown) {
        if (down.crashedAt.count() >= 0.0)
            std::printf("  t=%7.1f ms  node %u declared dead "
                        "(crashed t=%.1f ms, detection latency "
                        "%.1f ms)\n",
                        down.detectedAt.count(), down.node,
                        down.crashedAt.count(),
                        (down.detectedAt - down.crashedAt).count());
        else
            std::printf("  t=%7.1f ms  node %u declared dead "
                        "(no crash injected: false positive)\n",
                        down.detectedAt.count(), down.node);
    }
    for (const sim::RescheduleEvent &resched : result.reschedules) {
        std::string dead;
        for (const std::size_t n : resched.deadNodes)
            dead += (dead.empty() ? "" : ",") + std::to_string(n);
        std::printf("  t=%7.1f ms  reschedule via %s around {%s}: "
                    "throughput %.2f -> %.2f Mbps, peak power "
                    "%.2f -> %.2f mW\n",
                    resched.at.count(),
                    resched.viaIlp ? "ILP" : "greedy repair",
                    dead.c_str(), resched.throughputBefore.count(),
                    resched.throughputAfter.count(),
                    resched.maxNodePowerBefore.count(),
                    resched.maxNodePowerAfter.count());
    }
    if (result.nodesDown.empty() && result.reschedules.empty())
        std::printf("  (no nodes declared dead)\n");
    std::printf("  exchange timeouts: %llu, packets lost after "
                "retries: %llu, NVM write failures: %llu\n",
                static_cast<unsigned long long>(
                    result.exchangeTimeouts),
                static_cast<unsigned long long>(result.packetsLost),
                static_cast<unsigned long long>(
                    result.nvmWriteFailures));

    // Degraded QoS summary.
    std::printf("\n");
    TextTable table({"flow", "submitted", "completed", "dropped",
                     "mean resp (ms)", "max resp (ms)", "retx",
                     "sustainable"});
    for (const sim::FlowSimStats &flow : result.flows) {
        table.addRow({flow.flow,
                      std::to_string(flow.windowsSubmitted),
                      std::to_string(flow.windowsCompleted),
                      std::to_string(flow.windowsDropped),
                      TextTable::num(flow.meanResponse.count(), 3),
                      TextTable::num(flow.maxResponse.count(), 3),
                      std::to_string(flow.retransmissions),
                      flow.sustainable ? "yes" : "degraded"});
    }
    table.print();
    if (!args.tracePath.empty())
        std::printf("\ntrace written to %s (open in Perfetto; look "
                    "for fault-injected / node-down / resched "
                    "instants)\n",
                    args.tracePath.c_str());

    // Scenario contracts: the run only "passes" when the degradation
    // machinery actually engaged and the system kept producing.
    bool ok = true;
    for (const sim::FlowSimStats &flow : result.flows)
        ok = ok && flow.windowsCompleted > 0;
    if (wantCrash) {
        bool node1_detected = false;
        for (const sim::NodeDownEvent &down : result.nodesDown)
            node1_detected = node1_detected || down.node == 1;
        ok = ok && node1_detected && !result.reschedules.empty();
    }
    if (wantDropout)
        ok = ok && result.packetsLost > 0;
    if (wantNvm)
        ok = ok && result.nvmWriteFailures > 0;
    std::printf("\n%s\n", ok ? "scenario contract held"
                             : "SCENARIO CONTRACT VIOLATED");
    return ok ? 0 : 1;
}
