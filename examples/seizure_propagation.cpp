/**
 * @file
 * End-to-end seizure propagation scenario (Figures 1a/3a/5): generate
 * an annotated multi-site recording, train the per-node detector, and
 * run the distributed hash -> collision-check -> DTW-confirm protocol
 * as seizures spread, printing detections and stimulation targets.
 */

#include <cstdio>

#include "scalo/app/seizure.hpp"
#include "scalo/app/stimulation.hpp"
#include "scalo/data/ieeg_synth.hpp"

int
main()
{
    using namespace scalo;

    // A 4-site recording with seizures that propagate between sites.
    data::IeegConfig config;
    config.nodes = 4;
    config.electrodesPerNode = 4;
    config.durationSec = 6.0;
    config.seizuresPerMinute = 30.0;
    config.seizureDurationSec = 0.8;
    config.propagationLagSec = 0.0;
    const auto dataset = data::generateIeeg(config);
    std::printf("generated %zu sites x %zu electrodes, %zu seizures\n",
                config.nodes, config.electrodesPerNode,
                dataset.seizures().size());

    // Train the local detector (100 ms feature windows).
    const auto detector = app::SeizureDetector::train(dataset, 3'000);
    const auto quality = detector.evaluate(dataset, 0, 3'000);
    std::printf("detector: TPR %.2f, FPR %.3f\n",
                quality.truePositiveRate, quality.falsePositiveRate);

    // Walk the recording with the distributed propagation analyzer:
    // every 4 ms, each node hashes its current window; when the
    // detector fires at a node, its hash is broadcast and matching
    // sites confirm with DTW before stimulation.
    app::PropagationAnalyzer analyzer(config.nodes, 120, 40.0);
    const double fs = config.sampleRateHz;
    std::size_t detections = 0, confirmations = 0;

    for (const auto &event : dataset.seizures()) {
        // Observe windows inside the seizure and run the correlation
        // protocol every 4 ms cadence, as the device would; a seizure
        // is confirmed as soon as any window correlates.
        const auto base = static_cast<std::size_t>(
            (event.onsetSec + 0.2) * fs);
        std::uint64_t t_us =
            static_cast<std::uint64_t>(event.onsetSec * 1e6);
        ++detections;
        app::PropagationResult best;
        for (int step = 0; step < 24; ++step) {
            std::vector<std::vector<double>> windows;
            for (NodeId node = 0; node < config.nodes; ++node) {
                const auto &trace = dataset.traces()[node][0];
                const std::size_t start = base + step * 120;
                windows.emplace_back(
                    trace.begin() + static_cast<long>(start),
                    trace.begin() + static_cast<long>(start + 120));
            }
            analyzer.observe(windows, t_us);
            t_us += 4'000;
            const auto result =
                analyzer.analyze(event.originNode, t_us);
            if (result.confirmed.size() > best.confirmed.size())
                best = result;
            if (result.hashMatches.size() > best.hashMatches.size())
                best.hashMatches = result.hashMatches;
        }
        if (!best.confirmed.empty())
            ++confirmations;

        // Command the arrest pattern at every confirmed site through
        // the validated stimulation path.
        app::StimulationController stimulator;
        std::size_t commanded = 0;
        for (NodeId site : best.confirmed) {
            (void)site;
            commanded +=
                stimulator.issue(app::seizureArrestPattern({0, 1}));
        }
        std::printf("seizure @ %.2fs origin=%u: hash matches at %zu "
                    "sites, stimulation commanded at %zu sites "
                    "(%.2f mW per site during the train)\n",
                    event.onsetSec, event.originNode,
                    best.hashMatches.size(), commanded,
                    commanded ? stimulator
                                    .power(app::seizureArrestPattern(
                                        {0, 1}))
                                    .count()
                              : 0.0);
    }

    std::printf("\n%zu/%zu propagating seizures confirmed within the "
                "10 ms budget path\n",
                confirmations, detections);
    return confirmations > 0 ? 0 : 1;
}
