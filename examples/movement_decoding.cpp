/**
 * @file
 * Movement-intent decoding scenario (Figures 1b/3b/6): the three
 * pipelines of the paper on a synthetic cursor-control session -
 * gesture classification with decomposed SVMs (A), velocity decoding
 * with the centralised Kalman filter (B) and the input-split shallow
 * NN (C) - plus the intents-per-second capability of Figure 9b.
 */

#include <cstdio>

#include "scalo/app/movement.hpp"
#include "scalo/util/table.hpp"

int
main()
{
    using namespace scalo;
    using namespace scalo::app;

    // A 96-channel session: 1500 x 50 ms decode windows.
    const auto dataset = generateMovement(96, 1'500, 4, 42);
    const std::size_t train = 1'000;
    std::printf("synthetic session: %zu channels, %zu decode windows\n",
                dataset.channels, dataset.features.size());

    // Pipeline A: gesture classification, centralized vs distributed
    // across 4 nodes of 24 channels (the partial outputs are 4 B per
    // class per node on the wire).
    const auto classifier = GestureClassifier::train(dataset, train);
    const double accuracy = classifier.accuracy(dataset, train);
    std::size_t agreement = 0;
    const std::size_t probes = 100;
    for (std::size_t t = train; t < train + probes; ++t) {
        agreement += classifier.classify(dataset.features[t]) ==
                     classifier.classifyDistributed(
                         dataset.features[t], {24, 24, 24, 24});
    }
    std::printf("A (SVM): gesture accuracy %.2f (chance 0.25), "
                "distributed==centralized on %zu/%zu probes\n",
                accuracy, agreement, probes);

    // Pipeline B: Kalman velocity decoding (centralised inversion).
    const auto kf = decodeWithKalman(dataset, train, 1);
    std::printf("B (KF):  velocity correlation vx %.2f, vy %.2f\n",
                kf.vxCorrelation, kf.vyCorrelation);

    // Pipeline C: shallow NN velocity decoding (input-split).
    const auto nn = decodeWithNn(dataset, train, 2);
    std::printf("C (NN):  velocity correlation vx %.2f, vy %.2f\n\n",
                nn.vxCorrelation, nn.vyCorrelation);

    // Figure 9b: how many intents per second each pipeline sustains.
    TextTable table({"pipeline", "nodes=4", "nodes=11",
                     "conventional"});
    table.addRow({"MI SVM",
                  TextTable::num(intentsPerSecond(sched::miSvmFlow(),
                                                  4)
                                     .count(),
                                 1),
                  TextTable::num(intentsPerSecond(sched::miSvmFlow(),
                                                  11)
                                     .count(),
                                 1),
                  "20.0"});
    table.addRow({"MI NN",
                  TextTable::num(intentsPerSecond(sched::miNnFlow(),
                                                  4)
                                     .count(),
                                 1),
                  TextTable::num(intentsPerSecond(sched::miNnFlow(),
                                                  11)
                                     .count(),
                                 1),
                  "20.0"});
    table.addRow({"MI KF",
                  TextTable::num(intentsPerSecond(sched::miKfFlow(),
                                                  4)
                                     .count(),
                                 1),
                  TextTable::num(intentsPerSecond(sched::miKfFlow(),
                                                  11)
                                     .count(),
                                 1),
                  "20.0"});
    table.print();
    return 0;
}
