/**
 * @file
 * Serving-runtime load generator: drive a multi-tenant QueryServer
 * with thousands of concurrent mixed queries while a chaos plan
 * crashes and reboots nodes underneath it, then report the serving
 * envelope — per-tenant and per-class p50/p95/p99, plan-cache hit
 * rate, coverage under degradation.
 *
 * The run has two phases. Prefill: the server starts paused, so
 * submissions pile up in the admission queue until the in-flight
 * target (default 1200) is reached — a deterministic way to prove
 * the server really holds >= 1000 concurrent queries. Sustain: the
 * dispatchers resume, the chaos driver replays the fault plan, and
 * the generator keeps the queue near the target until the submission
 * budget is spent, backing off (never blocking) when the server says
 * Overloaded or QuotaExceeded.
 *
 * Exits 0 only when the serving contract held:
 *   - peak in-flight reached the target (>= --min-inflight);
 *   - every accepted ticket reached a terminal state (zero hangs);
 *   - overload was rejected, not hung, and the rejection rate stayed
 *     under --max-reject-rate;
 *   - every completed execution carried valid coverage, and the
 *     chaos window actually produced partial results.
 *
 * Usage: load_generator [--queries N] [--inflight N]
 *        [--min-inflight N] [--tenants N] [--nodes N] [--seed S]
 *        [--max-reject-rate F] [--no-chaos]
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <numbers>
#include <string>
#include <thread>
#include <vector>

#include "scalo/core/system.hpp"
#include "scalo/serve/chaos.hpp"
#include "scalo/serve/query_server.hpp"
#include "scalo/util/rng.hpp"
#include "scalo/util/table.hpp"

namespace {

using namespace scalo;

struct Args
{
    std::size_t queries = 4000;
    std::size_t inflightTarget = 1200;
    std::size_t minInflight = 1000;
    std::size_t tenants = 4;
    std::size_t nodes = 8;
    std::uint64_t seed = 20260807;
    double maxRejectRate = 0.5;
    bool chaos = true;
};

bool
parseArgs(int argc, char **argv, Args &args)
{
    for (int i = 1; i < argc; ++i) {
        const auto next = [&](const char *flag) -> const char * {
            if (std::strcmp(argv[i], flag) != 0 || i + 1 >= argc)
                return nullptr;
            return argv[++i];
        };
        if (const char *v = next("--queries"))
            args.queries = std::strtoull(v, nullptr, 10);
        else if (const char *v = next("--inflight"))
            args.inflightTarget = std::strtoull(v, nullptr, 10);
        else if (const char *v = next("--min-inflight"))
            args.minInflight = std::strtoull(v, nullptr, 10);
        else if (const char *v = next("--tenants"))
            args.tenants = std::strtoull(v, nullptr, 10);
        else if (const char *v = next("--nodes"))
            args.nodes = std::strtoull(v, nullptr, 10);
        else if (const char *v = next("--seed"))
            args.seed = std::strtoull(v, nullptr, 10);
        else if (const char *v = next("--max-reject-rate"))
            args.maxRejectRate = std::atof(v);
        else if (std::strcmp(argv[i], "--no-chaos") == 0)
            args.chaos = false;
        else
            return false;
    }
    return args.queries > 0 && args.tenants > 0 && args.nodes > 0 &&
           args.inflightTarget >= args.minInflight;
}

/** A 6 Hz seizure-like template, index-varied so a few distinct
 *  probes circulate (and repeat, for plan-cache hits). */
std::vector<double>
probeShape(std::size_t n, std::size_t variant)
{
    std::vector<double> out(n);
    const double phase =
        0.3 * static_cast<double>(variant % 5);
    for (std::size_t i = 0; i < n; ++i)
        out[i] = std::sin(2.0 * std::numbers::pi * 6.0 *
                              static_cast<double>(i) /
                              static_cast<double>(n) +
                          phase);
    return out;
}

/** The mixed-workload descriptor for submission @p i. */
app::Query
mixedQuery(std::size_t i, std::size_t samples,
           std::uint64_t span_us)
{
    const std::uint64_t t0 = (i % 7) * (span_us / 8);
    const std::uint64_t t1 = t0 + span_us / 2;
    switch (i % 4) {
      case 0:
        return app::Query::q1(t0, t1);
      case 1:
        return app::Query::q2(t0, t1, probeShape(samples, i));
      case 2: {
        app::Query q = app::Query::q2(t0, t1,
                                      probeShape(samples, i), 6.0,
                                      signal::Measure::Euclidean);
        q.hashPrefilter = true;
        return q;
      }
      default:
        return app::Query::q3(t0, t1);
    }
}

void
printMetricsRow(TextTable &table, const std::string &name,
                const serve::Metrics &m)
{
    table.addRow({name, std::to_string(m.submitted),
                  std::to_string(m.completed),
                  std::to_string(m.partial),
                  std::to_string(m.cancelled),
                  std::to_string(m.rejected()),
                  TextTable::num(m.p50(), 2),
                  TextTable::num(m.p95(), 2),
                  TextTable::num(m.p99(), 2),
                  TextTable::num(100.0 * m.coverageFraction(), 1) +
                      "%"});
}

} // namespace

int
main(int argc, char **argv)
{
    Args args;
    if (!parseArgs(argc, argv, args)) {
        std::printf(
            "usage: %s [--queries N] [--inflight N] "
            "[--min-inflight N] [--tenants N] [--nodes N] "
            "[--seed S] [--max-reject-rate F] [--no-chaos]\n",
            argv[0]);
        return 2;
    }

    core::ScaloConfig config;
    config.nodes = args.nodes;
    config.seed = args.seed;
    core::ScaloSystem system(config);
    std::printf("%s\n", system.describe().c_str());

    // Populate the stores: a few hundred windows per node, with a
    // seizure burst in the middle so Q1 has something to find.
    constexpr std::size_t kSamples = 96;
    constexpr std::uint64_t kWindowsPerNode = 240;
    constexpr std::uint64_t kStrideUs = 4'000;
    app::QueryEngine engine = system.makeQueryEngine(kSamples);
    Rng rng(args.seed);
    for (NodeId node = 0; node < engine.nodeCount(); ++node) {
        for (std::uint64_t w = 0; w < kWindowsPerNode; ++w) {
            const bool seizure = w >= 100 && w < 120;
            std::vector<double> window(kSamples);
            if (seizure)
                window = probeShape(kSamples, w);
            else
                for (double &v : window)
                    v = rng.gaussian();
            engine.ingest(node, w * kStrideUs,
                          static_cast<ElectrodeId>(node % 4),
                          window, seizure);
        }
    }
    const std::uint64_t span_us = kWindowsPerNode * kStrideUs;

    serve::ServeConfig serve_config;
    serve_config.dispatchers = 4;
    serve_config.queueCapacity = args.inflightTarget + 256;
    serve_config.tenantQuota =
        args.inflightTarget / args.tenants + 256;
    serve_config.maxBatch = 32;
    serve_config.planCacheCapacity = 64;
    serve_config.startPaused = true;
    serve::QueryServer server(engine, serve_config);

    // Chaos: one node bounces early, another goes down mid-run and
    // stays down — the surviving shards keep answering and results
    // go partial, not missing.
    sim::FaultPlan plan;
    if (args.chaos && args.nodes >= 3) {
        plan.crashes.push_back(
            {/*node=*/1, units::Millis{0.0}, units::Millis{400.0}});
        plan.crashes.push_back({/*node=*/2, units::Millis{50.0}});
    }
    serve::ChaosDriver chaos(server, plan, /*time_scale=*/1.0);

    const std::vector<std::string> tenantNames = [&] {
        std::vector<std::string> names;
        for (std::size_t t = 0; t < args.tenants; ++t)
            names.push_back("tenant-" + std::to_string(t));
        return names;
    }();

    // ---- phase 1: prefill the paused server to the target -------
    std::vector<serve::TicketId> tickets;
    tickets.reserve(args.queries);
    std::size_t submitted = 0;
    std::size_t rejected = 0;
    std::size_t attempts = 0;
    while (server.inFlight() < args.inflightTarget &&
           submitted < args.queries) {
        const app::Query query =
            mixedQuery(submitted, kSamples, span_us);
        ++attempts;
        const serve::SubmitResult result = server.submit(
            tenantNames[submitted % tenantNames.size()], query);
        if (result.accepted()) {
            tickets.push_back(result.id);
            ++submitted;
        } else {
            ++rejected;
        }
    }
    const std::size_t prefillPeak = server.peakInFlight();
    std::printf("\nprefill: %zu queries queued (target %zu), peak "
                "in-flight %zu\n",
                submitted, args.inflightTarget, prefillPeak);

    // ---- phase 2: sustain under chaos ---------------------------
    chaos.start();
    server.resume();
    while (submitted < args.queries) {
        const app::Query query =
            mixedQuery(submitted, kSamples, span_us);
        ++attempts;
        const serve::SubmitResult result = server.submit(
            tenantNames[submitted % tenantNames.size()], query);
        if (result.accepted()) {
            tickets.push_back(result.id);
            ++submitted;
        } else {
            // Typed back-pressure: never blocks, so back off by
            // consuming nothing and retrying (the dispatchers are
            // draining concurrently).
            ++rejected;
            std::this_thread::yield();
        }
    }

    // Exercise cancellation on a slice of the tail.
    std::size_t cancelRequested = 0;
    for (std::size_t i = tickets.size() - tickets.size() / 50;
         i < tickets.size(); ++i)
        cancelRequested += server.cancel(tickets[i]) ? 1 : 0;

    // ---- collect: every accepted ticket must go terminal --------
    std::size_t done = 0;
    std::size_t cancelled = 0;
    std::size_t hangs = 0;
    std::size_t partials = 0;
    std::size_t badCoverage = 0;
    for (const serve::TicketId id : tickets) {
        const auto response = server.wait(id, /*timeout_ms=*/30'000);
        if (!response) {
            ++hangs;
            continue;
        }
        if (response->state == serve::TicketState::Cancelled) {
            ++cancelled;
            continue;
        }
        if (response->state != serve::TicketState::Done)
            continue;
        ++done;
        const app::Coverage &coverage =
            response->execution.coverage;
        const bool valid =
            coverage.totalShards == engine.nodeCount() &&
            coverage.answeredShards <= coverage.totalShards &&
            coverage.answeredShards ==
                static_cast<std::size_t>(std::count_if(
                    response->execution.perNode.begin(),
                    response->execution.perNode.end(),
                    [](const app::QueryStats &s) {
                        return s.answered;
                    }));
        if (!valid)
            ++badCoverage;
        if (!coverage.complete())
            ++partials;
    }
    chaos.stop();
    server.stop();

    // ---- report -------------------------------------------------
    std::printf("\n%zu attempts: %zu accepted, %zu rejected "
                "(rate %.1f%%); %zu done, %zu cancelled "
                "(%zu requested), %zu hung\n",
                attempts, submitted, rejected,
                100.0 * static_cast<double>(rejected) /
                    static_cast<double>(attempts),
                done, cancelled, cancelRequested, hangs);
    std::printf("chaos: %zu/%zu flips applied; %zu partial "
                "results, %zu invalid coverages\n",
                chaos.applied(), chaos.scheduled(), partials,
                badCoverage);
    const serve::PlanCache::Stats cache = server.planCacheStats();
    std::printf("plan cache: %llu hits / %llu misses (%.1f%% hit "
                "rate), %zu resident, %llu evictions\n",
                static_cast<unsigned long long>(cache.hits),
                static_cast<unsigned long long>(cache.misses),
                100.0 * cache.hitRate(), cache.size,
                static_cast<unsigned long long>(cache.evictions));

    const std::vector<std::string> header{
        "", "submitted", "done", "partial", "cancelled", "rejected",
        "p50 (ms)", "p95 (ms)", "p99 (ms)", "coverage"};
    std::printf("\nper tenant:\n");
    TextTable tenantTable(header);
    for (const std::string &tenant : server.tenants())
        printMetricsRow(tenantTable, tenant,
                        server.tenantMetrics(tenant));
    printMetricsRow(tenantTable, "TOTAL", server.totals());
    tenantTable.print();

    std::printf("\nper query class:\n");
    TextTable classTable(header);
    for (std::size_t c = 0; c < serve::kQueryClasses; ++c) {
        const auto cls = static_cast<serve::QueryClass>(c);
        printMetricsRow(classTable, serve::queryClassName(cls),
                        server.classMetrics(cls));
    }
    classTable.print();

    // ---- the serving contract -----------------------------------
    bool ok = true;
    if (server.peakInFlight() < args.minInflight) {
        std::printf("\nFAIL: peak in-flight %zu < target %zu\n",
                    server.peakInFlight(), args.minInflight);
        ok = false;
    }
    if (hangs > 0) {
        std::printf("\nFAIL: %zu tickets never went terminal\n",
                    hangs);
        ok = false;
    }
    const double rejectRate = static_cast<double>(rejected) /
                              static_cast<double>(attempts);
    if (rejectRate > args.maxRejectRate) {
        std::printf("\nFAIL: rejection rate %.2f above bound %.2f\n",
                    rejectRate, args.maxRejectRate);
        ok = false;
    }
    if (badCoverage > 0) {
        std::printf("\nFAIL: %zu executions with invalid coverage\n",
                    badCoverage);
        ok = false;
    }
    if (args.chaos && chaos.applied() > 0 && partials == 0) {
        std::printf("\nFAIL: chaos downed nodes but no partial "
                    "results surfaced\n");
        ok = false;
    }
    std::printf("\n%s\n", ok ? "serving contract held"
                             : "SERVING CONTRACT VIOLATED");
    return ok ? 0 : 1;
}
