/**
 * @file
 * External data offload scenario: bulk neural data leaves the body
 * through the 46 Mbps external radio, so it is compressed with the
 * LIC -> TOK -> MA/RC pipeline and encrypted with the AES PE first.
 * Shows the bandwidth/energy effect of each stage and the daily
 * battery plan that has to absorb it (Section 3.6).
 */

#include <cmath>
#include <cstdio>

#include "scalo/compress/range_coder.hpp"
#include "scalo/hw/charging.hpp"
#include "scalo/net/radio.hpp"
#include "scalo/util/aes.hpp"
#include "scalo/util/rng.hpp"
#include "scalo/util/table.hpp"

int
main()
{
    using namespace scalo;
    using namespace scalo::units::literals;

    std::printf("External offload: 10 s of one node's 96-electrode "
                "recording\n\n");

    // Synthesize the raw stream (10 s x 96 electrodes x 30 kHz would
    // be 57.6 MB; we model one electrode and scale).
    Rng rng(77);
    std::vector<Sample> trace;
    double phase = 0.0;
    for (int i = 0; i < 300'000; ++i) { // 10 s of one electrode
        phase += 0.012;
        trace.push_back(static_cast<Sample>(
            2'200.0 * std::sin(phase) + rng.gaussian(0.0, 35.0)));
    }

    const std::size_t raw_bytes = trace.size() * 2;
    const auto compressed = compress::neuralStreamCompress(trace);

    // Encrypt what leaves the body.
    const Aes128::Key key{0x13, 0x37, 0xc0, 0xde};
    Aes128 aes(key);
    const auto encrypted = aes.ctrCrypt(compressed, {0x01});

    const auto &radio = net::externalRadio();
    const double electrodes = 96.0;

    TextTable table({"stage", "bytes (1 elec)", "96-elec airtime (s)",
                     "radio energy (mJ)"});
    auto row = [&](const char *name, std::size_t bytes) {
        const units::Bytes all{static_cast<double>(bytes) *
                               electrodes};
        table.addRow({name, std::to_string(bytes),
                      TextTable::num(
                          radio.transferTime(all).in<units::Seconds>(),
                          2),
                      TextTable::num(radio.transferEnergy(all).count(),
                                     1)});
    };
    row("raw", raw_bytes);
    row("LIC+TOK+MA/RC", compressed.size());
    row("compressed + AES-CTR", encrypted.size());
    table.print();

    std::printf("\ncompression ratio %.2fx -> %.2fx less airtime and "
                "radio energy; AES-CTR adds no size\n",
                static_cast<double>(raw_bytes) /
                    static_cast<double>(compressed.size()),
                static_cast<double>(raw_bytes) /
                    static_cast<double>(compressed.size()));

    // Round-trip check: the receiving side decrypts + decompresses.
    const auto decrypted = aes.ctrCrypt(encrypted, {0x01});
    const auto restored =
        compress::neuralStreamDecompress(decrypted, trace.size());
    std::printf("lossless round trip through encrypt/decrypt: %s\n\n",
                restored == trace ? "ok" : "FAILED");

    // What the offload duty does to the daily battery plan.
    const units::Milliwatts offload_duty =
        radio.power * 0.1; // 10% airtime duty
    for (units::Milliwatts load :
         {constants::kPowerCap, 12.0_mW + offload_duty}) {
        const auto plan = hw::planDailyCycle(load);
        std::printf("load %.2f mW -> %.1f h operation + %.1f h "
                    "charging per day (%s)\n",
                    load.count(), plan.operatingHours.count(),
                    plan.chargingHours.count(),
                    plan.sustainsFullDay ? "sustainable"
                                         : "NOT sustainable");
    }
    return restored == trace ? 0 : 1;
}
