/**
 * @file
 * Schedule the Section 6 application flows with the ILP, execute the
 * schedule through the node-level discrete-event runtime
 * (sim::SystemSim), and print the analytic predictions next to the
 * simulated measurements - the cross-validation loop of Section 3.5.
 *
 * Defaults to the paper's 4-implant flat fabric. Pass `--nodes N`
 * and `--clusters K` to generate a hierarchical topology instead: N
 * implants partitioned into K balanced TDMA clusters bridged by a
 * relay backbone, scheduled with the decomposed per-cluster
 * formulation and executed by the clustered engine (`--parallel`
 * advances the cluster queues on worker threads; the result is
 * byte-identical to the serial engine).
 *
 * Pass `--trace out.json` to export a Chrome trace-event JSON of the
 * run; open it in Perfetto (ui.perfetto.dev) or chrome://tracing to
 * see per-node pipeline stages, TDMA exchange rounds, backbone
 * relays, packet corruptions, and NVM writes on a shared timeline.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "scalo/core/system.hpp"
#include "scalo/sched/workloads.hpp"
#include "scalo/util/table.hpp"

namespace {

void
usage(const char *argv0)
{
    std::printf("usage: %s [--nodes N] [--clusters K] [--parallel]"
                " [--threads T] [--duration MS] [--trace out.json]\n",
                argv0);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace scalo;
    using namespace scalo::units::literals;

    std::string trace_path;
    std::size_t nodes = 4;
    std::size_t clusters = 1;
    std::size_t threads = 0;
    bool parallel = false;
    double duration_ms = 400.0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
            trace_path = argv[++i];
        } else if (std::strcmp(argv[i], "--nodes") == 0 &&
                   i + 1 < argc) {
            nodes = static_cast<std::size_t>(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (std::strcmp(argv[i], "--clusters") == 0 &&
                   i + 1 < argc) {
            clusters = static_cast<std::size_t>(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (std::strcmp(argv[i], "--threads") == 0 &&
                   i + 1 < argc) {
            threads = static_cast<std::size_t>(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (std::strcmp(argv[i], "--parallel") == 0) {
            parallel = true;
        } else if (std::strcmp(argv[i], "--duration") == 0 &&
                   i + 1 < argc) {
            duration_ms = std::strtod(argv[++i], nullptr);
        } else {
            usage(argv[0]);
            return 2;
        }
    }
    if (nodes < 1 || clusters < 1 || clusters > nodes ||
        duration_ms <= 0.0) {
        usage(argv[0]);
        return 2;
    }

    // The Section 6 application mix: detection, propagation
    // tracking, and spike sorting concurrently, detection
    // prioritised. On a clustered fabric the decomposed formulation
    // keeps each sub-ILP at cluster size, so wide fabrics schedule
    // in seconds; a wide flat fabric pays the monolithic solve.
    core::ScaloConfig config;
    config.nodes = nodes;
    config.clusters = clusters;
    core::ScaloSystem system(config);
    std::printf("%s\n\n", system.describe().c_str());

    const std::vector<sched::FlowSpec> flows{
        sched::seizureDetectionFlow(),
        sched::hashSimilarityFlow(net::Pattern::AllToAll),
        sched::spikeSortingFlow()};
    const sched::Schedule schedule =
        system.deploy(flows, {1.0, 3.0, 1.0});
    if (!schedule.feasible) {
        std::printf("deployment failed: %s\n",
                    schedule.reason.c_str());
        return 1;
    }

    // Execute the schedule event-by-event.
    core::SimulateOptions options;
    options.duration = units::Millis{duration_ms};
    options.tracePath = trace_path;
    options.parallel = parallel;
    options.threads = threads;
    const sim::SystemSimResult result =
        system.simulate(flows, schedule, options);

    std::printf("analytic vs event-driven, %.0f ms of streaming "
                "(%zu events, %zu cluster%s, %s engine):\n\n",
                result.duration.count(), result.eventsExecuted,
                result.clusters, result.clusters == 1 ? "" : "s",
                result.ranParallel ? "parallel" : "serial");

    TextTable flow_table({"flow", "windows", "resp sim (ms)",
                          "resp ILP (ms)", "round sim (ms)",
                          "round ILP (ms)", "relays", "retx",
                          "sustainable"});
    for (const sim::FlowSimStats &f : result.flows) {
        flow_table.addRow(
            {f.flow, std::to_string(f.windowsCompleted),
             TextTable::num(f.meanResponse.count(), 3),
             TextTable::num(f.analyticResponse.count(), 3),
             TextTable::num(f.meanRound.count(), 3),
             TextTable::num(f.analyticRound.count(), 3),
             std::to_string(f.relayForwards),
             std::to_string(f.retransmissions),
             f.sustainable && f.analyticallySustainable ? "yes"
                                                        : "NO"});
    }
    flow_table.print();
    std::printf("\n");

    // On wide fabrics the per-node table is noise; summarise.
    if (nodes <= 16) {
        TextTable node_table({"node", "power sim (mW)",
                              "power ILP (mW)", "NVM written (KB)",
                              "NVM util", "trace events"});
        for (const sim::NodeSimStats &n : result.nodes) {
            node_table.addRow(
                {std::to_string(n.node),
                 TextTable::num(n.measuredPower.count(), 3),
                 TextTable::num(n.analyticPower.count(), 3),
                 TextTable::num(n.nvmBytesWritten / 1024.0, 1),
                 TextTable::num(n.nvmUtilization * 100.0, 2) + "%",
                 std::to_string(n.counters.total())});
        }
        node_table.print();
    } else {
        double max_sim = 0.0;
        double max_ilp = 0.0;
        double sum_sim = 0.0;
        std::uint64_t nvm_total = 0;
        for (const sim::NodeSimStats &n : result.nodes) {
            max_sim = std::max(max_sim, n.measuredPower.count());
            max_ilp = std::max(max_ilp, n.analyticPower.count());
            sum_sim += n.measuredPower.count();
            nvm_total += n.nvmBytesWritten;
        }
        std::printf("nodes: %zu, max power sim %.3f mW (ILP %.3f), "
                    "mean %.3f mW, NVM %.1f KB total\n",
                    result.nodes.size(), max_sim, max_ilp,
                    sum_sim / static_cast<double>(nodes),
                    nvm_total / 1024.0);
    }

    std::printf("\nnetwork: %s\n", result.network.summary().c_str());
    if (!trace_path.empty())
        std::printf("trace written to %s (open in Perfetto or "
                    "chrome://tracing)\n",
                    trace_path.c_str());
    return 0;
}
