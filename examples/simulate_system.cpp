/**
 * @file
 * Schedule the Section 6 application flows with the ILP, execute the
 * schedule through the node-level discrete-event runtime
 * (sim::SystemSim), and print the analytic predictions next to the
 * simulated measurements - the cross-validation loop of Section 3.5.
 *
 * Pass `--trace out.json` to export a Chrome trace-event JSON of the
 * run; open it in Perfetto (ui.perfetto.dev) or chrome://tracing to
 * see per-node pipeline stages, TDMA exchange rounds, packet
 * corruptions, and NVM writes on a shared timeline.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "scalo/core/system.hpp"
#include "scalo/sched/workloads.hpp"
#include "scalo/util/table.hpp"

int
main(int argc, char **argv)
{
    using namespace scalo;
    using namespace scalo::units::literals;

    std::string trace_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
            trace_path = argv[++i];
        } else {
            std::printf("usage: %s [--trace out.json]\n", argv[0]);
            return 2;
        }
    }

    // A 4-implant system running detection, propagation tracking, and
    // spike sorting concurrently, detection prioritised.
    core::ScaloConfig config;
    config.nodes = 4;
    core::ScaloSystem system(config);
    std::printf("%s\n\n", system.describe().c_str());

    const std::vector<sched::FlowSpec> flows{
        sched::seizureDetectionFlow(),
        sched::hashSimilarityFlow(net::Pattern::AllToAll),
        sched::spikeSortingFlow()};
    const sched::Schedule schedule =
        system.deploy(flows, {1.0, 3.0, 1.0});
    if (!schedule.feasible) {
        std::printf("deployment failed: %s\n",
                    schedule.reason.c_str());
        return 1;
    }

    // Execute the schedule event-by-event for 400 ms of stream time.
    core::SimulateOptions options;
    options.duration = 400.0_ms;
    options.tracePath = trace_path;
    const sim::SystemSimResult result =
        system.simulate(flows, schedule, options);

    std::printf("analytic vs event-driven, %.0f ms of streaming "
                "(%zu events):\n\n",
                result.duration.count(), result.eventsExecuted);

    TextTable flow_table({"flow", "windows", "resp sim (ms)",
                          "resp ILP (ms)", "round sim (ms)",
                          "round ILP (ms)", "retx", "sustainable"});
    for (const sim::FlowSimStats &f : result.flows) {
        flow_table.addRow(
            {f.flow, std::to_string(f.windowsCompleted),
             TextTable::num(f.meanResponse.count(), 3),
             TextTable::num(f.analyticResponse.count(), 3),
             TextTable::num(f.meanRound.count(), 3),
             TextTable::num(f.analyticRound.count(), 3),
             std::to_string(f.retransmissions),
             f.sustainable && f.analyticallySustainable ? "yes"
                                                        : "NO"});
    }
    flow_table.print();
    std::printf("\n");

    TextTable node_table({"node", "power sim (mW)", "power ILP (mW)",
                          "NVM written (KB)", "NVM util",
                          "trace events"});
    for (const sim::NodeSimStats &n : result.nodes) {
        node_table.addRow(
            {std::to_string(n.node),
             TextTable::num(n.measuredPower.count(), 3),
             TextTable::num(n.analyticPower.count(), 3),
             TextTable::num(n.nvmBytesWritten / 1024.0, 1),
             TextTable::num(n.nvmUtilization * 100.0, 2) + "%",
             std::to_string(n.counters.total())});
    }
    node_table.print();

    std::printf("\nnetwork: %s\n", result.network.summary().c_str());
    if (!trace_path.empty())
        std::printf("trace written to %s (open in Perfetto or "
                    "chrome://tracing)\n",
                    trace_path.c_str());
    return 0;
}
