/**
 * @file
 * Online spike sorting scenario (Figures 1c/3c/7): generate a ground-
 * truth extracellular recording, sort it with hash-directed template
 * matching and with exact matching, and compare accuracy and work -
 * the Section 6.3 experiment at example scale.
 */

#include <cstdio>

#include "scalo/app/spikesort.hpp"
#include "scalo/data/spike_synth.hpp"

int
main()
{
    using namespace scalo;

    data::SpikeConfig config;
    config.neurons = 10;
    config.durationSec = 6.0;
    config.firingRateHz = 12.0;
    const auto dataset = data::generateSpikes(config);
    std::printf("recording: %.0fs, %d neurons, %zu ground-truth "
                "spikes (%.0f spikes/s)\n",
                config.durationSec, config.neurons,
                dataset.events.size(),
                static_cast<double>(dataset.events.size()) /
                    config.durationSec);

    const app::SpikeSorter exact(dataset.templates,
                                 /*use_hashes=*/false);
    const app::SpikeSorter hashed(dataset.templates,
                                  /*use_hashes=*/true);

    const auto exact_report = exact.evaluate(dataset);
    const auto hash_report = hashed.evaluate(dataset);

    std::printf("\nexact template matching: detection %.2f, "
                "accuracy %.2f\n",
                exact_report.detectionRate, exact_report.accuracy);
    std::printf("hash-directed matching:  detection %.2f, "
                "accuracy %.2f (delta %.1f%%)\n",
                hash_report.detectionRate, hash_report.accuracy,
                100.0 * (exact_report.accuracy -
                         hash_report.accuracy));

    std::printf("\nSection 6.3 context: SCALO sorts 12,250 spikes/s "
                "per node at 96 electrodes,\nwith hash accuracy "
                "within 5%% of exact matching.\n");

    const bool ok = hash_report.accuracy >
                    exact_report.accuracy - 0.05;
    return ok ? 0 : 1;
}
