/**
 * @file
 * Human-in-the-loop scenario (Sections 2.2 and 6.4): a clinician
 * verifies detections and retrieves data interactively. Shows the
 * query language (Listing 2 style) and the latency/QPS envelope over
 * growing time ranges.
 */

#include <cstdio>

#include "scalo/app/query.hpp"
#include "scalo/core/system.hpp"
#include "scalo/util/table.hpp"

int
main()
{
    using namespace scalo;
    using namespace scalo::app;

    core::ScaloConfig config;
    config.nodes = 11;
    core::ScaloSystem system(config);
    std::printf("%s\n\n", system.describe().c_str());

    // Listing 2 flavour: interactively retrieve seizure data.
    const auto program = system.program(
        "var seizure_data = stream.window(wsize=4ms)"
        ".seizure_detect().select().call_runtime()");
    std::printf("compiled interactive query: %zu stages over the "
                "fabric\n\n",
                program.stages.size());

    TextTable table({"query", "data (MB)", "time range", "matched",
                     "latency (ms)", "QPS", "power (mW)"});
    for (double mb : {7.0, 24.0, 42.0, 60.0}) {
        char range[32];
        std::snprintf(range, sizeof(range), "%.0f ms",
                      timeRangeMsFor(mb, config.nodes));
        for (double matched : {0.05, 0.5, 1.0}) {
            const auto q1 = system.interactiveQuery(
                QueryKind::Q1SeizureWindows, mb, matched);
            table.addRow({"Q1", TextTable::num(mb, 0), range,
                          TextTable::num(100.0 * matched, 0) + "%",
                          TextTable::num(q1.latencyMs, 0),
                          TextTable::num(q1.queriesPerSecond, 2),
                          TextTable::num(q1.powerMw, 2)});
        }
        const auto q3 = system.interactiveQuery(
            QueryKind::Q3TimeRange, mb, 1.0);
        table.addRow({"Q3", TextTable::num(mb, 0), range, "100%",
                      TextTable::num(q3.latencyMs, 0),
                      TextTable::num(q3.queriesPerSecond, 2),
                      TextTable::num(q3.powerMw, 2)});
    }
    table.print();

    // The Section 6.4 trade-off: exact matching on Q2 costs power.
    QueryConfig hash_q{config.nodes, 7.0, 0.05, false};
    QueryConfig dtw_q{config.nodes, 7.0, 0.05, true};
    const auto hash_cost =
        estimateQuery(QueryKind::Q2TemplateMatch, hash_q);
    const auto dtw_cost =
        estimateQuery(QueryKind::Q2TemplateMatch, dtw_q);
    std::printf("\nQ2 with hashes: %.1f QPS at %.2f mW; with exact "
                "DTW: %.1f QPS at %.1f mW\n",
                hash_cost.queriesPerSecond, hash_cost.powerMw,
                dtw_cost.queriesPerSecond, dtw_cost.powerMw);
    return 0;
}
