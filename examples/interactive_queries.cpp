/**
 * @file
 * Human-in-the-loop scenario (Sections 2.2 and 6.4): a clinician
 * verifies detections and retrieves data interactively. Shows the
 * query language (Listing 2 style), the latency/QPS envelope over
 * growing time ranges, and the executable sharded query runtime:
 * a stream.query(...) program lowered to a Query descriptor, fanned
 * out across node shards, with per-node QueryStats.
 */

#include <cmath>
#include <cstdio>
#include <numbers>

#include "scalo/app/query.hpp"
#include "scalo/app/query_engine.hpp"
#include "scalo/core/system.hpp"
#include "scalo/serve/metrics.hpp"
#include "scalo/util/rng.hpp"
#include "scalo/util/table.hpp"

namespace {

/** A 6 Hz seizure-like template with a little noise. */
std::vector<double>
seizureShape(std::size_t n, scalo::Rng &noise)
{
    std::vector<double> out(n);
    for (std::size_t i = 0; i < n; ++i)
        out[i] = std::sin(2.0 * std::numbers::pi * 6.0 *
                          static_cast<double>(i) /
                          static_cast<double>(n)) +
                 noise.gaussian(0.0, 0.05);
    return out;
}

} // namespace

int
main()
{
    using namespace scalo;
    using namespace scalo::app;

    core::ScaloConfig config;
    config.nodes = 11;
    core::ScaloSystem system(config);
    std::printf("%s\n\n", system.describe().c_str());

    // Listing 2 flavour: interactively retrieve seizure data.
    const auto program = system.program(
        "var seizure_data = stream.window(wsize=4ms)"
        ".seizure_detect().select().call_runtime()");
    std::printf("compiled interactive query: %zu stages over the "
                "fabric\n\n",
                program.stages.size());

    TextTable table({"query", "data (MB)", "time range", "matched",
                     "latency (ms)", "QPS", "power (mW)"});
    for (double mb : {7.0, 24.0, 42.0, 60.0}) {
        const units::Megabytes data{mb};
        char range[32];
        std::snprintf(range, sizeof(range), "%.0f ms",
                      timeRangeFor(data, config.nodes).count());
        for (double matched : {0.05, 0.5, 1.0}) {
            const auto q1 = system.interactiveQuery(
                QueryKind::Q1SeizureWindows, data, matched);
            table.addRow({"Q1", TextTable::num(mb, 0), range,
                          TextTable::num(100.0 * matched, 0) + "%",
                          TextTable::num(q1.latency.count(), 0),
                          TextTable::num(
                              q1.queriesPerSecond.count(), 2),
                          TextTable::num(q1.power.count(), 2)});
        }
        const auto q3 = system.interactiveQuery(
            QueryKind::Q3TimeRange, data, 1.0);
        table.addRow({"Q3", TextTable::num(mb, 0), range, "100%",
                      TextTable::num(q3.latency.count(), 0),
                      TextTable::num(q3.queriesPerSecond.count(), 2),
                      TextTable::num(q3.power.count(), 2)});
    }
    table.print();

    // The Section 6.4 trade-off: exact matching on Q2 costs power.
    QueryConfig hash_q{config.nodes, units::Megabytes{7.0}, 0.05,
                       false};
    QueryConfig dtw_q{config.nodes, units::Megabytes{7.0}, 0.05,
                      true};
    const auto hash_cost =
        estimateQuery(QueryKind::Q2TemplateMatch, hash_q);
    const auto dtw_cost =
        estimateQuery(QueryKind::Q2TemplateMatch, dtw_q);
    std::printf("\nQ2 with hashes: %.1f QPS at %.2f mW; with exact "
                "DTW: %.1f QPS at %.1f mW\n",
                hash_cost.queriesPerSecond.count(),
                hash_cost.power.count(),
                dtw_cost.queriesPerSecond.count(),
                dtw_cost.power.count());

    // ------------------------------------------------------------
    // The executable runtime: one descriptor, sharded across nodes.
    // The clinician writes the query in the mini-language; the
    // probe template is data, attached to the lowered descriptor.
    constexpr std::size_t kSamples = 120;
    QueryEngine engine = system.makeQueryEngine(kSamples);
    Rng rng(17);
    for (NodeId node = 0; node < config.nodes; ++node) {
        for (std::uint64_t w = 0; w < 200; ++w) {
            const bool seizure = w >= 120 && w < 140;
            std::vector<double> window;
            if (seizure) {
                window = seizureShape(kSamples, rng);
            } else {
                window.resize(kSamples);
                for (double &v : window)
                    v = rng.gaussian();
            }
            engine.ingest(node, w * 4'000,
                          static_cast<ElectrodeId>(node % 4), window,
                          seizure);
        }
    }

    const auto retrieval = system.program(
        "stream.query(t0=400ms, t1=600ms, seizure, dtw=15)");
    auto query = *retrieval.interactiveQuery();
    query.probe = seizureShape(kSamples, rng);
    const auto execution = engine.execute(query);

    std::printf("\nstream.query(...) lowered + executed on %zu "
                "nodes: %zu matches of %zu windows touched, "
                "modeled %.0f ms, host %.2f ms\n\n",
                engine.nodeCount(), execution.matches.size(),
                execution.scanned, execution.latency.count(),
                execution.wall.count());

    // Per-node stats re-exported through the serving runtime's
    // composable Metrics: each node's shard record folds into a
    // Metrics, and the fleet view is just their sum.
    std::vector<serve::Metrics> perNode(engine.nodeCount());
    serve::Metrics fleet;
    for (const QueryStats &node : execution.perNode) {
        perNode[node.node].observeShard(node);
        fleet += perNode[node.node];
    }

    TextTable stats({"node", "touched", "bucket hits", "DTW",
                     "matched", "answered", "modeled p50 (ms)"});
    for (NodeId node = 0; node < engine.nodeCount(); ++node) {
        const serve::Metrics &m = perNode[node];
        stats.addRow({std::to_string(node),
                      std::to_string(m.scanned),
                      std::to_string(m.bucketHits),
                      std::to_string(m.dtwComparisons),
                      std::to_string(m.matched),
                      std::to_string(m.shardsAnswered),
                      TextTable::num(m.modeledLatency.p50(), 2)});
    }
    stats.print();
    std::printf("\nfleet (merged Metrics): %llu windows touched, "
                "%llu matched, coverage %.0f%%, modeled shard "
                "p95 %.2f ms\n",
                static_cast<unsigned long long>(fleet.scanned),
                static_cast<unsigned long long>(fleet.matched),
                100.0 * fleet.coverageFraction(),
                fleet.modeledLatency.p95());
    return 0;
}
