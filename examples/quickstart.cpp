/**
 * @file
 * Quickstart: configure a distributed SCALO BCI, check its thermal
 * envelope, deploy the seizure-propagation application through the
 * ILP scheduler, compile a TrillDSP-style program, and estimate an
 * interactive query - the five things most users do first.
 */

#include <cstdio>

#include "scalo/core/system.hpp"
#include "scalo/sched/netplan.hpp"
#include "scalo/util/table.hpp"

int
main()
{
    using namespace scalo;

    // 1. Configure a 6-implant system at the 15 mW safety cap.
    core::ScaloConfig config;
    config.nodes = 6;
    core::ScaloSystem system(config);
    std::printf("%s\n\n", system.describe().c_str());

    // 2. Deploy seizure detection + hash-based propagation with
    //    detection prioritised 3:1, and inspect the ILP's allocation.
    const std::vector<sched::FlowSpec> flows{
        sched::seizureDetectionFlow(),
        sched::hashSimilarityFlow(net::Pattern::AllToAll)};
    const auto schedule = system.deploy(flows, {3.0, 1.0});
    if (!schedule.feasible) {
        std::printf("deployment failed: %s\n",
                    schedule.reason.c_str());
        return 1;
    }

    TextTable table({"flow", "electrodes/node", "throughput (Mbps)"});
    for (const auto &flow : schedule.flows) {
        table.addRow({flow.flow,
                      TextTable::num(flow.electrodesPerNode.front(),
                                     1),
                      TextTable::num(flow.throughput.count(), 1)});
    }
    table.print();
    std::printf("per-node power: %.2f mW (cap %.0f mW)\n\n",
                schedule.nodePower.front().count(),
                config.powerCap.count());

    // The ILP's second output: the fixed TDMA round every node runs.
    const auto plan = sched::buildNetworkPlan(flows, schedule);
    std::printf("%s\n", sched::renderPlan(plan).c_str());

    // 3. Program the device in the high-level language (Listing 1).
    const auto pipeline = system.program(
        "var movements = stream.window(wsize=50ms).sbp()"
        ".kf(kf_params).call_runtime()");
    std::printf("compiled Listing 1: %zu stages, window %.0f ms, "
                "latency %.2f ms, %.2f mW at 96 electrodes\n\n",
                pipeline.stages.size(), pipeline.windowMs,
                pipeline.latency().count(),
                pipeline.power(96.0).count());

    // 4. Ask the clinician's question: "show me the seizure windows
    //    of the last 110 ms" (Q1 over ~7 MB at 6 nodes).
    const auto cost = system.interactiveQuery(
        app::QueryKind::Q1SeizureWindows, units::Megabytes{7.0},
        0.05);
    std::printf("Q1 over 7 MB: %.1f ms -> %.1f queries/second at "
                "%.2f mW\n",
                cost.latency.count(), cost.queriesPerSecond.count(),
                cost.power.count());
    return 0;
}
