#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON exported by sim::Trace.

Checks the structural invariants Perfetto / chrome://tracing rely on:

  - top level is an object with a "traceEvents" array
  - every event carries name/ph/ts/pid/tid
  - ph is one of B, E, i, M
  - non-metadata timestamps are monotonically non-decreasing (the
    exporter stable-sorts, so any regression here is a real bug)
  - B/E duration events are balanced per (pid, tid) lane

Usage: ci/validate_trace.py trace.json
"""

import json
import sys


def fail(message: str) -> "int":
    print(f"validate_trace: FAIL: {message}", file=sys.stderr)
    return 1


def main() -> int:
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2

    with open(sys.argv[1], encoding="utf-8") as handle:
        try:
            doc = json.load(handle)
        except json.JSONDecodeError as err:
            return fail(f"not valid JSON: {err}")

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        return fail("top level must be an object with 'traceEvents'")
    events = doc["traceEvents"]
    if not isinstance(events, list) or not events:
        return fail("'traceEvents' must be a non-empty array")

    last_ts = None
    open_spans = {}  # (pid, tid) -> depth
    counts = {}
    for index, event in enumerate(events):
        for field in ("name", "ph", "pid", "tid"):
            if field not in event:
                return fail(f"event {index} missing '{field}'")
        phase = event["ph"]
        counts[phase] = counts.get(phase, 0) + 1
        if phase not in ("B", "E", "i", "M"):
            return fail(f"event {index} has unknown ph '{phase}'")
        if phase == "M":  # metadata carries no timestamp
            continue
        if "ts" not in event:
            return fail(f"event {index} missing 'ts'")
        ts = event["ts"]
        if not isinstance(ts, (int, float)) or ts < 0:
            return fail(f"event {index} has bad ts {ts!r}")
        if last_ts is not None and ts < last_ts:
            return fail(
                f"event {index} ts {ts} < previous {last_ts} "
                "(export must be time-sorted)"
            )
        last_ts = ts
        lane = (event["pid"], event["tid"])
        if phase == "B":
            open_spans[lane] = open_spans.get(lane, 0) + 1
        elif phase == "E":
            depth = open_spans.get(lane, 0)
            if depth == 0:
                return fail(f"event {index}: 'E' without open 'B' on {lane}")
            open_spans[lane] = depth - 1

    unbalanced = {lane: d for lane, d in open_spans.items() if d}
    if unbalanced:
        return fail(f"unclosed duration spans: {unbalanced}")

    summary = " ".join(f"{k}={v}" for k, v in sorted(counts.items()))
    print(f"validate_trace: OK: {len(events)} events ({summary})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
