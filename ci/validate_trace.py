#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON exported by sim::Trace.

Checks the structural invariants Perfetto / chrome://tracing rely on:

  - top level is an object with a "traceEvents" array
  - every event carries name/ph/ts/pid/tid
  - ph is one of B, E, i, M
  - every event category is a known sim::TraceEventKind name
  - non-metadata timestamps are monotonically non-decreasing (the
    exporter stable-sorts, so any regression here is a real bug)
  - B/E duration events are balanced per (pid, tid) lane
  - node-down / node-recovered instants alternate per node: a node
    cannot die twice without recovering in between, or recover while
    alive (a trailing node-down — a node still dead at the end of the
    run — is fine)
  - partition-start / partition-healed instants alternate per
    cluster (args.id carries the cluster): a cluster cannot be
    declared partitioned twice without healing in between, or heal
    while attached (a trailing partition-start — still severed at
    the end of the run — is fine)
  - every relay-failover is eventually followed by a
    backbone-restitch: a relay hand-off that never re-stitched the
    backbone schedule means the failover path silently lost the
    repair step

Usage: ci/validate_trace.py trace.json [--require-fault-events]

--require-fault-events additionally fails when the trace holds no
fault-framework events at all; the chaos CI gate passes it so a
refactor can never silently stop exporting the failure story.
"""

import argparse
import json
import sys

# Mirrors sim::traceEventName's 23 kinds; the exporter writes the
# kind into the "cat" field, so an unknown category means the C++
# enum and this validator have drifted apart.
KNOWN_CATEGORIES = {
    "stage-start",
    "stage-finish",
    "packet-tx",
    "packet-rx",
    "packet-corrupt",
    "packet-retransmit",
    "nvm-write",
    "window-drop",
    "window-done",
    "exchange-start",
    "exchange-finish",
    "fault-injected",
    "node-down",
    "node-recovered",
    "exchange-timed-out",
    "resched",
    "relay-forward",
    "backbone-start",
    "backbone-finish",
    "relay-failover",
    "partition-start",
    "partition-healed",
    "backbone-restitch",
}

FAULT_CATEGORIES = {
    "fault-injected",
    "node-down",
    "node-recovered",
    "exchange-timed-out",
    "resched",
}

# Emitted only by the hierarchical (multi-cluster) fabric: relay
# hand-offs into the backbone, the backbone round spans, and the
# partition-tolerance story (failover, partition windows, re-stitch).
CLUSTER_CATEGORIES = {
    "relay-forward",
    "backbone-start",
    "backbone-finish",
    "relay-failover",
    "partition-start",
    "partition-healed",
    "backbone-restitch",
}


def fail(message: str) -> "int":
    print(f"validate_trace: FAIL: {message}", file=sys.stderr)
    return 1


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("trace")
    parser.add_argument(
        "--require-fault-events",
        action="store_true",
        help="fail unless at least one fault-framework event "
        "(fault-injected/node-down/node-recovered/"
        "exchange-timed-out/resched) is present",
    )
    parser.add_argument(
        "--require-cluster-events",
        action="store_true",
        help="fail unless at least one hierarchical-fabric event "
        "(relay-forward/backbone-start/backbone-finish) is "
        "present (the trace must come from a multi-cluster run)",
    )
    args = parser.parse_args()

    with open(args.trace, encoding="utf-8") as handle:
        try:
            doc = json.load(handle)
        except json.JSONDecodeError as err:
            return fail(f"not valid JSON: {err}")

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        return fail("top level must be an object with 'traceEvents'")
    events = doc["traceEvents"]
    if not isinstance(events, list) or not events:
        return fail("'traceEvents' must be a non-empty array")

    last_ts = None
    open_spans = {}  # (pid, tid) -> depth
    counts = {}
    cat_counts = {}
    node_dead = {}  # pid -> currently declared dead
    cluster_partitioned = {}  # args.id (cluster) -> currently severed
    failovers_pending_restitch = 0
    for index, event in enumerate(events):
        for field in ("name", "ph", "pid", "tid"):
            if field not in event:
                return fail(f"event {index} missing '{field}'")
        phase = event["ph"]
        counts[phase] = counts.get(phase, 0) + 1
        if phase not in ("B", "E", "i", "M"):
            return fail(f"event {index} has unknown ph '{phase}'")
        if phase == "M":  # metadata carries no timestamp/category
            continue
        cat = event.get("cat")
        if cat not in KNOWN_CATEGORIES:
            return fail(f"event {index} has unknown cat {cat!r}")
        cat_counts[cat] = cat_counts.get(cat, 0) + 1
        if "ts" not in event:
            return fail(f"event {index} missing 'ts'")
        ts = event["ts"]
        if not isinstance(ts, (int, float)) or ts < 0:
            return fail(f"event {index} has bad ts {ts!r}")
        if last_ts is not None and ts < last_ts:
            return fail(
                f"event {index} ts {ts} < previous {last_ts} "
                "(export must be time-sorted)"
            )
        last_ts = ts
        lane = (event["pid"], event["tid"])
        if phase == "B":
            open_spans[lane] = open_spans.get(lane, 0) + 1
        elif phase == "E":
            depth = open_spans.get(lane, 0)
            if depth == 0:
                return fail(f"event {index}: 'E' without open 'B' on {lane}")
            open_spans[lane] = depth - 1
        if cat == "node-down":
            if node_dead.get(event["pid"], False):
                return fail(
                    f"event {index}: node {event['pid']} declared "
                    "dead twice without recovering"
                )
            node_dead[event["pid"]] = True
        elif cat == "node-recovered":
            if not node_dead.get(event["pid"], False):
                return fail(
                    f"event {index}: node {event['pid']} recovered "
                    "without a preceding node-down"
                )
            node_dead[event["pid"]] = False
        elif cat == "partition-start":
            cluster = event.get("args", {}).get("id")
            if cluster_partitioned.get(cluster, False):
                return fail(
                    f"event {index}: cluster {cluster} declared "
                    "partitioned twice without healing"
                )
            cluster_partitioned[cluster] = True
        elif cat == "partition-healed":
            cluster = event.get("args", {}).get("id")
            if not cluster_partitioned.get(cluster, False):
                return fail(
                    f"event {index}: cluster {cluster} healed "
                    "without a preceding partition-start"
                )
            cluster_partitioned[cluster] = False
        elif cat == "relay-failover":
            failovers_pending_restitch += 1
        elif cat == "backbone-restitch":
            failovers_pending_restitch = 0

    unbalanced = {lane: d for lane, d in open_spans.items() if d}
    if unbalanced:
        return fail(f"unclosed duration spans: {unbalanced}")
    if failovers_pending_restitch:
        return fail(
            f"{failovers_pending_restitch} relay-failover event(s) "
            "never followed by a backbone-restitch"
        )

    fault_events = sum(cat_counts.get(c, 0) for c in FAULT_CATEGORIES)
    if args.require_fault_events and fault_events == 0:
        return fail(
            "--require-fault-events: no fault-framework events "
            "(fault plan not exported?)"
        )
    cluster_events = sum(
        cat_counts.get(c, 0) for c in CLUSTER_CATEGORIES
    )
    if args.require_cluster_events and cluster_events == 0:
        return fail(
            "--require-cluster-events: no relay/backbone events "
            "(trace not from a multi-cluster run?)"
        )

    summary = " ".join(f"{k}={v}" for k, v in sorted(counts.items()))
    still_dead = sorted(p for p, dead in node_dead.items() if dead)
    extra = f" fault-events={fault_events}"
    if cluster_events:
        extra += f" cluster-events={cluster_events}"
    if still_dead:
        extra += f" still-dead-pids={still_dead}"
    still_severed = sorted(
        c for c, severed in cluster_partitioned.items() if severed
    )
    if still_severed:
        extra += f" still-partitioned-clusters={still_severed}"
    print(
        f"validate_trace: OK: {len(events)} events ({summary}){extra}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
