#!/usr/bin/env python3
"""Compare two google-benchmark JSON dumps (baseline vs current).

Report-only by default: regressions beyond the tolerance are printed
loudly but the exit code stays 0, so a noisy CI machine can never turn
the perf trajectory into a flaky gate. Pass --strict to make
regressions exit non-zero (for local use on a quiet machine).

    ci/compare_bench.py BENCH_kernels.json fresh.json --tolerance 0.25
"""

import argparse
import json
import signal
import sys

signal.signal(signal.SIGPIPE, signal.SIG_DFL)

_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_times(path):
    """Map benchmark name -> real time in ns.

    With --benchmark_repetitions the dump holds both per-repetition
    entries and aggregates; prefer the median aggregate when present.
    """
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    plain, medians = {}, {}
    for entry in data.get("benchmarks", []):
        scale = _UNIT_NS.get(entry.get("time_unit", "ns"), 1.0)
        time_ns = entry["real_time"] * scale
        if entry.get("run_type") == "aggregate":
            if entry.get("aggregate_name") == "median":
                medians[entry["run_name"]] = time_ns
        else:
            plain.setdefault(entry["name"], time_ns)
    plain.update(medians)
    return plain


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="relative slowdown tolerated before a benchmark is "
        "flagged as regressed (default 0.25 = 25%%)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit 2 when any benchmark regressed (default: report only)",
    )
    args = parser.parse_args()

    base = load_times(args.baseline)
    curr = load_times(args.current)

    regressed, improved = [], []
    print(f"{'benchmark':<28} {'baseline':>12} {'current':>12} {'ratio':>7}")
    for name in sorted(base):
        if name not in curr:
            print(f"{name:<28} {base[name]:>10.0f}ns {'MISSING':>12}")
            regressed.append(name)
            continue
        ratio = curr[name] / base[name] if base[name] > 0 else float("inf")
        mark = ""
        if ratio > 1.0 + args.tolerance:
            mark = "  REGRESSED"
            regressed.append(name)
        elif ratio < 1.0 - args.tolerance:
            mark = "  improved"
            improved.append(name)
        print(
            f"{name:<28} {base[name]:>10.0f}ns {curr[name]:>10.0f}ns "
            f"{ratio:>6.2f}x{mark}"
        )
    for name in sorted(set(curr) - set(base)):
        print(f"{name:<28} {'NEW':>12} {curr[name]:>10.0f}ns")

    print(
        f"\n{len(regressed)} regressed / {len(improved)} improved "
        f"(tolerance {args.tolerance:.0%})"
    )
    if regressed:
        print("regressed:", ", ".join(regressed))
        if args.strict:
            return 2
        print("(report-only mode: not failing the build)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
