#!/usr/bin/env python3
"""Compare two google-benchmark JSON dumps (baseline vs current).

Prints a speedup table (baseline / current: >1 means the current tree
is faster) for every benchmark. Two enforcement levels:

 - Report-only (the default): regressions beyond the tolerance are
   printed loudly but the exit code stays 0, so noisy benchmarks can
   never turn the perf trajectory into a flaky gate.
 - Enforced subset (--enforce NAMES.json): a curated list of stable
   benchmarks whose regression (or disappearance) fails the gate with
   exit 2. Everything outside the list stays report-only.
 - --strict promotes ALL regressions to exit 2 (local use on a quiet
   machine).

Build-context checks (the keys gbench_main.cpp stamps):

 - --require-release exits 3 unless the current dump's context says
   scalo_build_type == Release: debug-adjacent numbers must never
   move a baseline. (The stock "library_build_type" context field
   describes the google-benchmark *library's* build, not the kernels,
   and is ignored here.)
 - When baseline and current were produced under different SIMD modes
   (context key scalo_simd: "wide" vs "scalar", or a baseline old
   enough to carry no stamp at all), the comparison is
   apples-to-oranges by design, so enforcement is downgraded to
   report-only for that run and a note is printed. This keeps the
   enforced gate green on forced-scalar CI builds without masking
   regressions on the matching-mode path.

    ci/compare_bench.py BENCH_kernels.json fresh.json \
        --tolerance 0.25 --enforce ci/bench_gate.json --require-release
"""

import argparse
import json
import signal
import sys

signal.signal(signal.SIGPIPE, signal.SIG_DFL)

_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_dump(path):
    """Return (name -> real time in ns, context dict).

    With --benchmark_repetitions the dump holds both per-repetition
    entries and aggregates; prefer the median aggregate when present.
    """
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    plain, medians = {}, {}
    for entry in data.get("benchmarks", []):
        scale = _UNIT_NS.get(entry.get("time_unit", "ns"), 1.0)
        time_ns = entry["real_time"] * scale
        if entry.get("run_type") == "aggregate":
            if entry.get("aggregate_name") == "median":
                medians[entry["run_name"]] = time_ns
        else:
            plain.setdefault(entry["name"], time_ns)
    plain.update(medians)
    return plain, data.get("context", {})


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="relative slowdown tolerated before a benchmark is "
        "flagged as regressed (default 0.25 = 25%%)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit 2 when any benchmark regressed (default: report only)",
    )
    parser.add_argument(
        "--enforce",
        metavar="NAMES_JSON",
        help="JSON array of benchmark names whose regression fails "
        "the gate (exit 2); benchmarks outside the list stay "
        "report-only",
    )
    parser.add_argument(
        "--require-release",
        action="store_true",
        help="exit 3 unless the current dump was produced by a "
        "Release build (context key scalo_build_type)",
    )
    args = parser.parse_args()

    base, base_ctx = load_dump(args.baseline)
    curr, curr_ctx = load_dump(args.current)

    if args.require_release:
        build = curr_ctx.get("scalo_build_type")
        if build is None:
            print(
                "NOTE: current dump carries no scalo_build_type "
                "context (predates gbench_main.cpp); cannot verify "
                "it is a Release build"
            )
        elif build != "Release":
            print(
                f"REFUSING comparison: current dump was built "
                f"'{build}', not Release — debug-adjacent numbers "
                f"are noise and must not move baselines"
            )
            return 3

    enforced = set()
    if args.enforce:
        with open(args.enforce, "r", encoding="utf-8") as fh:
            enforced = set(json.load(fh))

    # Baselines recorded in one SIMD mode are not comparable to runs
    # in the other: downgrade enforcement, keep the report.
    base_mode = base_ctx.get("scalo_simd")
    curr_mode = curr_ctx.get("scalo_simd")
    mode_mismatch = curr_mode is not None and base_mode != curr_mode
    if mode_mismatch and (enforced or args.strict):
        print(
            f"NOTE: baseline is a "
            f"'{base_mode or 'pre-gate, mode-unstamped'}' build but "
            f"current is '{curr_mode}': cross-mode numbers are "
            f"expected to differ, downgrading to report-only for "
            f"this run"
        )
        enforced = set()
        args.strict = False

    regressed, improved, failing = [], [], []
    print(
        f"{'benchmark':<28} {'baseline':>12} {'current':>12} "
        f"{'speedup':>8}"
    )
    for name in sorted(base):
        gate = "enforced" if name in enforced else ""
        if name not in curr:
            print(f"{name:<28} {base[name]:>10.0f}ns {'MISSING':>12}")
            regressed.append(name)
            if name in enforced:
                failing.append(name)
            continue
        # speedup > 1: the current tree is faster than the baseline.
        speedup = base[name] / curr[name] if curr[name] > 0 else float("inf")
        mark = ""
        if speedup < 1.0 / (1.0 + args.tolerance):
            mark = "  REGRESSED"
            regressed.append(name)
            if name in enforced:
                failing.append(name)
        elif speedup > 1.0 + args.tolerance:
            mark = "  improved"
            improved.append(name)
        print(
            f"{name:<28} {base[name]:>10.0f}ns {curr[name]:>10.0f}ns "
            f"{speedup:>7.2f}x{mark}"
            + (f"  [{gate}]" if gate else "")
        )
    for name in sorted(set(curr) - set(base)):
        print(f"{name:<28} {'NEW':>12} {curr[name]:>10.0f}ns")

    print(
        f"\n{len(regressed)} regressed / {len(improved)} improved "
        f"(tolerance {args.tolerance:.0%}, "
        f"{len(enforced)} benchmarks enforced)"
    )
    if regressed:
        print("regressed:", ", ".join(regressed))
        if args.strict:
            return 2
        if failing:
            print("ENFORCED benchmarks regressed:", ", ".join(failing))
            return 2
        print("(report-only: no enforced benchmark regressed)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
