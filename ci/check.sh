#!/usr/bin/env bash
# The CI gauntlet: every gate the repo holds itself to, in one script.
#
#   ci/check.sh            run everything
#   ci/check.sh tier1      just the tier-1 build + tests
#   ci/check.sh sanitize   ASan+UBSan build + tests (contracts on)
#   ci/check.sh strict     the lint builds: -Werror -Wconversion with
#                          the default compiler, the raw-lock-
#                          primitive ban (src/scalo must lock through
#                          the annotated wrappers only), and the
#                          Clang -Wthread-safety -Werror analysis
#                          build (clang++ required; set
#                          SCALO_TSA_OPTIONAL=1 to tolerate absence)
#   ci/check.sh negative   misuse must FAIL to compile: units bugs
#                          AND the thread-safety suite (unguarded
#                          read/write, missing release, REQUIRES
#                          violation under clang -Wthread-safety;
#                          rank inversion under any compiler)
#   ci/check.sh tidy       clang-tidy over the library (FAILS when
#                          clang-tidy is absent unless
#                          SCALO_TIDY_OPTIONAL=1)
#   ci/check.sh bench      run bench_micro_kernels + bench_chaos in a
#                          Release tree with the bench -march
#                          (SCALO_BENCH_MARCH, default native) and
#                          refresh the BENCH_kernels.json and
#                          BENCH_chaos.json baselines. The curated
#                          ci/bench_gate.json subset of the kernel
#                          benches is ENFORCED — a regression beyond
#                          SCALO_BENCH_TOLERANCE (default 0.25) fails
#                          the gate; everything else, and all of
#                          bench_chaos, stays report-only
#   ci/check.sh scalar     forced-scalar build (SCALO_SIMD=SCALAR):
#                          full test suite (bit-identical to the wide
#                          build by the pack contract), the SIMD
#                          parity suites under ASan+UBSan, and a
#                          compare-only bench run proving the
#                          enforced gate stays green in a scalar tree
#   ci/check.sh trace      run a small SystemSim scenario, export the
#                          Chrome trace JSON, validate its structure
#                          with ci/validate_trace.py
#   ci/check.sh tsan       ThreadSanitizer build + the simulation
#                          runtime tests
#   ci/check.sh scale      hierarchical-fabric gate: the cluster/
#                          decomposed-scheduler/parallel-parity
#                          suites under TSan, a 256-node clustered
#                          smoke run with the trace validated
#                          (relay/backbone events required), and a
#                          report-only BENCH_scaling.json comparison
#   ci/check.sh serve      Release build of the serving runtime:
#                          load-generator smoke (>=1000 concurrent
#                          queries under a chaos plan, zero hangs,
#                          bounded rejection rate, valid coverage on
#                          partial results), serve_test, and a
#                          BENCH_serve.json refresh (report-only)
#   ci/check.sh chaos      seeded fault-injection matrix under
#                          ASan+UBSan: faults_test plus every
#                          example_chaos_run scenario, each exported
#                          trace validated (fault events required)
#
# Gates are independent build trees (build-ci-*) so the developer's
# ./build is never touched.

set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 4)"
FAILURES=()

note() { printf '\n=== %s ===\n' "$*"; }

run_gate() { # name, function
    local name="$1"
    shift
    note "gate: $name"
    if "$@"; then
        printf -- '--- %s: OK\n' "$name"
    else
        printf -- '--- %s: FAILED\n' "$name"
        FAILURES+=("$name")
    fi
}

configure_build_test() { # builddir, cmake args...
    local dir="$ROOT/$1"
    shift
    cmake -S "$ROOT" -B "$dir" "$@" >/dev/null &&
        cmake --build "$dir" -j "$JOBS" &&
        ctest --test-dir "$dir" -j "$JOBS" --output-on-failure
}

gate_tier1() {
    configure_build_test build-ci-tier1 \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo
}

gate_sanitize() {
    # Contracts are forced on by CMake whenever SCALO_SANITIZE is set;
    # halt_on_error makes UBSan findings fail the ctest run instead of
    # scrolling past.
    UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
        ASAN_OPTIONS="detect_leaks=1" \
        configure_build_test build-ci-asan \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DSCALO_SANITIZE=address,undefined \
        -DSCALO_WERROR=ON
}

gate_strict() {
    local dir="$ROOT/build-ci-strict"
    cmake -S "$ROOT" -B "$dir" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DSCALO_WERROR=ON -DSCALO_WCONVERSION=ON >/dev/null &&
        cmake --build "$dir" -j "$JOBS" --target scalo_core ||
        return 1
    check_lock_primitives && check_thread_safety
}

check_lock_primitives() {
    # Locking in src/scalo goes through the annotated ranked wrappers
    # (util/thread_annotations.hpp, the one file allowed to name the
    # raw primitives). A bare std::mutex has no rank and no
    # SCALO_GUARDED_BY contract, so it fails the pipeline here.
    local hits
    hits=$(grep -rn --include='*.hpp' --include='*.cpp' \
        -e 'std::mutex' -e 'std::shared_mutex' \
        -e 'std::recursive_mutex' -e 'std::condition_variable' \
        -e 'std::lock_guard' -e 'std::unique_lock' \
        -e 'std::scoped_lock' \
        "$ROOT/src/scalo" |
        grep -v 'util/thread_annotations\.hpp')
    if [ -n "$hits" ]; then
        echo "raw lock primitives outside util/thread_annotations.hpp"
        echo "(use util::RankedMutex/MutexLock/ConditionVariable):"
        printf '%s\n' "$hits"
        return 1
    fi
    echo "lock-primitive ban holds (annotated wrappers only)"
}

check_thread_safety() {
    # The compile-time half of the concurrency contract: Clang's
    # -Wthread-safety over every annotated subsystem, promoted to an
    # error. Needs clang++; its absence fails the gate so the
    # analysis cannot rot silently (SCALO_TSA_OPTIONAL=1 opts out,
    # e.g. on a GCC-only box — see README).
    if ! command -v clang++ >/dev/null 2>&1; then
        if [ "${SCALO_TSA_OPTIONAL:-0}" = "1" ]; then
            echo "clang++ not installed; SKIPPING -Wthread-safety" \
                "analysis (SCALO_TSA_OPTIONAL=1)"
            return 0
        fi
        echo "clang++ not installed: the -Wthread-safety analysis" \
            "cannot run. Install clang or set SCALO_TSA_OPTIONAL=1" \
            "to accept the gap."
        return 1
    fi
    local dir="$ROOT/build-ci-thread-safety"
    cmake -S "$ROOT" -B "$dir" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DCMAKE_CXX_COMPILER=clang++ \
        -DSCALO_WERROR=ON -DSCALO_WTHREAD_SAFETY=ON >/dev/null &&
        cmake --build "$dir" -j "$JOBS" --target scalo_core
}

gate_negative() {
    negative_units && negative_thread_safety
}

negative_units() {
    # The dimensional-analysis layer's whole point: unit misuse is a
    # compile error. Each marked line in units_test.cpp must fail.
    local out
    if out=$(cd "$ROOT" && g++ -std=c++20 -fsyntax-only \
        -DSCALO_NEGATIVE_COMPILE_TEST \
        -I src -I tests -I "$(pkg-config --variable=includedir gtest \
            2>/dev/null || echo /usr/include)" \
        tests/units_test.cpp 2>&1); then
        echo "negative-compile test COMPILED: units no longer reject misuse"
        return 1
    fi
    local errors
    errors=$(printf '%s' "$out" | grep -c 'error:')
    if [ "$errors" -lt 4 ]; then
        echo "expected >=4 unit-misuse errors, got $errors:"
        printf '%s\n' "$out" | head -20
        return 1
    fi
    echo "unit misuse rejected with $errors compile errors (>=4 expected)"
}

ts_negative_compile() { # compiler, case-number, extra flags...
    local cxx="$1" num="$2"
    shift 2
    (cd "$ROOT" && "$cxx" -std=c++20 -fsyntax-only "$@" \
        -DSCALO_TS_NEGATIVE_CASE="$num" \
        -I src tests/thread_safety_negative.cpp 2>&1)
}

negative_thread_safety() {
    # Concurrency misuse is a compile error too. Case 4 (rank
    # inversion through OrderedLockPair) trips a static_assert, so it
    # fails under ANY compiler; cases 1/2/3/5 (unguarded read,
    # unguarded write, missing release, REQUIRES violation) need
    # Clang's -Wthread-safety, and case 0 proves correct code still
    # compiles clean under the analysis at -Werror.
    local out
    if out=$(ts_negative_compile "${CXX:-g++}" 4); then
        echo "rank inversion COMPILED: OrderedLockPair no longer" \
            "enforces ascending ranks"
        printf '%s\n' "$out" | head -10
        return 1
    fi
    echo "rank inversion rejected (OrderedLockPair static_assert)"

    if ! command -v clang++ >/dev/null 2>&1; then
        if [ "${SCALO_TSA_OPTIONAL:-0}" = "1" ]; then
            echo "clang++ not installed; SKIPPING -Wthread-safety" \
                "negative cases 0-3,5 (SCALO_TSA_OPTIONAL=1)"
            return 0
        fi
        echo "clang++ not installed: thread-safety negative cases" \
            "cannot run. Install clang or set SCALO_TSA_OPTIONAL=1" \
            "to accept the gap."
        return 1
    fi

    local tsa_flags=(-Wthread-safety -Werror)
    if ! out=$(ts_negative_compile clang++ 0 "${tsa_flags[@]}"); then
        echo "thread-safety positive case (0) FAILED to compile:"
        printf '%s\n' "$out" | head -20
        return 1
    fi
    local num label
    for num in 1 2 3 5; do
        case "$num" in
        1) label="unguarded read" ;;
        2) label="unguarded write" ;;
        3) label="missing release" ;;
        5) label="REQUIRES violation" ;;
        esac
        if out=$(ts_negative_compile clang++ "$num" \
            "${tsa_flags[@]}"); then
            echo "thread-safety case $num ($label) COMPILED: the" \
                "analysis no longer rejects it"
            return 1
        fi
    done
    echo "thread-safety misuse rejected (cases 1,2,3,5 under clang" \
        "-Wthread-safety -Werror; positive case 0 clean)"
}

annotate_bench_json() { # file
    # google-benchmark stamps "library_build_type" with the build of
    # the *benchmark library* (debug on this distro), which reads as
    # if the kernels were measured unoptimised. Annotate it in place;
    # scalo_build_type (from gbench_main.cpp) is the authoritative
    # field.
    python3 - "$1" <<'EOF'
import json, sys
path = sys.argv[1]
with open(path, "r", encoding="utf-8") as fh:
    data = json.load(fh)
ctx = data.get("context", {})
if "library_build_type" in ctx:
    ctx["library_build_type_note"] = (
        "library_build_type describes the google-benchmark library's "
        "own build, not the scalo kernels; scalo_build_type is the "
        "authoritative field")
with open(path, "w", encoding="utf-8") as fh:
    json.dump(data, fh, indent=2)
    fh.write("\n")
EOF
}

bench_compare() { # builddir, target, baseline, refresh|compare, args…
    # Run one google-benchmark binary, diff its JSON against the
    # committed baseline (extra args go to compare_bench.py — e.g.
    # --enforce for the curated failing subset), and in refresh mode
    # update the working-tree baseline so a deliberate perf change is
    # committed alongside the code. A failing enforced comparison
    # leaves the baseline untouched.
    local dir="$1" target="$2" baseline="$3" action="$4"
    shift 4
    local fresh="$dir/$baseline"
    "$dir/bench/$target" \
        --benchmark_format=console \
        --benchmark_out="$fresh" \
        --benchmark_out_format=json || return 1
    annotate_bench_json "$fresh" || return 1

    # Compare against the baseline as committed, not the working tree,
    # so re-running the gate never compares a file with itself.
    local committed="$dir/${baseline%.json}.committed.json"
    if git -C "$ROOT" show "HEAD:$baseline" \
        >"$committed" 2>/dev/null; then
        python3 "$ROOT/ci/compare_bench.py" "$committed" "$fresh" \
            --tolerance "${SCALO_BENCH_TOLERANCE:-0.25}" "$@" ||
            return 1
    else
        echo "no committed $baseline baseline; creating one"
    fi
    if [ "$action" = refresh ]; then
        cp "$fresh" "$ROOT/$baseline"
        echo "refreshed $baseline (commit it to move the baseline)"
    fi
}

bench_refresh() { # builddir, target, baseline-name, compare args…
    bench_compare "$1" "$2" "$3" refresh "${@:4}"
}

gate_bench() {
    # Perf gate: build the microbenches in full Release with the bench
    # -march (kernel numbers track the machine's best ISA; regenerate
    # the baselines when moving boxes — see README). The curated
    # ci/bench_gate.json subset of bench_micro_kernels is enforced —
    # regressions there fail the gate — while the rest, and all of
    # bench_chaos, stays report-only.
    local dir="$ROOT/build-ci-bench"
    cmake -S "$ROOT" -B "$dir" \
        -DCMAKE_BUILD_TYPE=Release \
        -DSCALO_MARCH="${SCALO_BENCH_MARCH:-native}" >/dev/null &&
        cmake --build "$dir" -j "$JOBS" \
            --target bench_micro_kernels bench_chaos ||
        return 1
    bench_refresh "$dir" bench_micro_kernels BENCH_kernels.json \
        --enforce "$ROOT/ci/bench_gate.json" --require-release &&
        bench_refresh "$dir" bench_chaos BENCH_chaos.json \
            --require-release
}

gate_scalar() {
    # The forced-scalar half of the SIMD parity contract
    # (util/simd.hpp): SCALO_SIMD=SCALAR swaps every pack for the
    # plain-loop implementation with identical lane structure, so the
    # full test suite — including the exact parity expectations in
    # simd_test/kernels_test — must pass unchanged.
    configure_build_test build-ci-scalar \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DSCALO_SIMD=SCALAR || return 1

    # The parity suites again under ASan+UBSan (contracts forced on):
    # remainder-lane and padding bugs in the scalar fallback surface
    # here, not in the wide build.
    local asan="$ROOT/build-ci-scalar-asan"
    cmake -S "$ROOT" -B "$asan" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DSCALO_SIMD=SCALAR \
        -DSCALO_SANITIZE=address,undefined \
        -DSCALO_WERROR=ON >/dev/null &&
        cmake --build "$asan" -j "$JOBS" \
            --target simd_test kernels_test || return 1
    UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
        ASAN_OPTIONS="detect_leaks=1" \
        "$asan/tests/simd_test" || return 1
    UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
        ASAN_OPTIONS="detect_leaks=1" \
        "$asan/tests/kernels_test" || return 1

    # The enforced bench gate must stay green in a scalar tree:
    # compare_bench.py detects the wide-baseline/scalar-current mode
    # mismatch and downgrades to report-only (compare-only run — a
    # scalar tree must never move the committed wide baselines).
    local dir="$ROOT/build-ci-scalar-bench"
    cmake -S "$ROOT" -B "$dir" \
        -DCMAKE_BUILD_TYPE=Release \
        -DSCALO_SIMD=SCALAR >/dev/null &&
        cmake --build "$dir" -j "$JOBS" \
            --target bench_micro_kernels || return 1
    bench_compare "$dir" bench_micro_kernels BENCH_kernels.json \
        compare --enforce "$ROOT/ci/bench_gate.json" \
        --require-release
}

gate_trace() {
    # End-to-end observability check: schedule + simulate a small
    # system, export the event trace, and validate the Chrome JSON
    # invariants Perfetto relies on.
    local dir="$ROOT/build-ci-tier1"
    cmake -S "$ROOT" -B "$dir" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null &&
        cmake --build "$dir" -j "$JOBS" \
            --target example_simulate_system || return 1
    local trace="$dir/system_trace.json"
    "$dir/examples/example_simulate_system" --trace "$trace" ||
        return 1
    python3 "$ROOT/ci/validate_trace.py" "$trace"
}

gate_scale() {
    # The hierarchical-fabric scale gate. Three legs: (1) TSan over
    # the cluster/scheduler/parallel-parity suites — the conservative
    # engine's byte-identity claim is also a no-data-race claim, so
    # the parity tests must pass under the race detector; (2) a
    # 256-node clustered smoke run, traced and validated with the
    # relay/backbone event kinds required; (3) the BENCH_scaling.json
    # scaling curve regenerated in Release and compared report-only
    # (scaling numbers inform, they never gate).
    local tsan="$ROOT/build-ci-tsan"
    cmake -S "$ROOT" -B "$tsan" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DSCALO_SANITIZE=thread >/dev/null &&
        cmake --build "$tsan" -j "$JOBS" \
            --target cluster_test sched_scale_test \
            parallel_sim_test &&
        ctest --test-dir "$tsan" -j "$JOBS" --output-on-failure \
            -R '^(ClusterPlan|SchedScale|ParallelSim)' || return 1

    note "256-node clustered smoke (trace validated)"
    local dir="$ROOT/build-ci-tier1"
    cmake -S "$ROOT" -B "$dir" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null &&
        cmake --build "$dir" -j "$JOBS" \
            --target example_simulate_system || return 1
    local trace="$dir/scale_trace.json"
    "$dir/examples/example_simulate_system" \
        --nodes 256 --clusters 16 --parallel \
        --duration 100 --trace "$trace" || return 1
    python3 "$ROOT/ci/validate_trace.py" "$trace" \
        --require-cluster-events || return 1

    note "scaling curve (report-only)"
    local bdir="$ROOT/build-ci-bench"
    cmake -S "$ROOT" -B "$bdir" \
        -DCMAKE_BUILD_TYPE=Release \
        -DSCALO_MARCH="${SCALO_BENCH_MARCH:-native}" >/dev/null &&
        cmake --build "$bdir" -j "$JOBS" --target bench_scaling ||
        return 1
    bench_compare "$bdir" bench_scaling BENCH_scaling.json compare \
        --require-release
}

gate_tsan() {
    # The discrete-event engine is single-threaded by design; TSan
    # guards the boundary where the parallel query runtime and the
    # simulation runtime share process state.
    local dir="$ROOT/build-ci-tsan"
    cmake -S "$ROOT" -B "$dir" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DSCALO_SANITIZE=thread >/dev/null &&
        cmake --build "$dir" -j "$JOBS" \
            --target sim_test system_sim_test \
            query_concurrency_test serve_concurrency_test &&
        ctest --test-dir "$dir" -j "$JOBS" --output-on-failure \
            -R '^(Simulator|SystemSim|NetworkErrors|HashEncodingDelay|NetworkBerDelay|ThreadPool|ShardedQuery|QueryServer)'
}

gate_serve() {
    # The serving-runtime smoke: a Release build (the load numbers
    # only mean something optimized), the serve unit tests, the load
    # generator sustaining >=1000 concurrent mixed queries while the
    # chaos plan crashes nodes — the binary itself enforces the
    # contract (zero hangs, bounded rejection rate, valid coverage on
    # partial results) through its exit code — and a report-only
    # BENCH_serve.json refresh.
    local dir="$ROOT/build-ci-serve"
    cmake -S "$ROOT" -B "$dir" \
        -DCMAKE_BUILD_TYPE=Release >/dev/null &&
        cmake --build "$dir" -j "$JOBS" \
            --target serve_test example_load_generator \
            bench_serve || return 1

    "$dir/tests/serve_test" || return 1

    note "serve load smoke (chaos plan)"
    "$dir/examples/example_load_generator" \
        --queries 4000 --inflight 1200 --min-inflight 1000 \
        --max-reject-rate 0.5 || return 1

    bench_refresh "$dir" bench_serve BENCH_serve.json
}

gate_chaos() {
    # The fault matrix: the fault-framework tests plus every
    # example_chaos_run scenario, under ASan+UBSan with contracts on
    # (SCALO_SANITIZE forces them), each exported trace validated —
    # including that the failure story actually made it into the
    # trace. Scenarios are seeded and deterministic, so this gate is
    # never flaky.
    local dir="$ROOT/build-ci-asan"
    UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
        ASAN_OPTIONS="detect_leaks=1" \
        cmake -S "$ROOT" -B "$dir" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DSCALO_SANITIZE=address,undefined \
        -DSCALO_WERROR=ON >/dev/null &&
        cmake --build "$dir" -j "$JOBS" \
            --target faults_test example_chaos_run || return 1

    "$dir/tests/faults_test" || return 1

    local scenario trace
    for scenario in crash dropout nvm throttle combined; do
        note "chaos scenario: $scenario"
        trace="$dir/chaos_${scenario}.json"
        "$dir/examples/example_chaos_run" \
            --scenario "$scenario" --duration 2400 \
            --trace "$trace" || return 1
        # Every scenario marks at least its injection instants, so
        # fault events are required across the whole matrix.
        python3 "$ROOT/ci/validate_trace.py" "$trace" \
            --require-fault-events || return 1
    done

    # The hierarchical scenarios (backbone partition, relay crash)
    # exercise the failover/re-stitch path; their traces must carry
    # the cluster-fabric events (relay-failover, partition-start/
    # healed, backbone-restitch pairing is validated too).
    for scenario in partition relay-crash; do
        note "chaos scenario: $scenario"
        trace="$dir/chaos_${scenario}.json"
        "$dir/examples/example_chaos_run" \
            --scenario "$scenario" --duration 2400 \
            --trace "$trace" || return 1
        python3 "$ROOT/ci/validate_trace.py" "$trace" \
            --require-fault-events --require-cluster-events ||
            return 1
    done

    # The same scenarios on the parallel engine, under TSan: relay
    # failover and backbone re-stitching run at the quantum barriers
    # where worker threads hand off to the coordinator, exactly the
    # boundary the race detector must clear. Traces must come out
    # byte-identical to the serial runs above.
    local tsan="$ROOT/build-ci-tsan"
    cmake -S "$ROOT" -B "$tsan" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DSCALO_SANITIZE=thread >/dev/null &&
        cmake --build "$tsan" -j "$JOBS" \
            --target example_chaos_run || return 1
    for scenario in partition relay-crash; do
        note "chaos scenario (parallel, TSan): $scenario"
        trace="$tsan/chaos_${scenario}_parallel.json"
        "$tsan/examples/example_chaos_run" \
            --scenario "$scenario" --duration 2400 --parallel \
            --trace "$trace" || return 1
        cmp "$dir/chaos_${scenario}.json" "$trace" || {
            echo "chaos: $scenario parallel trace differs from" \
                "the serial trace"
            return 1
        }
    done
}

gate_tidy() {
    if ! command -v clang-tidy >/dev/null 2>&1; then
        if [ "${SCALO_TIDY_OPTIONAL:-0}" = "1" ]; then
            echo "clang-tidy not installed; SKIPPING the tidy gate" \
                "(SCALO_TIDY_OPTIONAL=1)"
            return 0
        fi
        echo "clang-tidy not installed: the lint gate cannot run." \
            "Install clang-tidy or set SCALO_TIDY_OPTIONAL=1 to" \
            "accept the gap."
        return 1
    fi
    local dir="$ROOT/build-ci-tidy"
    cmake -S "$ROOT" -B "$dir" \
        -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null || return 1
    find "$ROOT/src/scalo" -name '*.cpp' -print0 |
        xargs -0 -n 8 -P "$JOBS" clang-tidy -p "$dir" --quiet
}

main() {
    local what="${1:-all}"
    case "$what" in
    tier1) run_gate tier1 gate_tier1 ;;
    sanitize) run_gate sanitize gate_sanitize ;;
    strict) run_gate strict gate_strict ;;
    negative) run_gate negative gate_negative ;;
    tidy) run_gate tidy gate_tidy ;;
    bench) run_gate bench gate_bench ;;
    scalar) run_gate scalar gate_scalar ;;
    trace) run_gate trace gate_trace ;;
    tsan) run_gate tsan gate_tsan ;;
    scale) run_gate scale gate_scale ;;
    serve) run_gate serve gate_serve ;;
    chaos) run_gate chaos gate_chaos ;;
    all)
        run_gate tier1 gate_tier1
        run_gate sanitize gate_sanitize
        run_gate strict gate_strict
        run_gate negative gate_negative
        run_gate tidy gate_tidy
        run_gate bench gate_bench
        run_gate scalar gate_scalar
        run_gate trace gate_trace
        run_gate tsan gate_tsan
        run_gate scale gate_scale
        run_gate serve gate_serve
        run_gate chaos gate_chaos
        ;;
    *)
        echo "usage: ci/check.sh [tier1|sanitize|strict|negative|tidy|bench|scalar|trace|tsan|scale|serve|chaos|all]"
        exit 2
        ;;
    esac

    if [ "${#FAILURES[@]}" -gt 0 ]; then
        note "FAILED gates: ${FAILURES[*]}"
        exit 1
    fi
    note "all gates passed"
}

main "$@"
