#!/usr/bin/env bash
# The CI gauntlet: every gate the repo holds itself to, in one script.
#
#   ci/check.sh            run everything
#   ci/check.sh tier1      just the tier-1 build + tests
#   ci/check.sh sanitize   ASan+UBSan build + tests (contracts on)
#   ci/check.sh strict     -Werror -Wconversion build of the library
#   ci/check.sh negative   units misuse must FAIL to compile
#   ci/check.sh tidy       clang-tidy over the library (skips if absent)
#   ci/check.sh bench      run bench_micro_kernels + bench_chaos,
#                          refresh the BENCH_kernels.json and
#                          BENCH_chaos.json baselines, and report
#                          regressions vs the committed ones
#                          (SCALO_BENCH_TOLERANCE, default 0.25;
#                          report-only, never fails the build)
#   ci/check.sh trace      run a small SystemSim scenario, export the
#                          Chrome trace JSON, validate its structure
#                          with ci/validate_trace.py
#   ci/check.sh tsan       ThreadSanitizer build + the simulation
#                          runtime tests
#   ci/check.sh serve      Release build of the serving runtime:
#                          load-generator smoke (>=1000 concurrent
#                          queries under a chaos plan, zero hangs,
#                          bounded rejection rate, valid coverage on
#                          partial results), serve_test, and a
#                          BENCH_serve.json refresh (report-only)
#   ci/check.sh chaos      seeded fault-injection matrix under
#                          ASan+UBSan: faults_test plus every
#                          example_chaos_run scenario, each exported
#                          trace validated (fault events required)
#
# Gates are independent build trees (build-ci-*) so the developer's
# ./build is never touched.

set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 4)"
FAILURES=()

note() { printf '\n=== %s ===\n' "$*"; }

run_gate() { # name, function
    local name="$1"
    shift
    note "gate: $name"
    if "$@"; then
        printf -- '--- %s: OK\n' "$name"
    else
        printf -- '--- %s: FAILED\n' "$name"
        FAILURES+=("$name")
    fi
}

configure_build_test() { # builddir, cmake args...
    local dir="$ROOT/$1"
    shift
    cmake -S "$ROOT" -B "$dir" "$@" >/dev/null &&
        cmake --build "$dir" -j "$JOBS" &&
        ctest --test-dir "$dir" -j "$JOBS" --output-on-failure
}

gate_tier1() {
    configure_build_test build-ci-tier1 \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo
}

gate_sanitize() {
    # Contracts are forced on by CMake whenever SCALO_SANITIZE is set;
    # halt_on_error makes UBSan findings fail the ctest run instead of
    # scrolling past.
    UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
        ASAN_OPTIONS="detect_leaks=1" \
        configure_build_test build-ci-asan \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DSCALO_SANITIZE=address,undefined \
        -DSCALO_WERROR=ON
}

gate_strict() {
    local dir="$ROOT/build-ci-strict"
    cmake -S "$ROOT" -B "$dir" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DSCALO_WERROR=ON -DSCALO_WCONVERSION=ON >/dev/null &&
        cmake --build "$dir" -j "$JOBS" --target scalo_core
}

gate_negative() {
    # The dimensional-analysis layer's whole point: unit misuse is a
    # compile error. Each marked line in units_test.cpp must fail.
    local out
    if out=$(cd "$ROOT" && g++ -std=c++20 -fsyntax-only \
        -DSCALO_NEGATIVE_COMPILE_TEST \
        -I src -I tests -I "$(pkg-config --variable=includedir gtest \
            2>/dev/null || echo /usr/include)" \
        tests/units_test.cpp 2>&1); then
        echo "negative-compile test COMPILED: units no longer reject misuse"
        return 1
    fi
    local errors
    errors=$(printf '%s' "$out" | grep -c 'error:')
    if [ "$errors" -lt 4 ]; then
        echo "expected >=4 unit-misuse errors, got $errors:"
        printf '%s\n' "$out" | head -20
        return 1
    fi
    echo "unit misuse rejected with $errors compile errors (>=4 expected)"
}

bench_refresh() { # builddir, target, baseline-name
    # Run one google-benchmark binary, diff its JSON against the
    # committed baseline, then refresh the working-tree baseline so a
    # deliberate perf change is committed alongside the code.
    local dir="$1" target="$2" baseline="$3"
    local fresh="$dir/$baseline"
    "$dir/bench/$target" \
        --benchmark_format=console \
        --benchmark_out="$fresh" \
        --benchmark_out_format=json || return 1

    # Compare against the baseline as committed, not the working tree,
    # so re-running the gate never compares a file with itself.
    local committed="$dir/${baseline%.json}.committed.json"
    if git -C "$ROOT" show "HEAD:$baseline" \
        >"$committed" 2>/dev/null; then
        python3 "$ROOT/ci/compare_bench.py" "$committed" "$fresh" \
            --tolerance "${SCALO_BENCH_TOLERANCE:-0.25}" || return 1
    else
        echo "no committed $baseline baseline; creating one"
    fi
    cp "$fresh" "$ROOT/$baseline"
    echo "refreshed $baseline (commit it to move the baseline)"
}

gate_bench() {
    # Perf trajectory, not a pass/fail gate: build the microbenches at
    # the tier-1 optimization level and refresh both baselines.
    local dir="$ROOT/build-ci-bench"
    cmake -S "$ROOT" -B "$dir" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null &&
        cmake --build "$dir" -j "$JOBS" \
            --target bench_micro_kernels bench_chaos ||
        return 1
    bench_refresh "$dir" bench_micro_kernels BENCH_kernels.json &&
        bench_refresh "$dir" bench_chaos BENCH_chaos.json
}

gate_trace() {
    # End-to-end observability check: schedule + simulate a small
    # system, export the event trace, and validate the Chrome JSON
    # invariants Perfetto relies on.
    local dir="$ROOT/build-ci-tier1"
    cmake -S "$ROOT" -B "$dir" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null &&
        cmake --build "$dir" -j "$JOBS" \
            --target example_simulate_system || return 1
    local trace="$dir/system_trace.json"
    "$dir/examples/example_simulate_system" --trace "$trace" ||
        return 1
    python3 "$ROOT/ci/validate_trace.py" "$trace"
}

gate_tsan() {
    # The discrete-event engine is single-threaded by design; TSan
    # guards the boundary where the parallel query runtime and the
    # simulation runtime share process state.
    local dir="$ROOT/build-ci-tsan"
    cmake -S "$ROOT" -B "$dir" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DSCALO_SANITIZE=thread >/dev/null &&
        cmake --build "$dir" -j "$JOBS" \
            --target sim_test system_sim_test \
            query_concurrency_test serve_concurrency_test &&
        ctest --test-dir "$dir" -j "$JOBS" --output-on-failure \
            -R '^(Simulator|SystemSim|NetworkErrors|HashEncodingDelay|NetworkBerDelay|ThreadPool|ShardedQuery|QueryServer)'
}

gate_serve() {
    # The serving-runtime smoke: a Release build (the load numbers
    # only mean something optimized), the serve unit tests, the load
    # generator sustaining >=1000 concurrent mixed queries while the
    # chaos plan crashes nodes — the binary itself enforces the
    # contract (zero hangs, bounded rejection rate, valid coverage on
    # partial results) through its exit code — and a report-only
    # BENCH_serve.json refresh.
    local dir="$ROOT/build-ci-serve"
    cmake -S "$ROOT" -B "$dir" \
        -DCMAKE_BUILD_TYPE=Release >/dev/null &&
        cmake --build "$dir" -j "$JOBS" \
            --target serve_test example_load_generator \
            bench_serve || return 1

    "$dir/tests/serve_test" || return 1

    note "serve load smoke (chaos plan)"
    "$dir/examples/example_load_generator" \
        --queries 4000 --inflight 1200 --min-inflight 1000 \
        --max-reject-rate 0.5 || return 1

    bench_refresh "$dir" bench_serve BENCH_serve.json
}

gate_chaos() {
    # The fault matrix: the fault-framework tests plus every
    # example_chaos_run scenario, under ASan+UBSan with contracts on
    # (SCALO_SANITIZE forces them), each exported trace validated —
    # including that the failure story actually made it into the
    # trace. Scenarios are seeded and deterministic, so this gate is
    # never flaky.
    local dir="$ROOT/build-ci-asan"
    UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
        ASAN_OPTIONS="detect_leaks=1" \
        cmake -S "$ROOT" -B "$dir" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DSCALO_SANITIZE=address,undefined \
        -DSCALO_WERROR=ON >/dev/null &&
        cmake --build "$dir" -j "$JOBS" \
            --target faults_test example_chaos_run || return 1

    "$dir/tests/faults_test" || return 1

    local scenario trace
    for scenario in crash dropout nvm throttle combined; do
        note "chaos scenario: $scenario"
        trace="$dir/chaos_${scenario}.json"
        "$dir/examples/example_chaos_run" \
            --scenario "$scenario" --duration 2400 \
            --trace "$trace" || return 1
        # Every scenario marks at least its injection instants, so
        # fault events are required across the whole matrix.
        python3 "$ROOT/ci/validate_trace.py" "$trace" \
            --require-fault-events || return 1
    done
}

gate_tidy() {
    if ! command -v clang-tidy >/dev/null 2>&1; then
        echo "clang-tidy not installed; skipping (gate passes vacuously)"
        return 0
    fi
    local dir="$ROOT/build-ci-tidy"
    cmake -S "$ROOT" -B "$dir" \
        -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null || return 1
    find "$ROOT/src/scalo" -name '*.cpp' -print0 |
        xargs -0 -n 8 -P "$JOBS" clang-tidy -p "$dir" --quiet
}

main() {
    local what="${1:-all}"
    case "$what" in
    tier1) run_gate tier1 gate_tier1 ;;
    sanitize) run_gate sanitize gate_sanitize ;;
    strict) run_gate strict gate_strict ;;
    negative) run_gate negative gate_negative ;;
    tidy) run_gate tidy gate_tidy ;;
    bench) run_gate bench gate_bench ;;
    trace) run_gate trace gate_trace ;;
    tsan) run_gate tsan gate_tsan ;;
    serve) run_gate serve gate_serve ;;
    chaos) run_gate chaos gate_chaos ;;
    all)
        run_gate tier1 gate_tier1
        run_gate sanitize gate_sanitize
        run_gate strict gate_strict
        run_gate negative gate_negative
        run_gate tidy gate_tidy
        run_gate bench gate_bench
        run_gate trace gate_trace
        run_gate tsan gate_tsan
        run_gate serve gate_serve
        run_gate chaos gate_chaos
        ;;
    *)
        echo "usage: ci/check.sh [tier1|sanitize|strict|negative|tidy|bench|trace|tsan|serve|chaos|all]"
        exit 2
        ;;
    esac

    if [ "${#FAILURES[@]}" -gt 0 ]; then
        note "FAILED gates: ${FAILURES[*]}"
        exit 1
    fi
    note "all gates passed"
}

main "$@"
