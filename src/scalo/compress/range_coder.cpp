#include "scalo/compress/range_coder.hpp"

#include "scalo/compress/lic.hpp"

#include <bit>

#include "scalo/util/logging.hpp"

namespace scalo::compress {

namespace {

constexpr std::uint32_t kTopValue = 1u << 24;
constexpr std::uint32_t kMaxTotal = 1u << 16;

} // namespace

MarkovModel::MarkovModel(unsigned alphabet_size, bool order1)
    : alphabet(alphabet_size), useContext(order1)
{
    SCALO_ASSERT(alphabet >= 2 && alphabet <= 64,
                 "alphabet out of range: ", alphabet);
    reset();
}

void
MarkovModel::reset()
{
    const unsigned contexts = useContext ? alphabet : 1;
    counts.assign(contexts, std::vector<std::uint32_t>(alphabet, 1));
    totals.assign(contexts, alphabet);
    context = 0;
}

std::uint32_t
MarkovModel::cumulative(unsigned symbol) const
{
    std::uint32_t acc = 0;
    for (unsigned s = 0; s < symbol; ++s)
        acc += counts[context][s];
    return acc;
}

std::uint32_t
MarkovModel::frequency(unsigned symbol) const
{
    SCALO_ASSERT(symbol < alphabet, "symbol ", symbol, " of ",
                 alphabet);
    return counts[context][symbol];
}

std::uint32_t
MarkovModel::total() const
{
    return totals[context];
}

unsigned
MarkovModel::find(std::uint32_t target) const
{
    std::uint32_t acc = 0;
    for (unsigned s = 0; s < alphabet; ++s) {
        acc += counts[context][s];
        if (target < acc)
            return s;
    }
    SCALO_PANIC("cumulative target out of range");
}

void
MarkovModel::update(unsigned symbol)
{
    SCALO_ASSERT(symbol < alphabet, "symbol out of range");
    counts[context][symbol] += 32;
    totals[context] += 32;
    if (totals[context] >= kMaxTotal) {
        // Halve (keeping minimum 1) to stay adaptive and within the
        // coder's precision budget.
        std::uint32_t total = 0;
        for (auto &c : counts[context]) {
            c = (c + 1) / 2;
            total += c;
        }
        totals[context] = total;
    }
    if (useContext)
        context = symbol;
}

void
RangeEncoder::encode(MarkovModel &model, unsigned symbol)
{
    const std::uint32_t total = model.total();
    const std::uint32_t cum = model.cumulative(symbol);
    const std::uint32_t freq = model.frequency(symbol);
    range /= total;
    low += static_cast<std::uint64_t>(cum) * range;
    range *= freq;
    normalize();
    model.update(symbol);
}

void
RangeEncoder::normalize()
{
    // Carry propagation + byte emission.
    while (true) {
        if (low >= (1ULL << 32)) {
            // Propagate the carry into already-emitted bytes.
            std::size_t i = bytes.size();
            while (i > 0 && bytes[i - 1] == 0xff)
                bytes[--i] = 0x00;
            SCALO_ASSERT(i > 0, "carry out of empty buffer");
            ++bytes[i - 1];
            low &= 0xffffffffULL;
        }
        if (range >= kTopValue)
            break;
        bytes.push_back(static_cast<std::uint8_t>(low >> 24));
        low = (low << 8) & 0xffffffffULL;
        range <<= 8;
    }
}

std::vector<std::uint8_t>
RangeEncoder::finish()
{
    // Flush the remaining 4 bytes of low.
    for (int i = 0; i < 4; ++i) {
        if (low >= (1ULL << 32)) {
            std::size_t j = bytes.size();
            while (j > 0 && bytes[j - 1] == 0xff)
                bytes[--j] = 0x00;
            SCALO_ASSERT(j > 0, "carry out of empty buffer");
            ++bytes[j - 1];
            low &= 0xffffffffULL;
        }
        bytes.push_back(static_cast<std::uint8_t>(low >> 24));
        low = (low << 8) & 0xffffffffULL;
    }
    return std::move(bytes);
}

RangeDecoder::RangeDecoder(const std::vector<std::uint8_t> &input)
    : data(&input)
{
    for (int i = 0; i < 4; ++i) {
        code = (code << 8) |
               (position < data->size() ? (*data)[position++] : 0);
    }
}

unsigned
RangeDecoder::decode(MarkovModel &model)
{
    const std::uint32_t total = model.total();
    range /= total;
    const std::uint32_t target = std::min(
        total - 1, static_cast<std::uint32_t>(
                       (code - static_cast<std::uint32_t>(low)) /
                       range));
    const unsigned symbol = model.find(target);
    const std::uint32_t cum = model.cumulative(symbol);
    const std::uint32_t freq = model.frequency(symbol);
    low += static_cast<std::uint64_t>(cum) * range;
    range *= freq;
    normalize();
    model.update(symbol);
    return symbol;
}

void
RangeDecoder::normalize()
{
    while (true) {
        if (low >= (1ULL << 32))
            low &= 0xffffffffULL;
        if (range >= kTopValue)
            break;
        code = (code << 8) |
               (position < data->size() ? (*data)[position++] : 0);
        low = (low << 8) & 0xffffffffULL;
        range <<= 8;
    }
}

TokenizedValue
tokenize(std::uint64_t zigzag)
{
    if (zigzag == 0)
        return {0, 0};
    const unsigned bits =
        64 - static_cast<unsigned>(std::countl_zero(zigzag));
    SCALO_ASSERT(bits < kTokenAlphabet, "value too wide: ", zigzag);
    return {bits, static_cast<std::uint32_t>(
                      zigzag - (1ULL << (bits - 1)))};
}

std::uint64_t
detokenize(unsigned token, std::uint32_t extra)
{
    if (token == 0)
        return 0;
    return (1ULL << (token - 1)) + extra;
}

std::vector<std::uint8_t>
neuralStreamCompress(const std::vector<Sample> &samples)
{
    // Stage 1: LIC residuals (second-order predictor, inline to keep
    // the token stream aligned with the extra-bit stream).
    std::vector<std::uint64_t> zigzags;
    zigzags.reserve(samples.size());
    std::int64_t prev1 = 0, prev2 = 0;
    for (std::size_t i = 0; i < samples.size(); ++i) {
        std::int64_t predicted = 0;
        if (i == 1)
            predicted = prev1;
        else if (i >= 2)
            predicted = 2 * prev1 - prev2;
        zigzags.push_back(
            zigzagEncode(static_cast<std::int64_t>(samples[i]) -
                         predicted));
        prev2 = prev1;
        prev1 = samples[i];
    }

    // Stage 2+3: TOK tokens through the MA+RC entropy coder; extra
    // bits raw into a bit stream.
    MarkovModel model(kTokenAlphabet, /*order1=*/true);
    RangeEncoder encoder;
    BitWriter extras;
    for (std::uint64_t z : zigzags) {
        const TokenizedValue tv = tokenize(z);
        encoder.encode(model, tv.token);
        if (tv.token > 1)
            extras.putBits(tv.extra, tv.token - 1);
    }
    const auto coded = encoder.finish();
    const auto extra_bytes = extras.take();

    // Layout: [coded size (4B)] [coded] [extras].
    std::vector<std::uint8_t> out;
    const auto coded_size = static_cast<std::uint32_t>(coded.size());
    for (int i = 3; i >= 0; --i)
        out.push_back(static_cast<std::uint8_t>(
            (coded_size >> (8 * i)) & 0xff));
    out.insert(out.end(), coded.begin(), coded.end());
    out.insert(out.end(), extra_bytes.begin(), extra_bytes.end());
    return out;
}

std::vector<Sample>
neuralStreamDecompress(const std::vector<std::uint8_t> &data,
                       std::size_t count)
{
    SCALO_ASSERT(data.size() >= 4, "truncated stream");
    std::uint32_t coded_size = 0;
    for (int i = 0; i < 4; ++i)
        coded_size = (coded_size << 8) |
                     data[static_cast<std::size_t>(i)];
    SCALO_ASSERT(4 + coded_size <= data.size(), "truncated stream");

    const std::vector<std::uint8_t> coded(
        data.begin() + 4, data.begin() + 4 + coded_size);
    const std::vector<std::uint8_t> extra_bytes(
        data.begin() + 4 + coded_size, data.end());

    MarkovModel model(kTokenAlphabet, /*order1=*/true);
    RangeDecoder decoder(coded);
    BitReader extras(extra_bytes);

    std::vector<Sample> out;
    out.reserve(count);
    std::int64_t prev1 = 0, prev2 = 0;
    for (std::size_t i = 0; i < count; ++i) {
        const unsigned token = decoder.decode(model);
        std::uint32_t extra = 0;
        if (token > 1)
            extra = static_cast<std::uint32_t>(
                extras.getBits(token - 1));
        const std::int64_t residual =
            zigzagDecode(detokenize(token, extra));
        std::int64_t predicted = 0;
        if (i == 1)
            predicted = prev1;
        else if (i >= 2)
            predicted = 2 * prev1 - prev2;
        const std::int64_t x = predicted + residual;
        SCALO_ASSERT(x >= -32'768 && x <= 32'767,
                     "corrupt neural stream: sample ", x);
        out.push_back(static_cast<Sample>(x));
        prev2 = prev1;
        prev1 = x;
    }
    return out;
}

} // namespace scalo::compress
