#include "scalo/compress/elias.hpp"

#include <bit>

#include "scalo/util/logging.hpp"

namespace scalo::compress {

void
eliasGammaEncode(BitWriter &writer, std::uint64_t value)
{
    SCALO_ASSERT(value >= 1, "Elias-gamma encodes positive integers");
    const int bits = 64 - std::countl_zero(value); // floor(log2)+1
    for (int i = 0; i < bits - 1; ++i)
        writer.putBit(0);
    writer.putBits(value, static_cast<unsigned>(bits));
}

std::uint64_t
eliasGammaDecode(BitReader &reader)
{
    int zeros = 0;
    while (reader.getBit() == 0) {
        ++zeros;
        SCALO_ASSERT(zeros < 64, "corrupt Elias-gamma stream");
    }
    std::uint64_t value = 1;
    for (int i = 0; i < zeros; ++i)
        value = (value << 1) | reader.getBit();
    return value;
}

std::vector<std::uint8_t>
eliasGammaEncodeAll(const std::vector<std::uint64_t> &values)
{
    BitWriter writer;
    for (std::uint64_t v : values)
        eliasGammaEncode(writer, v);
    return writer.take();
}

std::vector<std::uint64_t>
eliasGammaDecodeAll(const std::vector<std::uint8_t> &data,
                    std::size_t count)
{
    BitReader reader(data);
    std::vector<std::uint64_t> values;
    values.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        values.push_back(eliasGammaDecode(reader));
    return values;
}

} // namespace scalo::compress
