/**
 * @file
 * A compact LZ77 byte compressor standing in for HALO's LZ PE (used in
 * SCALO only as the compression-ratio baseline that HCOMP is compared
 * against; HALO used LZ/LZMA for bulk offload to external servers).
 */

#pragma once

#include <cstdint>
#include <vector>

namespace scalo::compress {

/**
 * LZ77-compress @p input with a sliding window.
 *
 * Token format: a literal flag bit, then either 8 literal bits or a
 * (distance, length) pair with 12/6 bits.
 */
std::vector<std::uint8_t> lzCompress(const std::vector<std::uint8_t> &input);

/** Invert lzCompress(). @param original_size decoded byte count */
std::vector<std::uint8_t>
lzDecompress(const std::vector<std::uint8_t> &compressed,
             std::size_t original_size);

} // namespace scalo::compress
