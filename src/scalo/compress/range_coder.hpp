/**
 * @file
 * Range coding (the RC PE) with an adaptive Markov-chain symbol model
 * (the MA PE), plus the TOK tokenizer that maps sample residuals onto
 * a small symbol alphabet. Together with LIC these form HALO's
 * external-offload compression pipeline, retained in SCALO for bulk
 * data shipped through the external radio.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "scalo/util/bitstream.hpp"
#include "scalo/util/types.hpp"

namespace scalo::compress {

/**
 * Adaptive order-1 (Markov) frequency model over a small alphabet:
 * each context (the previous symbol) keeps its own adaptive counts.
 * With contexts disabled it degrades to an order-0 model.
 */
class MarkovModel
{
  public:
    /**
     * @param alphabet  symbol count (<= 64)
     * @param order1    true = per-previous-symbol contexts (MA PE)
     */
    explicit MarkovModel(unsigned alphabet, bool order1 = true);

    unsigned alphabetSize() const { return alphabet; }

    /** Cumulative frequency below @p symbol in the current context. */
    std::uint32_t cumulative(unsigned symbol) const;

    /** Frequency of @p symbol in the current context. */
    std::uint32_t frequency(unsigned symbol) const;

    /** Total frequency of the current context. */
    std::uint32_t total() const;

    /** Find the symbol covering cumulative value @p target. */
    unsigned find(std::uint32_t target) const;

    /** Update counts and advance the context. */
    void update(unsigned symbol);

    /** Reset counts and context. */
    void reset();

  private:
    unsigned alphabet;
    bool useContext;
    unsigned context = 0;
    /** counts[context][symbol]. */
    std::vector<std::vector<std::uint32_t>> counts;
    std::vector<std::uint32_t> totals;
};

/** Byte-oriented range encoder (Subbotin-style, 32-bit range). */
class RangeEncoder
{
  public:
    /** Encode @p symbol under @p model (and update the model). */
    void encode(MarkovModel &model, unsigned symbol);

    /** Flush and take the byte stream. */
    std::vector<std::uint8_t> finish();

  private:
    void normalize();

    std::uint64_t low = 0;
    std::uint32_t range = 0xffffffffu;
    std::vector<std::uint8_t> bytes;
};

/** The matching decoder. */
class RangeDecoder
{
  public:
    explicit RangeDecoder(const std::vector<std::uint8_t> &data);

    /** Decode one symbol under @p model (and update the model). */
    unsigned decode(MarkovModel &model);

  private:
    void normalize();

    const std::vector<std::uint8_t> *data;
    std::size_t position = 0;
    std::uint64_t low = 0;
    std::uint32_t range = 0xffffffffu;
    std::uint32_t code = 0;
};

/**
 * The TOK PE: map a zig-zag value onto (bucket token, extra bits).
 * The token is the bit length (0..17 for 16-bit residuals); the extra
 * bits are the value below its leading one. Tokens go to the MA+RC
 * entropy coder; extra bits are stored raw.
 */
struct TokenizedValue
{
    unsigned token;
    std::uint32_t extra;
};

/** Tokenize one zig-zag value. */
TokenizedValue tokenize(std::uint64_t zigzag);

/** Invert tokenize(). */
std::uint64_t detokenize(unsigned token, std::uint32_t extra);

/** Token alphabet size for 16-bit samples. */
inline constexpr unsigned kTokenAlphabet = 20;

/**
 * The full neural-stream compressor: LIC residuals -> TOK tokens ->
 * order-1 MA model -> RC entropy coding, extra bits appended raw.
 */
std::vector<std::uint8_t>
neuralStreamCompress(const std::vector<Sample> &samples);

/** Invert neuralStreamCompress(). @param count original samples */
std::vector<Sample>
neuralStreamDecompress(const std::vector<std::uint8_t> &data,
                       std::size_t count);

} // namespace scalo::compress
