/**
 * @file
 * The HFREQ and HCOMP PEs (Section 3.2): hash compression customised to
 * intra-SCALO traffic.
 *
 *  - HFREQ collects a node's hash values and sorts them by frequency of
 *    occurrence, producing the dictionary.
 *  - HCOMP encodes the hash stream as dictionary indexes, run-length
 *    encodes the index stream, and finally Elias-gamma codes the
 *    run-length counts.
 *
 * DCOMP (decode) reverses the pipeline. The paper reports a compression
 * ratio within 10% of LZ4/LZMA at 7x less power.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "scalo/util/types.hpp"

namespace scalo::compress {

/** A (symbol, run length) pair produced by the run-length stage. */
struct Run
{
    std::uint8_t symbol;
    std::uint64_t length;

    bool operator==(const Run &) const = default;
};

/**
 * HFREQ: dictionary of distinct hash values sorted by descending
 * frequency (ties broken by value for determinism).
 */
std::vector<std::uint8_t>
frequencyDictionary(const std::vector<HashValue> &hashes);

/** Run-length encode a byte sequence. */
std::vector<Run> runLengthEncode(const std::vector<std::uint8_t> &data);

/** Invert runLengthEncode(). */
std::vector<std::uint8_t> runLengthDecode(const std::vector<Run> &runs);

/** A compressed hash block as carried in intra-SCALO packets. */
struct CompressedHashes
{
    /** Serialised block: dictionary + coded indexes/runs. */
    std::vector<std::uint8_t> payload;
    /** Original hash count (carried in the packet header). */
    std::uint32_t originalCount = 0;

    double
    compressionRatio() const
    {
        return payload.empty()
                   ? 0.0
                   : static_cast<double>(originalCount) /
                         static_cast<double>(payload.size());
    }
};

/** HCOMP: compress a node's hash batch. */
CompressedHashes compressHashes(const std::vector<HashValue> &hashes);

/** DCOMP: decompress a hash block. */
std::vector<HashValue> decompressHashes(const CompressedHashes &block);

} // namespace scalo::compress
