#include "scalo/compress/hcomp.hpp"

#include <algorithm>
#include <array>
#include <bit>

#include "scalo/compress/elias.hpp"
#include "scalo/util/bitstream.hpp"
#include "scalo/util/logging.hpp"

namespace scalo::compress {

std::vector<std::uint8_t>
frequencyDictionary(const std::vector<HashValue> &hashes)
{
    std::array<std::uint32_t, 256> counts{};
    for (HashValue h : hashes)
        ++counts[h];

    std::vector<std::uint8_t> dict;
    for (int v = 0; v < 256; ++v)
        if (counts[v] > 0)
            dict.push_back(static_cast<std::uint8_t>(v));
    std::sort(dict.begin(), dict.end(),
              [&](std::uint8_t a, std::uint8_t b) {
                  if (counts[a] != counts[b])
                      return counts[a] > counts[b];
                  return a < b;
              });
    return dict;
}

std::vector<Run>
runLengthEncode(const std::vector<std::uint8_t> &data)
{
    std::vector<Run> runs;
    for (std::size_t i = 0; i < data.size();) {
        std::size_t j = i;
        while (j < data.size() && data[j] == data[i])
            ++j;
        runs.push_back({data[i], j - i});
        i = j;
    }
    return runs;
}

std::vector<std::uint8_t>
runLengthDecode(const std::vector<Run> &runs)
{
    std::vector<std::uint8_t> out;
    for (const Run &run : runs)
        out.insert(out.end(), run.length, run.symbol);
    return out;
}

namespace {

/** Minimal fixed bit width to represent values in [0, n). */
unsigned
indexBits(std::size_t n)
{
    if (n <= 1)
        return 1;
    return static_cast<unsigned>(
        64 - std::countl_zero(static_cast<std::uint64_t>(n - 1)));
}

} // namespace

CompressedHashes
compressHashes(const std::vector<HashValue> &hashes)
{
    CompressedHashes block;
    block.originalCount = static_cast<std::uint32_t>(hashes.size());
    if (hashes.empty())
        return block;

    // Stage 1 (HFREQ): frequency-ordered dictionary. Frequent hashes get
    // small indexes, which in turn form longer runs of small symbols.
    const auto dict = frequencyDictionary(hashes);
    std::array<std::uint8_t, 256> index_of{};
    for (std::size_t i = 0; i < dict.size(); ++i)
        index_of[dict[i]] = static_cast<std::uint8_t>(i);

    // Stage 2: dictionary-code the stream.
    std::vector<std::uint8_t> indexes;
    indexes.reserve(hashes.size());
    for (HashValue h : hashes)
        indexes.push_back(index_of[h]);

    // Stage 3: run-length encode the index stream.
    const auto runs = runLengthEncode(indexes);

    // Stage 4: bit-pack. Dictionary entries are raw bytes; run symbols
    // use the minimal fixed width; run lengths use Elias-gamma [31].
    BitWriter writer;
    writer.putBits(dict.size(), 9); // 1..256 distinct values
    for (std::uint8_t v : dict)
        writer.putBits(v, 8);
    eliasGammaEncode(writer, runs.size());
    const unsigned width = indexBits(dict.size());
    for (const Run &run : runs) {
        writer.putBits(run.symbol, width);
        eliasGammaEncode(writer, run.length);
    }
    block.payload = writer.take();
    return block;
}

std::vector<HashValue>
decompressHashes(const CompressedHashes &block)
{
    std::vector<HashValue> hashes;
    if (block.originalCount == 0)
        return hashes;
    SCALO_ASSERT(!block.payload.empty(), "empty payload with count ",
                 block.originalCount);

    BitReader reader(block.payload);
    const auto dict_size = reader.getBits(9);
    SCALO_ASSERT(dict_size >= 1 && dict_size <= 256, "bad dictionary");
    std::vector<std::uint8_t> dict(dict_size);
    for (auto &v : dict)
        v = static_cast<std::uint8_t>(reader.getBits(8));

    const auto run_count = eliasGammaDecode(reader);
    const unsigned width = indexBits(dict_size);
    hashes.reserve(block.originalCount);
    for (std::uint64_t r = 0; r < run_count; ++r) {
        const auto index = reader.getBits(width);
        SCALO_ASSERT(index < dict_size, "index out of dictionary");
        const auto length = eliasGammaDecode(reader);
        hashes.insert(hashes.end(), length, dict[index]);
    }
    SCALO_ASSERT(hashes.size() == block.originalCount,
                 "decoded ", hashes.size(), " of ", block.originalCount);
    return hashes;
}

} // namespace scalo::compress
