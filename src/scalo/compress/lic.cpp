#include "scalo/compress/lic.hpp"

#include "scalo/compress/elias.hpp"
#include "scalo/util/bitstream.hpp"
#include "scalo/util/logging.hpp"

namespace scalo::compress {

std::uint64_t
zigzagEncode(std::int64_t value)
{
    return (static_cast<std::uint64_t>(value) << 1) ^
           static_cast<std::uint64_t>(value >> 63);
}

std::int64_t
zigzagDecode(std::uint64_t value)
{
    return static_cast<std::int64_t>(value >> 1) ^
           -static_cast<std::int64_t>(value & 1);
}

std::vector<std::uint8_t>
licCompress(const std::vector<Sample> &input)
{
    BitWriter writer;
    std::int64_t prev1 = 0, prev2 = 0;
    for (std::size_t i = 0; i < input.size(); ++i) {
        const std::int64_t x = input[i];
        // Second-order predictor; the first two samples predict from
        // shorter history (0, then first-order).
        std::int64_t predicted = 0;
        if (i == 1)
            predicted = prev1;
        else if (i >= 2)
            predicted = 2 * prev1 - prev2;
        const std::int64_t residual = x - predicted;
        // Elias-gamma codes positive integers, so shift by one.
        eliasGammaEncode(writer, zigzagEncode(residual) + 1);
        prev2 = prev1;
        prev1 = x;
    }
    return writer.take();
}

std::vector<Sample>
licDecompress(const std::vector<std::uint8_t> &compressed,
              std::size_t count)
{
    std::vector<Sample> out;
    out.reserve(count);
    BitReader reader(compressed);
    std::int64_t prev1 = 0, prev2 = 0;
    for (std::size_t i = 0; i < count; ++i) {
        const std::int64_t residual =
            zigzagDecode(eliasGammaDecode(reader) - 1);
        std::int64_t predicted = 0;
        if (i == 1)
            predicted = prev1;
        else if (i >= 2)
            predicted = 2 * prev1 - prev2;
        const std::int64_t x = predicted + residual;
        SCALO_ASSERT(x >= -32'768 && x <= 32'767,
                     "corrupt LIC stream: sample ", x);
        out.push_back(static_cast<Sample>(x));
        prev2 = prev1;
        prev1 = x;
    }
    return out;
}

} // namespace scalo::compress
