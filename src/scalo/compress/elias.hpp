/**
 * @file
 * Elias-gamma universal integer coding [31], the final stage of the
 * HCOMP hash-compression pipeline (Section 3.2).
 */

#pragma once

#include <cstdint>
#include <vector>

#include "scalo/util/bitstream.hpp"

namespace scalo::compress {

/** Append the Elias-gamma code of @p value (>= 1) to @p writer. */
void eliasGammaEncode(BitWriter &writer, std::uint64_t value);

/** Decode one Elias-gamma value from @p reader. */
std::uint64_t eliasGammaDecode(BitReader &reader);

/** Encode a whole sequence (each value >= 1). */
std::vector<std::uint8_t>
eliasGammaEncodeAll(const std::vector<std::uint64_t> &values);

/** Decode exactly @p count values. */
std::vector<std::uint64_t>
eliasGammaDecodeAll(const std::vector<std::uint8_t> &data,
                    std::size_t count);

} // namespace scalo::compress
