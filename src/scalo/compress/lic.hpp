/**
 * @file
 * Linear integer coding (the LIC PE): lossless compression of raw
 * neural sample streams by linear prediction. Neighbouring 30 kHz
 * samples are highly correlated, so second-order residuals are small;
 * they are zig-zag mapped and variable-length coded.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "scalo/util/types.hpp"

namespace scalo::compress {

/**
 * Compress a sample stream: residual = x[n] - 2 x[n-1] + x[n-2]
 * (second-order linear predictor), zig-zag mapped, Elias-gamma coded.
 */
std::vector<std::uint8_t> licCompress(const std::vector<Sample> &input);

/** Invert licCompress(). @param count original sample count */
std::vector<Sample>
licDecompress(const std::vector<std::uint8_t> &compressed,
              std::size_t count);

/** Zig-zag map: signed to unsigned, small magnitudes to small codes. */
std::uint64_t zigzagEncode(std::int64_t value);

/** Invert zigzagEncode(). */
std::int64_t zigzagDecode(std::uint64_t value);

} // namespace scalo::compress
