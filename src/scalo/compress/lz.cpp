#include "scalo/compress/lz.hpp"

#include <algorithm>

#include "scalo/util/bitstream.hpp"
#include "scalo/util/logging.hpp"

namespace scalo::compress {

namespace {

constexpr std::size_t kWindow = 4'096;   // 12-bit distances
constexpr std::size_t kMaxMatch = 63;    // 6-bit lengths
constexpr std::size_t kMinMatch = 4;     // below this, literals win

} // namespace

std::vector<std::uint8_t>
lzCompress(const std::vector<std::uint8_t> &input)
{
    BitWriter writer;
    std::size_t pos = 0;
    while (pos < input.size()) {
        // Greedy longest match within the window.
        std::size_t best_len = 0, best_dist = 0;
        const std::size_t window_start =
            (pos > kWindow) ? pos - kWindow : 0;
        for (std::size_t cand = window_start; cand < pos; ++cand) {
            std::size_t len = 0;
            while (len < kMaxMatch && pos + len < input.size() &&
                   input[cand + len] == input[pos + len]) {
                ++len;
            }
            if (len > best_len) {
                best_len = len;
                best_dist = pos - cand;
            }
        }
        if (best_len >= kMinMatch) {
            writer.putBit(0);
            writer.putBits(best_dist, 12);
            writer.putBits(best_len, 6);
            pos += best_len;
        } else {
            writer.putBit(1);
            writer.putBits(input[pos], 8);
            ++pos;
        }
    }
    return writer.take();
}

std::vector<std::uint8_t>
lzDecompress(const std::vector<std::uint8_t> &compressed,
             std::size_t original_size)
{
    std::vector<std::uint8_t> out;
    out.reserve(original_size);
    BitReader reader(compressed);
    while (out.size() < original_size) {
        if (reader.getBit()) {
            out.push_back(static_cast<std::uint8_t>(reader.getBits(8)));
        } else {
            const auto dist = reader.getBits(12);
            const auto len = reader.getBits(6);
            SCALO_ASSERT(dist >= 1 && dist <= out.size(),
                         "bad LZ distance ", dist);
            for (std::uint64_t i = 0; i < len; ++i)
                out.push_back(out[out.size() - dist]);
        }
    }
    SCALO_ASSERT(out.size() == original_size, "overshot decode");
    return out;
}

} // namespace scalo::compress
