/**
 * @file
 * Wall-clock chaos for the serving runtime: ChaosDriver replays the
 * node-crash timeline of a sim::FaultPlan — the same declarative
 * plans the simulation runtime injects — against a live QueryServer,
 * flipping nodes down at each crash instant and back up at each
 * reboot through QueryServer::setNodeDown(). Plan time (the
 * simulation clock) is mapped onto host wall-clock by a configurable
 * scale, so a seconds-long simulated outage can stress a
 * milliseconds-long load run.
 *
 * Only crash/reboot faults apply: the serving path has no radio or
 * NVM model, so dropout/BER/NVM/thermal entries are ignored (counted
 * in skipped() for visibility). The driver is a background thread;
 * stop() is prompt — it interrupts any pending sleep — and the
 * destructor stops implicitly.
 */

#pragma once

#include <cstddef>
#include <thread>
#include <vector>

#include "scalo/serve/query_server.hpp"
#include "scalo/sim/faults/fault_plan.hpp"
#include "scalo/util/ranked_mutex.hpp"

namespace scalo::serve {

/** Replays a FaultPlan's crash timeline onto a live QueryServer. */
class ChaosDriver
{
  public:
    /**
     * @param server     the server whose nodes get flipped
     * @param plan       fault plan; only crashes/reboots apply
     * @param time_scale wall-clock ms per plan ms (0.1 = 10x faster)
     */
    ChaosDriver(QueryServer &server, const sim::FaultPlan &plan,
                double time_scale = 1.0);

    /** Stops the driver (nodes keep their current up/down state). */
    ~ChaosDriver();

    ChaosDriver(const ChaosDriver &) = delete;
    ChaosDriver &operator=(const ChaosDriver &) = delete;

    /** Begin replaying; no-op if already started. */
    void start();

    /** Stop promptly, interrupting any pending sleep. Idempotent. */
    void stop();

    /** Block until every event fired or @p timeout_ms elapsed. */
    bool waitDone(double timeout_ms);

    /** Down/up flips applied so far. */
    std::size_t applied() const;

    /** Total flips the plan schedules. */
    std::size_t scheduled() const { return events.size(); }

    /** Plan entries with no serving-path equivalent (ignored). */
    std::size_t skipped() const { return ignoredFaults; }

  private:
    /** One scheduled flip, in wall-clock ms from start(). */
    struct Event
    {
        double atMs = 0.0;
        NodeId node = 0;
        bool down = true;
    };

    void driverMain();

    QueryServer &server;
    /** Fixed at construction; read lock-free. */
    std::vector<Event> events;
    std::size_t ignoredFaults = 0;

    mutable util::RankedMutex<util::lockrank::kServeChaosDriver> mtx;
    util::ConditionVariable cv;
    std::size_t fired SCALO_GUARDED_BY(mtx) = 0;
    bool stopping SCALO_GUARDED_BY(mtx) = false;
    bool started SCALO_GUARDED_BY(mtx) = false;
    /**
     * The replay thread handle. Guarded: start() installs it and
     * stop() *moves it out* under the lock, joining outside — a
     * joinable() probe on the bare member would race a concurrent
     * start() (a discipline bug the annotation sweep surfaced).
     */
    std::thread driver SCALO_GUARDED_BY(mtx);
};

} // namespace scalo::serve
