#include "scalo/serve/plan_cache.hpp"

#include "scalo/util/logging.hpp"

namespace scalo::serve {

PlanCache::PlanCache(std::size_t cap)
    : capacity(cap)
{
    SCALO_ASSERT(capacity >= 1, "plan cache needs capacity >= 1");
}

PlanCache::Plan
PlanCache::lookup(const std::string &key)
{
    util::MutexLock lock(mtx);
    const auto it = map.find(key);
    if (it == map.end()) {
        ++counters.misses;
        return nullptr;
    }
    ++counters.hits;
    lru.splice(lru.begin(), lru, it->second);
    return it->second->plan;
}

PlanCache::Plan
PlanCache::insert(const std::string &key, Plan plan)
{
    util::MutexLock lock(mtx);
    const auto it = map.find(key);
    if (it != map.end()) {
        // A racing compile got here first; keep the incumbent (every
        // holder of it stays deduplicated onto one object).
        lru.splice(lru.begin(), lru, it->second);
        return it->second->plan;
    }
    lru.push_front(Entry{key, std::move(plan)});
    map.emplace(lru.front().key, lru.begin());
    if (lru.size() > capacity) {
        map.erase(lru.back().key);
        lru.pop_back();
        ++counters.evictions;
    }
    return lru.front().plan;
}

PlanCache::Plan
PlanCache::getOrCompile(const app::QueryEngine &engine,
                        const app::Query &query, bool *hit)
{
    const std::string key = query.cacheKey();
    if (Plan cached = lookup(key)) {
        if (hit)
            *hit = true;
        return cached;
    }
    if (hit)
        *hit = false;
    // Compile outside the lock: hashing the probe is the expensive
    // part and must not serialise other tenants' lookups.
    Plan plan = std::make_shared<app::QueryEngine::CompiledQuery>(
        engine.compile(query));
    return insert(key, std::move(plan));
}

PlanCache::Stats
PlanCache::stats() const
{
    util::MutexLock lock(mtx);
    Stats snapshot = counters;
    snapshot.size = lru.size();
    return snapshot;
}

void
PlanCache::clear()
{
    util::MutexLock lock(mtx);
    map.clear();
    lru.clear();
}

} // namespace scalo::serve
