/**
 * @file
 * The production query-serving runtime (ROADMAP item 2, Thalamus
 * design requirement #7): a long-lived, multi-tenant QueryServer
 * layered on the sharded app::QueryEngine.
 *
 * The serving contract:
 *
 *  - **Asynchronous submit/poll/cancel.** submit() returns a ticket
 *    immediately; dispatcher threads execute queued tickets in
 *    cross-query batches; poll() is non-blocking and hands the
 *    result out exactly once; wait() blocks with a timeout; cancel()
 *    takes effect immediately for queued tickets and discards the
 *    result of running ones.
 *  - **Admission control, never hang.** The admission queue is
 *    bounded and every tenant has an in-flight quota; a submission
 *    that cannot be admitted is rejected *now* with a typed status
 *    (Overloaded / QuotaExceeded / Invalid / ShuttingDown) — no call
 *    on this interface blocks on load.
 *  - **Plan caching.** Descriptors are normalized and compiled once
 *    (Query::cacheKey() -> CompiledQuery) through a shared LRU
 *    cache; concurrent identical submissions share one plan, execute
 *    once per batch, and fan the result out.
 *  - **Cross-query batching.** Dispatchers drain up to maxBatch
 *    tickets at a time into QueryEngine::executeBatch(), which
 *    coalesces candidate verification across the batch into the
 *    batched distance kernels. Results are bit-identical to serial
 *    execution.
 *  - **Degradation, not errors.** Node failures (driven by a chaos
 *    plan or the runtime's failure detector through setNodeDown())
 *    turn results partial — Coverage reports answered/total shards —
 *    and the server keeps serving on the survivors.
 *  - **First-class latency accounting.** Every completion lands in
 *    serve::Metrics aggregates: per tenant, per query class, per
 *    node, and totals, each with p50/p95/p99.
 *
 * The engine's stores must be quiescent while serving: ingest before
 * start, or stop the server around ingest bursts. Everything else —
 * submissions, polls, cancels, node up/down flips — is safe from any
 * thread at any time.
 */

#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "scalo/app/query_engine.hpp"
#include "scalo/serve/metrics.hpp"
#include "scalo/serve/plan_cache.hpp"
#include "scalo/util/ranked_mutex.hpp"

namespace scalo::serve {

/** Typed admission decision; everything but Accepted is immediate. */
enum class SubmitStatus
{
    Accepted,
    /** Admission queue full — back off and retry. */
    Overloaded,
    /** Tenant at its in-flight quota. */
    QuotaExceeded,
    /** Malformed descriptor (range, probe size, measure). */
    Invalid,
    /** Server stopping; no new work. */
    ShuttingDown,
};

const char *submitStatusName(SubmitStatus status);

/** Lifecycle of an accepted ticket. */
enum class TicketState
{
    Queued,
    Running,
    Done,
    Cancelled,
    /** Ticket id never existed, or its result was already polled. */
    Unknown,
};

/** Server-wide unique id of one accepted submission. */
using TicketId = std::uint64_t;
inline constexpr TicketId kInvalidTicket = 0;

/** What submit() returns; id is valid only when accepted. */
struct SubmitResult
{
    SubmitStatus status = SubmitStatus::Invalid;
    TicketId id = kInvalidTicket;

    bool accepted() const { return status == SubmitStatus::Accepted; }
};

/** One poll()/wait() answer. */
struct QueryResponse
{
    TicketState state = TicketState::Unknown;
    /** The execution; meaningful only when state == Done. */
    app::QueryExecution execution;
    /** Host wall-clock from submit to completion (ms). */
    double serveMs = 0.0;
    /** Whether the plan came from the cache. */
    bool planCacheHit = false;
    QueryClass queryClass = QueryClass::Q3Range;
    std::string tenant;
};

/** Serving-runtime knobs. */
struct ServeConfig
{
    /** Dispatcher threads draining the queue (0 = manual runOnce). */
    std::size_t dispatchers = 2;
    /** Bounded admission queue; past it submissions are Overloaded. */
    std::size_t queueCapacity = 1024;
    /** Per-tenant in-flight (queued + running) quota. */
    std::size_t tenantQuota = 256;
    /** Max tickets coalesced into one executeBatch() call. */
    std::size_t maxBatch = 16;
    /** Compiled-plan LRU capacity. */
    std::size_t planCacheCapacity = 128;
    /** Construct paused: queue admits, dispatchers idle until
     *  resume(). Deterministic queue build-up for tests and
     *  load-generator prefill. */
    bool startPaused = false;
};

/** Long-lived multi-tenant serving runtime over one QueryEngine. */
class QueryServer
{
  public:
    /**
     * @param engine the engine to serve; must outlive the server.
     *               Stores must not be mutated while serving.
     */
    explicit QueryServer(app::QueryEngine &engine,
                         ServeConfig config = {});

    /** Stops and joins dispatchers; queued tickets are cancelled. */
    ~QueryServer();

    QueryServer(const QueryServer &) = delete;
    QueryServer &operator=(const QueryServer &) = delete;

    /**
     * Admit one query for @p tenant. Never blocks: the answer is an
     * accepted ticket or a typed rejection, decided now.
     */
    SubmitResult submit(const std::string &tenant,
                        const app::Query &query);

    /**
     * Non-blocking status check. A terminal response (Done /
     * Cancelled) hands the result out exactly once and forgets the
     * ticket; later polls of the same id return Unknown.
     */
    QueryResponse poll(TicketId id);

    /**
     * Block until @p id is terminal or @p timeout_ms elapses.
     * @return the terminal response, or nullopt on timeout (the
     *         ticket stays live — poll or wait again).
     */
    std::optional<QueryResponse> wait(TicketId id,
                                      double timeout_ms);

    /**
     * Cancel a ticket. Queued: it will never execute. Running: the
     * result is discarded on completion. @return true if the ticket
     * was still live (its terminal state becomes Cancelled — poll to
     * consume it).
     */
    bool cancel(TicketId id);

    /**
     * Stop serving: reject new submissions with ShuttingDown, cancel
     * everything still queued, finish what is running, join the
     * dispatchers. Idempotent; also run by the destructor.
     */
    void stop();

    /** Pause/resume the dispatchers (admission keeps running). */
    void pause();
    void resume();

    /**
     * Drain-and-execute up to maxBatch queued tickets on the calling
     * thread. The manual-stepping mode for deterministic tests (use
     * dispatchers = 0 or pause()). @return tickets completed.
     */
    std::size_t runOnce();

    /**
     * Block until nothing is queued or running, or @p timeout_ms
     * elapses. @return true when fully drained.
     */
    bool drain(double timeout_ms);

    /** Accepted tickets not yet terminal (queued + running). */
    std::size_t inFlight() const;

    /** Highest inFlight() ever observed. */
    std::size_t peakInFlight() const;

    // ---- the redesigned stats surface -------------------------
    Metrics totals() const;
    Metrics tenantMetrics(const std::string &tenant) const;
    Metrics classMetrics(QueryClass cls) const;
    /** Per-node re-export of shard stats as Metrics. */
    Metrics nodeMetrics(NodeId node) const;
    /** Tenants seen so far (submitters and rejectees alike). */
    std::vector<std::string> tenants() const;

    PlanCache::Stats planCacheStats() const;

    /** Mirror of the failure detector: flip a node for serving. */
    void setNodeDown(NodeId node, bool down = true);

    /**
     * Mirror of the backbone partition detector: mark a whole
     * cluster unreachable (or healed). Queries keep serving with
     * cluster-granular partial Coverage; a heal restores the full
     * fan-out on the next batch. Requires the engine to have a
     * cluster plan (QueryEngine::setClusterPlan()).
     */
    void setClusterDown(std::size_t cluster, bool down = true);

    const app::QueryEngine &engine() const { return queryEngine; }
    const ServeConfig &config() const { return cfg; }

  private:
    struct Ticket
    {
        TicketId id = kInvalidTicket;
        std::string tenant;
        QueryClass cls = QueryClass::Q3Range;
        PlanCache::Plan plan;
        bool planHit = false;
        bool cancelRequested = false;
        TicketState state = TicketState::Queued;
        std::chrono::steady_clock::time_point submitted;
        QueryResponse response;
    };
    using TicketPtr = std::shared_ptr<Ticket>;

    void dispatcherMain();
    /** Pop up to maxBatch runnable tickets; requires the lock. */
    std::vector<TicketPtr> claimBatchLocked() SCALO_REQUIRES(mtx);
    /** Execute a claimed batch (lock NOT held). */
    std::size_t executeBatch(std::vector<TicketPtr> &batch)
        SCALO_EXCLUDES(mtx);
    void finishTicketLocked(const TicketPtr &ticket,
                            TicketState terminal)
        SCALO_REQUIRES(mtx);

    app::QueryEngine &queryEngine;
    ServeConfig cfg;
    PlanCache planCache;

    mutable util::RankedMutex<util::lockrank::kServeQueryServer> mtx;
    util::ConditionVariable workCv;
    util::ConditionVariable doneCv;
    std::deque<TicketPtr> queue SCALO_GUARDED_BY(mtx);
    std::unordered_map<TicketId, TicketPtr>
        tickets SCALO_GUARDED_BY(mtx);
    std::unordered_map<std::string, std::size_t>
        tenantInFlight SCALO_GUARDED_BY(mtx);
    TicketId nextTicket SCALO_GUARDED_BY(mtx) = 1;
    /** Accepted tickets not yet terminal (queued + running). */
    std::size_t live SCALO_GUARDED_BY(mtx) = 0;
    std::size_t running SCALO_GUARDED_BY(mtx) = 0;
    std::size_t peak SCALO_GUARDED_BY(mtx) = 0;
    bool paused SCALO_GUARDED_BY(mtx) = false;
    bool stopping SCALO_GUARDED_BY(mtx) = false;

    Metrics totalMetrics SCALO_GUARDED_BY(mtx);
    std::unordered_map<std::string, Metrics>
        tenantAggregates SCALO_GUARDED_BY(mtx);
    std::array<Metrics, kQueryClasses>
        classAggregates SCALO_GUARDED_BY(mtx);
    std::vector<Metrics> nodeAggregates SCALO_GUARDED_BY(mtx);

    std::vector<std::thread> dispatchers;
};

} // namespace scalo::serve
