/**
 * @file
 * The serving runtime's composable metrics type — the redesigned
 * query accounting surface. Where the engine's QueryStats is one
 * shard's raw record, serve::Metrics is an aggregate: request-level
 * counters (accepted / rejected / cancelled / partial), work counters
 * folded from per-node QueryStats, and two fixed-bucket latency
 * histograms (host serve latency and modeled device latency) with
 * p50/p95/p99. Metrics merge with operator+= — exactly, bucketwise —
 * which is what makes one type serve every aggregation the runtime
 * reports: per tenant, per query class, per node, and totals are all
 * the same struct, summed along different axes.
 */

#pragma once

#include <cstdint>

#include "scalo/app/query_engine.hpp"
#include "scalo/util/histogram.hpp"

namespace scalo::serve {

/**
 * Serving-cost classes of the query space (the paper's Q1/Q2/Q3
 * corners, with Q2 split by confirmation cost). Classification runs
 * on the normalized descriptor, so equivalent queries always land in
 * the same class.
 */
enum class QueryClass
{
    /** Seizure-flag filter, no template (the paper's Q1). */
    Q1Seizure,
    /** Template matched on hashes alone (Q2, cheap). */
    Q2Hash,
    /** Template with exact DTW/Euclidean confirmation (Q2, hot). */
    Q2Exact,
    /** Bare time range (Q3). */
    Q3Range,
};

/** Number of QueryClass values (for fixed-size per-class arrays). */
inline constexpr std::size_t kQueryClasses = 4;

/** Class of @p query under the normalization contract. */
QueryClass classify(const app::Query &query);

/** Human-readable class name ("Q1", "Q2/hash", ...). */
const char *queryClassName(QueryClass cls);

/** Composable serving metrics; every field merges with +=. */
struct Metrics
{
    // ---- request counters -------------------------------------
    /** Accepted into the admission queue. */
    std::uint64_t submitted = 0;
    /** Completed with a (possibly partial) result. */
    std::uint64_t completed = 0;
    /** Completed with partial coverage (some shards unanswered). */
    std::uint64_t partial = 0;
    /** Cancelled before a result was delivered. */
    std::uint64_t cancelled = 0;
    /** Rejected: admission queue full. */
    std::uint64_t rejectedOverload = 0;
    /** Rejected: tenant over its in-flight quota. */
    std::uint64_t rejectedQuota = 0;
    /** Rejected: malformed descriptor. */
    std::uint64_t rejectedInvalid = 0;

    // ---- work counters (folded from per-node QueryStats) ------
    std::uint64_t scanned = 0;
    std::uint64_t bucketHits = 0;
    std::uint64_t dtwComparisons = 0;
    std::uint64_t matched = 0;
    std::uint64_t shardsAsked = 0;
    std::uint64_t shardsAnswered = 0;

    // ---- latency ----------------------------------------------
    /** Host wall-clock from submit to completion. */
    util::LatencyHistogram serveLatency;
    /**
     * Modeled device latency. In request-level aggregates (tenant,
     * class, totals — filled by observeExecution) each observation
     * is one query's end-to-end modeled latency; in shard-level
     * aggregates (per node — filled by observeShard) each is one
     * shard's modeled on-node time.
     */
    util::LatencyHistogram modeledLatency;

    /** Exact bucketwise merge (shard → tenant → fleet roll-ups). */
    Metrics &operator+=(const Metrics &other);

    /** Total rejections across all typed reject reasons. */
    std::uint64_t
    rejected() const
    {
        return rejectedOverload + rejectedQuota + rejectedInvalid;
    }

    /** Fraction of asked shards that answered; 1 when none asked. */
    double
    coverageFraction() const
    {
        return shardsAsked ? static_cast<double>(shardsAnswered) /
                                 static_cast<double>(shardsAsked)
                           : 1.0;
    }

    /** Serve-latency percentiles (ms). */
    double p50() const { return serveLatency.p50(); }
    double p95() const { return serveLatency.p95(); }
    double p99() const { return serveLatency.p99(); }

    /**
     * Fold one shard's QueryStats in — the per-node re-export path:
     * a node's serving profile is the Metrics sum of its shard stats.
     */
    void observeShard(const app::QueryStats &stats);

    /**
     * Fold one completed execution in: every shard's stats, the
     * coverage, the modeled latency, and @p serve_ms of host time.
     */
    void observeExecution(const app::QueryExecution &execution,
                          double serve_ms);

    /** Aggregate view of one execution (counters + modeled only). */
    static Metrics fromExecution(
        const app::QueryExecution &execution);
};

} // namespace scalo::serve
