#include "scalo/serve/metrics.hpp"

#include "scalo/util/logging.hpp"

namespace scalo::serve {

QueryClass
classify(const app::Query &query)
{
    const app::Query canon = query.normalized();
    if (!canon.probe.empty())
        return canon.dtwThreshold >= 0.0 ? QueryClass::Q2Exact
                                         : QueryClass::Q2Hash;
    return canon.seizureOnly ? QueryClass::Q1Seizure
                             : QueryClass::Q3Range;
}

const char *
queryClassName(QueryClass cls)
{
    switch (cls) {
      case QueryClass::Q1Seizure:
        return "Q1";
      case QueryClass::Q2Hash:
        return "Q2/hash";
      case QueryClass::Q2Exact:
        return "Q2/exact";
      case QueryClass::Q3Range:
        return "Q3";
    }
    SCALO_PANIC("unknown query class");
}

Metrics &
Metrics::operator+=(const Metrics &other)
{
    submitted += other.submitted;
    completed += other.completed;
    partial += other.partial;
    cancelled += other.cancelled;
    rejectedOverload += other.rejectedOverload;
    rejectedQuota += other.rejectedQuota;
    rejectedInvalid += other.rejectedInvalid;
    scanned += other.scanned;
    bucketHits += other.bucketHits;
    dtwComparisons += other.dtwComparisons;
    matched += other.matched;
    shardsAsked += other.shardsAsked;
    shardsAnswered += other.shardsAnswered;
    serveLatency += other.serveLatency;
    modeledLatency += other.modeledLatency;
    return *this;
}

void
Metrics::observeShard(const app::QueryStats &stats)
{
    ++shardsAsked;
    if (stats.answered)
        ++shardsAnswered;
    scanned += stats.scanned;
    bucketHits += stats.bucketHits;
    dtwComparisons += stats.dtwComparisons;
    matched += stats.matched;
    modeledLatency.add(stats.modeled.count());
}

void
Metrics::observeExecution(const app::QueryExecution &execution,
                          double serve_ms)
{
    ++completed;
    if (!execution.coverage.complete())
        ++partial;
    for (const app::QueryStats &stats : execution.perNode) {
        ++shardsAsked;
        if (stats.answered)
            ++shardsAnswered;
        scanned += stats.scanned;
        bucketHits += stats.bucketHits;
        dtwComparisons += stats.dtwComparisons;
        matched += stats.matched;
    }
    // Request-level view: the modeled histogram holds end-to-end
    // query latencies (shard-level views get per-shard modeled
    // through observeShard instead).
    modeledLatency.add(execution.latency.count());
    serveLatency.add(serve_ms);
}

Metrics
Metrics::fromExecution(const app::QueryExecution &execution)
{
    Metrics metrics;
    metrics.observeExecution(execution,
                             execution.wall.count());
    return metrics;
}

} // namespace scalo::serve
