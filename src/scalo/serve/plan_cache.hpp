/**
 * @file
 * Compiled-plan cache for the serving runtime: an LRU map from
 * Query::cacheKey() — the stable byte encoding of the normalized
 * descriptor — to the engine's immutable CompiledQuery. A hit skips
 * normalization and the LSH probe hash, and, because every hit hands
 * back the *same* shared object, concurrent submissions of the same
 * query are deduplicated onto one plan — which is what lets the
 * engine's batch executor coalesce their verification work into a
 * single kernel call and run the query once for all of them.
 *
 * Thread-safe: all operations take the internal mutex (annotated —
 * the guarded members are compile-time enforced under Clang's
 * thread-safety analysis). Compilation for a missing key runs
 * outside the lock, so two threads racing on the same cold key may
 * both compile; the second insert wins nothing but wastes only its
 * own compile.
 */

#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>

#include "scalo/app/query_engine.hpp"
#include "scalo/util/ranked_mutex.hpp"

namespace scalo::serve {

/** Thread-safe LRU cache of compiled query plans. */
class PlanCache
{
  public:
    using Plan = std::shared_ptr<const app::QueryEngine::CompiledQuery>;

    /** Hit/miss/eviction counters, plus current occupancy. */
    struct Stats
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t evictions = 0;
        std::size_t size = 0;

        double
        hitRate() const
        {
            const std::uint64_t lookups = hits + misses;
            return lookups ? static_cast<double>(hits) /
                                 static_cast<double>(lookups)
                           : 0.0;
        }
    };

    /** @param capacity max retained plans (>= 1). */
    explicit PlanCache(std::size_t capacity);

    /**
     * The cached plan for @p query, compiling through @p engine on a
     * miss. @p hit, when non-null, reports whether the plan came
     * from the cache.
     */
    Plan getOrCompile(const app::QueryEngine &engine,
                      const app::Query &query, bool *hit = nullptr);

    /** Lookup only; null on miss (counts as a miss). */
    Plan lookup(const std::string &key);

    /**
     * Insert @p plan under @p key, evicting the LRU tail.
     * @return the retained plan — the incumbent when a racing
     *         compile inserted the key first, so every caller ends
     *         up holding the one canonical object.
     */
    Plan insert(const std::string &key, Plan plan);

    Stats stats() const;

    /** Drop every cached plan (counters are kept). */
    void clear();

  private:
    struct Entry
    {
        std::string key;
        Plan plan;
    };

    mutable util::RankedMutex<util::lockrank::kServePlanCache> mtx;
    /** Fixed at construction; read lock-free. */
    std::size_t capacity;
    /** MRU-first recency list; the map points into it. */
    std::list<Entry> lru SCALO_GUARDED_BY(mtx);
    std::unordered_map<std::string, std::list<Entry>::iterator>
        map SCALO_GUARDED_BY(mtx);
    Stats counters SCALO_GUARDED_BY(mtx);
};

} // namespace scalo::serve
