#include "scalo/serve/chaos.hpp"

#include <algorithm>
#include <chrono>

#include "scalo/util/logging.hpp"

namespace scalo::serve {

ChaosDriver::ChaosDriver(QueryServer &server_,
                         const sim::FaultPlan &plan,
                         double time_scale)
    : server(server_)
{
    SCALO_ASSERT(time_scale > 0.0, "time scale must be positive");
    for (const sim::NodeCrashFault &crash : plan.crashes) {
        SCALO_ASSERT(crash.node < server.engine().nodeCount(),
                     "chaos plan crashes a node the engine lacks");
        events.push_back(Event{crash.at.count() * time_scale,
                               crash.node, true});
        if (crash.reboots())
            events.push_back(Event{crash.rebootAt.count() *
                                       time_scale,
                                   crash.node, false});
    }
    ignoredFaults = plan.size() - plan.crashes.size();
    std::stable_sort(events.begin(), events.end(),
                     [](const Event &a, const Event &b) {
                         return a.atMs < b.atMs;
                     });
}

ChaosDriver::~ChaosDriver()
{
    stop();
}

void
ChaosDriver::start()
{
    util::MutexLock lock(mtx);
    if (started)
        return;
    started = true;
    driver = std::thread([this] { driverMain(); });
}

void
ChaosDriver::driverMain()
{
    const auto t0 = std::chrono::steady_clock::now();
    util::MutexLock lock(mtx);
    for (const Event &event : events) {
        const auto deadline =
            t0 + std::chrono::duration_cast<
                     std::chrono::steady_clock::duration>(
                     std::chrono::duration<double, std::milli>(
                         event.atMs));
        while (!stopping) {
            if (cv.waitUntil(lock, deadline) ==
                std::cv_status::timeout)
                break;
        }
        if (stopping)
            return;
        // Flip outside the lock: setNodeDown is atomic and must not
        // serialise against stop()/applied().
        lock.unlock();
        server.setNodeDown(event.node, event.down);
        lock.lock();
        ++fired;
        cv.notifyAll();
    }
}

void
ChaosDriver::stop()
{
    std::thread toJoin;
    {
        util::MutexLock lock(mtx);
        stopping = true;
        // Claim the handle under the lock (a bare joinable() probe
        // would race a concurrent start()); join released, because
        // the driver needs the lock to observe `stopping` and exit.
        toJoin = std::move(driver);
    }
    cv.notifyAll();
    if (toJoin.joinable())
        toJoin.join();
}

bool
ChaosDriver::waitDone(double timeout_ms)
{
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<
            std::chrono::steady_clock::duration>(
            std::chrono::duration<double, std::milli>(timeout_ms));
    util::MutexLock lock(mtx);
    while (!stopping && fired != events.size()) {
        if (cv.waitUntil(lock, deadline) == std::cv_status::timeout)
            return stopping || fired == events.size();
    }
    return true;
}

std::size_t
ChaosDriver::applied() const
{
    util::MutexLock lock(mtx);
    return fired;
}

} // namespace scalo::serve
