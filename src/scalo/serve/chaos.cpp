#include "scalo/serve/chaos.hpp"

#include <algorithm>
#include <chrono>

#include "scalo/util/logging.hpp"

namespace scalo::serve {

ChaosDriver::ChaosDriver(QueryServer &server_,
                         const sim::FaultPlan &plan,
                         double time_scale)
    : server(server_)
{
    SCALO_ASSERT(time_scale > 0.0, "time scale must be positive");
    for (const sim::NodeCrashFault &crash : plan.crashes) {
        SCALO_ASSERT(crash.node < server.engine().nodeCount(),
                     "chaos plan crashes a node the engine lacks");
        events.push_back(Event{crash.at.count() * time_scale,
                               crash.node, true});
        if (crash.reboots())
            events.push_back(Event{crash.rebootAt.count() *
                                       time_scale,
                                   crash.node, false});
    }
    ignoredFaults = plan.size() - plan.crashes.size();
    std::stable_sort(events.begin(), events.end(),
                     [](const Event &a, const Event &b) {
                         return a.atMs < b.atMs;
                     });
}

ChaosDriver::~ChaosDriver()
{
    stop();
}

void
ChaosDriver::start()
{
    std::lock_guard<std::mutex> lock(mtx);
    if (started)
        return;
    started = true;
    driver = std::thread([this] { driverMain(); });
}

void
ChaosDriver::driverMain()
{
    const auto t0 = std::chrono::steady_clock::now();
    std::unique_lock<std::mutex> lock(mtx);
    for (const Event &event : events) {
        const auto deadline =
            t0 + std::chrono::duration_cast<
                     std::chrono::steady_clock::duration>(
                     std::chrono::duration<double, std::milli>(
                         event.atMs));
        cv.wait_until(lock, deadline,
                      [this] { return stopping; });
        if (stopping)
            return;
        // Flip outside the lock: setNodeDown is atomic and must not
        // serialise against stop()/applied().
        lock.unlock();
        server.setNodeDown(event.node, event.down);
        lock.lock();
        ++fired;
        cv.notify_all();
    }
}

void
ChaosDriver::stop()
{
    {
        std::lock_guard<std::mutex> lock(mtx);
        stopping = true;
    }
    cv.notify_all();
    if (driver.joinable())
        driver.join();
}

bool
ChaosDriver::waitDone(double timeout_ms)
{
    std::unique_lock<std::mutex> lock(mtx);
    return cv.wait_for(
        lock, std::chrono::duration<double, std::milli>(timeout_ms),
        [this] { return stopping || fired == events.size(); });
}

std::size_t
ChaosDriver::applied() const
{
    std::lock_guard<std::mutex> lock(mtx);
    return fired;
}

} // namespace scalo::serve
