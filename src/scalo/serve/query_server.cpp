#include "scalo/serve/query_server.hpp"

#include <algorithm>

#include "scalo/util/logging.hpp"

namespace scalo::serve {

namespace {

double
msSince(std::chrono::steady_clock::time_point since)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - since)
        .count();
}

} // namespace

const char *
submitStatusName(SubmitStatus status)
{
    switch (status) {
      case SubmitStatus::Accepted:
        return "accepted";
      case SubmitStatus::Overloaded:
        return "overloaded";
      case SubmitStatus::QuotaExceeded:
        return "quota-exceeded";
      case SubmitStatus::Invalid:
        return "invalid";
      case SubmitStatus::ShuttingDown:
        return "shutting-down";
    }
    SCALO_PANIC("unknown submit status");
}

QueryServer::QueryServer(app::QueryEngine &engine,
                         ServeConfig config)
    : queryEngine(engine),
      cfg(config),
      planCache(std::max<std::size_t>(1, config.planCacheCapacity)),
      paused(config.startPaused)
{
    SCALO_ASSERT(cfg.queueCapacity >= 1,
                 "admission queue needs capacity >= 1");
    SCALO_ASSERT(cfg.tenantQuota >= 1, "tenant quota must be >= 1");
    SCALO_ASSERT(cfg.maxBatch >= 1, "batch size must be >= 1");
    nodeAggregates.resize(engine.nodeCount());
    dispatchers.reserve(cfg.dispatchers);
    for (std::size_t i = 0; i < cfg.dispatchers; ++i)
        dispatchers.emplace_back([this] { dispatcherMain(); });
}

QueryServer::~QueryServer()
{
    stop();
}

SubmitResult
QueryServer::submit(const std::string &tenant,
                    const app::Query &query)
{
    // Validate before admission so malformed descriptors are a typed
    // rejection, not a contract violation deep in the engine.
    const bool templated = !query.probe.empty();
    const bool valid =
        query.t0Us <= query.t1Us &&
        (!templated ||
         (query.probe.size() == queryEngine.windowSampleCount() &&
          (query.confirmMeasure == signal::Measure::Dtw ||
           query.confirmMeasure == signal::Measure::Euclidean)));

    TicketPtr ticket;
    {
        util::MutexLock lock(mtx);
        if (stopping)
            return {SubmitStatus::ShuttingDown, kInvalidTicket};
        if (!valid) {
            ++totalMetrics.rejectedInvalid;
            ++tenantAggregates[tenant].rejectedInvalid;
            return {SubmitStatus::Invalid, kInvalidTicket};
        }
        // live - running = tickets actually waiting in the queue.
        if (live - running >= cfg.queueCapacity) {
            ++totalMetrics.rejectedOverload;
            ++tenantAggregates[tenant].rejectedOverload;
            return {SubmitStatus::Overloaded, kInvalidTicket};
        }
        if (tenantInFlight[tenant] >= cfg.tenantQuota) {
            ++totalMetrics.rejectedQuota;
            ++tenantAggregates[tenant].rejectedQuota;
            return {SubmitStatus::QuotaExceeded, kInvalidTicket};
        }

        // Admitted: reserve the slot now, compile outside the lock.
        ticket = std::make_shared<Ticket>();
        ticket->id = nextTicket++;
        ticket->tenant = tenant;
        ticket->submitted = std::chrono::steady_clock::now();
        tickets.emplace(ticket->id, ticket);
        ++tenantInFlight[tenant];
        ++live;
        peak = std::max(peak, live);
    }

    // Compilation (normalize + LSH probe hash) runs unlocked through
    // the shared plan cache; identical concurrent submissions come
    // back holding the same CompiledQuery object.
    ticket->plan =
        planCache.getOrCompile(queryEngine, query, &ticket->planHit);
    ticket->cls = classify(ticket->plan->query);

    {
        util::MutexLock lock(mtx);
        ++totalMetrics.submitted;
        ++tenantAggregates[tenant].submitted;
        ++classAggregates[static_cast<std::size_t>(ticket->cls)]
              .submitted;
        if (ticket->state == TicketState::Queued) {
            // A stop() that raced the compile already swept the
            // queue; the ticket must go terminal here, not enqueue
            // into a server nobody drains.
            if (stopping)
                finishTicketLocked(ticket, TicketState::Cancelled);
            else
                queue.push_back(ticket);
        }
        // (A cancel that raced the compile already finished it; the
        // tombstone never reaches the queue.)
    }
    workCv.notifyOne();
    return {SubmitStatus::Accepted, ticket->id};
}

std::vector<QueryServer::TicketPtr>
QueryServer::claimBatchLocked()
{
    std::vector<TicketPtr> batch;
    while (!queue.empty() && batch.size() < cfg.maxBatch) {
        TicketPtr ticket = std::move(queue.front());
        queue.pop_front();
        // Skip tombstones of tickets cancelled while queued.
        if (ticket->state != TicketState::Queued)
            continue;
        ticket->state = TicketState::Running;
        ++running;
        batch.push_back(std::move(ticket));
    }
    return batch;
}

void
QueryServer::finishTicketLocked(const TicketPtr &ticket,
                                TicketState terminal)
{
    ticket->state = terminal;
    ticket->response.state = terminal;
    ticket->response.tenant = ticket->tenant;
    ticket->response.queryClass = ticket->cls;
    ticket->response.planCacheHit = ticket->planHit;
    const auto it = tenantInFlight.find(ticket->tenant);
    if (it != tenantInFlight.end() && it->second > 0)
        --it->second;
    SCALO_ASSERT(live > 0, "ticket finished twice");
    --live;
    if (terminal == TicketState::Cancelled) {
        ++totalMetrics.cancelled;
        ++tenantAggregates[ticket->tenant].cancelled;
    }
    doneCv.notifyAll();
}

std::size_t
QueryServer::executeBatch(std::vector<TicketPtr> &batch)
{
    if (batch.empty())
        return 0;

    std::vector<const app::QueryEngine::CompiledQuery *> plans;
    plans.reserve(batch.size());
    for (const TicketPtr &ticket : batch)
        plans.push_back(ticket->plan.get());

    // The cross-query batch: shared plans execute once, every
    // query's deferred verification runs through one coalesced
    // kernel sweep per node shard.
    std::vector<app::QueryExecution> executions =
        queryEngine.executeBatch(plans);

    std::size_t completed = 0;
    {
        util::MutexLock lock(mtx);
        for (std::size_t i = 0; i < batch.size(); ++i) {
            const TicketPtr &ticket = batch[i];
            SCALO_ASSERT(running > 0, "running underflow");
            --running;
            if (ticket->cancelRequested) {
                finishTicketLocked(ticket, TicketState::Cancelled);
                continue;
            }
            app::QueryExecution &execution = executions[i];
            const double serve_ms = msSince(ticket->submitted);

            totalMetrics.observeExecution(execution, serve_ms);
            tenantAggregates[ticket->tenant].observeExecution(
                execution, serve_ms);
            classAggregates[static_cast<std::size_t>(ticket->cls)]
                .observeExecution(execution, serve_ms);
            for (const app::QueryStats &stats : execution.perNode)
                nodeAggregates[stats.node].observeShard(stats);

            ticket->response.execution = std::move(execution);
            ticket->response.serveMs = serve_ms;
            finishTicketLocked(ticket, TicketState::Done);
            ++completed;
        }
    }
    return completed;
}

void
QueryServer::dispatcherMain()
{
    util::MutexLock lock(mtx);
    for (;;) {
        while (!stopping && (paused || queue.empty()))
            workCv.wait(lock);
        if (stopping)
            return;
        std::vector<TicketPtr> batch = claimBatchLocked();
        if (batch.empty())
            continue;
        lock.unlock();
        executeBatch(batch);
        lock.lock();
    }
}

std::size_t
QueryServer::runOnce()
{
    std::vector<TicketPtr> batch;
    {
        util::MutexLock lock(mtx);
        batch = claimBatchLocked();
    }
    return executeBatch(batch);
}

QueryResponse
QueryServer::poll(TicketId id)
{
    util::MutexLock lock(mtx);
    const auto it = tickets.find(id);
    if (it == tickets.end()) {
        QueryResponse unknown;
        return unknown;
    }
    const TicketPtr &ticket = it->second;
    if (ticket->state == TicketState::Done ||
        ticket->state == TicketState::Cancelled) {
        QueryResponse response = std::move(ticket->response);
        tickets.erase(it);
        return response;
    }
    QueryResponse pending;
    pending.state = ticket->state;
    pending.tenant = ticket->tenant;
    pending.queryClass = ticket->cls;
    return pending;
}

std::optional<QueryResponse>
QueryServer::wait(TicketId id, double timeout_ms)
{
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<
            std::chrono::steady_clock::duration>(
            std::chrono::duration<double, std::milli>(timeout_ms));
    util::MutexLock lock(mtx);
    for (;;) {
        const auto it = tickets.find(id);
        if (it == tickets.end()) {
            QueryResponse unknown;
            return unknown;
        }
        const TicketPtr &ticket = it->second;
        if (ticket->state == TicketState::Done ||
            ticket->state == TicketState::Cancelled) {
            QueryResponse response = std::move(ticket->response);
            tickets.erase(it);
            return response;
        }
        if (doneCv.waitUntil(lock, deadline) ==
            std::cv_status::timeout) {
            // One last check: the finish may have raced the clock.
            const auto again = tickets.find(id);
            if (again != tickets.end() &&
                (again->second->state == TicketState::Done ||
                 again->second->state == TicketState::Cancelled)) {
                QueryResponse response =
                    std::move(again->second->response);
                tickets.erase(again);
                return response;
            }
            return std::nullopt;
        }
    }
}

bool
QueryServer::cancel(TicketId id)
{
    util::MutexLock lock(mtx);
    const auto it = tickets.find(id);
    if (it == tickets.end())
        return false;
    const TicketPtr &ticket = it->second;
    switch (ticket->state) {
      case TicketState::Queued:
        // Finished here and now; the queue keeps a tombstone the
        // dispatchers skip.
        finishTicketLocked(ticket, TicketState::Cancelled);
        return true;
      case TicketState::Running:
        ticket->cancelRequested = true;
        return true;
      case TicketState::Done:
      case TicketState::Cancelled:
      case TicketState::Unknown:
        return false;
    }
    return false;
}

void
QueryServer::pause()
{
    {
        util::MutexLock lock(mtx);
        paused = true;
    }
    workCv.notifyAll();
}

void
QueryServer::resume()
{
    {
        util::MutexLock lock(mtx);
        paused = false;
    }
    workCv.notifyAll();
}

bool
QueryServer::drain(double timeout_ms)
{
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<
            std::chrono::steady_clock::duration>(
            std::chrono::duration<double, std::milli>(timeout_ms));
    util::MutexLock lock(mtx);
    while (live != 0) {
        if (doneCv.waitUntil(lock, deadline) ==
            std::cv_status::timeout)
            return live == 0;
    }
    return true;
}

void
QueryServer::stop()
{
    {
        util::MutexLock lock(mtx);
        if (!stopping) {
            stopping = true;
            // Everything still queued is cancelled; running batches
            // finish on their dispatcher.
            for (const TicketPtr &ticket : queue)
                if (ticket->state == TicketState::Queued)
                    finishTicketLocked(ticket,
                                       TicketState::Cancelled);
            queue.clear();
        }
    }
    workCv.notifyAll();
    for (std::thread &dispatcher : dispatchers)
        if (dispatcher.joinable())
            dispatcher.join();
    dispatchers.clear();
}

std::size_t
QueryServer::inFlight() const
{
    util::MutexLock lock(mtx);
    return live;
}

std::size_t
QueryServer::peakInFlight() const
{
    util::MutexLock lock(mtx);
    return peak;
}

Metrics
QueryServer::totals() const
{
    util::MutexLock lock(mtx);
    return totalMetrics;
}

Metrics
QueryServer::tenantMetrics(const std::string &tenant) const
{
    util::MutexLock lock(mtx);
    const auto it = tenantAggregates.find(tenant);
    return it != tenantAggregates.end() ? it->second : Metrics{};
}

Metrics
QueryServer::classMetrics(QueryClass cls) const
{
    util::MutexLock lock(mtx);
    return classAggregates[static_cast<std::size_t>(cls)];
}

Metrics
QueryServer::nodeMetrics(NodeId node) const
{
    util::MutexLock lock(mtx);
    SCALO_ASSERT(node < nodeAggregates.size(), "node out of range");
    return nodeAggregates[node];
}

std::vector<std::string>
QueryServer::tenants() const
{
    util::MutexLock lock(mtx);
    std::vector<std::string> names;
    names.reserve(tenantAggregates.size());
    for (const auto &[name, metrics] : tenantAggregates)
        names.push_back(name);
    std::sort(names.begin(), names.end());
    return names;
}

PlanCache::Stats
QueryServer::planCacheStats() const
{
    return planCache.stats();
}

void
QueryServer::setNodeDown(NodeId node, bool down)
{
    queryEngine.setNodeDown(node, down);
}

void
QueryServer::setClusterDown(std::size_t cluster, bool down)
{
    queryEngine.setClusterDown(cluster, down);
}

} // namespace scalo::serve
