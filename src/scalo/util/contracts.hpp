/**
 * @file
 * Lightweight design-by-contract macros for model boundaries.
 *
 * `SCALO_EXPECTS(cond)` states a precondition, `SCALO_ENSURES(cond)` a
 * postcondition. Unlike `SCALO_ASSERT` (an always-on internal
 * invariant that panics), contracts are a *debugging* layer: they are
 * compiled in for Debug and sanitizer builds and compile out entirely
 * (condition unevaluated) in Release, so hot analytic-model paths pay
 * nothing in production.
 *
 * Compile-time control, per translation unit:
 *  - `SCALO_CONTRACTS=1` forces contracts on, `=0` forces them off;
 *  - unset, they follow the build type: on when `NDEBUG` is not
 *    defined (Debug), off otherwise.
 * The CMake cache variable `-DSCALO_CONTRACTS=ON|OFF|AUTO` sets the
 * macro globally; sanitizer CI builds force it on.
 *
 * A violation calls the installed handler (default: print and abort).
 * Tests install a throwing handler via `setContractHandler` to observe
 * violations without dying.
 */

#pragma once

namespace scalo::util {

/** Called on contract violation; may throw (tests) or not return. */
using ContractHandler = void (*)(const char *kind,
                                 const char *condition,
                                 const char *file, int line);

/**
 * Install @p handler (nullptr restores the default print-and-abort
 * handler). @return the previously installed handler
 */
ContractHandler setContractHandler(ContractHandler handler);

/** Dispatch a violation to the current handler. */
void contractViolated(const char *kind, const char *condition,
                      const char *file, int line);

} // namespace scalo::util

#include "scalo/util/contracts_macros.hpp"
