#include "scalo/util/logging.hpp"

#include <cstdio>
#include <stdexcept>

namespace scalo {

void
panicImpl(const char *file, int line, const std::string &message)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", message.c_str(), file,
                 line);
    std::fflush(stderr);
    // Throw rather than abort so tests can assert on invariant violations.
    throw std::logic_error("panic: " + message);
}

void
fatalImpl(const char *file, int line, const std::string &message)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", message.c_str(), file,
                 line);
    std::fflush(stderr);
    throw std::runtime_error("fatal: " + message);
}

void
warnImpl(const std::string &message)
{
    std::fprintf(stderr, "warn: %s\n", message.c_str());
}

void
informImpl(const std::string &message)
{
    std::fprintf(stdout, "info: %s\n", message.c_str());
}

} // namespace scalo
