#include "scalo/util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace scalo {

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    return std::accumulate(values.begin(), values.end(), 0.0) /
           static_cast<double>(values.size());
}

double
stddev(const std::vector<double> &values)
{
    if (values.size() < 2)
        return 0.0;
    const double m = mean(values);
    double acc = 0.0;
    for (double v : values)
        acc += (v - m) * (v - m);
    return std::sqrt(acc / static_cast<double>(values.size()));
}

double
minOf(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    return *std::min_element(values.begin(), values.end());
}

double
maxOf(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    return *std::max_element(values.begin(), values.end());
}

double
percentile(std::vector<double> values, double pct)
{
    if (values.empty())
        return 0.0;
    std::sort(values.begin(), values.end());
    if (pct <= 0.0)
        return values.front();
    if (pct >= 100.0)
        return values.back();
    const double rank =
        pct / 100.0 * static_cast<double>(values.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const double frac = rank - static_cast<double>(lo);
    if (lo + 1 >= values.size())
        return values.back();
    return values[lo] * (1.0 - frac) + values[lo + 1] * frac;
}

void
RunningStats::add(double value)
{
    if (n == 0) {
        lo = hi = value;
    } else {
        lo = std::min(lo, value);
        hi = std::max(hi, value);
    }
    total += value;
    ++n;
}

} // namespace scalo
