/**
 * @file
 * AES-128 (the AES PE): SCALO encrypts neural data leaving the body
 * through the external radio. CTR mode needs only the forward cipher,
 * so that is all the PE (and this model) implements.
 */

#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace scalo {

/** AES-128 block cipher (forward direction) with CTR-mode helpers. */
class Aes128
{
  public:
    using Block = std::array<std::uint8_t, 16>;
    using Key = std::array<std::uint8_t, 16>;

    /** Expand the round keys from @p key. */
    explicit Aes128(const Key &key);

    /** Encrypt one 16-byte block (FIPS-197 forward cipher). */
    Block encryptBlock(const Block &plaintext) const;

    /**
     * CTR-mode encryption/decryption (its own inverse): XOR the
     * keystream of incrementing counter blocks into @p data.
     *
     * @param nonce the 16-byte initial counter block
     */
    std::vector<std::uint8_t>
    ctrCrypt(const std::vector<std::uint8_t> &data,
             const Block &nonce) const;

  private:
    /** 11 round keys x 16 bytes. */
    std::array<std::uint8_t, 176> roundKeys{};
};

} // namespace scalo
