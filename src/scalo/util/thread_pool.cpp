#include "scalo/util/thread_pool.hpp"

#include <atomic>
#include <exception>
#include <memory>

namespace scalo::util {

/**
 * One parallelFor call in flight. Workers (and the caller) claim
 * indices with a fetch-add and the last finisher signals completion.
 */
struct ThreadPool::Loop
{
    std::size_t count = 0;
    const std::function<void(std::size_t)> *fn = nullptr;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    RankedMutex<lockrank::kThreadPoolLoopError> errorMtx;
    std::exception_ptr error SCALO_GUARDED_BY(errorMtx);
    RankedMutex<lockrank::kThreadPoolLoopDone> doneMtx;
    ConditionVariable doneCv;
};

ThreadPool::ThreadPool(std::size_t threads)
{
    if (threads <= 1)
        return;
    workers.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i)
        workers.emplace_back([this] { workerMain(); });
}

ThreadPool::~ThreadPool()
{
    {
        MutexLock lock(mtx);
        stopping = true;
    }
    cv.notifyAll();
    for (std::thread &worker : workers)
        worker.join();
}

std::size_t
ThreadPool::defaultThreads()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

void
ThreadPool::runOne(const std::shared_ptr<Loop> &loop)
{
    for (;;) {
        const std::size_t i =
            loop->next.fetch_add(1, std::memory_order_relaxed);
        if (i >= loop->count)
            break;
        try {
            (*loop->fn)(i);
        } catch (...) {
            MutexLock lock(loop->errorMtx);
            if (!loop->error)
                loop->error = std::current_exception();
        }
        if (loop->done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
            loop->count) {
            MutexLock lock(loop->doneMtx);
            loop->doneCv.notifyAll();
        }
    }
}

void
ThreadPool::workerMain()
{
    for (;;) {
        std::shared_ptr<Loop> loop;
        {
            MutexLock lock(mtx);
            while (!stopping && pending.empty())
                cv.wait(lock);
            if (pending.empty()) {
                // Only reachable when stopping: drain then exit.
                return;
            }
            loop = pending.front();
            // Leave the loop queued until its indices are exhausted
            // so that every idle worker can join in; the front is
            // dropped once fully claimed.
            if (loop->next.load(std::memory_order_relaxed) >=
                loop->count) {
                pending.pop_front();
                continue;
            }
        }
        runOne(loop);
        {
            MutexLock lock(mtx);
            if (!pending.empty() && pending.front() == loop &&
                loop->next.load(std::memory_order_relaxed) >=
                    loop->count) {
                pending.pop_front();
            }
        }
    }
}

void
ThreadPool::parallelFor(std::size_t count,
                        const std::function<void(std::size_t)> &fn)
{
    if (count == 0)
        return;
    if (workers.empty() || count == 1) {
        for (std::size_t i = 0; i < count; ++i)
            fn(i);
        return;
    }

    auto loop = std::make_shared<Loop>();
    loop->count = count;
    loop->fn = &fn;
    {
        MutexLock lock(mtx);
        pending.push_back(loop);
    }
    cv.notifyAll();

    // The caller helps drain its own loop, then waits for stragglers.
    runOne(loop);
    {
        MutexLock lock(loop->doneMtx);
        while (loop->done.load(std::memory_order_acquire) <
               loop->count)
            loop->doneCv.wait(lock);
    }
    // All iterations are done (acquire above), but take the error
    // lock anyway: the annotated contract on `error` is uniform, and
    // the uncontended acquisition costs nothing here.
    std::exception_ptr error;
    {
        MutexLock lock(loop->errorMtx);
        error = loop->error;
    }
    if (error)
        std::rethrow_exception(error);
}

} // namespace scalo::util
