#include "scalo/util/thread_pool.hpp"

#include <atomic>
#include <exception>
#include <memory>

namespace scalo::util {

/**
 * One parallelFor call in flight. Workers (and the caller) claim
 * indices with a fetch-add and the last finisher signals completion.
 */
struct ThreadPool::Loop
{
    std::size_t count = 0;
    const std::function<void(std::size_t)> *fn = nullptr;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::exception_ptr error;
    std::mutex errorMtx;
    std::mutex doneMtx;
    std::condition_variable doneCv;
};

ThreadPool::ThreadPool(std::size_t threads)
{
    if (threads <= 1)
        return;
    workers.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i)
        workers.emplace_back([this] { workerMain(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mtx);
        stopping = true;
    }
    cv.notify_all();
    for (std::thread &worker : workers)
        worker.join();
}

std::size_t
ThreadPool::defaultThreads()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

void
ThreadPool::runOne(const std::shared_ptr<Loop> &loop)
{
    for (;;) {
        const std::size_t i =
            loop->next.fetch_add(1, std::memory_order_relaxed);
        if (i >= loop->count)
            break;
        try {
            (*loop->fn)(i);
        } catch (...) {
            std::lock_guard<std::mutex> lock(loop->errorMtx);
            if (!loop->error)
                loop->error = std::current_exception();
        }
        if (loop->done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
            loop->count) {
            std::lock_guard<std::mutex> lock(loop->doneMtx);
            loop->doneCv.notify_all();
        }
    }
}

void
ThreadPool::workerMain()
{
    for (;;) {
        std::shared_ptr<Loop> loop;
        {
            std::unique_lock<std::mutex> lock(mtx);
            cv.wait(lock,
                    [this] { return stopping || !pending.empty(); });
            if (pending.empty()) {
                if (stopping)
                    return;
                continue;
            }
            loop = pending.front();
            // Leave the loop queued until its indices are exhausted
            // so that every idle worker can join in; the front is
            // dropped once fully claimed.
            if (loop->next.load(std::memory_order_relaxed) >=
                loop->count) {
                pending.pop_front();
                continue;
            }
        }
        runOne(loop);
        {
            std::lock_guard<std::mutex> lock(mtx);
            if (!pending.empty() && pending.front() == loop &&
                loop->next.load(std::memory_order_relaxed) >=
                    loop->count) {
                pending.pop_front();
            }
        }
    }
}

void
ThreadPool::parallelFor(std::size_t count,
                        const std::function<void(std::size_t)> &fn)
{
    if (count == 0)
        return;
    if (workers.empty() || count == 1) {
        for (std::size_t i = 0; i < count; ++i)
            fn(i);
        return;
    }

    auto loop = std::make_shared<Loop>();
    loop->count = count;
    loop->fn = &fn;
    {
        std::lock_guard<std::mutex> lock(mtx);
        pending.push_back(loop);
    }
    cv.notify_all();

    // The caller helps drain its own loop, then waits for stragglers.
    runOne(loop);
    {
        std::unique_lock<std::mutex> lock(loop->doneMtx);
        loop->doneCv.wait(lock, [&] {
            return loop->done.load(std::memory_order_acquire) >=
                   loop->count;
        });
    }
    if (loop->error)
        std::rethrow_exception(loop->error);
}

} // namespace scalo::util
