#include "scalo/util/ranked_mutex.hpp"

#include <atomic>
#include <cstdio>

#include "scalo/util/contracts.hpp"
#include "scalo/util/logging.hpp"

namespace scalo::util {

namespace {

/**
 * The per-thread held-rank stack. Fixed-size: the deepest legal
 * nesting is the rank table's height, so 64 is generous; blowing it
 * is a bug in its own right.
 */
constexpr std::size_t kMaxHeldLocks = 64;
thread_local int t_heldRanks[kMaxHeldLocks];
thread_local std::size_t t_heldCount = 0;

/**
 * Checking follows the contracts layer's build-time default (on in
 * Debug / sanitizer builds, off in Release) but stays runtime-
 * flippable so tests exercise the discipline in every build type.
 */
std::atomic<bool> g_checking{SCALO_CONTRACTS != 0};

void
reportRankViolation(int rank, int held)
{
    // Routed through the contracts handler so tests observe it the
    // same way they observe any contract violation (throwing handler)
    // and production gets the print-and-abort default.
    thread_local char message[96];
    std::snprintf(message, sizeof(message),
                  "lock-rank order: acquiring rank %d while holding "
                  "rank %d (must ascend)",
                  rank, held);
    contractViolated("lock-rank", message, __FILE__, __LINE__);
}

void
pushRank(int rank)
{
    SCALO_ASSERT(t_heldCount < kMaxHeldLocks,
                 "held-lock stack overflow (", kMaxHeldLocks,
                 " nested locks)");
    t_heldRanks[t_heldCount++] = rank;
}

} // namespace

namespace lockrank_detail {

void
noteAcquire(int rank)
{
    if (!g_checking.load(std::memory_order_relaxed))
        return;
    // A blocking acquisition must exceed EVERY held rank, not just
    // the most recent: an out-of-order try_lock may have left the
    // stack non-ascending, and the deadlock potential is against the
    // highest lock held.
    int highest = 0;
    for (std::size_t i = 0; i < t_heldCount; ++i)
        highest = t_heldRanks[i] > highest ? t_heldRanks[i] : highest;
    if (highest >= rank) {
        // Report BEFORE recording or locking anything: a throwing
        // handler propagates out of Mutex::lock() with the mutex
        // untouched and the stack intact.
        reportRankViolation(rank, highest);
    }
    pushRank(rank);
}

void
noteTryAcquire(int rank)
{
    // try_lock never blocks, so out-of-rank try acquisition cannot
    // deadlock; record it (later ordered acquires still check
    // against it) without an order check.
    if (!g_checking.load(std::memory_order_relaxed))
        return;
    pushRank(rank);
}

void
noteRelease(int rank)
{
    if (!g_checking.load(std::memory_order_relaxed))
        return;
    // Locks may be released in any order; remove the topmost
    // occurrence of this rank. A rank that was never recorded (the
    // checker was toggled mid-hold) is ignored, so toggling can
    // never corrupt the stack into false positives.
    for (std::size_t i = t_heldCount; i-- > 0;) {
        if (t_heldRanks[i] == rank) {
            for (std::size_t j = i + 1; j < t_heldCount; ++j)
                t_heldRanks[j - 1] = t_heldRanks[j];
            --t_heldCount;
            return;
        }
    }
}

} // namespace lockrank_detail

std::size_t
heldLockCount() noexcept
{
    return t_heldCount;
}

int
topHeldRank() noexcept
{
    return t_heldCount ? t_heldRanks[t_heldCount - 1] : 0;
}

bool
setLockRankChecking(bool enabled) noexcept
{
    return g_checking.exchange(enabled, std::memory_order_relaxed);
}

bool
lockRankCheckingEnabled() noexcept
{
    return g_checking.load(std::memory_order_relaxed);
}

} // namespace scalo::util
