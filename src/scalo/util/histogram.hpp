/**
 * @file
 * Fixed-bucket latency histogram for the serving runtime: 64
 * log-spaced buckets from 1 us to ~100 s, so recording is O(1), the
 * memory footprint is constant, and two histograms merge by adding
 * buckets — the property the per-tenant / per-class / per-node
 * aggregation in serve::Metrics is built on. Quantiles are estimated
 * by linear interpolation inside the owning bucket and clamped to the
 * observed [min, max], which bounds the error at one bucket width
 * (~35% relative) while keeping merge exact.
 */

#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace scalo::util {

/** Mergeable fixed-bucket histogram over millisecond latencies. */
class LatencyHistogram
{
  public:
    /** Bucket count; fixed so any two histograms merge bucketwise. */
    static constexpr std::size_t kBuckets = 64;
    /** Upper bound of bucket 0 (1 us, in ms). */
    static constexpr double kFirstBoundMs = 1e-3;
    /** Geometric growth factor between consecutive bucket bounds. */
    static constexpr double kGrowth = 1.35;

    /** Record one observation (negative values clamp to zero). */
    void add(double ms);

    /** Bucketwise merge; exact (no resampling error). */
    LatencyHistogram &operator+=(const LatencyHistogram &other);

    /** Observations recorded. */
    std::uint64_t count() const { return total; }

    /** Sum of all observations (ms). */
    double sum() const { return sumMs; }

    /** Mean observation; 0 when empty. */
    double mean() const
    {
        return total ? sumMs / static_cast<double>(total) : 0.0;
    }

    /** Smallest / largest observation; 0 when empty. */
    double min() const { return total ? minMs : 0.0; }
    double max() const { return total ? maxMs : 0.0; }

    /**
     * Estimated quantile for @p q in [0, 1]: linear interpolation
     * within the bucket holding the rank, clamped to [min(), max()].
     * @return 0 when empty.
     */
    double quantile(double q) const;

    double p50() const { return quantile(0.50); }
    double p95() const { return quantile(0.95); }
    double p99() const { return quantile(0.99); }

    /** Observations in bucket @p i (for tests and dumps). */
    std::uint64_t bucketCount(std::size_t i) const
    {
        return buckets[i];
    }

    /** Inclusive upper bound of bucket @p i in ms (last is +inf). */
    static double bucketBound(std::size_t i);

  private:
    static std::size_t bucketFor(double ms);

    std::array<std::uint64_t, kBuckets> buckets{};
    std::uint64_t total = 0;
    double sumMs = 0.0;
    double minMs = 0.0;
    double maxMs = 0.0;
};

} // namespace scalo::util
