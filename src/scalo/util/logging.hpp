/**
 * @file
 * Error-handling and status-message helpers in the gem5 spirit:
 *
 *  - panic():  an internal invariant was violated (a SCALO bug); aborts.
 *  - fatal():  the user supplied an impossible configuration; exits.
 *  - warn():   something is suspicious but execution can continue.
 *  - inform(): plain status output.
 */

#pragma once

#include <cstdlib>
#include <sstream>
#include <string>

namespace scalo {

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &message);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &message);
void warnImpl(const std::string &message);
void informImpl(const std::string &message);

/** Build a message string from stream-style arguments. */
template <typename... Args>
std::string
formatMessage(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

} // namespace scalo

/** Abort: something that should never happen happened (a SCALO bug). */
#define SCALO_PANIC(...) \
    ::scalo::panicImpl(__FILE__, __LINE__, \
                       ::scalo::formatMessage(__VA_ARGS__))

/** Exit: the user's configuration/arguments cannot be honoured. */
#define SCALO_FATAL(...) \
    ::scalo::fatalImpl(__FILE__, __LINE__, \
                       ::scalo::formatMessage(__VA_ARGS__))

/** Non-fatal warning to stderr. */
#define SCALO_WARN(...) \
    ::scalo::warnImpl(::scalo::formatMessage(__VA_ARGS__))

/** Status message to stdout. */
#define SCALO_INFORM(...) \
    ::scalo::informImpl(::scalo::formatMessage(__VA_ARGS__))

/** Panic unless a condition holds. */
#define SCALO_ASSERT(cond, ...) \
    do { \
        if (!(cond)) { \
            SCALO_PANIC("assertion failed: " #cond " ", \
                        ::scalo::formatMessage(__VA_ARGS__)); \
        } \
    } while (0)
