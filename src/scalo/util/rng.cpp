#include "scalo/util/rng.hpp"

#include <cmath>
#include <numbers>

namespace scalo {

std::uint64_t
mix64(std::uint64_t x)
{
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

std::uint64_t
mix64(std::uint64_t a, std::uint64_t b)
{
    return mix64(a ^ (mix64(b) + 0x9e3779b97f4a7c15ULL + (a << 6) +
                      (a >> 2)));
}

namespace {

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    SplitMix64 seeder(seed);
    for (auto &word : s)
        word = seeder.next();
}

std::uint64_t
Rng::next()
{
    ++drawCount;
    const std::uint64_t result = rotl(s[1] * 5, 7) * 9;
    const std::uint64_t t = s[1] << 17;

    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 random mantissa bits -> uniform in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::below(std::uint64_t n)
{
    // Debiased multiply-shift (Lemire); n is tiny relative to 2^64 in all
    // our uses, so the rejection loop almost never iterates.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
        const std::uint64_t threshold = -n % n;
        while (lo < threshold) {
            x = next();
            m = static_cast<__uint128_t>(x) * n;
            lo = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

double
Rng::gaussian()
{
    if (hasCachedGaussian) {
        hasCachedGaussian = false;
        return cachedGaussian;
    }
    // Box-Muller: two uniforms -> two independent normals.
    double u1 = uniform();
    while (u1 <= 0.0)
        u1 = uniform();
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * std::numbers::pi * u2;
    cachedGaussian = r * std::sin(theta);
    hasCachedGaussian = true;
    return r * std::cos(theta);
}

double
Rng::gaussian(double mean, double stddev)
{
    return mean + stddev * gaussian();
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

double
Rng::sign()
{
    return (next() & 1) ? 1.0 : -1.0;
}

} // namespace scalo
