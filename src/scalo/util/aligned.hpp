/**
 * @file
 * Grow-only aligned storage for the wide-kernel layer. The SIMD packs
 * (util/simd.hpp) load fastest from 64-byte-aligned rows, and the hot
 * scratch workspaces (DtwScratch, the FFT split buffers,
 * signal::WindowBatch) must not reallocate across mixed-size call
 * sweeps — a candidate-verification loop touching 96-, 64-, then
 * 128-sample windows should settle on one allocation, not churn.
 * std::vector guarantees neither, so this is the storage primitive
 * they share.
 */

#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace scalo::util {

/**
 * Grow-only, 64-byte-aligned, uninitialised buffer of a trivial
 * numeric type. ensure(n) returns a pointer valid for n elements:
 * existing capacity is reused untouched (pointer-stable), larger
 * requests reallocate to exactly n. Contents after growth are
 * unspecified — every consumer fully writes before reading.
 */
template <typename T>
class AlignedBuffer
{
    static_assert(std::is_trivially_copyable_v<T> &&
                      std::is_trivially_destructible_v<T>,
                  "AlignedBuffer is for plain numeric payloads");

  public:
    /** Alignment of every allocation (one cache line / widest pack). */
    static constexpr std::size_t kAlignment = 64;

    AlignedBuffer() = default;

    AlignedBuffer(AlignedBuffer &&other) noexcept
        : ptr(std::exchange(other.ptr, nullptr)),
          cap(std::exchange(other.cap, 0))
    {
    }

    AlignedBuffer &
    operator=(AlignedBuffer &&other) noexcept
    {
        if (this != &other) {
            release();
            ptr = std::exchange(other.ptr, nullptr);
            cap = std::exchange(other.cap, 0);
        }
        return *this;
    }

    AlignedBuffer(const AlignedBuffer &) = delete;
    AlignedBuffer &operator=(const AlignedBuffer &) = delete;

    ~AlignedBuffer() { release(); }

    /**
     * Pointer valid for @p n elements, growing only when @p n exceeds
     * the current capacity (shrinking never releases memory, so a
     * sweep over mixed sizes reallocates at most for its maximum).
     */
    T *
    ensure(std::size_t n)
    {
        if (n > cap) {
            T *fresh = static_cast<T *>(::operator new(
                n * sizeof(T), std::align_val_t{kAlignment}));
            release();
            ptr = fresh;
            cap = n;
        }
        return ptr;
    }

    T *data() { return ptr; }
    const T *data() const { return ptr; }

    /** Elements the current allocation can hold. */
    std::size_t capacity() const { return cap; }

  private:
    void
    release()
    {
        ::operator delete(ptr, std::align_val_t{kAlignment});
        ptr = nullptr;
        cap = 0;
    }

    T *ptr = nullptr;
    std::size_t cap = 0;
};

} // namespace scalo::util
