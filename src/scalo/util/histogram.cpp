#include "scalo/util/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace scalo::util {

namespace {

/** Precomputed inclusive upper bounds; the last bucket is open. */
const std::array<double, LatencyHistogram::kBuckets> &
bounds()
{
    static const auto table = [] {
        std::array<double, LatencyHistogram::kBuckets> b{};
        double bound = LatencyHistogram::kFirstBoundMs;
        for (std::size_t i = 0; i + 1 < b.size(); ++i) {
            b[i] = bound;
            bound *= LatencyHistogram::kGrowth;
        }
        b[b.size() - 1] = std::numeric_limits<double>::infinity();
        return b;
    }();
    return table;
}

} // namespace

double
LatencyHistogram::bucketBound(std::size_t i)
{
    return bounds()[i];
}

std::size_t
LatencyHistogram::bucketFor(double ms)
{
    const auto &b = bounds();
    const auto it = std::lower_bound(b.begin(), b.end() - 1, ms);
    return static_cast<std::size_t>(it - b.begin());
}

void
LatencyHistogram::add(double ms)
{
    if (!(ms > 0.0))
        ms = 0.0;
    ++buckets[bucketFor(ms)];
    if (total == 0) {
        minMs = maxMs = ms;
    } else {
        minMs = std::min(minMs, ms);
        maxMs = std::max(maxMs, ms);
    }
    ++total;
    sumMs += ms;
}

LatencyHistogram &
LatencyHistogram::operator+=(const LatencyHistogram &other)
{
    if (other.total == 0)
        return *this;
    for (std::size_t i = 0; i < kBuckets; ++i)
        buckets[i] += other.buckets[i];
    if (total == 0) {
        minMs = other.minMs;
        maxMs = other.maxMs;
    } else {
        minMs = std::min(minMs, other.minMs);
        maxMs = std::max(maxMs, other.maxMs);
    }
    total += other.total;
    sumMs += other.sumMs;
    return *this;
}

double
LatencyHistogram::quantile(double q) const
{
    if (total == 0)
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    // Rank of the requested quantile, 1-based ("nearest rank").
    const double want = q * static_cast<double>(total);
    const std::uint64_t rank = static_cast<std::uint64_t>(
        std::max(1.0, std::ceil(want)));

    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
        if (buckets[i] == 0)
            continue;
        if (cumulative + buckets[i] < rank) {
            cumulative += buckets[i];
            continue;
        }
        // Interpolate the rank's position inside this bucket.
        const double lower = i == 0 ? 0.0 : bucketBound(i - 1);
        double upper = bucketBound(i);
        if (std::isinf(upper))
            upper = maxMs;
        const double within =
            static_cast<double>(rank - cumulative) /
            static_cast<double>(buckets[i]);
        const double value = lower + (upper - lower) * within;
        return std::clamp(value, minMs, maxMs);
    }
    return maxMs;
}

} // namespace scalo::util
