#include "scalo/util/bitstream.hpp"

#include "scalo/util/logging.hpp"

namespace scalo {

void
BitWriter::putBit(unsigned bit)
{
    const std::size_t byte_index = bits / 8;
    if (byte_index >= buffer.size())
        buffer.push_back(0);
    if (bit & 1)
        buffer[byte_index] |=
            static_cast<std::uint8_t>(0x80u >> (bits % 8));
    ++bits;
}

void
BitWriter::putBits(std::uint64_t value, unsigned count)
{
    SCALO_ASSERT(count <= 64, "putBits count=", count);
    for (unsigned i = count; i-- > 0;)
        putBit(static_cast<unsigned>((value >> i) & 1));
}

std::vector<std::uint8_t>
BitWriter::take()
{
    bits = 0;
    return std::move(buffer);
}

unsigned
BitReader::getBit()
{
    SCALO_ASSERT(!exhausted(), "bit stream exhausted at ", position);
    const std::uint8_t byte = (*buffer)[position / 8];
    const unsigned bit = (byte >> (7 - position % 8)) & 1;
    ++position;
    return bit;
}

std::uint64_t
BitReader::getBits(unsigned count)
{
    SCALO_ASSERT(count <= 64, "getBits count=", count);
    std::uint64_t value = 0;
    for (unsigned i = 0; i < count; ++i)
        value = (value << 1) | getBit();
    return value;
}

} // namespace scalo
