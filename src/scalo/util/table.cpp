#include "scalo/util/table.hpp"

#include <cstdio>
#include <iomanip>
#include <sstream>

#include "scalo/util/logging.hpp"

namespace scalo {

TextTable::TextTable(std::vector<std::string> headers)
    : headerRow(std::move(headers))
{
    SCALO_ASSERT(!headerRow.empty(), "table needs at least one column");
}

void
TextTable::addRow(std::vector<std::string> row)
{
    SCALO_ASSERT(row.size() == headerRow.size(),
                 "row has ", row.size(), " cells, expected ",
                 headerRow.size());
    rows.push_back(std::move(row));
}

std::string
TextTable::num(double value, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << value;
    return oss.str();
}

std::string
TextTable::render() const
{
    std::vector<std::size_t> widths(headerRow.size());
    for (std::size_t c = 0; c < headerRow.size(); ++c)
        widths[c] = headerRow[c].size();
    for (const auto &row : rows)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto render_row = [&](const std::vector<std::string> &row) {
        std::ostringstream line;
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c)
                line << "  ";
            line << std::left << std::setw(static_cast<int>(widths[c]))
                 << row[c];
        }
        return line.str();
    };

    std::ostringstream out;
    out << render_row(headerRow) << '\n';
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c ? 2 : 0);
    out << std::string(total, '-') << '\n';
    for (const auto &row : rows)
        out << render_row(row) << '\n';
    return out.str();
}

void
TextTable::print() const
{
    std::fputs(render().c_str(), stdout);
}

} // namespace scalo
