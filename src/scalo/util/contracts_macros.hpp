/**
 * @file
 * Macro half of the contracts layer. Deliberately NOT include-guarded,
 * in the spirit of <assert.h>: re-including after changing
 * `SCALO_CONTRACTS` re-derives `SCALO_EXPECTS`/`SCALO_ENSURES` for
 * the new setting (the contracts test exercises both states in one
 * translation unit). Normal code includes "scalo/util/contracts.hpp".
 */

// NOLINT(llvm-header-guard)

#undef SCALO_EXPECTS
#undef SCALO_ENSURES

#ifndef SCALO_CONTRACTS
#  ifdef NDEBUG
#    define SCALO_CONTRACTS 0
#  else
#    define SCALO_CONTRACTS 1
#  endif
#endif

#if SCALO_CONTRACTS

/** Precondition: argument/state validity at a model boundary. */
#  define SCALO_EXPECTS(cond) \
      do { \
          if (!(cond)) { \
              ::scalo::util::contractViolated( \
                  "precondition", #cond, __FILE__, __LINE__); \
          } \
      } while (0)

/** Postcondition: result sanity at a model boundary. */
#  define SCALO_ENSURES(cond) \
      do { \
          if (!(cond)) { \
              ::scalo::util::contractViolated( \
                  "postcondition", #cond, __FILE__, __LINE__); \
          } \
      } while (0)

#else

// Off-state: the condition is named but never evaluated (sizeof's
// operand is an unevaluated context), so contract-only variables do
// not trip -Wunused under -Werror builds and still cost nothing.
#  define SCALO_EXPECTS(cond) ((void)sizeof(!(cond)))
#  define SCALO_ENSURES(cond) ((void)sizeof(!(cond)))

#endif
