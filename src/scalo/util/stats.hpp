/**
 * @file
 * Small descriptive-statistics helpers used by the benchmark harness and
 * error-injection experiments (means, percentiles, min/max ranges).
 */

#pragma once

#include <cstddef>
#include <vector>

namespace scalo {

/** Arithmetic mean; 0 for an empty range. */
double mean(const std::vector<double> &values);

/** Population standard deviation; 0 for fewer than two values. */
double stddev(const std::vector<double> &values);

/** Minimum; 0 for an empty range. */
double minOf(const std::vector<double> &values);

/** Maximum; 0 for an empty range. */
double maxOf(const std::vector<double> &values);

/**
 * Linear-interpolated percentile in [0, 100].
 * The input need not be sorted. @return 0 for an empty range.
 */
double percentile(std::vector<double> values, double pct);

/** Online accumulator for mean/min/max without storing samples. */
class RunningStats
{
  public:
    /** Fold one observation into the accumulator. */
    void add(double value);

    std::size_t count() const { return n; }
    double mean() const { return n ? total / static_cast<double>(n) : 0; }
    double min() const { return n ? lo : 0; }
    double max() const { return n ? hi : 0; }

  private:
    std::size_t n = 0;
    double total = 0;
    double lo = 0;
    double hi = 0;
};

} // namespace scalo
