/**
 * @file
 * ASCII table printer used by the benchmark harness to print the rows and
 * series of the paper's tables/figures in a readable form.
 */

#pragma once

#include <string>
#include <vector>

namespace scalo {

/** Column-aligned text table with a header row. */
class TextTable
{
  public:
    /** Create a table with the given column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Append a row; it must match the header column count. */
    void addRow(std::vector<std::string> row);

    /** Helper: format a double with @p precision fraction digits. */
    static std::string num(double value, int precision = 2);

    /** Render the whole table, including a separator under the header. */
    std::string render() const;

    /** Render to stdout. */
    void print() const;

  private:
    std::vector<std::string> headerRow;
    std::vector<std::vector<std::string>> rows;
};

} // namespace scalo
