/**
 * @file
 * Core numeric types and BCI-wide constants shared by every SCALO module.
 *
 * The constants mirror the experimental setup of Section 5 of the paper:
 * 96-electrode arrays sampled at 30 kHz with 16-bit ADCs, 4 ms analysis
 * windows (120 samples), and a 15 mW per-implant power cap.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "scalo/units/units.hpp"

namespace scalo {

/** A raw neural sample as produced by the 16-bit ADC. */
using Sample = std::int16_t;

/** A contiguous window of samples from one electrode. */
using Window = std::vector<Sample>;

/** A hash value produced by the LSH PEs (8-bit hashes per Section 5). */
using HashValue = std::uint8_t;

/** Identifier of an implant ("node") in the distributed BCI. */
using NodeId = std::uint32_t;

/** Identifier of an electrode within a node (0..95 by default). */
using ElectrodeId = std::uint32_t;

namespace constants {

/** ADC sampling rate per electrode (Hz). */
inline constexpr double kSampleRateHz = 30'000.0;

/** ADC resolution (bits per sample). */
inline constexpr int kBitsPerSample = 16;

/** Electrodes per implant (standard Utah array). */
inline constexpr int kElectrodesPerNode = 96;

/** Samples per 4 ms analysis window. */
inline constexpr int kWindowSamples = 120;

/** Analysis window length (seconds). */
inline constexpr double kWindowSeconds = kWindowSamples / kSampleRateHz;

/** Per-electrode raw data rate (bits per second). */
inline constexpr double kElectrodeBps = kSampleRateHz * kBitsPerSample;

/**
 * Per-node ADC data rate in Mbps: 96 electrodes x 30 kHz x 16 bit
 * = 46.08 Mbps ("46 Mbps" in the paper).
 */
inline constexpr double kNodeAdcMbps =
    kElectrodesPerNode * kElectrodeBps / 1e6;

/** Conservative per-implant power cap (mW), Section 2.1. */
inline constexpr double kPowerCapMw = 15.0;

/** ADC power for one sample from all 96 electrodes (mW), Section 5. */
inline constexpr double kAdcPowerMw = 2.88;

/** DAC (stimulation) power (mW), Section 5. */
inline constexpr double kDacPowerMw = 0.6;

/** Seizure propagation deadline: detection -> stimulation (ms). */
inline constexpr double kSeizureDeadlineMs = 10.0;

/** Movement decoding loop deadline (ms). */
inline constexpr double kMovementDeadlineMs = 50.0;

/** Bytes in one uncompressed 4 ms signal window (120 x 16 bit). */
inline constexpr int kWindowBytes = kWindowSamples * kBitsPerSample / 8;

/** Default inter-implant spacing (mm) for negligible thermal coupling. */
inline constexpr double kImplantSpacingMm = 20.0;

/** Hemispherical brain surface radius used for placement (mm). */
inline constexpr double kBrainRadiusMm = 86.0;

/** Maximum implants placeable at default spacing (Section 5). */
inline constexpr int kMaxImplants = 60;

/** @name Typed constants (scalo::units)
 * The model layers take these; the raw doubles above remain for
 * dimensionless arithmetic (sample counts, loop bounds). */
///@{

/** ADC sampling rate per electrode. */
inline constexpr units::Hertz kSampleRate{kSampleRateHz};

/** Analysis window length (4 ms). */
inline constexpr units::Seconds kWindowLength{kWindowSeconds};

/** Per-electrode raw data rate. */
inline constexpr units::BitsPerSecond kElectrodeRate{kElectrodeBps};

/** Per-node ADC data rate (46.08 Mbps). */
inline constexpr units::MegabitsPerSecond kNodeAdcRate{kNodeAdcMbps};

/** Conservative per-implant power cap, Section 2.1. */
inline constexpr units::Milliwatts kPowerCap{kPowerCapMw};

/** ADC power for one sample from all 96 electrodes, Section 5. */
inline constexpr units::Milliwatts kAdcPower{kAdcPowerMw};

/** DAC (stimulation) power, Section 5. */
inline constexpr units::Milliwatts kDacPower{kDacPowerMw};

/** Seizure propagation deadline: detection -> stimulation. */
inline constexpr units::Millis kSeizureDeadline{kSeizureDeadlineMs};

/** Movement decoding loop deadline. */
inline constexpr units::Millis kMovementDeadline{kMovementDeadlineMs};

/** Default inter-implant spacing for negligible thermal coupling. */
inline constexpr units::Millimetres kImplantSpacing{kImplantSpacingMm};

/** Hemispherical brain surface radius used for placement. */
inline constexpr units::Millimetres kBrainRadius{kBrainRadiusMm};

///@}

} // namespace constants

/** Convert an electrode count to an aggregate neural data rate in Mbps. */
constexpr double
electrodesToMbps(double electrodes)
{
    return electrodes * constants::kElectrodeBps / 1e6;
}

/** Convert a neural data rate in Mbps to an electrode count. */
constexpr double
mbpsToElectrodes(double mbps)
{
    return mbps * 1e6 / constants::kElectrodeBps;
}

/** Aggregate neural data rate produced by @p electrodes. */
constexpr units::MegabitsPerSecond
electrodesToRate(double electrodes)
{
    return units::MegabitsPerSecond{electrodesToMbps(electrodes)};
}

/** Electrode count whose aggregate output is @p rate. */
constexpr double
rateToElectrodes(units::MegabitsPerSecond rate)
{
    return mbpsToElectrodes(rate.count());
}

} // namespace scalo
