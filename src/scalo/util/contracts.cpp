#include "scalo/util/contracts.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace scalo::util {

namespace {

void
defaultHandler(const char *kind, const char *condition,
               const char *file, int line)
{
    std::fprintf(stderr, "scalo: %s violated at %s:%d: %s\n", kind,
                 file, line, condition);
    std::abort();
}

std::atomic<ContractHandler> currentHandler{&defaultHandler};

} // namespace

ContractHandler
setContractHandler(ContractHandler handler)
{
    return currentHandler.exchange(handler ? handler
                                           : &defaultHandler);
}

void
contractViolated(const char *kind, const char *condition,
                 const char *file, int line)
{
    currentHandler.load()(kind, condition, file, line);
}

} // namespace scalo::util
