/**
 * @file
 * A small reusable worker pool for the query runtime (and any other
 * host-side fan-out). Work is modeled as index-parallel loops: the
 * caller hands parallelFor a count and a function of the index, and
 * the pool partitions the indices across its workers. A pool of size
 * <= 1 degenerates to an inline sequential loop, which keeps the
 * single-threaded path trivially deterministic and sanitizer-quiet.
 */

#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "scalo/util/ranked_mutex.hpp"

namespace scalo::util {

/** Fixed-size worker pool with index-parallel loops. */
class ThreadPool
{
  public:
    /**
     * @param threads worker count; 0 or 1 means "run inline on the
     *                caller" (no workers are spawned)
     */
    explicit ThreadPool(std::size_t threads);

    /** Joins all workers; pending loops must have completed. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Workers available (0 when running inline). */
    std::size_t size() const { return workers.size(); }

    /**
     * Run fn(0) .. fn(count-1), each exactly once, and block until
     * all have finished. Iterations may run on any worker (or the
     * caller, which also drains the queue); no two iterations of one
     * call run the same index. The first exception thrown by any
     * iteration is rethrown on the caller after the loop drains.
     */
    void parallelFor(std::size_t count,
                     const std::function<void(std::size_t)> &fn);

    /** A sensible default width: hardware concurrency, at least 1. */
    static std::size_t defaultThreads();

  private:
    struct Loop;

    void workerMain();
    static void runOne(const std::shared_ptr<Loop> &loop);

    std::vector<std::thread> workers;
    RankedMutex<lockrank::kThreadPoolQueue> mtx;
    ConditionVariable cv;
    std::deque<std::shared_ptr<Loop>> pending SCALO_GUARDED_BY(mtx);
    bool stopping SCALO_GUARDED_BY(mtx) = false;
};

} // namespace scalo::util
