/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic components of SCALO (LSH projection vectors, synthetic
 * data, bit-error injection) draw from these generators so that every
 * experiment is reproducible from a seed.
 */

#pragma once

#include <cstdint>
#include <limits>

namespace scalo {

/**
 * SplitMix64: fast 64-bit mixer, used for seeding and hashing.
 *
 * Reference: Steele, Lea & Flood, "Fast Splittable Pseudorandom Number
 * Generators", OOPSLA 2014.
 */
class SplitMix64
{
  public:
    explicit SplitMix64(std::uint64_t seed) : state(seed) {}

    /** Return the next 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

  private:
    std::uint64_t state;
};

/** Stateless 64-bit mix of a value (useful as a hash function). */
std::uint64_t mix64(std::uint64_t x);

/** Mix two 64-bit values into one (order-sensitive). */
std::uint64_t mix64(std::uint64_t a, std::uint64_t b);

/**
 * Xoshiro256**: the repository-wide general purpose generator.
 *
 * Satisfies UniformRandomBitGenerator so it can be used with <random>
 * distributions, but the helpers below avoid libstdc++-version-dependent
 * distribution implementations for portability of results.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    explicit Rng(std::uint64_t seed = 0x5ca10'5ca10ULL);

    static constexpr result_type min() { return 0; }

    static constexpr result_type
    max()
    {
        return std::numeric_limits<result_type>::max();
    }

    result_type operator()() { return next(); }

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /**
     * Raw 64-bit values drawn so far. Determinism audits (e.g. the
     * empty-FaultPlan zero-RNG contract) compare this against zero
     * to prove a stream was never consumed.
     */
    std::uint64_t draws() const { return drawCount; }

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). @pre n > 0 */
    std::uint64_t below(std::uint64_t n);

    /** Standard normal variate (Box-Muller, deterministic). */
    double gaussian();

    /** Normal variate with the given mean and standard deviation. */
    double gaussian(double mean, double stddev);

    /** Bernoulli trial with probability p of returning true. */
    bool chance(double p);

    /** Random sign: +1.0 or -1.0 with equal probability. */
    double sign();

  private:
    std::uint64_t s[4];
    std::uint64_t drawCount = 0;
    double cachedGaussian = 0.0;
    bool hasCachedGaussian = false;
};

} // namespace scalo
