#include "scalo/util/crc32.hpp"

#include <array>

namespace scalo {

namespace {

std::array<std::uint32_t, 256>
makeTable()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int bit = 0; bit < 8; ++bit)
            c = (c & 1) ? (0xedb88320u ^ (c >> 1)) : (c >> 1);
        table[i] = c;
    }
    return table;
}

const std::array<std::uint32_t, 256> crcTable = makeTable();

} // namespace

std::uint32_t
crc32(const std::uint8_t *data, std::size_t length)
{
    std::uint32_t c = 0xffffffffu;
    for (std::size_t i = 0; i < length; ++i)
        c = crcTable[(c ^ data[i]) & 0xff] ^ (c >> 8);
    return c ^ 0xffffffffu;
}

std::uint32_t
crc32(const std::vector<std::uint8_t> &data)
{
    return crc32(data.data(), data.size());
}

} // namespace scalo
