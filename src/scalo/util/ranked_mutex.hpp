/**
 * @file
 * Deadlock prevention by lock ranking, layered on the annotated
 * Mutex (thread_annotations.hpp). Clang's thread-safety analysis
 * proves guarded state is only touched under its lock, but it cannot
 * see *cycles* between locks acquired in different functions; the
 * rank discipline closes that gap:
 *
 *  - every Mutex declares a rank from the lockrank:: table below
 *    (construction without one does not compile, so a new mutex
 *    cannot dodge the ordering);
 *  - a thread may only acquire locks in strictly ascending rank
 *    order. In contract-checked (Debug / sanitizer) builds each
 *    acquisition is validated against a thread-local held-rank stack
 *    and a violation reports through the contracts handler (abort by
 *    default, throw under the test handler);
 *  - acquiring two locks in one scope goes through OrderedLockPair,
 *    whose rank order is checked at compile time on every compiler.
 *
 * The rank table is the codebase's documented lock ordering — keep it
 * in sync with DESIGN.md ("Concurrency model"). Ranks ascend from
 * coarse runtime locks to leaf utility locks: a coarse lock may wrap
 * operations that take leaf locks, never the reverse.
 */

#pragma once

#include <cstddef>

#include "scalo/util/thread_annotations.hpp"

namespace scalo::util {

namespace lockrank {

/** serve::QueryServer admission/ticket state (coarsest). */
inline constexpr int kServeQueryServer = 10;
/** serve::PlanCache LRU map. */
inline constexpr int kServePlanCache = 20;
/** serve::ChaosDriver replay timeline. */
inline constexpr int kServeChaosDriver = 30;
/** util::ThreadPool pending-loop queue. */
inline constexpr int kThreadPoolQueue = 40;
/** util::ThreadPool per-loop first-exception slot. */
inline constexpr int kThreadPoolLoopError = 50;
/** util::ThreadPool per-loop completion signal (leaf). */
inline constexpr int kThreadPoolLoopDone = 52;
/** signal::FftPlan process-wide plan cache (leaf). */
inline constexpr int kFftPlanCache = 60;

} // namespace lockrank

/** Locks (of any rank) currently held by the calling thread. */
std::size_t heldLockCount() noexcept;

/** Highest-ranked lock held by the calling thread; 0 when none. */
int topHeldRank() noexcept;

/**
 * Turn runtime rank checking on or off (process-wide). Defaults to
 * on in contract-checked builds (Debug / sanitizer), off otherwise;
 * tests force it on to exercise the discipline in any build type.
 * Only flip while the calling thread holds no locks. @return the
 * previous setting
 */
bool setLockRankChecking(bool enabled) noexcept;

/** Whether runtime rank checking is currently active. */
bool lockRankCheckingEnabled() noexcept;

/**
 * A Mutex whose rank is part of the type, making the ordering
 * visible to the compiler: OrderedLockPair static_asserts on kRank,
 * so a wrong-order paired acquisition fails to build (one of the
 * negative-compile CI cases), on GCC and Clang alike.
 */
template <int Rank>
class SCALO_CAPABILITY("mutex") RankedMutex : public Mutex
{
    static_assert(Rank > 0, "lock ranks are positive; pick one from "
                            "util::lockrank (and document it)");

  public:
    static constexpr int kRank = Rank;

    RankedMutex() noexcept : Mutex(Rank) {}
};

/**
 * Scoped acquisition of two ranked locks at once, in rank order.
 * The order is a compile-time contract: swapping the arguments (or
 * declaring ranks that invert an existing nesting) is a build error.
 */
template <class LowMutex, class HighMutex>
class SCALO_SCOPED_CAPABILITY OrderedLockPair
{
    static_assert(LowMutex::kRank < HighMutex::kRank,
                  "lock acquisition must follow ascending rank; "
                  "swap the arguments (or fix the rank table)");

  public:
    OrderedLockPair(LowMutex &low_mutex, HighMutex &high_mutex)
        SCALO_ACQUIRE(low_mutex, high_mutex)
        : low(low_mutex), high(high_mutex)
    {
        low.lock();
        high.lock();
    }

    ~OrderedLockPair() SCALO_RELEASE()
    {
        high.unlock();
        low.unlock();
    }

    OrderedLockPair(const OrderedLockPair &) = delete;
    OrderedLockPair &operator=(const OrderedLockPair &) = delete;

  private:
    LowMutex &low;
    HighMutex &high;
};

} // namespace scalo::util
