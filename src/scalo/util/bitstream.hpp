/**
 * @file
 * Bit-granular writer/reader used by the compression PEs (Elias-gamma
 * coding operates on individual bits).
 */

#pragma once

#include <cstdint>
#include <vector>

namespace scalo {

/** Append-only bit sink backed by a byte vector (MSB-first per byte). */
class BitWriter
{
  public:
    /** Append a single bit (only the LSB of @p bit is used). */
    void putBit(unsigned bit);

    /** Append @p count bits of @p value, most-significant bit first. */
    void putBits(std::uint64_t value, unsigned count);

    /** Number of bits written so far. */
    std::size_t bitCount() const { return bits; }

    /** Finish and return the byte buffer (final byte zero-padded). */
    std::vector<std::uint8_t> take();

    /** Read-only view of the bytes written so far. */
    const std::vector<std::uint8_t> &bytes() const { return buffer; }

  private:
    std::vector<std::uint8_t> buffer;
    std::size_t bits = 0;
};

/** Sequential bit source over a byte buffer (MSB-first per byte). */
class BitReader
{
  public:
    explicit BitReader(const std::vector<std::uint8_t> &data)
        : buffer(&data) {}

    /** Read one bit; @return 0 or 1. @pre !exhausted() */
    unsigned getBit();

    /** Read @p count bits, most-significant bit first. */
    std::uint64_t getBits(unsigned count);

    /** True when every bit has been consumed. */
    bool exhausted() const { return position >= buffer->size() * 8; }

    /** Number of bits consumed so far. */
    std::size_t bitPosition() const { return position; }

  private:
    const std::vector<std::uint8_t> *buffer;
    std::size_t position = 0;
};

} // namespace scalo
