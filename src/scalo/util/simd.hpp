/**
 * @file
 * Portable fixed-width SIMD packs: the vector abstraction under every
 * wide kernel (distance, FFT butterflies, linalg, batched hashing).
 *
 * `simd::pack<double, W>` holds W lanes and exists in two
 * implementations selected at configure time by the SCALO_SIMD CMake
 * option:
 *
 *  - **wide** (AUTO/WIDE on GCC or Clang): compiler vector extensions
 *    (`__attribute__((vector_size)))`), which lower to the best
 *    instructions the target allows — AVX-512 with
 *    `-DSCALO_MARCH=native` on a capable box, split SSE2 sequences on
 *    the x86-64 baseline. Wider-than-hardware packs are emulated
 *    correctly, so the default width need not match the machine.
 *  - **scalar** (SCALAR, or AUTO on a compiler without vector
 *    extensions): a plain W-element array with per-lane loops.
 *
 * Both implementations keep the same lane structure and the same
 * horizontal-reduce order, so a kernel written against pack produces
 * **bit-identical results in wide and scalar builds** (and across
 * `-march=` levels): the build mode changes instruction selection,
 * never arithmetic order. Parity of scalar vs. wide CI builds is
 * therefore exact, not a tolerance.
 *
 * Conventions:
 *  - `kLanes` is the default pack width for double kernels;
 *    `paddedSize(n)` rounds a row length up to it (see
 *    signal::WindowBatch for the zero-padding contract).
 *  - `load`/`store` require util::AlignedBuffer::kAlignment-aligned
 *    pointers; `loadu`/`storeu` accept any double-aligned pointer.
 *  - `min`/`max` follow std::min/std::max exactly, including NaN
 *    behaviour (comparison false keeps the first argument).
 *  - `sum()` reduces lanes strictly left to right; kernels that
 *    document a tolerance vs. the naive references owe it to lane
 *    blocking, not to the reduce.
 */

#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>

#if defined(SCALO_SIMD_SCALAR)
#define SCALO_SIMD_IS_WIDE 0
#elif defined(__GNUC__) || defined(__clang__)
#define SCALO_SIMD_IS_WIDE 1
#elif defined(SCALO_SIMD_WIDE_REQUIRED)
#error "SCALO_SIMD=WIDE requires GCC/Clang vector extensions; \
use SCALO_SIMD=AUTO or SCALAR with this compiler"
#else
#define SCALO_SIMD_IS_WIDE 0
#endif

#ifndef SCALO_SIMD_WIDTH
/**
 * Default double-pack width. 8 doubles = one AVX-512 register, two
 * AVX registers, or four SSE2 registers — fixed across targets so
 * results do not depend on -march.
 */
#define SCALO_SIMD_WIDTH 8
#endif

namespace scalo::simd {

/** Lanes in the default double pack (see SCALO_SIMD_WIDTH). */
inline constexpr std::size_t kLanes = SCALO_SIMD_WIDTH;

/** True when packs compile to compiler vector extensions. */
inline constexpr bool kWide = SCALO_SIMD_IS_WIDE == 1;

/** Build-mode name for bench/metric context ("wide" / "scalar"). */
inline constexpr const char *kModeName = kWide ? "wide" : "scalar";

/** @p n rounded up to a multiple of @p lanes. */
constexpr std::size_t
paddedSize(std::size_t n, std::size_t lanes = kLanes)
{
    return (n + lanes - 1) / lanes * lanes;
}

template <typename T, std::size_t W> struct pack;

#if SCALO_SIMD_IS_WIDE

// Passing packs by value draws GCC's "ABI for parameters with 64-byte
// alignment changed" note when the target ISA is narrower than the
// pack. Every pack function is defined inline in this header, so no
// ABI boundary exists to mismatch; silence the note.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wpsabi"

/** Wide implementation over GCC/Clang vector extensions. */
template <std::size_t W>
struct pack<double, W>
{
    static_assert(W >= 2 && (W & (W - 1)) == 0,
                  "pack width must be a power of two >= 2");

    // typedef (not using-alias) form: GCC drops the attribute from
    // alias declarations silently.
    typedef double native
        __attribute__((vector_size(W * sizeof(double))));
    /** Same shape, element alignment only: unaligned memory ops. */
    typedef double native_u
        __attribute__((vector_size(W * sizeof(double)),
                       aligned(alignof(double))));
    typedef std::int64_t mask_native
        __attribute__((vector_size(W * sizeof(std::int64_t))));

    native v;

    static constexpr std::size_t width = W;

    static pack zero() { return pack{native{}}; }

    static pack
    broadcast(double x)
    {
        return pack{native{} + x};
    }

    /** @pre p is util::AlignedBuffer::kAlignment-aligned. */
    static pack
    load(const double *p)
    {
        return pack{*reinterpret_cast<const native *>(p)};
    }

    static pack
    loadu(const double *p)
    {
        return pack{
            static_cast<native>(
                *reinterpret_cast<const native_u *>(p))};
    }

    /** @pre p is util::AlignedBuffer::kAlignment-aligned. */
    void
    store(double *p) const
    {
        *reinterpret_cast<native *>(p) = v;
    }

    void
    storeu(double *p) const
    {
        *reinterpret_cast<native_u *>(p) = static_cast<native_u>(v);
    }

    double
    operator[](std::size_t lane) const
    {
        // GCC cannot subscript a dependent vector type inside the
        // template body; spill through a stack array (optimised to a
        // lane extract at instantiation).
        alignas(64) double lanes[W];
        store(lanes);
        return lanes[lane];
    }

    friend pack operator+(pack a, pack b) { return pack{a.v + b.v}; }
    friend pack operator-(pack a, pack b) { return pack{a.v - b.v}; }
    friend pack operator*(pack a, pack b) { return pack{a.v * b.v}; }

    pack &
    operator+=(pack other)
    {
        v += other.v;
        return *this;
    }

    pack operator-() const { return pack{-v}; }

    /** Lanewise std::min: (b < a) ? b : a, NaN keeps a. */
    friend pack
    min(pack a, pack b)
    {
        return pack{(b.v < a.v) ? b.v : a.v};
    }

    /** Lanewise std::max: (a < b) ? b : a, NaN keeps a. */
    friend pack
    max(pack a, pack b)
    {
        return pack{(a.v < b.v) ? b.v : a.v};
    }

    /** Lanewise |x| by clearing the sign bit (NaN payload kept). */
    friend pack
    abs(pack x)
    {
        // C-style casts between same-size vector types are the GNU
        // bit-reinterpret idiom (reinterpret_cast trips
        // -Wstrict-aliasing here).
        const mask_native bits =
            (mask_native)x.v & 0x7fffffffffffffffLL;
        return pack{(native)bits};
    }

    /** Strict left-to-right lane sum (deterministic reduce order). */
    double
    sum() const
    {
        alignas(64) double lanes[W];
        store(lanes);
        double acc = lanes[0];
        for (std::size_t lane = 1; lane < W; ++lane)
            acc += lanes[lane];
        return acc;
    }

    /** Left-to-right lane minimum (std::min semantics per step). */
    double
    lanesMin() const
    {
        alignas(64) double lanes[W];
        store(lanes);
        double best = lanes[0];
        for (std::size_t lane = 1; lane < W; ++lane)
            best = lanes[lane] < best ? lanes[lane] : best;
        return best;
    }
};

#pragma GCC diagnostic pop

#else // scalar fallback

/**
 * Scalar fallback: identical lane structure and reduce order, plain
 * loops. Guaranteed correct anywhere; selected by SCALO_SIMD=SCALAR
 * (or AUTO on a compiler without vector extensions).
 */
template <std::size_t W>
struct pack<double, W>
{
    static_assert(W >= 2 && (W & (W - 1)) == 0,
                  "pack width must be a power of two >= 2");

    double v[W];

    static constexpr std::size_t width = W;

    static pack
    zero()
    {
        pack out{};
        return out;
    }

    static pack
    broadcast(double x)
    {
        pack out;
        for (std::size_t lane = 0; lane < W; ++lane)
            out.v[lane] = x;
        return out;
    }

    static pack
    load(const double *p)
    {
        return loadu(p);
    }

    static pack
    loadu(const double *p)
    {
        pack out;
        for (std::size_t lane = 0; lane < W; ++lane)
            out.v[lane] = p[lane];
        return out;
    }

    void
    store(double *p) const
    {
        storeu(p);
    }

    void
    storeu(double *p) const
    {
        for (std::size_t lane = 0; lane < W; ++lane)
            p[lane] = v[lane];
    }

    double operator[](std::size_t lane) const { return v[lane]; }

    friend pack
    operator+(pack a, pack b)
    {
        for (std::size_t lane = 0; lane < W; ++lane)
            a.v[lane] += b.v[lane];
        return a;
    }

    friend pack
    operator-(pack a, pack b)
    {
        for (std::size_t lane = 0; lane < W; ++lane)
            a.v[lane] -= b.v[lane];
        return a;
    }

    friend pack
    operator*(pack a, pack b)
    {
        for (std::size_t lane = 0; lane < W; ++lane)
            a.v[lane] *= b.v[lane];
        return a;
    }

    pack &
    operator+=(pack other)
    {
        for (std::size_t lane = 0; lane < W; ++lane)
            v[lane] += other.v[lane];
        return *this;
    }

    pack
    operator-() const
    {
        pack out;
        for (std::size_t lane = 0; lane < W; ++lane)
            out.v[lane] = -v[lane];
        return out;
    }

    friend pack
    min(pack a, pack b)
    {
        for (std::size_t lane = 0; lane < W; ++lane)
            a.v[lane] =
                b.v[lane] < a.v[lane] ? b.v[lane] : a.v[lane];
        return a;
    }

    friend pack
    max(pack a, pack b)
    {
        for (std::size_t lane = 0; lane < W; ++lane)
            a.v[lane] =
                a.v[lane] < b.v[lane] ? b.v[lane] : a.v[lane];
        return a;
    }

    friend pack
    abs(pack x)
    {
        for (std::size_t lane = 0; lane < W; ++lane)
            x.v[lane] = std::bit_cast<double>(
                std::bit_cast<std::uint64_t>(x.v[lane]) &
                0x7fffffffffffffffULL);
        return x;
    }

    double
    sum() const
    {
        double acc = v[0];
        for (std::size_t lane = 1; lane < W; ++lane)
            acc += v[lane];
        return acc;
    }

    double
    lanesMin() const
    {
        double best = v[0];
        for (std::size_t lane = 1; lane < W; ++lane)
            best = v[lane] < best ? v[lane] : best;
        return best;
    }
};

#endif // SCALO_SIMD_IS_WIDE

/** The default-width double pack every wide kernel is written to. */
using dpack = pack<double, kLanes>;

} // namespace scalo::simd
