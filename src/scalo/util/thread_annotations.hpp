/**
 * @file
 * Compile-time thread-safety layer: Clang thread-safety-analysis
 * attribute macros plus the annotated mutex vocabulary the whole
 * codebase locks through.
 *
 * Under Clang (`-Wthread-safety`, part of the strict CI gate) the
 * macros expand to capability attributes, so "which lock guards which
 * state" is machine-checked at compile time: reading a
 * `SCALO_GUARDED_BY(mtx)` member without holding `mtx`, calling a
 * `SCALO_REQUIRES(mtx)` helper unlocked, or returning with a lock
 * still held is a build error, not a TSan roll of the dice. On any
 * other compiler every macro expands to nothing and the wrappers
 * degrade to plain `std::mutex` semantics.
 *
 * The vocabulary:
 *  - `Mutex` — an annotated exclusive capability over `std::mutex`.
 *    Construction REQUIRES a lock rank (see ranked_mutex.hpp): an
 *    unranked mutex does not compile, so every lock in the codebase
 *    is in the documented ordering table (DESIGN.md, "Concurrency
 *    model"). In contract-checked builds (Debug / sanitizer) each
 *    acquisition is validated against a thread-local held-rank stack,
 *    catching deadlock *cycles* the static analysis cannot see.
 *  - `MutexLock` — the scoped (RAII) acquisition; relockable, so a
 *    dispatcher can drop the lock around a batch and retake it.
 *  - `ConditionVariable` — condition waits against a `MutexLock`.
 *    There is deliberately no predicate overload: spell the wait as
 *    `while (!cond) cv.wait(lock);` inside the capability-holding
 *    function so the analysis sees every guarded read.
 *
 * The macro names and semantics follow the Clang thread-safety
 * reference (capability, guarded_by, requires_capability, ...).
 */

#pragma once

#include <condition_variable>
#include <chrono>
#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#  if __has_attribute(capability)
#    define SCALO_THREAD_ANNOTATION(x) __attribute__((x))
#  endif
#endif
#ifndef SCALO_THREAD_ANNOTATION
#  define SCALO_THREAD_ANNOTATION(x) // degrades to nothing off-Clang
#endif

/** Type-level: this class is a lockable capability named @p x. */
#define SCALO_CAPABILITY(x) SCALO_THREAD_ANNOTATION(capability(x))
/** Type-level: RAII object acquiring/releasing a capability. */
#define SCALO_SCOPED_CAPABILITY \
    SCALO_THREAD_ANNOTATION(scoped_lockable)
/** Member: readable/writable only while holding @p x. */
#define SCALO_GUARDED_BY(x) SCALO_THREAD_ANNOTATION(guarded_by(x))
/** Member (pointer): the pointee is guarded by @p x. */
#define SCALO_PT_GUARDED_BY(x) \
    SCALO_THREAD_ANNOTATION(pt_guarded_by(x))
/** Declared acquisition order between capabilities. */
#define SCALO_ACQUIRED_BEFORE(...) \
    SCALO_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define SCALO_ACQUIRED_AFTER(...) \
    SCALO_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
/** Function: caller must already hold the capability. */
#define SCALO_REQUIRES(...) \
    SCALO_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define SCALO_REQUIRES_SHARED(...) \
    SCALO_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
/** Function: acquires the capability (held on return). */
#define SCALO_ACQUIRE(...) \
    SCALO_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define SCALO_ACQUIRE_SHARED(...) \
    SCALO_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
/** Function: releases the capability (not held on return). */
#define SCALO_RELEASE(...) \
    SCALO_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define SCALO_RELEASE_SHARED(...) \
    SCALO_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
/** Function: acquires when returning @p ... (try_lock idiom). */
#define SCALO_TRY_ACQUIRE(...) \
    SCALO_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
/** Function: must NOT hold the capability (anti-deadlock). */
#define SCALO_EXCLUDES(...) \
    SCALO_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/** Assertion: the capability is held here (runtime-checked entry). */
#define SCALO_ASSERT_CAPABILITY(x) \
    SCALO_THREAD_ANNOTATION(assert_capability(x))
/** Function: returns a reference to the capability @p x. */
#define SCALO_RETURN_CAPABILITY(x) \
    SCALO_THREAD_ANNOTATION(lock_returned(x))
/** Escape hatch: skip analysis inside one function. */
#define SCALO_NO_THREAD_SAFETY_ANALYSIS \
    SCALO_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace scalo::util {

namespace lockrank_detail {

/**
 * Held-rank stack hooks (implemented in ranked_mutex.cpp). Checking
 * is active when lock-rank checking is enabled — by default in
 * contract-checked (Debug / sanitizer) builds — and free otherwise.
 */
void noteAcquire(int rank);
/** try_lock cannot deadlock, so it records without an order check. */
void noteTryAcquire(int rank);
void noteRelease(int rank);

} // namespace lockrank_detail

/**
 * Annotated exclusive mutex. Every instance declares its lock rank
 * (a lockrank:: constant): ranks must be acquired in strictly
 * ascending order per thread, checked at runtime in contract-checked
 * builds through the thread-local held-rank stack. A rank violation
 * reports through the contracts violation handler *before* the
 * underlying mutex is touched, so a throwing test handler leaves the
 * mutex unlocked and consistent.
 */
class SCALO_CAPABILITY("mutex") Mutex
{
  public:
    /** @param rank this lock's position in the global ordering. */
    explicit Mutex(int rank) noexcept : mutexRank(rank) {}

    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void
    lock() SCALO_ACQUIRE()
    {
        lockrank_detail::noteAcquire(mutexRank);
        m.lock();
    }

    void
    unlock() SCALO_RELEASE()
    {
        m.unlock();
        lockrank_detail::noteRelease(mutexRank);
    }

    bool
    try_lock() SCALO_TRY_ACQUIRE(true)
    {
        if (!m.try_lock())
            return false;
        lockrank_detail::noteTryAcquire(mutexRank);
        return true;
    }

    int rank() const noexcept { return mutexRank; }

  private:
    friend class ConditionVariable;

    std::mutex m;
    int mutexRank;
};

/**
 * Scoped acquisition of a Mutex. Relockable: unlock()/lock() let a
 * holder drop the capability around a long operation (the dispatcher
 * batch idiom) while the analysis tracks the hand-offs.
 */
class SCALO_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mutex) SCALO_ACQUIRE(mutex) : mu(mutex)
    {
        mu.lock();
    }

    ~MutexLock() SCALO_RELEASE()
    {
        if (owned)
            mu.unlock();
    }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

    /** Drop the capability before scope exit. @pre currently held. */
    void
    unlock() SCALO_RELEASE()
    {
        mu.unlock();
        owned = false;
    }

    /** Retake the capability. @pre currently released. */
    void
    lock() SCALO_ACQUIRE()
    {
        mu.lock();
        owned = true;
    }

  private:
    friend class ConditionVariable;

    Mutex &mu;
    bool owned = true;
};

/**
 * Condition waits over the annotated Mutex. Waits take the scoped
 * MutexLock; the capability is held on entry and again on return
 * (the underlying mutex is atomically released while blocked, as
 * usual). While blocked the thread acquires nothing, so the held-rank
 * stack deliberately keeps the lock's rank across the wait.
 */
class ConditionVariable
{
  public:
    ConditionVariable() = default;
    ConditionVariable(const ConditionVariable &) = delete;
    ConditionVariable &operator=(const ConditionVariable &) = delete;

    /** Block until notified (or spuriously woken). */
    void
    wait(MutexLock &lock)
    {
        std::unique_lock<std::mutex> raw(lock.mu.m, std::adopt_lock);
        cv.wait(raw);
        raw.release();
    }

    /** Block until notified or @p deadline. */
    std::cv_status
    waitUntil(MutexLock &lock,
              std::chrono::steady_clock::time_point deadline)
    {
        std::unique_lock<std::mutex> raw(lock.mu.m, std::adopt_lock);
        const std::cv_status status = cv.wait_until(raw, deadline);
        raw.release();
        return status;
    }

    void notifyOne() noexcept { cv.notify_one(); }
    void notifyAll() noexcept { cv.notify_all(); }

  private:
    std::condition_variable cv;
};

} // namespace scalo::util
