/**
 * @file
 * CRC32 (IEEE 802.3 polynomial) used for packet header/payload checksums
 * in the intra-SCALO network (Section 3.4).
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace scalo {

/** Compute the CRC32 of a byte buffer (IEEE reflected, init 0xFFFFFFFF). */
std::uint32_t crc32(const std::uint8_t *data, std::size_t length);

/** Convenience overload for byte vectors. */
std::uint32_t crc32(const std::vector<std::uint8_t> &data);

} // namespace scalo
