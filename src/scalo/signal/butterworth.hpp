/**
 * @file
 * Butterworth band-pass filter (the BBF PE): analog prototype design via
 * pole placement, bilinear transform to biquad sections, and streaming
 * evaluation.
 */

#pragma once

#include <complex>
#include <cstddef>
#include <vector>

namespace scalo::signal {

/** One direct-form-II-transposed second-order section. */
class Biquad
{
  public:
    /** Coefficients normalised so a0 == 1. */
    Biquad(double b0, double b1, double b2, double a1, double a2);

    /** Filter one sample, updating internal state. */
    double step(double x);

    /** Clear delay-line state. */
    void reset();

    /**
     * Complex frequency response H(z) evaluated at @p z_inv = z^-1
     * (state-independent; used for exact gain normalisation).
     */
    std::complex<double> response(std::complex<double> z_inv) const;

  private:
    double b0, b1, b2, a1, a2;
    double z1 = 0.0;
    double z2 = 0.0;
};

/**
 * Butterworth band-pass filter as a cascade of biquads.
 *
 * The design follows the classic analog-prototype + frequency-transform +
 * bilinear-transform recipe; an order-N band-pass has N second-order
 * sections.
 */
class ButterworthBandpass
{
  public:
    /**
     * Design a filter.
     *
     * @param order       analog low-pass prototype order (>= 1)
     * @param low_hz      lower passband edge in Hz
     * @param high_hz     upper passband edge in Hz
     * @param sample_rate sampling rate in Hz
     */
    ButterworthBandpass(int order, double low_hz, double high_hz,
                        double sample_rate);

    /** Filter one sample. */
    double step(double x);

    /** Filter a whole signal (stateful; call reset() between signals). */
    std::vector<double> apply(const std::vector<double> &input);

    /** Clear all section states. */
    void reset();

    /** Number of cascaded second-order sections. */
    std::size_t sectionCount() const { return sections.size(); }

  private:
    std::vector<Biquad> sections;
};

} // namespace scalo::signal
