#include "scalo/signal/fft_plan.hpp"

#include <algorithm>
#include <map>
#include <numbers>
#include <utility>

#include "scalo/util/aligned.hpp"
#include "scalo/util/logging.hpp"
#include "scalo/util/ranked_mutex.hpp"
#include "scalo/util/simd.hpp"

namespace scalo::signal {

namespace {

bool
isPowerOfTwo(std::size_t n)
{
    return n != 0 && (n & (n - 1)) == 0;
}

/**
 * Run W-wide butterflies over k in [k0, halflen) while a full pack
 * fits; returns the first unprocessed k. The per-butterfly arithmetic
 * is the textbook complex multiply regardless of W, so calling this
 * with narrowing widths (kW, then 4, then 2) to shrink the scalar
 * remainder changes nothing bit-wise — it only changes how many
 * butterflies retire per instruction.
 */
template <std::size_t W>
inline std::size_t
butterflySpan(double *lr, double *li, double *hr, double *hi,
              const double *wre, const double *wim, double sign,
              std::size_t k0, std::size_t halflen)
{
    using P = simd::pack<double, W>;
    const P signv = P::broadcast(sign);
    std::size_t k = k0;
    for (; k + W <= halflen; k += W) {
        const P wr = P::loadu(wre + k);
        const P wi = signv * P::loadu(wim + k);
        const P xr = P::loadu(hr + k);
        const P xi = P::loadu(hi + k);
        const P vr = xr * wr - xi * wi;
        const P vi = xr * wi + xi * wr;
        const P ur = P::loadu(lr + k);
        const P ui = P::loadu(li + k);
        (ur + vr).storeu(lr + k);
        (ui + vi).storeu(li + k);
        (ur - vr).storeu(hr + k);
        (ui - vi).storeu(hi + k);
    }
    return k;
}

/**
 * The process-wide plan cache. File-scope (not function-static) so
 * the guarded_by relation is visible to the thread-safety analysis.
 * Construction order is irrelevant: both are only touched from
 * FftPlan::forSize().
 */
util::RankedMutex<util::lockrank::kFftPlanCache> g_cacheMtx;
std::map<std::size_t, std::shared_ptr<const FftPlan>>
    g_cache SCALO_GUARDED_BY(g_cacheMtx);

} // namespace

FftPlan::FftPlan(std::size_t n) : nPoints(n)
{
    SCALO_ASSERT(isPowerOfTwo(n), "FFT size ", n, " not a power of two");

    // Bit-reversal permutation table.
    bitrev.resize(n);
    for (std::size_t i = 1, j = 0; i < n; ++i) {
        std::size_t bit = n >> 1;
        for (; j & bit; bit >>= 1)
            j ^= bit;
        j ^= bit;
        bitrev[i] = static_cast<std::uint32_t>(j);
    }

    // Twiddle table W_n^k = exp(-2*pi*i*k/n), k < n/2. Computed once
    // from std::polar rather than by repeated multiplication, so every
    // butterfly sees a full-precision twiddle.
    twiddle.resize(n / 2);
    for (std::size_t k = 0; k < n / 2; ++k) {
        const double angle = -2.0 * std::numbers::pi *
                             static_cast<double>(k) /
                             static_cast<double>(n);
        twiddle[k] = std::polar(1.0, angle);
    }

    // Densify each butterfly stage's twiddle column (stride n/len in
    // the master table) so the vectorized passes load unit-stride.
    // Copied bitwise from `twiddle`: same values, different layout.
    if (n >= 4) {
        std::size_t total = 0;
        for (std::size_t len = 4; len <= n; len <<= 1)
            total += len;
        stageTwiddles.reserve(total);
        for (std::size_t len = 4; len <= n; len <<= 1) {
            const std::size_t halflen = len / 2;
            const std::size_t step = n / len;
            for (std::size_t k = 0; k < halflen; ++k)
                stageTwiddles.push_back(twiddle[k * step].real());
            for (std::size_t k = 0; k < halflen; ++k)
                stageTwiddles.push_back(twiddle[k * step].imag());
        }
    }

    if (n >= 2)
        half = forSize(n / 2);
}

void
FftPlan::transform(std::complex<double> *data, bool inv) const
{
    const std::size_t n = nPoints;
    if (n <= 1)
        return;

    constexpr std::size_t kW = simd::kLanes;

    // The butterflies run over split re/im planes in a per-thread
    // aligned scratch: the interleaved complex layout costs the
    // vector passes a deinterleaving shuffle per load, the split
    // layout makes every load/store unit-stride. Plans are shared
    // across threads, so the scratch is thread-local rather than a
    // plan member.
    thread_local util::AlignedBuffer<double> split;
    constexpr std::size_t line_doubles =
        util::AlignedBuffer<double>::kAlignment / sizeof(double);
    const std::size_t stride =
        simd::paddedSize(n, std::max(kW, line_doubles));
    double *const re = split.ensure(2 * stride);
    double *const im = re + stride;

    // Butterflies multiply the hi element by the stage twiddle with
    // the textbook formula — the same arithmetic the interleaved
    // std::complex implementation's fast path ran, so finite-input
    // results are unchanged bit for bit. Inverse transforms conjugate
    // the twiddle by sign flip (exact).
    const double sign = inv ? -1.0 : 1.0;

    if (n == 2) {
        // Degenerate plan: one unit-twiddle butterfly, straight from
        // the input (bitrev is the identity for n = 2).
        const std::complex<double> z0 = data[0], z1 = data[1];
        const double scale = inv ? 0.5 : 1.0;
        data[0] = scale * (z0 + z1);
        data[1] = scale * (z0 - z1);
        return;
    }

    // Deinterleave, apply the bit-reversal permutation (bitrev is an
    // involution, so out[i] = in[bitrev[i]] equals the classic
    // conditional-swap pass), and run the first TWO stages, all in
    // one gather pass: the len = 2 stage is pure add/sub (unit
    // twiddle) and the len = 4 stage needs only the two leading
    // stage twiddles, so both resolve in registers before the block
    // is ever stored — the unfused version pays two extra full
    // read-modify-write passes over the planes for the same
    // arithmetic (fusion reorders nothing within a butterfly).
    const double w4r = stageTwiddles[1];
    const double w4i = sign * stageTwiddles[3];
    for (std::size_t i = 0; i < n; i += 4) {
        const std::complex<double> z0 = data[bitrev[i]];
        const std::complex<double> z1 = data[bitrev[i + 1]];
        const std::complex<double> z2 = data[bitrev[i + 2]];
        const std::complex<double> z3 = data[bitrev[i + 3]];
        // len = 2: unit-twiddle butterflies (z0, z1) and (z2, z3).
        const double a0r = z0.real() + z1.real();
        const double a0i = z0.imag() + z1.imag();
        const double a1r = z0.real() - z1.real();
        const double a1i = z0.imag() - z1.imag();
        const double a2r = z2.real() + z3.real();
        const double a2i = z2.imag() + z3.imag();
        const double a3r = z2.real() - z3.real();
        const double a3i = z2.imag() - z3.imag();
        // len = 4, k = 0: unit twiddle.
        re[i] = a0r + a2r;
        im[i] = a0i + a2i;
        re[i + 2] = a0r - a2r;
        im[i + 2] = a0i - a2i;
        // len = 4, k = 1: the textbook complex multiply.
        const double vr = a3r * w4r - a3i * w4i;
        const double vi = a3r * w4i + a3i * w4r;
        re[i + 1] = a1r + vr;
        im[i + 1] = a1i + vi;
        re[i + 3] = a1r - vr;
        im[i + 3] = a1i - vi;
    }

    std::size_t tw_off = 4; // past the fused len = 4 stage's column
    for (std::size_t len = 8; len <= n; len <<= 1) {
        const std::size_t halflen = len / 2;
        const double *const wre = stageTwiddles.data() + tw_off;
        const double *const wim = wre + halflen;
        tw_off += 2 * halflen;
        for (std::size_t i = 0; i < n; i += len) {
            double *const lr = re + i;
            double *const li = im + i;
            double *const hr = lr + halflen;
            double *const hi = li + halflen;
            // k = 0 is another unit twiddle.
            {
                const double ur = lr[0], ui = li[0];
                const double vr = hr[0], vi = hi[0];
                lr[0] = ur + vr;
                li[0] = ui + vi;
                hr[0] = ur - vr;
                hi[0] = ui - vi;
            }
            // k = 1 starts one lane past the pack grid, so the range
            // [1, halflen) always ends on a ragged edge. Finish it
            // with narrowing packs instead of scalar butterflies:
            // halflen = 8 goes 4-wide + 2-wide + one scalar rather
            // than seven scalars (identical arithmetic per k).
            std::size_t k = butterflySpan<kW>(lr, li, hr, hi, wre, wim,
                                              sign, 1, halflen);
            if constexpr (kW > 4)
                k = butterflySpan<4>(lr, li, hr, hi, wre, wim, sign, k,
                                     halflen);
            if constexpr (kW > 2)
                k = butterflySpan<2>(lr, li, hr, hi, wre, wim, sign, k,
                                     halflen);
            for (; k < halflen; ++k) {
                const double wr = wre[k];
                const double wi = sign * wim[k];
                const double xr = hr[k];
                const double xi = hi[k];
                const double vr = xr * wr - xi * wi;
                const double vi = xr * wi + xi * wr;
                const double ur = lr[k], ui = li[k];
                lr[k] = ur + vr;
                li[k] = ui + vi;
                hr[k] = ur - vr;
                hi[k] = ui - vi;
            }
        }
    }

    if (inv) {
        const double scale = 1.0 / static_cast<double>(n);
        for (std::size_t i = 0; i < n; ++i) {
            re[i] *= scale;
            im[i] *= scale;
        }
    }

    // Re-interleave through the double view std::complex guarantees
    // ([complex.numbers.general]): the stride-2 store group is a
    // shape the auto-vectorizer handles, whereas the std::complex
    // brace-assignment form was emitted element by element.
    double *const out = reinterpret_cast<double *>(data);
    for (std::size_t i = 0; i < n; ++i) {
        out[2 * i] = re[i];
        out[2 * i + 1] = im[i];
    }
}

void
FftPlan::forward(std::complex<double> *data) const
{
    transform(data, false);
}

void
FftPlan::inverse(std::complex<double> *data) const
{
    transform(data, true);
}

void
FftPlan::forward(std::vector<std::complex<double>> &data) const
{
    SCALO_ASSERT(data.size() == nPoints, "FFT input size ", data.size(),
                 " != planned ", nPoints);
    forward(data.data());
}

void
FftPlan::inverse(std::vector<std::complex<double>> &data) const
{
    SCALO_ASSERT(data.size() == nPoints, "FFT input size ", data.size(),
                 " != planned ", nPoints);
    inverse(data.data());
}

void
FftPlan::rfft(const double *in, std::complex<double> *spectrum,
              std::vector<std::complex<double>> &scratch) const
{
    const std::size_t n = nPoints;
    if (n == 1) {
        spectrum[0] = in[0];
        return;
    }

    // Pack even samples into the real lane and odd samples into the
    // imaginary lane, run one half-size complex FFT, then unscramble:
    // X[k] = Fe[k] + W_n^k * Fo[k], where Fe/Fo are the spectra of the
    // even/odd subsequences recovered from the packed transform.
    const std::size_t h = n / 2;
    scratch.resize(h);
    for (std::size_t k = 0; k < h; ++k)
        scratch[k] = {in[2 * k], in[2 * k + 1]};
    half->forward(scratch.data());

    // DC and Nyquist come straight from the k = 0 term.
    spectrum[0] = {scratch[0].real() + scratch[0].imag(), 0.0};
    spectrum[h] = {scratch[0].real() - scratch[0].imag(), 0.0};

    for (std::size_t k = 1; k < h; ++k) {
        const std::complex<double> zk = scratch[k];
        const std::complex<double> zc = std::conj(scratch[h - k]);
        const std::complex<double> fe = 0.5 * (zk + zc);
        // (zk - zc) / (2i) == -0.5i * (zk - zc)
        const std::complex<double> fo =
            std::complex<double>(0.0, -0.5) * (zk - zc);
        spectrum[k] = fe + twiddle[k] * fo;
    }
}

std::shared_ptr<const FftPlan>
FftPlan::forSize(std::size_t n)
{
    SCALO_ASSERT(isPowerOfTwo(n), "FFT size ", n, " not a power of two");
    {
        util::MutexLock lock(g_cacheMtx);
        auto it = g_cache.find(n);
        if (it != g_cache.end())
            return it->second;
    }
    // Construct outside the lock: the constructor recurses into
    // forSize(n/2) for its rfft half-plan (which would self-deadlock
    // under the lock — the rank checker would flag the reentry). A
    // racing duplicate construction is benign; first insert wins.
    auto plan = std::make_shared<const FftPlan>(n);
    util::MutexLock lock(g_cacheMtx);
    auto [it, inserted] = g_cache.emplace(n, std::move(plan));
    return it->second;
}

} // namespace scalo::signal
