#include "scalo/signal/fft_plan.hpp"

#include <map>
#include <numbers>
#include <utility>

#include "scalo/util/logging.hpp"
#include "scalo/util/ranked_mutex.hpp"

namespace scalo::signal {

namespace {

bool
isPowerOfTwo(std::size_t n)
{
    return n != 0 && (n & (n - 1)) == 0;
}

/**
 * The process-wide plan cache. File-scope (not function-static) so
 * the guarded_by relation is visible to the thread-safety analysis.
 * Construction order is irrelevant: both are only touched from
 * FftPlan::forSize().
 */
util::RankedMutex<util::lockrank::kFftPlanCache> g_cacheMtx;
std::map<std::size_t, std::shared_ptr<const FftPlan>>
    g_cache SCALO_GUARDED_BY(g_cacheMtx);

} // namespace

FftPlan::FftPlan(std::size_t n) : nPoints(n)
{
    SCALO_ASSERT(isPowerOfTwo(n), "FFT size ", n, " not a power of two");

    // Bit-reversal permutation table.
    bitrev.resize(n);
    for (std::size_t i = 1, j = 0; i < n; ++i) {
        std::size_t bit = n >> 1;
        for (; j & bit; bit >>= 1)
            j ^= bit;
        j ^= bit;
        bitrev[i] = static_cast<std::uint32_t>(j);
    }

    // Twiddle table W_n^k = exp(-2*pi*i*k/n), k < n/2. Computed once
    // from std::polar rather than by repeated multiplication, so every
    // butterfly sees a full-precision twiddle.
    twiddle.resize(n / 2);
    for (std::size_t k = 0; k < n / 2; ++k) {
        const double angle = -2.0 * std::numbers::pi *
                             static_cast<double>(k) /
                             static_cast<double>(n);
        twiddle[k] = std::polar(1.0, angle);
    }

    if (n >= 2)
        half = forSize(n / 2);
}

void
FftPlan::transform(std::complex<double> *data, bool inv) const
{
    const std::size_t n = nPoints;
    if (n <= 1)
        return;

    for (std::size_t i = 1; i < n; ++i) {
        const std::size_t j = bitrev[i];
        if (i < j)
            std::swap(data[i], data[j]);
    }

    // First stage (len = 2) has a unit twiddle: pure add/sub, no
    // complex multiply.
    for (std::size_t i = 0; i < n; i += 2) {
        const std::complex<double> u = data[i];
        const std::complex<double> v = data[i + 1];
        data[i] = u + v;
        data[i + 1] = u - v;
    }

    for (std::size_t len = 4; len <= n; len <<= 1) {
        const std::size_t halflen = len / 2;
        const std::size_t step = n / len;
        for (std::size_t i = 0; i < n; i += len) {
            std::complex<double> *lo = data + i;
            std::complex<double> *hi = lo + halflen;
            // k = 0 is another unit twiddle.
            const std::complex<double> u0 = lo[0];
            const std::complex<double> v0 = hi[0];
            lo[0] = u0 + v0;
            hi[0] = u0 - v0;
            for (std::size_t k = 1; k < halflen; ++k) {
                const std::complex<double> w =
                    inv ? std::conj(twiddle[k * step])
                        : twiddle[k * step];
                const std::complex<double> u = lo[k];
                const std::complex<double> v = hi[k] * w;
                lo[k] = u + v;
                hi[k] = u - v;
            }
        }
    }

    if (inv) {
        const double scale = 1.0 / static_cast<double>(n);
        for (std::size_t i = 0; i < n; ++i)
            data[i] *= scale;
    }
}

void
FftPlan::forward(std::complex<double> *data) const
{
    transform(data, false);
}

void
FftPlan::inverse(std::complex<double> *data) const
{
    transform(data, true);
}

void
FftPlan::forward(std::vector<std::complex<double>> &data) const
{
    SCALO_ASSERT(data.size() == nPoints, "FFT input size ", data.size(),
                 " != planned ", nPoints);
    forward(data.data());
}

void
FftPlan::inverse(std::vector<std::complex<double>> &data) const
{
    SCALO_ASSERT(data.size() == nPoints, "FFT input size ", data.size(),
                 " != planned ", nPoints);
    inverse(data.data());
}

void
FftPlan::rfft(const double *in, std::complex<double> *spectrum,
              std::vector<std::complex<double>> &scratch) const
{
    const std::size_t n = nPoints;
    if (n == 1) {
        spectrum[0] = in[0];
        return;
    }

    // Pack even samples into the real lane and odd samples into the
    // imaginary lane, run one half-size complex FFT, then unscramble:
    // X[k] = Fe[k] + W_n^k * Fo[k], where Fe/Fo are the spectra of the
    // even/odd subsequences recovered from the packed transform.
    const std::size_t h = n / 2;
    scratch.resize(h);
    for (std::size_t k = 0; k < h; ++k)
        scratch[k] = {in[2 * k], in[2 * k + 1]};
    half->forward(scratch.data());

    // DC and Nyquist come straight from the k = 0 term.
    spectrum[0] = {scratch[0].real() + scratch[0].imag(), 0.0};
    spectrum[h] = {scratch[0].real() - scratch[0].imag(), 0.0};

    for (std::size_t k = 1; k < h; ++k) {
        const std::complex<double> zk = scratch[k];
        const std::complex<double> zc = std::conj(scratch[h - k]);
        const std::complex<double> fe = 0.5 * (zk + zc);
        // (zk - zc) / (2i) == -0.5i * (zk - zc)
        const std::complex<double> fo =
            std::complex<double>(0.0, -0.5) * (zk - zc);
        spectrum[k] = fe + twiddle[k] * fo;
    }
}

std::shared_ptr<const FftPlan>
FftPlan::forSize(std::size_t n)
{
    SCALO_ASSERT(isPowerOfTwo(n), "FFT size ", n, " not a power of two");
    {
        util::MutexLock lock(g_cacheMtx);
        auto it = g_cache.find(n);
        if (it != g_cache.end())
            return it->second;
    }
    // Construct outside the lock: the constructor recurses into
    // forSize(n/2) for its rfft half-plan (which would self-deadlock
    // under the lock — the rank checker would flag the reentry). A
    // racing duplicate construction is benign; first insert wins.
    auto plan = std::make_shared<const FftPlan>(n);
    util::MutexLock lock(g_cacheMtx);
    auto [it, inserted] = g_cache.emplace(n, std::move(plan));
    return it->second;
}

} // namespace scalo::signal
