/**
 * @file
 * Structure-of-arrays candidate batch for the wide distance kernels.
 *
 * The verification hot path compares one probe window against many
 * candidate windows. Chasing `std::vector<double>` pointers gives the
 * kernel one unaligned, independently-allocated row per candidate;
 * WindowBatch instead lays the candidates out back to back at a fixed
 * stride in one 64-byte-aligned allocation, so the batched kernels
 * stream them with aligned full-width loads and hardware prefetch
 * sees one linear address pattern.
 */

#pragma once

#include <cstddef>
#include <vector>

#include "scalo/util/aligned.hpp"

namespace scalo::signal {

/**
 * Contiguous SoA batch of equal-length windows.
 *
 * Layout contract (what the wide kernels rely on):
 *  - Row i starts at data() + i * stride(); stride() is windowSize()
 *    rounded up to both the pack width and one 64-byte cache line, so
 *    every row is util::AlignedBuffer::kAlignment-aligned.
 *  - Samples beyond windowSize() up to stride() are +0.0. Padding
 *    lanes therefore contribute exactly zero to any sum-of-squares or
 *    dot accumulation, and full-width loads never read indeterminate
 *    memory.
 *
 * Usage contract: reserve() shapes the batch (clearing it), append()
 * copies windows in up to the reserved row count. Storage is
 * grow-only and growth does not preserve contents — hence the
 * up-front reserve — so reusing one batch across gather sweeps is
 * allocation-free once it has seen its largest extent.
 */
class WindowBatch
{
  public:
    /** Row stride, in doubles, used for windows of @p window_size. */
    static std::size_t strideFor(std::size_t window_size);

    /**
     * Clear and re-shape: room for @p rows windows of
     * @p window_size samples each. Previous contents are discarded.
     */
    void reserve(std::size_t rows, std::size_t window_size);

    /**
     * Copy @p n samples in as the next row and zero its padding.
     * @pre size() < reservedRows() and @p n == windowSize()
     */
    void append(const double *samples, std::size_t n);

    void append(const std::vector<double> &samples);

    /** Rows appended so far. */
    std::size_t size() const { return count; }

    bool empty() const { return count == 0; }

    /** Samples per window (excluding padding). */
    std::size_t windowSize() const { return window; }

    /** Doubles between consecutive row starts. */
    std::size_t stride() const { return row_stride; }

    /** Rows the current reserve() call allowed for. */
    std::size_t reservedRows() const { return reserved; }

    /** @pre i < size(). Aligned; valid for stride() doubles. */
    const double *row(std::size_t i) const;

    const double *data() const { return storage.data(); }

    /** Bytes currently allocated (churn introspection for tests). */
    std::size_t
    capacityBytes() const
    {
        return storage.capacity() * sizeof(double);
    }

  private:
    util::AlignedBuffer<double> storage;
    std::size_t count = 0;
    std::size_t reserved = 0;
    std::size_t window = 0;
    std::size_t row_stride = 0;
};

} // namespace scalo::signal
