/**
 * @file
 * Planned radix-2 FFT: the optimized kernel behind every spectral path
 * in SCALO (band-power features, Butterworth design checks, SSH/EMD
 * hashing experiments, and the FFT PE microbenchmarks).
 *
 * A plan precomputes, once per size, everything the naive transform
 * recomputed per call:
 *  - the bit-reversal permutation table, and
 *  - the full twiddle table W_n^k = exp(-2*pi*i*k/n) for k < n/2
 *    (the naive kernel derived twiddles incrementally per butterfly,
 *    which is both slower and less accurate).
 *
 * Plans are immutable after construction, so one plan may be shared by
 * any number of threads. `FftPlan::forSize(n)` returns a cached plan
 * from a mutex-protected per-process cache; hot loops should hold the
 * returned shared_ptr instead of re-looking it up per window.
 *
 * Scratch convention: methods that need temporary storage take a
 * caller-provided buffer (resized on first use, reused afterwards) so
 * steady-state operation performs no allocation. See DESIGN.md,
 * "The kernel layer".
 */

#pragma once

#include <complex>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace scalo::signal {

/** Immutable, shareable execution plan for one FFT size. */
class FftPlan
{
  public:
    /** Build a plan for @p n points. @pre n is a power of two. */
    explicit FftPlan(std::size_t n);

    /** Planned size in points. */
    std::size_t size() const { return nPoints; }

    /** In-place forward DFT of @p data (length size()). */
    void forward(std::complex<double> *data) const;

    /** In-place inverse DFT of @p data (length size()), 1/n scaled. */
    void inverse(std::complex<double> *data) const;

    /** Convenience overloads checking the vector length. */
    void forward(std::vector<std::complex<double>> &data) const;
    void inverse(std::vector<std::complex<double>> &data) const;

    /**
     * Real-input FFT: the first size()/2 + 1 spectrum bins
     * (DC .. Nyquist) of the real signal @p in (length size()).
     *
     * Runs one complex FFT of half the planned size plus an O(n)
     * recombination, roughly halving the complex-FFT work of the
     * naive real-via-complex route.
     *
     * @param in       real input, size() samples
     * @param spectrum output, size()/2 + 1 bins
     * @param scratch  caller-provided workspace, resized as needed and
     *                 reusable across calls (no steady-state allocation)
     */
    void rfft(const double *in, std::complex<double> *spectrum,
              std::vector<std::complex<double>> &scratch) const;

    /**
     * Shared plan for @p n points from the process-wide cache
     * (thread-safe). @pre n is a power of two.
     */
    static std::shared_ptr<const FftPlan> forSize(std::size_t n);

  private:
    void transform(std::complex<double> *data, bool inv) const;

    std::size_t nPoints;
    /** Precomputed index permutation: data[i] <-> data[bitrev[i]]. */
    std::vector<std::uint32_t> bitrev;
    /** W_n^k for k in [0, n/2): forward twiddles; inverse conjugates. */
    std::vector<std::complex<double>> twiddle;
    /**
     * Per-stage split twiddles for the vectorized butterflies. Stage
     * len reads twiddle[k * (n/len)] — a strided gather — so each
     * stage's column is copied bitwise into a dense re-plane +
     * im-plane at construction. Layout, for len = 4, 8, ..., n in
     * order: len/2 re values then len/2 im values.
     */
    std::vector<double> stageTwiddles;
    /** Plan of half the size driving rfft (null when size() < 2). */
    std::shared_ptr<const FftPlan> half;
};

} // namespace scalo::signal
