#include "scalo/signal/window.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace scalo::signal {

std::vector<double>
toReal(const Window &window)
{
    return {window.begin(), window.end()};
}

Window
toSamples(const std::vector<double> &values)
{
    Window out;
    out.reserve(values.size());
    constexpr double lo = std::numeric_limits<Sample>::min();
    constexpr double hi = std::numeric_limits<Sample>::max();
    for (double v : values) {
        const double clamped = std::clamp(std::round(v), lo, hi);
        out.push_back(static_cast<Sample>(clamped));
    }
    return out;
}

std::vector<Window>
slice(const std::vector<Sample> &trace, std::size_t window_samples,
      std::size_t stride_samples)
{
    std::vector<Window> windows;
    if (window_samples == 0 || stride_samples == 0 ||
        trace.size() < window_samples) {
        return windows;
    }
    for (std::size_t start = 0; start + window_samples <= trace.size();
         start += stride_samples) {
        windows.emplace_back(trace.begin() + start,
                             trace.begin() + start + window_samples);
    }
    return windows;
}

void
removeMean(std::vector<double> &values)
{
    if (values.empty())
        return;
    double total = 0.0;
    for (double v : values)
        total += v;
    const double m = total / static_cast<double>(values.size());
    for (double &v : values)
        v -= m;
}

double
rms(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double acc = 0.0;
    for (double v : values)
        acc += v * v;
    return std::sqrt(acc / static_cast<double>(values.size()));
}

} // namespace scalo::signal
