#include "scalo/signal/features.hpp"

#include <algorithm>
#include <cmath>

#include "scalo/util/logging.hpp"

namespace scalo::signal {

double
spikeBandPower(const std::vector<double> &window)
{
    if (window.empty())
        return 0.0;
    double acc = 0.0;
    for (double v : window)
        acc += std::abs(v);
    return acc / static_cast<double>(window.size());
}

double
windowMean(const std::vector<double> &window)
{
    if (window.empty())
        return 0.0;
    double acc = 0.0;
    for (double v : window)
        acc += v;
    return acc / static_cast<double>(window.size());
}

std::vector<double>
neo(const std::vector<double> &input)
{
    std::vector<double> out(input.size(), 0.0);
    for (std::size_t i = 1; i + 1 < input.size(); ++i)
        out[i] = input[i] * input[i] - input[i - 1] * input[i + 1];
    return out;
}

std::vector<std::size_t>
thresholdDetect(const std::vector<double> &input, double threshold,
                std::size_t refractory)
{
    std::vector<std::size_t> detections;
    std::size_t last = 0;
    bool armed = true;
    for (std::size_t i = 0; i < input.size(); ++i) {
        if (!armed && i - last >= refractory)
            armed = true;
        if (armed && std::abs(input[i]) >= threshold) {
            detections.push_back(i);
            last = i;
            armed = false;
        }
    }
    return detections;
}

double
adaptiveThreshold(const std::vector<double> &input, double k)
{
    if (input.empty())
        return 0.0;
    std::vector<double> mags;
    mags.reserve(input.size());
    for (double v : input)
        mags.push_back(std::abs(v));
    const std::size_t mid = mags.size() / 2;
    std::nth_element(mags.begin(), mags.begin() + static_cast<long>(mid),
                     mags.end());
    const double median = mags[mid];
    return k * median / 0.6745;
}

DwtLevel
haarDwt(const std::vector<double> &input)
{
    DwtLevel level;
    const std::size_t pairs = input.size() / 2;
    level.approx.reserve(pairs);
    level.detail.reserve(pairs);
    const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
    for (std::size_t i = 0; i < pairs; ++i) {
        const double a = input[2 * i];
        const double b = input[2 * i + 1];
        level.approx.push_back((a + b) * inv_sqrt2);
        level.detail.push_back((a - b) * inv_sqrt2);
    }
    return level;
}

DwtPyramid
haarDwtLevels(const std::vector<double> &input, int levels)
{
    SCALO_ASSERT(levels >= 1, "levels must be >= 1, got ", levels);
    DwtPyramid pyramid;
    std::vector<double> current = input;
    for (int l = 0; l < levels && current.size() >= 2; ++l) {
        DwtLevel level = haarDwt(current);
        pyramid.details.push_back(std::move(level.detail));
        current = std::move(level.approx);
    }
    pyramid.approx = std::move(current);
    return pyramid;
}

} // namespace scalo::signal
