/**
 * @file
 * Naive reference implementations of the signal kernels, retained for
 * parity/property testing of the optimised kernel layer (FftPlan,
 * the scratch-based banded DTW, and the batched Euclidean sweep).
 * These are deliberately the textbook formulations — O(n^2) DFT,
 * full-row DP fills — so a kernel bug cannot hide in shared code.
 * Test-only: nothing on a hot path may call into this header.
 */

#pragma once

#include <complex>
#include <cstddef>
#include <vector>

namespace scalo::signal::reference {

/** O(n^2) forward DFT: X[k] = sum_j x[j] e^{-2 pi i j k / n}. */
std::vector<std::complex<double>>
naiveDft(const std::vector<std::complex<double>> &input);

/** O(n^2) inverse DFT (with the 1/n normalisation). */
std::vector<std::complex<double>>
naiveInverseDft(const std::vector<std::complex<double>> &input);

/**
 * Banded DTW exactly as shipped before the kernel layer: rolling
 * two-row DP with a full O(m) infinity fill per row and no early
 * abandoning.
 */
double naiveDtw(const std::vector<double> &a,
                const std::vector<double> &b, std::size_t band);

/** Per-pair Euclidean distance with an immediate sqrt. */
double naiveEuclidean(const std::vector<double> &a,
                      const std::vector<double> &b);

} // namespace scalo::signal::reference
