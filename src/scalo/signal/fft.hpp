/**
 * @file
 * Radix-2 fast Fourier transform (the FFT PE) plus band-power feature
 * extraction used by the seizure-detection front end.
 *
 * The transforms execute through the planned kernel layer
 * (`FftPlan`, fft_plan.hpp): cached twiddle/bit-reversal tables, a
 * real-input `rfft` that halves the complex work, and caller-provided
 * scratch so steady-state spectral features allocate nothing. The
 * single-shot `fft`/`ifft` entry points remain as thin forwarders for
 * out-of-tree callers.
 */

#pragma once

#include <complex>
#include <cstddef>
#include <vector>

#include "scalo/signal/fft_plan.hpp"

namespace scalo::signal {

/** A contiguous frequency band in Hz. */
struct Band
{
    double lowHz;
    double highHz;
};

/**
 * Reusable workspace for the spectral feature kernels. Buffers grow to
 * the largest size seen and are reused; the plan pointer caches the
 * last FFT size so repeated same-length windows skip the plan-cache
 * lookup entirely.
 */
struct SpectrumScratch
{
    std::vector<double> padded;
    std::vector<std::complex<double>> spectrum;
    std::vector<std::complex<double>> work;
    std::shared_ptr<const FftPlan> plan;
};

/**
 * Magnitude spectrum of a real signal, zero-padded to the next power of
 * two. @return n/2+1 magnitudes (DC .. Nyquist).
 */
std::vector<double> magnitudeSpectrum(const std::vector<double> &input);

/**
 * Allocation-free magnitude spectrum: writes the n/2+1 magnitudes into
 * @p out using @p scratch for all temporaries.
 */
void magnitudeSpectrum(const std::vector<double> &input,
                       SpectrumScratch &scratch,
                       std::vector<double> &out);

/**
 * Mean spectral power of @p input in each requested band.
 *
 * @param input       real signal
 * @param sample_rate sampling rate in Hz
 * @param bands       inclusive frequency bands
 * @return one mean-power value per band
 */
std::vector<double> bandPower(const std::vector<double> &input,
                              double sample_rate,
                              const std::vector<Band> &bands);

/**
 * Allocation-free band power: writes one mean-power value per band
 * into @p out using @p scratch for all temporaries.
 */
void bandPower(const std::vector<double> &input, double sample_rate,
               const std::vector<Band> &bands, SpectrumScratch &scratch,
               std::vector<double> &out);

/** Smallest power of two >= n (n == 0 maps to 1). */
std::size_t nextPowerOfTwo(std::size_t n);

} // namespace scalo::signal
