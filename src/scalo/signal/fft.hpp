/**
 * @file
 * Radix-2 fast Fourier transform (the FFT PE) plus band-power feature
 * extraction used by the seizure-detection front end.
 */

#pragma once

#include <complex>
#include <cstddef>
#include <vector>

namespace scalo::signal {

/** In-place iterative radix-2 FFT. @pre data.size() is a power of two. */
void fft(std::vector<std::complex<double>> &data);

/** In-place inverse FFT. @pre data.size() is a power of two. */
void ifft(std::vector<std::complex<double>> &data);

/**
 * Magnitude spectrum of a real signal, zero-padded to the next power of
 * two. @return n/2+1 magnitudes (DC .. Nyquist).
 */
std::vector<double> magnitudeSpectrum(const std::vector<double> &input);

/** A contiguous frequency band in Hz. */
struct Band
{
    double lowHz;
    double highHz;
};

/**
 * Mean spectral power of @p input in each requested band.
 *
 * @param input       real signal
 * @param sample_rate sampling rate in Hz
 * @param bands       inclusive frequency bands
 * @return one mean-power value per band
 */
std::vector<double> bandPower(const std::vector<double> &input,
                              double sample_rate,
                              const std::vector<Band> &bands);

/** Smallest power of two >= n (n == 0 maps to 1). */
std::size_t nextPowerOfTwo(std::size_t n);

} // namespace scalo::signal
