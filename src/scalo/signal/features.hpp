/**
 * @file
 * Feature-extraction kernels that have dedicated PEs in SCALO:
 * spike-band power (SBP), the non-linear energy operator (NEO),
 * threshold-based spike detection (THR), and the Haar discrete wavelet
 * transform (DWT).
 */

#pragma once

#include <cstddef>
#include <vector>

namespace scalo::signal {

/**
 * Spike-band power: mean absolute value of the samples in a window
 * (pipelines B and C of movement-intent decoding take the mean of all
 * neural signal values in a 50 ms window).
 */
double spikeBandPower(const std::vector<double> &window);

/** Plain mean of a window (the SBP PE configured without rectification). */
double windowMean(const std::vector<double> &window);

/**
 * Non-linear energy operator: psi[n] = x[n]^2 - x[n-1] * x[n+1].
 * The first and last outputs are zero.
 */
std::vector<double> neo(const std::vector<double> &input);

/**
 * Threshold crossing detector with a refractory period.
 *
 * @param input       signal (typically NEO output or filtered trace)
 * @param threshold   detection threshold (absolute value compared)
 * @param refractory  minimum samples between detections
 * @return sample indices of detections
 */
std::vector<std::size_t> thresholdDetect(const std::vector<double> &input,
                                         double threshold,
                                         std::size_t refractory);

/**
 * Adaptive threshold per Quiroga et al.: k * median(|x|) / 0.6745
 * (a robust noise-floor estimate).
 */
double adaptiveThreshold(const std::vector<double> &input, double k);

/**
 * One level of the Haar discrete wavelet transform.
 * @return {approximation coefficients, detail coefficients}; input of odd
 *         length drops the final sample.
 */
struct DwtLevel
{
    std::vector<double> approx;
    std::vector<double> detail;
};

DwtLevel haarDwt(const std::vector<double> &input);

/** Multi-level Haar DWT: returns detail bands coarsest-last plus approx. */
struct DwtPyramid
{
    std::vector<std::vector<double>> details;
    std::vector<double> approx;
};

DwtPyramid haarDwtLevels(const std::vector<double> &input, int levels);

} // namespace scalo::signal
