#include "scalo/signal/fft.hpp"

#include <algorithm>
#include <cmath>

#include "scalo/util/logging.hpp"

namespace scalo::signal {

namespace {

/**
 * Run the real-input transform of @p input zero-padded to the next
 * power of two; on return scratch.spectrum holds the n/2+1 bins.
 * @return the padded size n
 */
std::size_t
paddedRfft(const std::vector<double> &input, SpectrumScratch &scratch)
{
    const std::size_t n = nextPowerOfTwo(input.size());
    if (!scratch.plan || scratch.plan->size() != n)
        scratch.plan = FftPlan::forSize(n);

    scratch.padded.resize(n);
    std::copy(input.begin(), input.end(), scratch.padded.begin());
    std::fill(scratch.padded.begin() +
                  static_cast<std::ptrdiff_t>(input.size()),
              scratch.padded.end(), 0.0);

    scratch.spectrum.resize(n / 2 + 1);
    scratch.plan->rfft(scratch.padded.data(), scratch.spectrum.data(),
                       scratch.work);
    return n;
}

} // namespace

std::size_t
nextPowerOfTwo(std::size_t n)
{
    std::size_t p = 1;
    while (p < n)
        p <<= 1;
    return p;
}

void
magnitudeSpectrum(const std::vector<double> &input,
                  SpectrumScratch &scratch, std::vector<double> &out)
{
    paddedRfft(input, scratch);
    out.resize(scratch.spectrum.size());
    for (std::size_t i = 0; i < out.size(); ++i)
        out[i] = std::abs(scratch.spectrum[i]);
}

std::vector<double>
magnitudeSpectrum(const std::vector<double> &input)
{
    SpectrumScratch scratch;
    std::vector<double> mags;
    magnitudeSpectrum(input, scratch, mags);
    return mags;
}

void
bandPower(const std::vector<double> &input, double sample_rate,
          const std::vector<Band> &bands, SpectrumScratch &scratch,
          std::vector<double> &out)
{
    SCALO_ASSERT(sample_rate > 0.0, "bad sample rate ", sample_rate);
    const std::size_t n = paddedRfft(input, scratch);

    const double bin_hz = sample_rate / static_cast<double>(n);
    out.clear();
    out.reserve(bands.size());
    for (const Band &band : bands) {
        const auto lo = static_cast<std::size_t>(
            std::max(0.0, std::ceil(band.lowHz / bin_hz)));
        const auto hi = static_cast<std::size_t>(
            std::min(static_cast<double>(n / 2),
                     std::floor(band.highHz / bin_hz)));
        double acc = 0.0;
        std::size_t count = 0;
        for (std::size_t b = lo; b <= hi && b <= n / 2; ++b) {
            acc += std::norm(scratch.spectrum[b]);
            ++count;
        }
        out.push_back(count ? acc / static_cast<double>(count) : 0.0);
    }
}

std::vector<double>
bandPower(const std::vector<double> &input, double sample_rate,
          const std::vector<Band> &bands)
{
    SpectrumScratch scratch;
    std::vector<double> powers;
    bandPower(input, sample_rate, bands, scratch, powers);
    return powers;
}

} // namespace scalo::signal
