#include "scalo/signal/fft.hpp"

#include <cmath>

#include "scalo/util/logging.hpp"

namespace scalo::signal {

namespace {

bool
isPowerOfTwo(std::size_t n)
{
    return n != 0 && (n & (n - 1)) == 0;
}

/** Shared radix-2 butterfly core; @p inverse selects the IFFT twiddles. */
void
transform(std::vector<std::complex<double>> &data, bool inverse)
{
    const std::size_t n = data.size();
    SCALO_ASSERT(isPowerOfTwo(n), "FFT size ", n, " not a power of two");
    if (n <= 1)
        return;

    // Bit-reversal permutation.
    for (std::size_t i = 1, j = 0; i < n; ++i) {
        std::size_t bit = n >> 1;
        for (; j & bit; bit >>= 1)
            j ^= bit;
        j ^= bit;
        if (i < j)
            std::swap(data[i], data[j]);
    }

    for (std::size_t len = 2; len <= n; len <<= 1) {
        const double angle =
            (inverse ? 2.0 : -2.0) * M_PI / static_cast<double>(len);
        const std::complex<double> wlen(std::cos(angle), std::sin(angle));
        for (std::size_t i = 0; i < n; i += len) {
            std::complex<double> w(1.0, 0.0);
            for (std::size_t k = 0; k < len / 2; ++k) {
                const auto u = data[i + k];
                const auto v = data[i + k + len / 2] * w;
                data[i + k] = u + v;
                data[i + k + len / 2] = u - v;
                w *= wlen;
            }
        }
    }

    if (inverse) {
        for (auto &x : data)
            x /= static_cast<double>(n);
    }
}

} // namespace

void
fft(std::vector<std::complex<double>> &data)
{
    transform(data, false);
}

void
ifft(std::vector<std::complex<double>> &data)
{
    transform(data, true);
}

std::size_t
nextPowerOfTwo(std::size_t n)
{
    std::size_t p = 1;
    while (p < n)
        p <<= 1;
    return p;
}

std::vector<double>
magnitudeSpectrum(const std::vector<double> &input)
{
    const std::size_t n = nextPowerOfTwo(input.size());
    std::vector<std::complex<double>> buf(n);
    for (std::size_t i = 0; i < input.size(); ++i)
        buf[i] = input[i];
    fft(buf);
    std::vector<double> mags(n / 2 + 1);
    for (std::size_t i = 0; i < mags.size(); ++i)
        mags[i] = std::abs(buf[i]);
    return mags;
}

std::vector<double>
bandPower(const std::vector<double> &input, double sample_rate,
          const std::vector<Band> &bands)
{
    SCALO_ASSERT(sample_rate > 0.0, "bad sample rate ", sample_rate);
    const std::size_t n = nextPowerOfTwo(input.size());
    std::vector<std::complex<double>> buf(n);
    for (std::size_t i = 0; i < input.size(); ++i)
        buf[i] = input[i];
    fft(buf);

    const double bin_hz = sample_rate / static_cast<double>(n);
    std::vector<double> powers;
    powers.reserve(bands.size());
    for (const Band &band : bands) {
        const auto lo = static_cast<std::size_t>(
            std::max(0.0, std::ceil(band.lowHz / bin_hz)));
        const auto hi = static_cast<std::size_t>(
            std::min(static_cast<double>(n / 2),
                     std::floor(band.highHz / bin_hz)));
        double acc = 0.0;
        std::size_t count = 0;
        for (std::size_t b = lo; b <= hi && b <= n / 2; ++b) {
            acc += std::norm(buf[b]);
            ++count;
        }
        powers.push_back(count ? acc / static_cast<double>(count) : 0.0);
    }
    return powers;
}

} // namespace scalo::signal
