#include "scalo/signal/reference.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>

#include "scalo/util/logging.hpp"

namespace scalo::signal::reference {

std::vector<std::complex<double>>
naiveDft(const std::vector<std::complex<double>> &input)
{
    const std::size_t n = input.size();
    std::vector<std::complex<double>> out(n);
    for (std::size_t k = 0; k < n; ++k) {
        std::complex<double> acc{0.0, 0.0};
        for (std::size_t j = 0; j < n; ++j) {
            const double angle = -2.0 * std::numbers::pi *
                                 static_cast<double>(j * k) /
                                 static_cast<double>(n);
            acc += input[j] * std::polar(1.0, angle);
        }
        out[k] = acc;
    }
    return out;
}

std::vector<std::complex<double>>
naiveInverseDft(const std::vector<std::complex<double>> &input)
{
    const std::size_t n = input.size();
    std::vector<std::complex<double>> out(n);
    for (std::size_t k = 0; k < n; ++k) {
        std::complex<double> acc{0.0, 0.0};
        for (std::size_t j = 0; j < n; ++j) {
            const double angle = 2.0 * std::numbers::pi *
                                 static_cast<double>(j * k) /
                                 static_cast<double>(n);
            acc += input[j] * std::polar(1.0, angle);
        }
        out[k] = acc / static_cast<double>(n);
    }
    return out;
}

double
naiveDtw(const std::vector<double> &a, const std::vector<double> &b,
         std::size_t band)
{
    const std::size_t n = a.size();
    const std::size_t m = b.size();
    if (n == 0 || m == 0)
        return (n == m) ? 0.0 : std::numeric_limits<double>::infinity();

    const std::size_t min_band = (n > m) ? (n - m) : (m - n);
    band = std::max(band, min_band + 1);

    constexpr double inf = std::numeric_limits<double>::infinity();
    std::vector<double> prev(m + 1, inf);
    std::vector<double> curr(m + 1, inf);
    prev[0] = 0.0;

    for (std::size_t i = 1; i <= n; ++i) {
        std::fill(curr.begin(), curr.end(), inf);
        const std::size_t j_lo = (i > band) ? (i - band) : 1;
        const std::size_t j_hi = std::min(m, i + band);
        for (std::size_t j = j_lo; j <= j_hi; ++j) {
            const double cost = std::abs(a[i - 1] - b[j - 1]);
            const double best =
                std::min({prev[j], curr[j - 1], prev[j - 1]});
            curr[j] = cost + best;
        }
        std::swap(prev, curr);
    }
    return prev[m];
}

double
naiveEuclidean(const std::vector<double> &a, const std::vector<double> &b)
{
    SCALO_ASSERT(a.size() == b.size(), "size mismatch ", a.size(),
                 " vs ", b.size());
    double acc = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const double d = a[i] - b[i];
        acc += d * d;
    }
    return std::sqrt(acc);
}

} // namespace scalo::signal::reference
