#include "scalo/signal/distance.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "scalo/util/logging.hpp"

namespace scalo::signal {

double
dtwDistance(const std::vector<double> &a, const std::vector<double> &b,
            std::size_t band)
{
    const std::size_t n = a.size();
    const std::size_t m = b.size();
    if (n == 0 || m == 0)
        return (n == m) ? 0.0 : std::numeric_limits<double>::infinity();

    // The band must at least cover the length difference or no monotone
    // path exists.
    const std::size_t min_band = (n > m) ? (n - m) : (m - n);
    band = std::max(band, min_band + 1);

    constexpr double inf = std::numeric_limits<double>::infinity();
    // Rolling two-row DP over the banded cost matrix.
    std::vector<double> prev(m + 1, inf);
    std::vector<double> curr(m + 1, inf);
    prev[0] = 0.0;

    for (std::size_t i = 1; i <= n; ++i) {
        std::fill(curr.begin(), curr.end(), inf);
        const std::size_t j_lo =
            (i > band) ? (i - band) : 1;
        const std::size_t j_hi = std::min(m, i + band);
        for (std::size_t j = j_lo; j <= j_hi; ++j) {
            const double cost = std::abs(a[i - 1] - b[j - 1]);
            const double best =
                std::min({prev[j], curr[j - 1], prev[j - 1]});
            curr[j] = cost + best;
        }
        std::swap(prev, curr);
    }
    return prev[m];
}

double
euclideanDistance(const std::vector<double> &a,
                  const std::vector<double> &b)
{
    SCALO_ASSERT(a.size() == b.size(), "size mismatch ", a.size(), " vs ",
                 b.size());
    double acc = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const double d = a[i] - b[i];
        acc += d * d;
    }
    return std::sqrt(acc);
}

double
pearson(const std::vector<double> &a, const std::vector<double> &b)
{
    SCALO_ASSERT(a.size() == b.size(), "size mismatch ", a.size(), " vs ",
                 b.size());
    const std::size_t n = a.size();
    if (n == 0)
        return 0.0;

    double ma = 0.0, mb = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        ma += a[i];
        mb += b[i];
    }
    ma /= static_cast<double>(n);
    mb /= static_cast<double>(n);

    double sab = 0.0, saa = 0.0, sbb = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double da = a[i] - ma;
        const double db = b[i] - mb;
        sab += da * db;
        saa += da * da;
        sbb += db * db;
    }
    if (saa <= 0.0 || sbb <= 0.0)
        return 0.0;
    return sab / std::sqrt(saa * sbb);
}

double
crossCorrelation(const std::vector<double> &a,
                 const std::vector<double> &b, std::size_t max_lag)
{
    SCALO_ASSERT(a.size() == b.size(), "size mismatch ", a.size(), " vs ",
                 b.size());
    const std::size_t n = a.size();
    if (n == 0)
        return 0.0;
    max_lag = std::min(max_lag, n - 1);

    double best = -1.0;
    for (std::size_t lag = 0; lag <= max_lag; ++lag) {
        const std::size_t overlap = n - lag;
        if (overlap < 2)
            break;
        // b delayed by `lag` relative to a, and vice versa.
        std::vector<double> a_head(a.begin(),
                                   a.begin() +
                                       static_cast<long>(overlap));
        std::vector<double> b_tail(b.begin() + static_cast<long>(lag),
                                   b.end());
        best = std::max(best, pearson(a_head, b_tail));
        if (lag != 0) {
            std::vector<double> b_head(b.begin(),
                                       b.begin() +
                                           static_cast<long>(overlap));
            std::vector<double> a_tail(a.begin() + static_cast<long>(lag),
                                       a.end());
            best = std::max(best, pearson(a_tail, b_head));
        }
    }
    return best;
}

double
emdDistance(const std::vector<double> &a, const std::vector<double> &b)
{
    SCALO_ASSERT(a.size() == b.size(), "size mismatch ", a.size(), " vs ",
                 b.size());
    double mass_a = 0.0, mass_b = 0.0;
    for (double v : a) {
        SCALO_ASSERT(v >= 0.0, "negative mass ", v);
        mass_a += v;
    }
    for (double v : b) {
        SCALO_ASSERT(v >= 0.0, "negative mass ", v);
        mass_b += v;
    }
    if (mass_a <= 0.0 || mass_b <= 0.0)
        return 0.0;

    // EMD on the line == L1 distance between CDFs (normalised mass).
    double cdf_a = 0.0, cdf_b = 0.0, emd = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        cdf_a += a[i] / mass_a;
        cdf_b += b[i] / mass_b;
        emd += std::abs(cdf_a - cdf_b);
    }
    return emd;
}

double
emdSignalDistance(const std::vector<double> &a,
                  const std::vector<double> &b)
{
    SCALO_ASSERT(a.size() == b.size(), "size mismatch ", a.size(), " vs ",
                 b.size());
    double lo = 0.0;
    for (double v : a)
        lo = std::min(lo, v);
    for (double v : b)
        lo = std::min(lo, v);
    std::vector<double> pa(a), pb(b);
    for (double &v : pa)
        v -= lo;
    for (double &v : pb)
        v -= lo;
    return emdDistance(pa, pb);
}

const char *
measureName(Measure measure)
{
    switch (measure) {
      case Measure::Euclidean:
        return "Euclidean";
      case Measure::Dtw:
        return "DTW";
      case Measure::Xcor:
        return "XCOR";
      case Measure::Emd:
        return "EMD";
    }
    SCALO_PANIC("unknown measure");
}

double
dissimilarity(Measure measure, const std::vector<double> &a,
              const std::vector<double> &b)
{
    switch (measure) {
      case Measure::Euclidean:
        return euclideanDistance(a, b);
      case Measure::Dtw:
        // Sakoe-Chiba band of ~10% of the window, the classic setting.
        return dtwDistance(a, b, std::max<std::size_t>(1, a.size() / 10));
      case Measure::Xcor:
        return 1.0 - crossCorrelation(a, b, a.empty() ? 0 : a.size() / 8);
      case Measure::Emd:
        return emdSignalDistance(a, b);
    }
    SCALO_PANIC("unknown measure");
}

} // namespace scalo::signal
