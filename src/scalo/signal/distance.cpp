#include "scalo/signal/distance.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "scalo/signal/window_batch.hpp"
#include "scalo/util/logging.hpp"
#include "scalo/util/simd.hpp"

namespace scalo::signal {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

constexpr std::size_t kW = simd::kLanes;
using dpack = simd::dpack;

} // namespace

DtwScratch::Rows
DtwScratch::rows(std::size_t m)
{
    // Stride padded to the pack width AND to a cache line of doubles,
    // so every row starts 64-byte aligned and full-width loads within
    // a row stay inside the allocation.
    constexpr std::size_t line_doubles =
        util::AlignedBuffer<double>::kAlignment / sizeof(double);
    const std::size_t stride =
        simd::paddedSize(m + 1, std::max(kW, line_doubles));
    if (4 * stride > storage.capacity())
        ++reallocCount;
    double *base = storage.ensure(4 * stride);
    return Rows{base, base + stride, base + 2 * stride,
                base + 3 * stride, stride};
}

namespace {

/**
 * Shared banded-DTW core. Rows are reset only at the band edges
 * (entries inside the band are overwritten, entries further out are
 * never read), so each row costs O(band) instead of O(m). When
 * @p cutoff is finite, a row whose minimum exceeds it abandons the
 * computation, returning that row minimum (a lower bound of the true
 * distance that is already > cutoff).
 *
 * Each band row is split into a vectorized precompute,
 *
 *     cost[j]  = |a_i - b[j-1]|
 *     bound[j] = cost[j] + min(prev[j], prev[j-1])
 *
 * and a short serial resolve carrying the in-row dependency,
 *
 *     curr[j] = min(bound[j], cost[j] + curr[j-1])
 *
 * Rounding is monotone non-decreasing, so for finite inputs
 * fl(c + min(x, y)) == min(fl(c + x), fl(c + y)) and the split is
 * bit-identical to the fused cost + min(prev[j], curr[j-1],
 * prev[j-1]) recurrence (infinities ride along exactly; only NaN
 * payload propagation is unspecified).
 */
double
dtwBandedCore(const std::vector<double> &a, const std::vector<double> &b,
              std::size_t band, double cutoff, DtwScratch &scratch)
{
    const std::size_t n = a.size();
    const std::size_t m = b.size();
    if (n == 0 || m == 0)
        return (n == m) ? 0.0 : kInf;

    // The band must at least cover the length difference or no monotone
    // path exists.
    const std::size_t min_band = (n > m) ? (n - m) : (m - n);
    band = std::max(band, min_band + 1);

    // Rolling two-row DP over the banded cost matrix. The rows are
    // filled across their whole padded stride so full-width loads of
    // prev never read indeterminate memory.
    const DtwScratch::Rows rows = scratch.rows(m);
    double *prev = rows.prev;
    double *curr = rows.curr;
    double *const cost = rows.cost;
    double *const bound = rows.bound;
    std::fill_n(prev, rows.stride, kInf);
    std::fill_n(curr, rows.stride, kInf);
    prev[0] = 0.0;

    for (std::size_t i = 1; i <= n; ++i) {
        const std::size_t j_lo = (i > band) ? (i - band) : 1;
        const std::size_t j_hi = std::min(m, i + band);
        // Band-edge sentinels: the next row only ever reads one entry
        // beyond this row's band on either side.
        curr[j_lo - 1] = kInf;
        if (j_hi < m)
            curr[j_hi + 1] = kInf;

        const double ai = a[i - 1];
        double row_min = kInf;
        const std::size_t width = j_hi - j_lo + 1;
        if (width < 4 * kW) {
            // Narrow band: the classic fused row. The serial resolve
            // below is latency-bound on the curr[j-1] chain whatever
            // the band width, so the vectorized precompute only pays
            // once its store/reload traffic amortises over a wide
            // row; under ~4 packs it is pure overhead. Fusing is
            // bit-identical to the split (the same monotone-rounding
            // argument, read in reverse).
            for (std::size_t j = j_lo; j <= j_hi; ++j) {
                const double c = std::abs(ai - b[j - 1]);
                const double lo = std::min(
                    std::min(prev[j], prev[j - 1]), curr[j - 1]);
                const double v = c + lo;
                curr[j] = v;
                row_min = std::min(row_min, v);
            }
        } else {
            const dpack av = dpack::broadcast(ai);
            std::size_t j = j_lo;
            // Full packs stop where the b[j-1] load would run past
            // m; prev/cost/bound are padded, so only b limits the
            // width.
            for (; j + kW <= j_hi + 1; j += kW) {
                const dpack c = abs(av - dpack::loadu(&b[j - 1]));
                const dpack lo = min(dpack::loadu(&prev[j]),
                                     dpack::loadu(&prev[j - 1]));
                c.storeu(&cost[j]);
                (c + lo).storeu(&bound[j]);
            }
            for (; j <= j_hi; ++j) {
                const double c = std::abs(ai - b[j - 1]);
                cost[j] = c;
                bound[j] = c + std::min(prev[j], prev[j - 1]);
            }

            for (j = j_lo; j <= j_hi; ++j) {
                const double v =
                    std::min(bound[j], cost[j] + curr[j - 1]);
                curr[j] = v;
                row_min = std::min(row_min, v);
            }
        }
        if (row_min > cutoff)
            return row_min;
        std::swap(prev, curr);
    }
    return prev[m];
}

} // namespace

double
dtwDistance(const std::vector<double> &a, const std::vector<double> &b,
            std::size_t band, DtwScratch &scratch)
{
    return dtwBandedCore(a, b, band, kInf, scratch);
}

double
dtwDistance(const std::vector<double> &a, const std::vector<double> &b,
            std::size_t band)
{
    DtwScratch scratch;
    return dtwBandedCore(a, b, band, kInf, scratch);
}

double
dtwDistanceEarlyAbandon(const std::vector<double> &a,
                        const std::vector<double> &b, std::size_t band,
                        double cutoff, DtwScratch &scratch)
{
    return dtwBandedCore(a, b, band, cutoff, scratch);
}

double
euclideanDistanceSquared(const double *a, const double *b,
                         std::size_t n)
{
    // One W-lane accumulator over full packs, a scalar tail, then the
    // fixed left-to-right lane reduce: this exact sequence is the
    // arithmetic contract every batched overload reproduces
    // per-candidate, which is what makes batched results bitwise
    // equal to per-pair calls.
    dpack acc = dpack::zero();
    std::size_t i = 0;
    for (; i + kW <= n; i += kW) {
        const dpack d = dpack::loadu(a + i) - dpack::loadu(b + i);
        acc += d * d;
    }
    double tail = 0.0;
    for (; i < n; ++i) {
        const double d = a[i] - b[i];
        tail += d * d;
    }
    // acc.sum() is +0.0 for n < W, and tail is never -0.0 (it sums
    // squares), so the final add is exact.
    return acc.sum() + tail;
}

double
euclideanDistance(const std::vector<double> &a,
                  const std::vector<double> &b)
{
    SCALO_ASSERT(a.size() == b.size(), "size mismatch ", a.size(), " vs ",
                 b.size());
    return std::sqrt(euclideanDistanceSquared(a.data(), b.data(),
                                              a.size()));
}

namespace {

/**
 * Shared batched-distance core: squared distances from @p q to
 * @p count candidate rows fetched through @p rowAt (an index ->
 * const double* accessor). Eight candidates per pass: the query
 * streams through the cache once per block instead of once per
 * candidate, and the eight W-lane accumulators fill enough
 * independent FMA chains to cover the multiply-add latency (4-5
 * cycles at 2/cycle throughput needs 8+ chains in flight). Every
 * candidate runs the exact accumulation sequence of
 * euclideanDistanceSquared() (same pack loop, same scalar tail, same
 * lane reduce), so results are bitwise equal to per-pair calls
 * whatever the blocking.
 */
template <typename RowAt>
void
distanceManyCore(const double *q, std::size_t n, std::size_t count,
                 RowAt rowAt, double *out)
{
    std::size_t i = 0;
    for (; i + 8 <= count; i += 8) {
        const double *c0 = rowAt(i);
        const double *c1 = rowAt(i + 1);
        const double *c2 = rowAt(i + 2);
        const double *c3 = rowAt(i + 3);
        const double *c4 = rowAt(i + 4);
        const double *c5 = rowAt(i + 5);
        const double *c6 = rowAt(i + 6);
        const double *c7 = rowAt(i + 7);
        dpack s0 = dpack::zero(), s1 = dpack::zero();
        dpack s2 = dpack::zero(), s3 = dpack::zero();
        dpack s4 = dpack::zero(), s5 = dpack::zero();
        dpack s6 = dpack::zero(), s7 = dpack::zero();
        std::size_t j = 0;
        for (; j + kW <= n; j += kW) {
            const dpack qv = dpack::loadu(q + j);
            dpack d;
            d = qv - dpack::loadu(c0 + j); s0 += d * d;
            d = qv - dpack::loadu(c1 + j); s1 += d * d;
            d = qv - dpack::loadu(c2 + j); s2 += d * d;
            d = qv - dpack::loadu(c3 + j); s3 += d * d;
            d = qv - dpack::loadu(c4 + j); s4 += d * d;
            d = qv - dpack::loadu(c5 + j); s5 += d * d;
            d = qv - dpack::loadu(c6 + j); s6 += d * d;
            d = qv - dpack::loadu(c7 + j); s7 += d * d;
        }
        double t0 = 0.0, t1 = 0.0, t2 = 0.0, t3 = 0.0;
        double t4 = 0.0, t5 = 0.0, t6 = 0.0, t7 = 0.0;
        for (; j < n; ++j) {
            const double qj = q[j];
            double d;
            d = qj - c0[j]; t0 += d * d;
            d = qj - c1[j]; t1 += d * d;
            d = qj - c2[j]; t2 += d * d;
            d = qj - c3[j]; t3 += d * d;
            d = qj - c4[j]; t4 += d * d;
            d = qj - c5[j]; t5 += d * d;
            d = qj - c6[j]; t6 += d * d;
            d = qj - c7[j]; t7 += d * d;
        }
        out[i] = s0.sum() + t0;
        out[i + 1] = s1.sum() + t1;
        out[i + 2] = s2.sum() + t2;
        out[i + 3] = s3.sum() + t3;
        out[i + 4] = s4.sum() + t4;
        out[i + 5] = s5.sum() + t5;
        out[i + 6] = s6.sum() + t6;
        out[i + 7] = s7.sum() + t7;
    }
    for (; i < count; ++i)
        out[i] = euclideanDistanceSquared(q, rowAt(i), n);
}

} // namespace

void
euclideanDistanceMany(
    const std::vector<double> &query,
    const std::vector<const std::vector<double> *> &candidates,
    std::vector<double> &out)
{
    out.resize(candidates.size());
    const double *q = query.data();
    const std::size_t n = query.size();
    const std::size_t count = candidates.size();
    for (std::size_t i = 0; i < count; ++i)
        SCALO_ASSERT(candidates[i]->size() == n, "candidate ", i,
                     " has ", candidates[i]->size(),
                     " samples, query has ", n);

    distanceManyCore(
        q, n, count,
        [&](std::size_t i) { return candidates[i]->data(); },
        out.data());

    // Deferred sqrt: one tight pass instead of one call per distance.
    for (double &d : out)
        d = std::sqrt(d);
}

void
euclideanDistanceMany(const std::vector<double> &query,
                      const WindowBatch &batch,
                      std::vector<double> &out)
{
    SCALO_ASSERT(batch.empty() || batch.windowSize() == query.size(),
                 "batch windows have ", batch.windowSize(),
                 " samples, query has ", query.size());
    out.resize(batch.size());
    const double *base = batch.data();
    const std::size_t stride = batch.stride();
    distanceManyCore(
        query.data(), query.size(), batch.size(),
        [&](std::size_t i) { return base + i * stride; },
        out.data());
    for (double &d : out)
        d = std::sqrt(d);
}

void
euclideanDistanceMany(const std::vector<double> &query,
                      const WindowBatch &batch,
                      const std::vector<std::uint32_t> &rows,
                      std::vector<double> &out)
{
    SCALO_ASSERT(rows.empty() || batch.windowSize() == query.size(),
                 "batch windows have ", batch.windowSize(),
                 " samples, query has ", query.size());
    out.resize(rows.size());
    const double *base = batch.data();
    const std::size_t stride = batch.stride();
    distanceManyCore(
        query.data(), query.size(), rows.size(),
        [&](std::size_t i) {
            SCALO_ASSERT(rows[i] < batch.size(), "batch row ",
                         rows[i], " out of range ", batch.size());
            return base + rows[i] * stride;
        },
        out.data());
    for (double &d : out)
        d = std::sqrt(d);
}

std::vector<double>
euclideanDistanceMany(
    const std::vector<double> &query,
    const std::vector<const std::vector<double> *> &candidates)
{
    std::vector<double> out;
    euclideanDistanceMany(query, candidates, out);
    return out;
}

void
euclideanDistanceBatch(std::vector<DistanceJob> &jobs)
{
    // Group jobs by probe identity, preserving first-seen order.
    // Every candidate's distance depends only on (probe, candidate) —
    // the Many kernel accumulates each candidate independently — so
    // coalescing is purely a call-structure optimisation and the
    // scattered results match per-job calls bit for bit.
    std::vector<const std::vector<double> *> coalesced;
    std::vector<double> dists;
    std::vector<std::size_t> group;
    std::vector<char> resolved(jobs.size(), 0);
    for (std::size_t first = 0; first < jobs.size(); ++first) {
        if (resolved[first])
            continue;
        DistanceJob &lead = jobs[first];
        SCALO_ASSERT(lead.query != nullptr,
                     "distance job without a query window");
        group.clear();
        coalesced.clear();
        for (std::size_t j = first; j < jobs.size(); ++j) {
            if (resolved[j] || jobs[j].query != lead.query)
                continue;
            group.push_back(j);
            coalesced.insert(coalesced.end(),
                             jobs[j].candidates.begin(),
                             jobs[j].candidates.end());
            resolved[j] = 1;
        }
        euclideanDistanceMany(*lead.query, coalesced, dists);
        std::size_t offset = 0;
        for (const std::size_t j : group) {
            DistanceJob &job = jobs[j];
            job.distances.assign(
                dists.begin() +
                    static_cast<std::ptrdiff_t>(offset),
                dists.begin() + static_cast<std::ptrdiff_t>(
                                    offset + job.candidates.size()));
            offset += job.candidates.size();
        }
    }
}

void
euclideanDistanceBatch(const WindowBatch &batch,
                       std::vector<BatchDistanceJob> &jobs)
{
    // Same probe-coalescing structure as the DistanceJob overload,
    // over row indices into the shared SoA batch instead of window
    // pointers.
    std::vector<std::uint32_t> coalesced;
    std::vector<double> dists;
    std::vector<std::size_t> group;
    std::vector<char> resolved(jobs.size(), 0);
    for (std::size_t first = 0; first < jobs.size(); ++first) {
        if (resolved[first])
            continue;
        BatchDistanceJob &lead = jobs[first];
        SCALO_ASSERT(lead.query != nullptr,
                     "distance job without a query window");
        group.clear();
        coalesced.clear();
        for (std::size_t j = first; j < jobs.size(); ++j) {
            if (resolved[j] || jobs[j].query != lead.query)
                continue;
            group.push_back(j);
            coalesced.insert(coalesced.end(), jobs[j].rows.begin(),
                             jobs[j].rows.end());
            resolved[j] = 1;
        }
        euclideanDistanceMany(*lead.query, batch, coalesced, dists);
        std::size_t offset = 0;
        for (const std::size_t j : group) {
            BatchDistanceJob &job = jobs[j];
            job.distances.assign(
                dists.begin() +
                    static_cast<std::ptrdiff_t>(offset),
                dists.begin() + static_cast<std::ptrdiff_t>(
                                    offset + job.rows.size()));
            offset += job.rows.size();
        }
    }
}

double
pearson(const std::vector<double> &a, const std::vector<double> &b)
{
    SCALO_ASSERT(a.size() == b.size(), "size mismatch ", a.size(), " vs ",
                 b.size());
    const std::size_t n = a.size();
    if (n == 0)
        return 0.0;

    double ma = 0.0, mb = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        ma += a[i];
        mb += b[i];
    }
    ma /= static_cast<double>(n);
    mb /= static_cast<double>(n);

    double sab = 0.0, saa = 0.0, sbb = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double da = a[i] - ma;
        const double db = b[i] - mb;
        sab += da * db;
        saa += da * da;
        sbb += db * db;
    }
    if (saa <= 0.0 || sbb <= 0.0)
        return 0.0;
    return sab / std::sqrt(saa * sbb);
}

double
crossCorrelation(const std::vector<double> &a,
                 const std::vector<double> &b, std::size_t max_lag)
{
    SCALO_ASSERT(a.size() == b.size(), "size mismatch ", a.size(), " vs ",
                 b.size());
    const std::size_t n = a.size();
    if (n == 0)
        return 0.0;
    max_lag = std::min(max_lag, n - 1);

    double best = -1.0;
    for (std::size_t lag = 0; lag <= max_lag; ++lag) {
        const std::size_t overlap = n - lag;
        if (overlap < 2)
            break;
        // b delayed by `lag` relative to a, and vice versa.
        std::vector<double> a_head(a.begin(),
                                   a.begin() +
                                       static_cast<long>(overlap));
        std::vector<double> b_tail(b.begin() + static_cast<long>(lag),
                                   b.end());
        best = std::max(best, pearson(a_head, b_tail));
        if (lag != 0) {
            std::vector<double> b_head(b.begin(),
                                       b.begin() +
                                           static_cast<long>(overlap));
            std::vector<double> a_tail(a.begin() + static_cast<long>(lag),
                                       a.end());
            best = std::max(best, pearson(a_tail, b_head));
        }
    }
    return best;
}

double
emdDistance(const std::vector<double> &a, const std::vector<double> &b)
{
    SCALO_ASSERT(a.size() == b.size(), "size mismatch ", a.size(), " vs ",
                 b.size());
    double mass_a = 0.0, mass_b = 0.0;
    for (double v : a) {
        SCALO_ASSERT(v >= 0.0, "negative mass ", v);
        mass_a += v;
    }
    for (double v : b) {
        SCALO_ASSERT(v >= 0.0, "negative mass ", v);
        mass_b += v;
    }
    if (mass_a <= 0.0 || mass_b <= 0.0)
        return 0.0;

    // EMD on the line == L1 distance between CDFs (normalised mass).
    double cdf_a = 0.0, cdf_b = 0.0, emd = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        cdf_a += a[i] / mass_a;
        cdf_b += b[i] / mass_b;
        emd += std::abs(cdf_a - cdf_b);
    }
    return emd;
}

double
emdSignalDistance(const std::vector<double> &a,
                  const std::vector<double> &b)
{
    SCALO_ASSERT(a.size() == b.size(), "size mismatch ", a.size(), " vs ",
                 b.size());
    double lo = 0.0;
    for (double v : a)
        lo = std::min(lo, v);
    for (double v : b)
        lo = std::min(lo, v);
    std::vector<double> pa(a), pb(b);
    for (double &v : pa)
        v -= lo;
    for (double &v : pb)
        v -= lo;
    return emdDistance(pa, pb);
}

const char *
measureName(Measure measure)
{
    switch (measure) {
      case Measure::Euclidean:
        return "Euclidean";
      case Measure::Dtw:
        return "DTW";
      case Measure::Xcor:
        return "XCOR";
      case Measure::Emd:
        return "EMD";
    }
    SCALO_PANIC("unknown measure");
}

double
dissimilarity(Measure measure, const std::vector<double> &a,
              const std::vector<double> &b)
{
    switch (measure) {
      case Measure::Euclidean:
        return euclideanDistance(a, b);
      case Measure::Dtw:
        // Sakoe-Chiba band of ~10% of the window, the classic setting.
        return dtwDistance(a, b, std::max<std::size_t>(1, a.size() / 10));
      case Measure::Xcor:
        return 1.0 - crossCorrelation(a, b, a.empty() ? 0 : a.size() / 8);
      case Measure::Emd:
        return emdSignalDistance(a, b);
    }
    SCALO_PANIC("unknown measure");
}

} // namespace scalo::signal
