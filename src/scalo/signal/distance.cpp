#include "scalo/signal/distance.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "scalo/util/logging.hpp"

namespace scalo::signal {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/**
 * Shared banded-DTW core. Rows are reset only at the band edges
 * (entries inside the band are overwritten, entries further out are
 * never read), so each row costs O(band) instead of O(m). When
 * @p cutoff is finite, a row whose minimum exceeds it abandons the
 * computation, returning that row minimum (a lower bound of the true
 * distance that is already > cutoff).
 */
double
dtwBandedCore(const std::vector<double> &a, const std::vector<double> &b,
              std::size_t band, double cutoff, DtwScratch &scratch)
{
    const std::size_t n = a.size();
    const std::size_t m = b.size();
    if (n == 0 || m == 0)
        return (n == m) ? 0.0 : kInf;

    // The band must at least cover the length difference or no monotone
    // path exists.
    const std::size_t min_band = (n > m) ? (n - m) : (m - n);
    band = std::max(band, min_band + 1);

    // Rolling two-row DP over the banded cost matrix.
    std::vector<double> &prev = scratch.prev;
    std::vector<double> &curr = scratch.curr;
    prev.assign(m + 1, kInf);
    curr.assign(m + 1, kInf);
    prev[0] = 0.0;

    for (std::size_t i = 1; i <= n; ++i) {
        const std::size_t j_lo = (i > band) ? (i - band) : 1;
        const std::size_t j_hi = std::min(m, i + band);
        // Band-edge sentinels: the next row only ever reads one entry
        // beyond this row's band on either side.
        curr[j_lo - 1] = kInf;
        if (j_hi < m)
            curr[j_hi + 1] = kInf;
        double row_min = kInf;
        const double *ap = &a[i - 1];
        for (std::size_t j = j_lo; j <= j_hi; ++j) {
            const double cost = std::abs(*ap - b[j - 1]);
            const double best =
                std::min({prev[j], curr[j - 1], prev[j - 1]});
            const double v = cost + best;
            curr[j] = v;
            row_min = std::min(row_min, v);
        }
        if (row_min > cutoff)
            return row_min;
        std::swap(prev, curr);
    }
    return prev[m];
}

} // namespace

double
dtwDistance(const std::vector<double> &a, const std::vector<double> &b,
            std::size_t band, DtwScratch &scratch)
{
    return dtwBandedCore(a, b, band, kInf, scratch);
}

double
dtwDistance(const std::vector<double> &a, const std::vector<double> &b,
            std::size_t band)
{
    DtwScratch scratch;
    return dtwBandedCore(a, b, band, kInf, scratch);
}

double
dtwDistanceEarlyAbandon(const std::vector<double> &a,
                        const std::vector<double> &b, std::size_t band,
                        double cutoff, DtwScratch &scratch)
{
    return dtwBandedCore(a, b, band, cutoff, scratch);
}

double
euclideanDistanceSquared(const double *a, const double *b,
                         std::size_t n)
{
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double d = a[i] - b[i];
        acc += d * d;
    }
    return acc;
}

double
euclideanDistance(const std::vector<double> &a,
                  const std::vector<double> &b)
{
    SCALO_ASSERT(a.size() == b.size(), "size mismatch ", a.size(), " vs ",
                 b.size());
    return std::sqrt(euclideanDistanceSquared(a.data(), b.data(),
                                              a.size()));
}

void
euclideanDistanceMany(
    const std::vector<double> &query,
    const std::vector<const std::vector<double> *> &candidates,
    std::vector<double> &out)
{
    out.resize(candidates.size());
    const double *q = query.data();
    const std::size_t n = query.size();
    const std::size_t count = candidates.size();
    for (std::size_t i = 0; i < count; ++i)
        SCALO_ASSERT(candidates[i]->size() == n, "candidate ", i,
                     " has ", candidates[i]->size(),
                     " samples, query has ", n);

    // Eight candidates per pass: the query streams through the cache
    // once per block instead of once per candidate, and the eight
    // named accumulators fill independent FMA chains.
    std::size_t i = 0;
    for (; i + 8 <= count; i += 8) {
        const double *c0 = candidates[i]->data();
        const double *c1 = candidates[i + 1]->data();
        const double *c2 = candidates[i + 2]->data();
        const double *c3 = candidates[i + 3]->data();
        const double *c4 = candidates[i + 4]->data();
        const double *c5 = candidates[i + 5]->data();
        const double *c6 = candidates[i + 6]->data();
        const double *c7 = candidates[i + 7]->data();
        double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
        double a4 = 0.0, a5 = 0.0, a6 = 0.0, a7 = 0.0;
        for (std::size_t j = 0; j < n; ++j) {
            const double qj = q[j];
            double d;
            d = qj - c0[j]; a0 += d * d;
            d = qj - c1[j]; a1 += d * d;
            d = qj - c2[j]; a2 += d * d;
            d = qj - c3[j]; a3 += d * d;
            d = qj - c4[j]; a4 += d * d;
            d = qj - c5[j]; a5 += d * d;
            d = qj - c6[j]; a6 += d * d;
            d = qj - c7[j]; a7 += d * d;
        }
        out[i] = a0;
        out[i + 1] = a1;
        out[i + 2] = a2;
        out[i + 3] = a3;
        out[i + 4] = a4;
        out[i + 5] = a5;
        out[i + 6] = a6;
        out[i + 7] = a7;
    }
    for (; i + 4 <= count; i += 4) {
        const double *c0 = candidates[i]->data();
        const double *c1 = candidates[i + 1]->data();
        const double *c2 = candidates[i + 2]->data();
        const double *c3 = candidates[i + 3]->data();
        double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
        for (std::size_t j = 0; j < n; ++j) {
            const double qj = q[j];
            double d;
            d = qj - c0[j]; a0 += d * d;
            d = qj - c1[j]; a1 += d * d;
            d = qj - c2[j]; a2 += d * d;
            d = qj - c3[j]; a3 += d * d;
        }
        out[i] = a0;
        out[i + 1] = a1;
        out[i + 2] = a2;
        out[i + 3] = a3;
    }
    for (; i < count; ++i)
        out[i] = euclideanDistanceSquared(q, candidates[i]->data(), n);

    // Deferred sqrt: one tight pass instead of one call per distance.
    for (double &d : out)
        d = std::sqrt(d);
}

std::vector<double>
euclideanDistanceMany(
    const std::vector<double> &query,
    const std::vector<const std::vector<double> *> &candidates)
{
    std::vector<double> out;
    euclideanDistanceMany(query, candidates, out);
    return out;
}

void
euclideanDistanceBatch(std::vector<DistanceJob> &jobs)
{
    // Group jobs by probe identity, preserving first-seen order.
    // Every candidate's distance depends only on (probe, candidate) —
    // the Many kernel accumulates each candidate independently — so
    // coalescing is purely a call-structure optimisation and the
    // scattered results match per-job calls bit for bit.
    std::vector<const std::vector<double> *> coalesced;
    std::vector<double> dists;
    std::vector<std::size_t> group;
    std::vector<char> resolved(jobs.size(), 0);
    for (std::size_t first = 0; first < jobs.size(); ++first) {
        if (resolved[first])
            continue;
        DistanceJob &lead = jobs[first];
        SCALO_ASSERT(lead.query != nullptr,
                     "distance job without a query window");
        group.clear();
        coalesced.clear();
        for (std::size_t j = first; j < jobs.size(); ++j) {
            if (resolved[j] || jobs[j].query != lead.query)
                continue;
            group.push_back(j);
            coalesced.insert(coalesced.end(),
                             jobs[j].candidates.begin(),
                             jobs[j].candidates.end());
            resolved[j] = 1;
        }
        euclideanDistanceMany(*lead.query, coalesced, dists);
        std::size_t offset = 0;
        for (const std::size_t j : group) {
            DistanceJob &job = jobs[j];
            job.distances.assign(
                dists.begin() +
                    static_cast<std::ptrdiff_t>(offset),
                dists.begin() + static_cast<std::ptrdiff_t>(
                                    offset + job.candidates.size()));
            offset += job.candidates.size();
        }
    }
}

double
pearson(const std::vector<double> &a, const std::vector<double> &b)
{
    SCALO_ASSERT(a.size() == b.size(), "size mismatch ", a.size(), " vs ",
                 b.size());
    const std::size_t n = a.size();
    if (n == 0)
        return 0.0;

    double ma = 0.0, mb = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        ma += a[i];
        mb += b[i];
    }
    ma /= static_cast<double>(n);
    mb /= static_cast<double>(n);

    double sab = 0.0, saa = 0.0, sbb = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double da = a[i] - ma;
        const double db = b[i] - mb;
        sab += da * db;
        saa += da * da;
        sbb += db * db;
    }
    if (saa <= 0.0 || sbb <= 0.0)
        return 0.0;
    return sab / std::sqrt(saa * sbb);
}

double
crossCorrelation(const std::vector<double> &a,
                 const std::vector<double> &b, std::size_t max_lag)
{
    SCALO_ASSERT(a.size() == b.size(), "size mismatch ", a.size(), " vs ",
                 b.size());
    const std::size_t n = a.size();
    if (n == 0)
        return 0.0;
    max_lag = std::min(max_lag, n - 1);

    double best = -1.0;
    for (std::size_t lag = 0; lag <= max_lag; ++lag) {
        const std::size_t overlap = n - lag;
        if (overlap < 2)
            break;
        // b delayed by `lag` relative to a, and vice versa.
        std::vector<double> a_head(a.begin(),
                                   a.begin() +
                                       static_cast<long>(overlap));
        std::vector<double> b_tail(b.begin() + static_cast<long>(lag),
                                   b.end());
        best = std::max(best, pearson(a_head, b_tail));
        if (lag != 0) {
            std::vector<double> b_head(b.begin(),
                                       b.begin() +
                                           static_cast<long>(overlap));
            std::vector<double> a_tail(a.begin() + static_cast<long>(lag),
                                       a.end());
            best = std::max(best, pearson(a_tail, b_head));
        }
    }
    return best;
}

double
emdDistance(const std::vector<double> &a, const std::vector<double> &b)
{
    SCALO_ASSERT(a.size() == b.size(), "size mismatch ", a.size(), " vs ",
                 b.size());
    double mass_a = 0.0, mass_b = 0.0;
    for (double v : a) {
        SCALO_ASSERT(v >= 0.0, "negative mass ", v);
        mass_a += v;
    }
    for (double v : b) {
        SCALO_ASSERT(v >= 0.0, "negative mass ", v);
        mass_b += v;
    }
    if (mass_a <= 0.0 || mass_b <= 0.0)
        return 0.0;

    // EMD on the line == L1 distance between CDFs (normalised mass).
    double cdf_a = 0.0, cdf_b = 0.0, emd = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        cdf_a += a[i] / mass_a;
        cdf_b += b[i] / mass_b;
        emd += std::abs(cdf_a - cdf_b);
    }
    return emd;
}

double
emdSignalDistance(const std::vector<double> &a,
                  const std::vector<double> &b)
{
    SCALO_ASSERT(a.size() == b.size(), "size mismatch ", a.size(), " vs ",
                 b.size());
    double lo = 0.0;
    for (double v : a)
        lo = std::min(lo, v);
    for (double v : b)
        lo = std::min(lo, v);
    std::vector<double> pa(a), pb(b);
    for (double &v : pa)
        v -= lo;
    for (double &v : pb)
        v -= lo;
    return emdDistance(pa, pb);
}

const char *
measureName(Measure measure)
{
    switch (measure) {
      case Measure::Euclidean:
        return "Euclidean";
      case Measure::Dtw:
        return "DTW";
      case Measure::Xcor:
        return "XCOR";
      case Measure::Emd:
        return "EMD";
    }
    SCALO_PANIC("unknown measure");
}

double
dissimilarity(Measure measure, const std::vector<double> &a,
              const std::vector<double> &b)
{
    switch (measure) {
      case Measure::Euclidean:
        return euclideanDistance(a, b);
      case Measure::Dtw:
        // Sakoe-Chiba band of ~10% of the window, the classic setting.
        return dtwDistance(a, b, std::max<std::size_t>(1, a.size() / 10));
      case Measure::Xcor:
        return 1.0 - crossCorrelation(a, b, a.empty() ? 0 : a.size() / 8);
      case Measure::Emd:
        return emdSignalDistance(a, b);
    }
    SCALO_PANIC("unknown measure");
}

} // namespace scalo::signal
