#include "scalo/signal/butterworth.hpp"

#include <cmath>
#include <complex>
#include <numbers>

#include "scalo/util/logging.hpp"

namespace scalo::signal {

Biquad::Biquad(double b0, double b1, double b2, double a1, double a2)
    : b0(b0), b1(b1), b2(b2), a1(a1), a2(a2)
{
}

double
Biquad::step(double x)
{
    // Direct form II transposed: numerically robust for cascades.
    const double y = b0 * x + z1;
    z1 = b1 * x - a1 * y + z2;
    z2 = b2 * x - a2 * y;
    return y;
}

void
Biquad::reset()
{
    z1 = z2 = 0.0;
}

std::complex<double>
Biquad::response(std::complex<double> z_inv) const
{
    const std::complex<double> z_inv2 = z_inv * z_inv;
    return (b0 + b1 * z_inv + b2 * z_inv2) /
           (1.0 + a1 * z_inv + a2 * z_inv2);
}

namespace {

using Complexd = std::complex<double>;

/**
 * Build the band-pass biquad cascade.
 *
 * Analog Butterworth low-pass poles are transformed to band-pass poles
 * (s -> (s^2 + w0^2) / (bw * s)), then each conjugate pole pair is
 * discretised with the bilinear transform. Band-pass zeros are at s=0
 * (z=+1) and s=inf (z=-1), one pair per section.
 */
std::vector<Biquad>
designBandpass(int order, double low_hz, double high_hz,
               double sample_rate)
{
    SCALO_ASSERT(order >= 1, "filter order must be >= 1, got ", order);
    SCALO_ASSERT(low_hz > 0.0 && high_hz > low_hz &&
                     high_hz < sample_rate / 2.0,
                 "bad band [", low_hz, ", ", high_hz, "] at fs=",
                 sample_rate);

    const double fs2 = 2.0 * sample_rate;
    // Pre-warp the band edges for the bilinear transform.
    const double w_lo =
        fs2 * std::tan(std::numbers::pi * low_hz / sample_rate);
    const double w_hi =
        fs2 * std::tan(std::numbers::pi * high_hz / sample_rate);
    const double bw = w_hi - w_lo;
    const double w0_sq = w_lo * w_hi;

    std::vector<Biquad> sections;
    sections.reserve(static_cast<std::size_t>(order));

    auto to_z = [fs2](Complexd s) { return (fs2 + s) / (fs2 - s); };

    // Only the upper-half-plane prototype poles are enumerated; their
    // conjugates are absorbed into the real biquad coefficients.
    for (int k = 0; k < (order + 1) / 2; ++k) {
        // Analog Butterworth prototype pole, left half plane.
        const double theta =
            std::numbers::pi / 2.0 +
            std::numbers::pi * (2.0 * k + 1.0) / (2.0 * order);
        const Complexd p_lp(std::cos(theta), std::sin(theta));

        // Low-pass -> band-pass: each prototype pole spawns two poles.
        const Complexd half = p_lp * bw * 0.5;
        const Complexd root = std::sqrt(half * half - w0_sq);
        const Complexd z1 = to_z(half + root);
        const Complexd z2 = to_z(half - root);

        if (2 * k + 1 == order) {
            // Odd order: the middle prototype pole is real, so z1 and z2
            // together form one real pole pair -> one section covering
            // both: denominator (z - z1)(z - z2).
            const double a1 = -(z1 + z2).real();
            const double a2 = (z1 * z2).real();
            sections.emplace_back(1.0, 0.0, -1.0, a1, a2);
        } else {
            // Complex prototype pole: z1 and z2 each pair with their own
            // conjugate (from the conjugate prototype pole) -> two
            // sections. Band-pass zeros at z=+1 and z=-1 give the
            // numerator (z^2 - 1) per section.
            for (const Complexd &zp : {z1, z2}) {
                const double a1 = -2.0 * zp.real();
                const double a2 = std::norm(zp);
                sections.emplace_back(1.0, 0.0, -1.0, a1, a2);
            }
        }
    }

    return sections;
}

/** Exact cascade gain at @p freq_hz, used to normalise to unity. */
double
cascadeGainAt(const std::vector<Biquad> &sections, double freq_hz,
              double sample_rate)
{
    // |H(e^{jw})| of the cascade, evaluated directly from the biquad
    // coefficients. This replaces the old 4096-sample steady-state
    // sine probe: O(sections) instead of O(sections * 4096), and
    // exact rather than a sampled-peak estimate.
    const double w =
        2.0 * std::numbers::pi * freq_hz / sample_rate;
    const Complexd z_inv = std::polar(1.0, -w);
    Complexd h(1.0, 0.0);
    for (const Biquad &s : sections)
        h *= s.response(z_inv);
    return std::abs(h);
}

} // namespace

ButterworthBandpass::ButterworthBandpass(int order, double low_hz,
                                         double high_hz,
                                         double sample_rate)
    : sections(designBandpass(order, low_hz, high_hz, sample_rate))
{
    // Normalise the cascade to unity gain at the geometric midband
    // frequency by prepending a pure-gain section.
    const double mid = std::sqrt(low_hz * high_hz);
    const double gain = cascadeGainAt(sections, mid, sample_rate);
    if (gain > 1e-12)
        sections.insert(sections.begin(),
                        Biquad(1.0 / gain, 0.0, 0.0, 0.0, 0.0));
    reset();
}

double
ButterworthBandpass::step(double x)
{
    for (auto &s : sections)
        x = s.step(x);
    return x;
}

std::vector<double>
ButterworthBandpass::apply(const std::vector<double> &input)
{
    std::vector<double> out;
    out.reserve(input.size());
    for (double x : input)
        out.push_back(step(x));
    return out;
}

void
ButterworthBandpass::reset()
{
    for (auto &s : sections)
        s.reset();
}

} // namespace scalo::signal
