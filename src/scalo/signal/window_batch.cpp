#include "scalo/signal/window_batch.hpp"

#include <algorithm>

#include "scalo/util/contracts.hpp"
#include "scalo/util/simd.hpp"

namespace scalo::signal {

std::size_t
WindowBatch::strideFor(std::size_t window_size)
{
    // Round up to the pack width (full-width loops) AND to one cache
    // line of doubles (row alignment even when the pack is narrower
    // than 64 bytes).
    constexpr std::size_t line_doubles =
        util::AlignedBuffer<double>::kAlignment / sizeof(double);
    return simd::paddedSize(window_size,
                            std::max(simd::kLanes, line_doubles));
}

void
WindowBatch::reserve(std::size_t rows, std::size_t window_size)
{
    count = 0;
    reserved = rows;
    window = window_size;
    row_stride = strideFor(window_size);
    storage.ensure(rows * row_stride);
}

void
WindowBatch::append(const double *samples, std::size_t n)
{
    SCALO_EXPECTS(count < reserved);
    SCALO_EXPECTS(n == window);
    double *dst = storage.data() + count * row_stride;
    std::copy_n(samples, n, dst);
    std::fill(dst + n, dst + row_stride, 0.0);
    ++count;
}

void
WindowBatch::append(const std::vector<double> &samples)
{
    append(samples.data(), samples.size());
}

const double *
WindowBatch::row(std::size_t i) const
{
    SCALO_EXPECTS(i < count);
    return storage.data() + i * row_stride;
}

} // namespace scalo::signal
