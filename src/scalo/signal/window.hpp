/**
 * @file
 * Windowing utilities: slicing electrode traces into the 4 ms analysis
 * windows used throughout the SCALO pipelines, plus sample/real
 * conversions shared by the DSP kernels.
 */

#pragma once

#include <cstddef>
#include <vector>

#include "scalo/util/types.hpp"

namespace scalo::signal {

/** Convert 16-bit samples to doubles (no scaling). */
std::vector<double> toReal(const Window &window);

/** Convert doubles to saturating 16-bit samples. */
Window toSamples(const std::vector<double> &values);

/**
 * Slice @p trace into contiguous windows of @p window_samples samples
 * advancing by @p stride_samples. The final partial window is dropped.
 */
std::vector<Window> slice(const std::vector<Sample> &trace,
                          std::size_t window_samples,
                          std::size_t stride_samples);

/** Remove the mean of a window in place (DC removal). */
void removeMean(std::vector<double> &values);

/** Root-mean-square amplitude of a window. */
double rms(const std::vector<double> &values);

} // namespace scalo::signal
