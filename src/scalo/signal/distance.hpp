/**
 * @file
 * Signal-similarity measures used for seizure-propagation correlation and
 * spike-template matching (Section 2.2): dynamic time warping with a
 * Sakoe-Chiba band (the DTW PE; band = 1 degenerates to Euclidean
 * distance), Pearson cross-correlation (the XCOR PE), and the fast 1-D
 * Earth Mover's Distance computed on the microcontroller in the paper.
 */

#pragma once

#include <cstddef>
#include <vector>

namespace scalo::signal {

/**
 * Dynamic time warping distance with a Sakoe-Chiba band.
 *
 * @param a, b  equal- or different-length signals
 * @param band  half-width of the Sakoe-Chiba band in samples; 1 restricts
 *              the warping path to the diagonal (Euclidean distance on
 *              equal-length inputs, up to the sqrt)
 * @return accumulated L1 cost along the optimal warping path
 */
double dtwDistance(const std::vector<double> &a,
                   const std::vector<double> &b, std::size_t band);

/** Euclidean (L2) distance. @pre a.size() == b.size() */
double euclideanDistance(const std::vector<double> &a,
                         const std::vector<double> &b);

/**
 * Maximum normalised Pearson cross-correlation over lags in
 * [-max_lag, +max_lag]. @return value in [-1, 1]; 0 for degenerate input.
 */
double crossCorrelation(const std::vector<double> &a,
                        const std::vector<double> &b,
                        std::size_t max_lag);

/** Zero-lag Pearson correlation coefficient. */
double pearson(const std::vector<double> &a, const std::vector<double> &b);

/**
 * Fast 1-D Earth Mover's Distance between two non-negative "mass"
 * sequences: for 1-D histograms EMD reduces to the L1 distance between
 * cumulative distributions (the linear-time special case that makes the
 * microcontroller implementation feasible in the paper).
 *
 * Inputs are normalised to unit mass internally; all-zero input has zero
 * mass and compares equal to anything with zero distance.
 */
double emdDistance(const std::vector<double> &a,
                   const std::vector<double> &b);

/**
 * EMD between raw signals: the signals are shifted to be non-negative
 * (by the common minimum) and then compared with emdDistance().
 */
double emdSignalDistance(const std::vector<double> &a,
                         const std::vector<double> &b);

/** Which similarity measure a pipeline/hash is configured for. */
enum class Measure
{
    Euclidean,
    Dtw,
    Xcor,
    Emd,
};

/** Human-readable measure name ("DTW", "XCOR", ...). */
const char *measureName(Measure measure);

/**
 * Unified dissimilarity evaluation: distance-like for Euclidean/DTW/EMD,
 * and (1 - max cross-correlation) for XCOR so that smaller always means
 * more similar.
 */
double dissimilarity(Measure measure, const std::vector<double> &a,
                     const std::vector<double> &b);

} // namespace scalo::signal
