/**
 * @file
 * Signal-similarity measures used for seizure-propagation correlation and
 * spike-template matching (Section 2.2): dynamic time warping with a
 * Sakoe-Chiba band (the DTW PE; band = 1 degenerates to Euclidean
 * distance), Pearson cross-correlation (the XCOR PE), and the fast 1-D
 * Earth Mover's Distance computed on the microcontroller in the paper.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "scalo/util/aligned.hpp"

namespace scalo::signal {

class WindowBatch;

/**
 * Reusable workspace for the banded DTW kernels: the two rolling DP
 * rows plus the per-row cost/bound arrays the vectorized band pass
 * writes. One scratch serves any number of sequential calls — the
 * single aligned allocation grows to the largest row size seen and is
 * never shrunk, so a mixed-size candidate sweep reallocates at most
 * for its maximum and is allocation-free in steady state.
 */
class DtwScratch
{
  public:
    /** Four equally-sized aligned rows carved out of the workspace. */
    struct Rows
    {
        double *prev;
        double *curr;
        double *cost;
        double *bound;
        /** Doubles per row (>= m + 1, padded to the pack width). */
        std::size_t stride;
    };

    /**
     * Rows sized for a banded DP over @p m columns. Internal to the
     * DTW kernels; row contents are unspecified on return.
     */
    Rows rows(std::size_t m);

    /** Bytes currently allocated (churn introspection for tests). */
    std::size_t
    capacityBytes() const
    {
        return storage.capacity() * sizeof(double);
    }

    /** Times rows() had to reallocate (churn introspection). */
    std::size_t reallocations() const { return reallocCount; }

  private:
    util::AlignedBuffer<double> storage;
    std::size_t reallocCount = 0;
};

/**
 * Dynamic time warping distance with a Sakoe-Chiba band.
 *
 * @param a, b  equal- or different-length signals
 * @param band  half-width of the Sakoe-Chiba band in samples; 1 restricts
 *              the warping path to the diagonal (Euclidean distance on
 *              equal-length inputs, up to the sqrt)
 * @return accumulated L1 cost along the optimal warping path
 */
double dtwDistance(const std::vector<double> &a,
                   const std::vector<double> &b, std::size_t band);

/** As above, with caller-provided scratch (no per-call allocation). */
double dtwDistance(const std::vector<double> &a,
                   const std::vector<double> &b, std::size_t band,
                   DtwScratch &scratch);

/**
 * Banded DTW with early abandoning: rows are pruned against
 * @p cutoff. Because every warping path crosses each row of the
 * banded DP matrix and costs are non-negative, the minimum entry of a
 * row lower-bounds the final distance; once that minimum exceeds
 * @p cutoff the true distance provably does too.
 *
 * @return the exact DTW distance when it is <= @p cutoff; otherwise
 *         some lower bound of the true distance that is > @p cutoff
 *         (callers must only compare the result against @p cutoff)
 */
double dtwDistanceEarlyAbandon(const std::vector<double> &a,
                               const std::vector<double> &b,
                               std::size_t band, double cutoff,
                               DtwScratch &scratch);

/** Euclidean (L2) distance. @pre a.size() == b.size() */
double euclideanDistance(const std::vector<double> &a,
                         const std::vector<double> &b);

/** Squared L2 distance over @p n contiguous samples (no sqrt). */
double euclideanDistanceSquared(const double *a, const double *b,
                                std::size_t n);

/**
 * Batched Euclidean distance from one query window to many candidate
 * windows: accumulates squared distances and defers the sqrt to a
 * single final pass. Each candidate's accumulation sequence is
 * exactly that of euclideanDistanceSquared(), so the batched results
 * are bitwise equal to per-pair calls. @p out is sized to match
 * @p candidates.
 * @pre every candidate has query.size() samples
 */
void euclideanDistanceMany(
    const std::vector<double> &query,
    const std::vector<const std::vector<double> *> &candidates,
    std::vector<double> &out);

/** Allocating convenience overload of the batched kernel. */
std::vector<double> euclideanDistanceMany(
    const std::vector<double> &query,
    const std::vector<const std::vector<double> *> &candidates);

/**
 * Batched Euclidean distance against every row of a SoA batch. Same
 * per-candidate arithmetic as the pointer-list overload (bitwise
 * equal results); the contiguous aligned layout is what lets the
 * kernel stream candidates at full width.
 * @pre batch.windowSize() == query.size()
 */
void euclideanDistanceMany(const std::vector<double> &query,
                           const WindowBatch &batch,
                           std::vector<double> &out);

/**
 * As above over a row subset: @p out[i] is the distance from
 * @p query to batch row @p rows[i]. Row indices may repeat (shared
 * candidates across coalesced queries) and appear in any order.
 */
void euclideanDistanceMany(const std::vector<double> &query,
                           const WindowBatch &batch,
                           const std::vector<std::uint32_t> &rows,
                           std::vector<double> &out);

/**
 * One unit of deferred candidate verification: a query window and the
 * candidates awaiting an exact Euclidean confirm against it. Filled
 * by the caller, resolved by euclideanDistanceBatch().
 */
struct DistanceJob
{
    /** The probe; must outlive the batch call. */
    const std::vector<double> *query = nullptr;
    std::vector<const std::vector<double> *> candidates;
    /** Output, sized to match candidates by the batch call. */
    std::vector<double> distances;
};

/**
 * Cross-query batched verification: resolve every job's distances in
 * one sweep. Jobs sharing the same probe (pointer identity — e.g.
 * concurrent queries deduplicated onto one compiled plan) have their
 * candidate lists coalesced into a single euclideanDistanceMany()
 * call, amortising the probe's cache traffic across all of them.
 * Each candidate's distance is accumulated independently of its
 * position in the coalesced list, so every job's distances are
 * bit-identical to a per-job euclideanDistanceMany() call.
 */
void euclideanDistanceBatch(std::vector<DistanceJob> &jobs);

/**
 * One unit of deferred verification against a shared SoA batch: the
 * candidates are row indices into a WindowBatch the caller gathered
 * (letting queries with overlapping candidate sets share one copy of
 * each window). Resolved by the batch-consuming
 * euclideanDistanceBatch() overload.
 */
struct BatchDistanceJob
{
    /** The probe; must outlive the batch call. */
    const std::vector<double> *query = nullptr;
    std::vector<std::uint32_t> rows;
    /** Output, sized to match rows by the batch call. */
    std::vector<double> distances;
};

/**
 * Cross-query batched verification over one shared SoA batch. Jobs
 * sharing the same probe (pointer identity) have their row lists
 * coalesced into a single kernel sweep, exactly like the
 * DistanceJob overload; per-row distances are independent of their
 * position in the coalesced list, so every job's distances are
 * bitwise identical to a per-job euclideanDistanceMany() call.
 */
void euclideanDistanceBatch(const WindowBatch &batch,
                            std::vector<BatchDistanceJob> &jobs);

/**
 * Maximum normalised Pearson cross-correlation over lags in
 * [-max_lag, +max_lag]. @return value in [-1, 1]; 0 for degenerate input.
 */
double crossCorrelation(const std::vector<double> &a,
                        const std::vector<double> &b,
                        std::size_t max_lag);

/** Zero-lag Pearson correlation coefficient. */
double pearson(const std::vector<double> &a, const std::vector<double> &b);

/**
 * Fast 1-D Earth Mover's Distance between two non-negative "mass"
 * sequences: for 1-D histograms EMD reduces to the L1 distance between
 * cumulative distributions (the linear-time special case that makes the
 * microcontroller implementation feasible in the paper).
 *
 * Inputs are normalised to unit mass internally; all-zero input has zero
 * mass and compares equal to anything with zero distance.
 */
double emdDistance(const std::vector<double> &a,
                   const std::vector<double> &b);

/**
 * EMD between raw signals: the signals are shifted to be non-negative
 * (by the common minimum) and then compared with emdDistance().
 */
double emdSignalDistance(const std::vector<double> &a,
                         const std::vector<double> &b);

/** Which similarity measure a pipeline/hash is configured for. */
enum class Measure
{
    Euclidean,
    Dtw,
    Xcor,
    Emd,
};

/** Human-readable measure name ("DTW", "XCOR", ...). */
const char *measureName(Measure measure);

/**
 * Unified dissimilarity evaluation: distance-like for Euclidean/DTW/EMD,
 * and (1 - max cross-correlation) for XCOR so that smaller always means
 * more similar.
 */
double dissimilarity(Measure measure, const std::vector<double> &a,
                     const std::vector<double> &b);

} // namespace scalo::signal
