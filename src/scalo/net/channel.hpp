/**
 * @file
 * A lossy wireless channel: serialises packets, injects uniformly
 * random bit errors at the radio's BER, and applies the receiver's
 * accept/drop policy. Drives the network-error experiments of
 * Sections 6.6 and 6.7.
 */

#pragma once

#include <cstdint>

#include "scalo/net/packet.hpp"
#include "scalo/net/radio.hpp"
#include "scalo/util/rng.hpp"

namespace scalo::net {

/** Channel statistics accumulated across transmissions. */
struct ChannelStats
{
    std::uint64_t sent = 0;
    std::uint64_t bitsFlipped = 0;
    std::uint64_t headerDrops = 0;
    std::uint64_t payloadErrors = 0;
    std::uint64_t accepted = 0;

    /** Fraction of packets that arrived with any error. */
    double
    errorFraction() const
    {
        return sent ? static_cast<double>(headerDrops + payloadErrors) /
                          static_cast<double>(sent)
                    : 0.0;
    }
};

/** Point-to-point (or broadcast) lossy link at a fixed BER. */
class WirelessChannel
{
  public:
    /**
     * @param radio transmit/receive design (rate, power, BER)
     * @param seed  error-injection seed
     * @param ber_override replaces the radio's BER when >= 0 (for the
     *        BER sweeps of Figure 12)
     */
    WirelessChannel(const RadioSpec &radio, std::uint64_t seed,
                    double ber_override = -1.0);

    /** Send one packet through the channel; returns the receipt. */
    ReceiveResult transmit(const Packet &packet);

    const ChannelStats &stats() const { return counters; }
    const RadioSpec &radio() const { return *spec; }
    double ber() const { return berValue; }

    /**
     * Retarget the channel's BER mid-stream (fault injection drives
     * this per time window: BER spikes raise it over an interval and
     * restore the baseline afterwards). @pre ber in [0, 1]
     */
    void setBer(double ber);

    /**
     * Force a total outage: while set, every transmission is lost
     * deterministically (header corrupt, no RNG draws), modelling a
     * radio dropout window rather than elevated bit errors.
     */
    void setOutage(bool outage) { outageActive = outage; }
    bool outage() const { return outageActive; }

    /** Reset statistics. */
    void resetStats() { counters = {}; }

  private:
    const RadioSpec *spec;
    double berValue;
    bool outageActive = false;
    Rng rng;
    ChannelStats counters;
};

} // namespace scalo::net
