/**
 * @file
 * Heartbeat-based failure detection on the TDMA exchange rounds
 * (Section 3.4): every networked flow already gives each sender a slot
 * per round, so the slots double as heartbeats — no extra packets or
 * power. A node that misses @ref missThreshold consecutive expected
 * slots is declared dead; a declared-dead node that transmits again is
 * declared recovered. Worst-case detection latency is therefore
 * `missThreshold * round + deadline` — the math the degradation tests
 * and DESIGN.md's fault-model section pin down.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "scalo/units/units.hpp"

namespace scalo::net {

/** Per-node consecutive-miss counter with a death threshold. */
class HeartbeatDetector
{
  public:
    /**
     * @param nodes          network size
     * @param miss_threshold consecutive missed slots before a node
     *                       is declared dead
     */
    explicit HeartbeatDetector(std::size_t nodes,
                               std::size_t miss_threshold = 3);

    /**
     * Record one expected-but-silent slot of @p node.
     * @return true when this miss crosses the threshold (the node is
     *         newly declared dead)
     */
    bool recordMiss(std::size_t node);

    /**
     * Record a successful transmission of @p node.
     * @return true when the node was declared dead (newly recovered)
     */
    bool recordHeard(std::size_t node);

    /** Whether @p node is currently declared dead. */
    bool dead(std::size_t node) const;

    /** Consecutive misses accumulated against @p node. */
    std::size_t consecutiveMisses(std::size_t node) const;

    std::size_t missThreshold() const { return threshold; }
    std::size_t nodeCount() const { return misses.size(); }

    /** Indices of all currently-declared-dead nodes, ascending. */
    std::vector<std::size_t> deadNodes() const;

    /**
     * Worst-case detection latency for a detector whose observations
     * arrive every @p cadence, @p observations_per_interval times per
     * interval. A crash can land just after a heard observation, so
     * detection takes one full extra interval plus however many
     * intervals it takes to accumulate @ref missThreshold misses.
     *
     * Intra-cluster detectors observe one slot per TDMA round
     * (observations_per_interval = 1, cadence = round), reducing to
     * the classic `(threshold + 1) * round`. A backbone-cadence
     * detector hears each cluster once per networked flow per window,
     * so it passes the window as @p cadence and the networked flow
     * count as @p observations_per_interval and gets an honest —
     * tighter — bound instead of one expressed in the wrong cadence.
     */
    units::Millis
    detectionLatency(units::Millis cadence,
                     std::size_t observations_per_interval = 1) const
    {
        const std::size_t per =
            observations_per_interval == 0 ? 1 : observations_per_interval;
        const std::size_t intervals = (threshold + per - 1) / per;
        return static_cast<double>(intervals + 1) * cadence;
    }

  private:
    std::size_t threshold;
    std::vector<std::size_t> misses;
    std::vector<char> declaredDead;
};

} // namespace scalo::net
