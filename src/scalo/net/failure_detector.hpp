/**
 * @file
 * Heartbeat-based failure detection on the TDMA exchange rounds
 * (Section 3.4): every networked flow already gives each sender a slot
 * per round, so the slots double as heartbeats — no extra packets or
 * power. A node that misses @ref missThreshold consecutive expected
 * slots is declared dead; a declared-dead node that transmits again is
 * declared recovered. Worst-case detection latency is therefore
 * `missThreshold * round + deadline` — the math the degradation tests
 * and DESIGN.md's fault-model section pin down.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "scalo/units/units.hpp"

namespace scalo::net {

/** Per-node consecutive-miss counter with a death threshold. */
class HeartbeatDetector
{
  public:
    /**
     * @param nodes          network size
     * @param miss_threshold consecutive missed slots before a node
     *                       is declared dead
     */
    explicit HeartbeatDetector(std::size_t nodes,
                               std::size_t miss_threshold = 3);

    /**
     * Record one expected-but-silent slot of @p node.
     * @return true when this miss crosses the threshold (the node is
     *         newly declared dead)
     */
    bool recordMiss(std::size_t node);

    /**
     * Record a successful transmission of @p node.
     * @return true when the node was declared dead (newly recovered)
     */
    bool recordHeard(std::size_t node);

    /** Whether @p node is currently declared dead. */
    bool dead(std::size_t node) const;

    /** Consecutive misses accumulated against @p node. */
    std::size_t consecutiveMisses(std::size_t node) const;

    std::size_t missThreshold() const { return threshold; }
    std::size_t nodeCount() const { return misses.size(); }

    /** Indices of all currently-declared-dead nodes, ascending. */
    std::vector<std::size_t> deadNodes() const;

    /**
     * Worst-case detection latency when rounds recur every @p round:
     * the crash can land just after a heard slot, so detection takes
     * a full threshold of further rounds.
     */
    units::Millis
    detectionLatency(units::Millis round) const
    {
        return static_cast<double>(threshold + 1) * round;
    }

  private:
    std::size_t threshold;
    std::vector<std::size_t> misses;
    std::vector<char> declaredDead;
};

} // namespace scalo::net
