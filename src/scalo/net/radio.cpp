#include "scalo/net/radio.hpp"

#include <cmath>

#include "scalo/util/logging.hpp"

namespace scalo::net {

namespace {

const std::vector<RadioSpec> kCatalog{
    {"Low Power", 1e-5, 7.0, 1.71, 20.0, 4.12},
    {"High Perf", 1e-6, 14.0, 6.85, 20.0, 4.12},
    {"Low BER", 1e-6, 7.0, 3.4, 20.0, 4.12},
    {"Low Data Rate", 1e-5, 3.5, 0.855, 20.0, 4.12},
};

const RadioSpec kExternal{"External", 1e-5, 46.0, 9.2, 1'000.0, 0.25};

} // namespace

const std::vector<RadioSpec> &
radioCatalog()
{
    return kCatalog;
}

const RadioSpec &
radioSpec(RadioDesign design)
{
    switch (design) {
      case RadioDesign::LowPower:
        return kCatalog[0];
      case RadioDesign::HighPerf:
        return kCatalog[1];
      case RadioDesign::LowBer:
        return kCatalog[2];
      case RadioDesign::LowDataRate:
        return kCatalog[3];
    }
    SCALO_PANIC("unknown radio design");
}

const RadioSpec &
defaultRadio()
{
    return radioSpec(RadioDesign::LowPower);
}

const RadioSpec &
externalRadio()
{
    return kExternal;
}

double
powerAtDistanceMw(const RadioSpec &spec, double distance_cm)
{
    SCALO_ASSERT(distance_cm > 0.0, "distance must be positive");
    return spec.powerMw *
           std::pow(distance_cm / spec.rangeCm, kPathLossExponent);
}

} // namespace scalo::net
