#include "scalo/net/radio.hpp"

#include <cmath>

#include "scalo/util/contracts.hpp"
#include "scalo/util/logging.hpp"

namespace scalo::net {

namespace {

using namespace units::literals;

const std::vector<RadioSpec> kCatalog{
    {"Low Power", 1e-5, 7.0_Mbps, 1.71_mW, 20.0_cm, 4.12_GHz},
    {"High Perf", 1e-6, 14.0_Mbps, 6.85_mW, 20.0_cm, 4.12_GHz},
    {"Low BER", 1e-6, 7.0_Mbps, 3.4_mW, 20.0_cm, 4.12_GHz},
    {"Low Data Rate", 1e-5, 3.5_Mbps, 0.855_mW, 20.0_cm, 4.12_GHz},
};

const RadioSpec kExternal{"External", 1e-5,      46.0_Mbps,
                          9.2_mW,     1'000.0_cm, 0.25_GHz};

} // namespace

const std::vector<RadioSpec> &
radioCatalog()
{
    return kCatalog;
}

const RadioSpec &
radioSpec(RadioDesign design)
{
    switch (design) {
      case RadioDesign::LowPower:
        return kCatalog[0];
      case RadioDesign::HighPerf:
        return kCatalog[1];
      case RadioDesign::LowBer:
        return kCatalog[2];
      case RadioDesign::LowDataRate:
        return kCatalog[3];
    }
    SCALO_PANIC("unknown radio design");
}

const RadioSpec &
defaultRadio()
{
    return radioSpec(RadioDesign::LowPower);
}

const RadioSpec &
externalRadio()
{
    return kExternal;
}

units::Milliwatts
powerAtDistance(const RadioSpec &spec, units::Centimetres distance)
{
    SCALO_ASSERT(distance.count() > 0.0, "distance must be positive");
    SCALO_EXPECTS(spec.ber >= 0.0 && spec.ber <= 1.0);
    return spec.power *
           std::pow(distance / spec.range, kPathLossExponent);
}

} // namespace scalo::net
