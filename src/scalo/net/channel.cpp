#include "scalo/net/channel.hpp"

#include "scalo/util/contracts.hpp"

namespace scalo::net {

WirelessChannel::WirelessChannel(const RadioSpec &radio,
                                 std::uint64_t seed, double ber_override)
    : spec(&radio),
      berValue(ber_override >= 0.0 ? ber_override : radio.ber),
      rng(seed)
{
    SCALO_EXPECTS(berValue >= 0.0 && berValue <= 1.0);
}

void
WirelessChannel::setBer(double ber)
{
    SCALO_EXPECTS(ber >= 0.0 && ber <= 1.0);
    berValue = ber;
}

ReceiveResult
WirelessChannel::transmit(const Packet &packet)
{
    if (outageActive) {
        // The medium is gone: the packet is counted but nothing
        // parseable arrives. No RNG draw, so outage windows do not
        // shift the error sequence of the surrounding stream.
        ++counters.sent;
        ++counters.headerDrops;
        return {};
    }
    auto wire = serialize(packet);
    counters.bitsFlipped += injectBitErrors(wire, berValue, rng);
    ReceiveResult result = deserialize(wire);
    ++counters.sent;
    if (!result.headerOk)
        ++counters.headerDrops;
    else if (!result.payloadOk)
        ++counters.payloadErrors;
    if (result.accepted())
        ++counters.accepted;
    return result;
}

} // namespace scalo::net
