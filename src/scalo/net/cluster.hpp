/**
 * @file
 * Hierarchical fabric partitioning. A ClusterPlan splits the fabric's
 * nodes into clusters that each run their own TDMA rounds on an
 * independent medium; one designated relay node per cluster carries
 * aggregated inter-cluster traffic on a shared backbone schedule.
 * The degenerate single-cluster plan reproduces the original flat
 * medium exactly, so every small-N figure is unchanged.
 */

#pragma once

#include <cstddef>
#include <vector>

namespace scalo::net {

/**
 * Partition of node ids [0, nodeCount) into contiguous clusters.
 *
 * Clusters are contiguous id ranges: cluster c owns
 * [offset(c), offset(c+1)). Contiguity keeps membership O(1) and
 * makes generated topologies easy to reason about; physical layouts
 * that want a different grouping can renumber nodes.
 *
 * The relay of a cluster is its first *alive* member; with no alive
 * mask it is simply the first member. Relay duty migrates to the
 * next surviving member when nodes die.
 */
class ClusterPlan
{
  public:
    /** Empty plan; callers treat it as flat over their node count. */
    ClusterPlan() = default;

    /** One cluster holding every node: the legacy flat medium. */
    static ClusterPlan flat(std::size_t node_count);

    /**
     * @p cluster_count clusters of near-equal size (larger clusters
     * first when @p node_count does not divide evenly).
     */
    static ClusterPlan balanced(std::size_t node_count,
                                std::size_t cluster_count);

    /** True when default-constructed (no partition recorded). */
    bool empty() const { return offsets.empty(); }

    /** Number of nodes partitioned. */
    std::size_t nodeCount() const;

    /** Number of clusters (0 for an empty plan). */
    std::size_t clusterCount() const;

    /** Cluster owning node @p node. */
    std::size_t clusterOf(std::size_t node) const;

    /** First node id of cluster @p cluster. */
    std::size_t firstOf(std::size_t cluster) const;

    /** Number of nodes in cluster @p cluster. */
    std::size_t sizeOf(std::size_t cluster) const;

    /** Member node ids of cluster @p cluster, ascending. */
    std::vector<std::size_t> members(std::size_t cluster) const;

    /**
     * Sentinel returned by the alive-masked @ref relay when every
     * member of the cluster is down: there is no node left to carry
     * backbone duty, and callers must not address the (dead) first
     * member as if it could.
     */
    static constexpr std::size_t kNoRelay = static_cast<std::size_t>(-1);

    /**
     * Relay node of cluster @p cluster: the first member for which
     * @p is_alive returns true, or @ref kNoRelay when every member is
     * down (the cluster has nothing alive to forward for — callers
     * skip the backbone hop instead of addressing a corpse).
     */
    template <typename AliveFn>
    std::size_t
    relay(std::size_t cluster, AliveFn &&is_alive) const
    {
        const std::size_t first = firstOf(cluster);
        const std::size_t size = sizeOf(cluster);
        for (std::size_t i = 0; i < size; ++i)
            if (is_alive(first + i))
                return first + i;
        return kNoRelay;
    }

    /** Relay with every node assumed alive: the first member. */
    std::size_t
    relay(std::size_t cluster) const
    {
        return firstOf(cluster);
    }

    /**
     * Fraction of each networked flow's round budget reserved for
     * the inter-cluster backbone; the remainder funds intra-cluster
     * rounds. Ignored by single-cluster plans (the flat medium keeps
     * the whole budget).
     */
    double backboneShare = 0.5;

    /** Contract-check the partition (contiguous, non-empty, share). */
    void validate() const;

    bool operator==(const ClusterPlan &other) const = default;

  private:
    /**
     * Cluster boundaries: offsets[c] is the first node of cluster c
     * and offsets.back() == nodeCount(). Size clusterCount()+1 when
     * non-empty.
     */
    std::vector<std::size_t> offsets;
};

} // namespace scalo::net
