#include "scalo/net/tdma.hpp"

#include <algorithm>

#include "scalo/util/logging.hpp"

namespace scalo::net {

TdmaSchedule::TdmaSchedule(const RadioSpec &radio,
                           std::size_t node_count, double guard_us)
    : spec(&radio), nodes(node_count), guardUs(guard_us)
{
    SCALO_ASSERT(node_count >= 1, "need at least one node");
    SCALO_ASSERT(guard_us >= 0.0, "negative guard time");
}

double
TdmaSchedule::slotMs(std::size_t payload_bytes) const
{
    const std::size_t wire = wireBytesFor(payload_bytes);
    return spec->transferMs(static_cast<double>(wire)) +
           guardUs / 1'000.0;
}

double
TdmaSchedule::exchangeMs(Pattern pattern,
                         std::size_t payload_bytes_per_node) const
{
    switch (pattern) {
      case Pattern::OneToAll:
        // A broadcast occupies one slot regardless of node count.
        return slotMs(payload_bytes_per_node);
      case Pattern::AllToAll:
        // Single-frequency TDMA: each node's broadcast is serial.
        return static_cast<double>(nodes) *
               slotMs(payload_bytes_per_node);
      case Pattern::AllToOne:
        // All nodes except the aggregator transmit serially.
        return static_cast<double>(nodes > 0 ? nodes - 1 : 0) *
               slotMs(payload_bytes_per_node);
    }
    SCALO_PANIC("unknown pattern");
}

double
TdmaSchedule::perNodeGoodputMbps(
    std::size_t payload_bytes_per_slot) const
{
    const double round_ms =
        static_cast<double>(nodes) * slotMs(payload_bytes_per_slot);
    const double bits =
        static_cast<double>(payload_bytes_per_slot) * 8.0;
    return bits / (round_ms * 1e-3) / 1e6;
}

std::size_t
TdmaSchedule::budgetBytes(double budget_ms, std::size_t senders) const
{
    SCALO_ASSERT(senders >= 1, "need at least one sender");
    const double per_sender_ms =
        budget_ms / static_cast<double>(senders);
    // Binary search the largest payload whose slot fits.
    std::size_t lo = 0, hi = 1u << 24;
    while (lo < hi) {
        const std::size_t mid = lo + (hi - lo + 1) / 2;
        if (slotMs(mid) <= per_sender_ms)
            lo = mid;
        else
            hi = mid - 1;
    }
    return lo;
}

} // namespace scalo::net
