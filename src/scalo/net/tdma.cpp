#include "scalo/net/tdma.hpp"

#include <algorithm>

#include "scalo/util/contracts.hpp"
#include "scalo/util/logging.hpp"

namespace scalo::net {

using namespace units::literals;

TdmaSchedule::TdmaSchedule(const RadioSpec &radio,
                           std::size_t node_count, units::Micros guard)
    : spec(&radio), nodes(node_count), guard(guard)
{
    SCALO_ASSERT(node_count >= 1, "need at least one node");
    SCALO_ASSERT(guard.count() >= 0.0, "negative guard time");
}

units::Millis
TdmaSchedule::slotTime(std::size_t payload_bytes) const
{
    const std::size_t wire = wireBytesFor(payload_bytes);
    return spec->transferTime(
               units::Bytes{static_cast<double>(wire)}) +
           guard;
}

units::Millis
TdmaSchedule::exchangeTime(Pattern pattern,
                           std::size_t payload_bytes_per_node) const
{
    switch (pattern) {
      case Pattern::OneToAll:
        // A broadcast occupies one slot regardless of node count.
        return slotTime(payload_bytes_per_node);
      case Pattern::AllToAll:
        // Single-frequency TDMA: each node's broadcast is serial.
        return static_cast<double>(nodes) *
               slotTime(payload_bytes_per_node);
      case Pattern::AllToOne:
        // All nodes except the aggregator transmit serially.
        return static_cast<double>(nodes > 0 ? nodes - 1 : 0) *
               slotTime(payload_bytes_per_node);
    }
    SCALO_PANIC("unknown pattern");
}

units::MegabitsPerSecond
TdmaSchedule::perNodeGoodput(std::size_t payload_bytes_per_slot) const
{
    const units::Millis round =
        static_cast<double>(nodes) * slotTime(payload_bytes_per_slot);
    const units::Bytes payload{
        static_cast<double>(payload_bytes_per_slot)};
    return payload / round;
}

std::size_t
TdmaSchedule::budgetBytes(units::Millis budget,
                          std::size_t senders) const
{
    SCALO_ASSERT(senders >= 1, "need at least one sender");
    SCALO_EXPECTS(budget.count() >= 0.0);
    const units::Millis per_sender =
        budget / static_cast<double>(senders);
    // Binary search the largest payload whose slot fits.
    std::size_t lo = 0, hi = 1u << 24;
    while (lo < hi) {
        const std::size_t mid = lo + (hi - lo + 1) / 2;
        if (slotTime(mid) <= per_sender)
            lo = mid;
        else
            hi = mid - 1;
    }
    return lo;
}

} // namespace scalo::net
