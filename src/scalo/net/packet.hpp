/**
 * @file
 * Intra-SCALO network packets (Section 3.4): an 84-bit header, up to
 * 256 B of data, and CRC32 checksums on both header and data. On a
 * checksum error the receiver drops hash packets but keeps signal
 * packets (signal-similarity measures tolerate a few bit errors;
 * hashes do not).
 */

#pragma once

#include <cstdint>
#include <vector>

#include "scalo/util/rng.hpp"

namespace scalo::net {

/** Payload category; drives the receiver's drop-vs-accept policy. */
enum class PacketType : std::uint8_t
{
    Hash = 0,     ///< compressed hash batch
    Signal,       ///< raw signal window(s)
    Feature,      ///< extracted features (e.g. SBP for the KF)
    Partial,      ///< partial classifier outputs (SVM/NN)
    Command,      ///< stimulation / configuration command
    Query,        ///< interactive query request
    QueryResult,  ///< interactive query response chunk
    ClockSync,    ///< SNTP message
};

/** Maximum payload per packet (bytes). */
inline constexpr std::size_t kMaxPayloadBytes = 256;

/** Header size: 84 bits packed into 11 bytes on the wire. */
inline constexpr std::size_t kHeaderBytes = 11;

/** Full per-packet overhead: header + two CRC32s. */
inline constexpr std::size_t kPacketOverheadBytes = kHeaderBytes + 8;

/** An intra-SCALO packet before serialisation. */
struct Packet
{
    std::uint8_t source = 0;
    std::uint8_t destination = 0; ///< 0xff broadcasts
    PacketType type = PacketType::Hash;
    std::uint16_t sequence = 0;
    std::uint32_t timestampUs = 0;
    std::vector<std::uint8_t> payload;

    /** Bytes this packet occupies on the wire. */
    std::size_t wireBytes() const;
};

/** Broadcast destination address. */
inline constexpr std::uint8_t kBroadcast = 0xff;

/** Serialise to wire format (header, header CRC, payload, data CRC). */
std::vector<std::uint8_t> serialize(const Packet &packet);

/** Outcome of parsing a (possibly corrupted) wire buffer. */
struct ReceiveResult
{
    /** Header passed its CRC and parsed cleanly. */
    bool headerOk = false;
    /** Payload CRC verified. */
    bool payloadOk = false;
    /** Parsed packet (valid only if headerOk). */
    Packet packet;

    /**
     * The receiver policy of Section 3.4: drop on any header error;
     * drop hash packets with payload errors; keep erroneous signal
     * payloads (similarity measures absorb them).
     */
    bool accepted() const;
};

/** Parse a wire buffer. */
ReceiveResult deserialize(const std::vector<std::uint8_t> &wire);

/**
 * Flip each bit of @p wire independently with probability @p ber
 * (uniformly random bit errors, Section 6.6).
 * @return number of bits flipped
 */
std::size_t injectBitErrors(std::vector<std::uint8_t> &wire, double ber,
                            Rng &rng);

/**
 * Split an oversized payload into packet-sized chunks; every chunk
 * carries the full header+CRC overhead.
 */
std::vector<Packet> fragment(const Packet &packet);

/** Wire bytes required to carry @p payload_bytes of one type. */
std::size_t wireBytesFor(std::size_t payload_bytes);

} // namespace scalo::net
