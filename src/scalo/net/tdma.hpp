/**
 * @file
 * The intra-SCALO TDMA protocol (Section 3.4): the implant radios share
 * one frequency to save power, so network access is serial. The ILP
 * emits a fixed slot schedule; this model computes exchange times for
 * the communication patterns of the evaluation (one-to-all broadcast,
 * all-to-all, all-to-one aggregation).
 */

#pragma once

#include <cstddef>
#include <vector>

#include "scalo/net/packet.hpp"
#include "scalo/net/radio.hpp"

namespace scalo::net {

/** Communication patterns of Section 6.2. */
enum class Pattern
{
    OneToAll, ///< one node broadcasts (e.g. local seizure detected)
    AllToAll, ///< every node broadcasts (brain-wide correlation)
    AllToOne, ///< every node sends to an aggregator (MI pipelines)
};

/** Fixed TDMA slot schedule over the shared single-frequency channel. */
class TdmaSchedule
{
  public:
    /**
     * @param radio        the shared radio design
     * @param node_count   implants on the network
     * @param guard        inter-slot guard time (radio turnaround)
     */
    TdmaSchedule(const RadioSpec &radio, std::size_t node_count,
                 units::Micros guard = units::Micros{20.0});

    std::size_t nodeCount() const { return nodes; }
    const RadioSpec &radio() const { return *spec; }

    /**
     * Time for one node to put @p payload_bytes on the air,
     * including per-packet overhead and the slot guard.
     */
    units::Millis slotTime(std::size_t payload_bytes) const;

    /**
     * Time to complete one round of @p pattern in which each
     * sending node contributes @p payload_bytes_per_node.
     */
    units::Millis exchangeTime(Pattern pattern,
                               std::size_t payload_bytes_per_node) const;

    /**
     * Sustained per-node goodput (payload only) when all nodes
     * stream continuously under TDMA.
     */
    units::MegabitsPerSecond
    perNodeGoodput(std::size_t payload_bytes_per_slot) const;

    /**
     * Payload bytes one node can send within @p budget when the
     * round is shared by @p senders nodes.
     */
    std::size_t budgetBytes(units::Millis budget,
                            std::size_t senders) const;

  private:
    const RadioSpec *spec;
    std::size_t nodes;
    units::Micros guard;
};

} // namespace scalo::net
