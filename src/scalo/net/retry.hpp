/**
 * @file
 * Bounded retransmission policy for the intra-SCALO network: a fixed
 * attempt budget, exponential backoff with deterministic seeded
 * jitter, and a per-exchange deadline after which an exchange round
 * proceeds with whichever senders are ready. Replaces the unbounded
 * retransmit-until-accepted loop: on a lossy or partitioned medium an
 * unbounded loop turns one dead peer into a system-wide stall, which
 * is exactly what a safety-critical closed-loop BCI cannot afford
 * (Section 6.6's error experiments assume the happy path; the fault
 * runs do not).
 */

#pragma once

#include <cstddef>

#include "scalo/units/units.hpp"
#include "scalo/util/rng.hpp"

namespace scalo::net {

/** Retransmission budget and backoff shape for one packet. */
struct RetryPolicy
{
    /** Total transmission attempts per fragment (first + retries). */
    std::size_t maxAttempts = 4;
    /** Backoff before the first retry. */
    units::Micros backoffBase{50.0};
    /** Growth factor between consecutive retries. */
    double backoffMultiplier = 2.0;
    /**
     * Fraction of the backoff randomised symmetrically around the
     * nominal value. Draws come from a caller-seeded Rng, so a fixed
     * seed reproduces the exact backoff sequence.
     */
    double jitterFraction = 0.25;
    /**
     * Deadline for an exchange round to assemble all of its senders,
     * measured from the first sender becoming ready; once it expires
     * the round runs with the ready subset and absent senders are
     * counted as missed heartbeats. Zero means "one flow window".
     */
    units::Millis exchangeDeadline{0.0};

    /**
     * Whether attempt @p attempt (0-based) may be followed by
     * another.
     */
    bool
    shouldRetry(std::size_t attempt) const
    {
        return attempt + 1 < maxAttempts;
    }

    /**
     * Backoff before retry number @p retry (1-based: the wait between
     * attempt retry-1 and attempt retry), jittered from @p rng.
     */
    units::Micros backoff(std::size_t retry, Rng &rng) const;

    /** Worst-case total backoff across a full attempt budget. */
    units::Micros maxTotalBackoff() const;

    /** Contract-check the configuration. */
    void validate() const;
};

} // namespace scalo::net
