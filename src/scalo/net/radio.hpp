/**
 * @file
 * Radio models (Sections 3.4, 5 and 7). Each SCALO node carries two
 * radios: an external one for communication with devices up to 10 m
 * away, and an intra-SCALO radio derived from a safe-implantation FDD
 * design [107], modified for symmetric transmit/receive over <= 20 cm
 * (beyond the 90th-percentile head breadth). Path loss through brain,
 * skull and skin uses the IEEE 802.15.4a model with exponent 3.5.
 */

#pragma once

#include <string_view>
#include <vector>

#include "scalo/units/units.hpp"

namespace scalo::net {

/** One radio design point (Table 3 + the external radio). */
struct RadioSpec
{
    std::string_view name;
    double ber;                       ///< bit error rate, in [0, 1]
    units::MegabitsPerSecond dataRate; ///< symmetric TX/RX rate
    units::Milliwatts power;          ///< active power
    units::Centimetres range;         ///< design transmission distance
    units::Gigahertz carrier;         ///< carrier frequency

    /** Time to move @p bytes across this link. */
    units::Millis
    transferTime(units::Bytes bytes) const
    {
        return bytes / dataRate;
    }

    /** Energy to move @p bytes across this link. */
    units::Millijoules
    transferEnergy(units::Bytes bytes) const
    {
        return power * transferTime(bytes);
    }

};

/** Named intra-SCALO design points of Table 3. */
enum class RadioDesign
{
    LowPower,    ///< the default: BER 1e-5, 7 Mbps, 1.71 mW
    HighPerf,    ///< BER 1e-6, 14 Mbps, 6.85 mW
    LowBer,      ///< BER 1e-6, 7 Mbps, 3.4 mW
    LowDataRate, ///< BER 1e-5, 3.5 Mbps, 0.855 mW
};

/** Intra-SCALO radio catalog (Table 3). */
const std::vector<RadioSpec> &radioCatalog();

/** Spec of a Table 3 design point. */
const RadioSpec &radioSpec(RadioDesign design);

/** The default intra-SCALO radio (Low Power). */
const RadioSpec &defaultRadio();

/** The external radio: 46 Mbps at 9.2 mW over up to 10 m (from HALO). */
const RadioSpec &externalRadio();

/** IEEE 802.15.4a path-loss exponent through brain/skull/skin. */
inline constexpr double kPathLossExponent = 3.5;

/**
 * Transmit power needed to close the same link budget at
 * @p distance instead of the spec's design range, holding data rate
 * and BER fixed: P(d) = P0 * (d / d0)^3.5.
 */
units::Milliwatts powerAtDistance(const RadioSpec &spec,
                                  units::Centimetres distance);

} // namespace scalo::net
