#include "scalo/net/packet.hpp"

#include "scalo/util/bitstream.hpp"
#include "scalo/util/crc32.hpp"
#include "scalo/util/logging.hpp"

namespace scalo::net {

std::size_t
Packet::wireBytes() const
{
    return kPacketOverheadBytes + payload.size();
}

std::size_t
wireBytesFor(std::size_t payload_bytes)
{
    std::size_t total = 0;
    std::size_t remaining = payload_bytes;
    do {
        const std::size_t chunk =
            std::min(remaining, kMaxPayloadBytes);
        total += kPacketOverheadBytes + chunk;
        remaining -= chunk;
    } while (remaining > 0);
    return total;
}

std::vector<std::uint8_t>
serialize(const Packet &packet)
{
    SCALO_ASSERT(packet.payload.size() <= kMaxPayloadBytes,
                 "payload ", packet.payload.size(), " exceeds ",
                 kMaxPayloadBytes);

    // 84-bit header: src(8) dst(8) type(4) seq(16) time(32) len(16).
    BitWriter writer;
    writer.putBits(packet.source, 8);
    writer.putBits(packet.destination, 8);
    writer.putBits(static_cast<std::uint8_t>(packet.type) & 0xf, 4);
    writer.putBits(packet.sequence, 16);
    writer.putBits(packet.timestampUs, 32);
    writer.putBits(packet.payload.size(), 16);
    std::vector<std::uint8_t> header = writer.take();
    SCALO_ASSERT(header.size() == kHeaderBytes, "header is ",
                 header.size(), " bytes");

    std::vector<std::uint8_t> wire = header;
    const std::uint32_t header_crc = crc32(header);
    for (int i = 3; i >= 0; --i)
        wire.push_back(
            static_cast<std::uint8_t>((header_crc >> (8 * i)) & 0xff));

    wire.insert(wire.end(), packet.payload.begin(),
                packet.payload.end());
    const std::uint32_t data_crc = crc32(packet.payload);
    for (int i = 3; i >= 0; --i)
        wire.push_back(
            static_cast<std::uint8_t>((data_crc >> (8 * i)) & 0xff));
    return wire;
}

ReceiveResult
deserialize(const std::vector<std::uint8_t> &wire)
{
    ReceiveResult result;
    if (wire.size() < kPacketOverheadBytes)
        return result;

    const std::vector<std::uint8_t> header(wire.begin(),
                                           wire.begin() + kHeaderBytes);
    std::uint32_t stored_header_crc = 0;
    for (std::size_t i = 0; i < 4; ++i)
        stored_header_crc =
            (stored_header_crc << 8) | wire[kHeaderBytes + i];
    if (crc32(header) != stored_header_crc)
        return result; // header corrupt: undecodable, always dropped

    BitReader reader(header);
    result.packet.source = static_cast<std::uint8_t>(reader.getBits(8));
    result.packet.destination =
        static_cast<std::uint8_t>(reader.getBits(8));
    result.packet.type = static_cast<PacketType>(reader.getBits(4));
    result.packet.sequence =
        static_cast<std::uint16_t>(reader.getBits(16));
    result.packet.timestampUs =
        static_cast<std::uint32_t>(reader.getBits(32));
    const auto length = reader.getBits(16);
    if (wire.size() != kPacketOverheadBytes + length)
        return result; // truncated or length corrupted past the CRC
    result.headerOk = true;

    result.packet.payload.assign(
        wire.begin() + kHeaderBytes + 4,
        wire.begin() + kHeaderBytes + 4 + length);
    std::uint32_t stored_data_crc = 0;
    for (std::size_t i = 0; i < 4; ++i)
        stored_data_crc = (stored_data_crc << 8) |
                          wire[kHeaderBytes + 4 + length + i];
    result.payloadOk = crc32(result.packet.payload) == stored_data_crc;
    return result;
}

bool
ReceiveResult::accepted() const
{
    if (!headerOk)
        return false;
    if (payloadOk)
        return true;
    // Erroneous payloads flow through only for signal packets.
    return packet.type == PacketType::Signal;
}

std::size_t
injectBitErrors(std::vector<std::uint8_t> &wire, double ber, Rng &rng)
{
    if (ber <= 0.0 || wire.empty())
        return 0;
    std::size_t flipped = 0;
    for (auto &byte : wire) {
        for (int bit = 0; bit < 8; ++bit) {
            if (rng.chance(ber)) {
                byte ^= static_cast<std::uint8_t>(1u << bit);
                ++flipped;
            }
        }
    }
    return flipped;
}

std::vector<Packet>
fragment(const Packet &packet)
{
    std::vector<Packet> fragments;
    std::size_t offset = 0;
    std::uint16_t seq = packet.sequence;
    do {
        Packet chunk = packet;
        chunk.sequence = seq++;
        const std::size_t take =
            std::min(kMaxPayloadBytes, packet.payload.size() - offset);
        chunk.payload.assign(packet.payload.begin() + offset,
                             packet.payload.begin() + offset + take);
        fragments.push_back(std::move(chunk));
        offset += take;
    } while (offset < packet.payload.size());
    return fragments;
}

} // namespace scalo::net
