#include "scalo/net/retry.hpp"

#include <cmath>

#include "scalo/util/contracts.hpp"

namespace scalo::net {

units::Micros
RetryPolicy::backoff(std::size_t retry, Rng &rng) const
{
    SCALO_EXPECTS(retry >= 1);
    validate();
    const double nominal =
        backoffBase.count() *
        std::pow(backoffMultiplier, static_cast<double>(retry - 1));
    // Symmetric jitter in [-jitterFraction, +jitterFraction): one
    // uniform draw per backoff, so the sequence is seed-deterministic.
    const double jitter =
        jitterFraction > 0.0
            ? 1.0 + jitterFraction * (2.0 * rng.uniform() - 1.0)
            : 1.0;
    return units::Micros{nominal * jitter};
}

units::Micros
RetryPolicy::maxTotalBackoff() const
{
    validate();
    double total = 0.0;
    for (std::size_t retry = 1; retry < maxAttempts; ++retry)
        total += backoffBase.count() *
                 std::pow(backoffMultiplier,
                          static_cast<double>(retry - 1)) *
                 (1.0 + jitterFraction);
    return units::Micros{total};
}

void
RetryPolicy::validate() const
{
    SCALO_EXPECTS(maxAttempts >= 1);
    SCALO_EXPECTS(backoffBase.count() >= 0.0);
    SCALO_EXPECTS(backoffMultiplier >= 1.0);
    SCALO_EXPECTS(jitterFraction >= 0.0 && jitterFraction < 1.0);
    SCALO_EXPECTS(exchangeDeadline.count() >= 0.0);
}

} // namespace scalo::net
