#include "scalo/net/cluster.hpp"

#include <algorithm>

#include "scalo/util/contracts.hpp"

namespace scalo::net {

ClusterPlan
ClusterPlan::flat(std::size_t node_count)
{
    return balanced(node_count, 1);
}

ClusterPlan
ClusterPlan::balanced(std::size_t node_count,
                      std::size_t cluster_count)
{
    SCALO_EXPECTS(node_count > 0);
    SCALO_EXPECTS(cluster_count > 0);
    SCALO_EXPECTS(cluster_count <= node_count);
    ClusterPlan plan;
    plan.offsets.reserve(cluster_count + 1);
    const std::size_t base = node_count / cluster_count;
    const std::size_t extra = node_count % cluster_count;
    std::size_t cursor = 0;
    for (std::size_t c = 0; c < cluster_count; ++c) {
        plan.offsets.push_back(cursor);
        cursor += base + (c < extra ? 1 : 0);
    }
    plan.offsets.push_back(cursor);
    SCALO_ENSURES(cursor == node_count);
    return plan;
}

std::size_t
ClusterPlan::nodeCount() const
{
    return offsets.empty() ? 0 : offsets.back();
}

std::size_t
ClusterPlan::clusterCount() const
{
    return offsets.empty() ? 0 : offsets.size() - 1;
}

std::size_t
ClusterPlan::clusterOf(std::size_t node) const
{
    SCALO_EXPECTS(!offsets.empty());
    SCALO_EXPECTS(node < nodeCount());
    const auto it = std::upper_bound(offsets.begin(),
                                     offsets.end(), node);
    return static_cast<std::size_t>(it - offsets.begin()) - 1;
}

std::size_t
ClusterPlan::firstOf(std::size_t cluster) const
{
    SCALO_EXPECTS(cluster < clusterCount());
    return offsets[cluster];
}

std::size_t
ClusterPlan::sizeOf(std::size_t cluster) const
{
    SCALO_EXPECTS(cluster < clusterCount());
    return offsets[cluster + 1] - offsets[cluster];
}

std::vector<std::size_t>
ClusterPlan::members(std::size_t cluster) const
{
    const std::size_t first = firstOf(cluster);
    const std::size_t size = sizeOf(cluster);
    std::vector<std::size_t> out;
    out.reserve(size);
    for (std::size_t i = 0; i < size; ++i)
        out.push_back(first + i);
    return out;
}

void
ClusterPlan::validate() const
{
    SCALO_EXPECTS(!offsets.empty());
    SCALO_EXPECTS(offsets.size() >= 2);
    SCALO_EXPECTS(offsets.front() == 0);
    for (std::size_t c = 0; c + 1 < offsets.size(); ++c)
        SCALO_EXPECTS(offsets[c] < offsets[c + 1]);
    SCALO_EXPECTS(backboneShare > 0.0 && backboneShare < 1.0);
}

} // namespace scalo::net
