#include "scalo/net/failure_detector.hpp"

#include "scalo/util/contracts.hpp"

namespace scalo::net {

HeartbeatDetector::HeartbeatDetector(std::size_t nodes,
                                     std::size_t miss_threshold)
    : threshold(miss_threshold), misses(nodes, 0),
      declaredDead(nodes, 0)
{
    SCALO_EXPECTS(nodes >= 1);
    SCALO_EXPECTS(miss_threshold >= 1);
}

bool
HeartbeatDetector::recordMiss(std::size_t node)
{
    SCALO_EXPECTS(node < misses.size());
    if (declaredDead[node])
        return false;
    if (++misses[node] < threshold)
        return false;
    declaredDead[node] = 1;
    return true;
}

bool
HeartbeatDetector::recordHeard(std::size_t node)
{
    SCALO_EXPECTS(node < misses.size());
    misses[node] = 0;
    if (!declaredDead[node])
        return false;
    declaredDead[node] = 0;
    return true;
}

bool
HeartbeatDetector::dead(std::size_t node) const
{
    SCALO_EXPECTS(node < misses.size());
    return declaredDead[node] != 0;
}

std::size_t
HeartbeatDetector::consecutiveMisses(std::size_t node) const
{
    SCALO_EXPECTS(node < misses.size());
    return misses[node];
}

std::vector<std::size_t>
HeartbeatDetector::deadNodes() const
{
    std::vector<std::size_t> out;
    for (std::size_t n = 0; n < declaredDead.size(); ++n)
        if (declaredDead[n])
            out.push_back(n);
    return out;
}

} // namespace scalo::net
