/**
 * @file
 * Shallow feed-forward neural networks (dense layers with ReLU and
 * normalisation, executed on the MAD/ADD PEs with their fused output
 * stages) and their hierarchical decomposition: the first layer's
 * weight matrix is split by input dimension across nodes, each node
 * transmits its partial pre-activation vector (the paper's 1024 B
 * per-node payload), and the aggregator finishes the forward pass.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "scalo/linalg/matrix.hpp"

namespace scalo::ml {

/** One dense layer: y = act(W x + b). */
struct DenseLayer
{
    linalg::Matrix weights; ///< out_dim x in_dim
    linalg::Matrix bias;    ///< out_dim x 1
    bool relu = true;
};

/**
 * Reusable double-buffered activation workspace for ShallowNet
 * forward passes: grown to the widest layer on first use, then
 * steady-state allocation-free.
 */
struct ForwardScratch
{
    std::vector<double> cur;
    std::vector<double> next;
};

/** A small fully-connected network (e.g. the decoder of [159]). */
class ShallowNet
{
  public:
    ShallowNet() = default;

    /** Construct from explicit layers (validated for compatibility). */
    explicit ShallowNet(std::vector<DenseLayer> layers);

    /**
     * Random initialisation: He-scaled gaussian weights.
     *
     * @param dims  layer widths, e.g. {96, 64, 2} = one hidden layer
     * @param seed  initialisation seed
     */
    static ShallowNet randomInit(const std::vector<std::size_t> &dims,
                                 std::uint64_t seed);

    /** Forward pass. */
    std::vector<double> forward(const std::vector<double> &x) const;

    /**
     * Forward pass into caller-provided scratch; the result is left
     * in (and referenced from) @p scratch, so hot decode loops run
     * without heap allocation.
     */
    const std::vector<double> &
    forward(const std::vector<double> &x, ForwardScratch &scratch) const;

    /** Input dimensionality. */
    std::size_t inputDim() const;

    /** Output dimensionality. */
    std::size_t outputDim() const;

    /** Hidden width of the first layer (partial-output size). */
    std::size_t firstLayerDim() const;

    const std::vector<DenseLayer> &layers() const { return net; }

    /**
     * One SGD step on a squared-error loss for a single example
     * (numerical gradients on this small net are unnecessary; this is
     * plain backprop). Used by tests/examples to fit toy decoders.
     */
    void sgdStep(const std::vector<double> &x,
                 const std::vector<double> &target, double lr);

  private:
    std::vector<DenseLayer> net;
};

/**
 * Input-split distributed execution of a ShallowNet (Figure 3b,
 * pipeline C): node k owns a contiguous slice of the input dimensions
 * and the matching columns of the first layer's weights.
 */
class DistributedNn
{
  public:
    /**
     * @param net    full network
     * @param splits input dimensions owned by each node (must sum to
     *               the network's input dimensionality)
     */
    DistributedNn(ShallowNet net, std::vector<std::size_t> splits);

    std::size_t nodeCount() const { return spans.size(); }

    /**
     * Partial first-layer pre-activation computed on @p node: a vector
     * of firstLayerDim() values (the per-node network payload).
     */
    std::vector<double>
    partial(std::size_t node,
            const std::vector<double> &local_features) const;

    /**
     * Aggregate: sum partials, add the first-layer bias, apply the
     * activation, then run the remaining layers.
     */
    std::vector<double>
    aggregate(const std::vector<std::vector<double>> &partials) const;

    /** Bytes each node transmits (4 B per first-layer unit). */
    std::size_t partialBytes() const;

    std::size_t sliceSize(std::size_t node) const;

  private:
    ShallowNet model;
    std::vector<std::pair<std::size_t, std::size_t>> spans;
};

} // namespace scalo::ml
