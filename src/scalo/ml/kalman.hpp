/**
 * @file
 * Kalman filter for movement-intent decoding (pipeline B, after Wu et
 * al. [162]): the latent state is cursor/limb kinematics, observations
 * are per-electrode spike-band-power features. SCALO centralises this
 * computation on one node because the filter's intermediate matrices
 * (notably the innovation covariance it inverts) are too large to
 * distribute over the serialized wireless network (Section 3.1).
 */

#pragma once

#include <cstdint>
#include <vector>

#include "scalo/linalg/matrix.hpp"

namespace scalo::ml {

/** Kalman filter parameters (the paper keeps them fixed online). */
struct KalmanParams
{
    linalg::Matrix a; ///< state transition (n x n)
    linalg::Matrix w; ///< process noise covariance (n x n)
    linalg::Matrix h; ///< observation model (m x n)
    linalg::Matrix q; ///< observation noise covariance (m x m)
};

/** Standard predict/update Kalman filter built on the LIN ALG PEs. */
class KalmanFilter
{
  public:
    explicit KalmanFilter(KalmanParams params);

    /**
     * Construct the classic 4-state (pos-x, pos-y, vel-x, vel-y)
     * cursor-decoding filter over @p observation_dim features.
     *
     * @param observation_dim number of electrode features
     * @param dt              decode interval in seconds (e.g. 0.05)
     * @param seed            seed for the synthetic observation model
     */
    static KalmanFilter cursorDecoder(std::size_t observation_dim,
                                      double dt, std::uint64_t seed);

    /** Reset state estimate and covariance. */
    void reset();

    /**
     * One predict + update step.
     *
     * @param observation m-vector of features
     * @return posterior state estimate (n-vector)
     */
    std::vector<double> step(const std::vector<double> &observation);

    const linalg::Matrix &state() const { return x; }
    const linalg::Matrix &covariance() const { return p; }
    std::size_t stateDim() const { return params.a.rows(); }
    std::size_t observationDim() const { return params.h.rows(); }

    const KalmanParams &parameters() const { return params; }

  private:
    /**
     * Reused intermediate matrices: after the first step() every
     * matrix here has its final shape, so subsequent steps run
     * without a single heap allocation (Section 3.1 sizes the filter
     * for one node; the old per-step temporaries dominated its
     * latency).
     */
    struct Workspace
    {
        linalg::Matrix y;          ///< observation (m x 1)
        linalg::Matrix xPred;      ///< A x (n x 1)
        linalg::Matrix ap;         ///< A P (n x n)
        linalg::Matrix pPred;      ///< A P A^T + W (n x n)
        linalg::Matrix hp;         ///< H P' (m x n)
        linalg::Matrix s;          ///< innovation covariance (m x m)
        linalg::Matrix aug;        ///< Gauss-Jordan scratch (m x 2m)
        linalg::Matrix sInv;       ///< S^-1 (m x m)
        linalg::Matrix pht;        ///< P' H^T (n x m)
        linalg::Matrix k;          ///< Kalman gain (n x m)
        linalg::Matrix hx;         ///< H x' (m x 1)
        linalg::Matrix innovation; ///< y - H x' (m x 1)
        linalg::Matrix kinn;       ///< K innovation (n x 1)
        linalg::Matrix kh;         ///< K H (n x n)
        linalg::Matrix ikh;        ///< I - K H (n x n)
        linalg::Matrix eye;        ///< identity (n x n)
    };

    KalmanParams params;
    linalg::Matrix x; ///< state estimate (n x 1)
    linalg::Matrix p; ///< estimate covariance (n x n)
    Workspace ws;
};

} // namespace scalo::ml
