/**
 * @file
 * Linear support vector machines (the SVM PE) and their hierarchical
 * decomposition for distributed inference (Section 3.1): each node
 * computes a partial dot product over its own electrodes' features; a
 * single aggregator node sums the partials and applies the bias. The
 * decomposition is exact, so distributed and centralized inference
 * agree bit-for-bit (up to floating point associativity).
 *
 * Training uses the Pegasos stochastic sub-gradient solver; SCALO
 * devices only run inference, but tests and examples need to fit real
 * models.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace scalo::ml {

/** A binary linear SVM: f(x) = w.x + b, classify by sign. */
class LinearSvm
{
  public:
    LinearSvm() = default;

    /** Construct from explicit parameters. */
    LinearSvm(std::vector<double> weights, double bias);

    /** Decision value w.x + b. */
    double decision(const std::vector<double> &x) const;

    /** Predicted label: +1 or -1. */
    int predict(const std::vector<double> &x) const;

    /**
     * Train with Pegasos (Shalev-Shwartz et al.).
     *
     * @param xs      feature vectors
     * @param ys      labels in {-1, +1}
     * @param lambda  regularisation strength
     * @param epochs  passes over the data
     * @param seed    sampling seed
     */
    static LinearSvm train(const std::vector<std::vector<double>> &xs,
                           const std::vector<int> &ys,
                           double lambda = 1e-3, int epochs = 20,
                           std::uint64_t seed = 1);

    const std::vector<double> &weights() const { return w; }
    double bias() const { return b; }

  private:
    std::vector<double> w;
    double b = 0.0;
};

/**
 * Hierarchically decomposed SVM: the feature dimensions are partitioned
 * contiguously across nodes. Mirrors Figure 3b / pipeline A.
 */
class DistributedSvm
{
  public:
    /**
     * @param svm    the full model
     * @param splits number of dimensions owned by each node (must sum
     *               to the model's dimensionality)
     */
    DistributedSvm(LinearSvm svm, std::vector<std::size_t> splits);

    /** Number of participating nodes. */
    std::size_t nodeCount() const { return spans.size(); }

    /**
     * Partial decision value computed on @p node from its local feature
     * slice (the 4-byte scalar each node transmits).
     */
    double partial(std::size_t node,
                   const std::vector<double> &local_features) const;

    /** Aggregate partials on the aggregator node: sum + bias. */
    double aggregate(const std::vector<double> &partials) const;

    /** Dimensions owned by @p node. */
    std::size_t sliceSize(std::size_t node) const;

  private:
    LinearSvm model;
    /** (offset, length) of each node's slice of the weight vector. */
    std::vector<std::pair<std::size_t, std::size_t>> spans;
};

} // namespace scalo::ml
