#include "scalo/ml/nn.hpp"

#include <cmath>

#include "scalo/linalg/kernels.hpp"
#include "scalo/util/logging.hpp"
#include "scalo/util/rng.hpp"

namespace scalo::ml {

ShallowNet::ShallowNet(std::vector<DenseLayer> layers)
    : net(std::move(layers))
{
    SCALO_ASSERT(!net.empty(), "network needs at least one layer");
    for (std::size_t l = 0; l < net.size(); ++l) {
        const auto &layer = net[l];
        SCALO_ASSERT(layer.bias.rows() == layer.weights.rows() &&
                         layer.bias.cols() == 1,
                     "layer ", l, " bias shape mismatch");
        if (l + 1 < net.size()) {
            SCALO_ASSERT(net[l + 1].weights.cols() ==
                             layer.weights.rows(),
                         "layer ", l + 1, " input mismatch");
        }
    }
}

ShallowNet
ShallowNet::randomInit(const std::vector<std::size_t> &dims,
                       std::uint64_t seed)
{
    SCALO_ASSERT(dims.size() >= 2, "need input and output dims");
    Rng rng(seed);
    std::vector<DenseLayer> layers;
    for (std::size_t l = 0; l + 1 < dims.size(); ++l) {
        DenseLayer layer;
        layer.weights = linalg::Matrix(dims[l + 1], dims[l]);
        layer.bias = linalg::Matrix(dims[l + 1], 1);
        const double scale =
            std::sqrt(2.0 / static_cast<double>(dims[l]));
        for (std::size_t r = 0; r < dims[l + 1]; ++r)
            for (std::size_t c = 0; c < dims[l]; ++c)
                layer.weights.at(r, c) = rng.gaussian(0.0, scale);
        // Output layer is linear (regression head).
        layer.relu = (l + 2 < dims.size());
        layers.push_back(std::move(layer));
    }
    return ShallowNet(std::move(layers));
}

std::size_t
ShallowNet::inputDim() const
{
    SCALO_ASSERT(!net.empty(), "empty network");
    return net.front().weights.cols();
}

std::size_t
ShallowNet::outputDim() const
{
    SCALO_ASSERT(!net.empty(), "empty network");
    return net.back().weights.rows();
}

std::size_t
ShallowNet::firstLayerDim() const
{
    SCALO_ASSERT(!net.empty(), "empty network");
    return net.front().weights.rows();
}

const std::vector<double> &
ShallowNet::forward(const std::vector<double> &x,
                    ForwardScratch &scratch) const
{
    SCALO_ASSERT(x.size() == inputDim(), "input size ", x.size(),
                 " != ", inputDim());
    scratch.cur.assign(x.begin(), x.end());
    for (const auto &layer : net) {
        const std::size_t rows = layer.weights.rows();
        const std::size_t cols = layer.weights.cols();
        scratch.next.resize(rows);
        // Fused W x + b with the optional ReLU output stage: one dot
        // per output unit, no intermediate matrices.
        for (std::size_t r = 0; r < rows; ++r) {
            double v = linalg::dot(layer.weights.rowPtr(r),
                                   scratch.cur.data(), cols) +
                       layer.bias.at(r, 0);
            if (layer.relu && v < 0.0)
                v = 0.0;
            scratch.next[r] = v;
        }
        std::swap(scratch.cur, scratch.next);
    }
    return scratch.cur;
}

std::vector<double>
ShallowNet::forward(const std::vector<double> &x) const
{
    ForwardScratch scratch;
    return forward(x, scratch);
}

void
ShallowNet::sgdStep(const std::vector<double> &x,
                    const std::vector<double> &target, double lr)
{
    // Forward pass keeping pre- and post-activations.
    std::vector<std::vector<double>> activations{x};
    std::vector<std::vector<double>> pre;
    linalg::Matrix h = linalg::Matrix::columnVector(x);
    for (const auto &layer : net) {
        linalg::Matrix z = linalg::mad(layer.weights, h, layer.bias);
        pre.push_back(z.flatten());
        linalg::OutputStage stage;
        stage.relu = layer.relu;
        h = linalg::applyStage(z, stage);
        activations.push_back(h.flatten());
    }

    // Backward pass: squared error dL/dy = 2 (y - t).
    const auto &y = activations.back();
    SCALO_ASSERT(y.size() == target.size(), "target size mismatch");
    std::vector<double> delta(y.size());
    for (std::size_t i = 0; i < y.size(); ++i)
        delta[i] = 2.0 * (y[i] - target[i]);

    for (std::size_t l = net.size(); l-- > 0;) {
        DenseLayer &layer = net[l];
        // Through the activation.
        if (layer.relu) {
            for (std::size_t i = 0; i < delta.size(); ++i)
                if (pre[l][i] <= 0.0)
                    delta[i] = 0.0;
        }
        const auto &a_in = activations[l];
        // Gradient step on W and b; propagate delta to the layer below.
        const std::size_t cols = layer.weights.cols();
        std::vector<double> delta_below(cols, 0.0);
        for (std::size_t r = 0; r < layer.weights.rows(); ++r) {
            double *wrow = layer.weights.rowPtr(r);
            const double dr = delta[r];
            linalg::axpy(dr, wrow, delta_below.data(), cols);
            for (std::size_t c = 0; c < cols; ++c)
                wrow[c] -= lr * dr * a_in[c];
            layer.bias.at(r, 0) -= lr * dr;
        }
        delta = std::move(delta_below);
    }
}

DistributedNn::DistributedNn(ShallowNet net,
                             std::vector<std::size_t> splits)
    : model(std::move(net))
{
    std::size_t offset = 0;
    for (std::size_t length : splits) {
        spans.emplace_back(offset, length);
        offset += length;
    }
    SCALO_ASSERT(offset == model.inputDim(), "splits cover ", offset,
                 " of ", model.inputDim(), " inputs");
}

std::size_t
DistributedNn::sliceSize(std::size_t node) const
{
    SCALO_ASSERT(node < spans.size(), "node out of range");
    return spans[node].second;
}

std::vector<double>
DistributedNn::partial(std::size_t node,
                       const std::vector<double> &local_features) const
{
    SCALO_ASSERT(node < spans.size(), "node out of range");
    const auto [offset, length] = spans[node];
    SCALO_ASSERT(local_features.size() == length, "node ", node,
                 " expects ", length, " features");
    const auto &w = model.layers().front().weights;
    std::vector<double> out(w.rows());
    // Each node's slice is a contiguous run of columns, so the
    // partial pre-activation is one dot per first-layer unit.
    for (std::size_t r = 0; r < w.rows(); ++r)
        out[r] = linalg::dot(w.rowPtr(r) + offset,
                             local_features.data(), length);
    return out;
}

std::vector<double>
DistributedNn::aggregate(
    const std::vector<std::vector<double>> &partials) const
{
    SCALO_ASSERT(partials.size() == spans.size(), "expected ",
                 spans.size(), " partials");
    const auto &first = model.layers().front();
    linalg::Matrix z(first.weights.rows(), 1);
    for (const auto &partial : partials) {
        SCALO_ASSERT(partial.size() == z.rows(), "partial size");
        for (std::size_t r = 0; r < z.rows(); ++r)
            z.at(r, 0) += partial[r];
    }
    linalg::OutputStage stage;
    stage.relu = first.relu;
    linalg::Matrix h = linalg::applyStage(
        linalg::add(z, first.bias), stage);

    for (std::size_t l = 1; l < model.layers().size(); ++l) {
        const auto &layer = model.layers()[l];
        linalg::OutputStage s;
        s.relu = layer.relu;
        h = linalg::mad(layer.weights, h, layer.bias, s);
    }
    return h.flatten();
}

std::size_t
DistributedNn::partialBytes() const
{
    return model.firstLayerDim() * 4;
}

} // namespace scalo::ml
