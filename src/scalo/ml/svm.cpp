#include "scalo/ml/svm.hpp"

#include <cmath>

#include "scalo/linalg/kernels.hpp"
#include "scalo/util/logging.hpp"
#include "scalo/util/rng.hpp"

namespace scalo::ml {

LinearSvm::LinearSvm(std::vector<double> weights, double bias)
    : w(std::move(weights)), b(bias)
{
}

double
LinearSvm::decision(const std::vector<double> &x) const
{
    SCALO_ASSERT(x.size() == w.size(), "feature size ", x.size(),
                 " != model size ", w.size());
    return b + linalg::dot(w.data(), x.data(), x.size());
}

int
LinearSvm::predict(const std::vector<double> &x) const
{
    return decision(x) >= 0.0 ? 1 : -1;
}

LinearSvm
LinearSvm::train(const std::vector<std::vector<double>> &xs,
                 const std::vector<int> &ys, double lambda, int epochs,
                 std::uint64_t seed)
{
    SCALO_ASSERT(!xs.empty() && xs.size() == ys.size(),
                 "bad training set: ", xs.size(), " x, ", ys.size(),
                 " y");
    const std::size_t dim = xs.front().size();
    std::vector<double> w(dim, 0.0);
    double b = 0.0;

    Rng rng(seed);
    const std::size_t n = xs.size();
    // Warm offset keeps the first steps bounded (eta <= 1); without it
    // the unregularised bias takes an unrecoverable jump at t = 1.
    const double t0 = 1.0 / lambda;
    std::size_t t = 1;
    for (int epoch = 0; epoch < epochs; ++epoch) {
        for (std::size_t step = 0; step < n; ++step, ++t) {
            const std::size_t i = rng.below(n);
            const auto &x = xs[i];
            const double y = ys[i];
            const double eta =
                1.0 / (lambda * (static_cast<double>(t) + t0));

            const double margin =
                (b + linalg::dot(w.data(), x.data(), dim)) * y;

            const double shrink = 1.0 - eta * lambda;
            for (std::size_t d = 0; d < dim; ++d)
                w[d] *= shrink;
            if (margin < 1.0) {
                linalg::axpy(eta * y, x.data(), w.data(), dim);
                b += eta * y;
            }
        }
    }
    return {std::move(w), b};
}

DistributedSvm::DistributedSvm(LinearSvm svm,
                               std::vector<std::size_t> splits)
    : model(std::move(svm))
{
    std::size_t offset = 0;
    for (std::size_t length : splits) {
        spans.emplace_back(offset, length);
        offset += length;
    }
    SCALO_ASSERT(offset == model.weights().size(),
                 "splits cover ", offset, " of ",
                 model.weights().size(), " dimensions");
}

std::size_t
DistributedSvm::sliceSize(std::size_t node) const
{
    SCALO_ASSERT(node < spans.size(), "node ", node, " of ",
                 spans.size());
    return spans[node].second;
}

double
DistributedSvm::partial(std::size_t node,
                        const std::vector<double> &local_features) const
{
    SCALO_ASSERT(node < spans.size(), "node ", node, " of ",
                 spans.size());
    const auto [offset, length] = spans[node];
    SCALO_ASSERT(local_features.size() == length, "node ", node,
                 " expects ", length, " features, got ",
                 local_features.size());
    const auto &w = model.weights();
    return linalg::dot(w.data() + offset, local_features.data(),
                       length);
}

double
DistributedSvm::aggregate(const std::vector<double> &partials) const
{
    SCALO_ASSERT(partials.size() == spans.size(), "expected ",
                 spans.size(), " partials, got ", partials.size());
    double acc = model.bias();
    for (double p : partials)
        acc += p;
    return acc;
}

} // namespace scalo::ml
