#include "scalo/ml/kalman.hpp"

#include <algorithm>

#include "scalo/linalg/kernels.hpp"
#include "scalo/util/logging.hpp"
#include "scalo/util/rng.hpp"

namespace scalo::ml {

using linalg::Matrix;

KalmanFilter::KalmanFilter(KalmanParams p) : params(std::move(p))
{
    const std::size_t n = params.a.rows();
    const std::size_t m = params.h.rows();
    SCALO_ASSERT(params.a.cols() == n, "A must be square");
    SCALO_ASSERT(params.w.rows() == n && params.w.cols() == n,
                 "W must be n x n");
    SCALO_ASSERT(params.h.cols() == n, "H must be m x n");
    SCALO_ASSERT(params.q.rows() == m && params.q.cols() == m,
                 "Q must be m x m");
    reset();
}

void
KalmanFilter::reset()
{
    const std::size_t n = params.a.rows();
    x = Matrix(n, 1);
    p = Matrix::identity(n);
    ws.eye = Matrix::identity(n);
}

std::vector<double>
KalmanFilter::step(const std::vector<double> &observation)
{
    SCALO_ASSERT(observation.size() == observationDim(),
                 "observation size ", observation.size(), " != ",
                 observationDim());
    const std::size_t m = observationDim();
    ws.y.resize(m, 1);
    std::copy(observation.begin(), observation.end(), ws.y.data());

    // Predict (MAD PEs): x' = A x, P' = A P A^T + W. The A^T and H^T
    // products below use mulTransposedInto, so no transposed copy is
    // ever materialised.
    linalg::mulInto(params.a, x, ws.xPred);
    linalg::mulInto(params.a, p, ws.ap);
    linalg::mulTransposedInto(ws.ap, params.a, ws.pPred);
    linalg::addInto(ws.pPred, params.w, ws.pPred);

    // Update: S = H P' H^T + Q, K = P' H^T S^-1 (the INV PE step).
    linalg::mulInto(params.h, ws.pPred, ws.hp);
    linalg::mulTransposedInto(ws.hp, params.h, ws.s);
    linalg::addInto(ws.s, params.q, ws.s);
    linalg::inverseInto(ws.s, ws.aug, ws.sInv);
    linalg::mulTransposedInto(ws.pPred, params.h, ws.pht);
    linalg::mulInto(ws.pht, ws.sInv, ws.k);

    // x = x' + K (y - H x'), P = (I - K H) P'.
    linalg::mulInto(params.h, ws.xPred, ws.hx);
    linalg::subInto(ws.y, ws.hx, ws.innovation);
    linalg::mulInto(ws.k, ws.innovation, ws.kinn);
    linalg::addInto(ws.xPred, ws.kinn, x);
    linalg::mulInto(ws.k, params.h, ws.kh);
    linalg::subInto(ws.eye, ws.kh, ws.ikh);
    linalg::mulInto(ws.ikh, ws.pPred, p);

    return x.flatten();
}

KalmanFilter
KalmanFilter::cursorDecoder(std::size_t observation_dim, double dt,
                            std::uint64_t seed)
{
    SCALO_ASSERT(observation_dim >= 1, "need at least one feature");
    KalmanParams p;

    // Constant-velocity kinematics: [px, py, vx, vy].
    p.a = Matrix::identity(4);
    p.a.at(0, 2) = dt;
    p.a.at(1, 3) = dt;

    p.w = Matrix::identity(4);
    for (std::size_t i = 0; i < 4; ++i)
        p.w.at(i, i) = (i < 2) ? 1e-4 : 1e-3;

    // Random (but fixed) tuning: each electrode feature responds
    // linearly to the velocity components, as in the classic decoder.
    Rng rng(seed);
    p.h = Matrix(observation_dim, 4);
    for (std::size_t r = 0; r < observation_dim; ++r) {
        p.h.at(r, 2) = rng.gaussian(0.0, 1.0);
        p.h.at(r, 3) = rng.gaussian(0.0, 1.0);
    }

    p.q = Matrix::identity(observation_dim);
    for (std::size_t i = 0; i < observation_dim; ++i)
        p.q.at(i, i) = 0.25;

    return KalmanFilter(std::move(p));
}

} // namespace scalo::ml
