/**
 * @file
 * Compile-time dimensional analysis for SCALO's analytic models.
 *
 * Every latency, power, energy, data-volume, rate, frequency,
 * temperature and distance the models exchange is a `Quantity`: a
 * single `double` tagged at compile time with a dimension (an exponent
 * vector over time/energy/data/temperature/length) and a scale (a
 * `std::ratio` against the base unit: seconds, joules, bits, degrees
 * Celsius, metres). The tag vanishes at runtime - a `Quantity` is one
 * trivially-copyable double - but at compile time it makes the classic
 * modeling bugs unrepresentable:
 *
 *  - ms-for-s (or us-for-ms): conversion between scales of the same
 *    dimension is implicit and *correct by construction*; a `Millis`
 *    parameter fed `4.0_s` receives 4000 ms, never 4.
 *  - bits-for-bytes: same mechanism (`Bytes` is data at scale 8).
 *  - wrong dimension entirely (a frequency where a latency belongs, a
 *    power where an energy belongs): a type error.
 *  - raw doubles into model APIs: `Quantity`'s double constructor is
 *    explicit, so a bare `4.0` no longer converts silently; write
 *    `4.0_ms` (or `Millis{4.0}`) and say what you mean.
 *
 * Dimensional arithmetic follows the physics: `Milliwatts * Millis`
 * is an energy (in microjoules, convertible to any energy unit),
 * `Bytes / MegabitsPerSecond` is a time, `1.0 / Megahertz` is a time,
 * and a quotient of same-dimension quantities is a plain `double`.
 * `.count()` is the explicit escape hatch back to `double` (printing,
 * ILP coefficients); `.in<Q>()` reads the value in another unit.
 *
 * Adding a new dimension: extend the `Dimension` exponent vector (one
 * new template parameter, defaulted nowhere - update the aliases
 * below), add a `Dim...` alias with the new axis set, and declare the
 * named units and literals. See DESIGN.md, "Units and contracts".
 */

#pragma once

#include <ratio>
#include <type_traits>

namespace scalo::units {

/** Exponent vector over the base dimensions. */
template <int TimeE, int EnergyE, int DataE, int TempE, int LengthE>
struct Dimension
{
    static constexpr int time = TimeE;
    static constexpr int energy = EnergyE;
    static constexpr int data = DataE;
    static constexpr int temperature = TempE;
    static constexpr int length = LengthE;
};

using DimLess = Dimension<0, 0, 0, 0, 0>;
using DimTime = Dimension<1, 0, 0, 0, 0>;
using DimEnergy = Dimension<0, 1, 0, 0, 0>;
/** Power = energy / time. */
using DimPower = Dimension<-1, 1, 0, 0, 0>;
using DimData = Dimension<0, 0, 1, 0, 0>;
/** Data rate = data / time. */
using DimRate = Dimension<-1, 0, 1, 0, 0>;
/** Frequency = 1 / time (kept distinct from data rates). */
using DimFrequency = Dimension<-1, 0, 0, 0, 0>;
using DimTemperature = Dimension<0, 0, 0, 1, 0>;
using DimLength = Dimension<0, 0, 0, 0, 1>;

template <class A, class B>
using DimProduct =
    Dimension<A::time + B::time, A::energy + B::energy,
              A::data + B::data, A::temperature + B::temperature,
              A::length + B::length>;

template <class A, class B>
using DimQuotient =
    Dimension<A::time - B::time, A::energy - B::energy,
              A::data - B::data, A::temperature - B::temperature,
              A::length - B::length>;

/** A std::ratio evaluated as a double. */
template <class R>
inline constexpr double kRatioValue =
    static_cast<double>(R::num) / static_cast<double>(R::den);

template <class Dim, class Scale> class Quantity;

namespace detail {

template <class T> struct IsQuantity : std::false_type
{
};
template <class D, class S>
struct IsQuantity<Quantity<D, S>> : std::true_type
{
};

/**
 * Wrap an arithmetic result: a dimensionless outcome collapses to a
 * plain double (applying the residual scale, so Mbps/bps == 1e6).
 */
template <class Dim, class Scale>
constexpr auto
make(double value)
{
    if constexpr (std::is_same_v<Dim, DimLess>)
        return value * kRatioValue<Scale>;
    else
        return Quantity<Dim, Scale>(value);
}

} // namespace detail

/**
 * One value of dimension @p Dim held at scale @p Scale (a std::ratio
 * against the dimension's base unit).
 */
template <class Dim, class Scale>
class Quantity
{
  public:
    using dimension = Dim;
    using scale = Scale;

    constexpr Quantity() = default;

    /** Explicit: a bare double carries no unit; say which one. */
    constexpr explicit Quantity(double count) : value(count) {}

    /** Implicit same-dimension rescale: `Millis t = 4.0_s;` is 4000. */
    template <class S2>
    constexpr Quantity(Quantity<Dim, S2> other)
        : value(other.count() * (kRatioValue<S2> / kRatioValue<Scale>))
    {
    }

    /** The raw number in this unit (the escape hatch). */
    constexpr double count() const { return value; }

    /** This value read in @p Q's unit: `t.in<Seconds>()`. */
    template <class Q>
    constexpr double
    in() const
    {
        static_assert(std::is_same_v<typename Q::dimension, Dim>,
                      "unit_cast across dimensions");
        return Q(*this).count();
    }

    constexpr Quantity operator-() const { return Quantity(-value); }
    constexpr Quantity operator+() const { return *this; }

    template <class S2>
    constexpr Quantity &
    operator+=(Quantity<Dim, S2> other)
    {
        value += Quantity(other).count();
        return *this;
    }

    template <class S2>
    constexpr Quantity &
    operator-=(Quantity<Dim, S2> other)
    {
        value -= Quantity(other).count();
        return *this;
    }

    constexpr Quantity &
    operator*=(double s)
    {
        value *= s;
        return *this;
    }

    constexpr Quantity &
    operator/=(double s)
    {
        value /= s;
        return *this;
    }

  private:
    double value = 0.0;
};

/** Same-dimension addition; the left operand's scale wins. */
template <class D, class S1, class S2>
constexpr Quantity<D, S1>
operator+(Quantity<D, S1> a, Quantity<D, S2> b)
{
    return Quantity<D, S1>(a.count() + Quantity<D, S1>(b).count());
}

template <class D, class S1, class S2>
constexpr Quantity<D, S1>
operator-(Quantity<D, S1> a, Quantity<D, S2> b)
{
    return Quantity<D, S1>(a.count() - Quantity<D, S1>(b).count());
}

template <class D, class S1, class S2>
constexpr bool
operator==(Quantity<D, S1> a, Quantity<D, S2> b)
{
    return a.count() == Quantity<D, S1>(b).count();
}

template <class D, class S1, class S2>
constexpr bool
operator!=(Quantity<D, S1> a, Quantity<D, S2> b)
{
    return !(a == b);
}

template <class D, class S1, class S2>
constexpr bool
operator<(Quantity<D, S1> a, Quantity<D, S2> b)
{
    return a.count() < Quantity<D, S1>(b).count();
}

template <class D, class S1, class S2>
constexpr bool
operator<=(Quantity<D, S1> a, Quantity<D, S2> b)
{
    return a.count() <= Quantity<D, S1>(b).count();
}

template <class D, class S1, class S2>
constexpr bool
operator>(Quantity<D, S1> a, Quantity<D, S2> b)
{
    return b < a;
}

template <class D, class S1, class S2>
constexpr bool
operator>=(Quantity<D, S1> a, Quantity<D, S2> b)
{
    return b <= a;
}

/** Scalar scaling keeps the unit. */
template <class D, class S>
constexpr Quantity<D, S>
operator*(Quantity<D, S> q, double s)
{
    return Quantity<D, S>(q.count() * s);
}

template <class D, class S>
constexpr Quantity<D, S>
operator*(double s, Quantity<D, S> q)
{
    return Quantity<D, S>(s * q.count());
}

template <class D, class S>
constexpr Quantity<D, S>
operator/(Quantity<D, S> q, double s)
{
    return Quantity<D, S>(q.count() / s);
}

/** Dimensional product: time x power -> energy, etc. */
template <class D1, class S1, class D2, class S2>
constexpr auto
operator*(Quantity<D1, S1> a, Quantity<D2, S2> b)
{
    return detail::make<DimProduct<D1, D2>, std::ratio_multiply<S1, S2>>(
        a.count() * b.count());
}

/** Dimensional quotient: bits / rate -> time; same-dim -> double. */
template <class D1, class S1, class D2, class S2>
constexpr auto
operator/(Quantity<D1, S1> a, Quantity<D2, S2> b)
{
    return detail::make<DimQuotient<D1, D2>, std::ratio_divide<S1, S2>>(
        a.count() / b.count());
}

/** Scalar over quantity inverts the dimension: 1.0 / MHz -> time. */
template <class D, class S>
constexpr auto
operator/(double s, Quantity<D, S> q)
{
    return detail::make<DimQuotient<DimLess, D>,
                        std::ratio_divide<std::ratio<1>, S>>(s /
                                                             q.count());
}

template <class D, class S>
constexpr Quantity<D, S>
abs(Quantity<D, S> q)
{
    return q.count() < 0.0 ? -q : q;
}

template <class D, class S1, class S2>
constexpr Quantity<D, S1>
min(Quantity<D, S1> a, Quantity<D, S2> b)
{
    return b < a ? Quantity<D, S1>(b) : a;
}

template <class D, class S1, class S2>
constexpr Quantity<D, S1>
max(Quantity<D, S1> a, Quantity<D, S2> b)
{
    return a < b ? Quantity<D, S1>(b) : a;
}

/** @name Named units
 * Base units: second, joule, bit, degree Celsius, metre. */
///@{

using Seconds = Quantity<DimTime, std::ratio<1>>;
using Millis = Quantity<DimTime, std::milli>;
using Micros = Quantity<DimTime, std::micro>;
using Nanos = Quantity<DimTime, std::nano>;
using Hours = Quantity<DimTime, std::ratio<3'600>>;

using Joules = Quantity<DimEnergy, std::ratio<1>>;
using Millijoules = Quantity<DimEnergy, std::milli>;
using Microjoules = Quantity<DimEnergy, std::micro>;
using Nanojoules = Quantity<DimEnergy, std::nano>;
/** 1 mWh = 3.6 J; implant battery capacities. */
using MilliwattHours = Quantity<DimEnergy, std::ratio<18, 5>>;

using Watts = Quantity<DimPower, std::ratio<1>>;
using Milliwatts = Quantity<DimPower, std::milli>;
using Microwatts = Quantity<DimPower, std::micro>;

using Bits = Quantity<DimData, std::ratio<1>>;
using Bytes = Quantity<DimData, std::ratio<8>>;
using Kibibytes = Quantity<DimData, std::ratio<8LL * 1'024>>;
using Mebibytes = Quantity<DimData, std::ratio<8LL * 1'024 * 1'024>>;
/** Decimal SI multiples (the NVM vendor convention). */
using Kilobytes = Quantity<DimData, std::ratio<8'000>>;
using Megabytes = Quantity<DimData, std::ratio<8'000'000>>;
using Gigabytes = Quantity<DimData, std::ratio<8'000'000'000LL>>;

using Hertz = Quantity<DimFrequency, std::ratio<1>>;
using Kilohertz = Quantity<DimFrequency, std::kilo>;
using Megahertz = Quantity<DimFrequency, std::mega>;
using Gigahertz = Quantity<DimFrequency, std::giga>;

using BitsPerSecond = Quantity<DimRate, std::ratio<1>>;
using KilobitsPerSecond = Quantity<DimRate, std::kilo>;
using MegabitsPerSecond = Quantity<DimRate, std::mega>;
/** MB/s, decimal (storage bandwidth convention). */
using MegabytesPerSecond = Quantity<DimRate, std::ratio<8'000'000>>;

/** Temperature differences (the thermal model works in deltas). */
using Celsius = Quantity<DimTemperature, std::ratio<1>>;

using Metres = Quantity<DimLength, std::ratio<1>>;
using Centimetres = Quantity<DimLength, std::centi>;
using Millimetres = Quantity<DimLength, std::milli>;

///@}

/** Convert explicitly between units of one dimension. */
template <class To, class D, class S>
constexpr To
unit_cast(Quantity<D, S> q)
{
    static_assert(std::is_same_v<typename To::dimension, D>,
                  "unit_cast across dimensions");
    return To(q);
}

inline namespace literals {

// clang-format off
constexpr Seconds        operator""_s(long double v)    { return Seconds{static_cast<double>(v)}; }
constexpr Seconds        operator""_s(unsigned long long v)    { return Seconds{static_cast<double>(v)}; }
constexpr Millis         operator""_ms(long double v)   { return Millis{static_cast<double>(v)}; }
constexpr Millis         operator""_ms(unsigned long long v)   { return Millis{static_cast<double>(v)}; }
constexpr Micros         operator""_us(long double v)   { return Micros{static_cast<double>(v)}; }
constexpr Micros         operator""_us(unsigned long long v)   { return Micros{static_cast<double>(v)}; }
constexpr Nanos          operator""_ns(long double v)   { return Nanos{static_cast<double>(v)}; }
constexpr Nanos          operator""_ns(unsigned long long v)   { return Nanos{static_cast<double>(v)}; }
constexpr Hours          operator""_h(long double v)    { return Hours{static_cast<double>(v)}; }
constexpr Hours          operator""_h(unsigned long long v)    { return Hours{static_cast<double>(v)}; }

constexpr Joules         operator""_J(long double v)    { return Joules{static_cast<double>(v)}; }
constexpr Joules         operator""_J(unsigned long long v)    { return Joules{static_cast<double>(v)}; }
constexpr Millijoules    operator""_mJ(long double v)   { return Millijoules{static_cast<double>(v)}; }
constexpr Millijoules    operator""_mJ(unsigned long long v)   { return Millijoules{static_cast<double>(v)}; }
constexpr Microjoules    operator""_uJ(long double v)   { return Microjoules{static_cast<double>(v)}; }
constexpr Microjoules    operator""_uJ(unsigned long long v)   { return Microjoules{static_cast<double>(v)}; }
constexpr Nanojoules     operator""_nJ(long double v)   { return Nanojoules{static_cast<double>(v)}; }
constexpr Nanojoules     operator""_nJ(unsigned long long v)   { return Nanojoules{static_cast<double>(v)}; }
constexpr MilliwattHours operator""_mWh(long double v)  { return MilliwattHours{static_cast<double>(v)}; }
constexpr MilliwattHours operator""_mWh(unsigned long long v)  { return MilliwattHours{static_cast<double>(v)}; }

constexpr Watts          operator""_W(long double v)    { return Watts{static_cast<double>(v)}; }
constexpr Watts          operator""_W(unsigned long long v)    { return Watts{static_cast<double>(v)}; }
constexpr Milliwatts     operator""_mW(long double v)   { return Milliwatts{static_cast<double>(v)}; }
constexpr Milliwatts     operator""_mW(unsigned long long v)   { return Milliwatts{static_cast<double>(v)}; }
constexpr Microwatts     operator""_uW(long double v)   { return Microwatts{static_cast<double>(v)}; }
constexpr Microwatts     operator""_uW(unsigned long long v)   { return Microwatts{static_cast<double>(v)}; }

constexpr Bits           operator""_bits(long double v) { return Bits{static_cast<double>(v)}; }
constexpr Bits           operator""_bits(unsigned long long v) { return Bits{static_cast<double>(v)}; }
constexpr Bytes          operator""_B(long double v)    { return Bytes{static_cast<double>(v)}; }
constexpr Bytes          operator""_B(unsigned long long v)    { return Bytes{static_cast<double>(v)}; }
constexpr Kibibytes      operator""_KiB(long double v)  { return Kibibytes{static_cast<double>(v)}; }
constexpr Kibibytes      operator""_KiB(unsigned long long v)  { return Kibibytes{static_cast<double>(v)}; }
constexpr Mebibytes      operator""_MiB(long double v)  { return Mebibytes{static_cast<double>(v)}; }
constexpr Mebibytes      operator""_MiB(unsigned long long v)  { return Mebibytes{static_cast<double>(v)}; }
constexpr Megabytes      operator""_MB(long double v)   { return Megabytes{static_cast<double>(v)}; }
constexpr Megabytes      operator""_MB(unsigned long long v)   { return Megabytes{static_cast<double>(v)}; }
constexpr Gigabytes      operator""_GB(long double v)   { return Gigabytes{static_cast<double>(v)}; }
constexpr Gigabytes      operator""_GB(unsigned long long v)   { return Gigabytes{static_cast<double>(v)}; }

constexpr Hertz          operator""_Hz(long double v)   { return Hertz{static_cast<double>(v)}; }
constexpr Hertz          operator""_Hz(unsigned long long v)   { return Hertz{static_cast<double>(v)}; }
constexpr Kilohertz      operator""_kHz(long double v)  { return Kilohertz{static_cast<double>(v)}; }
constexpr Kilohertz      operator""_kHz(unsigned long long v)  { return Kilohertz{static_cast<double>(v)}; }
constexpr Megahertz      operator""_MHz(long double v)  { return Megahertz{static_cast<double>(v)}; }
constexpr Megahertz      operator""_MHz(unsigned long long v)  { return Megahertz{static_cast<double>(v)}; }
constexpr Gigahertz      operator""_GHz(long double v)  { return Gigahertz{static_cast<double>(v)}; }
constexpr Gigahertz      operator""_GHz(unsigned long long v)  { return Gigahertz{static_cast<double>(v)}; }

constexpr BitsPerSecond      operator""_bps(long double v)  { return BitsPerSecond{static_cast<double>(v)}; }
constexpr BitsPerSecond      operator""_bps(unsigned long long v)  { return BitsPerSecond{static_cast<double>(v)}; }
constexpr MegabitsPerSecond  operator""_Mbps(long double v) { return MegabitsPerSecond{static_cast<double>(v)}; }
constexpr MegabitsPerSecond  operator""_Mbps(unsigned long long v) { return MegabitsPerSecond{static_cast<double>(v)}; }
constexpr MegabytesPerSecond operator""_MBps(long double v) { return MegabytesPerSecond{static_cast<double>(v)}; }
constexpr MegabytesPerSecond operator""_MBps(unsigned long long v) { return MegabytesPerSecond{static_cast<double>(v)}; }

constexpr Celsius        operator""_degC(long double v) { return Celsius{static_cast<double>(v)}; }
constexpr Celsius        operator""_degC(unsigned long long v) { return Celsius{static_cast<double>(v)}; }

constexpr Metres         operator""_m(long double v)    { return Metres{static_cast<double>(v)}; }
constexpr Metres         operator""_m(unsigned long long v)    { return Metres{static_cast<double>(v)}; }
constexpr Centimetres    operator""_cm(long double v)   { return Centimetres{static_cast<double>(v)}; }
constexpr Centimetres    operator""_cm(unsigned long long v)   { return Centimetres{static_cast<double>(v)}; }
constexpr Millimetres    operator""_mm(long double v)   { return Millimetres{static_cast<double>(v)}; }
constexpr Millimetres    operator""_mm(unsigned long long v)   { return Millimetres{static_cast<double>(v)}; }
// clang-format on

} // namespace literals

// Zero overhead: a Quantity is exactly one double.
static_assert(sizeof(Millis) == sizeof(double));
static_assert(std::is_trivially_copyable_v<Millis>);
static_assert(std::is_trivially_copyable_v<MegabitsPerSecond>);

// The headline guarantees, checked where the library is defined:
// no implicit double -> quantity, no cross-dimension conversion.
static_assert(!std::is_convertible_v<double, Millis>,
              "a bare double must not become a time silently");
static_assert(std::is_convertible_v<Seconds, Millis>,
              "same-dimension rescale is implicit (and correct)");
static_assert(!std::is_convertible_v<Megahertz, Millis>,
              "a frequency is not a time");
static_assert(!std::is_convertible_v<Millijoules, Milliwatts>,
              "an energy is not a power");
static_assert(!std::is_convertible_v<MegabitsPerSecond, Megahertz>,
              "a data rate is not a frequency");

} // namespace scalo::units
