#include "scalo/hw/nvm.hpp"

#include "scalo/util/logging.hpp"

namespace scalo::hw {

double
NvmSpec::readBandwidthMBps() const
{
    // A page can stream out over the 8-byte read interface while the
    // next is sensed; effective rate is bounded by the per-page read
    // service time, which NVSim folds into the energy/latency pair.
    // SLC NAND page reads take ~25 us -> 4 KB / 25 us = 160 MB/s ideal;
    // we derate to the interface-limited 100 MB/s.
    return 100.0;
}

double
NvmSpec::writeBandwidthMBps() const
{
    // One 4 KB page per 350 us program.
    return (static_cast<double>(pageBytes) / 1e6) /
           (programUs / 1e6);
}

double
NvmSpec::readTimeMs(double bytes) const
{
    SCALO_ASSERT(bytes >= 0.0, "negative bytes");
    return bytes / (readBandwidthMBps() * 1e6) * 1e3;
}

double
NvmSpec::writeTimeMs(double bytes) const
{
    SCALO_ASSERT(bytes >= 0.0, "negative bytes");
    return bytes / (writeBandwidthMBps() * 1e6) * 1e3;
}

double
NvmSpec::readEnergyMj(double bytes) const
{
    const double pages = bytes / static_cast<double>(pageBytes);
    return pages * readEnergyNjPerPage * 1e-6;
}

double
NvmSpec::writeEnergyMj(double bytes) const
{
    const double pages = bytes / static_cast<double>(pageBytes);
    return pages * writeEnergyNjPerPage * 1e-6;
}

const NvmSpec &
nvmSpec()
{
    static const NvmSpec spec{};
    return spec;
}

StorageController::StorageController(bool reorganise_layout)
    : reorganise(reorganise_layout)
{
}

double
StorageController::chunkWriteMs() const
{
    return reorganise ? kReorganisedWriteMs : kRawWriteMs;
}

double
StorageController::chunkReadMs() const
{
    return reorganise ? kReorganisedReadMs : kRawReadMs;
}

std::size_t
StorageController::append(Partition partition, std::size_t bytes)
{
    PartitionState &state = partitions[partition];
    state.buffered += bytes;
    std::size_t pages = 0;
    const std::size_t page = nvmSpec().pageBytes;
    while (state.buffered >= page) {
        state.buffered -= page;
        state.persisted += page;
        ++pages;
    }
    SCALO_ASSERT(state.buffered <= kBufferBytes,
                 "SC write buffer overflow: ", state.buffered);
    return pages;
}

std::size_t
StorageController::buffered(Partition partition) const
{
    const auto it = partitions.find(partition);
    return it == partitions.end() ? 0 : it->second.buffered;
}

std::uint64_t
StorageController::persisted(Partition partition) const
{
    const auto it = partitions.find(partition);
    return it == partitions.end() ? 0 : it->second.persisted;
}

double
StorageController::streamReadMBps() const
{
    // A reorganised chunk (one electrode's window run) reads in
    // 0.035 ms; the raw layout needs 10 scattered reads.
    const double chunk_bytes = 4'096.0;
    return chunk_bytes / (chunkReadMs() * 1e-3) / 1e6;
}

} // namespace scalo::hw
