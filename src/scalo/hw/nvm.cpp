#include "scalo/hw/nvm.hpp"

#include "scalo/util/contracts.hpp"
#include "scalo/util/logging.hpp"

namespace scalo::hw {

using namespace units::literals;

units::MegabytesPerSecond
NvmSpec::readBandwidth() const
{
    // A page can stream out over the 8-byte read interface while the
    // next is sensed; effective rate is bounded by the per-page read
    // service time, which NVSim folds into the energy/latency pair.
    // SLC NAND page reads take ~25 us -> 4 KB / 25 us = 160 MB/s ideal;
    // we derate to the interface-limited 100 MB/s.
    return 100.0_MBps;
}

units::MegabytesPerSecond
NvmSpec::writeBandwidth() const
{
    // One 4 KB page per 350 us program.
    return units::Bytes{static_cast<double>(pageBytes)} / program;
}

units::Millis
NvmSpec::readTime(units::Bytes bytes) const
{
    SCALO_EXPECTS(bytes.count() >= 0.0);
    return bytes / readBandwidth();
}

units::Millis
NvmSpec::writeTime(units::Bytes bytes) const
{
    SCALO_EXPECTS(bytes.count() >= 0.0);
    return bytes / writeBandwidth();
}

units::Millijoules
NvmSpec::readEnergy(units::Bytes bytes) const
{
    SCALO_EXPECTS(bytes.count() >= 0.0);
    const double pages =
        bytes / units::Bytes{static_cast<double>(pageBytes)};
    const units::Millijoules energy = pages * readEnergyPerPage;
    SCALO_ENSURES(energy.count() >= 0.0);
    return energy;
}

units::Millijoules
NvmSpec::writeEnergy(units::Bytes bytes) const
{
    SCALO_EXPECTS(bytes.count() >= 0.0);
    const double pages =
        bytes / units::Bytes{static_cast<double>(pageBytes)};
    const units::Millijoules energy = pages * writeEnergyPerPage;
    SCALO_ENSURES(energy.count() >= 0.0);
    return energy;
}

const NvmSpec &
nvmSpec()
{
    static const NvmSpec spec{};
    return spec;
}

StorageController::StorageController(bool reorganise_layout)
    : reorganise(reorganise_layout)
{
}

units::Millis
StorageController::chunkWrite() const
{
    return reorganise ? kReorganisedWrite : kRawWrite;
}

units::Millis
StorageController::chunkRead() const
{
    return reorganise ? kReorganisedRead : kRawRead;
}

std::size_t
StorageController::append(Partition partition, std::size_t bytes)
{
    PartitionState &state = partitions[partition];
    state.buffered += bytes;
    std::size_t pages = 0;
    const std::size_t page = nvmSpec().pageBytes;
    while (state.buffered >= page) {
        state.buffered -= page;
        state.persisted += page;
        ++pages;
    }
    SCALO_ASSERT(state.buffered <= kBufferBytes,
                 "SC write buffer overflow: ", state.buffered);
    return pages;
}

std::size_t
StorageController::buffered(Partition partition) const
{
    const auto it = partitions.find(partition);
    return it == partitions.end() ? 0 : it->second.buffered;
}

std::uint64_t
StorageController::persisted(Partition partition) const
{
    const auto it = partitions.find(partition);
    return it == partitions.end() ? 0 : it->second.persisted;
}

units::MegabytesPerSecond
StorageController::streamRead() const
{
    // A reorganised chunk (one electrode's window run) reads in
    // 0.035 ms; the raw layout needs 10 scattered reads.
    const units::Bytes chunk = 4'096.0_B;
    return chunk / chunkRead();
}

} // namespace scalo::hw
