/**
 * @file
 * The processing-element (PE) catalog: every accelerator in a SCALO
 * node, with the post-synthesis latency/power/area characteristics of
 * Table 1 (28 nm FD-SOI, worst variation corner, 40 C) and the function
 * descriptions of Table 4.
 *
 * Power model (Section 3.2, "Optimal Power Tuning"): each PE sits in
 * its own clock domain and divides its maximum frequency to the lowest
 * rate that sustains the required electrode throughput, so
 *
 *    P(e) = leakage + sram_leakage + dyn_per_electrode * e
 *
 * for e electrode signals processed, while latency stays fixed (the
 * multiple-frequency-rail design keeps latency constant under a
 * variable number of inputs).
 */

#pragma once

#include <optional>
#include <string_view>
#include <vector>

#include "scalo/units/units.hpp"
#include "scalo/util/types.hpp"

namespace scalo::hw {

/** Every PE type in a SCALO node (Table 4). */
enum class PeKind
{
    ADD,    ///< Matrix adder
    AES,    ///< AES encryption
    BBF,    ///< Butterworth bandpass filter
    BMUL,   ///< Block multiplier (the MAD tile)
    CCHECK, ///< Hash collision check
    CSEL,   ///< Channel (signal) selection
    DCOMP,  ///< Hash decompression
    DTW,    ///< Dynamic time warping
    DWT,    ///< Discrete wavelet transform
    EMDH,   ///< Earth Mover's Distance hash
    FFT,    ///< Fast Fourier transform
    GATE,   ///< Data buffering gate
    HCOMP,  ///< Hash compression
    HCONV,  ///< Hash convolution (sketch dot products)
    HFREQ,  ///< Hash frequency sorting
    INV,    ///< Matrix inverter
    LIC,    ///< Linear integer coding
    LZ,     ///< Lempel-Ziv compression
    MA,     ///< Markov chain
    NEO,    ///< Non-linear energy operator
    NGRAM,  ///< Hash n-gram generation + weighted min-hash
    NPACK,  ///< Network packing
    RC,     ///< Range coding
    SBP,    ///< Spike band power
    SC,     ///< Storage controller
    SUB,    ///< Matrix subtractor
    SVM,    ///< Support vector machine
    THR,    ///< Threshold
    TOK,    ///< Tokenizer
    UNPACK, ///< Network unpacking
    XCOR,   ///< Pearson's cross correlation
};

/** Number of PE kinds. */
inline constexpr int kPeKindCount = 31;

/** Static characteristics of one PE type (Table 1). */
struct PeSpec
{
    PeKind kind;
    std::string_view name;
    std::string_view function;
    /** Highest supported clock. */
    units::Megahertz maxFreq;
    /** Logic leakage power. */
    units::Microwatts leakage;
    /** SRAM leakage power, shown parenthesised in Table 1. */
    units::Microwatts sramLeakage;
    /** Dynamic power per electrode signal processed. */
    units::Microwatts dynPerElectrode;
    /**
     * Processing latency at any sustained rate; empty for
     * data-dependent PEs (AES, LIC, LZ, MA, RC).
     */
    std::optional<units::Millis> latency;
    /** Worst-case latency when it differs (SC: NVM busy). */
    std::optional<units::Millis> latencyMax;
    /** Area in kilo gate equivalents. */
    double areaKge;

    /** Power draw when processing @p electrodes signals. */
    units::Microwatts
    power(double electrodes) const
    {
        return leakage + sramLeakage + dynPerElectrode * electrodes;
    }

    /** Leakage-only power when idle but powered. */
    units::Microwatts idlePower() const { return leakage + sramLeakage; }

};

/** The full catalog, ordered as Table 1. */
const std::vector<PeSpec> &peCatalog();

/** Spec of one PE kind. */
const PeSpec &peSpec(PeKind kind);

/** Catalog lookup by name ("DTW", "XCOR", ...). */
const PeSpec *findPe(std::string_view name);

/** Short name of a PE kind. */
std::string_view peName(PeKind kind);

/**
 * The per-node RISC-V microcontroller (MC): 20 MHz, 8 KB SRAM. It
 * configures pipelines, runs stimulation commands and hosts
 * computations without a PE (e.g. fast EMD), at a large slowdown
 * relative to dedicated hardware.
 */
struct McSpec
{
    units::Megahertz freq{20.0};
    units::Kibibytes sram{8.0};
    /** Active power - small in-order core in 28 nm. */
    units::Microwatts activePower{400.0};
    /**
     * Throughput penalty of running a PE's task in software; Section
     * 6.1 reports 10-100x for hash generation/matching.
     */
    double softwareSlowdown = 40.0;
};

/** The MC spec used across SCALO. */
const McSpec &mcSpec();

} // namespace scalo::hw
