#include "scalo/hw/charging.hpp"

#include <algorithm>

#include "scalo/util/logging.hpp"

namespace scalo::hw {

double
requiredCapacityMwh(double load_mw, double hours,
                    const BatterySpec &battery)
{
    SCALO_ASSERT(load_mw >= 0.0 && hours >= 0.0, "negative plan");
    SCALO_ASSERT(battery.efficiency > 0.0 &&
                     battery.efficiency <= 1.0,
                 "bad efficiency");
    return load_mw * hours / battery.efficiency;
}

ChargePlan
planDailyCycle(double load_mw, const BatterySpec &battery)
{
    SCALO_ASSERT(load_mw > 0.0, "load must be positive");
    ChargePlan plan;

    // Hours a full battery sustains the load.
    const double run_hours =
        battery.capacityMwh * battery.efficiency / load_mw;
    // Hours to refill from empty (pipelines paused: the whole
    // charging power goes into the cell).
    const double refill_hours =
        battery.capacityMwh /
        (battery.chargeRateMw * battery.efficiency);

    // Fit the largest operate+charge cycle into 24 h, preserving the
    // run:refill ratio.
    const double cycle = run_hours + refill_hours;
    if (cycle <= 24.0) {
        // One full cycle fits with slack: spend the slack operating
        // (charge only what the day's operation actually used).
        plan.operatingHours =
            24.0 * run_hours / cycle;
        plan.chargingHours = 24.0 - plan.operatingHours;
    } else {
        plan.operatingHours = 24.0 * run_hours / cycle;
        plan.chargingHours = 24.0 * refill_hours / cycle;
    }
    plan.availability = plan.operatingHours / 24.0;
    plan.sustainsFullDay =
        plan.operatingHours + plan.chargingHours <= 24.0 + 1e-9 &&
        plan.availability >= 0.5;
    return plan;
}

} // namespace scalo::hw
