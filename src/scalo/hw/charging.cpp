#include "scalo/hw/charging.hpp"

#include <algorithm>

#include "scalo/util/contracts.hpp"
#include "scalo/util/logging.hpp"

namespace scalo::hw {

using namespace units::literals;

units::MilliwattHours
requiredCapacity(units::Milliwatts load, units::Hours duration,
                 const BatterySpec &battery)
{
    SCALO_ASSERT(load.count() >= 0.0 && duration.count() >= 0.0,
                 "negative plan");
    SCALO_ASSERT(battery.efficiency > 0.0 &&
                     battery.efficiency <= 1.0,
                 "bad efficiency");
    return load * duration / battery.efficiency;
}

ChargePlan
planDailyCycle(units::Milliwatts load, const BatterySpec &battery)
{
    SCALO_ASSERT(load.count() > 0.0, "load must be positive");
    ChargePlan plan;

    // Time a full battery sustains the load.
    const units::Hours run =
        battery.capacity * battery.efficiency / load;
    // Time to refill from empty (pipelines paused: the whole charging
    // power goes into the cell).
    const units::Hours refill =
        battery.capacity / (battery.chargeRate * battery.efficiency);

    // Fit the largest operate+charge cycle into 24 h, preserving the
    // run:refill ratio.
    const units::Hours day = 24.0_h;
    const units::Hours cycle = run + refill;
    if (cycle <= day) {
        // One full cycle fits with slack: spend the slack operating
        // (charge only what the day's operation actually used).
        plan.operatingHours = day * (run / cycle);
        plan.chargingHours = day - plan.operatingHours;
    } else {
        plan.operatingHours = day * (run / cycle);
        plan.chargingHours = day * (refill / cycle);
    }
    plan.availability = plan.operatingHours / day;
    plan.sustainsFullDay =
        plan.operatingHours + plan.chargingHours <= day + 1e-9_h &&
        plan.availability >= 0.5;
    SCALO_ENSURES(plan.operatingHours.count() >= 0.0 &&
                  plan.chargingHours.count() >= 0.0);
    return plan;
}

} // namespace scalo::hw
