#include "scalo/hw/switches.hpp"

#include <sstream>

#include "scalo/util/logging.hpp"

namespace scalo::hw {

std::string
Endpoint::name() const
{
    switch (type) {
      case Type::Adc:
        return "ADC";
      case Type::Dac:
        return "DAC";
      case Type::Radio:
        return "RADIO";
      case Type::Nvm:
        return "NVM";
      case Type::Mc:
        return "MC";
      case Type::Pe:
        return std::string(peName(pe)) + "#" +
               std::to_string(instance);
    }
    SCALO_PANIC("unknown endpoint type");
}

SwitchFabric::SwitchFabric(const NodeFabric &node_fabric)
    : fabric(&node_fabric)
{
}

std::string
SwitchFabric::connect(const Endpoint &source,
                      const Endpoint &destination)
{
    if (source.type == Endpoint::Type::Dac)
        return "DAC is a sink and cannot drive a circuit";
    if (destination.type == Endpoint::Type::Adc)
        return "ADC is a source and cannot be driven";

    for (const Endpoint *ep : {&source, &destination}) {
        if (ep->type == Endpoint::Type::Pe &&
            ep->instance >= fabric->available(ep->pe)) {
            std::ostringstream oss;
            oss << "node has no " << ep->name();
            return oss.str();
        }
    }
    if (driverOf(destination) != nullptr) {
        std::ostringstream oss;
        oss << destination.name() << " input is already driven by "
            << driverOf(destination)->name();
        return oss.str();
    }
    circuits.push_back({source, destination});
    return {};
}

void
SwitchFabric::reset()
{
    circuits.clear();
}

const Endpoint *
SwitchFabric::driverOf(const Endpoint &destination) const
{
    for (const Connection &connection : circuits)
        if (connection.destination == destination)
            return &connection.source;
    return nullptr;
}

std::vector<Endpoint>
SwitchFabric::traceFromAdc() const
{
    std::vector<Endpoint> chain{Endpoint::adc()};
    while (chain.size() <= circuits.size() + 1) {
        const Endpoint &head = chain.back();
        bool advanced = false;
        for (const Connection &connection : circuits) {
            if (connection.source == head) {
                chain.push_back(connection.destination);
                advanced = true;
                break;
            }
        }
        if (!advanced)
            break;
    }
    return chain;
}

} // namespace scalo::hw
