/**
 * @file
 * The per-node GALS processing fabric: PE instances joined by
 * programmable switches into pipelines (Figure 2b). Every PE runs in
 * its own clock domain with a programmable frequency divider, so power
 * scales with the electrode rate each stage actually processes while
 * latency stays fixed (Section 3.2).
 */

#pragma once

#include <map>
#include <string>
#include <vector>

#include "scalo/hw/pe.hpp"

namespace scalo::hw {

/** One pipeline stage: a PE processing some number of electrodes. */
struct PipelineStage
{
    PeKind kind;
    /** Electrode signals flowing through this stage per window. */
    double electrodes = constants::kElectrodesPerNode;
    /**
     * Replicated instances of this PE working in parallel (e.g. the 10
     * MAD units of the LIN ALG cluster).
     */
    int replicas = 1;
};

/** A configured dataflow pipeline through the fabric. */
class Pipeline
{
  public:
    Pipeline() = default;
    Pipeline(std::string name, std::vector<PipelineStage> stages);

    const std::string &name() const { return pipelineName; }
    const std::vector<PipelineStage> &stages() const { return chain; }

    /**
     * End-to-end latency: the sum of fixed stage latencies.
     * Data-dependent PEs contribute zero here and must be accounted
     * for by the caller. @param worst_case use SC's NVM-busy latency
     */
    units::Millis latency(bool worst_case = false) const;

    /** Total pipeline power including replica leakage. */
    units::Microwatts power() const;

    /** Scale every stage's electrode count by @p factor. */
    void scaleElectrodes(double factor);

    /** Append a stage. */
    void addStage(const PipelineStage &stage);

  private:
    std::string pipelineName;
    std::vector<PipelineStage> chain;
};

/**
 * The PE inventory of one node. SCALO nodes carry one instance of most
 * PEs, 10 MAD (BMUL) units for the LIN ALG cluster (4 of which are
 * tiled into 4-way blocks for the Kalman filter's large matrices), and
 * the RISC-V MC.
 */
class NodeFabric
{
  public:
    /** Default SCALO node inventory. */
    NodeFabric();

    /** Instances available of @p kind. */
    int available(PeKind kind) const;

    /**
     * Validate that the union of @p pipelines fits this node's PE
     * inventory (two flows may share one PE via interleaving, but a
     * stage requesting more replicas than exist cannot be mapped).
     * @return empty string if valid, else a diagnostic
     */
    std::string validate(const std::vector<Pipeline> &pipelines) const;

    /** Total idle (leakage) power of the full inventory. */
    units::Microwatts idlePower() const;

    /** Total fabric area in KGE. */
    double areaKge() const;

  private:
    std::map<PeKind, int> inventory;
};

} // namespace scalo::hw
