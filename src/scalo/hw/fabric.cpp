#include "scalo/hw/fabric.hpp"

#include <sstream>

#include "scalo/util/logging.hpp"

namespace scalo::hw {

Pipeline::Pipeline(std::string name, std::vector<PipelineStage> stages)
    : pipelineName(std::move(name)), chain(std::move(stages))
{
    for (const PipelineStage &stage : chain) {
        SCALO_ASSERT(stage.electrodes >= 0.0, "negative electrodes");
        SCALO_ASSERT(stage.replicas >= 1, "replicas must be >= 1");
    }
}

units::Millis
Pipeline::latency(bool worst_case) const
{
    units::Millis total{0.0};
    for (const PipelineStage &stage : chain) {
        const PeSpec &spec = peSpec(stage.kind);
        if (worst_case && spec.latencyMax) {
            total += *spec.latencyMax;
        } else if (spec.latency) {
            total += *spec.latency;
        }
    }
    return total;
}

units::Microwatts
Pipeline::power() const
{
    units::Microwatts total{0.0};
    for (const PipelineStage &stage : chain) {
        const PeSpec &spec = peSpec(stage.kind);
        // Work is spread over the replicas; leakage is paid per
        // replica.
        const double per_replica =
            stage.electrodes / static_cast<double>(stage.replicas);
        total += static_cast<double>(stage.replicas) *
                 spec.power(per_replica);
    }
    return total;
}

void
Pipeline::scaleElectrodes(double factor)
{
    SCALO_ASSERT(factor >= 0.0, "negative scale factor");
    for (PipelineStage &stage : chain)
        stage.electrodes *= factor;
}

void
Pipeline::addStage(const PipelineStage &stage)
{
    SCALO_ASSERT(stage.replicas >= 1, "replicas must be >= 1");
    chain.push_back(stage);
}

NodeFabric::NodeFabric()
{
    for (const PeSpec &spec : peCatalog())
        inventory[spec.kind] = 1;
    // The LIN ALG cluster replicates the MAD (BMUL) unit 10x; four of
    // them tile into 4-way blocks for large Kalman matrices
    // (Section 3.2).
    inventory[PeKind::BMUL] = 10;
}

int
NodeFabric::available(PeKind kind) const
{
    const auto it = inventory.find(kind);
    return it == inventory.end() ? 0 : it->second;
}

std::string
NodeFabric::validate(const std::vector<Pipeline> &pipelines) const
{
    // Two flows may share a PE by interleaving (Section 3.5), so the
    // constraint is per-stage replica count, not per-PE exclusivity.
    for (const Pipeline &pipeline : pipelines) {
        for (const PipelineStage &stage : pipeline.stages()) {
            const int have = available(stage.kind);
            if (stage.replicas > have) {
                std::ostringstream oss;
                oss << "pipeline '" << pipeline.name() << "' wants "
                    << stage.replicas << " x " << peName(stage.kind)
                    << " but the node has " << have;
                return oss.str();
            }
        }
    }
    return {};
}

units::Microwatts
NodeFabric::idlePower() const
{
    units::Microwatts total{0.0};
    for (const auto &[kind, count] : inventory)
        total += peSpec(kind).idlePower() * count;
    return total;
}

double
NodeFabric::areaKge() const
{
    double total = 0.0;
    for (const auto &[kind, count] : inventory)
        total += peSpec(kind).areaKge * count;
    return total;
}

} // namespace scalo::hw
