#include "scalo/hw/pe.hpp"

#include "scalo/util/logging.hpp"

namespace scalo::hw {

namespace {

/** Table 1 of the paper, transcribed verbatim. */
std::vector<PeSpec>
makeCatalog()
{
    using K = PeKind;
    const auto none = std::nullopt;
    std::vector<PeSpec> catalog{
        // kind, name, function, fmax, leak, sram, dyn/elec, latency,
        // latency(max), area
        {K::ADD, "ADD", "Matrix Adder", 3, 0.08, 0.00, 0.983, 2.0,
         none, 68},
        {K::AES, "AES", "AES Encryption", 5, 53, 0.00, 0.61, none,
         none, 55},
        {K::BBF, "BBF", "Butterworth Bandpass Filter", 6, 66.00, 19.88,
         0.35, 4.0, none, 23},
        {K::BMUL, "BMUL", "Block Multiplier", 3, 145, 0.00, 1.544, 2.0,
         none, 77},
        {K::CCHECK, "CCHECK", "Collision Check", 16.393, 7.20, 0.88,
         0.14, 0.5, none, 3},
        {K::CSEL, "CSEL", "Channel Selection", 0.1, 4.00, 0.00, 6.00,
         0.04, none, 2},
        {K::DCOMP, "DCOMP", "Decompression", 16.393, 7.20, 0.00, 0.14,
         0.5, none, 3},
        {K::DTW, "DTW", "Dynamic Time Warping", 50, 167.93, 48.50,
         26.94, 0.003, none, 72},
        {K::DWT, "DWT", "Discrete Wavelet Transform", 3, 4, 0.00, 0.02,
         4.0, none, 2},
        {K::EMDH, "EMDH", "Earth-Mover's Distance Hash", 0.03, 10.47,
         0.00, 0.00, 0.04, none, 9},
        {K::FFT, "FFT", "Fast Fourier Transform", 15.7, 141.97, 85.58,
         9.02, 4.0, none, 22},
        {K::GATE, "GATE", "Gate Module to buffer data", 5, 67.00, 34.37,
         0.63, 0.0, none, 17},
        {K::HCOMP, "HCOMP", "Hash Compression", 2.88, 77.00, 0.00,
         0.65, 4.0, none, 4},
        {K::HCONV, "HCONV", "Hash Convolution Operation", 3, 89.89,
         0.00, 0.80, 1.5, none, 8},
        {K::HFREQ, "HFREQ", "Hash Frequency", 2.88, 61.98, 0.00, 0.52,
         4.0, none, 6},
        {K::INV, "INV", "Matrix Inverter", 41, 0.267, 0.00, 11.875,
         30.0, none, 167},
        {K::LIC, "LIC", "Linear Integer Coding", 22.5, 63, 6.00, 3.26,
         none, none, 55},
        {K::LZ, "LZ", "Lempel Ziv", 129, 150, 95.00, 30.43, none, none,
         55},
        {K::MA, "MA", "Markov Chain", 92, 194, 67.00, 32.76, none,
         none, 55},
        {K::NEO, "NEO", "Non-linear Energy Operator", 3, 12.00, 0.00,
         0.03, 4.0, none, 5},
        {K::NGRAM, "NGRAM", "Hash Ngram Generation", 0.2, 15.69, 9.07,
         0.08, 1.5, none, 10},
        {K::NPACK, "NPACK", "Network Packing", 3, 3.53, 0.00, 5.49,
         0.008, none, 2},
        {K::RC, "RC", "Range Coding", 90, 29, 0.00, 7.95, none, none,
         55},
        {K::SBP, "SBP", "Spike Band Power", 3, 12.00, 0.00, 0.03, 0.03,
         none, 6},
        {K::SC, "SC", "Storage Controller", 3.2, 95.30, 64.49, 1.64,
         0.03, 4.0, 12},
        {K::SUB, "SUB", "Matrix Subtractor", 3, 0.08, 0.00, 0.988, 2.0,
         none, 69},
        {K::SVM, "SVM", "Support Vector Machine", 3, 99.00, 53.58,
         0.53, 1.67, none, 8},
        {K::THR, "THR", "Threshold", 16, 2.00, 0.00, 0.11, 0.06, none,
         1},
        {K::TOK, "TOK", "Tokenizer", 6, 5.57, 0.00, 0.14, 0.001, none,
         3},
        {K::UNPACK, "UNPACK", "Network Unpacking", 3, 3.53, 0.00, 5.49,
         0.008, none, 2},
        {K::XCOR, "XCOR", "Pearson's Cross Correlation", 85, 377.00,
         306.88, 44.11, 4.0, none, 81},
    };
    return catalog;
}

} // namespace

const std::vector<PeSpec> &
peCatalog()
{
    static const std::vector<PeSpec> catalog = makeCatalog();
    return catalog;
}

const PeSpec &
peSpec(PeKind kind)
{
    for (const PeSpec &spec : peCatalog())
        if (spec.kind == kind)
            return spec;
    SCALO_PANIC("PE kind missing from catalog");
}

const PeSpec *
findPe(std::string_view name)
{
    for (const PeSpec &spec : peCatalog())
        if (spec.name == name)
            return &spec;
    return nullptr;
}

std::string_view
peName(PeKind kind)
{
    return peSpec(kind).name;
}

const McSpec &
mcSpec()
{
    static const McSpec spec{};
    return spec;
}

} // namespace scalo::hw
