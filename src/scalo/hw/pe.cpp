#include "scalo/hw/pe.hpp"

#include "scalo/util/logging.hpp"

namespace scalo::hw {

namespace {

using namespace units::literals;

/** Table 1 of the paper, transcribed verbatim. */
std::vector<PeSpec>
makeCatalog()
{
    using K = PeKind;
    const auto none = std::nullopt;
    std::vector<PeSpec> catalog{
        // kind, name, function, fmax, leak, sram, dyn/elec, latency,
        // latency(max), area
        {K::ADD, "ADD", "Matrix Adder", 3.0_MHz, 0.08_uW, 0.00_uW,
         0.983_uW, 2.0_ms, none, 68},
        {K::AES, "AES", "AES Encryption", 5.0_MHz, 53.0_uW, 0.00_uW,
         0.61_uW, none, none, 55},
        {K::BBF, "BBF", "Butterworth Bandpass Filter", 6.0_MHz,
         66.00_uW, 19.88_uW, 0.35_uW, 4.0_ms, none, 23},
        {K::BMUL, "BMUL", "Block Multiplier", 3.0_MHz, 145.0_uW,
         0.00_uW, 1.544_uW, 2.0_ms, none, 77},
        {K::CCHECK, "CCHECK", "Collision Check", 16.393_MHz, 7.20_uW,
         0.88_uW, 0.14_uW, 0.5_ms, none, 3},
        {K::CSEL, "CSEL", "Channel Selection", 0.1_MHz, 4.00_uW,
         0.00_uW, 6.00_uW, 0.04_ms, none, 2},
        {K::DCOMP, "DCOMP", "Decompression", 16.393_MHz, 7.20_uW,
         0.00_uW, 0.14_uW, 0.5_ms, none, 3},
        {K::DTW, "DTW", "Dynamic Time Warping", 50.0_MHz, 167.93_uW,
         48.50_uW, 26.94_uW, 0.003_ms, none, 72},
        {K::DWT, "DWT", "Discrete Wavelet Transform", 3.0_MHz, 4.0_uW,
         0.00_uW, 0.02_uW, 4.0_ms, none, 2},
        {K::EMDH, "EMDH", "Earth-Mover's Distance Hash", 0.03_MHz,
         10.47_uW, 0.00_uW, 0.00_uW, 0.04_ms, none, 9},
        {K::FFT, "FFT", "Fast Fourier Transform", 15.7_MHz, 141.97_uW,
         85.58_uW, 9.02_uW, 4.0_ms, none, 22},
        {K::GATE, "GATE", "Gate Module to buffer data", 5.0_MHz,
         67.00_uW, 34.37_uW, 0.63_uW, 0.0_ms, none, 17},
        {K::HCOMP, "HCOMP", "Hash Compression", 2.88_MHz, 77.00_uW,
         0.00_uW, 0.65_uW, 4.0_ms, none, 4},
        {K::HCONV, "HCONV", "Hash Convolution Operation", 3.0_MHz,
         89.89_uW, 0.00_uW, 0.80_uW, 1.5_ms, none, 8},
        {K::HFREQ, "HFREQ", "Hash Frequency", 2.88_MHz, 61.98_uW,
         0.00_uW, 0.52_uW, 4.0_ms, none, 6},
        {K::INV, "INV", "Matrix Inverter", 41.0_MHz, 0.267_uW, 0.00_uW,
         11.875_uW, 30.0_ms, none, 167},
        {K::LIC, "LIC", "Linear Integer Coding", 22.5_MHz, 63.0_uW,
         6.00_uW, 3.26_uW, none, none, 55},
        {K::LZ, "LZ", "Lempel Ziv", 129.0_MHz, 150.0_uW, 95.00_uW,
         30.43_uW, none, none, 55},
        {K::MA, "MA", "Markov Chain", 92.0_MHz, 194.0_uW, 67.00_uW,
         32.76_uW, none, none, 55},
        {K::NEO, "NEO", "Non-linear Energy Operator", 3.0_MHz,
         12.00_uW, 0.00_uW, 0.03_uW, 4.0_ms, none, 5},
        {K::NGRAM, "NGRAM", "Hash Ngram Generation", 0.2_MHz, 15.69_uW,
         9.07_uW, 0.08_uW, 1.5_ms, none, 10},
        {K::NPACK, "NPACK", "Network Packing", 3.0_MHz, 3.53_uW,
         0.00_uW, 5.49_uW, 0.008_ms, none, 2},
        {K::RC, "RC", "Range Coding", 90.0_MHz, 29.0_uW, 0.00_uW,
         7.95_uW, none, none, 55},
        {K::SBP, "SBP", "Spike Band Power", 3.0_MHz, 12.00_uW, 0.00_uW,
         0.03_uW, 0.03_ms, none, 6},
        {K::SC, "SC", "Storage Controller", 3.2_MHz, 95.30_uW,
         64.49_uW, 1.64_uW, 0.03_ms, 4.0_ms, 12},
        {K::SUB, "SUB", "Matrix Subtractor", 3.0_MHz, 0.08_uW, 0.00_uW,
         0.988_uW, 2.0_ms, none, 69},
        {K::SVM, "SVM", "Support Vector Machine", 3.0_MHz, 99.00_uW,
         53.58_uW, 0.53_uW, 1.67_ms, none, 8},
        {K::THR, "THR", "Threshold", 16.0_MHz, 2.00_uW, 0.00_uW,
         0.11_uW, 0.06_ms, none, 1},
        {K::TOK, "TOK", "Tokenizer", 6.0_MHz, 5.57_uW, 0.00_uW,
         0.14_uW, 0.001_ms, none, 3},
        {K::UNPACK, "UNPACK", "Network Unpacking", 3.0_MHz, 3.53_uW,
         0.00_uW, 5.49_uW, 0.008_ms, none, 2},
        {K::XCOR, "XCOR", "Pearson's Cross Correlation", 85.0_MHz,
         377.00_uW, 306.88_uW, 44.11_uW, 4.0_ms, none, 81},
    };
    return catalog;
}

} // namespace

const std::vector<PeSpec> &
peCatalog()
{
    static const std::vector<PeSpec> catalog = makeCatalog();
    return catalog;
}

const PeSpec &
peSpec(PeKind kind)
{
    for (const PeSpec &spec : peCatalog())
        if (spec.kind == kind)
            return spec;
    SCALO_PANIC("PE kind missing from catalog");
}

const PeSpec *
findPe(std::string_view name)
{
    for (const PeSpec &spec : peCatalog())
        if (spec.name == name)
            return &spec;
    return nullptr;
}

std::string_view
peName(PeKind kind)
{
    return peSpec(kind).name;
}

const McSpec &
mcSpec()
{
    static const McSpec spec{};
    return spec;
}

} // namespace scalo::hw
