/**
 * @file
 * The inter-PE circuit-switched network (Figure 2b): programmable
 * switches join PEs, the ADC/DAC front end, the radios and the NVM
 * into pipelines. Circuit switching means each consumer input is
 * driven by exactly one producer; producers may fan out.
 */

#pragma once

#include <string>
#include <vector>

#include "scalo/hw/fabric.hpp"

namespace scalo::hw {

/** An endpoint on the switch network. */
struct Endpoint
{
    enum class Type
    {
        Adc,   ///< electrode front end (source)
        Dac,   ///< stimulation back end (sink)
        Radio, ///< intra-SCALO or external radio
        Nvm,   ///< storage, through the SC
        Mc,    ///< the RISC-V microcontroller
        Pe,    ///< an accelerator instance
    };

    Type type = Type::Pe;
    /** Valid when type == Pe. */
    PeKind pe = PeKind::GATE;
    /** Instance index (e.g. which BMUL of the LIN ALG cluster). */
    int instance = 0;

    static Endpoint adc() { return {Type::Adc, PeKind::GATE, 0}; }
    static Endpoint dac() { return {Type::Dac, PeKind::GATE, 0}; }
    static Endpoint radio() { return {Type::Radio, PeKind::GATE, 0}; }
    static Endpoint nvm() { return {Type::Nvm, PeKind::GATE, 0}; }
    static Endpoint mc() { return {Type::Mc, PeKind::GATE, 0}; }
    static Endpoint
    of(PeKind kind, int instance = 0)
    {
        return {Type::Pe, kind, instance};
    }

    bool operator==(const Endpoint &) const = default;

    /** Render as "FFT#0", "ADC", ... */
    std::string name() const;
};

/** A configured circuit connection. */
struct Connection
{
    Endpoint source;
    Endpoint destination;

    bool operator==(const Connection &) const = default;
};

/** The per-node switch state. */
class SwitchFabric
{
  public:
    /** @param fabric the PE inventory connections must respect */
    explicit SwitchFabric(const NodeFabric &fabric);

    /**
     * Establish a circuit. Fails (returns a diagnostic) when the
     * destination input is already driven, when an endpoint names a
     * PE instance the node does not have, or when a source would be
     * a pure sink (DAC).
     * @return empty string on success
     */
    std::string connect(const Endpoint &source,
                        const Endpoint &destination);

    /** Tear down every circuit. */
    void reset();

    /** Current circuits. */
    const std::vector<Connection> &connections() const
    {
        return circuits;
    }

    /** The producer currently driving @p destination, if any. */
    const Endpoint *driverOf(const Endpoint &destination) const;

    /**
     * Follow circuits from the ADC; @return the endpoint chain, which
     * for a well-formed pipeline ends at the radio, NVM, DAC or MC.
     */
    std::vector<Endpoint> traceFromAdc() const;

  private:
    const NodeFabric *fabric;
    std::vector<Connection> circuits;
};

} // namespace scalo::hw
