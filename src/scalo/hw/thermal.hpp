/**
 * @file
 * Thermal model for multi-implant deployments (Sections 2.3 and 5):
 * the temperature rise around an implant falls off steeply with
 * distance thanks to cerebrospinal-fluid and blood flow (~5% of peak
 * at 10 mm, ~2% at 20 mm), making inter-implant coupling negligible at
 * the default 20 mm spacing; up to 60 implants fit on an 86 mm-radius
 * hemispherical cortical surface at 15 mW each.
 */

#pragma once

#include <cstddef>
#include <vector>

#include "scalo/units/units.hpp"
#include "scalo/util/types.hpp"

namespace scalo::hw {

/** Heat-falloff and placement model. */
class ThermalModel
{
  public:
    /**
     * @param peak_delta peak temperature rise at the implant edge
     *        for a 15 mW implant (the 1 C safety limit).
     */
    explicit ThermalModel(units::Celsius peak_delta = units::Celsius{
                              1.0});

    /**
     * Fractional temperature rise at @p distance from an implant
     * edge, relative to the peak (1.0 at the edge, ~0.05 at 10 mm,
     * ~0.02 at 20 mm). Fitted power law through the published finite-
     * element anchors.
     */
    double falloffFraction(units::Millimetres distance) const;

    /** Absolute rise at @p distance for an implant at @p power. */
    units::Celsius deltaAt(units::Millimetres distance,
                           units::Milliwatts power) const;

    /**
     * Worst-case total rise at one implant given neighbours at
     * @p spacing on a hexagonal grid, all running at @p power.
     */
    units::Celsius worstCaseRise(units::Millimetres spacing,
                                 units::Milliwatts power,
                                 std::size_t neighbours = 6) const;

    /**
     * Whether @p node_count implants at @p spacing and @p power each
     * keep every site below the 1 C limit.
     */
    bool safe(std::size_t node_count, units::Millimetres spacing,
              units::Milliwatts power) const;

    /**
     * Maximum implants placeable with uniform optimal distribution on
     * a hemispherical surface of kBrainRadius at @p spacing
     * (calibrated to the paper's 60 implants at 20 mm).
     */
    static std::size_t maxImplants(units::Millimetres spacing);

  private:
    units::Celsius peakDelta;
};

} // namespace scalo::hw
