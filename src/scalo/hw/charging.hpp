/**
 * @file
 * Wireless charging and battery planning (Section 3.6): SCALO nodes
 * run from implanted rechargeable batteries topped up by inductive
 * power transfer. All pipelines pause while charging (to avoid
 * overheating), so the planner balances battery capacity, the
 * charging rate and the application load into a daily duty cycle -
 * recent systems demonstrate 24-hour operation with ~2 hours of
 * charging, which the defaults reproduce.
 */

#pragma once

#include "scalo/units/units.hpp"
#include "scalo/util/types.hpp"

namespace scalo::hw {

/** Implantable battery + inductive link parameters. */
struct BatterySpec
{
    /** Usable capacity - small implanted cell. */
    units::MilliwattHours capacity{350.0};
    /** Inductive charging power delivered to the cell. */
    units::Milliwatts chargeRate{180.0};
    /** Charge/discharge efficiency. */
    double efficiency = 0.9;
};

/** A daily operation/charging plan. */
struct ChargePlan
{
    /** Continuous operating time per charge. */
    units::Hours operatingHours{0.0};
    /** Time of (paused) charging to refill. */
    units::Hours chargingHours{0.0};
    /** Fraction of the day spent operating. */
    double availability = 0.0;
    /** Whether a 24 h day closes with these parameters. */
    bool sustainsFullDay = false;
};

/** Plan a daily cycle for a node drawing @p load while active. */
ChargePlan planDailyCycle(units::Milliwatts load,
                          const BatterySpec &battery = {});

/** Battery needed to run @p load for @p duration between charges. */
units::MilliwattHours requiredCapacity(units::Milliwatts load,
                                       units::Hours duration,
                                       const BatterySpec &battery = {});

} // namespace scalo::hw
