/**
 * @file
 * Wireless charging and battery planning (Section 3.6): SCALO nodes
 * run from implanted rechargeable batteries topped up by inductive
 * power transfer. All pipelines pause while charging (to avoid
 * overheating), so the planner balances battery capacity, the
 * charging rate and the application load into a daily duty cycle -
 * recent systems demonstrate 24-hour operation with ~2 hours of
 * charging, which the defaults reproduce.
 */

#pragma once

#include "scalo/util/types.hpp"

namespace scalo::hw {

/** Implantable battery + inductive link parameters. */
struct BatterySpec
{
    /** Usable capacity (mWh) - small implanted cell. */
    double capacityMwh = 350.0;
    /** Inductive charging power delivered to the cell (mW). */
    double chargeRateMw = 180.0;
    /** Charge/discharge efficiency. */
    double efficiency = 0.9;
};

/** A daily operation/charging plan. */
struct ChargePlan
{
    /** Continuous operating hours per charge. */
    double operatingHours = 0.0;
    /** Hours of (paused) charging to refill. */
    double chargingHours = 0.0;
    /** Fraction of the day spent operating. */
    double availability = 0.0;
    /** Whether a 24 h day closes with these parameters. */
    bool sustainsFullDay = false;
};

/** Plan a daily cycle for a node drawing @p load_mw while active. */
ChargePlan planDailyCycle(double load_mw,
                          const BatterySpec &battery = {});

/**
 * Battery needed (mWh) to run @p load_mw for @p hours between
 * charges.
 */
double requiredCapacityMwh(double load_mw, double hours,
                           const BatterySpec &battery = {});

} // namespace scalo::hw
