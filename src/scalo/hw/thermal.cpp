#include "scalo/hw/thermal.hpp"

#include <cmath>

#include "scalo/util/logging.hpp"

namespace scalo::hw {

namespace {

// Power-law fit through the finite-element anchors: 5% at 10 mm and
// 2% at 20 mm  =>  f(d) = c * d^b with b = log2(0.02/0.05) = -1.3219,
// c = 0.05 * 10^1.3219 = 1.0494.
constexpr double kExponent = -1.3219280948873623;
const double kCoefficient = 0.05 * std::pow(10.0, -kExponent);

} // namespace

ThermalModel::ThermalModel(double peak_delta_c)
    : peakDeltaC(peak_delta_c)
{
    SCALO_ASSERT(peak_delta_c > 0.0, "peak rise must be positive");
}

double
ThermalModel::falloffFraction(double distance_mm) const
{
    SCALO_ASSERT(distance_mm >= 0.0, "negative distance");
    const double f = kCoefficient * std::pow(distance_mm, kExponent);
    return std::min(1.0, f);
}

double
ThermalModel::deltaAtC(double distance_mm, double implant_mw) const
{
    // Peak rise scales linearly with dissipated power relative to the
    // 15 mW reference.
    const double peak =
        peakDeltaC * implant_mw / constants::kPowerCapMw;
    return peak * falloffFraction(distance_mm);
}

double
ThermalModel::worstCaseRiseC(double spacing_mm, double implant_mw,
                             std::size_t neighbours) const
{
    // Own rise plus the coupling of the nearest ring of neighbours.
    double total = peakDeltaC * implant_mw / constants::kPowerCapMw;
    total += static_cast<double>(neighbours) *
             deltaAtC(spacing_mm, implant_mw);
    return total;
}

bool
ThermalModel::safe(std::size_t node_count, double spacing_mm,
                   double mw) const
{
    if (node_count == 0)
        return true;
    if (node_count > maxImplants(spacing_mm))
        return false;
    if (mw > constants::kPowerCapMw + 1e-9)
        return false;
    // The 15 mW budget already carries the safety margin for the 1 C
    // limit; coupling is "negligible" (and the full budget usable)
    // when the neighbour ring adds no more than the absolute level a
    // full-power ring contributes at the paper's 20 mm reference
    // point (6 x 2% of the limit). De-rated implants couple less, so
    // they tolerate tighter spacing.
    const std::size_t ring = std::min<std::size_t>(6, node_count - 1);
    const double coupling =
        static_cast<double>(ring) * deltaAtC(spacing_mm, mw);
    const double budget = 6.0 * 0.02 * peakDeltaC;
    return coupling <= budget + 1e-9;
}

std::size_t
ThermalModel::maxImplants(double spacing_mm)
{
    SCALO_ASSERT(spacing_mm > 0.0, "spacing must be positive");
    // Hemisphere area divided by the per-implant exclusion area; the
    // packing constant is calibrated so 20 mm spacing admits the
    // paper's 60 implants on an 86 mm-radius surface.
    const double area = 2.0 * M_PI * constants::kBrainRadiusMm *
                        constants::kBrainRadiusMm;
    const double packing = area / (60.0 * 20.0 * 20.0);
    return static_cast<std::size_t>(
        area / (packing * spacing_mm * spacing_mm));
}

} // namespace scalo::hw
