#include "scalo/hw/thermal.hpp"

#include <cmath>
#include <numbers>

#include "scalo/util/contracts.hpp"
#include "scalo/util/logging.hpp"

namespace scalo::hw {

namespace {

// Power-law fit through the finite-element anchors: 5% at 10 mm and
// 2% at 20 mm  =>  f(d) = c * d^b with b = log2(0.02/0.05) = -1.3219,
// c = 0.05 * 10^1.3219 = 1.0494.
constexpr double kExponent = -1.3219280948873623;
const double kCoefficient = 0.05 * std::pow(10.0, -kExponent);

} // namespace

ThermalModel::ThermalModel(units::Celsius peak_delta)
    : peakDelta(peak_delta)
{
    SCALO_ASSERT(peak_delta.count() > 0.0,
                 "peak rise must be positive");
}

double
ThermalModel::falloffFraction(units::Millimetres distance) const
{
    SCALO_EXPECTS(distance.count() >= 0.0);
    const double f =
        kCoefficient * std::pow(distance.count(), kExponent);
    return std::min(1.0, f);
}

units::Celsius
ThermalModel::deltaAt(units::Millimetres distance,
                      units::Milliwatts power) const
{
    // Peak rise scales linearly with dissipated power relative to the
    // 15 mW reference.
    const units::Celsius peak =
        peakDelta * (power / constants::kPowerCap);
    return peak * falloffFraction(distance);
}

units::Celsius
ThermalModel::worstCaseRise(units::Millimetres spacing,
                            units::Milliwatts power,
                            std::size_t neighbours) const
{
    // Own rise plus the coupling of the nearest ring of neighbours.
    units::Celsius total = peakDelta * (power / constants::kPowerCap);
    total += static_cast<double>(neighbours) * deltaAt(spacing, power);
    SCALO_ENSURES(total.count() >= 0.0);
    return total;
}

bool
ThermalModel::safe(std::size_t node_count, units::Millimetres spacing,
                   units::Milliwatts power) const
{
    if (node_count == 0)
        return true;
    if (node_count > maxImplants(spacing))
        return false;
    if (power > constants::kPowerCap + units::Milliwatts{1e-9})
        return false;
    // The 15 mW budget already carries the safety margin for the 1 C
    // limit; coupling is "negligible" (and the full budget usable)
    // when the neighbour ring adds no more than the absolute level a
    // full-power ring contributes at the paper's 20 mm reference
    // point (6 x 2% of the limit). De-rated implants couple less, so
    // they tolerate tighter spacing.
    const std::size_t ring = std::min<std::size_t>(6, node_count - 1);
    const units::Celsius coupling =
        static_cast<double>(ring) * deltaAt(spacing, power);
    const units::Celsius budget = 6.0 * 0.02 * peakDelta;
    return coupling <= budget + units::Celsius{1e-9};
}

std::size_t
ThermalModel::maxImplants(units::Millimetres spacing)
{
    SCALO_ASSERT(spacing.count() > 0.0, "spacing must be positive");
    // Hemisphere area divided by the per-implant exclusion area; the
    // packing constant is calibrated so 20 mm spacing admits the
    // paper's 60 implants on an 86 mm-radius surface.
    const double radius_mm = constants::kBrainRadius.count();
    const double spacing_mm = spacing.count();
    const double area = 2.0 * std::numbers::pi * radius_mm * radius_mm;
    const double packing = area / (60.0 * 20.0 * 20.0);
    return static_cast<std::size_t>(
        area / (packing * spacing_mm * spacing_mm));
}

} // namespace scalo::hw
