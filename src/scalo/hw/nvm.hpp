/**
 * @file
 * Per-implant NVM model (Section 3.3 + NVSim parameters of Section 5)
 * and the SC storage controller with its PE-access-pattern-aware data
 * layout: neural data arrives interleaved by electrode but is
 * reorganised into per-electrode contiguous chunks, trading 5x slower
 * writes (1.75 ms, off the critical path) for 10x faster reads
 * (0.035 ms, on the critical path).
 */

#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "scalo/units/units.hpp"
#include "scalo/util/types.hpp"

namespace scalo::hw {

/** SLC NAND parameters modeled with NVSim (Section 5). */
struct NvmSpec
{
    units::Gigabytes capacity{128.0};  ///< per node
    std::size_t pageBytes = 4'096;     ///< program granularity
    std::size_t blockBytes = 1u << 20; ///< erase granularity (1 MB)
    std::size_t readGranuleBytes = 8;  ///< read unit
    units::Millis erase{1.5};          ///< SLC NAND block erase
    units::Micros program{350.0};      ///< page program time
    double voltage = 2.7;
    units::Milliwatts leakage{0.26};   ///< NVSim leakage estimate
    units::Nanojoules readEnergyPerPage{918.809};
    units::Nanojoules writeEnergyPerPage{1'374.0};

    /** Sequential read bandwidth, page-pipelined. */
    units::MegabytesPerSecond readBandwidth() const;

    /** Program (write) bandwidth. */
    units::MegabytesPerSecond writeBandwidth() const;

    /** Time to read @p bytes sequentially. */
    units::Millis readTime(units::Bytes bytes) const;

    /** Time to program @p bytes. */
    units::Millis writeTime(units::Bytes bytes) const;

    /** Energy to read @p bytes. */
    units::Millijoules readEnergy(units::Bytes bytes) const;

    /** Energy to write @p bytes. */
    units::Millijoules writeEnergy(units::Bytes bytes) const;
};

/** The default NVM used in every node. */
const NvmSpec &nvmSpec();

/** The four NVM partitions (Section 3.3). */
enum class Partition
{
    Signals,
    Hashes,
    AppData,
    Microcontroller,
};

/**
 * The SC PE: buffers writes in 24 KB of SRAM, reorganises the data
 * layout electrode-major, and tracks recency metadata in registers.
 */
class StorageController
{
  public:
    /** Chunk-reorganised write/read costs measured in the paper. */
    static constexpr units::Millis kReorganisedWrite{1.75};
    static constexpr units::Millis kReorganisedRead{0.035};
    /** Without reorganisation: writes 5x faster, reads 10x slower. */
    static constexpr units::Millis kRawWrite = kReorganisedWrite / 5.0;
    static constexpr units::Millis kRawRead = kReorganisedRead * 10.0;

    /** SRAM write buffer size (sized from NVSim parameters). */
    static constexpr std::size_t kBufferBytes = 24 * 1'024;

    explicit StorageController(bool reorganise_layout = true);

    /** Whether the electrode-major layout reorganisation is enabled. */
    bool reorganises() const { return reorganise; }

    /**
     * Cost to persist one electrode-chunk of neural data.
     * Reorganisation costs more here but writes are off the critical
     * path.
     */
    units::Millis chunkWrite() const;

    /** Cost to retrieve one contiguous electrode-chunk. */
    units::Millis chunkRead() const;

    /**
     * Append bytes for one partition; models buffer-then-page-program
     * behaviour. @return pages programmed by this append
     */
    std::size_t append(Partition partition, std::size_t bytes);

    /** Bytes currently buffered (not yet programmed) per partition. */
    std::size_t buffered(Partition partition) const;

    /** Total bytes persisted into a partition. */
    std::uint64_t persisted(Partition partition) const;

    /**
     * Sustainable streaming-read bandwidth for retrieval queries,
     * derated by the layout choice.
     */
    units::MegabytesPerSecond streamRead() const;

  private:
    struct PartitionState
    {
        std::size_t buffered = 0;
        std::uint64_t persisted = 0;
    };

    bool reorganise;
    std::map<Partition, PartitionState> partitions;
};

} // namespace scalo::hw
