#include "scalo/query/codegen.hpp"

#include <cmath>
#include <sstream>

#include "scalo/util/logging.hpp"

namespace scalo::query {

std::string
McInstruction::render() const
{
    std::ostringstream oss;
    switch (opcode) {
      case McOpcode::SetDivider:
        oss << "div    " << a.name() << ", " << value;
        break;
      case McOpcode::Configure:
        oss << "cfg    " << a.name() << ", " << parameter << "="
            << value;
        break;
      case McOpcode::Connect:
        oss << "conn   " << a.name() << " -> " << b.name();
        break;
      case McOpcode::Start:
        oss << "start";
        break;
    }
    return oss.str();
}

std::string
McProgram::render() const
{
    std::ostringstream oss;
    for (const McInstruction &instruction : instructions)
        oss << instruction.render() << '\n';
    return oss.str();
}

McProgram
generateProgram(const CompiledPipeline &pipeline, double electrodes)
{
    McProgram program;

    // Track instance indexes so repeated PEs of one kind in a chain
    // map to distinct physical units.
    std::map<hw::PeKind, int> next_instance;

    // The PE chain with instance assignment.
    std::vector<hw::Endpoint> chain{hw::Endpoint::adc()};
    for (const Stage &stage : pipeline.stages) {
        for (hw::PeKind kind : stage.pes) {
            const int instance = next_instance[kind]++;
            const hw::Endpoint ep = hw::Endpoint::of(kind, instance);

            // Frequency divider: the smallest k with fmax/k still
            // covering the required electrode rate.
            const int divider = std::max(
                1, static_cast<int>(std::floor(
                       constants::kElectrodesPerNode /
                       std::max(1.0, electrodes))));
            program.instructions.push_back(
                {McOpcode::SetDivider, ep, {}, {},
                 static_cast<double>(divider)});

            // Stage parameters become PE configuration registers.
            for (const auto &[name, value] : stage.params) {
                program.instructions.push_back(
                    {McOpcode::Configure, ep, {}, name, value});
            }
            chain.push_back(ep);
        }
    }

    // Sink: hand off to the external radio when the program calls the
    // runtime; otherwise persist via the NVM.
    chain.push_back(pipeline.callsRuntime ? hw::Endpoint::radio()
                                          : hw::Endpoint::nvm());

    for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
        program.instructions.push_back(
            {McOpcode::Connect, chain[i], chain[i + 1], {}, 0.0});
    }
    program.instructions.push_back(
        {McOpcode::Start, {}, {}, {}, 0.0});
    return program;
}

Runtime::Runtime(const hw::NodeFabric &fabric) : switchFabric(fabric)
{
}

std::string
Runtime::load(const McProgram &program)
{
    switchFabric.reset();
    dividers.clear();
    started = false;

    bool connected = false;
    for (const McInstruction &instruction : program.instructions) {
        switch (instruction.opcode) {
          case McOpcode::SetDivider:
            if (instruction.value < 1.0)
                return "divider must be >= 1";
            dividers.emplace_back(
                instruction.a.pe,
                static_cast<int>(instruction.value));
            break;
          case McOpcode::Configure:
            // Parameter registers are sized by the PEs; the loader
            // only checks the PE exists.
            if (instruction.a.type == hw::Endpoint::Type::Pe &&
                instruction.a.instance >= 1 &&
                instruction.a.pe != hw::PeKind::BMUL) {
                return "no such PE instance: " +
                       instruction.a.name();
            }
            break;
          case McOpcode::Connect: {
            const std::string error = switchFabric.connect(
                instruction.a, instruction.b);
            if (!error.empty())
                return error;
            connected = true;
            break;
          }
          case McOpcode::Start:
            if (!connected)
                return "start before any circuit was programmed";
            started = true;
            break;
        }
    }
    return {};
}

int
Runtime::dividerOf(hw::PeKind kind) const
{
    for (const auto &[pe, divider] : dividers)
        if (pe == kind)
            return divider;
    return 1;
}

} // namespace scalo::query
