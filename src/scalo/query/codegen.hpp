/**
 * @file
 * The back half of Section 3.7's toolchain: a compiled pipeline is
 * translated into the configuration program the per-node RISC-V MC
 * executes - set each PE's frequency divider, load its parameters,
 * program the switch circuits, and start the dataflow. The Runtime
 * models the MC's lightweight loader: it applies a program to a
 * node's switch fabric and validates it against the PE inventory.
 */

#pragma once

#include <string>
#include <vector>

#include "scalo/hw/switches.hpp"
#include "scalo/query/language.hpp"

namespace scalo::query {

/** MC configuration instruction set. */
enum class McOpcode
{
    SetDivider, ///< PE clock divider (power tuning, Section 3.2)
    Configure,  ///< load a PE parameter register
    Connect,    ///< program one switch circuit
    Start,      ///< open the ADC gate and start the dataflow
};

/** One MC instruction. */
struct McInstruction
{
    McOpcode opcode;
    hw::Endpoint a; ///< target PE / circuit source
    hw::Endpoint b; ///< circuit destination (Connect only)
    std::string parameter; ///< Configure: register name
    double value = 0.0;    ///< SetDivider / Configure operand

    /** Render as one assembly-style line. */
    std::string render() const;
};

/** A complete configuration program. */
struct McProgram
{
    std::vector<McInstruction> instructions;

    /** Full assembly-style listing. */
    std::string render() const;
};

/**
 * Generate the configuration program for @p pipeline: ADC -> stage
 * PEs in order -> sink (the external radio when the pipeline calls
 * the runtime, the NVM otherwise). The divider is chosen for
 * @p electrodes of the node's 96-electrode design point.
 */
McProgram generateProgram(const CompiledPipeline &pipeline,
                          double electrodes =
                              constants::kElectrodesPerNode);

/** The MC's loader: applies programs to a node's switch state. */
class Runtime
{
  public:
    explicit Runtime(const hw::NodeFabric &fabric);

    /**
     * Execute a configuration program. @return empty string, or the
     * first diagnostic (bad circuit, missing PE, start before any
     * connect).
     */
    std::string load(const McProgram &program);

    /** Whether a dataflow has been started. */
    bool running() const { return started; }

    /** The switch state after loading. */
    const hw::SwitchFabric &switches() const { return switchFabric; }

    /** Divider programmed for a PE (1 when untouched). */
    int dividerOf(hw::PeKind kind) const;

  private:
    hw::SwitchFabric switchFabric;
    std::vector<std::pair<hw::PeKind, int>> dividers;
    bool started = false;
};

} // namespace scalo::query
