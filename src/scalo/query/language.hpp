/**
 * @file
 * The TrillDSP-flavoured programming interface (Section 3.7 and the
 * artifact's query grammar): clinicians write chained stream
 * operators,
 *
 *     stream.window(wsize=50ms).sbp().kf().call_runtime()
 *     stream.window(wsize=4ms).seizure_detect().propagate()
 *
 * which parse into a dataflow DAG whose stages map onto PEs. The
 * compiler validates operators/arguments and emits the pipeline the
 * ILP scheduler consumes, plus the RISC-V MC configuration stub.
 */

#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "scalo/app/query.hpp"
#include "scalo/hw/fabric.hpp"

namespace scalo::query {

/** One parsed operator invocation: name plus named arguments. */
struct OpCall
{
    std::string name;
    /** Named arguments; durations are normalised to milliseconds. */
    std::map<std::string, double> args;
};

/** A parsed program: `stream` followed by chained operators. */
struct Program
{
    std::vector<OpCall> ops;
};

/** Parse a program; throws via SCALO_FATAL on syntax errors. */
Program parse(const std::string &source);

/** One compiled dataflow stage. */
struct Stage
{
    std::string op;
    /** PEs realising this stage (empty = runs on the MC). */
    std::vector<hw::PeKind> pes;
    /** Stage parameters (e.g. window size in ms). */
    std::map<std::string, double> params;
};

/** A compiled pipeline ready for the scheduler. */
struct CompiledPipeline
{
    std::vector<Stage> stages;
    /** Analysis window (ms) taken from the window() operator. */
    double windowMs = 4.0;
    /** Whether the pipeline ends at the external runtime. */
    bool callsRuntime = false;

    /** All PEs used, in stage order (for fabric validation). */
    std::vector<hw::PeKind> peChain() const;

    /**
     * The interactive retrieval this program lowers to, when it
     * contains a query() stage: the stage's arguments become one
     * app::Query descriptor for QueryEngine::execute, so the
     * mini-language and the C++ API share a single query surface.
     * Supported arguments: t0/t1 (durations, e.g. t1=200ms),
     * `seizure` (flag filter), dtw=<threshold> (exact confirmation),
     * `exact` (full-scan DTW, no hash prefilter), `noindex` (linear
     * hash scan instead of the bucket index). A probe template is
     * data, not syntax — attach it to the returned descriptor.
     */
    std::optional<app::Query> interactiveQuery() const;

    /** Total fixed pipeline latency. */
    units::Millis latency() const;

    /** Pipeline power at @p electrodes per stage. */
    units::Milliwatts power(double electrodes) const;

};

/**
 * Compile a parsed program: resolve each operator to its PE mapping
 * and validate argument requirements. Throws via SCALO_FATAL on
 * unknown operators or missing arguments.
 */
CompiledPipeline compile(const Program &program);

/** Convenience: parse + compile. */
CompiledPipeline compileSource(const std::string &source);

/** Names of all supported operators. */
std::vector<std::string> supportedOps();

} // namespace scalo::query
