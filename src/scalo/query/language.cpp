#include "scalo/query/language.hpp"

#include <cctype>

#include "scalo/util/logging.hpp"

namespace scalo::query {

namespace {

/** Token kinds for the operator-chain grammar. */
enum class TokenKind
{
    Identifier,
    Number, ///< value already normalised to ms where suffixed
    Dot,
    LParen,
    RParen,
    Comma,
    Equals,
    End,
};

struct Token
{
    TokenKind kind;
    std::string text;
    double value = 0.0;
};

/** Hand-rolled lexer; durations like "50ms" / "5s" become numbers. */
class Lexer
{
  public:
    explicit Lexer(const std::string &source) : src(source) {}

    Token
    next()
    {
        skipSpace();
        if (pos >= src.size())
            return {TokenKind::End, ""};
        const char c = src[pos];
        if (c == '.') {
            ++pos;
            return {TokenKind::Dot, "."};
        }
        if (c == '(') {
            ++pos;
            return {TokenKind::LParen, "("};
        }
        if (c == ')') {
            ++pos;
            return {TokenKind::RParen, ")"};
        }
        if (c == ',') {
            ++pos;
            return {TokenKind::Comma, ","};
        }
        if (c == '=') {
            ++pos;
            return {TokenKind::Equals, "="};
        }
        if (std::isdigit(static_cast<unsigned char>(c)) || c == '-')
            return lexNumber();
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_')
            return lexIdentifier();
        SCALO_FATAL("query syntax error: unexpected '", c, "' at ",
                    pos);
    }

  private:
    void
    skipSpace()
    {
        while (pos < src.size() &&
               std::isspace(static_cast<unsigned char>(src[pos]))) {
            ++pos;
        }
    }

    Token
    lexNumber()
    {
        std::size_t start = pos;
        if (src[pos] == '-')
            ++pos;
        while (pos < src.size() &&
               (std::isdigit(static_cast<unsigned char>(src[pos])) ||
                src[pos] == '.')) {
            ++pos;
        }
        double value = std::stod(src.substr(start, pos - start));
        // Unit suffix: ms (native), s, us.
        if (src.compare(pos, 2, "ms") == 0) {
            pos += 2;
        } else if (src.compare(pos, 2, "us") == 0) {
            value /= 1'000.0;
            pos += 2;
        } else if (pos < src.size() && src[pos] == 's' &&
                   (pos + 1 >= src.size() ||
                    !std::isalnum(
                        static_cast<unsigned char>(src[pos + 1])))) {
            value *= 1'000.0;
            pos += 1;
        }
        return {TokenKind::Number, "", value};
    }

    Token
    lexIdentifier()
    {
        std::size_t start = pos;
        while (pos < src.size() &&
               (std::isalnum(static_cast<unsigned char>(src[pos])) ||
                src[pos] == '_')) {
            ++pos;
        }
        return {TokenKind::Identifier,
                src.substr(start, pos - start)};
    }

    const std::string &src;
    std::size_t pos = 0;
};

} // namespace

Program
parse(const std::string &source)
{
    Lexer lexer(source);
    Token token = lexer.next();

    // Optional "var name =" prefix as in the paper's listings.
    if (token.kind == TokenKind::Identifier && token.text == "var") {
        token = lexer.next(); // variable name
        SCALO_ASSERT(token.kind == TokenKind::Identifier,
                     "expected a name after 'var'");
        token = lexer.next();
        if (token.kind != TokenKind::Equals)
            SCALO_FATAL("query syntax error: expected '=' after var");
        token = lexer.next();
    }

    if (token.kind != TokenKind::Identifier ||
        token.text != "stream") {
        SCALO_FATAL("query must start with 'stream'");
    }

    Program program;
    token = lexer.next();
    while (token.kind == TokenKind::Dot) {
        token = lexer.next();
        if (token.kind != TokenKind::Identifier)
            SCALO_FATAL("expected operator name after '.'");
        OpCall op;
        op.name = token.text;

        token = lexer.next();
        if (token.kind != TokenKind::LParen)
            SCALO_FATAL("expected '(' after operator '", op.name,
                        "'");
        token = lexer.next();
        while (token.kind != TokenKind::RParen) {
            if (token.kind != TokenKind::Identifier)
                SCALO_FATAL("expected argument name in '", op.name,
                            "'");
            const std::string arg_name = token.text;
            token = lexer.next();
            if (token.kind == TokenKind::Equals) {
                token = lexer.next();
                if (token.kind != TokenKind::Number)
                    SCALO_FATAL("expected numeric value for '",
                                arg_name, "'");
                op.args[arg_name] = token.value;
                token = lexer.next();
            } else {
                // Bare identifier argument (e.g. kf_params): recorded
                // with a sentinel value.
                op.args[arg_name] = 0.0;
            }
            if (token.kind == TokenKind::Comma)
                token = lexer.next();
        }
        program.ops.push_back(std::move(op));
        token = lexer.next();
    }
    if (token.kind != TokenKind::End)
        SCALO_FATAL("trailing tokens after operator chain");
    if (program.ops.empty())
        SCALO_FATAL("program has no operators");
    return program;
}

namespace {

using hw::PeKind;

/** Operator -> PE mapping table. */
const std::map<std::string, std::vector<PeKind>> kOpPes{
    {"window", {PeKind::GATE}},
    {"fft", {PeKind::FFT}},
    {"bbf", {PeKind::BBF}},
    {"xcor", {PeKind::XCOR}},
    {"sbp", {PeKind::SBP}},
    {"neo", {PeKind::NEO}},
    {"thr", {PeKind::THR}},
    {"dwt", {PeKind::DWT}},
    {"svm", {PeKind::SVM}},
    {"nn", {PeKind::BMUL, PeKind::ADD}},
    {"kf",
     {PeKind::BMUL, PeKind::ADD, PeKind::SUB, PeKind::INV,
      PeKind::SC}},
    {"hash", {PeKind::HCONV, PeKind::NGRAM}},
    {"emd_hash", {PeKind::HCONV, PeKind::EMDH}},
    {"compress", {PeKind::HFREQ, PeKind::HCOMP}},
    {"ccheck", {PeKind::CCHECK}},
    {"dtw", {PeKind::DTW}},
    {"seizure_detect",
     {PeKind::FFT, PeKind::BBF, PeKind::XCOR, PeKind::SVM,
      PeKind::THR}},
    {"propagate",
     {PeKind::HCONV, PeKind::NGRAM, PeKind::HCOMP, PeKind::NPACK,
      PeKind::UNPACK, PeKind::DCOMP, PeKind::CCHECK, PeKind::DTW}},
    {"store", {PeKind::SC}},
    {"select", {PeKind::CSEL}},
    {"query", {PeKind::SC, PeKind::CCHECK}}, ///< interactive retrieval
    {"map", {}},            // routing only
    {"stimulate", {}},      // DAC command, issued by the MC
    {"call_runtime", {}},   // hand-off to the external runtime
};

/** Arguments each operator requires. */
const std::map<std::string, std::vector<std::string>> kRequiredArgs{
    {"window", {"wsize"}},
    {"bbf", {"low", "high"}},
};

} // namespace

std::vector<std::string>
supportedOps()
{
    std::vector<std::string> names;
    for (const auto &[name, pes] : kOpPes)
        names.push_back(name);
    return names;
}

CompiledPipeline
compile(const Program &program)
{
    CompiledPipeline pipeline;
    for (const OpCall &op : program.ops) {
        const auto it = kOpPes.find(op.name);
        if (it == kOpPes.end())
            SCALO_FATAL("unknown operator '", op.name, "'");
        const auto required = kRequiredArgs.find(op.name);
        if (required != kRequiredArgs.end()) {
            for (const std::string &arg : required->second) {
                if (!op.args.count(arg))
                    SCALO_FATAL("operator '", op.name,
                                "' requires argument '", arg, "'");
            }
        }

        Stage stage;
        stage.op = op.name;
        stage.pes = it->second;
        stage.params = op.args;
        if (op.name == "window")
            pipeline.windowMs = op.args.at("wsize");
        if (op.name == "call_runtime")
            pipeline.callsRuntime = true;
        pipeline.stages.push_back(std::move(stage));
    }
    return pipeline;
}

CompiledPipeline
compileSource(const std::string &source)
{
    return compile(parse(source));
}

std::optional<app::Query>
CompiledPipeline::interactiveQuery() const
{
    for (const Stage &stage : stages) {
        if (stage.op != "query")
            continue;
        app::Query query;
        // Durations arrive from the lexer normalised to ms.
        if (const auto t0 = stage.params.find("t0");
            t0 != stage.params.end()) {
            if (t0->second < 0.0)
                SCALO_FATAL("query(): t0 < 0");
            query.t0Us =
                static_cast<std::uint64_t>(t0->second * 1'000.0);
        }
        if (const auto t1 = stage.params.find("t1");
            t1 != stage.params.end()) {
            if (t1->second < 0.0)
                SCALO_FATAL("query(): t1 < 0");
            query.t1Us =
                static_cast<std::uint64_t>(t1->second * 1'000.0);
        }
        if (query.t0Us > query.t1Us)
            SCALO_FATAL("query(): t0 after t1");
        query.seizureOnly = stage.params.count("seizure") > 0;
        if (const auto dtw = stage.params.find("dtw");
            dtw != stage.params.end())
            query.dtwThreshold = dtw->second;
        if (stage.params.count("exact"))
            query.hashPrefilter = false;
        if (stage.params.count("noindex"))
            query.useIndex = false;
        return query;
    }
    return std::nullopt;
}

std::vector<hw::PeKind>
CompiledPipeline::peChain() const
{
    std::vector<hw::PeKind> chain;
    for (const Stage &stage : stages)
        chain.insert(chain.end(), stage.pes.begin(),
                     stage.pes.end());
    return chain;
}

units::Millis
CompiledPipeline::latency() const
{
    units::Millis total{0.0};
    for (hw::PeKind kind : peChain()) {
        const auto &spec = hw::peSpec(kind);
        if (spec.latency)
            total += *spec.latency;
    }
    return total;
}

units::Milliwatts
CompiledPipeline::power(double electrodes) const
{
    units::Microwatts total{0.0};
    for (hw::PeKind kind : peChain())
        total += hw::peSpec(kind).power(electrodes);
    return total;
}

} // namespace scalo::query
