/**
 * @file
 * Interactive human-in-the-loop queries (Sections 2.2 and 6.4):
 * clinicians retrieve recent neural data or verify device behaviour
 * without disrupting the running pipelines.
 *
 *  Q1: return all stored signal windows flagged as seizures;
 *  Q2: return all stored windows whose hash matches a given template
 *      (optionally exact DTW instead of hashes);
 *  Q3: return all data in a time range.
 *
 * The cost model combines the SC/NVM read path, on-node matching, and
 * the external 46 Mbps radio (which Section 6.4 identifies as the
 * bottleneck), plus a fixed dispatch/aggregation overhead calibrated
 * to the paper's 9 QPS at 7 MB / 5% matched.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "scalo/util/types.hpp"

namespace scalo::app {

/** The three evaluated query shapes. */
enum class QueryKind
{
    Q1SeizureWindows,
    Q2TemplateMatch,
    Q3TimeRange,
};

/** Query parameters. */
struct QueryConfig
{
    std::size_t nodes = 11;
    /** Total data volume covered by the query, across nodes (MB). */
    double dataMb = 7.0;
    /** Fraction of the data matching the predicate (Q1/Q2). */
    double matchedFraction = 0.05;
    /** Q2 only: exact DTW matching instead of hashes. */
    bool exactMatch = false;
};

/** Estimated cost of one query execution. */
struct QueryCost
{
    double latencyMs = 0.0;
    double queriesPerSecond = 0.0;
    /** Peak per-node power while serving the query (mW). */
    double powerMw = 0.0;
};

/** Evaluate the cost model. */
QueryCost estimateQuery(QueryKind kind, const QueryConfig &config);

/** Human-readable query name. */
const char *queryName(QueryKind kind);

/**
 * Time range (ms of recent recording) covered by @p data_mb across
 * @p nodes at the full 96-electrode rate, e.g. 7 MB over 11 nodes is
 * about the last 110 ms (Figure 10's x-axis pairing).
 */
double timeRangeMsFor(double data_mb, std::size_t nodes);

/** Fixed dispatch + aggregation overhead (ms), calibrated. */
inline constexpr double kQueryDispatchMs = 44.0;

/** Per-node query power with hash matching (mW), Section 6.4. */
inline constexpr double kHashQueryPowerMw = 3.57;

/** Per-node query power with exact DTW matching (mW), Section 6.4. */
inline constexpr double kDtwQueryPowerMw = 15.0;

} // namespace scalo::app
