/**
 * @file
 * Interactive human-in-the-loop queries (Sections 2.2 and 6.4):
 * clinicians retrieve recent neural data or verify device behaviour
 * without disrupting the running pipelines.
 *
 *  Q1: return all stored signal windows flagged as seizures;
 *  Q2: return all stored windows whose hash matches a given template
 *      (optionally exact DTW instead of hashes);
 *  Q3: return all data in a time range.
 *
 * The cost model combines the SC/NVM read path, on-node matching, and
 * the external 46 Mbps radio (which Section 6.4 identifies as the
 * bottleneck), plus a fixed dispatch/aggregation overhead calibrated
 * to the paper's 9 QPS at 7 MB / 5% matched.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "scalo/signal/distance.hpp"
#include "scalo/util/types.hpp"

namespace scalo::app {

/** The three evaluated query shapes. */
enum class QueryKind
{
    Q1SeizureWindows,
    Q2TemplateMatch,
    Q3TimeRange,
};

/**
 * One interactive query, as a declarative descriptor: every shape
 * the engine can execute is a combination of a time range, an
 * optional seizure-flag filter, and an optional probe template with
 * hash and/or exact-DTW matching. The paper's Q1/Q2/Q3 are the three
 * corners of this space (Q1 = seizure filter, Q2 = probe, Q3 =
 * neither); filters compose, so e.g. "seizure windows shaped like
 * this template" is a single descriptor rather than a new engine
 * method. Built by hand, by the q1()/q2()/q3() shorthands, or
 * lowered from a stream.query(...) program.
 */
struct Query
{
    /** Inclusive capture-time range (us). */
    std::uint64_t t0Us = 0;
    std::uint64_t t1Us = UINT64_MAX;

    /** Keep only windows the resident detector flagged. */
    bool seizureOnly = false;

    /** Probe template; empty means no template matching. */
    std::vector<double> probe;

    /**
     * Exact confirmation threshold for probe matches (in units of
     * the configured @ref confirmMeasure); negative skips exact
     * confirmation and matches on hashes alone.
     */
    double dtwThreshold = -1.0;

    /**
     * Distance used for exact probe confirmation. DTW runs the
     * banded early-abandon kernel per candidate; Euclidean batches
     * all surviving candidates through one
     * signal::euclideanDistanceMany() call (the DTW PE with band = 1
     * degenerates to Euclidean, so the modeled cost is unchanged).
     * Only Dtw and Euclidean are valid here.
     */
    signal::Measure confirmMeasure = signal::Measure::Dtw;

    /**
     * Probe path only: prefilter through the LSH hashes. With the
     * bucket index this touches candidate buckets instead of the
     * whole range; switching it off forces the pre-index full scan
     * (pure DTW when dtwThreshold >= 0, the legacy exact mode).
     */
    bool hashPrefilter = true;

    /**
     * Probe path only: probe the store's bucket index instead of
     * hash-matching a linear scan. Never changes the match set
     * (candidates are confirmed against the full signature); only
     * the windows touched — and therefore the modeled read cost —
     * differ.
     */
    bool useIndex = true;

    /**
     * Per-shard answer deadline on the modeled on-node latency: a
     * shard that cannot answer within it is dropped from the result
     * and the execution reports partial Coverage instead of blocking
     * on a slow or dying node. Zero (the default) waits for every
     * shard.
     */
    units::Millis shardDeadline{0.0};

    /**
     * Canonical form of this descriptor — the normalization contract
     * the plan cache and query dedup are defined on. Two descriptors
     * describe the same execution if and only if their normalized
     * forms are field-for-field equal (equivalently: their cacheKey()
     * bytes are equal). Normalization never changes what a query
     * matches or what its execution costs; it only resets fields the
     * engine would ignore to their defaults so that incidental
     * differences do not defeat caching:
     *
     *  1. Bounds stay as-is; an unset upper bound is already the
     *     defaulted UINT64_MAX ("everything since t0").
     *  2. No probe: the probe-only knobs are inert, so dtwThreshold
     *     := -1, confirmMeasure := Dtw, hashPrefilter := true,
     *     useIndex := true.
     *  3. Probe without exact confirmation (any negative
     *     dtwThreshold): dtwThreshold := -1 (the canonical "hashes
     *     only") and confirmMeasure := Dtw, since the measure is
     *     consulted only when confirming.
     *  4. hashPrefilter off: useIndex := false — the bucket index is
     *     only ever probed on the prefilter path.
     *  5. Non-positive shardDeadline values all mean "wait for every
     *     shard" and normalize to exactly 0.
     */
    Query normalized() const;

    /**
     * Stable byte encoding of normalized() with fixed field ordering
     * (t0Us, t1Us, seizureOnly, probe, dtwThreshold, confirmMeasure,
     * hashPrefilter, useIndex, shardDeadline) — the plan-cache key.
     * Equal keys <=> equivalent queries under the normalization
     * contract above. The encoding contains raw bytes (including
     * NULs); treat it as an opaque map key, not printable text.
     */
    std::string cacheKey() const;

    /** Q1: all seizure-flagged windows in [t0, t1]. */
    static Query
    q1(std::uint64_t t0_us, std::uint64_t t1_us)
    {
        Query query;
        query.t0Us = t0_us;
        query.t1Us = t1_us;
        query.seizureOnly = true;
        return query;
    }

    /**
     * Q2: windows in [t0, t1] matching @p probe_window (hashes, or
     * legacy full-scan DTW when @p dtw_threshold >= 0).
     */
    static Query
    q2(std::uint64_t t0_us, std::uint64_t t1_us,
       std::vector<double> probe_window, double dtw_threshold = -1.0,
       signal::Measure measure = signal::Measure::Dtw)
    {
        Query query;
        query.t0Us = t0_us;
        query.t1Us = t1_us;
        query.probe = std::move(probe_window);
        query.dtwThreshold = dtw_threshold;
        query.confirmMeasure = measure;
        // Legacy exact mode: DTW over the full range, no hashes.
        query.hashPrefilter = dtw_threshold < 0.0;
        return query;
    }

    /** Q3: everything in [t0, t1]. */
    static Query
    q3(std::uint64_t t0_us, std::uint64_t t1_us)
    {
        Query query;
        query.t0Us = t0_us;
        query.t1Us = t1_us;
        return query;
    }
};

/** Query parameters. */
struct QueryConfig
{
    std::size_t nodes = 11;
    /** Total data volume covered by the query, across nodes. */
    units::Megabytes data{7.0};
    /** Fraction of the data matching the predicate (Q1/Q2). */
    double matchedFraction = 0.05;
    /** Q2 only: exact DTW matching instead of hashes. */
    bool exactMatch = false;
};

/** Estimated cost of one query execution. */
struct QueryCost
{
    units::Millis latency{0.0};
    units::Hertz queriesPerSecond{0.0};
    /** Peak per-node power while serving the query. */
    units::Milliwatts power{0.0};
};

/** Evaluate the cost model. */
QueryCost estimateQuery(QueryKind kind, const QueryConfig &config);

/** Human-readable query name. */
const char *queryName(QueryKind kind);

/**
 * Time range of recent recording covered by @p data across
 * @p nodes at the full 96-electrode rate, e.g. 7 MB over 11 nodes is
 * about the last 110 ms (Figure 10's x-axis pairing).
 */
units::Millis timeRangeFor(units::Megabytes data, std::size_t nodes);

/** Fixed dispatch + aggregation overhead, calibrated. */
inline constexpr units::Millis kQueryDispatch{44.0};

/** Per-node query power with hash matching, Section 6.4. */
inline constexpr units::Milliwatts kHashQueryPower{3.57};

/** Per-node query power with exact DTW matching, Section 6.4. */
inline constexpr units::Milliwatts kDtwQueryPower{15.0};

} // namespace scalo::app
