#include "scalo/app/stimulation.hpp"

#include <cmath>

#include "scalo/util/logging.hpp"

namespace scalo::app {

double
StimPattern::chargePerPhaseNc() const
{
    // uA * us = pC; /1000 -> nC.
    return amplitudeUa * phaseUs / 1'000.0;
}

double
StimPattern::dutyCycle() const
{
    if (frequencyHz <= 0.0)
        return 0.0;
    const double period_us = 1e6 / frequencyHz;
    return std::min(1.0, 2.0 * phaseUs / period_us);
}

StimulationController::StimulationController(StimSafetyLimits limits)
    : safety(limits)
{
}

std::string
StimulationController::validate(const StimPattern &pattern) const
{
    if (pattern.amplitudeUa <= 0.0 || pattern.phaseUs <= 0.0 ||
        pattern.frequencyHz <= 0.0 || pattern.durationMs <= 0.0) {
        return "pattern parameters must be positive";
    }
    if (pattern.electrodes.empty())
        return "no electrodes selected";
    if (pattern.electrodes.size() > safety.maxElectrodes)
        return "too many simultaneous electrodes";
    if (pattern.amplitudeUa > safety.maxAmplitudeUa)
        return "amplitude exceeds the safety limit";
    if (pattern.phaseUs > safety.maxPhaseUs)
        return "phase duration exceeds the safety limit";
    if (pattern.frequencyHz > safety.maxFrequencyHz)
        return "frequency exceeds the safety limit";
    if (pattern.chargePerPhaseNc() > safety.maxChargePerPhaseNc)
        return "charge per phase exceeds the safety limit";
    // Both phases must fit in one period (charge balance needs the
    // anodic phase to complete).
    const double period_us = 1e6 / pattern.frequencyHz;
    if (2.0 * pattern.phaseUs + pattern.gapUs > period_us)
        return "pulse does not fit in one period";
    return {};
}

std::vector<double>
StimulationController::pulseWaveform(const StimPattern &pattern,
                                     double sample_rate_hz) const
{
    SCALO_ASSERT(sample_rate_hz > 0.0, "bad sample rate");
    const double period_us = 1e6 / pattern.frequencyHz;
    const auto samples = static_cast<std::size_t>(
        period_us * sample_rate_hz / 1e6);
    std::vector<double> waveform(samples, 0.0);
    for (std::size_t i = 0; i < samples; ++i) {
        const double t_us =
            static_cast<double>(i) / sample_rate_hz * 1e6;
        if (t_us < pattern.phaseUs) {
            waveform[i] = -pattern.amplitudeUa; // cathodic first
        } else if (t_us < pattern.phaseUs + pattern.gapUs) {
            waveform[i] = 0.0;
        } else if (t_us <
                   2.0 * pattern.phaseUs + pattern.gapUs) {
            waveform[i] = pattern.amplitudeUa; // anodic balance
        }
    }
    return waveform;
}

units::Milliwatts
StimulationController::power(const StimPattern &pattern) const
{
    // P = I^2 * Z per electrode while driving, plus DAC static power.
    const double amps = pattern.amplitudeUa * 1e-6;
    const double ohms = kElectrodeKohm * 1e3;
    const double drive_w = amps * amps * ohms *
                           static_cast<double>(
                               pattern.electrodes.size()) *
                           pattern.dutyCycle();
    return kDacStatic + units::Milliwatts{drive_w * 1e3};
}

bool
StimulationController::issue(const StimPattern &pattern)
{
    if (!validate(pattern).empty())
        return false;
    ++issued;
    return true;
}

StimPattern
seizureArrestPattern(std::vector<ElectrodeId> electrodes)
{
    StimPattern pattern;
    pattern.amplitudeUa = 100.0;
    pattern.phaseUs = 100.0;
    pattern.gapUs = 50.0;
    pattern.frequencyHz = 200.0; // high-frequency arrest
    pattern.durationMs = 100.0;
    pattern.electrodes = std::move(electrodes);
    return pattern;
}

StimPattern
sensoryFeedbackPattern(std::vector<ElectrodeId> electrodes,
                       double intensity01)
{
    SCALO_ASSERT(intensity01 >= 0.0 && intensity01 <= 1.0,
                 "intensity out of [0,1]");
    StimPattern pattern;
    // Intensity modulates amplitude within the comfortable band.
    pattern.amplitudeUa = 20.0 + 60.0 * intensity01;
    pattern.phaseUs = 200.0;
    pattern.gapUs = 100.0;
    pattern.frequencyHz = 100.0;
    pattern.durationMs = 50.0;
    pattern.electrodes = std::move(electrodes);
    return pattern;
}

} // namespace scalo::app
