/**
 * @file
 * Online spike sorting (Figures 1c, 3c, 7): detect spikes with NEO +
 * adaptive threshold, hash each waveform with the EMD hash, and
 * classify by matching against locally stored template hashes, with
 * an exact-EMD fallback among hash candidates. Section 6.3 reports
 * 12,250 sorted spikes/s/node at accuracy within 5% of exact template
 * matching.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "scalo/data/spike_synth.hpp"
#include "scalo/lsh/emd_hash.hpp"

namespace scalo::app {

/** A sorted spike. */
struct SortedSpike
{
    std::size_t sampleIndex;
    /** Assigned template/neuron id; -1 = no match. */
    int neuron;
};

/** Sorting outcome plus quality metrics vs ground truth. */
struct SortingReport
{
    std::vector<SortedSpike> spikes;
    /** Fraction of ground-truth spikes detected. */
    double detectionRate = 0.0;
    /** Fraction of detected+matched spikes assigned correctly. */
    double accuracy = 0.0;
    std::size_t detected = 0;
    std::size_t matched = 0;
};

/** Online spike sorter with hash-based template matching. */
class SpikeSorter
{
  public:
    /**
     * @param templates   per-neuron waveform templates (e.g. obtained
     *                    offline from prior recordings [111])
     * @param use_hashes  false = exact matching only (the baseline)
     * @param seed        hash-family seed
     */
    SpikeSorter(std::vector<std::vector<double>> templates,
                bool use_hashes, std::uint64_t seed = 41);

    /**
     * Detect and sort every spike in @p trace.
     *
     * @param trace          the combined electrode signal
     * @param threshold_k    adaptive threshold multiplier
     */
    std::vector<SortedSpike> sort(const std::vector<double> &trace,
                                  double threshold_k = 5.0) const;

    /** Sort and score against a dataset's ground truth. */
    SortingReport evaluate(const data::SpikeDataset &dataset,
                           double threshold_k = 5.0) const;

    bool usesHashes() const { return hashed; }
    std::size_t templateCount() const { return templateBank.size(); }

  private:
    /** Match one waveform; @return neuron id or -1. */
    int match(const std::vector<double> &waveform) const;

    std::vector<std::vector<double>> templateBank;
    std::vector<lsh::Signature> templateSignatures;
    bool hashed;
    std::unique_ptr<lsh::EmdHasher> hasher;
    std::size_t waveformSamples;
};

} // namespace scalo::app
