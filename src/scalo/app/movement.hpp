/**
 * @file
 * Movement-intent decoding (Figures 1b, 3b, 6): the three pipelines of
 * the paper on a synthetic cursor-control dataset.
 *
 *  A: gesture classification with hierarchically decomposed linear
 *     SVMs (one-vs-rest);
 *  B: velocity decoding with a centralised Kalman filter over
 *     spike-band-power features;
 *  C: velocity decoding with an input-split shallow NN.
 *
 * Also hosts the movement-intents-per-second model of Figure 9b.
 */

#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "scalo/ml/kalman.hpp"
#include "scalo/ml/nn.hpp"
#include "scalo/ml/svm.hpp"
#include "scalo/sched/scheduler.hpp"

namespace scalo::app {

/** Synthetic cursor-control dataset with per-channel tuning curves. */
struct MovementDataset
{
    /** features[t][channel]: per-decode-window SBP features. */
    std::vector<std::vector<double>> features;
    /** velocity[t] = {vx, vy}: ground-truth cursor velocity. */
    std::vector<std::array<double, 2>> velocity;
    /** gesture[t]: discretised movement direction class. */
    std::vector<int> gesture;
    int gestureClasses = 4;
    std::size_t channels = 96;
};

/**
 * Generate a dataset: the latent velocity follows a smooth random
 * walk; each channel responds linearly to velocity through a random
 * tuning vector plus noise; gestures discretise the motion direction.
 */
MovementDataset generateMovement(std::size_t channels,
                                 std::size_t steps,
                                 int gesture_classes,
                                 std::uint64_t seed);

/** Pipeline A: one-vs-rest SVM gesture classifier, decomposable. */
class GestureClassifier
{
  public:
    /** Train on the first @p train_count steps of @p dataset. */
    static GestureClassifier train(const MovementDataset &dataset,
                                   std::size_t train_count);

    /** Centralized classification. */
    int classify(const std::vector<double> &features) const;

    /**
     * Distributed classification: feature channels are split across
     * @p splits nodes; each node contributes one partial score per
     * class (4 B each), matching Figure 3b.
     */
    int classifyDistributed(const std::vector<double> &features,
                            const std::vector<std::size_t> &splits)
        const;

    /** Accuracy over the tail of a dataset. */
    double accuracy(const MovementDataset &dataset,
                    std::size_t from) const;

    int classes() const { return static_cast<int>(models.size()); }

  private:
    std::vector<ml::LinearSvm> models;
};

/** Pipeline B/C quality: correlation of decoded vs true velocity. */
struct DecodeQuality
{
    double vxCorrelation = 0.0;
    double vyCorrelation = 0.0;
};

/** Pipeline B: centralised Kalman decoding over the dataset tail. */
DecodeQuality decodeWithKalman(const MovementDataset &dataset,
                               std::size_t from, std::uint64_t seed);

/** Pipeline C: train a shallow NN and decode the dataset tail. */
DecodeQuality decodeWithNn(const MovementDataset &dataset,
                           std::size_t train_count,
                           std::uint64_t seed);

/**
 * Figure 9b: maximum movement intents per second a flow sustains on
 * SCALO. Conventional pipelines are pinned to the 50 ms window
 * (20 intents/s); SCALO decodes as fast as power and the serial
 * decode path (PE chain + TDMA exchange) allow.
 */
units::Hertz intentsPerSecond(const sched::FlowSpec &flow,
                              std::size_t nodes,
                              units::Milliwatts power_cap =
                                  constants::kPowerCap,
                              double electrodes_per_node =
                                  constants::kElectrodesPerNode);

/** The conventional fixed-interval intent rate (20/s at 50 ms). */
inline constexpr double kConventionalIntentsPerSecond = 20.0;

} // namespace scalo::app
